// Figure 9: effect of existing database size on bulk-loading runtime —
// load a 200 MB data set into repositories preloaded to 50..300 GB.
//
// Paper result: with secondary indices disabled, loading time is flat as the
// database grows (the PK B+tree deepens only logarithmically); the
// production repository kept loading at full speed past 1.5 TB.
//
// Preload uses the engine's sorted bulk-build fast path at a reduced row
// density (SKYLOADER_PRELOAD_DENSITY rows per preloaded GB, default 8000);
// the measured quantity — per-insert work against the preexisting data — is
// governed by index depth, which grows with log(rows), so the flatness of
// the curve is preserved at any density.
#include "bench_util.h"

#include "htm/htm.h"

namespace {

using namespace skybench;

FigureTable g_figure("Figure 9: Effect of Database Size (200 MB data set)",
                     "database size (GB)", "runtime (simulated seconds)");

const std::vector<int64_t> kDbSizesGb = {50, 100, 150, 200, 250, 300};

int64_t preload_rows_per_gb() {
  const char* env = std::getenv("SKYLOADER_PRELOAD_DENSITY");
  if (env != nullptr && std::atoll(env) > 0) return std::atoll(env);
  return 8000;
}

// Preload the repository with FK-consistent frames/objects rows, PK-sorted.
void preload(SimRepository& repo, int64_t gigabytes) {
  const int64_t object_rows = gigabytes * preload_rows_per_gb();
  const int64_t frame_rows = std::max<int64_t>(1, object_rows / 40);
  const uint32_t observations = repo.engine->table_id("observations").value();
  const uint32_t ccds = repo.engine->table_id("ccd_columns").value();
  const uint32_t frames = repo.engine->table_id("ccd_frames").value();
  const uint32_t objects = repo.engine->table_id("objects").value();
  const uint32_t states = repo.engine->table_id("telescope_states").value();
  // Preload ids live far above generator unit ids (no collisions).
  const int64_t base = 1LL << 58;
  using sky::db::Value;
  auto must = [](const sky::Status& status) {
    if (!status.is_ok()) std::abort();
  };
  must(repo.engine->bulk_load_sorted(
      states, {{Value::i64(base), Value::f64(10), Value::f64(0),
                Value::f64(40)}}));
  must(repo.engine->bulk_load_sorted(
      observations,
      {{Value::i64(base), Value::i64(1), Value::i64(1), Value::i64(1),
        Value::i64(base), Value::timestamp(1), Value::f64(1.5),
        Value::f64(0.5)}}));
  must(repo.engine->bulk_load_sorted(
      ccds, {{Value::i64(base), Value::i64(base), Value::i32(0),
              Value::f64(10), Value::f64(0), Value::f64(0.873)}}));
  std::vector<sky::db::Row> frame_batch;
  frame_batch.reserve(static_cast<size_t>(frame_rows));
  for (int64_t f = 0; f < frame_rows; ++f) {
    frame_batch.push_back({Value::i64(base + f), Value::i64(base),
                           Value::i32(1), Value::i32(static_cast<int32_t>(f)),
                           Value::timestamp(f), Value::f64(60),
                           Value::f64(1.2), Value::f64(20.5)});
  }
  must(repo.engine->bulk_load_sorted(frames, frame_batch));
  std::vector<sky::db::Row> object_batch;
  object_batch.reserve(static_cast<size_t>(object_rows));
  for (int64_t o = 0; o < object_rows; ++o) {
    const double ra = static_cast<double>(o % 360000) / 1000.0;
    object_batch.push_back(
        {Value::i64(base + o), Value::i64(base + o % frame_rows),
         Value::f64(ra), Value::f64(10.0), Value::f64(20.0), Value::f64(0.01),
         Value::f64(100.0), Value::f64(2.0), Value::f64(0.1), Value::f64(1),
         Value::f64(1),
         Value::i64(static_cast<int64_t>(
             sky::htm::htm_id_radec(ra, 10.0, 14)))});
  }
  must(repo.engine->bulk_load_sorted(objects, object_batch));
}

void bench_db_size(benchmark::State& state) {
  const int64_t gigabytes = state.range(0);
  for (auto _ : state) {
    SimRepository repo = SimRepository::create();
    preload(repo, gigabytes);
    const auto file = make_file(200, /*seed=*/900, /*unit_id=*/90);
    sky::core::BulkLoaderOptions options;
    options.write_audit_row = false;
    const auto report = run_bulk(repo, file, options);
    const double seconds = normalized_seconds(report.elapsed);
    state.SetIterationTime(seconds);
    g_figure.add("runtime", static_cast<double>(gigabytes), seconds);
    state.counters["preexisting_rows"] =
        static_cast<double>(repo.engine->total_rows());
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  for (const int64_t gigabytes : kDbSizesGb) {
    benchmark::RegisterBenchmark("fig9/db_size", bench_db_size)
        ->Arg(gigabytes)
        ->Iterations(1)
        ->UseManualTime()
        ->Unit(benchmark::kSecond);
  }
  benchmark::RunSpecifiedBenchmarks();
  g_figure.print();

  double min_time = 1e18, max_time = 0;
  for (const int64_t gigabytes : kDbSizesGb) {
    const double t = g_figure.value("runtime", static_cast<double>(gigabytes));
    min_time = std::min(min_time, t);
    max_time = std::max(max_time, t);
  }
  const double spread_pct = (max_time - min_time) / min_time * 100.0;
  std::printf("\nruntime spread across 50-300 GB: %.2f%%\n", spread_pct);
  shape_check(spread_pct < 5.0,
              "database size has no significant impact on loading time");
  return 0;
}
