// Section 4.5.3 ablation: I/O distribution across devices.
//
// The production layout puts (1) data and temporary files, (2) indices, and
// (3) logs on three separate RAID devices. Co-locating them on one device
// makes commits (log flushes) queue behind data/index page writes. The
// contrast is strongest under frequent commits and parallel loaders; both
// configurations are measured.
#include "bench_util.h"

namespace {

using namespace skybench;

FigureTable g_figure("Ablation 4.5.3: I/O Distribution (200 MB, 4 loaders)",
                     "commit every N batches", "runtime (simulated seconds)");

void bench_layout(benchmark::State& state) {
  const bool separate = state.range(0) == 1;
  const int64_t commit_every = state.range(1);
  for (auto _ : state) {
    sky::core::TuningProfile profile = sky::core::TuningProfile::production();
    profile.device_layout = separate
                                ? sky::storage::DeviceLayout::separate_raids()
                                : sky::storage::DeviceLayout::single_raid();
    SimRepository repo = SimRepository::create(profile);
    const auto files =
        make_observation(/*paper_mb=*/200, /*seed=*/1200, /*night_id=*/12);
    sky::core::CoordinatorOptions options;
    options.parallel_degree = 4;
    options.loader.write_audit_row = false;
    options.loader.commit.every_batches = commit_every;
    const auto report = sky::core::LoadCoordinator::run_sim(
        *repo.env, *repo.server, files, repo.schema, options);
    if (!report.is_ok()) std::abort();
    const double seconds = normalized_seconds(report->makespan);
    state.SetIterationTime(seconds);
    g_figure.add(separate ? "separate-raids" : "single-raid",
                 static_cast<double>(commit_every), seconds);
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  for (const int64_t commit_every : {1, 4, 16}) {
    for (const int64_t separate : {0, 1}) {
      benchmark::RegisterBenchmark("io_distribution/layout", bench_layout)
          ->Args({separate, commit_every})
          ->Iterations(1)
          ->UseManualTime()
          ->Unit(benchmark::kSecond);
    }
  }
  benchmark::RunSpecifiedBenchmarks();
  g_figure.print();

  bool separate_always_wins = true;
  for (const double commit_every : {1.0, 4.0, 16.0}) {
    if (g_figure.value("separate-raids", commit_every) >=
        g_figure.value("single-raid", commit_every)) {
      separate_always_wins = false;
    }
  }
  const double gain1 = (g_figure.value("single-raid", 1) -
                        g_figure.value("separate-raids", 1)) /
                       g_figure.value("single-raid", 1) * 100;
  const double gain16 = (g_figure.value("single-raid", 16) -
                         g_figure.value("separate-raids", 16)) /
                        g_figure.value("single-raid", 16) * 100;
  std::printf("\nseparate-RAID gain: %.1f%% at commit-every-1, %.1f%% at "
              "commit-every-16\n",
              gain1, gain16);
  shape_check(separate_always_wins,
              "separate data/index/log devices reduce I/O contention");
  shape_check(gain1 > 2.0 || gain16 > 2.0,
              "the layout effect is material, not noise");
  return 0;
}
