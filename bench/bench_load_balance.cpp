// Section 4.4 ablation: dynamic ("on the fly") vs static file assignment.
//
// The 28 catalog files of an observation vary in size, and error-heavy
// files load slower still. Dynamic assignment hands the next unloaded file
// to whichever loader finishes first; static round-robin pre-partitioning
// strands workers behind unlucky shares.
#include "bench_util.h"

namespace {

using namespace skybench;

FigureTable g_figure("Ablation 4.4: Load Balancing (one observation, 5 loaders)",
                     "scenario (0=uniform 1=skewed 2=skewed+errors)",
                     "makespan (simulated seconds)");

std::vector<sky::core::CatalogFile> scenario_files(int scenario) {
  switch (scenario) {
    case 0: {  // uniform file sizes
      std::vector<sky::core::CatalogFile> files;
      for (int f = 0; f < 28; ++f) {
        sky::catalog::FileSpec spec;
        spec.name = "uniform" + std::to_string(f);
        spec.seed = 1500 + static_cast<uint64_t>(f);
        spec.unit_id = 1500 + f;
        spec.target_bytes = bytes_for_paper_mb(10);
        files.push_back(sky::core::CatalogFile{
            spec.name, sky::catalog::CatalogGenerator::generate(spec).text});
      }
      return files;
    }
    case 1:  // the generator's natural size skew
      return make_observation(280, /*seed=*/1501, /*night_id=*/15);
    default: {  // skewed sizes plus two error-heavy files
      auto files = make_observation(280, /*seed=*/1502, /*night_id=*/16);
      for (int f = 0; f < 2; ++f) {
        sky::catalog::FileSpec spec;
        spec.name = "toxic" + std::to_string(f);
        spec.seed = 1600 + static_cast<uint64_t>(f);
        spec.unit_id = 1600 + f;
        spec.target_bytes = bytes_for_paper_mb(10);
        spec.error_rate = 0.30;
        files[static_cast<size_t>(f * 9)] = sky::core::CatalogFile{
            spec.name, sky::catalog::CatalogGenerator::generate(spec).text};
      }
      return files;
    }
  }
}

void bench_balance(benchmark::State& state) {
  const bool dynamic = state.range(0) == 1;
  const int scenario = static_cast<int>(state.range(1));
  for (auto _ : state) {
    SimRepository repo = SimRepository::create();
    const auto files = scenario_files(scenario);
    sky::core::CoordinatorOptions options;
    options.parallel_degree = 5;
    options.dynamic_assignment = dynamic;
    options.loader.write_audit_row = false;
    const auto report = sky::core::LoadCoordinator::run_sim(
        *repo.env, *repo.server, files, repo.schema, options);
    if (!report.is_ok()) std::abort();
    const double seconds = normalized_seconds(report->makespan);
    state.SetIterationTime(seconds);
    g_figure.add(dynamic ? "dynamic" : "static", scenario, seconds);
    // Worker imbalance: max/mean busy time.
    Nanos max_busy = 0, total_busy = 0;
    for (const Nanos busy : report->worker_busy) {
      max_busy = std::max(max_busy, busy);
      total_busy += busy;
    }
    state.counters["imbalance"] =
        static_cast<double>(max_busy) /
        (static_cast<double>(total_busy) / 5.0);
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  for (const int64_t scenario : {0, 1, 2}) {
    for (const int64_t dynamic : {1, 0}) {
      benchmark::RegisterBenchmark("load_balance/assign", bench_balance)
          ->Args({dynamic, scenario})
          ->Iterations(1)
          ->UseManualTime()
          ->Unit(benchmark::kSecond);
    }
  }
  benchmark::RunSpecifiedBenchmarks();
  g_figure.print();

  const double skew_gain =
      (g_figure.value("static", 1) - g_figure.value("dynamic", 1)) /
      g_figure.value("static", 1) * 100;
  const double error_gain =
      (g_figure.value("static", 2) - g_figure.value("dynamic", 2)) /
      g_figure.value("static", 2) * 100;
  std::printf("\ndynamic-assignment gain: %.1f%% (skewed sizes), %.1f%% "
              "(skewed + error-heavy files)\n",
              skew_gain, error_gain);
  shape_check(g_figure.value("dynamic", 1) < g_figure.value("static", 1),
              "dynamic assignment beats static round-robin on skewed files");
  shape_check(g_figure.value("dynamic", 2) < g_figure.value("static", 2),
              "dynamic assignment absorbs error-heavy files too");
  shape_check(std::abs(g_figure.value("dynamic", 0) -
                       g_figure.value("static", 0)) /
                      g_figure.value("static", 0) <
                  0.08,
              "with uniform files the two policies are comparable");
  return 0;
}
