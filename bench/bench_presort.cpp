// Section 4.5.4 ablation: presorted input.
//
// Catalog files arrive sorted by primary key (a byproduct of extraction).
// Sorted keys land in the B+tree's rightmost leaf, so index page touches
// stay cache-resident; scrambled keys scatter across leaves and, once the
// tree outgrows the buffer cache, every insert risks a miss plus a dirty
// eviction. The effect needs a large preexisting table — we preload the
// repository first (as the paper's production system was) and use a
// moderate cache.
#include "bench_util.h"

#include "htm/htm.h"

namespace {

using namespace skybench;

FigureTable g_figure("Ablation 4.5.4: Presorted Input (100 MB data set)",
                     "preloaded DB size (GB)", "runtime (simulated seconds)");

void preload_objects(SimRepository& repo, int64_t object_rows) {
  using sky::db::Value;
  const int64_t base = 1LL << 58;
  auto must = [](const sky::Status& status) {
    if (!status.is_ok()) std::abort();
  };
  must(repo.engine->bulk_load_sorted(
      repo.engine->table_id("telescope_states").value(),
      {{Value::i64(base), Value::f64(10), Value::f64(0), Value::f64(40)}}));
  must(repo.engine->bulk_load_sorted(
      repo.engine->table_id("observations").value(),
      {{Value::i64(base), Value::i64(1), Value::i64(1), Value::i64(1),
        Value::i64(base), Value::timestamp(1), Value::f64(1.5),
        Value::f64(0.5)}}));
  must(repo.engine->bulk_load_sorted(
      repo.engine->table_id("ccd_columns").value(),
      {{Value::i64(base), Value::i64(base), Value::i32(0), Value::f64(10),
        Value::f64(0), Value::f64(0.873)}}));
  must(repo.engine->bulk_load_sorted(
      repo.engine->table_id("ccd_frames").value(),
      {{Value::i64(base), Value::i64(base), Value::i32(1), Value::i32(0),
        Value::timestamp(0), Value::f64(60), Value::f64(1.2),
        Value::f64(20.5)}}));
  std::vector<sky::db::Row> objects;
  objects.reserve(static_cast<size_t>(object_rows));
  for (int64_t o = 0; o < object_rows; ++o) {
    const double ra = static_cast<double>(o % 360000) / 1000.0;
    objects.push_back({Value::i64(base + o), Value::i64(base), Value::f64(ra),
                       Value::f64(10.0), Value::f64(20.0), Value::f64(0.01),
                       Value::f64(100.0), Value::f64(2.0), Value::f64(0.1),
                       Value::f64(1), Value::f64(1),
                       Value::i64(static_cast<int64_t>(
                           sky::htm::htm_id_radec(ra, 10.0, 14)))});
  }
  must(repo.engine->bulk_load_sorted(
      repo.engine->table_id("objects").value(), objects));
}

void bench_presort(benchmark::State& state) {
  const bool presorted = state.range(0) == 1;
  const int64_t db_gb = state.range(1);
  for (auto _ : state) {
    sky::core::TuningProfile profile = sky::core::TuningProfile::production();
    profile.server_cache_pages = 1024;  // moderate cache: page churn matters
    SimRepository repo = SimRepository::create(profile);
    preload_objects(repo, db_gb * 8000);
    sky::catalog::FileSpec spec;
    spec.name = "presort.cat";
    spec.seed = 1300;
    spec.unit_id = 130;
    spec.target_bytes = bytes_for_paper_mb(100);
    spec.shuffle_object_ids = !presorted;
    const auto text = sky::catalog::CatalogGenerator::generate(spec).text;
    sky::core::BulkLoaderOptions options;
    options.write_audit_row = false;
    const auto report =
        run_bulk(repo, sky::core::CatalogFile{spec.name, text}, options);
    const double seconds = normalized_seconds(report.elapsed);
    state.SetIterationTime(seconds);
    g_figure.add(presorted ? "presorted" : "unsorted",
                 static_cast<double>(db_gb), seconds);
    state.counters["cache_misses"] =
        static_cast<double>(repo.engine->cache_events().misses);
    state.counters["dirty_evictions"] =
        static_cast<double>(repo.engine->cache_events().dirty_evictions);
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  for (const int64_t db_gb : {20, 80}) {
    for (const int64_t presorted : {1, 0}) {
      benchmark::RegisterBenchmark("presort/input", bench_presort)
          ->Args({presorted, db_gb})
          ->Iterations(1)
          ->UseManualTime()
          ->Unit(benchmark::kSecond);
    }
  }
  benchmark::RunSpecifiedBenchmarks();
  g_figure.print();

  const double gain20 =
      (g_figure.value("unsorted", 20) - g_figure.value("presorted", 20)) /
      g_figure.value("unsorted", 20) * 100;
  const double gain80 =
      (g_figure.value("unsorted", 80) - g_figure.value("presorted", 80)) /
      g_figure.value("unsorted", 80) * 100;
  std::printf("\npresort gain: %.1f%% at 20 GB, %.1f%% at 80 GB\n", gain20,
              gain80);
  shape_check(gain20 > 0 && gain80 > 0,
              "presorted input loads faster (index clustering, less I/O)");
  shape_check(gain20 > 5.0,
              "the clustering effect is material (scattered dirty index "
              "leaves cost real page writes)");
  return 0;
}
