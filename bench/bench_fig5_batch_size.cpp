// Figure 5: effect of batch size on runtime, loading a 200 MB data set with
// a single bulk loader.
//
// Paper result: increasing the batch size first helps (round trips
// amortize), the benefit flattens, and the optimum lies between 40 and 50 —
// beyond it, per-batch marshalling costs outweigh the savings.
#include "bench_util.h"

namespace {

using namespace skybench;

FigureTable g_figure("Figure 5: Effect of Batch Size (200 MB data set)",
                     "batch size", "runtime (simulated seconds)");

const std::vector<int64_t> kBatchSizes = {10, 20, 30, 40, 50, 60};

void bench_batch(benchmark::State& state) {
  const int64_t batch = state.range(0);
  for (auto _ : state) {
    SimRepository repo = SimRepository::create();
    const auto file = make_file(200, /*seed=*/500, /*unit_id=*/50);
    sky::core::BulkLoaderOptions options;
    options.batch_size = batch;
    options.write_audit_row = false;
    const auto report = run_bulk(repo, file, options);
    const double seconds = normalized_seconds(report.elapsed);
    state.SetIterationTime(seconds);
    g_figure.add("runtime", static_cast<double>(batch), seconds);
    state.counters["db_calls"] = static_cast<double>(report.db_calls);
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  for (const int64_t batch : kBatchSizes) {
    benchmark::RegisterBenchmark("fig5/batch", bench_batch)
        ->Arg(batch)
        ->Iterations(1)
        ->UseManualTime()
        ->Unit(benchmark::kSecond);
  }
  benchmark::RunSpecifiedBenchmarks();
  g_figure.print();

  // Paper shape: runtime decreases from batch 10, optimum in 40-50, and the
  // curve does not keep improving at 60.
  double best_batch = 0, best_time = 1e18;
  for (const int64_t batch : kBatchSizes) {
    const double t = g_figure.value("runtime", static_cast<double>(batch));
    if (t < best_time) {
      best_time = t;
      best_batch = static_cast<double>(batch);
    }
  }
  std::printf("\noptimal batch size: %.0f (%.1f s)\n", best_batch, best_time);
  shape_check(best_batch >= 40 && best_batch <= 50,
              "optimal batch size lies in the 40-50 range");
  shape_check(g_figure.value("runtime", 10) > g_figure.value("runtime", 40),
              "small batches are clearly slower than the optimum");
  shape_check(g_figure.value("runtime", 60) >= best_time,
              "benefit lessens beyond the optimum");
  return 0;
}
