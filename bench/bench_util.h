// Shared harness for the figure-regeneration benchmarks.
//
// Scale: each benchmark's x-axis is in "paper MB" (megabytes of ASCII
// catalog data in the original study). The harness generates
// SKYLOADER_BENCH_SCALE (default 0.05) times that much real data, runs the
// real loader over it in virtual time, and reports simulated seconds
// normalized back to paper scale (sim_seconds / scale) — workload costs are
// linear in rows, so the axes of the printed tables are directly comparable
// to the paper's figures at any scale.
//
// Each bench binary registers google-benchmark cases (manual timing = the
// normalized simulated seconds) and afterwards prints a figure-shaped table
// plus a SHAPE-CHECK line asserting the qualitative claim of the figure.
#pragma once

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "catalog/generator.h"
#include "catalog/pq_schema.h"
#include "client/sim_session.h"
#include "core/bulk_loader.h"
#include "core/coordinator.h"
#include "core/non_bulk_loader.h"
#include "core/tuning.h"
#include "db/engine.h"

namespace skybench {

using sky::Nanos;

inline double bench_scale() {
  static const double scale = [] {
    const char* env = std::getenv("SKYLOADER_BENCH_SCALE");
    if (env != nullptr) {
      const double parsed = std::atof(env);
      if (parsed > 0) return parsed;
    }
    return 0.05;
  }();
  return scale;
}

inline int64_t bytes_for_paper_mb(double paper_mb) {
  return static_cast<int64_t>(paper_mb * 1e6 * bench_scale());
}

// Simulated seconds normalized to paper scale.
inline double normalized_seconds(Nanos sim_elapsed) {
  return sky::to_seconds(sim_elapsed) / bench_scale();
}

// One catalog file of `paper_mb` megabytes (paper scale).
inline sky::core::CatalogFile make_file(double paper_mb, uint64_t seed,
                                        int64_t unit_id,
                                        double error_rate = 0.0,
                                        bool shuffle_ids = false) {
  sky::catalog::FileSpec spec;
  spec.name = "bench-" + std::to_string(unit_id) + ".cat";
  spec.seed = seed;
  spec.unit_id = unit_id;
  spec.target_bytes = bytes_for_paper_mb(paper_mb);
  spec.error_rate = error_rate;
  spec.shuffle_object_ids = shuffle_ids;
  return sky::core::CatalogFile{
      spec.name, sky::catalog::CatalogGenerator::generate(spec).text};
}

// The 28 files of one observation totalling `paper_mb` (paper scale).
inline std::vector<sky::core::CatalogFile> make_observation(
    double paper_mb, uint64_t seed, int64_t night_id,
    double error_rate = 0.0) {
  std::vector<sky::core::CatalogFile> files;
  for (const auto& spec : sky::catalog::CatalogGenerator::observation_specs(
           seed, night_id, bytes_for_paper_mb(paper_mb), error_rate)) {
    files.push_back(sky::core::CatalogFile{
        spec.name, sky::catalog::CatalogGenerator::generate(spec).text});
  }
  return files;
}

// A repository with reference data loaded and the paper's index policy
// applied, plus its simulation server.
struct SimRepository {
  sky::db::Schema schema;
  std::unique_ptr<sky::db::Engine> engine;
  std::unique_ptr<sky::sim::Environment> env;
  std::unique_ptr<sky::client::SimServer> server;

  // `server_config` overrides the profile-derived sim config wholesale —
  // benches that share one core::ConcurrencyPolicy literal between sim and
  // real runs build their ServerConfig explicitly and pass it here.
  static SimRepository create(
      const sky::core::TuningProfile& profile =
          sky::core::TuningProfile::production(),
      const sky::client::ServerConfig* server_config = nullptr) {
    SimRepository repo;
    repo.schema = sky::catalog::make_pq_schema();
    repo.engine = std::make_unique<sky::db::Engine>(
        repo.schema, profile.engine_options());
    const sky::Status index_status = profile.apply_index_policy(*repo.engine);
    if (!index_status.is_ok()) std::abort();
    repo.env = std::make_unique<sky::sim::Environment>();
    repo.server = std::make_unique<sky::client::SimServer>(
        *repo.env, *repo.engine,
        server_config != nullptr ? *server_config : profile.server_config());
    // Reference tables load before any timing starts.
    repo.env->spawn("reference", [&repo] {
      sky::client::SimSession session(*repo.server);
      sky::core::BulkLoaderOptions options;
      options.write_audit_row = false;
      sky::core::BulkLoader loader(session, repo.schema, options);
      const auto report = loader.load_text(
          "reference",
          sky::catalog::CatalogGenerator::reference_file().text);
      if (!report.is_ok() || report->total_skipped() != 0) std::abort();
    });
    repo.env->run();
    return repo;
  }
};

// Run a single bulk load of `file` in simulation; returns the report.
inline sky::core::FileLoadReport run_bulk(
    SimRepository& repo, const sky::core::CatalogFile& file,
    const sky::core::BulkLoaderOptions& options) {
  sky::core::FileLoadReport out;
  repo.env->spawn("bulk-loader", [&] {
    sky::client::SimSession session(*repo.server);
    sky::core::BulkLoader loader(session, repo.schema, options);
    auto report = loader.load_text(file.name, file.text);
    if (!report.is_ok()) std::abort();
    out = std::move(*report);
  });
  repo.env->run();
  return out;
}

inline sky::core::FileLoadReport run_non_bulk(
    SimRepository& repo, const sky::core::CatalogFile& file,
    const sky::core::NonBulkLoaderOptions& options = {}) {
  sky::core::FileLoadReport out;
  repo.env->spawn("non-bulk-loader", [&] {
    sky::client::SimSession session(*repo.server);
    sky::core::NonBulkLoader loader(session, repo.schema, options);
    auto report = loader.load_text(file.name, file.text);
    if (!report.is_ok()) std::abort();
    out = std::move(*report);
  });
  repo.env->run();
  return out;
}

// Figure-shaped output: series x points, printed as an aligned table.
class FigureTable {
 public:
  FigureTable(std::string title, std::string x_label, std::string y_label)
      : title_(std::move(title)), x_label_(std::move(x_label)),
        y_label_(std::move(y_label)) {}

  void add(const std::string& series, double x, double y) {
    series_order_.insert({series, series_order_.size()});
    values_[{x, series}] = y;
    xs_.insert(x);
  }

  void print() const {
    std::printf("\n=== %s ===\n", title_.c_str());
    std::printf("(%s; x = %s)\n", y_label_.c_str(), x_label_.c_str());
    // Header.
    std::printf("%12s", x_label_.c_str());
    std::vector<std::string> series(series_order_.size());
    for (const auto& [name, index] : series_order_) series[index] = name;
    for (const std::string& name : series) {
      std::printf("  %16s", name.c_str());
    }
    std::printf("\n");
    for (const double x : xs_) {
      std::printf("%12.6g", x);
      for (const std::string& name : series) {
        const auto it = values_.find({x, name});
        if (it == values_.end()) {
          std::printf("  %16s", "-");
        } else {
          std::printf("  %16.2f", it->second);
        }
      }
      std::printf("\n");
    }
  }

  double value(const std::string& series, double x) const {
    const auto it = values_.find({x, series});
    return it == values_.end() ? 0.0 : it->second;
  }

 private:
  std::string title_, x_label_, y_label_;
  std::map<std::string, size_t> series_order_;
  std::map<std::pair<double, std::string>, double> values_;
  std::set<double> xs_;
};

inline void shape_check(bool ok, const char* description) {
  std::printf("SHAPE-CHECK %s: %s\n", ok ? "PASS" : "FAIL", description);
}

// Wall-clock accumulator for per-stage cost breakdowns (bench_hotpath's
// parse/buffer/append/index/wal split): bracket each stage interval with
// start()/stop() — or a Scope — and read totals back in first-use order.
// Repeated intervals for the same stage accumulate.
class StageTimer {
 public:
  void start(const std::string& stage) {
    open_[stage] = std::chrono::steady_clock::now();
  }

  void stop(const std::string& stage) {
    const auto it = open_.find(stage);
    if (it == open_.end()) return;
    add(stage, std::chrono::duration_cast<std::chrono::nanoseconds>(
                   std::chrono::steady_clock::now() - it->second)
                   .count());
    open_.erase(it);
  }

  // RAII bracket for one stage interval.
  class Scope {
   public:
    Scope(StageTimer& timer, std::string stage)
        : timer_(timer), stage_(std::move(stage)) {
      timer_.start(stage_);
    }
    ~Scope() { timer_.stop(stage_); }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    StageTimer& timer_;
    std::string stage_;
  };

  int64_t total_ns(const std::string& stage) const {
    const auto it = index_.find(stage);
    return it == index_.end() ? 0 : totals_[it->second].second;
  }
  double seconds(const std::string& stage) const {
    return static_cast<double>(total_ns(stage)) / 1e9;
  }
  // (stage, total ns) pairs in first-use order.
  const std::vector<std::pair<std::string, int64_t>>& totals() const {
    return totals_;
  }

 private:
  void add(const std::string& stage, int64_t ns) {
    const auto [it, inserted] = index_.try_emplace(stage, totals_.size());
    if (inserted) totals_.emplace_back(stage, 0);
    totals_[it->second].second += ns;
  }

  std::map<std::string, size_t> index_;
  std::vector<std::pair<std::string, int64_t>> totals_;
  std::map<std::string, std::chrono::steady_clock::time_point> open_;
};

}  // namespace skybench
