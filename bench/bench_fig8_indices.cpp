// Figure 8: impact of secondary indices on bulk-loading runtime,
// data sizes 200-1200 MB, single loader, empty database.
//
// Paper result: the single large-integer attribute index (htmid) costs an
// almost undetectable ~1.5% on average; the composite index over three
// float attributes costs a significant ~8.5%; the degradation tends to grow
// with data size.
#include "bench_util.h"

namespace {

using namespace skybench;

FigureTable g_figure("Figure 8: Effect of Indices",
                     "data size (MB)", "runtime (simulated seconds)");

const std::vector<double> kSizesMb = {200, 400, 600, 800, 1000, 1200};

enum class Scenario { kNone = 0, kIntIndex = 1, kFloatComposite = 2 };

const char* scenario_name(Scenario scenario) {
  switch (scenario) {
    case Scenario::kNone: return "no-indices";
    case Scenario::kIntIndex: return "1-int-index";
    case Scenario::kFloatComposite: return "3-float-index";
  }
  return "?";
}

void bench_indices(benchmark::State& state) {
  const double mb = static_cast<double>(state.range(0));
  const auto scenario = static_cast<Scenario>(state.range(1));
  for (auto _ : state) {
    sky::core::TuningProfile profile = sky::core::TuningProfile::production();
    profile.maintain_htmid_index = scenario == Scenario::kIntIndex;
    profile.maintain_composite_index = scenario == Scenario::kFloatComposite;
    SimRepository repo = SimRepository::create(profile);
    const auto file =
        make_file(mb, /*seed=*/800 + static_cast<uint64_t>(mb),
                  /*unit_id=*/80 + static_cast<int64_t>(mb) / 100);
    sky::core::BulkLoaderOptions options;
    options.write_audit_row = false;
    const auto report = run_bulk(repo, file, options);
    const double seconds = normalized_seconds(report.elapsed);
    state.SetIterationTime(seconds);
    g_figure.add(scenario_name(scenario), mb, seconds);
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  for (const double mb : kSizesMb) {
    for (const Scenario scenario :
         {Scenario::kNone, Scenario::kIntIndex, Scenario::kFloatComposite}) {
      benchmark::RegisterBenchmark("fig8/indices", bench_indices)
          ->Args({static_cast<int64_t>(mb), static_cast<int64_t>(scenario)})
          ->Iterations(1)
          ->UseManualTime()
          ->Unit(benchmark::kSecond);
    }
  }
  benchmark::RunSpecifiedBenchmarks();
  g_figure.print();

  double int_overhead_sum = 0, float_overhead_sum = 0;
  double first_float_overhead = 0, last_float_overhead = 0;
  for (const double mb : kSizesMb) {
    const double base = g_figure.value("no-indices", mb);
    const double int_overhead =
        (g_figure.value("1-int-index", mb) - base) / base * 100.0;
    const double float_overhead =
        (g_figure.value("3-float-index", mb) - base) / base * 100.0;
    int_overhead_sum += int_overhead;
    float_overhead_sum += float_overhead;
    if (mb == kSizesMb.front()) first_float_overhead = float_overhead;
    if (mb == kSizesMb.back()) last_float_overhead = float_overhead;
  }
  const double int_avg = int_overhead_sum / static_cast<double>(kSizesMb.size());
  const double float_avg =
      float_overhead_sum / static_cast<double>(kSizesMb.size());
  std::printf("\naverage overhead: 1-int index %.2f%%, 3-float composite %.2f%%\n",
              int_avg, float_avg);
  shape_check(int_avg > 0.2 && int_avg < 4.0,
              "single-integer index impact is small (~1.5% in the paper)");
  shape_check(float_avg > 5.0 && float_avg < 14.0,
              "3-float composite index impact is significant (~8.5%)");
  shape_check(float_avg > 3.0 * int_avg,
              "composite float index costs several times the int index");
  shape_check(last_float_overhead >= first_float_overhead - 0.5,
              "index degradation does not shrink as data grows");
  return 0;
}
