// Multi-engine scale-out: shard weak scaling, with the simulated cluster
// (Oracle RAC style) study as the motivating baseline.
//
// Part A (baseline, simulated) — the paper closes by asking how a clustered
// host "scales on databases of the Palomar-Quest magnitude ... provided
// performance and stability are not sacrificed". Scaling the simulated host
// from 1 to 4 nodes under 12 loaders shows why shared-everything clustering
// disappoints: with all nodes writing the same hot tables, every hot block
// ships across the interconnect (cache fusion), and even the perfectly
// partitioned variant flattens against the shared SAN. The lesson — scale
// by *partitioning the data*, not by adding nodes over shared storage — is
// what the shard layer implements.
//
// Part B (the real thing) — db::ShardedRepository weak scaling: M
// independent engines partitioned by HTM trixel range (equal-frequency
// boundaries planned from a position sample), fixed files and loaders *per
// shard*, modeled device latencies on every engine so each shard pays
// realistic redo/data/log write time. Aggregate rows/sec should grow near
// the shard count while per-lookup latency stays flat: the scatter-gather
// reads route point lookups straight to the owning shard. Every run must
// pass per-shard verify_integrity() and cross-shard FK reconciliation.
//
// Emits BENCH_shard_scaling.json. With --smoke, runs a reduced sweep and
// exits non-zero if the scaling gates fail (CI wiring).
#include "bench_util.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>

#include "shard/sharded_repository.h"

namespace {

using namespace skybench;

// Modeled device waits per engine call (see db::ModeledDeviceLatency), the
// same constants as bench_engine_scaling: the host running this bench may
// have few cores, so scaling is carried by these waits overlapping across
// shard engines, not by CPU parallelism.
constexpr sky::Nanos kBatchRedoWrite = 12 * 1000 * 1000;  // 12 ms
constexpr sky::Nanos kDataWritePerPage = 100 * 1000;      // 0.1 ms
constexpr sky::Nanos kCommitLogFlush = 4 * 1000 * 1000;   // 4 ms

constexpr int kLoadersPerShard = 4;
constexpr int kFilesPerShard = 8;  // two per loader

FigureTable g_rac("Baseline: simulated cluster (RAC-style), 12 loaders",
                  "cluster nodes", "throughput (MB/s, paper scale)");
FigureTable g_weak("Shard weak scaling: fixed rows and loaders per shard",
                   "shards", "aggregate rows/sec");

// ------------------------------------------------------------------ Part A

double run_rac(int nodes, bool partitioned, double paper_mb) {
  sky::core::TuningProfile profile = sky::core::TuningProfile::production();
  sky::db::Engine engine(sky::catalog::make_pq_schema(),
                         profile.engine_options());
  if (!profile.apply_index_policy(engine).is_ok()) std::abort();
  sky::sim::Environment env;
  sky::client::ServerConfig config;
  config.nodes = nodes;
  config.cpus = 8 * nodes;              // each node is a full host
  config.batch_gate_slots = 5 * nodes;  // per-instance lock capacity
  config.concurrency.max_concurrent_transactions = 8 * nodes;
  if (partitioned) config.cache_fusion_per_page = 0;
  sky::client::SimServer server(env, engine, config);
  env.spawn("reference", [&] {
    sky::client::SimSession session(server);
    sky::core::BulkLoaderOptions options;
    options.write_audit_row = false;
    sky::core::BulkLoader loader(session, engine.schema(), options);
    const auto report = loader.load_text(
        "reference", sky::catalog::CatalogGenerator::reference_file().text);
    if (!report.is_ok()) std::abort();
  });
  env.run();

  const auto files = make_observation(paper_mb, /*seed=*/2100,
                                      /*night_id=*/21);
  sky::core::CoordinatorOptions options;
  options.parallel_degree = 12;
  options.loader.write_audit_row = false;
  const auto report = sky::core::LoadCoordinator::run_sim(
      env, server, files, engine.schema(), options);
  if (!report.is_ok()) std::abort();
  const double seconds = normalized_seconds(report->makespan);
  const double mb =
      static_cast<double>(report->total_bytes) / 1e6 / bench_scale();
  return seconds > 0 ? mb / seconds : 0;
}

// ------------------------------------------------------------------ Part B

// Equal-frequency boundary planning needs a position sample that covers the
// workload's sky footprint — each catalog unit images a different region, so
// sample a small slice of *every* unit in the sweep via a quick unmodeled
// single-engine load.
std::vector<uint64_t> sample_trixels(int policy_depth, int units) {
  const sky::db::Schema schema = sky::catalog::make_pq_schema();
  const sky::core::TuningProfile profile =
      sky::core::TuningProfile::production();
  sky::db::Engine engine(schema, profile.engine_options());
  if (!profile.apply_index_policy(engine).is_ok()) std::abort();
  sky::client::DirectSession session(engine);
  sky::core::BulkLoaderOptions loader_options;
  loader_options.write_audit_row = false;
  sky::core::BulkLoader loader(session, schema, loader_options);
  if (!loader.load_text("reference",
                        sky::catalog::CatalogGenerator::reference_file().text)
           .is_ok()) {
    std::abort();
  }
  for (int f = 0; f < units; ++f) {
    sky::catalog::FileSpec spec;
    spec.name = "boundary-sample-" + std::to_string(f) + ".cat";
    spec.seed = 5200 + static_cast<uint64_t>(f);  // the workload's units
    spec.unit_id = 700 + f;
    spec.target_bytes = 8 * 1024;
    const auto sample_file = sky::catalog::CatalogGenerator::generate(spec);
    if (!loader.load_text(spec.name, sample_file.text).is_ok()) std::abort();
  }

  const uint32_t objects = schema.table_id("objects").value();
  const int ra = schema.table(objects).column_index("ra");
  const int dec = schema.table(objects).column_index("dec");
  const std::vector<sky::db::Row> rows = engine.live_view().scan_collect(
      objects, [](const sky::db::Row&) { return true; });
  std::vector<uint64_t> trixels;
  trixels.reserve(rows.size());
  for (const sky::db::Row& row : rows) {
    trixels.push_back(sky::htm::htm_id_radec(
        row[static_cast<size_t>(ra)].as_f64(),
        row[static_cast<size_t>(dec)].as_f64(), policy_depth));
  }
  if (trixels.empty()) std::abort();
  return trixels;
}

// Fixed size per file; file count scales with the shard count (weak
// scaling), so per-shard work is constant across the sweep.
std::vector<sky::core::CatalogFile> weak_files(int shards,
                                               int64_t bytes_per_file) {
  std::vector<sky::core::CatalogFile> files;
  for (int f = 0; f < kFilesPerShard * shards; ++f) {
    sky::catalog::FileSpec spec;
    spec.name = "shard-scale-" + std::to_string(f) + ".cat";
    spec.seed = 5200 + static_cast<uint64_t>(f);
    spec.unit_id = 700 + f;
    spec.target_bytes = bytes_per_file;
    files.push_back(sky::core::CatalogFile{
        spec.name, sky::catalog::CatalogGenerator::generate(spec).text});
  }
  return files;
}

struct ShardRun {
  int shards = 0;
  double seconds = 0;
  int64_t rows = 0;
  double rows_per_sec = 0;
  double skew = 0;
  std::vector<int64_t> shard_rows;
  double pk_p99_us = 0;     // p99 of routed point lookups, microseconds
  int64_t fk_remote = 0;    // FK edges whose parent lives on another shard
  int64_t fk_orphans = 0;
};

ShardRun run_sharded(int shards, const std::vector<uint64_t>& sample,
                     int64_t bytes_per_file) {
  const sky::db::Schema schema = sky::catalog::make_pq_schema();
  const sky::core::TuningProfile profile =
      sky::core::TuningProfile::production();
  sky::db::EngineOptions options = profile.engine_options();
  options.latency.batch_redo_write = kBatchRedoWrite;
  options.latency.data_write_per_page = kDataWritePerPage;
  options.latency.commit_log_flush = kCommitLogFlush;
  options.policies.shard.shard_count = shards;
  if (shards > 1) {
    options.policies.shard.boundaries =
        sky::db::ShardRouter::plan_boundaries(sample, shards);
  }
  sky::db::ShardedRepository repo(schema, options);
  for (int s = 0; s < repo.shard_count(); ++s) {
    if (!profile.apply_index_policy(repo.shard(s)).is_ok()) std::abort();
  }
  {
    auto session = repo.make_session();
    sky::core::BulkLoaderOptions loader_options;
    loader_options.write_audit_row = false;
    sky::core::BulkLoader loader(*session, schema, loader_options);
    const auto report = loader.load_text(
        "reference", sky::catalog::CatalogGenerator::reference_file().text);
    if (!report.is_ok() || report->total_skipped() != 0) std::abort();
  }

  const auto files = weak_files(shards, bytes_per_file);
  sky::core::CoordinatorOptions coordinator_options;
  coordinator_options.parallel_degree = kLoadersPerShard * shards;
  coordinator_options.loader.write_audit_row = false;
  coordinator_options.loader.commit.every_cycles = 2;
  const auto factory = [&](int) { return repo.make_session(); };
  auto report = sky::core::LoadCoordinator::run_threads(
      files, schema, factory, coordinator_options);
  if (!report.is_ok()) std::abort();
  if (!repo.verify_integrity().is_ok()) std::abort();
  const auto fk = repo.reconcile_foreign_keys();
  if (!fk.is_ok()) std::abort();
  repo.fill_shard_telemetry(*report);

  ShardRun run;
  run.shards = shards;
  run.seconds = sky::to_seconds(report->makespan);
  run.rows = report->total_rows_loaded;
  run.rows_per_sec =
      run.seconds > 0 ? static_cast<double>(run.rows) / run.seconds : 0;
  run.skew = repo.shard_skew();
  run.shard_rows = repo.shard_rows();
  run.fk_remote = fk->remote_hits;
  run.fk_orphans = fk->orphans;

  // Query phase: routed point lookups. detections is block-cyclic on its
  // integer PK, so the sharded view derives the owner from the key and goes
  // straight to one shard. Reported is the worst per-shard p99 — each
  // shard's lookup latency must stay flat as the fleet grows (weak scaling
  // adds shards, it must not add per-shard coordination cost).
  const uint32_t detections = schema.table_id("detections").value();
  const int pk_col = schema.table(detections).column_index("detection_id");
  const sky::db::ShardedReadView view = repo.read_view();
  constexpr size_t kLookupsPerShard = 1500;
  for (int s = 0; s < repo.shard_count(); ++s) {
    const std::vector<sky::db::Row> det_rows = view.shard_view(s).scan_collect(
        detections, [](const sky::db::Row&) { return true; });
    if (det_rows.empty()) std::abort();
    const auto pk_of = [&](size_t k) {
      const sky::db::Row& target = det_rows[(k * 7919) % det_rows.size()];
      return sky::db::Row{target[static_cast<size_t>(pk_col)]};
    };
    for (size_t k = 0; k < 200; ++k) {  // warmup
      if (!view.pk_lookup(detections, pk_of(k)).is_ok()) std::abort();
    }
    std::vector<double> latencies_us;
    latencies_us.reserve(kLookupsPerShard);
    for (size_t k = 0; k < kLookupsPerShard; ++k) {
      const sky::db::Row pk = pk_of(k);
      const auto start = std::chrono::steady_clock::now();
      const auto hit = view.pk_lookup(detections, pk);
      const auto stop = std::chrono::steady_clock::now();
      if (!hit.is_ok()) std::abort();
      latencies_us.push_back(
          static_cast<double>(std::chrono::duration_cast<
                                  std::chrono::nanoseconds>(stop - start)
                                  .count()) /
          1e3);
    }
    std::sort(latencies_us.begin(), latencies_us.end());
    run.pk_p99_us = std::max(
        run.pk_p99_us, latencies_us[(latencies_us.size() * 99) / 100]);
  }
  return run;
}

std::string shard_run_json(const ShardRun& run) {
  std::string rows = "[";
  for (size_t s = 0; s < run.shard_rows.size(); ++s) {
    rows += (s > 0 ? ", " : "") + std::to_string(run.shard_rows[s]);
  }
  rows += "]";
  char buffer[384];
  std::snprintf(buffer, sizeof(buffer),
                "    {\"shards\": %d, \"makespan_s\": %.4f, \"rows\": %lld, "
                "\"rows_per_sec\": %.1f, \"shard_skew\": %.4f, "
                "\"pk_p99_us\": %.2f, \"fk_remote_hits\": %lld, "
                "\"fk_orphans\": %lld, \"shard_rows\": %s}",
                run.shards, run.seconds, static_cast<long long>(run.rows),
                run.rows_per_sec, run.skew, run.pk_p99_us,
                static_cast<long long>(run.fk_remote),
                static_cast<long long>(run.fk_orphans), rows.c_str());
  return buffer;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  // Part A: the simulated cluster baseline.
  const double rac_mb = smoke ? 60 : 280;
  const std::vector<int> rac_nodes = smoke ? std::vector<int>{1, 4}
                                           : std::vector<int>{1, 2, 4};
  std::vector<std::string> rac_json;
  for (const int nodes : rac_nodes) {
    for (const bool partitioned : {false, true}) {
      const double mbps = run_rac(nodes, partitioned, rac_mb);
      const char* mode = partitioned ? "partitioned" : "shared-tables";
      g_rac.add(mode, nodes, mbps);
      char buffer[160];
      std::snprintf(buffer, sizeof(buffer),
                    "    {\"mode\": \"%s\", \"nodes\": %d, "
                    "\"mb_per_sec\": %.2f}",
                    mode, nodes, mbps);
      rac_json.push_back(buffer);
    }
  }
  g_rac.print();
  const double shared1 = g_rac.value("shared-tables", 1);
  const double shared4 = g_rac.value("shared-tables", 4);
  const double part1 = g_rac.value("partitioned", 1);
  const double part4 = g_rac.value("partitioned", 4);
  std::printf("4-node cluster: shared-tables %.2fx, partitioned %.2fx "
              "(of 1-node)\n",
              shared1 > 0 ? shared4 / shared1 : 0,
              part1 > 0 ? part4 / part1 : 0);
  shape_check(part4 > shared4 * 1.05,
              "cache-fusion traffic on shared tables costs real throughput");
  shape_check(part4 < part1 * 3.0,
              "cluster scaling stays sublinear: the shared SAN caps it");

  // Part B: real shard weak scaling. File size is fixed small so the
  // modeled device waits dominate the single-host parse cost — the sweep
  // measures how well per-shard device waits overlap, not how fast one CPU
  // parses 8 shards' worth of text.
  const int64_t bytes_per_file = 24 * 1024;
  const std::vector<int> shard_counts = smoke ? std::vector<int>{1, 4}
                                              : std::vector<int>{1, 2, 4, 8};
  std::vector<ShardRun> runs;
  std::vector<std::string> weak_json;
  for (const int shards : shard_counts) {
    const std::vector<uint64_t> sample = sample_trixels(
        sky::core::ShardPolicy{}.htm_depth, kFilesPerShard * shards);
    const ShardRun run = run_sharded(shards, sample, bytes_per_file);
    g_weak.add("htm-range", shards, run.rows_per_sec);
    std::printf("shards=%d: %.2fs, %lld rows, %.0f rows/s, skew %.2f, "
                "pk p99 %.1fus, fk remote %lld, orphans %lld\n",
                run.shards, run.seconds, static_cast<long long>(run.rows),
                run.rows_per_sec, run.skew, run.pk_p99_us,
                static_cast<long long>(run.fk_remote),
                static_cast<long long>(run.fk_orphans));
    weak_json.push_back(shard_run_json(run));
    runs.push_back(run);
  }
  g_weak.print();

  const auto find_run = [&](int shards) -> const ShardRun* {
    for (const ShardRun& run : runs) {
      if (run.shards == shards) return &run;
    }
    return nullptr;
  };
  const ShardRun* one = find_run(1);
  const ShardRun* four = find_run(4);
  if (one == nullptr || four == nullptr) std::abort();
  std::printf("\n4-shard weak scaling: %.2fx aggregate rows/sec, pk p99 "
              "%.2fx, skew %.2f\n",
              one->rows_per_sec > 0 ? four->rows_per_sec / one->rows_per_sec
                                    : 0,
              one->pk_p99_us > 0 ? four->pk_p99_us / one->pk_p99_us : 0,
              four->skew);

  const bool gate_scaling = four->rows_per_sec >= 3.0 * one->rows_per_sec;
  bool gate_skew = true;
  bool gate_fk = true;
  for (const ShardRun& run : runs) {
    gate_skew = gate_skew && run.skew <= 1.5;
    gate_fk = gate_fk && run.fk_orphans == 0;
  }
  const bool gate_p99 = four->pk_p99_us <= 3.0 * one->pk_p99_us;
  shape_check(gate_scaling,
              ">=3x aggregate rows/sec at 4 shards (weak scaling)");
  shape_check(gate_skew,
              "planned HTM boundaries hold shard skew <= 1.5 at every M");
  shape_check(gate_p99,
              "routed point-lookup p99 stays near-flat as shards are added");
  shape_check(gate_fk, "cross-shard FK reconciliation converges at every M");

  {
    std::ofstream json("BENCH_shard_scaling.json");
    json << "{\n  \"rac_baseline\": [\n";
    for (size_t i = 0; i < rac_json.size(); ++i) {
      json << rac_json[i] << (i + 1 < rac_json.size() ? ",\n" : "\n");
    }
    json << "  ],\n  \"weak_scaling\": [\n";
    for (size_t i = 0; i < weak_json.size(); ++i) {
      json << weak_json[i] << (i + 1 < weak_json.size() ? ",\n" : "\n");
    }
    json << "  ]\n}\n";
  }
  std::printf("\nwrote BENCH_shard_scaling.json\n");

  if (smoke && !(gate_scaling && gate_skew && gate_p99 && gate_fk)) {
    std::printf("SMOKE GATE FAIL\n");
    return 1;
  }
  return 0;
}
