// Section 6: SkyLoader's single-pass loading vs the SDSS-style two-phase
// pipeline (convert to per-table CSV -> bulk load a task database -> fully
// validate -> publish to the destination).
//
// The paper hypothesizes the single-pass approach is more efficient but
// could not test it ("due to the incompatibility of these two repositories").
// On equal substrates, it can be measured — including where the two-phase
// time goes.
#include "bench_util.h"

#include "core/sdss_loader.h"

namespace {

using namespace skybench;

FigureTable g_figure("Section 6: SkyLoader vs SDSS-style two-phase loading",
                     "data size (MB)", "runtime (simulated seconds)");

sky::core::SdssPhaseBreakdown g_last_phases;

void bench_pipeline(benchmark::State& state) {
  const double mb = static_cast<double>(state.range(0));
  const bool sdss = state.range(1) == 1;
  for (auto _ : state) {
    SimRepository repo = SimRepository::create();
    const auto file =
        make_file(mb, /*seed=*/1700 + static_cast<uint64_t>(mb),
                  /*unit_id=*/170 + static_cast<int64_t>(mb) / 100);
    Nanos elapsed = 0;
    repo.env->spawn("pipeline", [&] {
      sky::client::SimSession session(*repo.server);
      const Nanos start = repo.env->now();
      if (sdss) {
        sky::core::SdssLoaderOptions options;
        options.reference_seed_text =
            sky::catalog::CatalogGenerator::reference_file().text;
        sky::core::SdssStyleLoader loader(session, repo.schema, options);
        const auto report = loader.load_text(file.name, file.text);
        if (!report.is_ok() || report->total_skipped() != 0) std::abort();
        g_last_phases = loader.phases();
      } else {
        sky::core::BulkLoaderOptions options;
        options.write_audit_row = false;
        sky::core::BulkLoader loader(session, repo.schema, options);
        const auto report = loader.load_text(file.name, file.text);
        if (!report.is_ok() || report->total_skipped() != 0) std::abort();
      }
      elapsed = repo.env->now() - start;
    });
    repo.env->run();
    const double seconds = normalized_seconds(elapsed);
    state.SetIterationTime(seconds);
    g_figure.add(sdss ? "sdss-two-phase" : "skyloader", mb, seconds);
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  for (const int64_t mb : {100, 200, 400}) {
    for (const int64_t sdss : {0, 1}) {
      benchmark::RegisterBenchmark("sdss_comparison/pipeline", bench_pipeline)
          ->Args({mb, sdss})
          ->Iterations(1)
          ->UseManualTime()
          ->Unit(benchmark::kSecond);
    }
  }
  benchmark::RunSpecifiedBenchmarks();
  g_figure.print();

  std::printf("\nSDSS-style phase breakdown (last run): convert %.1f s, "
              "task load %.1f s, validate %.1f s, publish %.1f s "
              "(normalized)\n",
              normalized_seconds(g_last_phases.convert),
              normalized_seconds(g_last_phases.task_load),
              normalized_seconds(g_last_phases.validate),
              normalized_seconds(g_last_phases.publish));
  bool single_pass_wins = true;
  for (const double mb : {100.0, 200.0, 400.0}) {
    if (g_figure.value("skyloader", mb) >=
        g_figure.value("sdss-two-phase", mb)) {
      single_pass_wins = false;
    }
  }
  const double overhead =
      (g_figure.value("sdss-two-phase", 200) -
       g_figure.value("skyloader", 200)) /
      g_figure.value("skyloader", 200) * 100;
  std::printf("two-phase overhead at 200 MB: %.1f%%\n", overhead);
  shape_check(single_pass_wins,
              "single-pass SkyLoader beats the two-phase pipeline "
              "(the paper's hypothesis)");
  shape_check(overhead > 10 && overhead < 200,
              "the two-phase overhead is real but the same order of "
              "magnitude (both pay the destination inserts)");
  return 0;
}
