// Section 4.5.5 ablation: server data-cache size during loading.
//
// Counterintuitive paper finding: a *smaller* data cache loads faster. The
// database writer scans the whole cache each time it wakes to flush dirty
// buffers; the wake rate is set by the dirty-page production rate (fixed by
// the workload), so a bigger cache means more scan work per wake with no
// offsetting benefit for a pure insert stream.
#include "bench_util.h"

namespace {

using namespace skybench;

FigureTable g_figure("Ablation 4.5.5: Server Data Cache (200 MB data set)",
                     "cache size (8 KiB pages)", "runtime (simulated seconds)");

const std::vector<int64_t> kCachePages = {4096, 16384, 65536, 262144, 1048576};

void bench_cache(benchmark::State& state) {
  const int64_t pages = state.range(0);
  for (auto _ : state) {
    sky::core::TuningProfile profile = sky::core::TuningProfile::production();
    profile.server_cache_pages = pages;
    SimRepository repo = SimRepository::create(profile);
    const auto file = make_file(200, /*seed=*/1400, /*unit_id=*/140);
    sky::core::BulkLoaderOptions options;
    options.write_audit_row = false;
    const auto report = run_bulk(repo, file, options);
    const double seconds = normalized_seconds(report.elapsed);
    state.SetIterationTime(seconds);
    g_figure.add("runtime", static_cast<double>(pages), seconds);
    state.counters["writer_scanned_frames"] = static_cast<double>(
        repo.engine->cache_events().writer_scanned_frames);
    state.counters["writer_wakes"] =
        static_cast<double>(repo.engine->cache_events().writer_wakes);
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  for (const int64_t pages : kCachePages) {
    benchmark::RegisterBenchmark("data_cache/pages", bench_cache)
        ->Arg(pages)
        ->Iterations(1)
        ->UseManualTime()
        ->Unit(benchmark::kSecond);
  }
  benchmark::RunSpecifiedBenchmarks();
  g_figure.print();

  const double small = g_figure.value("runtime", 4096);
  const double huge = g_figure.value("runtime", 1048576);
  std::printf("\n4K-page cache: %.1f s; 1M-page cache: %.1f s (+%.1f%%)\n",
              small, huge, (huge - small) / small * 100);
  shape_check(huge > small,
              "a smaller data cache loads faster (DBWR scan cost)");
  bool monotone = true;
  for (size_t i = 1; i < kCachePages.size(); ++i) {
    if (g_figure.value("runtime", static_cast<double>(kCachePages[i])) +
            0.5 <
        g_figure.value("runtime", static_cast<double>(kCachePages[i - 1]))) {
      monotone = false;
    }
  }
  shape_check(monotone, "runtime grows (weakly) with cache size");
  return 0;
}
