// The flagship mixed workload: query service while the repository loads.
//
// The repository "must be a warehouse to store incrementally loaded data
// [and] act as a query engine to support scientific research" at the same
// time (section 4.5.1). This bench runs that mix on real threads: N loader
// threads stream sorted columnar batches into an objects table (PK objid,
// non-unique htmid secondary — the cone-search index the paper refuses to
// drop) while M interactive clients issue PK probes and small htmid ranges
// and a batch client sweeps the table. Two read paths are contrasted:
//
//   * baseline  — the live latch-shared reads: every lookup takes the index
//     latch shared and the heap extent latch under it, so it queues behind
//     each loader's exclusive columnar publish window;
//   * snapshot  — db::QueryScheduler admission (interactive/batch lanes,
//     batch yielding to interactive) + ReadView reads (Admission::view())
//     against a pinned copy-on-write snapshot: zero latches shared with
//     ingest. Both modes run the same ReadView query code; only the view's
//     construction differs.
//
// Loader appends pay a modeled per-row extent write (EngineOptions::
// latency.extent_append_write) so publish windows have a deterministic
// width: the baseline's tail latency is the latch story, not scheduler
// noise. Ingest throughput is also measured with M=0 (query-free) to price
// what query service costs the load.
//
// A deterministic sim scenario exercises the SimServer's twin query lanes
// (ServerConfig::query): batch admission vs an interactive burst, with
// yielding on and off.
//
// Emits BENCH_query_while_loading.json. `--smoke` runs a short sweep and
// exits non-zero unless snapshot reads improve interactive p99 by >=1.5x —
// the CI guard. Full mode shape-checks the ISSUE targets: >=5x interactive
// p99 at M=100 and <=10% ingest regression vs the query-free load.
#include "bench_util.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <fstream>
#include <thread>

#include "client/sim_server.h"
#include "db/query_scheduler.h"
#include "sim/environment.h"

namespace {

using namespace skybench;
using sky::db::Value;

constexpr size_t kBatchRows = 2048;
constexpr int kLoaders = 4;
constexpr int kBatchClients = 1;
constexpr int64_t kObjidStripe = 1'000'000'000;  // per-loader PK namespace
constexpr int64_t kHtmidSpace = 1 << 20;

sky::db::Schema make_objects_schema() {
  sky::db::Schema schema;
  sky::db::TableDef objects;
  objects.name = "objects";
  objects.col("objid", sky::db::ColumnType::kInt64, /*nullable=*/false)
      .col("htmid", sky::db::ColumnType::kInt64, /*nullable=*/false)
      .col("ra", sky::db::ColumnType::kDouble)
      .col("dec", sky::db::ColumnType::kDouble)
      .col("mag", sky::db::ColumnType::kDouble);
  objects.primary_key = {"objid"};
  objects.indexes.push_back({"ix_htmid", {"htmid"}, /*unique=*/false, {}});
  if (!schema.add_table(std::move(objects)).is_ok()) std::abort();
  return schema;
}

sky::db::EngineOptions mixed_engine_options() {
  sky::db::EngineOptions options;
  options.heap_extents = 2;
  // Deterministic publish-window width: 5 us per appended row while the
  // extent latch is held (~10 ms per 2048-row batch). Keeps the loaders
  // latency-bound rather than CPU-bound, so the measured read-path contrast
  // is the latch story, not host scheduling.
  options.latency.extent_append_write = 5 * sky::kMicrosecond;
  return options;
}

double percentile_ms(std::vector<sky::Nanos>& samples, double p) {
  if (samples.empty()) return 0.0;
  const auto rank = static_cast<size_t>(
      p * static_cast<double>(samples.size() - 1));
  std::nth_element(samples.begin(),
                   samples.begin() + static_cast<std::ptrdiff_t>(rank),
                   samples.end());
  return static_cast<double>(samples[rank]) / 1e6;
}

sky::Nanos since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - start)
      .count();
}

struct MixedResult {
  double ingest_rows_per_sec = 0;
  double interactive_p50_ms = 0;
  double interactive_p99_ms = 0;
  double batch_p99_ms = 0;
  int64_t interactive_queries = 0;
  int64_t batch_scans = 0;
  int64_t batch_yields = 0;   // snapshot mode only
  int64_t lane_wait_ms = 0;   // snapshot mode only (summed lane queue wait)
};

// One mixed run: kLoaders loader threads + `interactive_clients` +
// kBatchClients (0 of each when measuring the query-free reference), for
// `window_s` of measured wall time.
MixedResult run_mixed(bool use_snapshots, int interactive_clients,
                      int batch_clients, double window_s) {
  const sky::db::Schema schema = make_objects_schema();
  sky::db::Engine engine(schema, mixed_engine_options());
  const uint32_t objects = engine.table_id("objects").value();

  sky::core::QueryPolicy policy;
  policy.use_snapshots = use_snapshots;
  sky::db::QueryScheduler scheduler(engine, policy);

  std::atomic<bool> stop{false};
  std::atomic<int64_t> rows_committed{0};
  sky::db::OpCosts lane_costs;
  std::mutex lane_costs_mu;
  // Per-loader committed PK high-water marks so clients probe real rows.
  std::vector<std::atomic<int64_t>> committed_high(kLoaders);
  for (auto& high : committed_high) high.store(0);

  std::vector<std::thread> threads;
  for (int w = 0; w < kLoaders; ++w) {
    threads.emplace_back([&, w] {
      sky::Rng rng(9000 + static_cast<uint64_t>(w));
      int64_t next_id = 0;
      int64_t txn_rows = 0;
      uint64_t txn = engine.begin_transaction();
      while (!stop.load(std::memory_order_relaxed)) {
        sky::db::ColumnBatch batch(schema.table(objects));
        for (size_t r = 0; r < kBatchRows; ++r) {
          batch.push_i64(0, w * kObjidStripe + next_id++);
          batch.push_i64(1, rng.uniform_int(0, kHtmidSpace - 1));
          batch.push_f64(2, rng.uniform_range(0, 360));
          batch.push_f64(3, rng.uniform_range(-90, 90));
          batch.push_f64(4, rng.uniform_range(14, 24));
        }
        const sky::db::BatchResult result =
            engine.insert_column_batch(txn, objects, batch);
        if (result.error.has_value()) std::abort();
        txn_rows += result.rows_applied;
        // Commit every 4 batches: snapshot visibility advances in
        // transaction-sized steps, as the loaders' infrequent commits do.
        if (txn_rows >= static_cast<int64_t>(4 * kBatchRows)) {
          if (!engine.commit(txn).is_ok()) std::abort();
          rows_committed.fetch_add(txn_rows, std::memory_order_relaxed);
          committed_high[static_cast<size_t>(w)].store(
              next_id, std::memory_order_relaxed);
          txn_rows = 0;
          txn = engine.begin_transaction();
        }
      }
      if (!engine.commit(txn).is_ok()) std::abort();
      rows_committed.fetch_add(txn_rows, std::memory_order_relaxed);
    });
  }

  std::vector<std::vector<sky::Nanos>> interactive_samples(
      static_cast<size_t>(interactive_clients));
  for (auto& samples : interactive_samples) samples.reserve(1 << 15);
  for (int c = 0; c < interactive_clients; ++c) {
    threads.emplace_back([&, c] {
      sky::Rng rng(40000 + static_cast<uint64_t>(c));
      auto& samples = interactive_samples[static_cast<size_t>(c)];
      sky::db::OpCosts costs;
      while (!stop.load(std::memory_order_relaxed)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        const auto loader =
            static_cast<size_t>(rng.uniform_int(0, kLoaders - 1));
        const int64_t high =
            committed_high[loader].load(std::memory_order_relaxed);
        const int64_t objid =
            static_cast<int64_t>(loader) * kObjidStripe +
            (high > 0 ? rng.uniform_int(0, high - 1) : 0);
        const int64_t htmid = rng.uniform_int(0, kHtmidSpace - 65);
        const auto begin = std::chrono::steady_clock::now();
        // One read path for both modes: the query code is written against
        // ReadView; only where the view comes from differs (admitted
        // snapshot vs live engine state).
        sky::db::Admission admission;
        if (use_snapshots) {
          admission = scheduler.admit(sky::db::QueryLane::kInteractive,
                                      &costs);
        }
        const sky::db::ReadView view =
            use_snapshots ? admission.view() : engine.live_view();
        const auto hit = view.pk_lookup(objects, {Value::i64(objid)});
        if (!hit.is_ok() && hit.status().code() != sky::ErrorCode::kNotFound)
          std::abort();
        const auto range = view.index_range(objects, "ix_htmid",
                                            {Value::i64(htmid)},
                                            {Value::i64(htmid + 64)});
        if (!range.is_ok()) std::abort();
        if (samples.size() < samples.capacity()) samples.push_back(since(begin));
      }
      const std::scoped_lock lock(lane_costs_mu);
      lane_costs += costs;
    });
  }

  std::vector<std::vector<sky::Nanos>> batch_samples(
      static_cast<size_t>(batch_clients));
  for (auto& samples : batch_samples) samples.reserve(1 << 10);
  for (int c = 0; c < batch_clients; ++c) {
    threads.emplace_back([&, c] {
      auto& samples = batch_samples[static_cast<size_t>(c)];
      sky::db::OpCosts costs;
      while (!stop.load(std::memory_order_relaxed)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        int64_t bright = 0;
        const auto count_bright = [&](const sky::db::Row& row) {
          if (row.size() > 4 && row[4].as_f64() < 18.0) ++bright;
          return false;  // count, don't collect
        };
        const auto begin = std::chrono::steady_clock::now();
        sky::db::Admission admission;
        if (use_snapshots) {
          admission = scheduler.admit(sky::db::QueryLane::kBatch, &costs);
        }
        const sky::db::ReadView view =
            use_snapshots ? admission.view() : engine.live_view();
        view.scan_collect(objects, count_bright);
        if (samples.size() < samples.capacity()) samples.push_back(since(begin));
      }
      const std::scoped_lock lock(lane_costs_mu);
      lane_costs += costs;
    });
  }

  // Warm up (loaders fill the table, clients reach steady state), then
  // measure ingest over the window; latency samples span the whole run.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  const int64_t rows_before = rows_committed.load();
  const auto window_start = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(
      std::chrono::milliseconds(static_cast<int64_t>(window_s * 1000)));
  const int64_t rows_after = rows_committed.load();
  const double window_elapsed = static_cast<double>(since(window_start)) / 1e9;
  stop.store(true);
  for (std::thread& thread : threads) thread.join();
  if (!engine.verify_integrity().is_ok()) std::abort();

  MixedResult result;
  result.ingest_rows_per_sec =
      static_cast<double>(rows_after - rows_before) / window_elapsed;
  std::vector<sky::Nanos> interactive_all;
  for (auto& samples : interactive_samples) {
    interactive_all.insert(interactive_all.end(), samples.begin(),
                           samples.end());
  }
  std::vector<sky::Nanos> batch_all;
  for (auto& samples : batch_samples) {
    batch_all.insert(batch_all.end(), samples.begin(), samples.end());
  }
  result.interactive_queries = static_cast<int64_t>(interactive_all.size());
  result.batch_scans = static_cast<int64_t>(batch_all.size());
  result.interactive_p50_ms = percentile_ms(interactive_all, 0.50);
  result.interactive_p99_ms = percentile_ms(interactive_all, 0.99);
  result.batch_p99_ms = percentile_ms(batch_all, 0.99);
  if (use_snapshots) {
    result.batch_yields = scheduler.stats().batch_yields;
    result.lane_wait_ms = lane_costs.query_lane_wait_ns / 1'000'000;
  }
  return result;
}

// Deterministic sim-lane scenario: one batch query arrives during a burst
// of interactive queries. Returns (virtual ms until the batch admits,
// batch yields counted).
std::pair<double, int64_t> run_sim_lanes(bool batch_yields) {
  const sky::db::Schema schema = make_objects_schema();
  sky::db::Engine engine(schema, sky::db::EngineOptions{});
  sky::sim::Environment env;
  sky::client::ServerConfig config;
  config.query.interactive_slots = 1;  // burst saturates the lane
  config.query.batch_yields_to_interactive = batch_yields;
  sky::client::SimServer server(env, engine, config);

  env.spawn("interactive-burst", [&] {
    for (int i = 0; i < 5; ++i) {
      server.admit_query(/*interactive=*/true);
      env.delay(20 * sky::kMillisecond);
      server.release_query(/*interactive=*/true);
    }
  });
  sky::Nanos batch_admitted_at = 0;
  env.spawn("batch", [&] {
    env.delay(1 * sky::kMillisecond);
    server.admit_query(/*interactive=*/false);
    batch_admitted_at = env.now();
    server.release_query(/*interactive=*/false);
  });
  env.run();
  return {static_cast<double>(batch_admitted_at) / 1e6,
          server.query_lane_stats().batch_yields};
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const std::vector<int> client_sweep =
      smoke ? std::vector<int>{4, 16} : std::vector<int>{4, 16, 64, 100};
  const double window_s = smoke ? 1.0 : 2.5;

  // Query-free ingest reference: what the load does when it owns the box.
  const MixedResult reference = run_mixed(/*use_snapshots=*/false,
                                          /*interactive_clients=*/0,
                                          /*batch_clients=*/0, window_s);

  struct SweepPoint {
    int clients;
    MixedResult baseline;
    MixedResult snapshot;
  };
  std::vector<SweepPoint> sweep;
  for (const int clients : client_sweep) {
    SweepPoint point;
    point.clients = clients;
    point.baseline =
        run_mixed(/*use_snapshots=*/false, clients, kBatchClients, window_s);
    point.snapshot =
        run_mixed(/*use_snapshots=*/true, clients, kBatchClients, window_s);
    sweep.push_back(point);
  }

  std::printf("\n=== Query service while loading (%s; %d loaders, %d batch "
              "client) ===\n",
              smoke ? "smoke" : "full", kLoaders, kBatchClients);
  std::printf("query-free ingest: %.0f rows/s\n", reference.ingest_rows_per_sec);
  std::printf("%8s  %22s  %22s  %14s  %12s\n", "clients",
              "baseline p50/p99 (ms)", "snapshot p50/p99 (ms)",
              "p99 improvement", "ingest keep");
  for (const SweepPoint& point : sweep) {
    const double improvement =
        point.snapshot.interactive_p99_ms > 0
            ? point.baseline.interactive_p99_ms /
                  point.snapshot.interactive_p99_ms
            : 0;
    std::printf("%8d  %10.2f / %8.2f  %10.2f / %8.2f  %13.1fx  %11.0f%%\n",
                point.clients, point.baseline.interactive_p50_ms,
                point.baseline.interactive_p99_ms,
                point.snapshot.interactive_p50_ms,
                point.snapshot.interactive_p99_ms, improvement,
                reference.ingest_rows_per_sec > 0
                    ? point.snapshot.ingest_rows_per_sec /
                          reference.ingest_rows_per_sec * 100
                    : 0);
  }
  const SweepPoint& peak = sweep.back();
  const double peak_improvement =
      peak.snapshot.interactive_p99_ms > 0
          ? peak.baseline.interactive_p99_ms / peak.snapshot.interactive_p99_ms
          : 0;
  const double ingest_keep =
      reference.ingest_rows_per_sec > 0
          ? peak.snapshot.ingest_rows_per_sec / reference.ingest_rows_per_sec
          : 0;
  std::printf("snapshot lanes at M=%d: %lld interactive queries, %lld batch "
              "scans, %lld batch yields, lane wait %lld ms\n",
              peak.clients,
              static_cast<long long>(peak.snapshot.interactive_queries),
              static_cast<long long>(peak.snapshot.batch_scans),
              static_cast<long long>(peak.snapshot.batch_yields),
              static_cast<long long>(peak.snapshot.lane_wait_ms));

  const auto [sim_yield_ms, sim_yields] = run_sim_lanes(/*batch_yields=*/true);
  const auto [sim_eager_ms, sim_eager_yields] =
      run_sim_lanes(/*batch_yields=*/false);
  std::printf("sim lanes: batch admitted at %.1f ms with yielding "
              "(%lld yields) vs %.1f ms without\n",
              sim_yield_ms, static_cast<long long>(sim_yields), sim_eager_ms);

  {
    std::ofstream json("BENCH_query_while_loading.json");
    char buffer[512];
    std::snprintf(buffer, sizeof(buffer),
                  "{\n  \"mode\": \"%s\",\n  \"loaders\": %d,\n"
                  "  \"query_free_ingest_rows_per_sec\": %.1f,\n"
                  "  \"sweep\": [",
                  smoke ? "smoke" : "full", kLoaders,
                  reference.ingest_rows_per_sec);
    json << buffer;
    for (size_t i = 0; i < sweep.size(); ++i) {
      const SweepPoint& point = sweep[i];
      std::snprintf(
          buffer, sizeof(buffer),
          "%s\n    {\"clients\": %d, \"baseline_p99_ms\": %.3f, "
          "\"snapshot_p99_ms\": %.3f, \"baseline_ingest\": %.1f, "
          "\"snapshot_ingest\": %.1f, \"batch_yields\": %lld}",
          i > 0 ? "," : "", point.clients, point.baseline.interactive_p99_ms,
          point.snapshot.interactive_p99_ms,
          point.baseline.ingest_rows_per_sec,
          point.snapshot.ingest_rows_per_sec,
          static_cast<long long>(point.snapshot.batch_yields));
      json << buffer;
    }
    std::snprintf(buffer, sizeof(buffer),
                  "\n  ],\n  \"peak_p99_improvement\": %.3f,\n"
                  "  \"ingest_keep_fraction\": %.3f,\n"
                  "  \"sim_batch_admit_ms_yielding\": %.2f,\n"
                  "  \"sim_batch_admit_ms_eager\": %.2f\n}\n",
                  peak_improvement, ingest_keep, sim_yield_ms, sim_eager_ms);
    json << buffer;
  }
  std::printf("wrote BENCH_query_while_loading.json\n");

  const bool sim_ok = sim_yields >= 1 && sim_eager_yields == 0 &&
                      sim_yield_ms > sim_eager_ms;
  if (smoke) {
    const bool ok = peak_improvement >= 1.5 && sim_ok;
    std::printf("QUERY-GUARD %s: snapshot reads improve interactive p99 "
                "%.2fx at M=%d (need >=1.5x), sim lanes %s\n",
                ok ? "PASS" : "FAIL", peak_improvement, peak.clients,
                sim_ok ? "ok" : "broken");
    return ok ? 0 : 1;
  }
  shape_check(peak_improvement >= 5.0,
              "snapshot reads improve interactive p99 by >=5x at M=100 over "
              "the latch-shared baseline");
  shape_check(ingest_keep >= 0.9,
              "serving M=100 query clients from snapshots costs the load "
              "<=10% vs the query-free ingest rate");
  shape_check(sim_ok,
              "sim query lanes: batch admission defers to the interactive "
              "burst only when the policy says batch yields");
  return 0;
}
