// Section 4.5.1, the other side of the trade-off: query service during
// loading.
//
// The repository "must be a warehouse to store incrementally loaded data
// [and] act as a query engine to support scientific research" at the same
// time. The paper drops most secondary indices for load speed but keeps the
// htmid index because it is "crucial to the scientific research queries".
// This bench quantifies that decision: 4 loaders ingest an observation
// while a scientist process issues a cone search every simulated 30 s,
// with the htmid index maintained vs dropped.
//
//   * with htmid   — queries probe the index (few rows examined), loading
//     pays the ~1% maintenance cost of Fig. 8;
//   * without      — every cone search degenerates to a full objects scan
//     whose cost grows with everything loaded so far.
#include "bench_util.h"

#include "catalog/parser.h"
#include "htm/htm.h"

namespace {

using namespace skybench;

FigureTable g_latency("Section 4.5.1: mean cone-search latency during load",
                      "htmid index (0=dropped, 1=maintained)",
                      "mean query latency (simulated ms)");
FigureTable g_makespan("Section 4.5.1: load makespan with concurrent queries",
                       "htmid index (0=dropped, 1=maintained)",
                       "makespan (simulated seconds)");

// Price a query on the server: dispatch overhead plus per-row-examined CPU.
sky::Nanos query_cost(int64_t rows_examined) {
  return 500 * sky::kMicrosecond + rows_examined * 1500;
}

struct Outcome {
  double mean_latency_ms = 0;
  double makespan_s = 0;
  int64_t queries = 0;
};

Outcome run_scenario(bool htmid_maintained) {
  sky::core::TuningProfile profile = sky::core::TuningProfile::production();
  profile.maintain_htmid_index = htmid_maintained;
  SimRepository repo = SimRepository::create(profile);
  const auto files =
      make_observation(/*paper_mb=*/280, /*seed=*/2400, /*night_id=*/24);

  const uint32_t objects = repo.engine->table_id("objects").value();
  int workers_done = 0;
  const int workers = 4;
  const sky::Nanos start = repo.env->now();
  sky::Nanos loaders_finished_at = 0;
  // "Every 30 seconds" on the paper's clock; the simulated workload is
  // scaled down, so the cadence scales with it.
  const sky::Nanos cadence = sky::from_seconds(30.0 * bench_scale());

  // Loader processes: shared dynamic queue (plain index; processes are
  // serialized by the simulation).
  size_t next_file = 0;
  for (int w = 0; w < workers; ++w) {
    repo.env->spawn("loader-" + std::to_string(w), [&] {
      sky::client::SimSession session(*repo.server);
      sky::core::BulkLoaderOptions options = profile.bulk_options();
      options.write_audit_row = false;
      sky::core::BulkLoader loader(session, repo.schema, options);
      while (next_file < files.size()) {
        const sky::core::CatalogFile& file = files[next_file++];
        const auto report = loader.load_text(file.name, file.text);
        if (!report.is_ok()) std::abort();
      }
      if (++workers_done == workers) {
        loaders_finished_at = repo.env->now();
      }
    });
  }

  // The scientist: a cone search every 30 simulated seconds until loading
  // finishes. Queries occupy a server CPU and are priced by rows examined.
  sky::Nanos total_latency = 0;
  int64_t queries = 0;
  repo.env->spawn("scientist", [&] {
    sky::Rng rng(0xC0FFEE);
    while (workers_done < workers) {
      repo.env->delay(cadence);
      if (workers_done >= workers) break;
      const double ra = rng.uniform_range(0, 360);
      const double dec = rng.uniform_range(-25, 25);
      const sky::Nanos begin = repo.env->now();
      repo.server->node_cpus(0).acquire();
      int64_t rows_examined = 0;
      if (htmid_maintained) {
        for (const sky::htm::IdRange& range : sky::htm::cone_cover(
                 sky::htm::radec_to_vector(ra, dec), 0.5,
                 sky::catalog::CatalogParser::kHtmDepth)) {
          const auto rows = repo.engine->index_range(
              objects, sky::catalog::kIndexHtmid,
              {sky::db::Value::i64(static_cast<int64_t>(range.first))},
              {sky::db::Value::i64(static_cast<int64_t>(range.last))});
          if (!rows.is_ok()) std::abort();
          rows_examined += static_cast<int64_t>(rows->size());
        }
        // Index descent cost per probed range (the cover is coalesced).
        rows_examined += 64;
      } else {
        // No index: the cone search scans every object loaded so far.
        rows_examined = repo.engine->row_count(objects);
      }
      repo.env->delay(query_cost(rows_examined));
      repo.server->node_cpus(0).release();
      total_latency += repo.env->now() - begin;
      ++queries;
    }
  });

  repo.env->run();
  Outcome outcome;
  outcome.queries = queries;
  outcome.mean_latency_ms =
      queries == 0 ? 0.0
                   : sky::to_seconds(total_latency) * 1000.0 /
                         static_cast<double>(queries);
  outcome.makespan_s = normalized_seconds(loaders_finished_at - start);
  return outcome;
}

void bench_scenario(benchmark::State& state) {
  const bool maintained = state.range(0) == 1;
  for (auto _ : state) {
    const Outcome outcome = run_scenario(maintained);
    state.SetIterationTime(outcome.makespan_s);
    g_latency.add("latency", maintained ? 1.0 : 0.0,
                  outcome.mean_latency_ms);
    g_makespan.add("makespan", maintained ? 1.0 : 0.0, outcome.makespan_s);
    state.counters["queries_served"] =
        static_cast<double>(outcome.queries);
    state.counters["mean_latency_ms"] = outcome.mean_latency_ms;
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  for (const int64_t maintained : {0, 1}) {
    benchmark::RegisterBenchmark("query_while_loading/htmid", bench_scenario)
        ->Arg(maintained)
        ->Iterations(1)
        ->UseManualTime()
        ->Unit(benchmark::kSecond);
  }
  benchmark::RunSpecifiedBenchmarks();
  g_latency.print();
  g_makespan.print();

  const double with_index = g_latency.value("latency", 1.0);
  const double without = g_latency.value("latency", 0.0);
  const double makespan_with = g_makespan.value("makespan", 1.0);
  const double makespan_without = g_makespan.value("makespan", 0.0);
  std::printf("\ncone-search latency: %.1f ms with htmid vs %.1f ms without "
              "(%.0fx); load makespan +%.1f%% to keep the index\n",
              with_index, without, without / with_index,
              (makespan_with - makespan_without) / makespan_without * 100);
  shape_check(without > 10.0 * with_index,
              "without the htmid index, cone searches degrade by an order "
              "of magnitude or more (full scans over the growing table)");
  shape_check(makespan_with < makespan_without * 1.05,
              "maintaining the htmid index costs only a few percent of load "
              "time (Fig. 8's ~1%) — the paper's trade-off is the right one");
  return 0;
}
