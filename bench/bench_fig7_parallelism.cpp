// Figure 7: loading throughput vs number of parallel loading processes.
//
// Paper result: throughput climbs almost linearly up to ~6 loaders, peaks at
// 6-7 (not at 8, despite 8 server CPUs), and declines at 8 as the RDBMS
// concurrent-transaction limit bites — escalating lock waits and, very
// infrequently, long stalls. The production framework runs 5 loaders.
//
// Two executions of the same experiment, configured from ONE shared
// core::ConcurrencyPolicy literal (kFig7Policy below):
//   * sim — the virtual-time SimServer sweep over one 280 MB observation
//     (the original figure regeneration).
//   * real — actual loader threads against the engine's admission gates
//     (BlockingSlotGate transaction slots + per-table FairSlotGate ITL),
//     with modeled device latencies carrying the contrast. Gated runs use
//     kFig7Policy verbatim; a gate-off control must scale monotonically.
// Emits BENCH_fig7_real.json for the real sweep.
//
// --smoke: skip the sim sweep and shrink the real files for CI.
#include "bench_util.h"

#include <cstring>
#include <fstream>

namespace {

using namespace skybench;

bool g_smoke = false;

// THE shared admission policy: both the sim server and the real engine are
// configured from this literal, so the two sweeps model the same RDBMS —
// 8 open-transaction slots, 7 ITL slots per table (the knee of Fig. 7),
// default escalation factor and stall model.
constexpr sky::core::ConcurrencyPolicy kFig7Policy{
    .max_concurrent_transactions = 8,
    .itl_slots_per_table = 7,
};

// ---- sim sweep (virtual time, one 280 MB observation) ---------------------

FigureTable g_figure("Figure 7: Effect of Parallelism (one observation)",
                     "parallel loaders", "throughput (MB/s, paper scale)");

void bench_parallel(benchmark::State& state) {
  const int degree = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sky::client::ServerConfig server_config =
        sky::core::TuningProfile::production().server_config();
    server_config.concurrency = kFig7Policy;
    SimRepository repo =
        SimRepository::create(sky::core::TuningProfile::production(),
                              &server_config);
    const auto files =
        make_observation(/*paper_mb=*/280, /*seed=*/700, /*night_id=*/7);
    sky::core::CoordinatorOptions options;
    options.parallel_degree = degree;
    options.loader.write_audit_row = false;
    const auto report = sky::core::LoadCoordinator::run_sim(
        *repo.env, *repo.server, files, repo.schema, options);
    if (!report.is_ok()) std::abort();
    const double seconds = normalized_seconds(report->makespan);
    // Throughput on the paper's axis: paper-MB over paper-normalized time.
    const double mb =
        static_cast<double>(report->total_bytes) / 1e6 / bench_scale();
    const double throughput = mb / seconds;
    state.SetIterationTime(seconds);
    g_figure.add("throughput", degree, throughput);
    state.counters["MBps"] = throughput;
    state.counters["lock_waits"] = static_cast<double>(
        repo.server->concurrency_stats().transaction_gate.waits);
  }
}

// ---- real sweep (loader threads against the engine's gates) ---------------

// Modeled device waits per engine call (the bench_engine_scaling constants):
// on a small host the contrast is carried by these waits overlapping across
// threads, and by contended transactions paying the escalation surcharge on
// every batch.
constexpr sky::Nanos kBatchRedoWrite = 12 * 1000 * 1000;   // 12 ms
constexpr sky::Nanos kDataWritePerPage = 100 * 1000;       // 0.1 ms
constexpr sky::Nanos kCommitLogFlush = 4 * 1000 * 1000;    // 4 ms

// Two equal files per worker, so every degree loads a balanced share and
// throughput is expected to rise linearly until the gates bite.
std::vector<sky::core::CatalogFile> make_real_workload(int degree) {
  std::vector<sky::core::CatalogFile> files;
  const int64_t bytes = (g_smoke ? 24 : 48) * 1024;
  for (int f = 0; f < 2 * degree; ++f) {
    sky::catalog::FileSpec spec;
    spec.name = "fig7-" + std::to_string(f) + ".cat";
    spec.seed = 7000 + static_cast<uint64_t>(f);
    spec.unit_id = 970 + f;
    spec.target_bytes = bytes;
    files.push_back(sky::core::CatalogFile{
        spec.name, sky::catalog::CatalogGenerator::generate(spec).text});
  }
  return files;
}

struct RealResult {
  double seconds = 0;
  double mbps = 0;
  int64_t rows = 0;
  sky::db::ConcurrencyStats gates;
  double itl_wait_s = 0;
  double txn_slot_wait_s = 0;
  double stall_s = 0;
};

RealResult run_real(int degree, bool gated) {
  const sky::db::Schema schema = sky::catalog::make_pq_schema();
  const sky::core::TuningProfile profile =
      sky::core::TuningProfile::production();
  sky::db::EngineOptions engine_options = profile.engine_options();
  engine_options.concurrency = kFig7Policy;
  if (!gated) {
    // Gate-off control: ITL admission disabled, transaction slots
    // permissive. Everything else identical.
    engine_options.concurrency.itl_slots_per_table = 0;
    engine_options.concurrency.max_concurrent_transactions = 64;
  }
  engine_options.latency.batch_redo_write = kBatchRedoWrite;
  engine_options.latency.data_write_per_page = kDataWritePerPage;
  engine_options.latency.commit_log_flush = kCommitLogFlush;
  sky::db::Engine engine(schema, engine_options);
  if (!profile.apply_index_policy(engine).is_ok()) std::abort();
  {
    sky::client::DirectSession session(engine);
    sky::core::BulkLoaderOptions loader_options;
    loader_options.write_audit_row = false;
    sky::core::BulkLoader loader(session, schema, loader_options);
    const auto report = loader.load_text(
        "reference", sky::catalog::CatalogGenerator::reference_file().text);
    if (!report.is_ok() || report->total_skipped() != 0) std::abort();
  }

  const auto files = make_real_workload(degree);
  sky::core::CoordinatorOptions options;
  options.parallel_degree = degree;
  options.loader.write_audit_row = false;
  // Commit only at end of file (the production choice): each loader holds
  // its ITL admission for the whole file, so at 8 loaders the 7-slot ITL on
  // the hot table is genuinely saturated — one loader is always queued and
  // contended admissions pay the escalation surcharge on every batch.
  const auto report = sky::core::LoadCoordinator::run_threads(
      files, schema,
      [&](int) -> std::unique_ptr<sky::client::Session> {
        return std::make_unique<sky::client::DirectSession>(engine);
      },
      options);
  if (!report.is_ok()) std::abort();
  if (!engine.verify_integrity().is_ok()) std::abort();

  RealResult result;
  result.seconds = sky::to_seconds(report->makespan);
  result.rows = report->total_rows_loaded;
  result.mbps = result.seconds > 0
                    ? static_cast<double>(report->total_bytes) / 1e6 /
                          result.seconds
                    : 0;
  result.gates = engine.concurrency_stats();
  result.itl_wait_s = sky::to_seconds(report->itl_wait);
  result.txn_slot_wait_s = sky::to_seconds(report->txn_slot_wait);
  result.stall_s = sky::to_seconds(report->stall_time);
  return result;
}

FigureTable g_real_figure(
    "Figure 7 (real threads): throughput vs parallel loaders",
    "parallel loaders", "MB/s (2 files per worker)");
std::vector<std::string> g_real_json;

void bench_real(benchmark::State& state) {
  const int degree = static_cast<int>(state.range(0));
  const bool gated = state.range(1) != 0;
  for (auto _ : state) {
    const RealResult result = run_real(degree, gated);
    state.SetIterationTime(result.seconds);
    state.counters["MBps"] = result.mbps;
    state.counters["itl_waits"] =
        static_cast<double>(result.gates.itl.waits);
    g_real_figure.add(gated ? "gated" : "gate-off", degree, result.mbps);
    char buffer[320];
    std::snprintf(
        buffer, sizeof(buffer),
        "  {\"mode\": \"%s\", \"degree\": %d, \"makespan_s\": %.4f, "
        "\"mb_per_sec\": %.2f, \"rows\": %lld, \"itl_waits\": %llu, "
        "\"itl_wait_s\": %.4f, \"txn_slot_wait_s\": %.4f, "
        "\"stall_s\": %.4f, \"stalls\": %llu}",
        gated ? "gated" : "gate-off", degree, result.seconds, result.mbps,
        static_cast<long long>(result.rows),
        static_cast<unsigned long long>(result.gates.itl.waits),
        result.itl_wait_s, result.txn_slot_wait_s, result.stall_s,
        static_cast<unsigned long long>(result.gates.itl.stalls));
    g_real_json.push_back(buffer);
  }
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      g_smoke = true;
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      break;
    }
  }
  benchmark::Initialize(&argc, argv);
  if (!g_smoke) {
    for (int degree = 1; degree <= 8; ++degree) {
      benchmark::RegisterBenchmark("fig7/parallel", bench_parallel)
          ->Arg(degree)
          ->Iterations(1)
          ->UseManualTime()
          ->Unit(benchmark::kSecond);
    }
  }
  const std::vector<int> real_degrees =
      g_smoke ? std::vector<int>{1, 6, 7, 8}
              : std::vector<int>{1, 2, 4, 6, 7, 8};
  for (const int degree : real_degrees) {
    benchmark::RegisterBenchmark("fig7/real_gated", bench_real)
        ->Args({degree, 1})
        ->Iterations(1)
        ->UseManualTime()
        ->Unit(benchmark::kSecond);
    benchmark::RegisterBenchmark("fig7/real_ungated", bench_real)
        ->Args({degree, 0})
        ->Iterations(1)
        ->UseManualTime()
        ->Unit(benchmark::kSecond);
  }
  benchmark::RunSpecifiedBenchmarks();

  if (!g_smoke) {
    g_figure.print();
    double peak_degree = 0, peak = 0;
    for (int degree = 1; degree <= 8; ++degree) {
      const double throughput = g_figure.value("throughput", degree);
      if (throughput > peak) {
        peak = throughput;
        peak_degree = degree;
      }
    }
    std::printf("\nsim peak throughput: %.2f MB/s at %d loaders\n", peak,
                static_cast<int>(peak_degree));
    // Near-linear scaling through 6 loaders.
    const double t1 = g_figure.value("throughput", 1);
    const double t6 = g_figure.value("throughput", 6);
    shape_check(t6 > 4.5 * t1,
                "sim: throughput scales nearly linearly up to 6 loaders");
    shape_check(peak_degree >= 6 && peak_degree <= 7,
                "sim: throughput peaks at 6-7 loaders, not at the 8 CPUs");
    shape_check(g_figure.value("throughput", 8) < peak,
                "sim: 8 loaders are slower than the peak (lock contention)");
  }

  g_real_figure.print();
  {
    std::ofstream json("BENCH_fig7_real.json");
    json << "[\n";
    for (size_t i = 0; i < g_real_json.size(); ++i) {
      json << g_real_json[i] << (i + 1 < g_real_json.size() ? ",\n" : "\n");
    }
    json << "]\n";
  }
  std::printf("\nwrote BENCH_fig7_real.json\n");

  double real_peak = 0;
  int real_peak_degree = 0;
  for (const int degree : real_degrees) {
    const double mbps = g_real_figure.value("gated", degree);
    if (mbps > real_peak) {
      real_peak = mbps;
      real_peak_degree = degree;
    }
  }
  std::printf("real gated peak: %.2f MB/s at %d loaders\n", real_peak,
              real_peak_degree);
  const double r1 = g_real_figure.value("gated", 1);
  const double r6 = g_real_figure.value("gated", 6);
  const double r8 = g_real_figure.value("gated", 8);
  shape_check(r6 > 4.0 * r1,
              "real: gated throughput scales nearly linearly up to 6 loaders");
  shape_check(real_peak_degree >= 6 && real_peak_degree <= 7,
              "real: gated throughput peaks at 6-7 loaders");
  shape_check(r8 < real_peak,
              "real: 8 loaders fall off the peak (ITL admission waits + "
              "escalation)");
  const double u1 = g_real_figure.value("gate-off", 1);
  const double u8 = g_real_figure.value("gate-off", 8);
  const double u6 = g_real_figure.value("gate-off", 6);
  shape_check(u8 >= u6 && u6 > 4.0 * u1,
              "real: with the gates off, throughput keeps climbing to 8");
  return 0;
}
