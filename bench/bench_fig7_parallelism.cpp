// Figure 7: loading throughput vs number of parallel loading processes.
//
// Paper result: throughput climbs almost linearly up to ~6 loaders, peaks at
// 6-7 (not at 8, despite 8 server CPUs), and declines at 8 as the RDBMS
// concurrent-transaction limit bites — escalating lock waits and, very
// infrequently, long stalls. The production framework runs 5 loaders.
#include "bench_util.h"

namespace {

using namespace skybench;

FigureTable g_figure("Figure 7: Effect of Parallelism (one observation)",
                     "parallel loaders", "throughput (MB/s, paper scale)");

void bench_parallel(benchmark::State& state) {
  const int degree = static_cast<int>(state.range(0));
  for (auto _ : state) {
    SimRepository repo = SimRepository::create();
    const auto files =
        make_observation(/*paper_mb=*/280, /*seed=*/700, /*night_id=*/7);
    sky::core::CoordinatorOptions options;
    options.parallel_degree = degree;
    options.loader.write_audit_row = false;
    const auto report = sky::core::LoadCoordinator::run_sim(
        *repo.env, *repo.server, files, repo.schema, options);
    if (!report.is_ok()) std::abort();
    const double seconds = normalized_seconds(report->makespan);
    // Throughput on the paper's axis: paper-MB over paper-normalized time.
    const double mb =
        static_cast<double>(report->total_bytes) / 1e6 / bench_scale();
    const double throughput = mb / seconds;
    state.SetIterationTime(seconds);
    g_figure.add("throughput", degree, throughput);
    state.counters["MBps"] = throughput;
    state.counters["lock_waits"] = static_cast<double>(
        repo.server->transaction_slots().stats().waits);
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  for (int degree = 1; degree <= 8; ++degree) {
    benchmark::RegisterBenchmark("fig7/parallel", bench_parallel)
        ->Arg(degree)
        ->Iterations(1)
        ->UseManualTime()
        ->Unit(benchmark::kSecond);
  }
  benchmark::RunSpecifiedBenchmarks();
  g_figure.print();

  double peak_degree = 0, peak = 0;
  for (int degree = 1; degree <= 8; ++degree) {
    const double throughput = g_figure.value("throughput", degree);
    if (throughput > peak) {
      peak = throughput;
      peak_degree = degree;
    }
  }
  std::printf("\npeak throughput: %.2f MB/s at %d loaders\n", peak,
              static_cast<int>(peak_degree));
  // Near-linear scaling through 6 loaders.
  const double t1 = g_figure.value("throughput", 1);
  const double t6 = g_figure.value("throughput", 6);
  shape_check(t6 > 4.5 * t1,
              "throughput scales nearly linearly up to 6 loaders");
  shape_check(peak_degree >= 6 && peak_degree <= 7,
              "throughput peaks at 6-7 loaders, not at the 8 CPUs");
  shape_check(g_figure.value("throughput", 8) < peak,
              "8 loaders are slower than the peak (lock contention)");
  return 0;
}
