// Section 7 future work, explored: cluster hosting (Oracle RAC style).
//
// The paper closes by asking how a clustered database host "scales on
// databases of the Palomar-Quest magnitude ... provided performance and
// stability are not sacrificed." This bench scales the simulated host from
// 1 to 4 nodes (each node adds a full CPU complement and lock capacity)
// under 12 parallel loaders, in two regimes:
//   * shared-tables  — loaders attach round-robin and all write the same
//     hot tables, so consecutive inserts alternate nodes and every hot
//     block ships across the interconnect (cache fusion);
//   * partitioned    — interconnect shipping disabled, approximating a
//     perfectly partitioned workload (each node owns its tables).
// The gap between the two series is what workload partitioning is worth —
// the caution behind the paper's "provided performance is not sacrificed".
#include "bench_util.h"

namespace {

using namespace skybench;

FigureTable g_figure("Extension 7: cluster (RAC-style) scaling, 12 loaders",
                     "cluster nodes", "throughput (MB/s, paper scale)");

void bench_nodes(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  const bool partitioned = state.range(1) == 1;
  for (auto _ : state) {
    sky::core::TuningProfile profile = sky::core::TuningProfile::production();
    sky::db::Engine engine(sky::catalog::make_pq_schema(),
                           profile.engine_options());
    if (!profile.apply_index_policy(engine).is_ok()) std::abort();
    sky::sim::Environment env;
    sky::client::ServerConfig config;
    config.nodes = nodes;
    config.cpus = 8 * nodes;              // each node is a full host
    config.batch_gate_slots = 5 * nodes;  // per-instance lock capacity
    config.concurrency.max_concurrent_transactions = 8 * nodes;
    if (partitioned) config.cache_fusion_per_page = 0;
    sky::client::SimServer server(env, engine, config);
    env.spawn("reference", [&] {
      sky::client::SimSession session(server);
      sky::core::BulkLoaderOptions options;
      options.write_audit_row = false;
      sky::core::BulkLoader loader(session, engine.schema(), options);
      const auto report = loader.load_text(
          "reference", sky::catalog::CatalogGenerator::reference_file().text);
      if (!report.is_ok()) std::abort();
    });
    env.run();

    const auto files =
        make_observation(/*paper_mb=*/560, /*seed=*/2100, /*night_id=*/21);
    sky::core::CoordinatorOptions options;
    options.parallel_degree = 12;
    options.loader.write_audit_row = false;
    const auto report = sky::core::LoadCoordinator::run_sim(
        env, server, files, engine.schema(), options);
    if (!report.is_ok()) std::abort();
    const double seconds = normalized_seconds(report->makespan);
    const double mb =
        static_cast<double>(report->total_bytes) / 1e6 / bench_scale();
    state.SetIterationTime(seconds);
    g_figure.add(partitioned ? "partitioned" : "shared-tables", nodes,
                 mb / seconds);
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  for (const int64_t nodes : {1, 2, 4}) {
    for (const int64_t partitioned : {0, 1}) {
      benchmark::RegisterBenchmark("rac_scaling/nodes", bench_nodes)
          ->Args({nodes, partitioned})
          ->Iterations(1)
          ->UseManualTime()
          ->Unit(benchmark::kSecond);
    }
  }
  benchmark::RunSpecifiedBenchmarks();
  g_figure.print();

  const double shared1 = g_figure.value("shared-tables", 1);
  const double shared4 = g_figure.value("shared-tables", 4);
  const double part4 = g_figure.value("partitioned", 4);
  std::printf("\n4-node scaling: shared-tables %.2fx, partitioned %.2fx "
              "(of 1-node)\n",
              shared4 / shared1, part4 / g_figure.value("partitioned", 1));
  shape_check(shared4 > shared1 * 1.15,
              "adding nodes helps even with contended tables (but far from "
              "linearly: interconnect shipping eats the gain)");
  shape_check(part4 > shared4 * 1.05,
              "cache-fusion traffic on shared tables costs real throughput");
  // Shared storage is the deeper ceiling: both series flatten well below
  // linear because the cluster still shares one SAN (the data/index/log
  // devices) — the stability caveat the paper raises.
  shape_check(part4 < g_figure.value("partitioned", 1) * 3.0,
              "scaling stays sublinear: the shared SAN caps the cluster");
  shape_check(g_figure.value("partitioned", 2) >
                  g_figure.value("shared-tables", 2),
              "the partitioning gap is visible already at 2 nodes");
  return 0;
}
