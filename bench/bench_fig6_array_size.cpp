// Figure 6: effect of array size on runtime, loading a 200 MB data set.
//
// Paper result: larger arrays amortize per-cycle overhead (array
// construction/teardown, statement re-preparation, trailing partial
// batches), but past ~1000 rows the array-set footprint exceeds client
// memory and paging erases the benefit — the optimum sits near 1000.
#include "bench_util.h"

namespace {

using namespace skybench;

FigureTable g_figure("Figure 6: Effect of Array Size (200 MB data set)",
                     "array size", "runtime (simulated seconds)");

const std::vector<int64_t> kArraySizes = {250, 500, 750, 1000, 1250, 1500};

void bench_array(benchmark::State& state) {
  const int64_t array_size = state.range(0);
  for (auto _ : state) {
    SimRepository repo = SimRepository::create();
    const auto file = make_file(200, /*seed=*/600, /*unit_id=*/60);
    sky::core::BulkLoaderOptions options;
    options.batch_size = 40;
    options.array_config.default_rows = array_size;
    options.write_audit_row = false;
    const auto report = run_bulk(repo, file, options);
    const double seconds = normalized_seconds(report.elapsed);
    state.SetIterationTime(seconds);
    g_figure.add("runtime", static_cast<double>(array_size), seconds);
    state.counters["cycles"] = static_cast<double>(report.flush_cycles);
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  for (const int64_t array_size : kArraySizes) {
    benchmark::RegisterBenchmark("fig6/array", bench_array)
        ->Arg(array_size)
        ->Iterations(1)
        ->UseManualTime()
        ->Unit(benchmark::kSecond);
  }
  benchmark::RunSpecifiedBenchmarks();
  g_figure.print();

  double best_array = 0, best_time = 1e18;
  for (const int64_t array_size : kArraySizes) {
    const double t =
        g_figure.value("runtime", static_cast<double>(array_size));
    if (t < best_time) {
      best_time = t;
      best_array = static_cast<double>(array_size);
    }
  }
  std::printf("\noptimal array size: %.0f (%.1f s)\n", best_array, best_time);
  shape_check(best_array >= 750 && best_array <= 1250,
              "optimal array size is near 1000");
  shape_check(g_figure.value("runtime", 250) > best_time,
              "small arrays pay per-cycle overhead");
  shape_check(g_figure.value("runtime", 1500) > best_time,
              "beyond the optimum, client paging erases the benefit");
  return 0;
}
