// Figure 4: runtime of bulk vs non-bulk loading, single loading process,
// data sizes 200-1200 MB, batch-size 40, full constraints, empty database.
//
// Paper result: both approaches scale linearly with input size; bulk loading
// is 7-9x faster than row-at-a-time inserts (not 40x — per-row server work
// does not amortize with the round trips).
#include "bench_util.h"

namespace {

using namespace skybench;

FigureTable g_figure("Figure 4: Bulk vs Non-Bulk Loading",
                     "data size (MB)", "runtime (simulated seconds)");

const std::vector<double> kSizesMb = {200, 400, 600, 800, 1000, 1200};

void bench_bulk(benchmark::State& state) {
  const double mb = static_cast<double>(state.range(0));
  for (auto _ : state) {
    SimRepository repo = SimRepository::create();
    const auto file = make_file(mb, /*seed=*/1700 + static_cast<uint64_t>(state.range(0)),
                                /*unit_id=*/40 + state.range(0) / 100);
    sky::core::BulkLoaderOptions options;
    options.batch_size = 40;
    options.write_audit_row = false;
    const auto report = run_bulk(repo, file, options);
    const double seconds = normalized_seconds(report.elapsed);
    state.SetIterationTime(seconds);
    g_figure.add("bulk", mb, seconds);
    state.counters["db_calls"] =
        static_cast<double>(report.db_calls);
    state.counters["rows"] = static_cast<double>(report.rows_loaded);
  }
}

void bench_non_bulk(benchmark::State& state) {
  const double mb = static_cast<double>(state.range(0));
  for (auto _ : state) {
    SimRepository repo = SimRepository::create();
    const auto file = make_file(mb, /*seed=*/1700 + static_cast<uint64_t>(state.range(0)),
                                /*unit_id=*/40 + state.range(0) / 100);
    const auto report = run_non_bulk(repo, file);
    const double seconds = normalized_seconds(report.elapsed);
    state.SetIterationTime(seconds);
    g_figure.add("non-bulk", mb, seconds);
    state.counters["db_calls"] = static_cast<double>(report.db_calls);
  }
}

void register_benchmarks() {
  for (const double mb : kSizesMb) {
    benchmark::RegisterBenchmark("fig4/bulk", bench_bulk)
        ->Arg(static_cast<int64_t>(mb))
        ->Iterations(1)
        ->UseManualTime()
        ->Unit(benchmark::kSecond);
    benchmark::RegisterBenchmark("fig4/non_bulk", bench_non_bulk)
        ->Arg(static_cast<int64_t>(mb))
        ->Iterations(1)
        ->UseManualTime()
        ->Unit(benchmark::kSecond);
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  register_benchmarks();
  benchmark::RunSpecifiedBenchmarks();
  g_figure.print();

  // Paper shape: speedup 7-9x at every size; both curves linear in size.
  double min_speedup = 1e9, max_speedup = 0;
  for (const double mb : kSizesMb) {
    const double speedup =
        g_figure.value("non-bulk", mb) / g_figure.value("bulk", mb);
    min_speedup = std::min(min_speedup, speedup);
    max_speedup = std::max(max_speedup, speedup);
  }
  std::printf("\nbulk speedup across sizes: %.2fx .. %.2fx\n", min_speedup,
              max_speedup);
  shape_check(min_speedup >= 6.0 && max_speedup <= 10.0,
              "bulk loading is ~7-9x faster than non-bulk at batch-size 40");
  const double linearity_bulk =
      g_figure.value("bulk", 1200) / g_figure.value("bulk", 200);
  const double linearity_nonbulk =
      g_figure.value("non-bulk", 1200) / g_figure.value("non-bulk", 200);
  shape_check(linearity_bulk > 4.8 && linearity_bulk < 7.2 &&
                  linearity_nonbulk > 4.8 && linearity_nonbulk < 7.2,
              "runtime of both approaches is proportional to input size");
  return 0;
}
