// Engine concurrency scaling: real threads, real time.
//
// Measures LoadCoordinator::run_threads makespan and aggregate rows/sec at
// parallel degree 1-8 over the PQ schema, with the engine's modeled device
// latencies enabled so each database call pays realistic redo/data/log
// write time. Two modes contrast the locking designs:
//   * fine-grained — the engine as shipped: engine rwlock shared, per-table
//     latches, striped cache, group-commit WAL. Device waits overlap across
//     loaders.
//   * global-mutex — every session call serialized through one process-wide
//     mutex, emulating the previous engine-wide mutex design. Device waits
//     serialize, so added loaders buy almost nothing.
//   * columnar — fine-grained locking with the columnar batch ingest
//     pipeline (degrees 1 and 6 only): must not regress the row batch path
//     under the same modeled waits.
// A second scenario contrasts the heap layouts under same-table contention
// with only the per-row extent write modeled:
//   * sharded-8 — eight heap extents per table; round-robin transactions
//     append on distinct streams and the per-row writes overlap.
//   * single-heap — one extent (the pre-sharding layout); every loader's
//     appends to a hot table queue on one write stream.
// A third scenario sweeps the WAL's commit-coalescing window under a
// commit-heavy load with only the commit log flush modeled: with the window
// open, concurrent commits fold into shared flushes instead of each paying
// its own device write. The window trades bounded commit latency for
// materially fewer physical log writes; the fast path keeps a lone loader
// at exactly the no-window rate.
// Each run uses a fresh engine, loads the reference tables first, and must
// pass verify_integrity() afterwards. Emits BENCH_engine_scaling.json,
// BENCH_heap_sharding.json, and BENCH_commit_window_threads.json.
#include "bench_util.h"

#include <algorithm>
#include <fstream>
#include <mutex>

namespace {

using namespace skybench;

// Modeled device waits per engine call (see db::ModeledDeviceLatency). The
// host running this bench may have few cores; the contrast between the two
// modes is carried by these waits overlapping vs serializing, not by CPU
// parallelism.
constexpr sky::Nanos kBatchRedoWrite = 12 * 1000 * 1000;   // 12 ms
constexpr sky::Nanos kDataWritePerPage = 100 * 1000;       // 0.1 ms
constexpr sky::Nanos kCommitLogFlush = 4 * 1000 * 1000;    // 4 ms

// Session wrapper emulating a single engine-wide mutex: one call in the
// engine at a time, device waits included.
class GlobalLockSession final : public sky::client::Session {
 public:
  GlobalLockSession(sky::db::Engine& engine, std::mutex& mu)
      : inner_(engine), mu_(mu) {}

  sky::Result<uint32_t> prepare_insert(std::string_view table_name) override {
    const std::scoped_lock lock(mu_);
    return inner_.prepare_insert(table_name);
  }
  sky::client::BatchOutcome execute_batch(
      uint32_t table, std::span<const sky::db::Row> rows) override {
    const std::scoped_lock lock(mu_);
    return inner_.execute_batch(table, rows);
  }
  sky::Status execute_single(uint32_t table, const sky::db::Row& row) override {
    const std::scoped_lock lock(mu_);
    return inner_.execute_single(table, row);
  }
  sky::Status commit() override {
    const std::scoped_lock lock(mu_);
    return inner_.commit();
  }
  void client_compute(sky::Nanos duration) override {
    inner_.client_compute(duration);
  }
  void note_buffered_rows(int64_t rows, int64_t footprint_bytes,
                          bool columnar) override {
    inner_.note_buffered_rows(rows, footprint_bytes, columnar);
  }
  sky::Nanos now() const override { return inner_.now(); }
  const sky::client::SessionStats& stats() const override {
    return inner_.stats();
  }

 private:
  sky::client::DirectSession inner_;
  std::mutex& mu_;
};

std::vector<sky::core::CatalogFile> make_workload() {
  // Fixed real size (independent of SKYLOADER_BENCH_SCALE): this bench
  // measures wall-clock scaling, not paper-normalized virtual time.
  std::vector<sky::core::CatalogFile> files;
  for (int f = 0; f < 16; ++f) {
    sky::catalog::FileSpec spec;
    spec.name = "scale-" + std::to_string(f) + ".cat";
    spec.seed = 4200 + static_cast<uint64_t>(f);
    spec.unit_id = 900 + f;
    spec.target_bytes = 48 * 1024;
    files.push_back(sky::core::CatalogFile{
        spec.name, sky::catalog::CatalogGenerator::generate(spec).text});
  }
  return files;
}

struct RunResult {
  double seconds = 0;
  int64_t rows = 0;
  double rows_per_sec = 0;
  double busy_seconds = 0;
  double lock_wait_seconds = 0;
  sky::storage::WalStats wal;
};

RunResult run_files(const sky::db::EngineOptions& engine_options,
                    bool global_lock, int degree,
                    const std::vector<sky::core::CatalogFile>& files,
                    int64_t commit_every_batches = 0,
                    bool columnar_ingest = false) {
  const sky::db::Schema schema = sky::catalog::make_pq_schema();
  const sky::core::TuningProfile profile =
      sky::core::TuningProfile::production();
  sky::db::Engine engine(schema, engine_options);
  if (!profile.apply_index_policy(engine).is_ok()) std::abort();
  {
    sky::client::DirectSession session(engine);
    sky::core::BulkLoaderOptions loader_options;
    loader_options.write_audit_row = false;
    sky::core::BulkLoader loader(session, schema, loader_options);
    const auto report = loader.load_text(
        "reference", sky::catalog::CatalogGenerator::reference_file().text);
    if (!report.is_ok() || report->total_skipped() != 0) std::abort();
  }

  sky::core::CoordinatorOptions options;
  options.parallel_degree = degree;
  options.loader.write_audit_row = false;
  options.loader.commit.every_cycles = 2;
  options.loader.commit.every_batches = commit_every_batches;
  options.loader.columnar_ingest = columnar_ingest;
  std::mutex global_mu;
  const auto factory = [&](int) -> std::unique_ptr<sky::client::Session> {
    if (global_lock) {
      return std::make_unique<GlobalLockSession>(engine, global_mu);
    }
    return std::make_unique<sky::client::DirectSession>(engine);
  };
  const auto report = sky::core::LoadCoordinator::run_threads(
      files, schema, factory, options);
  if (!report.is_ok()) std::abort();
  if (!engine.verify_integrity().is_ok()) std::abort();

  RunResult result;
  result.seconds = sky::to_seconds(report->makespan);
  result.rows = report->total_rows_loaded;
  result.rows_per_sec =
      result.seconds > 0 ? static_cast<double>(result.rows) / result.seconds
                         : 0;
  for (const sky::Nanos busy : report->worker_busy) {
    result.busy_seconds += sky::to_seconds(busy);
  }
  for (const sky::Nanos wait : report->worker_lock_wait) {
    result.lock_wait_seconds += sky::to_seconds(wait);
  }
  result.wal = engine.wal_stats();
  return result;
}

RunResult run_load(bool global_lock, int degree,
                   const std::vector<sky::core::CatalogFile>& files,
                   bool columnar_ingest = false) {
  sky::db::EngineOptions engine_options =
      sky::core::TuningProfile::production().engine_options();
  engine_options.latency.batch_redo_write = kBatchRedoWrite;
  engine_options.latency.data_write_per_page = kDataWritePerPage;
  engine_options.latency.commit_log_flush = kCommitLogFlush;
  return run_files(engine_options, global_lock, degree, files,
                   /*commit_every_batches=*/0, columnar_ingest);
}

// Same-table contention scenario: only the per-row extent write is modeled
// (0.15 ms, slept under the extent latch), so the benchmark isolates the
// table's append stream. single = one extent per table, the pre-sharding
// layout: every loader's appends to a hot table queue on one write stream.
// sharded = 8 extents: round-robin transactions land on distinct streams
// and the per-row writes overlap.
constexpr sky::Nanos kExtentAppendWrite = 150 * 1000;  // 0.15 ms per row

RunResult run_sharding_load(uint32_t heap_extents, int degree,
                            const std::vector<sky::core::CatalogFile>& files) {
  sky::db::EngineOptions engine_options =
      sky::core::TuningProfile::production().engine_options();
  engine_options.heap_extents = heap_extents;
  engine_options.latency.extent_append_write = kExtentAppendWrite;
  return run_files(engine_options, /*global_lock=*/false, degree, files);
}

// Commit-window scenario: commits every 8 batches with only the commit log
// flush modeled. The flush is deliberately fast (0.25 ms) so the log device
// is NOT saturated: when it is, the WAL's flush convoy already groups
// maximally for free (everyone who appended during flush N-1 shares flush
// N) and a window has nothing left to cut. Unsaturated, most commits lead
// their own flush; the window folds commits arriving within it into one
// device write — the paper's "reduce frequency of transaction commits"
// lever applied server-side, trading bounded commit latency for materially
// fewer physical log writes.
constexpr sky::Nanos kWindowLogFlush = 250 * 1000;  // 0.25 ms

// Varied file sizes so loaders desynchronize. With identical files the
// workers stay phase-locked and their commits arrive in clumps that
// piggyback for free, which both inflates the no-window baseline and
// leaves the window nothing to do; real catalog nights are not uniform.
std::vector<sky::core::CatalogFile> make_window_workload() {
  std::vector<sky::core::CatalogFile> files;
  for (int f = 0; f < 16; ++f) {
    sky::catalog::FileSpec spec;
    spec.name = "window-" + std::to_string(f) + ".cat";
    spec.seed = 7700 + static_cast<uint64_t>(f);
    spec.unit_id = 950 + f;
    spec.target_bytes = (32 + 5 * (f % 7)) * 1024;  // 32-62 KiB
    files.push_back(sky::core::CatalogFile{
        spec.name, sky::catalog::CatalogGenerator::generate(spec).text});
  }
  return files;
}

RunResult run_window_load(sky::Nanos window, int degree,
                          const std::vector<sky::core::CatalogFile>& files) {
  sky::db::EngineOptions engine_options =
      sky::core::TuningProfile::production().engine_options();
  engine_options.latency.commit_log_flush = kWindowLogFlush;
  engine_options.commit_window = window;
  // Close the group once all but one of the loaders have queued (the last
  // is usually mid-batch; waiting for it costs the whole window). A cap
  // above the parallel degree would make leaders always wait out the full
  // window for a group that can never fill.
  engine_options.max_group_commits = std::max(degree - 1, 2);
  return run_files(engine_options, /*global_lock=*/false, degree, files,
                   /*commit_every_batches=*/8);
}

FigureTable g_figure("Engine scaling: aggregate load rate vs parallel degree",
                     "parallel loaders", "rows/sec");
std::vector<std::string> g_json_entries;

FigureTable g_sharding_figure(
    "Heap sharding: same-table load rate vs parallel degree",
    "parallel loaders", "rows/sec");
std::vector<std::string> g_sharding_json;

FigureTable g_window_figure(
    "Commit window: load rate vs parallel degree (commit every 8 batches)",
    "parallel loaders", "rows/sec");
std::vector<std::string> g_window_json;
// (mode, degree) -> flushes per commit, for the shape checks.
std::map<std::pair<std::string, int>, double> g_window_fpc;

std::string json_entry(const char* mode, int degree, const RunResult& result) {
  char buffer[256];
  std::snprintf(buffer, sizeof(buffer),
                "  {\"mode\": \"%s\", \"degree\": %d, \"makespan_s\": %.4f, "
                "\"rows\": %lld, \"rows_per_sec\": %.1f, \"busy_s\": %.4f, "
                "\"lock_wait_s\": %.4f}",
                mode, degree, result.seconds,
                static_cast<long long>(result.rows), result.rows_per_sec,
                result.busy_seconds, result.lock_wait_seconds);
  return buffer;
}

void record(const char* mode, int degree, const RunResult& result) {
  g_figure.add(mode, degree, result.rows_per_sec);
  g_json_entries.push_back(json_entry(mode, degree, result));
}

void record_sharding(const char* mode, int degree, const RunResult& result) {
  g_sharding_figure.add(mode, degree, result.rows_per_sec);
  g_sharding_json.push_back(json_entry(mode, degree, result));
}

// range(1): 0 = fine-grained row path, 1 = global mutex, 2 = fine-grained
// with the columnar batch ingest pipeline.
void bench_scaling(benchmark::State& state) {
  const int degree = static_cast<int>(state.range(0));
  const int mode = static_cast<int>(state.range(1));
  static const std::vector<sky::core::CatalogFile> files = make_workload();
  for (auto _ : state) {
    const RunResult result =
        run_load(/*global_lock=*/mode == 1, degree, files,
                 /*columnar_ingest=*/mode == 2);
    state.SetIterationTime(result.seconds);
    state.counters["rows_per_sec"] = result.rows_per_sec;
    state.counters["lock_wait_s"] = result.lock_wait_seconds;
    record(mode == 1 ? "global-mutex"
                     : (mode == 2 ? "columnar" : "fine-grained"),
           degree, result);
  }
}

void record_window(const char* mode, int degree, const RunResult& result) {
  g_window_figure.add(mode, degree, result.rows_per_sec);
  const int64_t commits = result.wal.commit_requests;
  const int64_t led = commits - result.wal.group_piggybacks;
  const double fpc =
      commits > 0 ? static_cast<double>(led) / static_cast<double>(commits)
                  : 1.0;
  g_window_fpc[{mode, degree}] = fpc;
  char buffer[320];
  std::snprintf(buffer, sizeof(buffer),
                "  {\"mode\": \"%s\", \"degree\": %d, \"makespan_s\": %.4f, "
                "\"rows_per_sec\": %.1f, \"commit_requests\": %lld, "
                "\"piggybacks\": %lld, \"flushes_per_commit\": %.4f, "
                "\"leader_wait_s\": %.4f}",
                mode, degree, result.seconds, result.rows_per_sec,
                static_cast<long long>(commits),
                static_cast<long long>(result.wal.group_piggybacks), fpc,
                static_cast<double>(result.wal.leader_wait_ns) / 1e9);
  g_window_json.push_back(buffer);
}

void bench_window(benchmark::State& state) {
  const int degree = static_cast<int>(state.range(0));
  const sky::Nanos window = state.range(1) * 1000 * 1000;  // ms -> ns
  static const std::vector<sky::core::CatalogFile> files =
      make_window_workload();
  for (auto _ : state) {
    const RunResult result = run_window_load(window, degree, files);
    state.SetIterationTime(result.seconds);
    state.counters["rows_per_sec"] = result.rows_per_sec;
    record_window(state.range(1) == 0 ? "no-window" : "window-3ms", degree,
                  result);
  }
}

void bench_sharding(benchmark::State& state) {
  const int degree = static_cast<int>(state.range(0));
  const uint32_t extents = static_cast<uint32_t>(state.range(1));
  static const std::vector<sky::core::CatalogFile> files = make_workload();
  for (auto _ : state) {
    const RunResult result = run_sharding_load(extents, degree, files);
    state.SetIterationTime(result.seconds);
    state.counters["rows_per_sec"] = result.rows_per_sec;
    state.counters["lock_wait_s"] = result.lock_wait_seconds;
    record_sharding(extents > 1 ? "sharded-8" : "single-heap", degree, result);
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  for (const int degree : {1, 2, 4, 6, 8}) {
    benchmark::RegisterBenchmark("engine_scaling/fine", bench_scaling)
        ->Args({degree, 0})
        ->Iterations(1)
        ->UseManualTime()
        ->Unit(benchmark::kSecond);
    benchmark::RegisterBenchmark("engine_scaling/global", bench_scaling)
        ->Args({degree, 1})
        ->Iterations(1)
        ->UseManualTime()
        ->Unit(benchmark::kSecond);
    if (degree == 1 || degree == 6) {
      benchmark::RegisterBenchmark("engine_scaling/columnar", bench_scaling)
          ->Args({degree, 2})
          ->Iterations(1)
          ->UseManualTime()
          ->Unit(benchmark::kSecond);
    }
    benchmark::RegisterBenchmark("heap_sharding/sharded", bench_sharding)
        ->Args({degree, 8})
        ->Iterations(1)
        ->UseManualTime()
        ->Unit(benchmark::kSecond);
    benchmark::RegisterBenchmark("heap_sharding/single", bench_sharding)
        ->Args({degree, 1})
        ->Iterations(1)
        ->UseManualTime()
        ->Unit(benchmark::kSecond);
  }
  for (const int degree : {1, 4, 6}) {
    for (const int64_t window_ms : {0, 3}) {
      benchmark::RegisterBenchmark("commit_window/threads", bench_window)
          ->Args({degree, window_ms})
          ->Iterations(1)
          ->UseManualTime()
          ->Unit(benchmark::kSecond);
    }
  }
  benchmark::RunSpecifiedBenchmarks();
  g_figure.print();
  g_sharding_figure.print();

  {
    std::ofstream json("BENCH_engine_scaling.json");
    json << "[\n";
    for (size_t i = 0; i < g_json_entries.size(); ++i) {
      json << g_json_entries[i] << (i + 1 < g_json_entries.size() ? ",\n" : "\n");
    }
    json << "]\n";
  }
  std::printf("\nwrote BENCH_engine_scaling.json\n");

  const double fine1 = g_figure.value("fine-grained", 1);
  const double fine6 = g_figure.value("fine-grained", 6);
  const double global1 = g_figure.value("global-mutex", 1);
  const double global6 = g_figure.value("global-mutex", 6);
  std::printf("fine-grained speedup at 6: %.2fx; global-mutex: %.2fx\n",
              fine1 > 0 ? fine6 / fine1 : 0,
              global1 > 0 ? global6 / global1 : 0);
  shape_check(fine6 >= 3.0 * fine1,
              "fine-grained locking: >=3x aggregate rows/sec at degree 6");
  shape_check(global6 < 1.5 * global1,
              "global mutex emulation stays flat as loaders are added");
  shape_check(fine6 > 2.0 * global6,
              "fine-grained beats the global mutex at degree 6");
  const double columnar6 = g_figure.value("columnar", 6);
  std::printf("columnar vs row batch path at degree 6: %.2fx\n",
              fine6 > 0 ? columnar6 / fine6 : 0);
  shape_check(columnar6 >= 0.9 * fine6,
              "columnar ingest does not regress aggregate rows/sec at "
              "degree 6");

  {
    std::ofstream json("BENCH_heap_sharding.json");
    json << "[\n";
    for (size_t i = 0; i < g_sharding_json.size(); ++i) {
      json << g_sharding_json[i]
           << (i + 1 < g_sharding_json.size() ? ",\n" : "\n");
    }
    json << "]\n";
  }
  std::printf("\nwrote BENCH_heap_sharding.json\n");

  const double sharded1 = g_sharding_figure.value("sharded-8", 1);
  const double sharded6 = g_sharding_figure.value("sharded-8", 6);
  const double single6 = g_sharding_figure.value("single-heap", 6);
  std::printf("sharded speedup at 6: %.2fx over single heap\n",
              single6 > 0 ? sharded6 / single6 : 0);
  shape_check(sharded6 >= 1.5 * single6,
              "sharded heap: >=1.5x aggregate rows/sec at degree 6 vs one "
              "append stream");
  shape_check(sharded6 >= 1.5 * sharded1,
              "sharded heap scales with loaders on the same table");

  g_window_figure.print();
  {
    std::ofstream json("BENCH_commit_window_threads.json");
    json << "[\n";
    for (size_t i = 0; i < g_window_json.size(); ++i) {
      json << g_window_json[i] << (i + 1 < g_window_json.size() ? ",\n" : "\n");
    }
    json << "]\n";
  }
  std::printf("\nwrote BENCH_commit_window_threads.json\n");

  const double fpc_base = g_window_fpc[{"no-window", 6}];
  const double fpc_windowed = g_window_fpc[{"window-3ms", 6}];
  std::printf("degree 6: %.2f flushes/commit without window, %.2f with\n",
              fpc_base, fpc_windowed);
  // Implicit group commit already folds commits that clump behind an
  // in-flight flush (on a timeshared host the clumping is substantial), so
  // the window is judged on what it adds beyond that: fewer flushes than
  // implicit piggybacking alone, and material grouping in absolute terms
  // (at least two commits per device write on average).
  shape_check(fpc_windowed < 0.85 * fpc_base && fpc_windowed < 0.5,
              "commit window cuts real-thread flushes per commit beyond "
              "implicit group commit at degree 6");
  // The window buys fewer device writes with bounded extra commit latency
  // (the leader holds the group open for up to the window). The makespan
  // cost must stay within that bound, not balloon past it.
  shape_check(g_window_figure.value("window-3ms", 6) >=
                  0.7 * g_window_figure.value("no-window", 6),
              "windowed rows/sec stays within the bounded-latency trade at "
              "degree 6");
  // The lone loader takes the single-transaction fast path: the leader
  // never held a window open, so the wait counter stays exactly zero.
  shape_check(g_window_fpc.count({"window-3ms", 1}) > 0 &&
                  g_window_figure.value("window-3ms", 1) >=
                      0.85 * g_window_figure.value("no-window", 1),
              "window does not slow the single loader (fast path skips it)");
  return 0;
}
