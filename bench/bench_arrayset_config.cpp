// Future-work extension (paper section 4.3), measured: configurable
// array-set sizing.
//
// The paper's framework used one global array-size and flagged two
// refinements for future work: per-table array sizes from a configuration
// file, and an aggregate "memory high water mark" trigger. Both are
// implemented; this bench compares, at equal client memory budgets:
//   * uniform    — one global array-size (the paper's production setup),
//   * per-table  — array sizes proportional to each table's row share
//                  (fingers get 4x the objects array, etc.),
//   * high-water — arrays unbounded, flush when the aggregate footprint
//                  hits the memory budget.
#include "bench_util.h"

namespace {

using namespace skybench;

FigureTable g_figure("Extension 4.3: array-set sizing (200 MB data set)",
                     "client memory budget (KiB)",
                     "runtime (simulated seconds)");

enum class Mode { kUniform = 0, kPerTable = 1, kHighWater = 2 };

const char* mode_name(Mode mode) {
  switch (mode) {
    case Mode::kUniform: return "uniform";
    case Mode::kPerTable: return "per-table";
    case Mode::kHighWater: return "high-water";
  }
  return "?";
}

// Approximate interleave shares (rows per object-group) for the hot tables;
// used to split a row budget proportionally.
const std::map<std::string, double> kRowShares = {
    {"objects", 1.0},      {"fingers", 4.0},       {"object_moments", 1.0},
    {"object_flags", 1.0}, {"detections", 1.5},    {"ccd_frames", 0.025},
    {"ccd_frame_apertures", 0.1}};

sky::core::ArraySet::Config config_for(Mode mode, int64_t memory_kib,
                                       const sky::db::Schema& schema) {
  sky::core::ArraySet::Config config;
  // The measured footprint is ~0.6 KiB per array-row-unit at uniform
  // sizing; derive comparable budgets for all three modes.
  const int64_t row_budget = memory_kib * 1024 / 620;
  switch (mode) {
    case Mode::kUniform:
      config.default_rows = std::max<int64_t>(16, row_budget / 9);
      break;
    case Mode::kPerTable: {
      double total_share = 0;
      for (const auto& [table, share] : kRowShares) total_share += share;
      // Non-hot tables get a small fixed array.
      config.default_rows = 64;
      for (const auto& [table, share] : kRowShares) {
        (void)schema;
        config.per_table_rows[table] = std::max<int64_t>(
            16, static_cast<int64_t>(static_cast<double>(row_budget) *
                                     share / total_share));
      }
      break;
    }
    case Mode::kHighWater:
      config.default_rows = 1 << 20;  // effectively unbounded
      config.memory_high_water_bytes = memory_kib * 1024;
      break;
  }
  return config;
}

void bench_mode(benchmark::State& state) {
  const auto mode = static_cast<Mode>(state.range(0));
  const int64_t memory_kib = state.range(1);
  for (auto _ : state) {
    SimRepository repo = SimRepository::create();
    const auto file = make_file(200, /*seed=*/1900, /*unit_id=*/190);
    sky::core::BulkLoaderOptions options;
    options.write_audit_row = false;
    options.array_config = config_for(mode, memory_kib, repo.schema);
    const auto report = run_bulk(repo, file, options);
    const double seconds = normalized_seconds(report.elapsed);
    state.SetIterationTime(seconds);
    g_figure.add(mode_name(mode), static_cast<double>(memory_kib), seconds);
    state.counters["cycles"] = static_cast<double>(report.flush_cycles);
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  for (const int64_t memory_kib : {160, 320, 640, 1280}) {
    for (const int64_t mode : {0, 1, 2}) {
      benchmark::RegisterBenchmark("arrayset_config/mode", bench_mode)
          ->Args({mode, memory_kib})
          ->Iterations(1)
          ->UseManualTime()
          ->Unit(benchmark::kSecond);
    }
  }
  benchmark::RunSpecifiedBenchmarks();
  g_figure.print();

  int per_table_wins = 0, high_water_wins = 0, points = 0;
  for (const double memory_kib : {160.0, 320.0, 640.0, 1280.0}) {
    ++points;
    if (g_figure.value("per-table", memory_kib) <
        g_figure.value("uniform", memory_kib)) {
      ++per_table_wins;
    }
    if (g_figure.value("high-water", memory_kib) <
        g_figure.value("uniform", memory_kib)) {
      ++high_water_wins;
    }
  }
  std::printf("\nper-table beats uniform at %d/%d budgets; high-water at "
              "%d/%d\n",
              per_table_wins, points, high_water_wins, points);
  shape_check(per_table_wins >= points - 1,
              "interleave-aware per-table arrays beat one global size");
  shape_check(high_water_wins >= points - 1,
              "the memory high-water mark matches or beats fixed sizing");
  const double tight = g_figure.value("uniform", 160);
  const double loose = g_figure.value("uniform", 1280);
  shape_check(tight > loose,
              "more client memory helps until the paging knee (cf. Fig. 6)");
  return 0;
}
