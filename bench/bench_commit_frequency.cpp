// Section 4.5.2 ablation: commit frequency.
//
// A commit forces redo processing and a log-device flush; committing rarely
// amortizes that cost ("we chose to execute commits very infrequently ...
// resulting in a significant performance increase"), at the price of a
// larger redo backlog (also reported here).
#include "bench_util.h"

namespace {

using namespace skybench;

FigureTable g_figure("Ablation 4.5.2: Commit Frequency (200 MB data set)",
                     "batches between commits (0 = end of file)",
                     "runtime (simulated seconds)");

// Sweep: commit every N database calls (1 = JDBC autocommit after every
// batch); 0 = only at end of file.
const std::vector<int64_t> kCommitEvery = {1, 4, 16, 64, 256, 0};

void bench_commit(benchmark::State& state) {
  const int64_t every = state.range(0);
  for (auto _ : state) {
    SimRepository repo = SimRepository::create();
    const auto file = make_file(200, /*seed=*/1100, /*unit_id=*/110);
    sky::core::BulkLoaderOptions options;
    options.write_audit_row = false;
    options.commit_every_batches = every;
    const auto report = run_bulk(repo, file, options);
    const double seconds = normalized_seconds(report.elapsed);
    state.SetIterationTime(seconds);
    // Use 1000 as the x position for "end of file only".
    g_figure.add("runtime", every == 0 ? 1000.0 : static_cast<double>(every),
                 seconds);
    state.counters["commits"] = static_cast<double>(report.commits);
    state.counters["redo_backlog_max"] = static_cast<double>(
        repo.engine->wal_stats().max_unflushed_bytes);
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  for (const int64_t every : kCommitEvery) {
    benchmark::RegisterBenchmark("commit_frequency/every", bench_commit)
        ->Arg(every)
        ->Iterations(1)
        ->UseManualTime()
        ->Unit(benchmark::kSecond);
  }
  benchmark::RunSpecifiedBenchmarks();
  g_figure.print();

  const double frequent = g_figure.value("runtime", 1);
  const double infrequent = g_figure.value("runtime", 1000);
  std::printf("\nautocommit-per-batch: %.1f s; commit-at-end: %.1f s "
              "(%.1f%% saved)\n",
              frequent, infrequent, (frequent - infrequent) / frequent * 100);
  shape_check(infrequent < frequent * 0.95,
              "infrequent commits are significantly faster than autocommit");
  shape_check(g_figure.value("runtime", 16) < frequent &&
                  g_figure.value("runtime", 256) <= g_figure.value("runtime", 16),
              "runtime improves monotonically as commits get rarer");
  return 0;
}
