// Section 4.5.2 ablation: commit frequency — and commit coalescing.
//
// Part 1 (single loader): a commit forces redo processing and a log-device
// flush; committing rarely amortizes that cost ("we chose to execute
// commits very infrequently ... resulting in a significant performance
// increase"), at the price of a larger redo backlog (also reported here).
//
// Part 2 (parallel loaders): when commits must stay frequent, the
// commit-coalescing group-commit window folds commits arriving close
// together into one log-device flush. Sweeps parallel degree x window over
// a commit-heavy load and emits BENCH_commit_window.json. Expected shape:
// materially fewer flushes per commit at degree >= 4, and an unchanged
// degree-1 runtime (the lone loader skips the window).
//
// --smoke: shrink both sweeps for CI (same shapes, smaller data set).
#include "bench_util.h"

#include <cstring>
#include <fstream>

namespace {

using namespace skybench;

bool g_smoke = false;

FigureTable g_figure("Ablation 4.5.2: Commit Frequency (200 MB data set)",
                     "batches between commits (0 = end of file)",
                     "runtime (simulated seconds)");

// Sweep: commit every N database calls (1 = JDBC autocommit after every
// batch); 0 = only at end of file.
std::vector<int64_t> commit_every_sweep() {
  if (g_smoke) return {1, 16, 256, 0};
  return {1, 4, 16, 64, 256, 0};
}

void bench_commit(benchmark::State& state) {
  const int64_t every = state.range(0);
  for (auto _ : state) {
    SimRepository repo = SimRepository::create();
    const auto file = make_file(g_smoke ? 40 : 200, /*seed=*/1100,
                                /*unit_id=*/110);
    sky::core::BulkLoaderOptions options;
    options.write_audit_row = false;
    options.commit.every_batches = every;
    const auto report = run_bulk(repo, file, options);
    const double seconds = normalized_seconds(report.elapsed);
    state.SetIterationTime(seconds);
    // Use 1000 as the x position for "end of file only".
    g_figure.add("runtime", every == 0 ? 1000.0 : static_cast<double>(every),
                 seconds);
    state.counters["commits"] = static_cast<double>(report.commits);
    state.counters["redo_backlog_max"] = static_cast<double>(
        repo.engine->wal_stats().max_unflushed_bytes);
  }
}

// ---- Part 2: commit-coalescing window, parallel degrees -------------------

FigureTable g_window_figure(
    "Commit coalescing: log flushes per commit (commit every 4 batches)",
    "parallel loaders", "flushes per commit");
std::vector<std::string> g_window_json;
// (degree, window_ms) -> result, for the shape checks on makespan.
std::map<std::pair<int, int64_t>, double> g_window_seconds;

struct WindowResult {
  double seconds = 0;
  double rows_per_sec = 0;
  int64_t flushes = 0;
  int64_t piggybacks = 0;
  double flushes_per_commit = 1.0;
  double leader_wait_s = 0;
};

WindowResult run_window_load(int degree, sky::Nanos window) {
  sky::core::TuningProfile profile = sky::core::TuningProfile::production();
  profile.commit.commit_window = window;
  profile.commit.max_group_commits = 8;
  SimRepository repo = SimRepository::create(profile);
  const auto files = make_observation(g_smoke ? 12 : 60, /*seed=*/5200,
                                      /*night_id=*/52);
  sky::core::CoordinatorOptions options;
  options.parallel_degree = degree;
  options.loader.write_audit_row = false;
  // Commit-heavy on purpose: the window only matters when commits are
  // frequent enough to collide.
  options.loader.commit.every_batches = 4;
  const auto report = sky::core::LoadCoordinator::run_sim(
      *repo.env, *repo.server, files, repo.schema, options);
  if (!report.is_ok()) std::abort();

  WindowResult result;
  result.seconds = normalized_seconds(report->makespan);
  result.rows_per_sec =
      result.seconds > 0
          ? static_cast<double>(report->total_rows_loaded) / result.seconds
          : 0;
  result.flushes = report->commit_flushes;
  result.piggybacks = report->commit_piggybacks;
  const int64_t commits = result.flushes + result.piggybacks;
  result.flushes_per_commit =
      commits > 0 ? static_cast<double>(result.flushes) /
                        static_cast<double>(commits)
                  : 1.0;
  result.leader_wait_s = sky::to_seconds(report->commit_leader_wait);
  return result;
}

void bench_window(benchmark::State& state) {
  const int degree = static_cast<int>(state.range(0));
  const sky::Nanos window = state.range(1) * sky::kMillisecond;
  for (auto _ : state) {
    const WindowResult result = run_window_load(degree, window);
    state.SetIterationTime(result.seconds);
    state.counters["flushes_per_commit"] = result.flushes_per_commit;
    state.counters["piggybacks"] = static_cast<double>(result.piggybacks);
    const std::string series =
        state.range(1) == 0 ? "window-0"
                            : "window-" + std::to_string(state.range(1)) + "ms";
    g_window_figure.add(series, degree, result.flushes_per_commit);
    g_window_seconds[{degree, state.range(1)}] = result.seconds;
    char buffer[256];
    std::snprintf(buffer, sizeof(buffer),
                  "  {\"degree\": %d, \"window_ms\": %lld, "
                  "\"makespan_s\": %.4f, \"rows_per_sec\": %.1f, "
                  "\"commit_flushes\": %lld, \"commit_piggybacks\": %lld, "
                  "\"flushes_per_commit\": %.4f, \"leader_wait_s\": %.4f}",
                  degree, static_cast<long long>(state.range(1)),
                  result.seconds, result.rows_per_sec,
                  static_cast<long long>(result.flushes),
                  static_cast<long long>(result.piggybacks),
                  result.flushes_per_commit, result.leader_wait_s);
    g_window_json.push_back(buffer);
  }
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      g_smoke = true;
      // Strip the flag so google-benchmark does not reject it.
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      break;
    }
  }
  benchmark::Initialize(&argc, argv);
  for (const int64_t every : commit_every_sweep()) {
    benchmark::RegisterBenchmark("commit_frequency/every", bench_commit)
        ->Arg(every)
        ->Iterations(1)
        ->UseManualTime()
        ->Unit(benchmark::kSecond);
  }
  const std::vector<int> degrees = g_smoke ? std::vector<int>{1, 4}
                                           : std::vector<int>{1, 2, 4, 6};
  const std::vector<int64_t> windows_ms = {0, 2, 8};
  for (const int degree : degrees) {
    for (const int64_t window_ms : windows_ms) {
      benchmark::RegisterBenchmark("commit_window/sweep", bench_window)
          ->Args({degree, window_ms})
          ->Iterations(1)
          ->UseManualTime()
          ->Unit(benchmark::kSecond);
    }
  }
  benchmark::RunSpecifiedBenchmarks();
  g_figure.print();

  const double frequent = g_figure.value("runtime", 1);
  const double infrequent = g_figure.value("runtime", 1000);
  std::printf("\nautocommit-per-batch: %.1f s; commit-at-end: %.1f s "
              "(%.1f%% saved)\n",
              frequent, infrequent, (frequent - infrequent) / frequent * 100);
  shape_check(infrequent < frequent * 0.95,
              "infrequent commits are significantly faster than autocommit");
  shape_check(g_figure.value("runtime", 16) < frequent &&
                  g_figure.value("runtime", 256) <= g_figure.value("runtime", 16),
              "runtime improves monotonically as commits get rarer");

  g_window_figure.print();
  {
    std::ofstream json("BENCH_commit_window.json");
    json << "[\n";
    for (size_t i = 0; i < g_window_json.size(); ++i) {
      json << g_window_json[i] << (i + 1 < g_window_json.size() ? ",\n" : "\n");
    }
    json << "]\n";
  }
  std::printf("\nwrote BENCH_commit_window.json\n");

  const int high_degree = degrees.back();
  const double fpc_base = g_window_figure.value("window-0", high_degree);
  const double fpc_windowed = g_window_figure.value("window-8ms", high_degree);
  std::printf("degree %d: %.2f flushes/commit without window, %.2f with 8 ms "
              "window\n",
              high_degree, fpc_base, fpc_windowed);
  shape_check(fpc_windowed < 0.7 * fpc_base,
              "coalescing window materially cuts flushes per commit at "
              "parallel degree >= 4");
  shape_check(g_window_seconds[{high_degree, 8}] <=
                  g_window_seconds[{high_degree, 0}] * 1.05,
              "windowed makespan does not regress at high parallel degree");
  // Sim runs are deterministic: the lone loader takes the (modeled)
  // single-transaction fast path, so the window must cost degree 1 nothing.
  const double d1_base = g_window_seconds[{1, 0}];
  const double d1_windowed = g_window_seconds[{1, 8}];
  shape_check(d1_base > 0 && d1_windowed <= d1_base * 1.01,
              "window does not slow the single loader (fast path skips it)");
  return 0;
}
