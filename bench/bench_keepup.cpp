// The paper's opening requirement: "data-loading speed must keep up with
// data-acquisition speed" (sections 1 and 3).
//
// Palomar-Quest produces ~15 GB of catalog data per observing night
// (section 2), and the telescope observes 12-15 nights per month. This
// bench measures the sustained loading rate of each tuning profile and
// reports the keep-up margin: how many nights of catalog data can be loaded
// per 24 hours. A margin below 1.0 means the repository falls behind its
// telescope — the failure mode the whole framework exists to prevent.
#include "bench_util.h"

namespace {

using namespace skybench;

FigureTable g_figure("Keep-up analysis: nights of catalog data loadable "
                     "per 24 h",
                     "profile (0=untuned-2004, 1=production)",
                     "nights per day");

constexpr double kCatalogGbPerNight = 15.0;

void bench_keepup(benchmark::State& state) {
  const bool production = state.range(0) == 1;
  for (auto _ : state) {
    const sky::core::TuningProfile profile =
        production ? sky::core::TuningProfile::production()
                   : sky::core::TuningProfile::untuned_2004();
    SimRepository repo = SimRepository::create(profile);
    const auto files =
        make_observation(/*paper_mb=*/280, /*seed=*/2200, /*night_id=*/22);
    sky::core::CoordinatorOptions options;
    options.parallel_degree = profile.parallel_degree;
    options.dynamic_assignment = profile.dynamic_assignment;
    options.loader = profile.bulk_options();
    options.loader.write_audit_row = false;
    if (!profile.bulk) {
      // Approximate the untuned non-bulk path with batch size 1.
      options.loader.batch_size = 1;
      options.loader.commit.every_batches = 100;
    }
    const auto report = sky::core::LoadCoordinator::run_sim(
        *repo.env, *repo.server, files, repo.schema, options);
    if (!report.is_ok()) std::abort();
    const double seconds = normalized_seconds(report->makespan);
    const double mb_per_s =
        (static_cast<double>(report->total_bytes) / 1e6 / bench_scale()) /
        seconds;
    const double nights_per_day =
        mb_per_s * 86400.0 / (kCatalogGbPerNight * 1000.0);
    state.SetIterationTime(seconds);
    g_figure.add(production ? "production" : "untuned",
                 production ? 1.0 : 0.0, nights_per_day);
    state.counters["MBps"] = mb_per_s;
    state.counters["nights_per_day"] = nights_per_day;
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  for (const int64_t production : {0, 1}) {
    benchmark::RegisterBenchmark("keepup/profile", bench_keepup)
        ->Arg(production)
        ->Iterations(1)
        ->UseManualTime()
        ->Unit(benchmark::kSecond);
  }
  benchmark::RunSpecifiedBenchmarks();
  g_figure.print();

  const double untuned = g_figure.value("untuned", 0.0);
  const double production = g_figure.value("production", 1.0);
  std::printf("\nnights loadable per 24 h: untuned %.2f, production %.2f\n",
              untuned, production);
  std::printf("(the telescope observes ~12-15 nights/month ~= 0.5/day;\n"
              " a sustained margin >= ~0.5 keeps up, >1 also absorbs the\n"
              " catch-up backlog the paper describes)\n");
  shape_check(production > 1.0,
              "the production profile keeps up with acquisition, with "
              "headroom for backlog catch-up");
  shape_check(untuned < production / 4.0,
              "the untuned profile's margin is a fraction of production's");
  return 0;
}
