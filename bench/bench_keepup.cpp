// The paper's opening requirement: "data-loading speed must keep up with
// data-acquisition speed" (sections 1 and 3) — but production traffic is not
// one workload. A survey repository alternates between nightly bulk ingest,
// daytime interactive query service, and mixed catch-up hours (the
// CasJobs/SkyServer shape). Every tuning knob has a phase-dependent sweet
// spot: a wide commit-coalescing window is what keeps 6 parallel loaders
// from serializing on the log device, and the same window is pure leader
// latency once only a trickle of committers remains.
//
// This bench runs a deterministic three-phase soak in virtual time —
// ingest-heavy, query-heavy, mixed — under three configurations:
//
//   * static-bulk        — tuned for the ingest phase (wide commit window,
//                          high transaction-slot count) and left alone;
//   * static-interactive — tuned for the query phase (zero window, lean
//                          slots) and left alone;
//   * adaptive           — starts from the interactive preset and lets
//                          core::Controller re-tune it live each tick
//                          through client::SimControlPlane, the same
//                          EngineStats -> PolicyPatch loop that drives a
//                          real engine.
//
// Gates (CI runs --smoke): the adaptive run must load at least as many
// rows/sec over the whole soak as EVERY static preset, while keeping
// interactive p99 within 1.1x of the best static preset. A static config is
// wrong part of the time by construction; the controller must never be.
//
// Also keeps the original keep-up readout: nights of catalog data loadable
// per 24 h (Palomar-Quest produces ~15 GB per observing night, section 2).
// Emits BENCH_keepup.json.
#include "bench_util.h"

#include <algorithm>
#include <cstring>
#include <fstream>

#include "client/sim_server.h"
#include "common/rng.h"
#include "core/controller.h"
#include "core/load_report.h"
#include "db/control_plane.h"

namespace {

using namespace skybench;
using sky::db::Value;

constexpr int kBatchRows = 64;
constexpr int64_t kHtmidSpace = 1 << 20;
constexpr int64_t kLoaderStripe = 1'000'000'000;
// Approximate ASCII catalog bytes represented by one loaded row, used only
// for the nights-per-day readout (a Palomar-Quest catalog line is ~100-150
// characters).
constexpr double kBytesPerRow = 120.0;
constexpr double kCatalogGbPerNight = 15.0;

sky::db::Schema make_objects_schema() {
  sky::db::Schema schema;
  sky::db::TableDef objects;
  objects.name = "objects";
  objects.col("objid", sky::db::ColumnType::kInt64, /*nullable=*/false)
      .col("htmid", sky::db::ColumnType::kInt64, /*nullable=*/false)
      .col("ra", sky::db::ColumnType::kDouble)
      .col("dec", sky::db::ColumnType::kDouble)
      .col("mag", sky::db::ColumnType::kDouble);
  objects.primary_key = {"objid"};
  objects.indexes.push_back({"ix_htmid", {"htmid"}, /*unique=*/false, {}});
  if (!schema.add_table(std::move(objects)).is_ok()) std::abort();
  return schema;
}

// Sim-safe engine: admission and commit coalescing are modeled at the
// SimServer (a real gate or timed WAL wait inside a sim process would wedge
// the cooperative scheduler), so the engine runs permissive and windowless —
// same shape TuningProfile::engine_options() uses.
sky::db::EngineOptions sim_engine_options() {
  sky::db::EngineOptions options;
  options.concurrency.max_concurrent_transactions = 64;
  options.concurrency.itl_slots_per_table = 0;
  return options;
}

struct SoakResult {
  std::string name;
  double rows_per_sec = 0;
  double phase_rows_per_sec[3] = {0, 0, 0};
  double interactive_p50_ms = 0;
  double interactive_p99_ms = 0;
  int64_t interactive_queries = 0;
  int64_t commit_flushes = 0;
  int64_t commit_piggybacks = 0;
  double nights_per_day = 0;
  uint64_t control_ticks = 0;
  uint64_t control_patches = 0;
  std::vector<std::string> control_decisions;
};

struct PhasePlan {
  sky::Nanos a_end, b_end, c_end;
};

// One loader cohort member: real SimSession protocol (txn/ITL slots, server
// CPU, device I/O, group-commit log flushes) from `begin` until `end`.
void run_loader(sky::client::SimServer& server, int loader_id,
                sky::Nanos begin, sky::Nanos end, int commit_every_batches,
                sky::Nanos think, int64_t* rows_out,
                sky::client::SessionStats* stats_out) {
  sky::sim::Environment& env = server.env();
  if (begin > 0) env.delay(begin - env.now());
  sky::client::SimSession session(server);
  const auto table = session.prepare_insert("objects");
  if (!table.is_ok()) std::abort();
  sky::Rng rng(7100 + static_cast<uint64_t>(loader_id));
  int64_t next_id = 0;
  int64_t txn_rows = 0;
  int batches_in_txn = 0;
  while (env.now() < end) {
    std::vector<sky::db::Row> rows;
    rows.reserve(kBatchRows);
    for (int r = 0; r < kBatchRows; ++r) {
      rows.push_back({Value::i64(loader_id * kLoaderStripe + next_id++),
                      Value::i64(rng.uniform_int(0, kHtmidSpace - 1)),
                      Value::f64(rng.uniform_range(0, 360)),
                      Value::f64(rng.uniform_range(-90, 90)),
                      Value::f64(rng.uniform_range(14, 24))});
    }
    const auto outcome = session.execute_batch(*table, rows);
    if (outcome.error.has_value()) std::abort();
    txn_rows += outcome.applied;
    if (++batches_in_txn >= commit_every_batches) {
      if (!session.commit().is_ok()) std::abort();
      *rows_out += txn_rows;
      txn_rows = 0;
      batches_in_txn = 0;
    }
    if (think > 0) env.delay(think);
  }
  if (batches_in_txn > 0) {
    if (!session.commit().is_ok()) std::abort();
    *rows_out += txn_rows;
  }
  *stats_out = session.stats();
}

// One interactive client: think, admit through the interactive lane, pay a
// CPU slice and a data-device read (where it queues behind loader extent
// writes), release. Latency = virtual time from arrival to completion.
void run_client(sky::client::SimServer& server, sky::Nanos begin,
                sky::Nanos end, std::vector<sky::Nanos>* latencies) {
  sky::sim::Environment& env = server.env();
  if (begin > 0) env.delay(begin - env.now());
  while (env.now() < end) {
    env.delay(10 * sky::kMillisecond);
    const sky::Nanos start = env.now();
    server.admit_query(/*interactive=*/true);
    sky::sim::Resource& cpu = server.node_cpus(0);
    cpu.acquire();
    env.delay(300 * sky::kMicrosecond);
    cpu.release();
    sky::sim::Resource& data = server.device_for(sky::storage::IoRole::kData);
    data.acquire();
    env.delay(200 * sky::kMicrosecond);
    data.release();
    server.release_query(/*interactive=*/true);
    latencies->push_back(env.now() - start);
  }
}

SoakResult run_soak(const std::string& name,
                    const sky::client::ServerConfig& config, bool adaptive,
                    const PhasePlan& plan) {
  const sky::db::Schema schema = make_objects_schema();
  sky::db::Engine engine(schema, sim_engine_options());
  sky::sim::Environment env;
  sky::client::SimServer server(env, engine, config);

  struct Cohort {
    int loaders;
    sky::Nanos begin, end;
    int commit_every;
    sky::Nanos think;
  };
  // Phase A: nightly ingest — 6 loaders committing every batch. Phase B:
  // query hours — 2 trickle loaders with larger transactions plus the
  // interactive clients. Phase C: mixed catch-up — 4 loaders while the
  // clients keep going.
  const Cohort cohorts[3] = {
      {6, 0, plan.a_end, 1, 0},
      {2, plan.a_end, plan.b_end, 4, 5 * sky::kMillisecond},
      {4, plan.b_end, plan.c_end, 1, 0},
  };
  int64_t phase_rows[3] = {0, 0, 0};
  std::vector<sky::client::SessionStats> loader_stats;
  int next_loader = 0;
  for (int phase = 0; phase < 3; ++phase) {
    for (int i = 0; i < cohorts[phase].loaders; ++i) {
      loader_stats.emplace_back();
    }
  }
  size_t stats_slot = 0;
  for (int phase = 0; phase < 3; ++phase) {
    const Cohort cohort = cohorts[phase];
    for (int i = 0; i < cohort.loaders; ++i) {
      const int id = next_loader++;
      sky::client::SessionStats* stats_out = &loader_stats[stats_slot++];
      int64_t* rows_out = &phase_rows[phase];
      env.spawn("loader-" + std::to_string(id),
                [&server, cohort, id, rows_out, stats_out] {
        run_loader(server, id, cohort.begin, cohort.end, cohort.commit_every,
                   cohort.think, rows_out, stats_out);
      });
    }
  }

  constexpr int kClients = 6;
  std::vector<std::vector<sky::Nanos>> client_latencies(kClients);
  for (int c = 0; c < kClients; ++c) {
    auto* latencies = &client_latencies[static_cast<size_t>(c)];
    env.spawn("client-" + std::to_string(c), [&server, &plan, latencies] {
      run_client(server, plan.a_end, plan.c_end, latencies);
    });
  }

  // The adaptive run closes the loop: the same Controller that tunes a real
  // engine ticks on virtual time through the SimControlPlane.
  sky::client::SimControlPlane plane(server);
  sky::core::ControllerPolicy policy;
  policy.tick_interval = 50 * sky::kMillisecond;
  policy.max_transaction_slots = 8;
  std::unique_ptr<sky::core::Controller> controller;
  if (adaptive) {
    controller = std::make_unique<sky::core::Controller>(plane, policy);
    env.spawn("controller", [&env, &plan, &policy, &controller] {
      while (env.now() < plan.c_end) {
        env.delay(policy.tick_interval);
        controller->tick(env.now());
      }
    });
  }

  env.run();
  if (!engine.verify_integrity().is_ok()) std::abort();

  SoakResult result;
  result.name = name;
  const double total_s = sky::to_seconds(plan.c_end);
  const int64_t total_rows = phase_rows[0] + phase_rows[1] + phase_rows[2];
  result.rows_per_sec = static_cast<double>(total_rows) / total_s;
  const double phase_s[3] = {sky::to_seconds(plan.a_end),
                             sky::to_seconds(plan.b_end - plan.a_end),
                             sky::to_seconds(plan.c_end - plan.b_end)};
  for (int phase = 0; phase < 3; ++phase) {
    result.phase_rows_per_sec[phase] =
        static_cast<double>(phase_rows[phase]) / phase_s[phase];
  }
  std::vector<sky::Nanos> all;
  for (auto& samples : client_latencies) {
    all.insert(all.end(), samples.begin(), samples.end());
  }
  result.interactive_queries = static_cast<int64_t>(all.size());
  if (!all.empty()) {
    std::sort(all.begin(), all.end());
    result.interactive_p50_ms =
        static_cast<double>(all[all.size() / 2]) / 1e6;
    result.interactive_p99_ms =
        static_cast<double>(all[(all.size() * 99) / 100]) / 1e6;
  }
  for (const auto& stats : loader_stats) {
    result.commit_flushes += stats.commit_flushes_led;
    result.commit_piggybacks += stats.commit_piggybacks;
  }
  result.nights_per_day = result.rows_per_sec * kBytesPerRow / 1e6 * 86400.0 /
                          (kCatalogGbPerNight * 1000.0);
  if (controller != nullptr) {
    result.control_ticks = controller->ticks();
    result.control_patches = controller->trace().total();
    const auto decisions = controller->trace().snapshot();
    const size_t tail = decisions.size() > 6 ? decisions.size() - 6 : 0;
    for (size_t i = tail; i < decisions.size(); ++i) {
      result.control_decisions.push_back(decisions[i].render());
    }
  }
  return result;
}

sky::client::ServerConfig base_config() {
  sky::client::ServerConfig config;
  // Keep the soak's contrast on the controller's levers: no injected
  // long-stall randomness, and a batch gate wide enough never to bind.
  config.concurrency.stall_probability = 0.0;
  config.batch_gate_slots = 8;
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  PhasePlan plan;
  if (smoke) {
    plan = {5 * sky::kSecond, 15 * sky::kSecond, 20 * sky::kSecond};
  } else {
    plan = {20 * sky::kSecond, 50 * sky::kSecond, 70 * sky::kSecond};
  }

  sky::client::ServerConfig bulk = base_config();
  bulk.commit_window = 8 * sky::kMillisecond;
  bulk.max_group_commits = 8;
  bulk.concurrency.max_concurrent_transactions = 8;

  sky::client::ServerConfig interactive = base_config();
  interactive.commit_window = 0;
  interactive.max_group_commits = 8;
  interactive.concurrency.max_concurrent_transactions = 4;

  // The adaptive run *starts* as the interactive preset; everything it does
  // better than that preset, it learned from EngineStats at runtime.
  const sky::client::ServerConfig adaptive_start = interactive;

  const SoakResult r_bulk = run_soak("static-bulk", bulk, false, plan);
  const SoakResult r_inter =
      run_soak("static-interactive", interactive, false, plan);
  const SoakResult r_adapt =
      run_soak("adaptive", adaptive_start, true, plan);

  std::printf("\n=== Phase-changing soak (%s): ingest -> query -> mixed ===\n",
              smoke ? "smoke" : "full");
  std::printf("%20s  %10s  %10s  %10s  %10s  %9s  %9s  %8s\n", "config",
              "rows/s", "ingest r/s", "query r/s", "mixed r/s", "p50 ms",
              "p99 ms", "flushes");
  for (const SoakResult* r : {&r_bulk, &r_inter, &r_adapt}) {
    std::printf("%20s  %10.0f  %10.0f  %10.0f  %10.0f  %9.2f  %9.2f  %8lld\n",
                r->name.c_str(), r->rows_per_sec, r->phase_rows_per_sec[0],
                r->phase_rows_per_sec[1], r->phase_rows_per_sec[2],
                r->interactive_p50_ms, r->interactive_p99_ms,
                static_cast<long long>(r->commit_flushes));
  }
  std::printf("\nnights loadable per 24 h: bulk %.2f, interactive %.2f, "
              "adaptive %.2f\n(the telescope observes ~12-15 nights/month "
              "~= 0.5/day; a margin >= ~0.5 keeps up)\n",
              r_bulk.nights_per_day, r_inter.nights_per_day,
              r_adapt.nights_per_day);

  // Surface the controller's decisions the same way a coordinator run
  // reports them.
  sky::core::ParallelLoadReport control_report;
  control_report.control_ticks = r_adapt.control_ticks;
  control_report.control_patches = r_adapt.control_patches;
  control_report.control_decisions = r_adapt.control_decisions;
  std::printf("\nadaptive control: %llu ticks, %llu patches applied\n",
              static_cast<unsigned long long>(r_adapt.control_ticks),
              static_cast<unsigned long long>(r_adapt.control_patches));
  for (const std::string& decision : r_adapt.control_decisions) {
    std::printf("  %s\n", decision.c_str());
  }

  const double best_static_rows =
      std::max(r_bulk.rows_per_sec, r_inter.rows_per_sec);
  const double best_static_p99 =
      std::min(r_bulk.interactive_p99_ms, r_inter.interactive_p99_ms);
  const bool rows_ok = r_adapt.rows_per_sec >= best_static_rows;
  const bool p99_ok =
      r_adapt.interactive_p99_ms <= 1.1 * best_static_p99;
  const bool traced =
      r_adapt.control_patches > 0 &&
      r_adapt.control_ticks > 0 &&
      !r_adapt.control_decisions.empty();

  {
    std::ofstream json("BENCH_keepup.json");
    char buffer[512];
    std::snprintf(buffer, sizeof(buffer),
                  "{\n  \"mode\": \"%s\",\n  \"configs\": [",
                  smoke ? "smoke" : "full");
    json << buffer;
    bool first = true;
    for (const SoakResult* r : {&r_bulk, &r_inter, &r_adapt}) {
      std::snprintf(
          buffer, sizeof(buffer),
          "%s\n    {\"name\": \"%s\", \"rows_per_sec\": %.1f, "
          "\"ingest_rows_per_sec\": %.1f, \"query_rows_per_sec\": %.1f, "
          "\"mixed_rows_per_sec\": %.1f, \"interactive_p99_ms\": %.3f, "
          "\"commit_flushes\": %lld, \"commit_piggybacks\": %lld, "
          "\"nights_per_day\": %.2f}",
          first ? "" : ",", r->name.c_str(), r->rows_per_sec,
          r->phase_rows_per_sec[0], r->phase_rows_per_sec[1],
          r->phase_rows_per_sec[2], r->interactive_p99_ms,
          static_cast<long long>(r->commit_flushes),
          static_cast<long long>(r->commit_piggybacks), r->nights_per_day);
      json << buffer;
      first = false;
    }
    std::snprintf(buffer, sizeof(buffer),
                  "\n  ],\n  \"control_ticks\": %llu,\n"
                  "  \"control_patches\": %llu,\n"
                  "  \"adaptive_rows_vs_best_static\": %.4f,\n"
                  "  \"adaptive_p99_vs_best_static\": %.4f,\n"
                  "  \"gates\": {\"rows\": %s, \"p99\": %s, \"traced\": %s}\n}\n",
                  static_cast<unsigned long long>(r_adapt.control_ticks),
                  static_cast<unsigned long long>(r_adapt.control_patches),
                  best_static_rows > 0
                      ? r_adapt.rows_per_sec / best_static_rows
                      : 0.0,
                  best_static_p99 > 0
                      ? r_adapt.interactive_p99_ms / best_static_p99
                      : 0.0,
                  rows_ok ? "true" : "false", p99_ok ? "true" : "false",
                  traced ? "true" : "false");
    json << buffer;
  }
  std::printf("wrote BENCH_keepup.json\n");

  shape_check(rows_ok,
              "adaptive control sustains >= every static preset's rows/sec "
              "across the phase-changing soak");
  shape_check(p99_ok,
              "adaptive control keeps interactive p99 within 1.1x of the "
              "best static preset");
  shape_check(traced,
              "the controller ticked, applied patches, and recorded its "
              "decisions in the ControlTrace");
  return (rows_ok && p99_ok && traced) ? 0 : 1;
}
