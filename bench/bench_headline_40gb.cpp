// Headline claim (abstract / section 3): "reducing the loading time for a
// 40-gigabyte data set from more than 20 hours to less than 3 hours on the
// same hardware and operating system platform."
//
// The before-state is reconstructed as the untuned-2004 profile: row-at-a-
// time inserts, 2 statically-assigned loaders, frequent commits, every
// index maintained, everything on one RAID, a large data cache, unsorted
// input. The after-state is the production profile: bulk loading (batch
// 40, array 1000), 5 dynamically-assigned loaders, infrequent commits, only
// the htmid index, separate devices, reduced cache, presorted input.
//
// One observation (~280 MB) is loaded under each profile; hours for 40 GB
// are extrapolated linearly (Fig. 9 established size-independence).
#include "bench_util.h"

namespace {

using namespace skybench;

FigureTable g_figure("Headline: 40 GB loading time, before vs after",
                     "profile (0=untuned-2004, 1=skyloader-production)",
                     "extrapolated hours for 40 GB");

constexpr double kTotalMb = 280;
constexpr double kTargetGb = 40.0;

double run_profile(const sky::core::TuningProfile& profile) {
  SimRepository repo = SimRepository::create(profile);
  std::vector<sky::core::CatalogFile> files;
  for (const auto& spec : sky::catalog::CatalogGenerator::observation_specs(
           /*seed=*/1800, /*night_id=*/18, bytes_for_paper_mb(kTotalMb))) {
    sky::catalog::FileSpec adjusted = spec;
    adjusted.shuffle_object_ids = !profile.presorted_input;
    files.push_back(sky::core::CatalogFile{
        adjusted.name,
        sky::catalog::CatalogGenerator::generate(adjusted).text});
  }
  sky::core::CoordinatorOptions options;
  options.parallel_degree = profile.parallel_degree;
  options.dynamic_assignment = profile.dynamic_assignment;
  options.loader = profile.bulk_options();
  options.loader.write_audit_row = false;

  double seconds = 0;
  if (profile.bulk) {
    const auto report = sky::core::LoadCoordinator::run_sim(
        *repo.env, *repo.server, files, repo.schema, options);
    if (!report.is_ok()) std::abort();
    seconds = normalized_seconds(report->makespan);
  } else {
    // Non-bulk workers: N sim processes over the file list, with the
    // profile's assignment policy.
    const Nanos start = repo.env->now();
    std::mutex queue_mu;
    size_t cursor = 0;
    for (int w = 0; w < profile.parallel_degree; ++w) {
      repo.env->spawn("nonbulk-" + std::to_string(w), [&, w] {
        sky::client::SimSession session(*repo.server);
        sky::core::NonBulkLoaderOptions nb_options;
        nb_options.commit = profile.commit;
        sky::core::NonBulkLoader loader(session, repo.schema, nb_options);
        auto load_one = [&](size_t index) {
          const auto report =
              loader.load_text(files[index].name, files[index].text);
          if (!report.is_ok()) std::abort();
        };
        if (profile.dynamic_assignment) {
          while (true) {
            size_t mine;
            {
              const std::scoped_lock lock(queue_mu);
              if (cursor >= files.size()) return;
              mine = cursor++;
            }
            load_one(mine);
          }
        } else {
          for (size_t i = static_cast<size_t>(w); i < files.size();
               i += static_cast<size_t>(profile.parallel_degree)) {
            load_one(i);
          }
        }
      });
    }
    repo.env->run();
    seconds = normalized_seconds(repo.env->now() - start);
  }
  // Linear extrapolation to 40 GB (Fig. 9: loading speed is size-invariant).
  return seconds * (kTargetGb * 1000.0 / kTotalMb) / 3600.0;
}

void bench_headline(benchmark::State& state) {
  const bool production = state.range(0) == 1;
  for (auto _ : state) {
    const sky::core::TuningProfile profile =
        production ? sky::core::TuningProfile::production()
                   : sky::core::TuningProfile::untuned_2004();
    const double hours = run_profile(profile);
    state.SetIterationTime(hours * 3600.0);
    g_figure.add(production ? "production" : "untuned",
                 production ? 1.0 : 0.0, hours);
    state.counters["hours_40gb"] = hours;
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  for (const int64_t production : {0, 1}) {
    benchmark::RegisterBenchmark("headline/profile", bench_headline)
        ->Arg(production)
        ->Iterations(1)
        ->UseManualTime()
        ->Unit(benchmark::kSecond);
  }
  benchmark::RunSpecifiedBenchmarks();
  g_figure.print();

  const double before = g_figure.value("untuned", 0.0);
  const double after = g_figure.value("production", 1.0);
  std::printf("\n40 GB extrapolated: untuned-2004 %.1f h -> production %.1f h "
              "(%.1fx faster)\n",
              before, after, before / after);
  std::printf("paper: 'from more than 20 hours to less than 3 hours'\n");
  std::printf("note: our cost model anchors to the paper's Fig. 4/5 bulk\n"
              "rate (~1.9 s per MB single-loader), which itself implies\n"
              "~3.9 h at 5 loaders; the '<3 hours' abstract claim needs the\n"
              "Fig. 7 peak rate. The before/after contrast is the result.\n");
  shape_check(before > 20.0, "the untuned configuration needs >20 hours");
  shape_check(after < 6.0,
              "the production configuration lands in the few-hours range");
  shape_check(before / after > 6.0,
              "the combined tuning wins roughly an order of magnitude");
  return 0;
}
