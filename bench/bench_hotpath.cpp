// Columnar ingest hot path: rows/sec of the batch pipeline (vectorized
// parse → arena column batches → one-latch extent appends → sorted-run
// index builds) against the row-at-a-time oracle, on the same catalog text
// at parallel degree 1.
//
// Two measurements per path:
//   * simulated rows/sec — the repository's canonical metric: the real
//     engine runs under the SimServer and its mechanical work (index
//     descents, redo bytes, FK probes, latch acquisitions) is priced by the
//     CostModel, exactly like the figure benches. Deterministic, so the CI
//     guard gates on it.
//   * cpu rows/sec — raw wall-clock of the same load through DirectSession
//     (no modeled waits), isolating the pipelines' real CPU cost.
//
// Also prints a per-stage cost breakdown of the columnar pipeline's
// primitives (parse / buffer / append / index / wal), each stage driven in
// isolation over the same parsed blocks, so regressions name the layer.
//
// Emits BENCH_hotpath.json. `--smoke` runs a smaller input and exits
// non-zero if the columnar path falls under 2x the row path (simulated) —
// the CI guard. Full mode shape-checks the ISSUE target of >=5x.
#include "bench_util.h"

#include <chrono>
#include <cstring>
#include <fstream>

#include "core/array_set.h"
#include "index/bptree.h"
#include "storage/sharded_heap.h"
#include "storage/wal.h"

namespace {

using namespace skybench;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

sky::core::CatalogFile make_hotpath_file(int64_t bytes) {
  sky::catalog::FileSpec spec;
  spec.name = "hotpath.cat";
  spec.seed = 6100;
  spec.unit_id = 610;
  spec.target_bytes = bytes;
  return sky::core::CatalogFile{
      spec.name, sky::catalog::CatalogGenerator::generate(spec).text};
}

struct E2eResult {
  double seconds = 0;
  int64_t rows_loaded = 0;
  double rows_per_sec = 0;
};

sky::core::BulkLoaderOptions path_options(bool columnar) {
  sky::core::TuningProfile profile = sky::core::TuningProfile::production();
  profile.columnar_ingest = columnar;
  sky::core::BulkLoaderOptions options = profile.bulk_options();
  options.write_audit_row = false;
  return options;
}

// One load through BulkLoader on a fresh sim repository, virtual time.
E2eResult run_simulated(const sky::core::CatalogFile& file, bool columnar) {
  SimRepository repo = SimRepository::create();
  const sky::core::FileLoadReport report =
      run_bulk(repo, file, path_options(columnar));
  if (!repo.engine->verify_integrity().is_ok()) std::abort();
  E2eResult result;
  result.seconds = sky::to_seconds(report.elapsed);
  result.rows_loaded = report.rows_loaded;
  result.rows_per_sec =
      result.seconds > 0
          ? static_cast<double>(result.rows_loaded) / result.seconds
          : 0;
  return result;
}

// One full load through BulkLoader on a fresh engine, real time.
E2eResult run_end_to_end(const sky::core::CatalogFile& file, bool columnar) {
  const sky::db::Schema schema = sky::catalog::make_pq_schema();
  const sky::core::TuningProfile profile =
      sky::core::TuningProfile::production();
  sky::db::Engine engine(schema, profile.engine_options());
  if (!profile.apply_index_policy(engine).is_ok()) std::abort();
  {
    sky::client::DirectSession session(engine);
    sky::core::BulkLoaderOptions options;
    options.write_audit_row = false;
    sky::core::BulkLoader loader(session, schema, options);
    const auto report = loader.load_text(
        "reference", sky::catalog::CatalogGenerator::reference_file().text);
    if (!report.is_ok() || report->total_skipped() != 0) std::abort();
  }

  sky::client::DirectSession session(engine);
  sky::core::BulkLoader loader(session, schema, path_options(columnar));
  const auto start = std::chrono::steady_clock::now();
  const auto report = loader.load_text(file.name, file.text);
  const double elapsed = seconds_since(start);
  if (!report.is_ok()) std::abort();
  if (!engine.verify_integrity().is_ok()) std::abort();

  E2eResult result;
  result.seconds = elapsed;
  result.rows_loaded = report->rows_loaded;
  result.rows_per_sec =
      elapsed > 0 ? static_cast<double>(result.rows_loaded) / elapsed : 0;
  return result;
}

// Per-stage breakdown: drive each pipeline layer in isolation over the same
// parsed blocks. The stages mirror what Engine::insert_column_batch does
// under its latches, so their relative weight names the layer a regression
// lives in; absolute sums differ from end-to-end time by the engine's
// validation and latching, which have no isolated harness here.
int64_t run_stage_breakdown(const sky::core::CatalogFile& file,
                            StageTimer& timer) {
  const sky::db::Schema schema = sky::catalog::make_pq_schema();
  sky::catalog::CatalogParser parser(schema);

  // parse: vectorized block parse of the whole text.
  std::vector<std::pair<uint32_t, sky::db::ColumnBatch>> parsed;
  sky::catalog::ParsedBlock block;
  size_t pos = 0;
  int64_t rows = 0;
  while (pos <= file.text.size()) {
    timer.start("parse");
    parser.parse_block(file.text, pos, 512, block);
    timer.stop("parse");
    for (size_t slot = 0; slot < block.batches.size(); ++slot) {
      if (block.batches[slot].empty()) continue;
      rows += static_cast<int64_t>(block.batches[slot].size());
      parsed.emplace_back(block.table_ids[slot], block.batches[slot]);
    }
  }

  // buffer: merge the blocks into the array set's per-table column buffers.
  sky::core::ArraySet::Config array_config;
  array_config.default_rows = rows + 1;  // never triggers a flush
  sky::core::ArraySet array_set(schema, array_config);
  for (const auto& [table_id, batch] : parsed) {
    timer.start("buffer");
    array_set.append_batch(table_id, batch);
    timer.stop("buffer");
  }

  // append / index / wal: per buffered table, encode the rows and drive the
  // storage primitives the engine's publish block uses.
  sky::storage::ShardedHeap heap(1);
  sky::storage::WriteAheadLog wal;
  std::vector<sky::index::BPlusTree> trees(
      static_cast<size_t>(schema.table_count()));
  array_set.for_each_batch_in_topo_order([&](uint32_t table_id,
                                             const sky::db::ColumnBatch&
                                                 batch) {
    const sky::db::TableDef& def = schema.table(table_id);
    std::vector<size_t> pk_columns;
    for (const std::string& pk_name : def.primary_key) {
      for (size_t c = 0; c < def.columns.size(); ++c) {
        if (def.columns[c].name == pk_name) pk_columns.push_back(c);
      }
    }

    timer.start("append");
    std::vector<std::string> encoded(batch.size());
    for (size_t r = 0; r < batch.size(); ++r) {
      batch.encode_row_to(r, encoded[r]);
    }
    timer.stop("append");

    // wal before the heap consumes the encoded rows — the engine's publish
    // order, and it lets the heap take them by move.
    timer.start("wal");
    std::string payload;
    for (const std::string& row_bytes : encoded) {
      const auto n = static_cast<uint32_t>(row_bytes.size());
      const char header[4] = {
          static_cast<char>(n >> 24), static_cast<char>(n >> 16),
          static_cast<char>(n >> 8), static_cast<char>(n)};
      payload.append(header, 4);
      payload.append(row_bytes);
    }
    wal.append(sky::storage::WalRecordType::kInsertBatch, 1, table_id,
               std::move(payload));
    timer.stop("wal");

    timer.start("append");
    heap.append_batch(0, std::move(encoded));
    timer.stop("append");

    timer.start("index");
    std::vector<std::pair<std::string, uint64_t>> run;
    run.reserve(batch.size());
    sky::index::KeyEncoder encoder;
    for (size_t r = 0; r < batch.size(); ++r) {
      for (const size_t col : pk_columns) {
        batch.append_cell_to_key(encoder, r, col);
      }
      run.emplace_back(encoder.take(), static_cast<uint64_t>(r));
      encoder.clear();
    }
    std::sort(run.begin(), run.end());
    if (!trees[table_id].insert_sorted_run(std::move(run)).is_ok()) {
      std::abort();  // generator output has unique, sortable keys
    }
    timer.stop("index");
  });
  timer.start("wal");
  wal.flush();
  timer.stop("wal");
  return rows;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const int64_t bytes = smoke ? 1 * 1024 * 1024 : 8 * 1024 * 1024;
  const sky::core::CatalogFile file = make_hotpath_file(bytes);

  // Simulated (deterministic — one run each suffices).
  const E2eResult sim_row = run_simulated(file, /*columnar=*/false);
  const E2eResult sim_col = run_simulated(file, /*columnar=*/true);

  // Real CPU: two runs per path, best taken, to damp scheduler noise on
  // shared CI hosts; the first run also warms the generator text in cache.
  E2eResult cpu_row = run_end_to_end(file, /*columnar=*/false);
  const E2eResult cpu_row2 = run_end_to_end(file, /*columnar=*/false);
  if (cpu_row2.rows_per_sec > cpu_row.rows_per_sec) cpu_row = cpu_row2;
  E2eResult cpu_col = run_end_to_end(file, /*columnar=*/true);
  const E2eResult cpu_col2 = run_end_to_end(file, /*columnar=*/true);
  if (cpu_col2.rows_per_sec > cpu_col.rows_per_sec) cpu_col = cpu_col2;

  if (sim_col.rows_loaded != sim_row.rows_loaded ||
      cpu_col.rows_loaded != sim_row.rows_loaded ||
      cpu_row.rows_loaded != sim_row.rows_loaded) {
    std::printf("HOTPATH-GUARD FAIL: paths disagree on rows loaded "
                "(sim row %lld, sim columnar %lld, cpu row %lld, cpu "
                "columnar %lld)\n",
                static_cast<long long>(sim_row.rows_loaded),
                static_cast<long long>(sim_col.rows_loaded),
                static_cast<long long>(cpu_row.rows_loaded),
                static_cast<long long>(cpu_col.rows_loaded));
    return 1;
  }

  StageTimer timer;
  const int64_t stage_rows = run_stage_breakdown(file, timer);

  const double sim_speedup =
      sim_row.rows_per_sec > 0 ? sim_col.rows_per_sec / sim_row.rows_per_sec
                               : 0;
  const double cpu_speedup =
      cpu_row.rows_per_sec > 0 ? cpu_col.rows_per_sec / cpu_row.rows_per_sec
                               : 0;
  std::printf("\n=== Columnar ingest hot path (%s, %lld rows) ===\n",
              smoke ? "smoke" : "full",
              static_cast<long long>(sim_row.rows_loaded));
  std::printf("%16s  %12s  %12s\n", "path", "seconds", "rows/sec");
  std::printf("%16s  %12.3f  %12.0f\n", "row (sim)", sim_row.seconds,
              sim_row.rows_per_sec);
  std::printf("%16s  %12.3f  %12.0f\n", "columnar (sim)", sim_col.seconds,
              sim_col.rows_per_sec);
  std::printf("%16s  %12.3f  %12.0f\n", "row (cpu)", cpu_row.seconds,
              cpu_row.rows_per_sec);
  std::printf("%16s  %12.3f  %12.0f\n", "columnar (cpu)", cpu_col.seconds,
              cpu_col.rows_per_sec);
  std::printf("speedup: %.2fx simulated, %.2fx cpu\n", sim_speedup,
              cpu_speedup);

  std::printf("\nper-stage breakdown (columnar primitives, %lld rows):\n",
              static_cast<long long>(stage_rows));
  for (const auto& [stage, ns] : timer.totals()) {
    std::printf("%16s  %10.3f s  %8.0f ns/row\n", stage.c_str(),
                static_cast<double>(ns) / 1e9,
                stage_rows > 0
                    ? static_cast<double>(ns) / static_cast<double>(stage_rows)
                    : 0);
  }

  {
    std::ofstream json("BENCH_hotpath.json");
    char buffer[768];
    std::snprintf(buffer, sizeof(buffer),
                  "{\n  \"mode\": \"%s\",\n  \"bytes\": %lld,\n"
                  "  \"rows\": %lld,\n"
                  "  \"sim_row_rows_per_sec\": %.1f,\n"
                  "  \"sim_columnar_rows_per_sec\": %.1f,\n"
                  "  \"sim_speedup\": %.3f,\n"
                  "  \"cpu_row_rows_per_sec\": %.1f,\n"
                  "  \"cpu_columnar_rows_per_sec\": %.1f,\n"
                  "  \"cpu_speedup\": %.3f,\n  \"stages\": {",
                  smoke ? "smoke" : "full", static_cast<long long>(bytes),
                  static_cast<long long>(sim_row.rows_loaded),
                  sim_row.rows_per_sec, sim_col.rows_per_sec, sim_speedup,
                  cpu_row.rows_per_sec, cpu_col.rows_per_sec, cpu_speedup);
    json << buffer;
    const auto& totals = timer.totals();
    for (size_t i = 0; i < totals.size(); ++i) {
      std::snprintf(buffer, sizeof(buffer), "%s\n    \"%s_s\": %.6f",
                    i > 0 ? "," : "", totals[i].first.c_str(),
                    static_cast<double>(totals[i].second) / 1e9);
      json << buffer;
    }
    json << "\n  }\n}\n";
  }
  std::printf("\nwrote BENCH_hotpath.json\n");

  if (smoke) {
    const bool ok = sim_speedup >= 2.0;
    std::printf("HOTPATH-GUARD %s: columnar smoke speedup %.2fx simulated "
                "(need >=2x)\n",
                ok ? "PASS" : "FAIL", sim_speedup);
    return ok ? 0 : 1;
  }
  shape_check(sim_speedup >= 5.0,
              "columnar ingest >=5x single-loader rows/sec over the row "
              "path");
  shape_check(cpu_speedup >= 1.5,
              "columnar ingest beats the row path on raw CPU as well");
  return 0;
}
