// Zone cross-match parallel scaling: a >=1M x 1M synthetic cross-match
// through db::spatial::xmatch_arrays, with two measurements:
//
//   * simulated speedup — the canonical deterministic metric. One serial
//     run yields the per-zone work funnel (rows scanned through ra windows,
//     exact-distance tests, matched pairs); each zone is priced by the
//     CostModel's spatial rates (per_zone_scan_row / per_xmatch_candidate /
//     per_xmatch_pair) and zones are placed on W workers by least-loaded
//     (LPT) assignment, exactly how LoadCoordinator spreads files. The
//     W-worker makespan is the loaded worker's sum; speedup(W) =
//     makespan(1) / makespan(W). Deterministic, so CI gates on it.
//   * cpu speedup — wall-clock of the same match fanned out through
//     core::LoadCoordinator::task_runner() at 1 and 6 workers, plus a
//     byte-identical-pairs determinism check against the serial run.
//     Reported, not gated (CI machines share cores).
//
// Emits BENCH_xmatch.json. `--smoke` runs a reduced catalog and exits
// non-zero if the simulated 6-worker speedup falls under 3x — the CI
// guard, mirroring the full-mode shape check on the ISSUE target.
#include "bench_util.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <fstream>

#include "client/cost_model.h"
#include "common/rng.h"
#include "db/spatial.h"

namespace {

using namespace skybench;
namespace spatial = sky::db::spatial;

constexpr double kPi = 3.14159265358979323846;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// Uniform sky plus seeded counterparts: every 8th B row sits within the
// match radius of an A row, so the pair count is a real signal.
void make_catalogs(size_t n, double radius_deg, std::vector<double>* a_ra,
                   std::vector<double>* a_dec, std::vector<double>* b_ra,
                   std::vector<double>* b_dec) {
  sky::Rng rng(0x5EAC47);
  a_ra->reserve(n);
  a_dec->reserve(n);
  b_ra->reserve(n);
  b_dec->reserve(n);
  for (size_t i = 0; i < n; ++i) {
    a_ra->push_back(rng.uniform_range(0.0, 360.0));
    a_dec->push_back(std::asin(rng.uniform_range(-1.0, 1.0)) * 180.0 / kPi);
    if (i % 8 == 0) {
      const double offset = rng.uniform_range(-0.6, 0.6) * radius_deg;
      b_ra->push_back((*a_ra)[i]);
      b_dec->push_back(
          std::clamp((*a_dec)[i] + offset, -89.99, 89.99));
    } else {
      b_ra->push_back(rng.uniform_range(0.0, 360.0));
      b_dec->push_back(std::asin(rng.uniform_range(-1.0, 1.0)) * 180.0 /
                       kPi);
    }
  }
}

// Price one zone's funnel through the CostModel's spatial rates.
sky::Nanos zone_cost(const sky::client::CostModel& model,
                     const spatial::ZoneCost& zone) {
  return zone.scanned * model.per_zone_scan_row +
         zone.candidates * model.per_xmatch_candidate +
         zone.pairs * model.per_xmatch_pair;
}

// Least-loaded (LPT) placement of the priced zones on `workers` workers;
// returns the makespan (the loaded worker's total).
sky::Nanos makespan(const std::vector<sky::Nanos>& costs, int workers) {
  std::vector<sky::Nanos> sorted = costs;
  std::sort(sorted.begin(), sorted.end(), std::greater<>());
  std::vector<sky::Nanos> load(static_cast<size_t>(workers), 0);
  for (const sky::Nanos cost : sorted) {
    *std::min_element(load.begin(), load.end()) += cost;
  }
  return *std::max_element(load.begin(), load.end());
}

struct TimedRun {
  double seconds = 0;
  spatial::XmatchResult result;
};

TimedRun run_xmatch(const std::vector<double>& a_ra,
                    const std::vector<double>& a_dec,
                    const std::vector<double>& b_ra,
                    const std::vector<double>& b_dec,
                    const spatial::XmatchOptions& options) {
  TimedRun run;
  const auto start = std::chrono::steady_clock::now();
  run.result = spatial::xmatch_arrays(a_ra, a_dec, b_ra, b_dec, options);
  run.seconds = seconds_since(start);
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  const size_t rows = smoke ? 120'000 : 1'000'000;
  const double radius_deg = 1.5 / 3600.0;  // 1.5 arcsec

  std::vector<double> a_ra, a_dec, b_ra, b_dec;
  make_catalogs(rows, radius_deg, &a_ra, &a_dec, &b_ra, &b_dec);

  spatial::XmatchOptions options;
  options.radius_deg = radius_deg;

  // Serial reference: the per-zone funnel for the simulated model and the
  // determinism baseline for the threaded runs.
  const TimedRun serial = run_xmatch(a_ra, a_dec, b_ra, b_dec, options);
  const spatial::XmatchReport& report = serial.result.report;

  const sky::client::CostModel model = sky::client::paper_calibrated_costs();
  std::vector<sky::Nanos> costs;
  costs.reserve(report.per_zone.size());
  sky::Nanos total_cost = 0;
  for (const spatial::ZoneCost& zone : report.per_zone) {
    costs.push_back(zone_cost(model, zone));
    total_cost += costs.back();
  }

  const std::vector<int> worker_counts = {1, 2, 4, 6, 8, 12};
  const sky::Nanos serial_makespan = makespan(costs, 1);
  FigureTable table("Zone xmatch parallel scaling",
                    "workers", "simulated speedup over 1 worker");
  std::vector<double> speedups;
  for (const int w : worker_counts) {
    const sky::Nanos span = makespan(costs, w);
    const double speedup =
        span > 0 ? static_cast<double>(serial_makespan) /
                       static_cast<double>(span)
                 : 0;
    speedups.push_back(speedup);
    table.add("sim", w, speedup);
  }
  const double sim_speedup_6 = speedups[3];

  // Real threads through the coordinator's task runner: 1 and 6 workers,
  // with the pair list checked byte-identical against the serial run.
  spatial::XmatchOptions threaded = options;
  threaded.fan_out = sky::core::LoadCoordinator::task_runner();
  threaded.policy.xmatch_workers = 1;
  const TimedRun one = run_xmatch(a_ra, a_dec, b_ra, b_dec, threaded);
  threaded.policy.xmatch_workers = 6;
  const TimedRun six = run_xmatch(a_ra, a_dec, b_ra, b_dec, threaded);
  bool deterministic = one.result.pairs.size() == serial.result.pairs.size() &&
                       six.result.pairs.size() == serial.result.pairs.size();
  if (deterministic) {
    for (size_t i = 0; i < serial.result.pairs.size(); ++i) {
      const spatial::MatchPair& s = serial.result.pairs[i];
      if (one.result.pairs[i].a != s.a || one.result.pairs[i].b != s.b ||
          six.result.pairs[i].a != s.a || six.result.pairs[i].b != s.b) {
        deterministic = false;
        break;
      }
    }
  }
  const double cpu_speedup =
      six.seconds > 0 ? one.seconds / six.seconds : 0;

  std::printf("\n=== Zone cross-match (%s, %lld x %lld rows, r=%.2f\") ===\n",
              smoke ? "smoke" : "full", static_cast<long long>(rows),
              static_cast<long long>(rows), radius_deg * 3600.0);
  std::printf("zones: %lld occupied of %lld (height %.2f deg), pairs: %lld\n",
              static_cast<long long>(report.zones_occupied),
              static_cast<long long>(report.zones_total),
              report.zone_height_deg,
              static_cast<long long>(report.pairs));
  std::printf("funnel: %lld scanned -> %lld tested -> %lld matched\n",
              static_cast<long long>(report.costs.zone_scan_rows),
              static_cast<long long>(report.costs.xmatch_candidates),
              static_cast<long long>(report.costs.xmatch_pairs));
  std::printf("simulated zone work: %.3f s serial\n",
              static_cast<double>(total_cost) / 1e9);
  table.print();
  std::printf("\ncpu wall-clock: serial %.3f s, 1 worker %.3f s, "
              "6 workers %.3f s (%.2fx), deterministic: %s\n",
              serial.seconds, one.seconds, six.seconds, cpu_speedup,
              deterministic ? "yes" : "NO");

  {
    std::ofstream json("BENCH_xmatch.json");
    char buffer[768];
    std::snprintf(buffer, sizeof(buffer),
                  "{\n  \"mode\": \"%s\",\n  \"rows\": %lld,\n"
                  "  \"radius_arcsec\": %.3f,\n"
                  "  \"zones_occupied\": %lld,\n  \"pairs\": %lld,\n"
                  "  \"zone_scan_rows\": %lld,\n"
                  "  \"xmatch_candidates\": %lld,\n"
                  "  \"cpu_serial_s\": %.3f,\n  \"cpu_1w_s\": %.3f,\n"
                  "  \"cpu_6w_s\": %.3f,\n  \"cpu_speedup_6w\": %.3f,\n"
                  "  \"deterministic\": %s,\n  \"sim_speedup\": {",
                  smoke ? "smoke" : "full", static_cast<long long>(rows),
                  radius_deg * 3600.0,
                  static_cast<long long>(report.zones_occupied),
                  static_cast<long long>(report.pairs),
                  static_cast<long long>(report.costs.zone_scan_rows),
                  static_cast<long long>(report.costs.xmatch_candidates),
                  serial.seconds, one.seconds, six.seconds, cpu_speedup,
                  deterministic ? "true" : "false");
    json << buffer;
    for (size_t i = 0; i < worker_counts.size(); ++i) {
      std::snprintf(buffer, sizeof(buffer), "%s\n    \"%d\": %.3f",
                    i > 0 ? "," : "", worker_counts[i], speedups[i]);
      json << buffer;
    }
    json << "\n  }\n}\n";
  }
  std::printf("\nwrote BENCH_xmatch.json\n");

  if (!deterministic) {
    std::printf("XMATCH-GUARD FAIL: parallel pair list diverged from the "
                "serial run\n");
    return 1;
  }
  if (smoke) {
    const bool ok = sim_speedup_6 >= 3.0;
    std::printf("XMATCH-GUARD %s: simulated 6-worker speedup %.2fx "
                "(need >=3x)\n",
                ok ? "PASS" : "FAIL", sim_speedup_6);
    return ok ? 0 : 1;
  }
  shape_check(sim_speedup_6 >= 3.0,
              "zone xmatch >=3x simulated speedup at 6 workers on the "
              "1M x 1M match");
  shape_check(speedups.back() > sim_speedup_6,
              "scaling continues past 6 workers (zones outnumber workers)");
  return 0;
}
