// Section 4.2 analysis: database calls and runtime vs input error rate.
//
// Best case (error-free): N/batch-size database calls. Worst case (every
// row failing, e.g. reloading duplicate data): the loader degenerates to
// singleton inserts — N calls — because each error breaks the batch, skips
// one row, and repacks. This bench sweeps the error rate between those
// extremes and also measures the literal worst case (a full re-load).
#include "bench_util.h"

namespace {

using namespace skybench;

FigureTable g_calls("Error recovery: database calls per 1000 rows",
                    "injected error rate", "calls per 1000 input rows");
FigureTable g_time("Error recovery: runtime vs error rate (100 MB)",
                   "injected error rate", "runtime (simulated seconds)");

const std::vector<double> kErrorRates = {0.0, 0.01, 0.05, 0.10, 0.25, 0.50};

void bench_error_rate(benchmark::State& state) {
  const double rate = static_cast<double>(state.range(0)) / 1000.0;
  for (auto _ : state) {
    SimRepository repo = SimRepository::create();
    const auto file = make_file(100, /*seed=*/1000, /*unit_id=*/100, rate);
    sky::core::BulkLoaderOptions options;
    options.write_audit_row = false;
    const auto report = run_bulk(repo, file, options);
    const double seconds = normalized_seconds(report.elapsed);
    state.SetIterationTime(seconds);
    const double rows =
        static_cast<double>(report.rows_parsed + report.parse_errors);
    g_calls.add("calls", rate, static_cast<double>(report.db_calls) / rows * 1000.0);
    g_time.add("runtime", rate, seconds);
    state.counters["skipped"] = static_cast<double>(report.total_skipped());
  }
}

double g_reload_calls_per_1000 = 0;

void bench_full_reload(benchmark::State& state) {
  for (auto _ : state) {
    SimRepository repo = SimRepository::create();
    const auto file = make_file(20, /*seed=*/1001, /*unit_id=*/101);
    sky::core::BulkLoaderOptions options;
    options.write_audit_row = false;
    // First pass loads everything...
    sky::core::FileLoadReport first = run_bulk(repo, file, options);
    if (first.total_skipped() != 0) std::abort();
    // ...second pass: every row is a duplicate primary key.
    const sky::core::FileLoadReport second = run_bulk(repo, file, options);
    state.SetIterationTime(normalized_seconds(second.elapsed));
    g_reload_calls_per_1000 = static_cast<double>(second.db_calls) /
                              static_cast<double>(second.rows_parsed) * 1000.0;
    state.counters["calls_per_row"] =
        static_cast<double>(second.db_calls) /
        static_cast<double>(second.rows_parsed);
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  for (const double rate : kErrorRates) {
    benchmark::RegisterBenchmark("error_recovery/rate", bench_error_rate)
        ->Arg(static_cast<int64_t>(rate * 1000))
        ->Iterations(1)
        ->UseManualTime()
        ->Unit(benchmark::kSecond);
  }
  benchmark::RegisterBenchmark("error_recovery/full_reload", bench_full_reload)
      ->Iterations(1)
      ->UseManualTime()
      ->Unit(benchmark::kSecond);
  benchmark::RunSpecifiedBenchmarks();
  g_calls.print();
  g_time.print();

  const double clean_calls = g_calls.value("calls", 0.0);
  std::printf("\nerror-free: %.1f calls/1000 rows (ideal 1000/40 = 25)\n",
              clean_calls);
  std::printf("full re-load (all duplicates): %.1f calls/1000 rows "
              "(worst case ~1000)\n",
              g_reload_calls_per_1000);
  shape_check(clean_calls < 30.0,
              "best case approaches N/batch-size database calls");
  shape_check(g_reload_calls_per_1000 > 950.0,
              "worst case degenerates to ~one call per row");
  shape_check(g_calls.value("calls", 0.5) > g_calls.value("calls", 0.05) &&
                  g_calls.value("calls", 0.05) > clean_calls,
              "call count grows monotonically with error rate");
  shape_check(g_time.value("runtime", 0.25) > g_time.value("runtime", 0.0),
              "errors slow loading (extra round trips per skipped row)");
  return 0;
}
