// Interaction study: batch-size x array-size grid (100 MB data set).
//
// The paper tunes batch-size (Fig. 5) and array-size (Fig. 6) with
// independent 1-D sweeps, implicitly assuming the knobs don't interact.
// This grid checks that assumption on our substrate: the best (batch,
// array) cell should coincide with the two 1-D optima, and each row/column
// should keep the same interior-optimum shape.
#include "bench_util.h"

namespace {

using namespace skybench;

const std::vector<int64_t> kBatches = {10, 40, 70};
const std::vector<int64_t> kArrays = {250, 1000, 1750};

std::map<std::pair<int64_t, int64_t>, double> g_grid;

void bench_cell(benchmark::State& state) {
  const int64_t batch = state.range(0);
  const int64_t array_size = state.range(1);
  for (auto _ : state) {
    SimRepository repo = SimRepository::create();
    const auto file = make_file(100, /*seed=*/2300, /*unit_id=*/230);
    sky::core::BulkLoaderOptions options;
    options.batch_size = batch;
    options.array_config.default_rows = array_size;
    options.write_audit_row = false;
    const auto report = run_bulk(repo, file, options);
    const double seconds = normalized_seconds(report.elapsed);
    state.SetIterationTime(seconds);
    g_grid[{batch, array_size}] = seconds;
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  for (const int64_t batch : kBatches) {
    for (const int64_t array_size : kArrays) {
      benchmark::RegisterBenchmark("grid/batch_array", bench_cell)
          ->Args({batch, array_size})
          ->Iterations(1)
          ->UseManualTime()
          ->Unit(benchmark::kSecond);
    }
  }
  benchmark::RunSpecifiedBenchmarks();

  std::printf("\n=== Batch x Array grid (100 MB; simulated seconds) ===\n");
  std::printf("%12s", "batch\\array");
  for (const int64_t array_size : kArrays) {
    std::printf("  %10lld", static_cast<long long>(array_size));
  }
  std::printf("\n");
  std::pair<int64_t, int64_t> best_cell{0, 0};
  double best = 1e18;
  for (const int64_t batch : kBatches) {
    std::printf("%12lld", static_cast<long long>(batch));
    for (const int64_t array_size : kArrays) {
      const double seconds = g_grid[{batch, array_size}];
      std::printf("  %10.1f", seconds);
      if (seconds < best) {
        best = seconds;
        best_cell = {batch, array_size};
      }
    }
    std::printf("\n");
  }
  std::printf("\nbest cell: batch %lld, array %lld (%.1f s)\n",
              static_cast<long long>(best_cell.first),
              static_cast<long long>(best_cell.second), best);
  shape_check(best_cell.first == 40 && best_cell.second == 1000,
              "the grid optimum coincides with the paper's two 1-D optima "
              "(batch ~40, array ~1000): the knobs tune independently");
  // Interior-optimum shape holds along both axes at the optimum row/column.
  shape_check(g_grid[{10, 1000}] > best && g_grid[{70, 1000}] > best,
              "batch size keeps its interior optimum at the best array size");
  shape_check(g_grid[{40, 250}] > best && g_grid[{40, 1750}] > best,
              "array size keeps its interior optimum at the best batch size");
  return 0;
}
