file(REMOVE_RECURSE
  "CMakeFiles/skyloader_client.dir/cost_model.cpp.o"
  "CMakeFiles/skyloader_client.dir/cost_model.cpp.o.d"
  "CMakeFiles/skyloader_client.dir/session.cpp.o"
  "CMakeFiles/skyloader_client.dir/session.cpp.o.d"
  "CMakeFiles/skyloader_client.dir/sim_server.cpp.o"
  "CMakeFiles/skyloader_client.dir/sim_server.cpp.o.d"
  "CMakeFiles/skyloader_client.dir/sim_session.cpp.o"
  "CMakeFiles/skyloader_client.dir/sim_session.cpp.o.d"
  "libskyloader_client.a"
  "libskyloader_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skyloader_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
