
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/client/cost_model.cpp" "src/client/CMakeFiles/skyloader_client.dir/cost_model.cpp.o" "gcc" "src/client/CMakeFiles/skyloader_client.dir/cost_model.cpp.o.d"
  "/root/repo/src/client/session.cpp" "src/client/CMakeFiles/skyloader_client.dir/session.cpp.o" "gcc" "src/client/CMakeFiles/skyloader_client.dir/session.cpp.o.d"
  "/root/repo/src/client/sim_server.cpp" "src/client/CMakeFiles/skyloader_client.dir/sim_server.cpp.o" "gcc" "src/client/CMakeFiles/skyloader_client.dir/sim_server.cpp.o.d"
  "/root/repo/src/client/sim_session.cpp" "src/client/CMakeFiles/skyloader_client.dir/sim_session.cpp.o" "gcc" "src/client/CMakeFiles/skyloader_client.dir/sim_session.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/skyloader_common.dir/DependInfo.cmake"
  "/root/repo/build/src/db/CMakeFiles/skyloader_db.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/skyloader_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/skyloader_index.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/skyloader_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
