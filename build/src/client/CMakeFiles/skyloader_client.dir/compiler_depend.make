# Empty compiler generated dependencies file for skyloader_client.
# This may be replaced when dependencies are built.
