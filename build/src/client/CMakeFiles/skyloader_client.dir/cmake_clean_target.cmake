file(REMOVE_RECURSE
  "libskyloader_client.a"
)
