file(REMOVE_RECURSE
  "CMakeFiles/skyloader_catalog.dir/generator.cpp.o"
  "CMakeFiles/skyloader_catalog.dir/generator.cpp.o.d"
  "CMakeFiles/skyloader_catalog.dir/parser.cpp.o"
  "CMakeFiles/skyloader_catalog.dir/parser.cpp.o.d"
  "CMakeFiles/skyloader_catalog.dir/pq_schema.cpp.o"
  "CMakeFiles/skyloader_catalog.dir/pq_schema.cpp.o.d"
  "libskyloader_catalog.a"
  "libskyloader_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skyloader_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
