# Empty compiler generated dependencies file for skyloader_catalog.
# This may be replaced when dependencies are built.
