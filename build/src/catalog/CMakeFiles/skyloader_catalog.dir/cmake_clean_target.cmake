file(REMOVE_RECURSE
  "libskyloader_catalog.a"
)
