# Empty compiler generated dependencies file for skyloader_storage.
# This may be replaced when dependencies are built.
