
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/buffer_cache.cpp" "src/storage/CMakeFiles/skyloader_storage.dir/buffer_cache.cpp.o" "gcc" "src/storage/CMakeFiles/skyloader_storage.dir/buffer_cache.cpp.o.d"
  "/root/repo/src/storage/heap_file.cpp" "src/storage/CMakeFiles/skyloader_storage.dir/heap_file.cpp.o" "gcc" "src/storage/CMakeFiles/skyloader_storage.dir/heap_file.cpp.o.d"
  "/root/repo/src/storage/wal.cpp" "src/storage/CMakeFiles/skyloader_storage.dir/wal.cpp.o" "gcc" "src/storage/CMakeFiles/skyloader_storage.dir/wal.cpp.o.d"
  "/root/repo/src/storage/wal_file.cpp" "src/storage/CMakeFiles/skyloader_storage.dir/wal_file.cpp.o" "gcc" "src/storage/CMakeFiles/skyloader_storage.dir/wal_file.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/skyloader_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
