file(REMOVE_RECURSE
  "libskyloader_storage.a"
)
