file(REMOVE_RECURSE
  "CMakeFiles/skyloader_storage.dir/buffer_cache.cpp.o"
  "CMakeFiles/skyloader_storage.dir/buffer_cache.cpp.o.d"
  "CMakeFiles/skyloader_storage.dir/heap_file.cpp.o"
  "CMakeFiles/skyloader_storage.dir/heap_file.cpp.o.d"
  "CMakeFiles/skyloader_storage.dir/wal.cpp.o"
  "CMakeFiles/skyloader_storage.dir/wal.cpp.o.d"
  "CMakeFiles/skyloader_storage.dir/wal_file.cpp.o"
  "CMakeFiles/skyloader_storage.dir/wal_file.cpp.o.d"
  "libskyloader_storage.a"
  "libskyloader_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skyloader_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
