file(REMOVE_RECURSE
  "libskyloader_core.a"
)
