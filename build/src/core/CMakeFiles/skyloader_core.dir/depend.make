# Empty dependencies file for skyloader_core.
# This may be replaced when dependencies are built.
