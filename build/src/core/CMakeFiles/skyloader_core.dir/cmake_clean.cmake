file(REMOVE_RECURSE
  "CMakeFiles/skyloader_core.dir/array_set.cpp.o"
  "CMakeFiles/skyloader_core.dir/array_set.cpp.o.d"
  "CMakeFiles/skyloader_core.dir/bulk_loader.cpp.o"
  "CMakeFiles/skyloader_core.dir/bulk_loader.cpp.o.d"
  "CMakeFiles/skyloader_core.dir/coordinator.cpp.o"
  "CMakeFiles/skyloader_core.dir/coordinator.cpp.o.d"
  "CMakeFiles/skyloader_core.dir/load_report.cpp.o"
  "CMakeFiles/skyloader_core.dir/load_report.cpp.o.d"
  "CMakeFiles/skyloader_core.dir/non_bulk_loader.cpp.o"
  "CMakeFiles/skyloader_core.dir/non_bulk_loader.cpp.o.d"
  "CMakeFiles/skyloader_core.dir/sdss_loader.cpp.o"
  "CMakeFiles/skyloader_core.dir/sdss_loader.cpp.o.d"
  "CMakeFiles/skyloader_core.dir/tuning.cpp.o"
  "CMakeFiles/skyloader_core.dir/tuning.cpp.o.d"
  "libskyloader_core.a"
  "libskyloader_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skyloader_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
