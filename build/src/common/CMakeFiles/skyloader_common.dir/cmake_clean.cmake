file(REMOVE_RECURSE
  "CMakeFiles/skyloader_common.dir/config.cpp.o"
  "CMakeFiles/skyloader_common.dir/config.cpp.o.d"
  "CMakeFiles/skyloader_common.dir/csv.cpp.o"
  "CMakeFiles/skyloader_common.dir/csv.cpp.o.d"
  "CMakeFiles/skyloader_common.dir/log.cpp.o"
  "CMakeFiles/skyloader_common.dir/log.cpp.o.d"
  "CMakeFiles/skyloader_common.dir/status.cpp.o"
  "CMakeFiles/skyloader_common.dir/status.cpp.o.d"
  "CMakeFiles/skyloader_common.dir/strings.cpp.o"
  "CMakeFiles/skyloader_common.dir/strings.cpp.o.d"
  "CMakeFiles/skyloader_common.dir/units.cpp.o"
  "CMakeFiles/skyloader_common.dir/units.cpp.o.d"
  "libskyloader_common.a"
  "libskyloader_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skyloader_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
