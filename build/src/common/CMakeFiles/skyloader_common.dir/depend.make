# Empty dependencies file for skyloader_common.
# This may be replaced when dependencies are built.
