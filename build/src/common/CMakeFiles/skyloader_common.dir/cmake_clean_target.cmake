file(REMOVE_RECURSE
  "libskyloader_common.a"
)
