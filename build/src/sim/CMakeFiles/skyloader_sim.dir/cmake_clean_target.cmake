file(REMOVE_RECURSE
  "libskyloader_sim.a"
)
