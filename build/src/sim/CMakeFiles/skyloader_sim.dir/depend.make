# Empty dependencies file for skyloader_sim.
# This may be replaced when dependencies are built.
