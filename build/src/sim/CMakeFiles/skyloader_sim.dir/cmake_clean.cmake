file(REMOVE_RECURSE
  "CMakeFiles/skyloader_sim.dir/environment.cpp.o"
  "CMakeFiles/skyloader_sim.dir/environment.cpp.o.d"
  "libskyloader_sim.a"
  "libskyloader_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skyloader_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
