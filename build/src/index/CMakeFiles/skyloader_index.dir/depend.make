# Empty dependencies file for skyloader_index.
# This may be replaced when dependencies are built.
