file(REMOVE_RECURSE
  "CMakeFiles/skyloader_index.dir/bptree.cpp.o"
  "CMakeFiles/skyloader_index.dir/bptree.cpp.o.d"
  "CMakeFiles/skyloader_index.dir/key_codec.cpp.o"
  "CMakeFiles/skyloader_index.dir/key_codec.cpp.o.d"
  "libskyloader_index.a"
  "libskyloader_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skyloader_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
