file(REMOVE_RECURSE
  "libskyloader_index.a"
)
