# Empty compiler generated dependencies file for skyloader_htm.
# This may be replaced when dependencies are built.
