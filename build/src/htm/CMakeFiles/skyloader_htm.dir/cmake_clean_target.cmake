file(REMOVE_RECURSE
  "libskyloader_htm.a"
)
