file(REMOVE_RECURSE
  "CMakeFiles/skyloader_htm.dir/htm.cpp.o"
  "CMakeFiles/skyloader_htm.dir/htm.cpp.o.d"
  "libskyloader_htm.a"
  "libskyloader_htm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skyloader_htm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
