file(REMOVE_RECURSE
  "CMakeFiles/skyloader_db.dir/engine.cpp.o"
  "CMakeFiles/skyloader_db.dir/engine.cpp.o.d"
  "CMakeFiles/skyloader_db.dir/lock_manager.cpp.o"
  "CMakeFiles/skyloader_db.dir/lock_manager.cpp.o.d"
  "CMakeFiles/skyloader_db.dir/query.cpp.o"
  "CMakeFiles/skyloader_db.dir/query.cpp.o.d"
  "CMakeFiles/skyloader_db.dir/recovery.cpp.o"
  "CMakeFiles/skyloader_db.dir/recovery.cpp.o.d"
  "CMakeFiles/skyloader_db.dir/row.cpp.o"
  "CMakeFiles/skyloader_db.dir/row.cpp.o.d"
  "CMakeFiles/skyloader_db.dir/schema.cpp.o"
  "CMakeFiles/skyloader_db.dir/schema.cpp.o.d"
  "CMakeFiles/skyloader_db.dir/sql.cpp.o"
  "CMakeFiles/skyloader_db.dir/sql.cpp.o.d"
  "CMakeFiles/skyloader_db.dir/table.cpp.o"
  "CMakeFiles/skyloader_db.dir/table.cpp.o.d"
  "CMakeFiles/skyloader_db.dir/value.cpp.o"
  "CMakeFiles/skyloader_db.dir/value.cpp.o.d"
  "libskyloader_db.a"
  "libskyloader_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skyloader_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
