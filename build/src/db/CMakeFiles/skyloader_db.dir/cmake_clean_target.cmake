file(REMOVE_RECURSE
  "libskyloader_db.a"
)
