# Empty compiler generated dependencies file for skyloader_db.
# This may be replaced when dependencies are built.
