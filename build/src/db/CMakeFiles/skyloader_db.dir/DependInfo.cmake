
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/db/engine.cpp" "src/db/CMakeFiles/skyloader_db.dir/engine.cpp.o" "gcc" "src/db/CMakeFiles/skyloader_db.dir/engine.cpp.o.d"
  "/root/repo/src/db/lock_manager.cpp" "src/db/CMakeFiles/skyloader_db.dir/lock_manager.cpp.o" "gcc" "src/db/CMakeFiles/skyloader_db.dir/lock_manager.cpp.o.d"
  "/root/repo/src/db/query.cpp" "src/db/CMakeFiles/skyloader_db.dir/query.cpp.o" "gcc" "src/db/CMakeFiles/skyloader_db.dir/query.cpp.o.d"
  "/root/repo/src/db/recovery.cpp" "src/db/CMakeFiles/skyloader_db.dir/recovery.cpp.o" "gcc" "src/db/CMakeFiles/skyloader_db.dir/recovery.cpp.o.d"
  "/root/repo/src/db/row.cpp" "src/db/CMakeFiles/skyloader_db.dir/row.cpp.o" "gcc" "src/db/CMakeFiles/skyloader_db.dir/row.cpp.o.d"
  "/root/repo/src/db/schema.cpp" "src/db/CMakeFiles/skyloader_db.dir/schema.cpp.o" "gcc" "src/db/CMakeFiles/skyloader_db.dir/schema.cpp.o.d"
  "/root/repo/src/db/sql.cpp" "src/db/CMakeFiles/skyloader_db.dir/sql.cpp.o" "gcc" "src/db/CMakeFiles/skyloader_db.dir/sql.cpp.o.d"
  "/root/repo/src/db/table.cpp" "src/db/CMakeFiles/skyloader_db.dir/table.cpp.o" "gcc" "src/db/CMakeFiles/skyloader_db.dir/table.cpp.o.d"
  "/root/repo/src/db/value.cpp" "src/db/CMakeFiles/skyloader_db.dir/value.cpp.o" "gcc" "src/db/CMakeFiles/skyloader_db.dir/value.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/skyloader_common.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/skyloader_index.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/skyloader_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
