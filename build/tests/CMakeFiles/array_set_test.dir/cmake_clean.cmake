file(REMOVE_RECURSE
  "CMakeFiles/array_set_test.dir/array_set_test.cpp.o"
  "CMakeFiles/array_set_test.dir/array_set_test.cpp.o.d"
  "array_set_test"
  "array_set_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/array_set_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
