# Empty dependencies file for wal_file_test.
# This may be replaced when dependencies are built.
