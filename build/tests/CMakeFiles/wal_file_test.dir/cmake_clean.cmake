file(REMOVE_RECURSE
  "CMakeFiles/wal_file_test.dir/wal_file_test.cpp.o"
  "CMakeFiles/wal_file_test.dir/wal_file_test.cpp.o.d"
  "wal_file_test"
  "wal_file_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wal_file_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
