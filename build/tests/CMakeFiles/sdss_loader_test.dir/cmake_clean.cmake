file(REMOVE_RECURSE
  "CMakeFiles/sdss_loader_test.dir/sdss_loader_test.cpp.o"
  "CMakeFiles/sdss_loader_test.dir/sdss_loader_test.cpp.o.d"
  "sdss_loader_test"
  "sdss_loader_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdss_loader_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
