file(REMOVE_RECURSE
  "CMakeFiles/db_composite_test.dir/db_composite_test.cpp.o"
  "CMakeFiles/db_composite_test.dir/db_composite_test.cpp.o.d"
  "db_composite_test"
  "db_composite_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/db_composite_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
