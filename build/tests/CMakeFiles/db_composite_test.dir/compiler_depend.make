# Empty compiler generated dependencies file for db_composite_test.
# This may be replaced when dependencies are built.
