file(REMOVE_RECURSE
  "CMakeFiles/loader_misc_test.dir/loader_misc_test.cpp.o"
  "CMakeFiles/loader_misc_test.dir/loader_misc_test.cpp.o.d"
  "loader_misc_test"
  "loader_misc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loader_misc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
