# Empty compiler generated dependencies file for loader_misc_test.
# This may be replaced when dependencies are built.
