file(REMOVE_RECURSE
  "CMakeFiles/db_engine_test.dir/db_engine_test.cpp.o"
  "CMakeFiles/db_engine_test.dir/db_engine_test.cpp.o.d"
  "db_engine_test"
  "db_engine_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/db_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
