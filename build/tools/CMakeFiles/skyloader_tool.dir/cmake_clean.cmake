file(REMOVE_RECURSE
  "CMakeFiles/skyloader_tool.dir/skyloader_tool.cpp.o"
  "CMakeFiles/skyloader_tool.dir/skyloader_tool.cpp.o.d"
  "skyloader_tool"
  "skyloader_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skyloader_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
