# Empty compiler generated dependencies file for skyloader_tool.
# This may be replaced when dependencies are built.
