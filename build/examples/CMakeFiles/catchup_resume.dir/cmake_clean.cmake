file(REMOVE_RECURSE
  "CMakeFiles/catchup_resume.dir/catchup_resume.cpp.o"
  "CMakeFiles/catchup_resume.dir/catchup_resume.cpp.o.d"
  "catchup_resume"
  "catchup_resume.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/catchup_resume.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
