# Empty dependencies file for catchup_resume.
# This may be replaced when dependencies are built.
