# Empty compiler generated dependencies file for error_recovery_demo.
# This may be replaced when dependencies are built.
