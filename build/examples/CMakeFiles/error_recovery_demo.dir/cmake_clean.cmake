file(REMOVE_RECURSE
  "CMakeFiles/error_recovery_demo.dir/error_recovery_demo.cpp.o"
  "CMakeFiles/error_recovery_demo.dir/error_recovery_demo.cpp.o.d"
  "error_recovery_demo"
  "error_recovery_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/error_recovery_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
