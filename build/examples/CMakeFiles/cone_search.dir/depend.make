# Empty dependencies file for cone_search.
# This may be replaced when dependencies are built.
