file(REMOVE_RECURSE
  "CMakeFiles/cone_search.dir/cone_search.cpp.o"
  "CMakeFiles/cone_search.dir/cone_search.cpp.o.d"
  "cone_search"
  "cone_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cone_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
