file(REMOVE_RECURSE
  "CMakeFiles/nightly_ingest.dir/nightly_ingest.cpp.o"
  "CMakeFiles/nightly_ingest.dir/nightly_ingest.cpp.o.d"
  "nightly_ingest"
  "nightly_ingest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nightly_ingest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
