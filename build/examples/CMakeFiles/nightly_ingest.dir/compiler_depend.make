# Empty compiler generated dependencies file for nightly_ingest.
# This may be replaced when dependencies are built.
