# Empty compiler generated dependencies file for bench_keepup.
# This may be replaced when dependencies are built.
