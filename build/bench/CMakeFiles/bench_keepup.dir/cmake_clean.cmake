file(REMOVE_RECURSE
  "CMakeFiles/bench_keepup.dir/bench_keepup.cpp.o"
  "CMakeFiles/bench_keepup.dir/bench_keepup.cpp.o.d"
  "bench_keepup"
  "bench_keepup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_keepup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
