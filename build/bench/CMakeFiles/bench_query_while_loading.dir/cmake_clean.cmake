file(REMOVE_RECURSE
  "CMakeFiles/bench_query_while_loading.dir/bench_query_while_loading.cpp.o"
  "CMakeFiles/bench_query_while_loading.dir/bench_query_while_loading.cpp.o.d"
  "bench_query_while_loading"
  "bench_query_while_loading.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_query_while_loading.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
