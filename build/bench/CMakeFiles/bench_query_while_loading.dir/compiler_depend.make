# Empty compiler generated dependencies file for bench_query_while_loading.
# This may be replaced when dependencies are built.
