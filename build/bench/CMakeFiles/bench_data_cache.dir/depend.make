# Empty dependencies file for bench_data_cache.
# This may be replaced when dependencies are built.
