file(REMOVE_RECURSE
  "CMakeFiles/bench_data_cache.dir/bench_data_cache.cpp.o"
  "CMakeFiles/bench_data_cache.dir/bench_data_cache.cpp.o.d"
  "bench_data_cache"
  "bench_data_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_data_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
