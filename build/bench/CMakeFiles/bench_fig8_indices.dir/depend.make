# Empty dependencies file for bench_fig8_indices.
# This may be replaced when dependencies are built.
