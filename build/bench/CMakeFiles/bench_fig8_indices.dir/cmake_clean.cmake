file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_indices.dir/bench_fig8_indices.cpp.o"
  "CMakeFiles/bench_fig8_indices.dir/bench_fig8_indices.cpp.o.d"
  "bench_fig8_indices"
  "bench_fig8_indices.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_indices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
