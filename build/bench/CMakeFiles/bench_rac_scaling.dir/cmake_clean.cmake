file(REMOVE_RECURSE
  "CMakeFiles/bench_rac_scaling.dir/bench_rac_scaling.cpp.o"
  "CMakeFiles/bench_rac_scaling.dir/bench_rac_scaling.cpp.o.d"
  "bench_rac_scaling"
  "bench_rac_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rac_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
