file(REMOVE_RECURSE
  "CMakeFiles/bench_error_recovery.dir/bench_error_recovery.cpp.o"
  "CMakeFiles/bench_error_recovery.dir/bench_error_recovery.cpp.o.d"
  "bench_error_recovery"
  "bench_error_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_error_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
