file(REMOVE_RECURSE
  "CMakeFiles/bench_io_distribution.dir/bench_io_distribution.cpp.o"
  "CMakeFiles/bench_io_distribution.dir/bench_io_distribution.cpp.o.d"
  "bench_io_distribution"
  "bench_io_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_io_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
