# Empty dependencies file for bench_io_distribution.
# This may be replaced when dependencies are built.
