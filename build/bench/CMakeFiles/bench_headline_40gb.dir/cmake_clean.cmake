file(REMOVE_RECURSE
  "CMakeFiles/bench_headline_40gb.dir/bench_headline_40gb.cpp.o"
  "CMakeFiles/bench_headline_40gb.dir/bench_headline_40gb.cpp.o.d"
  "bench_headline_40gb"
  "bench_headline_40gb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_headline_40gb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
