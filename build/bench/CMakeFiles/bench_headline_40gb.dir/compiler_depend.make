# Empty compiler generated dependencies file for bench_headline_40gb.
# This may be replaced when dependencies are built.
