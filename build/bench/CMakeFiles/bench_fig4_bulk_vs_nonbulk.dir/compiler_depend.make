# Empty compiler generated dependencies file for bench_fig4_bulk_vs_nonbulk.
# This may be replaced when dependencies are built.
