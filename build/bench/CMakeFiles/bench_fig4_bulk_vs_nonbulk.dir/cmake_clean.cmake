file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_bulk_vs_nonbulk.dir/bench_fig4_bulk_vs_nonbulk.cpp.o"
  "CMakeFiles/bench_fig4_bulk_vs_nonbulk.dir/bench_fig4_bulk_vs_nonbulk.cpp.o.d"
  "bench_fig4_bulk_vs_nonbulk"
  "bench_fig4_bulk_vs_nonbulk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_bulk_vs_nonbulk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
