file(REMOVE_RECURSE
  "CMakeFiles/bench_sdss_comparison.dir/bench_sdss_comparison.cpp.o"
  "CMakeFiles/bench_sdss_comparison.dir/bench_sdss_comparison.cpp.o.d"
  "bench_sdss_comparison"
  "bench_sdss_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sdss_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
