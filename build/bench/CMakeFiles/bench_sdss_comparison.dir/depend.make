# Empty dependencies file for bench_sdss_comparison.
# This may be replaced when dependencies are built.
