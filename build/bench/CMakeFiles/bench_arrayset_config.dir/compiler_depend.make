# Empty compiler generated dependencies file for bench_arrayset_config.
# This may be replaced when dependencies are built.
