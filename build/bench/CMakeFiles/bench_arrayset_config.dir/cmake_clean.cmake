file(REMOVE_RECURSE
  "CMakeFiles/bench_arrayset_config.dir/bench_arrayset_config.cpp.o"
  "CMakeFiles/bench_arrayset_config.dir/bench_arrayset_config.cpp.o.d"
  "bench_arrayset_config"
  "bench_arrayset_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_arrayset_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
