# Empty dependencies file for bench_commit_frequency.
# This may be replaced when dependencies are built.
