file(REMOVE_RECURSE
  "CMakeFiles/bench_commit_frequency.dir/bench_commit_frequency.cpp.o"
  "CMakeFiles/bench_commit_frequency.dir/bench_commit_frequency.cpp.o.d"
  "bench_commit_frequency"
  "bench_commit_frequency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_commit_frequency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
