# Empty dependencies file for bench_fig9_db_size.
# This may be replaced when dependencies are built.
