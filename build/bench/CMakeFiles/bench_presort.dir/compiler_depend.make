# Empty compiler generated dependencies file for bench_presort.
# This may be replaced when dependencies are built.
