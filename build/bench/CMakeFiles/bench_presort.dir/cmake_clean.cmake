file(REMOVE_RECURSE
  "CMakeFiles/bench_presort.dir/bench_presort.cpp.o"
  "CMakeFiles/bench_presort.dir/bench_presort.cpp.o.d"
  "bench_presort"
  "bench_presort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_presort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
