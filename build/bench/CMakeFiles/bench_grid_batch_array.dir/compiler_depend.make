# Empty compiler generated dependencies file for bench_grid_batch_array.
# This may be replaced when dependencies are built.
