file(REMOVE_RECURSE
  "CMakeFiles/bench_grid_batch_array.dir/bench_grid_batch_array.cpp.o"
  "CMakeFiles/bench_grid_batch_array.dir/bench_grid_batch_array.cpp.o.d"
  "bench_grid_batch_array"
  "bench_grid_batch_array.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_grid_batch_array.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
