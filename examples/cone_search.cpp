// Cone search: the science query the repository is built to serve, and the
// reason the htmid index is kept hot during loading (paper section 4.5.1).
//
// Loads a night of objects, then answers "all objects within R degrees of
// (ra, dec)" by covering the spherical cap with HTM trixel id ranges,
// probing the htmid B+tree index for each range, and post-filtering by
// exact angular distance.
//
//   $ ./cone_search [ra] [dec] [radius_deg]
#include <cstdio>
#include <cstdlib>

#include "catalog/generator.h"
#include "catalog/parser.h"
#include "catalog/pq_schema.h"
#include "client/session.h"
#include "core/bulk_loader.h"
#include "db/engine.h"
#include "htm/htm.h"

using namespace sky;

int main(int argc, char** argv) {
  const db::Schema schema = catalog::make_pq_schema();
  db::Engine engine(schema);
  client::DirectSession session(engine);
  core::BulkLoader loader(session, schema, core::BulkLoaderOptions{});
  if (!loader
           .load_text("reference.cat",
                      catalog::CatalogGenerator::reference_file().text)
           .is_ok()) {
    return 1;
  }
  catalog::FileSpec spec;
  spec.name = "survey.cat";
  spec.seed = 314;
  spec.unit_id = 3;
  spec.target_bytes = 2 * 1024 * 1024;
  const auto file = catalog::CatalogGenerator::generate(spec);
  const auto report = loader.load_text(spec.name, file.text);
  if (!report.is_ok()) return 1;
  const uint32_t objects = engine.table_id("objects").value();
  std::printf("loaded %lld objects\n",
              static_cast<long long>(engine.live_view().row_count(objects)));

  // Center defaults to the densest part of this synthetic field: take the
  // first object's position.
  double ra = 0, dec = 0, radius = 0.5;
  const auto sample =
      engine.live_view().scan_collect(objects, [](const db::Row&) { return true; });
  if (!sample.empty()) {
    ra = sample.front()[2].as_f64();
    dec = sample.front()[3].as_f64();
  }
  if (argc > 1) ra = std::atof(argv[1]);
  if (argc > 2) dec = std::atof(argv[2]);
  if (argc > 3) radius = std::atof(argv[3]);

  const htm::Vec3 center = htm::radec_to_vector(ra, dec);
  const auto cover =
      htm::cone_cover(center, radius, catalog::CatalogParser::kHtmDepth);
  std::printf("\ncone (ra=%.4f dec=%.4f r=%.3f deg): HTM cover = %zu id "
              "ranges at depth %d\n",
              ra, dec, radius, cover.size(),
              catalog::CatalogParser::kHtmDepth);

  // Probe the htmid index range by range, post-filter by exact distance.
  const int ra_col = schema.table(objects).column_index("ra");
  const int dec_col = schema.table(objects).column_index("dec");
  int64_t candidates = 0;
  std::vector<db::Row> hits;
  for (const htm::IdRange& range : cover) {
    const auto rows = engine.live_view().index_range(
        objects, catalog::kIndexHtmid,
        {db::Value::i64(static_cast<int64_t>(range.first))},
        {db::Value::i64(static_cast<int64_t>(range.last))});
    if (!rows.is_ok()) {
      std::fprintf(stderr, "index_range failed: %s\n",
                   rows.status().to_string().c_str());
      return 1;
    }
    candidates += static_cast<int64_t>(rows->size());
    for (const db::Row& row : *rows) {
      const htm::Vec3 position = htm::radec_to_vector(
          row[static_cast<size_t>(ra_col)].as_f64(),
          row[static_cast<size_t>(dec_col)].as_f64());
      if (htm::angular_distance_deg(center, position) <= radius) {
        hits.push_back(row);
      }
    }
  }
  std::printf("index candidates: %lld; exact matches: %zu\n",
              static_cast<long long>(candidates), hits.size());

  // Cross-check against a full scan.
  const auto brute = engine.live_view().scan_collect(objects, [&](const db::Row& row) {
    const htm::Vec3 position = htm::radec_to_vector(
        row[static_cast<size_t>(ra_col)].as_f64(),
        row[static_cast<size_t>(dec_col)].as_f64());
    return htm::angular_distance_deg(center, position) <= radius;
  });
  std::printf("full-scan cross-check: %zu matches -> %s\n", brute.size(),
              brute.size() == hits.size() ? "AGREE" : "MISMATCH");

  for (size_t i = 0; i < std::min<size_t>(5, hits.size()); ++i) {
    std::printf("  object %s at (%.4f, %.4f) mag %.2f\n",
                hits[i][0].to_display().c_str(), hits[i][2].as_f64(),
                hits[i][3].as_f64(), hits[i][4].as_f64());
  }
  return brute.size() == hits.size() ? 0 : 1;
}
