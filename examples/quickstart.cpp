// Quickstart: create the Palomar-Quest repository, generate a small
// synthetic catalog file, bulk-load it, and run a few queries.
//
//   $ ./quickstart
#include <cstdio>

#include "catalog/generator.h"
#include "catalog/pq_schema.h"
#include "client/session.h"
#include "common/log.h"
#include "core/bulk_loader.h"
#include "db/engine.h"

using namespace sky;

int main() {
  set_log_level(LogLevel::kInfo);

  // 1. The repository: 23 tables, PK/FK/check constraints, two secondary
  //    indexes on objects (htmid kept during loading, the 3-float composite
  //    delayed — the paper's production index policy).
  const db::Schema schema = catalog::make_pq_schema();
  db::Engine engine(schema);
  std::printf("repository schema: %d tables\n", schema.table_count());

  client::DirectSession session(engine);

  // 2. Load the reference tables (surveys, filters, pipelines, ...).
  core::BulkLoaderOptions options;  // batch 40, array 1000 — paper defaults
  core::BulkLoader loader(session, schema, options);
  const auto reference = loader.load_text(
      "reference.cat", catalog::CatalogGenerator::reference_file().text);
  if (!reference.is_ok()) {
    std::fprintf(stderr, "reference load failed: %s\n",
                 reference.status().to_string().c_str());
    return 1;
  }

  // 3. Generate one synthetic nightly catalog file (~1 MB, interleaved
  //    tagged rows: OBS -> CCD -> FRM + 4 APR -> OBJ + 4 FNG + ...).
  catalog::FileSpec spec;
  spec.name = "night1_file00.cat";
  spec.seed = 2026;
  spec.unit_id = 1;
  spec.target_bytes = 1024 * 1024;
  const auto file = catalog::CatalogGenerator::generate(spec);
  std::printf("generated %s: %zu bytes, %lld data rows\n", spec.name.c_str(),
              file.text.size(), static_cast<long long>(file.data_lines));

  // 4. Bulk load it.
  const auto report = loader.load_text(spec.name, file.text);
  if (!report.is_ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 report.status().to_string().c_str());
    return 1;
  }
  std::printf("%s\n", report->summary().c_str());

  // 5. Query the repository.
  std::printf("\nrow counts:\n");
  for (const char* table :
       {"observations", "ccd_frames", "objects", "fingers", "load_audit"}) {
    std::printf("  %-22s %8lld\n", table,
                static_cast<long long>(
                    engine.live_view().row_count(engine.table_id(table).value())));
  }

  // Point lookup by primary key.
  const uint32_t objects = engine.table_id("objects").value();
  const auto sample = engine.live_view().scan_collect(
      objects, [](const db::Row&) { return true; });
  if (!sample.empty()) {
    const auto row =
        engine.live_view().pk_lookup(objects, {sample.front()[0]});
    std::printf("\npk_lookup(objects, %s) -> %s\n",
                sample.front()[0].to_display().c_str(),
                row.is_ok() ? db::row_to_display(*row).c_str() : "miss");
  }

  // Magnitude range over the htmid... no — use a magnitude scan, then an
  // htmid index range (the index kept hot for science queries).
  const auto bright = engine.live_view().scan_collect(objects, [](const db::Row& row) {
    return !row[4].is_null() && row[4].as_f64() < 17.0;
  });
  std::printf("objects brighter than mag 17: %zu\n", bright.size());

  // 6. The repository's integrity invariants hold.
  const Status audit = engine.verify_integrity();
  std::printf("\nintegrity audit: %s\n", audit.to_string().c_str());
  return audit.is_ok() ? 0 : 1;
}
