// Catch-up and resume: the operational lifecycle the paper describes.
//
// 1. Catch-up phase: several nights load in parallel with secondary
//    indexes delayed (section 4.5.1) — fast ingest.
// 2. A simulated loader restart mid-backlog: the re-run consults the
//    load_audit table and skips everything already loaded (idempotence).
// 3. Catch-up ends: the composite (ra, dec, mag) index is rebuilt and the
//    repository switches to serving science queries through the planner.
//
//   $ ./catchup_resume
#include <cstdio>

#include "catalog/generator.h"
#include "catalog/pq_schema.h"
#include "client/session.h"
#include "core/coordinator.h"
#include "core/tuning.h"
#include "db/engine.h"
#include "db/query.h"

using namespace sky;

int main() {
  const core::TuningProfile profile = core::TuningProfile::production();
  const db::Schema schema = catalog::make_pq_schema();
  db::Engine engine(schema, profile.engine_options());
  if (!profile.apply_index_policy(engine).is_ok()) return 1;
  {
    client::DirectSession session(engine);
    core::BulkLoaderOptions reference_options;
    reference_options.write_audit_row = false;  // not a nightly file
    core::BulkLoader loader(session, schema, reference_options);
    if (!loader
             .load_text("reference.cat",
                        catalog::CatalogGenerator::reference_file().text)
             .is_ok()) {
      return 1;
    }
  }

  // The backlog: three nights of catalog files.
  std::vector<core::CatalogFile> backlog;
  for (int64_t night = 1; night <= 3; ++night) {
    for (const auto& spec : catalog::CatalogGenerator::observation_specs(
             /*seed=*/600 + static_cast<uint64_t>(night), night,
             3 * 1000 * 1000)) {
      backlog.push_back(core::CatalogFile{
          spec.name, catalog::CatalogGenerator::generate(spec).text});
    }
  }
  std::printf("backlog: %zu files across 3 nights\n", backlog.size());

  core::CoordinatorOptions options;
  options.parallel_degree = profile.parallel_degree;
  options.loader = profile.bulk_options();
  options.already_loaded = core::make_audit_checker(engine);
  const auto session_factory = [&](int) {
    return std::make_unique<client::DirectSession>(engine);
  };

  // --- First run: loader "crashes" after the first night's worth. --------
  std::vector<core::CatalogFile> first_chunk(
      backlog.begin(), backlog.begin() + catalog::kFilesPerObservation);
  const auto partial = core::LoadCoordinator::run_threads(
      first_chunk, schema, session_factory, options);
  if (!partial.is_ok()) return 1;
  std::printf("\nrun 1 (interrupted after night 1): %s\n",
              partial->summary().c_str());

  // --- Restart: the full backlog is offered; loaded files skip. ----------
  const auto resumed = core::LoadCoordinator::run_threads(
      backlog, schema, session_factory, options);
  if (!resumed.is_ok()) return 1;
  std::printf("run 2 (resume): %zu files loaded, %d skipped as already "
              "loaded\n",
              resumed->files.size(), resumed->files_skipped);

  // Nothing duplicated: audit says 3 nights x 28 files.
  const int64_t audits =
      engine.live_view().row_count(engine.table_id("load_audit").value());
  std::printf("load_audit rows: %lld (expected %d)\n",
              static_cast<long long>(audits),
              3 * catalog::kFilesPerObservation);

  // --- Catch-up complete: rebuild the delayed composite index. ------------
  const uint32_t objects = engine.table_id("objects").value();
  const Status rebuilt =
      engine.rebuild_index(objects, catalog::kIndexRaDecMag);
  std::printf("\nrebuild %.*s: %s\n",
              static_cast<int>(catalog::kIndexRaDecMag.size()),
              catalog::kIndexRaDecMag.data(), rebuilt.to_string().c_str());

  db::QueryPlanner planner(engine);
  db::QuerySpec bright_patch;
  bright_patch.table = "objects";
  bright_patch.conditions = {
      {"ra", db::Condition::Op::kGe, db::Value::f64(0.0)},
      {"ra", db::Condition::Op::kLt, db::Value::f64(180.0)}};
  bright_patch.order_by = "mag";
  bright_patch.limit = 3;
  const auto result = planner.execute(bright_patch);
  if (!result.is_ok()) return 1;
  std::printf("science query plan: %s (%lld rows examined)\n",
              result->plan.c_str(),
              static_cast<long long>(result->rows_examined));
  for (const db::Row& row : result->rows) {
    std::printf("  brightest: object %s mag %.2f at ra %.3f\n",
                row[0].to_display().c_str(), row[4].as_f64(),
                row[2].as_f64());
  }

  const Status audit = engine.verify_integrity();
  std::printf("\nintegrity audit: %s\n", audit.to_string().c_str());
  return audit.is_ok() && resumed->files_skipped ==
                              catalog::kFilesPerObservation
             ? 0
             : 1;
}
