// Tuning advisor: the paper's section 4.5 guidance as a tool.
//
// Sweeps batch size, array size, and parallel degree over a sample of the
// input in fast simulation, then prints a recommended TuningProfile — the
// "methodical experimentation" the paper advocates ("even when the detailed
// database system implementation is unknown"), automated.
//
// `--live` runs the closed-loop alternative: instead of sweeping knobs
// offline, it loads the sample under core::Controller and prints every
// ControlTrace decision — the same feedback loop that re-tunes a production
// engine mid-run (core/controller.h).
//
//   $ ./tuning_advisor [sample_megabytes]
//   $ ./tuning_advisor --live [sample_megabytes]
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "catalog/generator.h"
#include "catalog/pq_schema.h"
#include "client/sim_session.h"
#include "core/bulk_loader.h"
#include "core/controller.h"
#include "core/coordinator.h"
#include "core/tuning.h"
#include "db/control_plane.h"
#include "db/engine.h"

using namespace sky;

namespace {

// All policy values read through the one EnginePolicies aggregate — the
// block tuning code copies between backends (`options.policies =
// config.policies`), not the per-field compat spellings.
void print_policies(const core::EnginePolicies& policies) {
  std::printf(
      "  commit:      window %.2f ms, max group %lld, %s\n"
      "  concurrency: %lld transaction slots, %lld itl slots/table\n"
      "  query:       %lld interactive / %lld batch lane slots%s\n",
      static_cast<double>(policies.commit.commit_window) / 1e6,
      static_cast<long long>(policies.commit.max_group_commits),
      policies.commit.durability == storage::DurabilityMode::kRelaxed
          ? "relaxed durability"
          : "strict durability",
      static_cast<long long>(policies.concurrency.max_concurrent_transactions),
      static_cast<long long>(policies.concurrency.itl_slots_per_table),
      static_cast<long long>(policies.query.normalized().interactive_slots),
      static_cast<long long>(policies.query.normalized().batch_slots),
      policies.query.batch_yields_to_interactive ? " (batch yields)" : "");
}

// --live: load the sample under the adaptive controller instead of sweeping
// knobs offline. Four parallel loaders, the controller ticking on virtual
// time through the SimControlPlane; prints every decision it took.
int run_live(int64_t sample_mb) {
  const db::Schema schema = catalog::make_pq_schema();
  db::Engine engine(schema,
                    core::TuningProfile::production().engine_options());
  sim::Environment env;
  client::ServerConfig config = core::TuningProfile::production()
                                    .server_config();
  // Neutral start: no commit window, lean slots; everything else the
  // controller learns from EngineStats.
  config.policies.commit.commit_window = 0;
  config.policies.concurrency.max_concurrent_transactions = 4;
  client::SimServer server(env, engine, config);

  std::printf("live-tuned load of a %lld MB sample, starting from:\n",
              static_cast<long long>(sample_mb));
  print_policies(config.policies);

  constexpr int kLoaders = 4;
  int active = kLoaders;
  for (int w = 0; w < kLoaders; ++w) {
    catalog::FileSpec spec;
    spec.name = "live-" + std::to_string(w) + ".cat";
    spec.seed = 9600 + static_cast<uint64_t>(w);
    spec.unit_id = 90 + w;
    spec.target_bytes = sample_mb * 1000 * 1000 / kLoaders;
    env.spawn(spec.name, [&server, &schema, &active, spec] {
      client::SimSession session(server);
      core::BulkLoaderOptions options;
      options.write_audit_row = false;
      // Autocommit-style cadence: gives the controller real commit traffic
      // to steer the group-commit window against.
      options.commit.every_batches = 1;
      core::BulkLoader loader(session, schema, options);
      const std::string text = catalog::CatalogGenerator::generate(spec).text;
      (void)loader.load_text(spec.name, text);
      --active;
    });
  }

  client::SimControlPlane plane(server);
  core::ControllerPolicy policy;
  core::Controller controller(plane, policy);
  env.spawn("controller", [&env, &active, &policy, &controller] {
    while (active > 0) {
      env.delay(policy.tick_interval);
      controller.tick(env.now());
    }
  });
  env.run();

  std::printf("\nloaded in %.2f virtual seconds; %llu ticks, %llu patches\n",
              to_seconds(env.now()),
              static_cast<unsigned long long>(controller.ticks()),
              static_cast<unsigned long long>(controller.trace().total()));
  std::printf("\ncontrol trace (%s):\n", policy.describe().c_str());
  for (const core::ControlDecision& decision :
       controller.trace().snapshot()) {
    std::printf("  %s\n", decision.render().c_str());
  }
  std::printf("\nsettled policies:\n");
  print_policies(server.config().policies);
  return 0;
}

// One simulated single-loader run over the sample; returns virtual seconds.
double run_single(const db::Schema& schema, const std::string& text,
                  int64_t batch, int64_t array_size) {
  db::Engine engine(schema,
                    core::TuningProfile::production().engine_options());
  sim::Environment env;
  client::SimServer server(env, engine, client::ServerConfig{});
  double seconds = 0;
  env.spawn("probe", [&] {
    client::SimSession session(server);
    core::BulkLoaderOptions options;
    options.write_audit_row = false;
    core::BulkLoader reference_loader(session, schema, options);
    (void)reference_loader.load_text(
        "reference", catalog::CatalogGenerator::reference_file().text);
    const Nanos start = env.now();
    options.batch_size = batch;
    options.array_config.default_rows = array_size;
    core::BulkLoader loader(session, schema, options);
    (void)loader.load_text("sample", text);
    seconds = to_seconds(env.now() - start);
  });
  env.run();
  return seconds;
}

double run_parallel(const db::Schema& schema,
                    const std::vector<core::CatalogFile>& files, int degree,
                    const core::BulkLoaderOptions& loader_options) {
  db::Engine engine(schema,
                    core::TuningProfile::production().engine_options());
  sim::Environment env;
  client::SimServer server(env, engine, client::ServerConfig{});
  env.spawn("reference", [&] {
    client::SimSession session(server);
    core::BulkLoaderOptions options;
    options.write_audit_row = false;
    core::BulkLoader loader(session, schema, options);
    (void)loader.load_text("reference",
                           catalog::CatalogGenerator::reference_file().text);
  });
  env.run();
  core::CoordinatorOptions options;
  options.parallel_degree = degree;
  options.loader = loader_options;
  options.loader.write_audit_row = false;
  const auto report =
      core::LoadCoordinator::run_sim(env, server, files, schema, options);
  return report.is_ok() ? to_seconds(report->makespan) : 1e18;
}

}  // namespace

int main(int argc, char** argv) {
  bool live = false;
  int64_t sample_mb = 2;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--live") == 0) {
      live = true;
    } else {
      sample_mb = std::atoll(argv[i]);
    }
  }
  if (live) return run_live(sample_mb);
  const db::Schema schema = catalog::make_pq_schema();

  catalog::FileSpec spec;
  spec.name = "sample.cat";
  spec.seed = 4242;
  spec.unit_id = 4;
  spec.target_bytes = sample_mb * 1000 * 1000;
  const std::string sample = catalog::CatalogGenerator::generate(spec).text;
  std::printf("tuning against a %lld MB sample (simulated time)\n\n",
              static_cast<long long>(sample_mb));

  core::TuningProfile recommended = core::TuningProfile::production();
  recommended.name = "advisor-recommended";

  std::printf("batch-size sweep (array 1000):\n");
  double best = 1e18;
  for (const int64_t batch : {10, 20, 30, 40, 50, 60, 80}) {
    const double seconds = run_single(schema, sample, batch, 1000);
    std::printf("  batch %3lld -> %7.2f s\n", static_cast<long long>(batch),
                seconds);
    if (seconds < best) {
      best = seconds;
      recommended.batch_size = batch;
    }
  }

  std::printf("\narray-size sweep (batch %lld):\n",
              static_cast<long long>(recommended.batch_size));
  best = 1e18;
  for (const int64_t array_size : {250, 500, 1000, 2000, 4000}) {
    const double seconds =
        run_single(schema, sample, recommended.batch_size, array_size);
    std::printf("  array %4lld -> %7.2f s\n",
                static_cast<long long>(array_size), seconds);
    if (seconds < best) {
      best = seconds;
      recommended.array_size = array_size;
    }
  }

  std::printf("\nparallel-degree sweep (28-file observation):\n");
  std::vector<core::CatalogFile> files;
  for (const auto& file_spec : catalog::CatalogGenerator::observation_specs(
           /*seed=*/555, /*night_id=*/5, sample_mb * 4 * 1000 * 1000)) {
    files.push_back(core::CatalogFile{
        file_spec.name, catalog::CatalogGenerator::generate(file_spec).text});
  }
  core::BulkLoaderOptions loader_options = recommended.bulk_options();
  best = 1e18;
  double best_throughput = 0;
  for (int degree = 1; degree <= 8; ++degree) {
    const double seconds =
        run_parallel(schema, files, degree, loader_options);
    const double throughput =
        static_cast<double>(sample_mb * 4) / seconds;
    std::printf("  degree %d -> %7.2f s (%.2f MB/s)\n", degree, seconds,
                throughput);
    if (seconds < best) {
      best = seconds;
      recommended.parallel_degree = degree;
      best_throughput = throughput;
    }
  }
  // The paper's production choice backs off one from the peak to dodge the
  // rare high-parallelism stalls; mirror that.
  if (recommended.parallel_degree > 1) {
    recommended.parallel_degree -= 1;
  }

  std::printf("\nrecommended profile (backing off one loader from the peak, "
              "as the paper's production system does):\n  %s\n",
              recommended.describe().c_str());
  std::printf("server policies for this profile:\n");
  print_policies(recommended.server_config().policies);
  std::printf("expected throughput near %.2f MB/s on this substrate\n",
              best_throughput);
  return 0;
}
