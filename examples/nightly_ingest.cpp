// Nightly ingest: a full synthetic observation — 28 catalog files of
// varying size — loaded in parallel by real threads pulling from the
// dynamic work queue, exactly the production SkyLoader deployment shape
// (5 concurrent loaders feeding one shared database server).
//
//   $ ./nightly_ingest [parallel_degree] [total_megabytes]
#include <cstdio>
#include <cstdlib>

#include "catalog/generator.h"
#include "catalog/pq_schema.h"
#include "client/session.h"
#include "core/coordinator.h"
#include "core/tuning.h"
#include "db/engine.h"

using namespace sky;

int main(int argc, char** argv) {
  const int degree = argc > 1 ? std::atoi(argv[1]) : 5;
  const int64_t total_mb = argc > 2 ? std::atoll(argv[2]) : 24;

  const core::TuningProfile profile = core::TuningProfile::production();
  std::printf("profile: %s\n\n", profile.describe().c_str());

  const db::Schema schema = catalog::make_pq_schema();
  db::Engine engine(schema, profile.engine_options());
  if (!profile.apply_index_policy(engine).is_ok()) return 1;

  // Reference data first.
  {
    client::DirectSession session(engine);
    core::BulkLoader loader(session, schema, core::BulkLoaderOptions{});
    const auto reference = loader.load_text(
        "reference.cat", catalog::CatalogGenerator::reference_file().text);
    if (!reference.is_ok()) return 1;
  }

  // Generate the 28 files of tonight's observation (sizes vary — the
  // reason assignment is dynamic).
  std::vector<core::CatalogFile> files;
  int64_t total_bytes = 0;
  for (const auto& spec : catalog::CatalogGenerator::observation_specs(
           /*seed=*/20260706, /*night_id=*/1, total_mb * 1000 * 1000,
           /*error_rate=*/0.002)) {
    auto generated = catalog::CatalogGenerator::generate(spec);
    total_bytes += static_cast<int64_t>(generated.text.size());
    files.push_back(core::CatalogFile{spec.name, std::move(generated.text)});
  }
  std::printf("observation: %zu files, %s total\n", files.size(),
              format_bytes(total_bytes).c_str());

  core::CoordinatorOptions options;
  options.parallel_degree = degree;
  options.loader = profile.bulk_options();
  const auto report = core::LoadCoordinator::run_threads(
      files, schema,
      [&](int) { return std::make_unique<client::DirectSession>(engine); },
      options);
  if (!report.is_ok()) {
    std::fprintf(stderr, "parallel load failed: %s\n",
                 report.status().to_string().c_str());
    return 1;
  }

  std::printf("\n%s\n", report->summary().c_str());
  std::printf("\nper-worker files: ");
  for (const int files_done : report->files_per_worker) {
    std::printf("%d ", files_done);
  }
  std::printf("\n\nper-table rows loaded:\n");
  core::FileLoadReport totals;
  for (const core::FileLoadReport& file : report->files) {
    totals.merge_counts(file);
  }
  for (const auto& [table, rows] : totals.loaded_per_table) {
    std::printf("  %-22s %8lld\n", table.c_str(),
                static_cast<long long>(rows));
  }
  std::printf("\nskipped rows: %lld parse, %lld constraint "
              "(injected error rate 0.2%%)\n",
              static_cast<long long>(totals.parse_errors),
              static_cast<long long>(totals.rows_skipped_server));

  const Status audit = engine.verify_integrity();
  std::printf("integrity audit: %s\n", audit.to_string().c_str());
  return audit.is_ok() ? 0 : 1;
}
