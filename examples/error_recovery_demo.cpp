// Error recovery demo: the paper's Example 1, executable.
//
// Loads a catalog file with injected errors (malformed numerics, missing
// fields, duplicate primary keys, dangling foreign keys, out-of-range
// values) and shows the bulk loader skipping exactly the bad rows and
// resuming — batch by batch — without losing any good data.
//
//   $ ./error_recovery_demo [error_rate]
#include <cstdio>
#include <cstdlib>

#include "catalog/generator.h"
#include "catalog/pq_schema.h"
#include "client/session.h"
#include "core/bulk_loader.h"
#include "db/engine.h"

using namespace sky;

int main(int argc, char** argv) {
  const double error_rate = argc > 1 ? std::atof(argv[1]) : 0.03;

  const db::Schema schema = catalog::make_pq_schema();
  db::Engine engine(schema);
  client::DirectSession session(engine);
  core::BulkLoaderOptions options;  // batch-size 40, array-size 1000
  core::BulkLoader loader(session, schema, options);
  {
    const auto reference = loader.load_text(
        "reference.cat", catalog::CatalogGenerator::reference_file().text);
    if (!reference.is_ok()) return 1;
  }

  catalog::FileSpec spec;
  spec.name = "dirty_night.cat";
  spec.seed = 77;
  spec.unit_id = 9;
  spec.target_bytes = 512 * 1024;
  spec.error_rate = error_rate;
  const auto file = catalog::CatalogGenerator::generate(spec);
  std::printf("catalog file: %lld rows, %lld corrupted (%.1f%% injected)\n",
              static_cast<long long>(file.data_lines),
              static_cast<long long>(file.injected_errors),
              error_rate * 100);

  const auto report = loader.load_text(spec.name, file.text);
  if (!report.is_ok()) return 1;

  std::printf("\n%s\n", report->summary().c_str());
  std::printf("\nconservation: %lld parsed = %lld loaded + %lld skipped "
              "(+ %lld parse errors on %lld lines)\n",
              static_cast<long long>(report->rows_parsed),
              static_cast<long long>(report->rows_loaded),
              static_cast<long long>(report->rows_skipped_server),
              static_cast<long long>(report->parse_errors),
              static_cast<long long>(report->lines_read));

  // Show a sample of the error log, grouped by failure kind.
  std::printf("\nfirst errors by kind:\n");
  std::map<std::string, int> seen_kinds;
  for (const core::LoadError& error : report->errors) {
    const std::string kind(error_code_name(error.status.code()));
    if (seen_kinds[kind]++ == 0) {
      std::printf("  [%s] %s%s%s\n    -> %s\n", kind.c_str(),
                  error.table.empty() ? "" : error.table.c_str(),
                  error.table.empty() ? "" : ": ",
                  error.detail.substr(0, 70).c_str(),
                  error.status.message().substr(0, 90).c_str());
    }
  }
  std::printf("\nerror histogram:\n");
  for (const auto& [kind, count] : seen_kinds) {
    std::printf("  %-24s %6d\n", kind.c_str(), count);
  }

  // The skipped rows cost one extra round trip each — the section 4.2
  // analysis — visible in the call count.
  const double ideal_calls =
      static_cast<double>(report->rows_parsed) / 40.0;
  std::printf("\ndatabase calls: %lld (error-free ideal ~%.0f; each skipped "
              "row adds one)\n",
              static_cast<long long>(report->db_calls), ideal_calls);

  const Status audit = engine.verify_integrity();
  std::printf("integrity audit after dirty load: %s\n",
              audit.to_string().c_str());
  return audit.is_ok() ? 0 : 1;
}
