// SimServer: the shared database-host model for simulation mode.
//
// Reproduces the paper's testbed shape: an 8-processor database server, a
// finite concurrent-transaction limit, per-table ITL (interested transaction
// list) slots that parallel loaders contend on, and one queueing resource
// per physical RAID device (data / index / log, co-located or separate per
// the DeviceLayout). All SimSessions of a benchmark share one SimServer;
// queueing on these resources in virtual time is what produces the Fig. 7
// parallelism curve — near-linear scaling while slots are free, lock waits
// and occasional long stalls past the knee.
#pragma once

#include <memory>
#include <vector>

#include "client/cost_model.h"
#include "common/rng.h"
#include "core/engine_policies.h"
#include "core/query_stats.h"
#include "db/control_plane.h"
#include "db/engine.h"
#include "sim/environment.h"

namespace sky::client {

// View a sim resource's virtual-time accounting as the unified GateStats
// snapshot real gates report (db/lock_manager.h) — one schema for wait
// breakdowns in both execution modes. Stall fields stay zero: sim stalls
// are drawn in the session (SimServer::draw_stall) and land in
// SessionStats::stall_time.
db::GateStats gate_stats_from(const sim::Resource& resource);

struct ServerConfig {
  int cpus = 8;
  // Cluster hosting (the paper's section 7 future work: "explore
  // database-hosting architectures and Oracle RAC technology"). With
  // nodes > 1 the `cpus` pool is split evenly across nodes, sessions attach
  // to nodes round-robin, and a batch that inserts into a table whose most
  // recent writer was a *different* node pays a cache-fusion transfer per
  // dirtied page (cluster interconnect shipping current blocks).
  int nodes = 1;
  Nanos cache_fusion_per_page = 700 * kMicrosecond;
  // Every shared policy struct, in the same aggregate the real engine's
  // EngineOptions embeds (core/engine_policies.h) — tuning code can copy
  // the whole block between backends. The concurrency preset models the
  // paper's testbed: 8 open-transaction slots (sessions holding a
  // transaction) and 7 ITL slots per table (concurrent transactions
  // inserting into one table — the knee of Fig. 7).
  core::EnginePolicies policies = [] {
    core::EnginePolicies p;
    p.concurrency.max_concurrent_transactions = 8;
    p.concurrency.itl_slots_per_table = 7;
    return p;
  }();
  // Reference views keeping the historical field spellings alive
  // (config.concurrency..., config.query..., config.commit_window...).
  // The commit knobs mirror the engine's WAL window (storage::WalOptions):
  // a commit that leads a log flush holds the device write open for
  // commit_window so commits arriving meanwhile ride the same flush; the
  // group closes early at max_group_commits members. The engine itself runs
  // with a zero window in simulation (it must never block in real time
  // inside a sim process), so the grouping is modeled here, at the log
  // device — keeping simulated and real-thread runs in agreement.
  core::ConcurrencyPolicy& concurrency = policies.concurrency;
  core::QueryPolicy& query = policies.query;
  core::SpatialPolicy& spatial = policies.spatial;
  Nanos& commit_window = policies.commit.commit_window;
  int64_t& max_group_commits = policies.commit.max_group_commits;
  // Instance-wide limit on concurrently *executing* transactional batch
  // work — the "RDBMS limit on the number of concurrent transactions" the
  // paper hits at parallelism 6-7 (section 4.4/5.4). Queueing here triggers
  // lock-management escalation and occasional stalls. Sim-only (real mode
  // has no modeled CPU scheduler to gate).
  int64_t batch_gate_slots = 5;

  storage::DeviceLayout device_layout =
      storage::DeviceLayout::separate_raids();
  CostModel costs;

  // The reference members above alias *this* object's `policies`; default
  // copy semantics would alias the source's. Copies rebind by omitting the
  // references from the member-init list, so their default initializers
  // re-run against the new object.
  ServerConfig() = default;
  ServerConfig(const ServerConfig& other)
      : cpus(other.cpus),
        nodes(other.nodes),
        cache_fusion_per_page(other.cache_fusion_per_page),
        policies(other.policies),
        batch_gate_slots(other.batch_gate_slots),
        device_layout(other.device_layout),
        costs(other.costs) {}
  ServerConfig& operator=(const ServerConfig& other) {
    cpus = other.cpus;
    nodes = other.nodes;
    cache_fusion_per_page = other.cache_fusion_per_page;
    policies = other.policies;
    batch_gate_slots = other.batch_gate_slots;
    device_layout = other.device_layout;
    costs = other.costs;
    return *this;
  }
};

class SimServer {
 public:
  SimServer(sim::Environment& env, db::Engine& engine, ServerConfig config);

  sim::Environment& env() { return env_; }
  db::Engine& engine() { return engine_; }
  const ServerConfig& config() const { return config_; }
  const CostModel& costs() const { return config_.costs; }

  // CPU pool of a cluster node (node 0 when single-instance).
  sim::Resource& node_cpus(int node) {
    return *node_cpus_[static_cast<size_t>(node) % node_cpus_.size()];
  }
  int node_count() const { return static_cast<int>(node_cpus_.size()); }
  // Attach a session to a node (round-robin).
  int assign_node() { return next_node_++ % node_count(); }
  // Record node writing to a table; returns pages that must be shipped via
  // cache fusion (0 on same-node access or single-instance).
  int64_t note_table_writer(uint32_t table_id, int node,
                            int64_t pages_touched);

  sim::Resource& transaction_slots() { return *transaction_slots_; }
  sim::Resource& batch_gate() { return *batch_gate_; }
  sim::Resource& itl(uint32_t table_id) { return *itl_[table_id]; }
  sim::Resource& interactive_lane() { return *interactive_lane_; }
  sim::Resource& batch_lane() { return *batch_lane_; }
  sim::Resource& device(int physical_device) {
    return *devices_[static_cast<size_t>(physical_device)];
  }
  sim::Resource& device_for(storage::IoRole role) {
    return device(config_.device_layout.device_for(role));
  }

  // Deterministic stall decision (one shared stream; draws are ordered by
  // virtual time, which is itself deterministic).
  bool draw_stall() {
    return stall_rng_.bernoulli(config_.concurrency.stall_probability);
  }

  // Unified admission-gate snapshot in the same shape the real engine's
  // Engine::concurrency_stats() reports (db::ConcurrencyStats), derived
  // from the sim resources' virtual-time accounting.
  db::ConcurrencyStats concurrency_stats() const;

  // Query-lane admission, the virtual-time twin of QueryScheduler::admit:
  // blocks (in virtual time) until the lane grants a slot; batch admissions
  // additionally poll until the interactive lane is fully idle when the
  // policy says batch yields. Pair each admit with release_query.
  void admit_query(bool interactive);
  void release_query(bool interactive);
  // Same schema the real QueryScheduler::stats() reports
  // (core/query_stats.h) — per-lane gate accounting from the sim resources
  // plus the yield counter. Latency percentiles stay zero: sim benches
  // measure query latency in virtual time at the call site.
  core::QueryStats query_lane_stats() const;

  // Log-device group commit (ServerConfig::commit_window). A committing
  // session asks whether it leads a new flush group or joins the one in
  // flight. The leader pays the coalescing-window wait (skipped when it is
  // the only session holding a transaction — the same single-transaction
  // fast path the real WAL takes) and the full flush; joiners wait for the
  // group's device write (flush_eta) and pay only their marginal bytes.
  struct LogGroupDecision {
    bool leader = false;
    Nanos window_wait = 0;  // leader only
    Nanos flush_eta = 0;    // virtual time the group's device write lands
  };
  LogGroupDecision join_log_group();

  // Live policy application, the sim twin of Engine::update_policies.
  // Commit-window knobs mutate config_ (join_log_group reads them per call;
  // sim processes are serialized, so no lock is needed); slot counts resize
  // the corresponding sim resources (growing grants queued waiters at the
  // current virtual time, shrinking drains); extent assignment is forwarded
  // to the embedded engine, which places rows even in sim mode. Validates
  // the whole patch before applying any field.
  Status update_policies(const db::PolicyPatch& patch);

 private:
  sim::Environment& env_;
  db::Engine& engine_;
  ServerConfig config_;
  std::vector<std::unique_ptr<sim::Resource>> node_cpus_;
  std::vector<int> table_last_writer_;
  int next_node_ = 0;
  std::unique_ptr<sim::Resource> transaction_slots_;
  std::unique_ptr<sim::Resource> batch_gate_;
  std::unique_ptr<sim::Resource> interactive_lane_;
  std::unique_ptr<sim::Resource> batch_lane_;
  int64_t batch_yields_ = 0;
  std::vector<std::unique_ptr<sim::Resource>> itl_;
  std::vector<std::unique_ptr<sim::Resource>> devices_;
  Rng stall_rng_;
  // Open log flush group: commits before log_group_close_ join it (up to
  // max_group_commits members); its write completes around log_group_eta_.
  Nanos log_group_close_ = -1;
  Nanos log_group_eta_ = 0;
  int64_t log_group_members_ = 0;
};

// ControlPlane over a SimServer: the controller that tunes a live engine
// drives the simulated testbed through the same interface. stats() starts
// from the embedded engine's snapshot (heap extents, snapshots, WAL — all
// real even in sim mode) and overlays the parts the sim models itself:
// admission-gate accounting, query lanes, and the live commit/slot policy
// values, which live in SimServer, not the engine. apply() goes through
// SimServer::update_policies.
class SimControlPlane : public db::ControlPlane {
 public:
  explicit SimControlPlane(SimServer& server) : server_(server) {}

  db::EngineStats stats() const override;
  Status apply(const db::PolicyPatch& patch) override;

 private:
  SimServer& server_;
};

}  // namespace sky::client
