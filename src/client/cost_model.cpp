#include "client/cost_model.h"

namespace sky::client {

Nanos CostModel::server_cpu_time(const db::OpCosts& costs,
                                 bool columnar) const {
  Nanos time = 0;
  time += costs.rows_applied *
          (columnar ? server_columnar_row_base : server_row_base);
  time += costs.check_evals *
          (columnar ? per_check_eval_columnar : per_check_eval);
  time += costs.index_node_visits * per_index_node_visit;
  time += costs.fk_checks * per_fk_check;
  time += costs.fk_node_visits * per_index_node_visit;
  time += costs.heap_bytes * per_heap_kb / 1024;
  time += costs.wal_bytes * per_wal_kb / 1024;
  time += costs.index_updates * per_index_entry_base;
  time += costs.index_int_columns *
          (columnar ? per_index_int_column_columnar : per_index_int_column);
  time += costs.index_float_columns * per_index_float_column;
  // String keys priced like floats (width-dominated).
  time += costs.index_string_columns * per_index_float_column;
  time += costs.index_leaf_splits * per_leaf_split;
  time += costs.constraint_failures * per_constraint_failure;
  time += costs.cache.writer_scanned_frames * per_writer_scanned_frame;
  time += costs.zone_scan_rows * per_zone_scan_row;
  time += costs.xmatch_candidates * per_xmatch_candidate;
  time += costs.xmatch_pairs * per_xmatch_pair;
  return time;
}

Nanos CostModel::log_flush_time(int64_t bytes) const {
  return log_flush_base + log_bytes_time(bytes);
}

Nanos CostModel::log_bytes_time(int64_t bytes) const {
  return bytes * per_log_kb / 1024;
}

CostModel paper_calibrated_costs() { return CostModel{}; }

}  // namespace sky::client
