// Cost model: prices the engine's mechanical work into time.
//
// Calibrated once against the paper's reported endpoints (see EXPERIMENTS.md):
//   * non-bulk loading ~13.3 s per paper-MB (Fig. 4: ~16000 s at 1200 MB),
//   * bulk loading at batch-size 40 is 7-9x faster (~330 s for 200 MB),
//   * a single-integer secondary index costs ~1.5% and a three-float
//     composite index ~8.5% (Fig. 8),
//   * the optimal batch size sits in the 40-50 range (Fig. 5).
//
// A "paper MB" is one megabyte of ASCII catalog data in the original study;
// we map it to kRowsPerPaperMb catalog rows. Benchmarks may run at a reduced
// row scale and report normalized (per-paper-MB) simulated time, so the
// figure axes match the paper at any scale.
#pragma once

#include <cstdint>

#include "common/units.h"
#include "db/op_costs.h"
#include "db/schema.h"

namespace sky::client {

// Catalog rows represented by one paper-MB at scale 1.0 (the synthetic
// catalog emits ~62-byte lines, ~16k rows per MB of text; the cost model is
// calibrated against this density).
constexpr int64_t kRowsPerPaperMb = 16000;

struct CostModel {
  // ---- per-call (the price of a database round trip) ----
  Nanos client_call_overhead = 60 * kMicrosecond;  // JDBC driver marshalling
  Nanos wire_latency = 40 * kMicrosecond;          // each direction
  Nanos server_call_overhead = 700 * kMicrosecond; // parse/dispatch/ack

  // ---- per-row client-side work (parse, validate, transform, htmid) ----
  Nanos client_row_parse = 15 * kMicrosecond;
  // Batch marshalling grows with batch size (array binding): extra cost per
  // row proportional to the number of rows in its batch. This is what turns
  // "bigger batches are always better" into the paper's interior optimum
  // (minimizing call/b + q*b gives b* = sqrt(call/q) ~ 45).
  Nanos client_marshal_per_row_per_batchrow = 360;  // ns per row per batchrow

  // ---- columnar ingest path (DESIGN.md "Columnar ingest hot path") ----
  // Vectorized block parse: no per-row Row/Value materialization, numerics
  // converted column-at-a-time into arenas. Scaled from client_row_parse by
  // the measured end-to-end real-CPU ratio of CatalogParser::parse_block
  // vs. parse_line in this repo (~2.7x: ~830 vs ~310 ns/row on the bench
  // catalog; htmid computation, common to both, bounds the ratio).
  Nanos client_row_parse_columnar = 5500;
  // A column batch marshals as one contiguous array bind per column —
  // linear in rows, not quadratic: there is no per-row re-binding of the
  // whole statement, which is what drove the n^2 term above. This removes
  // the interior batch-size optimum for the columnar path.
  Nanos client_marshal_per_row_columnar = 360;  // ns per row
  // Arena append of one parsed row into the client column buffer: columnwise
  // pushes into flat vectors, no Row/Value boxing (measured ~35 ns/row real
  // in bench_hotpath's buffer stage; priced at the same real:model scale as
  // per_buffered_row).
  Nanos per_buffered_row_columnar = 150;

  // ---- per-row server-side work ----
  Nanos server_row_base = 45 * kMicrosecond;  // execute + buffer management
  Nanos per_check_eval = 100;
  // The columnar validation screen walks typed column arrays directly
  // (null bitmap scan, NaN scan on double columns, range compares) with no
  // per-cell Value tag dispatch — see Engine::insert_column_run_latched.
  Nanos per_check_eval_columnar = 25;
  // Array-insert execute residual for the columnar path: one statement
  // execution covers the run, so the per-row remainder is slot formation
  // and buffer bookkeeping only. Direct-path / array-insert loads in
  // commercial engines run at 5-10x the conventional per-row execute rate;
  // this sits at the top of that range because the per-byte / per-index /
  // per-check work below is still charged separately from the engine's
  // real counts.
  Nanos server_columnar_row_base = 4500;
  Nanos per_index_node_visit = 300;
  Nanos per_fk_check = 1 * kMicrosecond;
  Nanos per_heap_kb = 2500;
  Nanos per_wal_kb = 1500;
  // Index-entry maintenance priced per indexed column by type: float keys
  // are wider and costlier to bind/compare (the Fig. 8 contrast: the
  // single-int index costs ~1.5% of a row, the 3-float composite ~8.5%).
  Nanos per_index_entry_base = 400;
  Nanos per_index_int_column = 1300;
  // Columnar rate for integer key columns: the per-entry statement-level
  // key bind collapses under array DML (keys arrive in the already-bound
  // column arrays — the same argument that made marshalling linear above);
  // what remains per entry is leaf-entry formation and comparison. Float
  // keys keep the row rate — their cost is width/compare-dominated, and
  // the production profile does not maintain the composite float index
  // during the load anyway.
  Nanos per_index_int_column_columnar = 650;
  Nanos per_index_float_column = 27 * kMicrosecond;
  Nanos per_leaf_split = 8 * kMicrosecond;
  // Constraint-failure handling (error raise + statement abort).
  Nanos per_constraint_failure = 300 * kMicrosecond;

  // ---- spatial operators (db/spatial.h) ----
  // Zone cross-match and cone-search CPU, priced from the OpCosts spatial
  // funnel. per_zone_scan_row covers pulling one row through a per-zone
  // ra-sorted window (binary-search amortization plus the Δdec screen) —
  // sized against the measured zone matcher at ~10^6-row catalogs, where
  // the window walk runs tens of ns/row. per_xmatch_candidate covers one
  // exact angular-distance test (two unit-vector transforms + dot product +
  // acos, ~100-200 ns real), priced above the scan rate so candidate-heavy
  // (wide-window, polar) zones dominate, matching the real profile.
  Nanos per_zone_scan_row = 60;
  Nanos per_xmatch_candidate = 250;
  // Per matched pair: result formation (pair record + separation).
  Nanos per_xmatch_pair = 100;

  // ---- buffer cache / DBWR ----
  Nanos per_writer_scanned_frame = 250;   // DBWR examining one frame
  // ---- device service times (charged on the owning device's queue) ----
  Nanos per_page_write = 100 * kMicrosecond;
  Nanos per_page_read = 200 * kMicrosecond;
  Nanos log_flush_base = 8 * kMillisecond;
  Nanos per_log_kb = 6 * kMicrosecond;

  // ---- client memory model (array-set paging; Fig. 6) ----
  int64_t client_array_memory_bytes = 640 * 1024;
  Nanos per_buffered_row = 500;                    // array append
  Nanos per_paged_row = 40 * kMicrosecond;         // append while thrashing
  // Array(-set) build/teardown per flush cycle, per array.
  Nanos per_flush_cycle_array = 500 * kMicrosecond;

  // Price the CPU time a batch spends on the server (excluding device I/O,
  // which queues on devices, and excluding the per-call overhead). The
  // columnar flag swaps server_row_base for the array-insert residual; all
  // mechanical counts (index visits, heap/redo bytes, checks) price the
  // same on both paths.
  Nanos server_cpu_time(const db::OpCosts& costs,
                        bool columnar = false) const;

  // Price one log-device flush of `bytes` redo (the fixed device write plus
  // the per-KB transfer). A group-commit joiner pays only the marginal
  // bytes; the leader pays the whole thing.
  Nanos log_flush_time(int64_t bytes) const;
  Nanos log_bytes_time(int64_t bytes) const;
};

// The paper-calibrated default.
CostModel paper_calibrated_costs();

}  // namespace sky::client
