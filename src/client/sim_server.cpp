#include "client/sim_server.h"

#include <algorithm>

namespace sky::client {

db::GateStats gate_stats_from(const sim::Resource& resource) {
  const sim::Resource::Stats stats = resource.stats();
  db::GateStats gate;
  gate.acquires = stats.acquires;
  gate.waits = stats.waits;
  gate.total_wait = stats.total_wait;
  gate.max_wait = stats.max_wait;
  gate.in_use = resource.capacity() - resource.available();
  return gate;
}

SimServer::SimServer(sim::Environment& env, db::Engine& engine,
                     ServerConfig config)
    : env_(env),
      engine_(engine),
      config_(config),
      stall_rng_(config.concurrency.stall_seed) {
  const int nodes = std::max(1, config_.nodes);
  const int cpus_per_node = std::max(1, config_.cpus / nodes);
  for (int n = 0; n < nodes; ++n) {
    node_cpus_.push_back(std::make_unique<sim::Resource>(
        env_, cpus_per_node, "node-" + std::to_string(n) + "-cpus"));
  }
  table_last_writer_.assign(
      static_cast<size_t>(engine_.schema().table_count()), -1);
  transaction_slots_ = std::make_unique<sim::Resource>(
      env_, config_.concurrency.max_concurrent_transactions, "txn-slots");
  batch_gate_ = std::make_unique<sim::Resource>(
      env_, config_.batch_gate_slots, "batch-gate");
  const core::QueryPolicy query = config_.query.normalized();
  interactive_lane_ = std::make_unique<sim::Resource>(
      env_, query.interactive_slots, "query-interactive");
  batch_lane_ =
      std::make_unique<sim::Resource>(env_, query.batch_slots, "query-batch");
  const int table_count = engine_.schema().table_count();
  itl_.reserve(static_cast<size_t>(table_count));
  for (int t = 0; t < table_count; ++t) {
    itl_.push_back(std::make_unique<sim::Resource>(
        env_, config_.concurrency.itl_slots_per_table,
        "itl-" + engine_.schema().table(static_cast<uint32_t>(t)).name));
  }
  devices_.reserve(static_cast<size_t>(config_.device_layout.physical_devices));
  for (int d = 0; d < config_.device_layout.physical_devices; ++d) {
    devices_.push_back(std::make_unique<sim::Resource>(
        env_, 1, "raid-" + std::to_string(d)));
  }
}

SimServer::LogGroupDecision SimServer::join_log_group() {
  LogGroupDecision decision;
  decision.leader = true;
  if (config_.commit_window <= 0) return decision;
  const Nanos now = env_.now();
  if (now < log_group_close_ && log_group_members_ < config_.max_group_commits) {
    ++log_group_members_;
    decision.leader = false;
    decision.flush_eta = log_group_eta_;
    return decision;
  }
  // Lead a new group. The window is only held open when another session
  // holds a transaction (someone who could commit into it) — the lone
  // loader's fast path, matching WriteAheadLog's single-transaction check.
  const int64_t open_transactions =
      transaction_slots_->capacity() - transaction_slots_->available();
  decision.window_wait = open_transactions > 1 ? config_.commit_window : 0;
  log_group_members_ = 1;
  log_group_close_ = now + decision.window_wait;
  log_group_eta_ =
      log_group_close_ + config_.costs.log_flush_time(/*bytes=*/0);
  decision.flush_eta = log_group_eta_;
  return decision;
}

void SimServer::admit_query(bool interactive) {
  if (interactive) {
    interactive_lane_->acquire();
    return;
  }
  // Batch yields: wait (virtual time) until no interactive query is running
  // or queued, polling at a coarse tick — the sim analogue of the real
  // scheduler's condition-variable handshake.
  bool yielded = false;
  while (config_.query.batch_yields_to_interactive &&
         (interactive_lane_->available() < interactive_lane_->capacity() ||
          interactive_lane_->queue_depth() > 0)) {
    if (!yielded) {
      yielded = true;
      ++batch_yields_;
    }
    env_.delay(kMillisecond);
  }
  batch_lane_->acquire();
}

void SimServer::release_query(bool interactive) {
  if (interactive) {
    interactive_lane_->release();
  } else {
    batch_lane_->release();
  }
}

core::QueryStats SimServer::query_lane_stats() const {
  core::QueryStats stats;
  stats.interactive.gate = gate_stats_from(*interactive_lane_);
  stats.interactive.queue_depth = interactive_lane_->queue_depth();
  stats.batch.gate = gate_stats_from(*batch_lane_);
  stats.batch.queue_depth = batch_lane_->queue_depth();
  stats.batch_yields = batch_yields_;
  return stats;
}

db::ConcurrencyStats SimServer::concurrency_stats() const {
  db::ConcurrencyStats stats;
  stats.transaction_gate = gate_stats_from(*transaction_slots_);
  for (const auto& itl : itl_) stats.itl += gate_stats_from(*itl);
  return stats;
}

int64_t SimServer::note_table_writer(uint32_t table_id, int node,
                                     int64_t pages_touched) {
  if (node_count() == 1) return 0;
  int& last = table_last_writer_[table_id];
  const bool transfer = last >= 0 && last != node;
  last = node;
  return transfer ? pages_touched : 0;
}

Status SimServer::update_policies(const db::PolicyPatch& patch) {
  if (patch.commit_window.has_value() && *patch.commit_window < 0) {
    return Status(ErrorCode::kInvalidArgument,
                  "update_policies: commit_window must be >= 0");
  }
  if (patch.max_group_commits.has_value() && *patch.max_group_commits < 1) {
    return Status(ErrorCode::kInvalidArgument,
                  "update_policies: max_group_commits must be >= 1");
  }
  if (patch.transaction_slots.has_value() && *patch.transaction_slots < 1) {
    return Status(ErrorCode::kInvalidArgument,
                  "update_policies: transaction_slots must be >= 1");
  }
  if (patch.itl_slots_per_table.has_value() && *patch.itl_slots_per_table < 1) {
    return Status(ErrorCode::kInvalidArgument,
                  "update_policies: itl_slots_per_table must be >= 1");
  }
  if (patch.extent_assignment.has_value()) {
    // The embedded engine places rows even in sim mode; let it apply (and
    // validate) the placement flip, but keep the sim-owned knobs out of the
    // forwarded patch.
    db::PolicyPatch placement;
    placement.extent_assignment = patch.extent_assignment;
    const Status status = engine_.update_policies(placement);
    if (!status.is_ok()) return status;
  }
  if (patch.commit_window.has_value()) {
    config_.commit_window = *patch.commit_window;
  }
  if (patch.max_group_commits.has_value()) {
    config_.max_group_commits = *patch.max_group_commits;
  }
  if (patch.transaction_slots.has_value()) {
    config_.concurrency.max_concurrent_transactions =
        static_cast<int>(*patch.transaction_slots);
    transaction_slots_->set_capacity(*patch.transaction_slots);
  }
  if (patch.itl_slots_per_table.has_value()) {
    config_.concurrency.itl_slots_per_table =
        static_cast<int>(*patch.itl_slots_per_table);
    for (auto& itl : itl_) itl->set_capacity(*patch.itl_slots_per_table);
  }
  return Status::ok();
}

db::EngineStats SimControlPlane::stats() const {
  db::EngineStats stats = server_.engine().stats();
  // Overlay the surfaces the sim models itself: admission gates, query
  // lanes, and the live commit/slot policy values, which live in SimServer
  // (the engine runs with a zero window and ungated in sim mode).
  stats.concurrency = server_.concurrency_stats();
  stats.query = server_.query_lane_stats();
  const ServerConfig& config = server_.config();
  stats.policies.commit_window = config.commit_window;
  stats.policies.max_group_commits = config.max_group_commits;
  stats.policies.transaction_slots =
      config.concurrency.max_concurrent_transactions;
  stats.policies.itl_slots_per_table = config.concurrency.itl_slots_per_table;
  return stats;
}

Status SimControlPlane::apply(const db::PolicyPatch& patch) {
  return server_.update_policies(patch);
}

}  // namespace sky::client
