#include "client/sim_session.h"

#include <algorithm>

namespace sky::client {

SimSession::SimSession(SimServer& server)
    : server_(server),
      node_(server.assign_node()),
      start_time_(server.env().now()) {}

SimSession::~SimSession() {
  if (txn_.has_value()) {
    const Status status = server_.engine().rollback(*txn_);
    (void)status;
    server_.transaction_slots().release();
  }
}

Result<uint32_t> SimSession::prepare_insert(std::string_view table_name) {
  return server_.engine().table_id(table_name);
}

uint64_t SimSession::ensure_transaction() {
  if (!txn_.has_value()) {
    // The concurrent-transaction limit: queue for a slot in virtual time.
    const Nanos before = server_.env().now();
    server_.transaction_slots().acquire();
    const Nanos waited = server_.env().now() - before;
    stats_.lock_wait_time += waited;
    stats_.txn_slot_wait_time += waited;
    txn_ = server_.engine().begin_transaction();
  }
  return *txn_;
}

void SimSession::charge_io(const storage::IoTally& io) {
  const CostModel& costs = server_.costs();
  for (int role = 0; role < storage::kIoRoleCount; ++role) {
    const int64_t writes = io.pages_written[static_cast<size_t>(role)];
    const int64_t reads = io.pages_read[static_cast<size_t>(role)];
    if (writes == 0 && reads == 0) continue;
    const Nanos duration =
        writes * costs.per_page_write + reads * costs.per_page_read;
    sim::Resource& device =
        server_.device_for(static_cast<storage::IoRole>(role));
    const Nanos before = server_.env().now();
    device.acquire();
    stats_.io_time += server_.env().now() - before;
    server_.env().delay(duration);
    stats_.io_time += duration;
    device.release();
  }
  if (io.log_bytes_flushed > 0) {
    charge_log_flush(io.log_bytes_flushed);
  }
}

void SimSession::charge_log_flush(int64_t bytes) {
  const CostModel& costs = server_.costs();
  sim::Environment& env = server_.env();
  const SimServer::LogGroupDecision decision = server_.join_log_group();
  sim::Resource& device = server_.device_for(storage::IoRole::kLog);
  if (decision.leader) {
    if (decision.window_wait > 0) {
      // The coalescing window: hold the device write open so commits from
      // other sessions fold into this flush.
      env.delay(decision.window_wait);
      stats_.commit_leader_wait += decision.window_wait;
    }
    ++stats_.commit_flushes_led;
    const Nanos duration = costs.log_flush_time(bytes);
    const Nanos before = env.now();
    device.acquire();
    stats_.io_time += env.now() - before;
    env.delay(duration);
    stats_.io_time += duration;
    device.release();
    return;
  }
  // Ride the in-flight group flush: the ack arrives once the group's device
  // write lands; only the marginal bytes are ours to pay on the device.
  ++stats_.commit_piggybacks;
  if (decision.flush_eta > env.now()) {
    const Nanos wait = decision.flush_eta - env.now();
    env.delay(wait);
    stats_.io_time += wait;
  }
  const Nanos duration = costs.log_bytes_time(bytes);
  if (duration > 0) {
    const Nanos before = env.now();
    device.acquire();
    stats_.io_time += env.now() - before;
    env.delay(duration);
    stats_.io_time += duration;
    device.release();
  }
}

db::BatchResult SimSession::server_call(uint32_t table,
                                        std::span<const db::Row> rows) {
  const CostModel& costs = server_.costs();
  // Client-side marshalling: per-call overhead plus array binding that grows
  // with the batch size.
  const auto n = static_cast<int64_t>(rows.size());
  const Nanos marshal =
      costs.client_call_overhead +
      n * n * costs.client_marshal_per_row_per_batchrow;
  return server_visit(table, marshal, /*columnar=*/false,
                      [&](uint64_t txn) {
                        return server_.engine().insert_batch(txn, table, rows);
                      });
}

db::BatchResult SimSession::server_visit(
    uint32_t table, Nanos marshal, bool columnar,
    const std::function<db::BatchResult(uint64_t)>& engine_call) {
  sim::Environment& env = server_.env();
  const CostModel& costs = server_.costs();
  const uint64_t txn = ensure_transaction();

  env.delay(marshal);
  stats_.client_time += marshal;

  // Request wire latency.
  env.delay(costs.wire_latency);
  stats_.network_time += costs.wire_latency;

  // Instance-wide concurrent-transaction gate, then the per-table ITL slot.
  // Queueing at either marks the batch as lock-contended.
  sim::Resource& gate = server_.batch_gate();
  const Nanos gate_before = env.now();
  const int64_t gate_depth = gate.queue_depth();
  const bool gate_queued = !gate.try_acquire();
  if (gate_queued) gate.acquire();
  stats_.lock_wait_time += env.now() - gate_before;

  sim::Resource& itl = server_.itl(table);
  const Nanos itl_before = env.now();
  bool itl_queued = !itl.try_acquire();
  if (itl_queued) itl.acquire();
  const Nanos itl_waited = env.now() - itl_before;
  stats_.lock_wait_time += itl_waited;
  stats_.itl_wait_time += itl_waited;
  itl_queued = itl_queued || gate_queued;

  // A CPU on this session's cluster node runs the call.
  sim::Resource& cpus = server_.node_cpus(node_);
  const Nanos cpu_before = env.now();
  cpus.acquire();
  stats_.server_time += env.now() - cpu_before;

  const db::BatchResult result = engine_call(txn);

  Nanos server_time = costs.server_call_overhead +
                      costs.server_cpu_time(result.costs, columnar);

  // Cluster hosting: if another node last wrote this table, its current
  // blocks ship across the interconnect before this insert proceeds.
  if (server_.node_count() > 1 && result.rows_applied > 0) {
    const int64_t hot_pages = 1 + result.costs.heap_pages_opened +
                              result.costs.index_leaf_splits;
    const int64_t shipped =
        server_.note_table_writer(table, node_, hot_pages);
    server_time += shipped * server_.config().cache_fusion_per_page;
  }
  if (itl_queued) {
    // Lock-management escalation grows with how deep the lock queue was:
    // longer waiter chains mean more lock-manager work per grant.
    const double depth_factor =
        static_cast<double>(1 + (gate_queued ? gate_depth : 0));
    server_time += static_cast<Nanos>(
        static_cast<double>(server_time) *
        server_.config().concurrency.lock_escalation_factor * depth_factor);
  }
  env.delay(server_time);
  stats_.server_time += server_time;

  cpus.release();
  itl.release();
  gate.release();

  // Device I/O implied by the call (dirty evictions, DBWR flushes, reads).
  charge_io(result.costs.io);

  // Occasional long stall when lock queues formed (observed "very
  // infrequent ... stalls and dramatic degradation", section 5.4).
  if (itl_queued && server_.draw_stall()) {
    env.delay(server_.config().concurrency.stall_duration);
    stats_.stall_time += server_.config().concurrency.stall_duration;
  }

  // Reply wire latency.
  env.delay(costs.wire_latency);
  stats_.network_time += costs.wire_latency;
  return result;
}

BatchOutcome SimSession::execute_batch(uint32_t table,
                                       std::span<const db::Row> rows) {
  const db::BatchResult result = server_call(table, rows);
  ++stats_.db_calls;
  ++stats_.batch_calls;
  stats_.rows_sent += static_cast<int64_t>(rows.size());
  stats_.rows_applied += result.rows_applied;
  if (result.error.has_value()) ++stats_.failed_calls;
  return BatchOutcome{result.rows_applied, result.error};
}

BatchOutcome SimSession::execute_column_batch(uint32_t table,
                                              const db::ColumnBatch& batch,
                                              size_t first, size_t count) {
  const CostModel& costs = server_.costs();
  // Column batches bind each column as one contiguous array: marshalling is
  // linear in rows (no per-row statement re-bind), so no n^2 term.
  const Nanos marshal =
      costs.client_call_overhead +
      static_cast<int64_t>(count) * costs.client_marshal_per_row_columnar;
  const db::BatchResult result =
      server_visit(table, marshal, /*columnar=*/true, [&](uint64_t txn) {
        return server_.engine().insert_column_batch(txn, table, batch, first,
                                                    count);
      });
  ++stats_.db_calls;
  ++stats_.batch_calls;
  stats_.rows_sent += static_cast<int64_t>(count);
  stats_.rows_applied += result.rows_applied;
  if (result.error.has_value()) ++stats_.failed_calls;
  return BatchOutcome{result.rows_applied, result.error};
}

Status SimSession::execute_single(uint32_t table, const db::Row& row) {
  const db::BatchResult result =
      server_call(table, std::span<const db::Row>(&row, 1));
  ++stats_.db_calls;
  ++stats_.single_calls;
  stats_.rows_sent += 1;
  if (result.error.has_value()) {
    ++stats_.failed_calls;
    return result.error->status;
  }
  stats_.rows_applied += 1;
  return ok_status();
}

Status SimSession::commit() {
  if (!txn_.has_value()) return ok_status();
  sim::Environment& env = server_.env();
  const CostModel& costs = server_.costs();

  env.delay(costs.client_call_overhead + costs.wire_latency);
  stats_.client_time += costs.client_call_overhead;
  stats_.network_time += costs.wire_latency;

  sim::Resource& cpus = server_.node_cpus(node_);
  const Nanos cpu_before = env.now();
  cpus.acquire();
  stats_.server_time += env.now() - cpu_before;
  const auto result = server_.engine().commit(*txn_);
  env.delay(costs.server_call_overhead);
  stats_.server_time += costs.server_call_overhead;
  cpus.release();

  if (result.is_ok()) {
    charge_io(result->costs.io);
  }

  env.delay(costs.wire_latency);
  stats_.network_time += costs.wire_latency;

  txn_.reset();
  server_.transaction_slots().release();
  ++stats_.db_calls;
  ++stats_.commits;
  return result.status();
}

void SimSession::client_compute(Nanos duration) {
  server_.env().delay(duration);
  stats_.client_time += duration;
}

void SimSession::note_buffered_rows(int64_t rows, int64_t footprint_bytes,
                                    bool columnar) {
  const CostModel& costs = server_.costs();
  const bool paging = footprint_bytes > costs.client_array_memory_bytes;
  const Nanos per_row = paging ? costs.per_paged_row
                               : (columnar ? costs.per_buffered_row_columnar
                                           : costs.per_buffered_row);
  const Nanos duration = rows * per_row;
  server_.env().delay(duration);
  stats_.client_time += duration;
}

Nanos SimSession::now() const { return server_.env().now() - start_time_; }

}  // namespace sky::client
