#include "client/session.h"

#include <algorithm>
#include <chrono>
#include <vector>

namespace sky::client {

BatchOutcome Session::execute_column_batch(uint32_t table,
                                           const db::ColumnBatch& batch,
                                           size_t first, size_t count) {
  // Default bridge: materialize the slice and send it as a row batch. One
  // database call either way, so call/commit accounting and (for simulation
  // sessions) server pricing are unchanged.
  if (first > batch.size()) first = batch.size();
  count = std::min(count, batch.size() - first);
  std::vector<db::Row> rows;
  rows.reserve(count);
  for (size_t i = 0; i < count; ++i) rows.push_back(batch.row(first + i));
  return execute_batch(table, rows);
}

namespace {
Nanos real_now() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

DirectSession::DirectSession(db::Engine& engine)
    : engine_(engine), start_real_(real_now()) {}

DirectSession::~DirectSession() {
  // An abandoned open transaction is rolled back (connection close).
  if (txn_.has_value()) {
    const Status status = engine_.rollback(*txn_);
    (void)status;
  }
}

uint64_t DirectSession::ensure_transaction() {
  if (!txn_.has_value()) {
    db::OpCosts costs;
    txn_ = engine_.begin_transaction(&costs);
    stats_.txn_slot_wait_time += costs.txn_slot_wait_ns;
    stats_.lock_wait_time += costs.lock_wait_ns;
  }
  return *txn_;
}

void DirectSession::absorb_wait_costs(const db::OpCosts& costs) {
  stats_.lock_wait_time += costs.lock_wait_ns;
  stats_.txn_slot_wait_time += costs.txn_slot_wait_ns;
  stats_.itl_wait_time += costs.itl_wait_ns;
  stats_.stall_time += costs.stall_ns;
  stats_.query_lane_wait_time += costs.query_lane_wait_ns;
  stats_.absorb_spatial_costs(costs);
}

Result<uint32_t> DirectSession::prepare_insert(std::string_view table_name) {
  return engine_.table_id(table_name);
}

BatchOutcome DirectSession::execute_batch(uint32_t table,
                                          std::span<const db::Row> rows) {
  const uint64_t txn = ensure_transaction();
  const db::BatchResult result = engine_.insert_batch(txn, table, rows);
  ++stats_.db_calls;
  ++stats_.batch_calls;
  stats_.rows_sent += static_cast<int64_t>(rows.size());
  stats_.rows_applied += result.rows_applied;
  absorb_wait_costs(result.costs);
  if (result.error.has_value()) ++stats_.failed_calls;
  return BatchOutcome{result.rows_applied, result.error};
}

BatchOutcome DirectSession::execute_column_batch(uint32_t table,
                                                 const db::ColumnBatch& batch,
                                                 size_t first, size_t count) {
  const uint64_t txn = ensure_transaction();
  const db::BatchResult result =
      engine_.insert_column_batch(txn, table, batch, first, count);
  ++stats_.db_calls;
  ++stats_.batch_calls;
  if (first > batch.size()) first = batch.size();
  stats_.rows_sent +=
      static_cast<int64_t>(std::min(count, batch.size() - first));
  stats_.rows_applied += result.rows_applied;
  absorb_wait_costs(result.costs);
  if (result.error.has_value()) ++stats_.failed_calls;
  return BatchOutcome{result.rows_applied, result.error};
}

Status DirectSession::execute_single(uint32_t table, const db::Row& row) {
  const uint64_t txn = ensure_transaction();
  db::OpCosts costs;
  const Status status = engine_.insert_row(txn, table, row, costs);
  ++stats_.db_calls;
  ++stats_.single_calls;
  stats_.rows_sent += 1;
  absorb_wait_costs(costs);
  if (status.is_ok()) {
    stats_.rows_applied += 1;
  } else {
    ++stats_.failed_calls;
  }
  return status;
}

Status DirectSession::commit() {
  if (!txn_.has_value()) return ok_status();
  const auto result = engine_.commit(*txn_);
  txn_.reset();
  ++stats_.db_calls;
  ++stats_.commits;
  if (result.is_ok()) {
    absorb_wait_costs(result->costs);
    stats_.commit_flushes_led += result->costs.commit_flushes_led;
    stats_.commit_piggybacks += result->costs.commit_piggybacks;
    stats_.commit_leader_wait += result->costs.commit_leader_wait_ns;
  }
  return result.status();
}

void DirectSession::client_compute(Nanos duration) {
  // Real compute already consumed real time; nothing to charge.
  (void)duration;
}

void DirectSession::note_buffered_rows(int64_t rows, int64_t footprint_bytes,
                                       bool columnar) {
  (void)rows;
  (void)footprint_bytes;
  (void)columnar;
}

Nanos DirectSession::now() const { return real_now() - start_real_; }

}  // namespace sky::client
