// Client session: the JDBC-like surface the loaders are written against.
//
// The same loader code (core::BulkLoader, core::NonBulkLoader, the parallel
// coordinator) runs against either implementation:
//   * DirectSession — real time, real threads, wraps the engine directly;
//     used by tests and examples.
//   * SimSession    — virtual time on a shared SimServer (8 CPUs,
//     transaction slots, per-table ITL slots, devices); used by benchmarks
//     to regenerate the paper's figures deterministically.
//
// Batch semantics are the JDBC core API's (paper section 4.3): execute_batch
// applies rows in order; on the first failure earlier rows stay applied, the
// failing index is reported, and the rest of the batch is discarded and
// cannot be re-applied.
//
// Transactions: a session carries at most one open transaction, opened
// lazily by the first insert and closed by commit() — matching the loader's
// long-running-transaction, infrequent-commit usage (section 4.5.2).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>

#include "common/status.h"
#include "common/units.h"
#include "db/engine.h"

namespace sky::client {

struct BatchOutcome {
  int64_t applied = 0;
  std::optional<db::BatchError> error;
};

struct SessionStats {
  int64_t db_calls = 0;          // round trips: batches + singles + commits
  int64_t batch_calls = 0;
  int64_t single_calls = 0;
  int64_t commits = 0;
  int64_t rows_sent = 0;
  int64_t rows_applied = 0;
  int64_t failed_calls = 0;      // calls that reported an error
  // Time decomposition. Simulation sessions fill all of these from the
  // server model; real sessions fill the wait fields from OpCosts (real
  // nanoseconds blocked on engine latches and admission gates).
  Nanos client_time = 0;
  Nanos network_time = 0;
  Nanos server_time = 0;
  Nanos lock_wait_time = 0;
  Nanos io_time = 0;
  Nanos stall_time = 0;
  // Admission-gate breakdown (subsets of lock_wait_time except stall_time,
  // which is its own bucket): instance-wide transaction-slot waits vs.
  // per-table ITL waits. Same field names in both execution modes, so
  // ParallelLoadReport reads one schema.
  Nanos txn_slot_wait_time = 0;
  Nanos itl_wait_time = 0;
  // Query-lane admission wait (db/query_scheduler.h): time spent queued on
  // the interactive/batch lane gates. Not a subset of lock_wait_time — lane
  // queueing is scheduling policy, not latch contention.
  Nanos query_lane_wait_time = 0;
  // Group-commit accounting: commits where this session led the covering
  // log-device write vs. rode another session's flush, and the
  // commit-coalescing window time it paid as leader. Filled by both
  // backends (real runs from OpCosts, simulation from the server's
  // log-device model).
  int64_t commit_flushes_led = 0;
  int64_t commit_piggybacks = 0;
  Nanos commit_leader_wait = 0;
  // Spatial-operator totals (db/spatial.h, OpCosts spatial counters): rows
  // pulled through cone probes and zone windows, pairs reaching the exact
  // angular-distance test, and pairs that matched.
  int64_t zone_scan_rows = 0;
  int64_t xmatch_candidates = 0;
  int64_t xmatch_pairs = 0;
  // Fold one spatial operation's OpCosts tallies into these totals (shared
  // by DirectSession internals and query-side callers that run spatial
  // operators against an engine directly).
  void absorb_spatial_costs(const db::OpCosts& costs) {
    zone_scan_rows += costs.zone_scan_rows;
    xmatch_candidates += costs.xmatch_candidates;
    xmatch_pairs += costs.xmatch_pairs;
  }
};

class Session {
 public:
  virtual ~Session() = default;

  // Resolve and validate a destination table once (PreparedStatement
  // creation). Returned handle is the engine table id.
  virtual Result<uint32_t> prepare_insert(std::string_view table_name) = 0;

  // Send a batch (one database call).
  virtual BatchOutcome execute_batch(uint32_t table,
                                     std::span<const db::Row> rows) = 0;
  // Send rows [first, first + count) of a columnar batch (one database
  // call) with execute_batch's exact JDBC semantics; the error row index is
  // relative to `first`. The default bridges to execute_batch by
  // materializing the rows, so simulation sessions price it identically to
  // the row batch; DirectSession overrides it with the engine's columnar
  // fast path (db::Engine::insert_column_batch).
  virtual BatchOutcome execute_column_batch(uint32_t table,
                                            const db::ColumnBatch& batch,
                                            size_t first, size_t count);
  // Send a single-row insert (one database call) — the non-bulk baseline.
  virtual Status execute_single(uint32_t table, const db::Row& row) = 0;

  // Commit the open transaction (no-op success if none).
  virtual Status commit() = 0;

  // Charge client-side computation (parse / validate / transform / htmid).
  // Real sessions ignore this — their compute already took real time.
  virtual void client_compute(Nanos duration) = 0;

  // Report array-set buffering activity so the client memory model can
  // charge paging when the buffered footprint exceeds client memory.
  // `columnar` marks arena-buffer appends (cheaper per row: no Row/Value
  // construction), which simulation prices at the columnar rate.
  virtual void note_buffered_rows(int64_t rows, int64_t footprint_bytes,
                                  bool columnar = false) = 0;

  // Elapsed time on this session's clock (virtual or real).
  virtual Nanos now() const = 0;

  virtual const SessionStats& stats() const = 0;
};

// Real-time session over a shared engine. Thread-safe usage model: one
// session per loader thread (sessions are not shared across threads; the
// engine itself is thread-safe).
class DirectSession final : public Session {
 public:
  explicit DirectSession(db::Engine& engine);
  ~DirectSession() override;

  Result<uint32_t> prepare_insert(std::string_view table_name) override;
  BatchOutcome execute_batch(uint32_t table,
                             std::span<const db::Row> rows) override;
  BatchOutcome execute_column_batch(uint32_t table,
                                    const db::ColumnBatch& batch, size_t first,
                                    size_t count) override;
  Status execute_single(uint32_t table, const db::Row& row) override;
  Status commit() override;
  void client_compute(Nanos duration) override;
  void note_buffered_rows(int64_t rows, int64_t footprint_bytes,
                          bool columnar) override;
  Nanos now() const override;
  const SessionStats& stats() const override { return stats_; }

 private:
  uint64_t ensure_transaction();
  // Fold one call's gate/latch waits (OpCosts) into the session stats.
  void absorb_wait_costs(const db::OpCosts& costs);

  db::Engine& engine_;
  std::optional<uint64_t> txn_;
  SessionStats stats_;
  Nanos start_real_ = 0;
};

}  // namespace sky::client
