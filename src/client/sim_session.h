// SimSession: a loader's connection to the SimServer, in virtual time.
//
// Must be used from within a sim::Environment process. Each database call
// walks the full path: client marshalling -> wire -> transaction/ITL slots
// -> server CPU -> real engine work -> priced server time -> device I/O ->
// reply. The loader code on top is identical to real mode.
#pragma once

#include <functional>

#include "client/session.h"
#include "client/sim_server.h"

namespace sky::client {

class SimSession final : public Session {
 public:
  explicit SimSession(SimServer& server);
  ~SimSession() override;

  Result<uint32_t> prepare_insert(std::string_view table_name) override;
  BatchOutcome execute_batch(uint32_t table,
                             std::span<const db::Row> rows) override;
  // Columnar batches walk the same server path but price the marshalling
  // linearly (array binds) and the server execute at the array-insert
  // residual rate — see CostModel's columnar constants.
  BatchOutcome execute_column_batch(uint32_t table,
                                    const db::ColumnBatch& batch, size_t first,
                                    size_t count) override;
  Status execute_single(uint32_t table, const db::Row& row) override;
  Status commit() override;
  void client_compute(Nanos duration) override;
  void note_buffered_rows(int64_t rows, int64_t footprint_bytes,
                          bool columnar) override;
  Nanos now() const override;
  const SessionStats& stats() const override { return stats_; }

 private:
  uint64_t ensure_transaction();
  // Charge device time for the call's I/O tally (queues on each involved
  // physical device in turn).
  void charge_io(const storage::IoTally& io);
  // Charge a commit's redo flush through the server's log-device group
  // model (lead a flush — window wait included — or ride one in flight).
  void charge_log_flush(int64_t bytes);
  // One server visit: slots -> CPU -> engine call -> priced delay -> I/O.
  db::BatchResult server_call(uint32_t table, std::span<const db::Row> rows);
  // The shared visit body: charges `marshal` client-side, walks the gates,
  // runs `engine_call` on a node CPU, prices its OpCosts (columnar rate when
  // `columnar`), then I/O and the reply.
  db::BatchResult server_visit(
      uint32_t table, Nanos marshal, bool columnar,
      const std::function<db::BatchResult(uint64_t)>& engine_call);

  SimServer& server_;
  int node_ = 0;  // cluster node this session is attached to
  std::optional<uint64_t> txn_;
  SessionStats stats_;
  Nanos start_time_ = 0;
};

}  // namespace sky::client
