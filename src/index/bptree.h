// In-memory B+tree over memcomparable byte-string keys.
//
// Backs every index in the engine: primary keys (unique), the single-integer
// secondary index and the three-float composite index from the paper's
// Fig. 8 study. Secondary (non-unique) indexes are made unique by the table
// layer appending the 8-byte row id to the encoded key, as real systems do.
//
// Leaves are chained for range scans (cone searches over htmid ranges).
// bulk_build() constructs a tree from sorted input without per-key descent;
// benchmarks use it to preload multi-"gigabyte" databases (Fig. 9).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace sky::index {

class BPlusTree {
 public:
  // `fanout` = max entries per node (leaf and internal alike). 64 keeps
  // height realistic without tuning; must be >= 4.
  explicit BPlusTree(int fanout = 64);
  ~BPlusTree();

  BPlusTree(BPlusTree&&) noexcept;
  BPlusTree& operator=(BPlusTree&&) noexcept;
  BPlusTree(const BPlusTree&) = delete;
  BPlusTree& operator=(const BPlusTree&) = delete;

  // Page-level touch information for one insert, consumed by the buffer
  // cache model: presorted keys keep hitting the same (rightmost) leaf while
  // random keys scatter across leaves — the mechanism behind the paper's
  // presort guideline (section 4.5.4).
  struct TouchInfo {
    uint32_t leaf_page_id = 0;  // stable id of the leaf that absorbed the key
    int nodes_visited = 0;      // descent length (== height)
    bool leaf_split = false;    // a new leaf page was created
  };

  // Insert a unique key. Returns kAlreadyExists (a primary-key violation at
  // the table layer) if the key is present.
  Status insert(std::string_view key, uint64_t value,
                TouchInfo* touch = nullptr);

  bool contains(std::string_view key) const;
  std::optional<uint64_t> lookup(std::string_view key) const;
  // Lookup that also reports the leaf page examined (FK parent checks feed
  // this to the buffer-cache model as a read touch).
  std::optional<uint64_t> lookup_with_touch(std::string_view key,
                                            TouchInfo* touch) const;

  // Remove a key (transaction rollback path). Returns true if removed.
  // Underflowed nodes are not rebalanced — deletions here only occur when a
  // failed batch is rolled back, which is rare and small; validate() accepts
  // sparse nodes.
  bool erase(std::string_view key);

  // Forward iterator positioned by seek(); valid() goes false at the end.
  class Iterator {
   public:
    bool valid() const;
    std::string_view key() const;
    uint64_t value() const;
    void next();

   private:
    friend class BPlusTree;
    const void* leaf_ = nullptr;  // LeafNode*
    size_t pos_ = 0;
  };

  // First entry with key >= `key`.
  Iterator seek(std::string_view key) const;
  Iterator begin() const;

  // All values whose key starts with `prefix` (non-unique index probes).
  std::vector<uint64_t> prefix_lookup(std::string_view prefix) const;

  // Entries with first_key <= key < last_key (half-open).
  std::vector<uint64_t> range_lookup(std::string_view first_key,
                                     std::string_view last_key) const;
  // Entries with first_key <= key, to the end of the tree.
  std::vector<uint64_t> range_lookup_unbounded(
      std::string_view first_key) const;

  size_t size() const { return size_; }
  int height() const { return height_; }
  size_t node_count() const { return node_count_; }
  int fanout() const { return fanout_; }
  // Approximate bytes held by keys + values (cost-model hook).
  size_t approx_bytes() const { return approx_bytes_; }

  // Build from strictly-increasing sorted (key, value) pairs. Replaces the
  // current contents. Returns kInvalidArgument if input is not strictly
  // sorted.
  Status bulk_build(std::vector<std::pair<std::string, uint64_t>> sorted);

  // Page-level touch summary for one sorted-run insert (the batch analogue
  // of TouchInfo): feeds the same buffer-cache / cost-model hooks.
  struct RunTouch {
    int nodes_visited = 0;  // distinct nodes walked by the merge descent
    int leaf_splits = 0;    // new leaf pages created
    // Leaves that absorbed at least one key (new leaves included), in tree
    // order — each is one dirty index page.
    std::vector<uint32_t> touched_leaf_ids;
  };

  // Incremental batch insert of a strictly-increasing sorted run: one merge
  // descent partitions the run across the tree and each touched leaf absorbs
  // its slice in a single merge (multi-way splitting as needed), replacing N
  // root-to-leaf descents with ~O(touched nodes + N) work. The incremental
  // extension of bulk_build() — the tree may be non-empty and keeps its
  // existing contents.
  //
  // Preconditions: `run` strictly sorted and disjoint from the current
  // contents (the engine verifies both under the exclusive index latch).
  // Violations return kInvalidArgument (unsorted: tree unmodified) or
  // kAlreadyExists (duplicate: leaves merged before the offending key keep
  // their slices — the tree stays structurally valid, so callers treat it
  // as a logic error, not a recovery point).
  Status insert_sorted_run(std::vector<std::pair<std::string, uint64_t>> run,
                           RunTouch* touch = nullptr);

  // Structural invariant check for tests: key ordering within and across
  // nodes, separator correctness, leaf chain completeness, size agreement.
  Status validate() const;

 private:
  struct LeafNode;
  struct InternalNode;
  struct Node;

  struct SplitResult;

  Status insert_recursive(Node* node, std::string_view key, uint64_t value,
                          int depth, std::optional<SplitResult>& split,
                          TouchInfo* touch);
  // Merge run[begin, end) into the subtree at `node`; new right siblings
  // (with their separators) are appended to `pieces` for the parent to
  // splice in after this child.
  Status insert_run_recursive(Node* node,
                              std::vector<std::pair<std::string, uint64_t>>& run,
                              size_t begin, size_t end,
                              std::vector<SplitResult>& pieces,
                              RunTouch* touch);
  // Split an over-full internal node into <= fanout chunks; the first chunk
  // stays in `node`, the rest are emitted as (promoted key, node) pieces.
  void multi_split_internal(InternalNode* node,
                            std::vector<SplitResult>& pieces);
  const LeafNode* find_leaf(std::string_view key) const;

  int fanout_;
  std::unique_ptr<Node> root_;
  size_t size_ = 0;
  int height_ = 1;
  size_t node_count_ = 1;
  size_t approx_bytes_ = 0;
  uint32_t next_page_id_ = 0;
};

}  // namespace sky::index
