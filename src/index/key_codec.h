// Order-preserving ("memcomparable") key encoding.
//
// Every index in the engine — primary keys, secondary single-attribute
// indexes, and composite indexes such as the paper's three-float-attribute
// index (Fig. 8) — is a B+tree over byte strings. Typed column values are
// encoded so that unsigned lexicographic comparison of the encodings matches
// the typed comparison of the values, including composite keys compared
// field-by-field.
//
// Field layout: a one-byte tag (0x00 = NULL, 0x01 = present) followed by the
// payload. NULLs sort before all values. Integers are big-endian with the
// sign bit flipped; doubles use the standard total-order transform (flip all
// bits when negative, flip only the sign bit otherwise); strings escape
// embedded 0x00 as {0x00, 0xFF} and end with the terminator {0x00, 0x01}, so
// no string encoding is a prefix of another and prefix ordering is preserved.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "common/status.h"

namespace sky::index {

class KeyEncoder {
 public:
  KeyEncoder& append_null();
  KeyEncoder& append_int32(int32_t value);
  KeyEncoder& append_int64(int64_t value);
  // NaN is rejected upstream (check constraints); here it is encoded above
  // +inf so the tree stays consistent even if one slips through.
  KeyEncoder& append_double(double value);
  KeyEncoder& append_string(std::string_view value);

  const std::string& buffer() const { return buffer_; }
  std::string take() { return std::move(buffer_); }
  void clear() { buffer_.clear(); }

 private:
  std::string buffer_;
};

// Decoder for round-trip tests and diagnostics. Fields must be decoded in
// the same order and with the same types used to encode.
// Smallest encoded key strictly greater than every key having `key` as a
// prefix: increment the last byte (with carry). Returns "" when no such key
// exists (all 0xFF) — callers treat "" as +infinity. Used to turn inclusive
// upper bounds and prefix probes into half-open ranges.
std::string encoded_key_successor(std::string key);

class KeyDecoder {
 public:
  explicit KeyDecoder(std::string_view encoded) : data_(encoded) {}

  // Each decode returns nullopt for a NULL field.
  Result<std::optional<int32_t>> decode_int32();
  Result<std::optional<int64_t>> decode_int64();
  Result<std::optional<double>> decode_double();
  Result<std::optional<std::string>> decode_string();

  bool at_end() const { return pos_ >= data_.size(); }

 private:
  Result<bool> read_tag();  // true = value present, false = NULL
  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace sky::index
