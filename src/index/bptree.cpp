#include "index/bptree.h"

#include <algorithm>
#include <cassert>

namespace sky::index {

struct BPlusTree::Node {
  explicit Node(bool leaf) : is_leaf(leaf) {}
  virtual ~Node() = default;
  const bool is_leaf;
  uint32_t page_id = 0;  // stable identity for the buffer-cache model
};

struct BPlusTree::LeafNode final : Node {
  LeafNode() : Node(true) {}
  std::vector<std::string> keys;
  std::vector<uint64_t> values;
  LeafNode* next = nullptr;
};

struct BPlusTree::InternalNode final : Node {
  InternalNode() : Node(false) {}
  // children.size() == keys.size() + 1; child[i] holds keys in
  // [keys[i-1], keys[i]) with the outer bounds open.
  std::vector<std::string> keys;
  std::vector<std::unique_ptr<Node>> children;
};

struct BPlusTree::SplitResult {
  std::string separator;          // first key of the new right node
  std::unique_ptr<Node> right;
};

namespace {
// Bookkeeping constant: per-entry overhead added to key bytes when tracking
// the approximate index footprint (value + tags + node slack).
constexpr size_t kEntryOverhead = 16;
}  // namespace

BPlusTree::BPlusTree(int fanout)
    : fanout_(fanout), root_(std::make_unique<LeafNode>()) {
  assert(fanout_ >= 4);
}

BPlusTree::~BPlusTree() = default;
BPlusTree::BPlusTree(BPlusTree&&) noexcept = default;
BPlusTree& BPlusTree::operator=(BPlusTree&&) noexcept = default;

Status BPlusTree::insert(std::string_view key, uint64_t value,
                         TouchInfo* touch) {
  std::optional<SplitResult> split;
  SKY_RETURN_IF_ERROR(
      insert_recursive(root_.get(), key, value, 1, split, touch));
  if (split.has_value()) {
    auto new_root = std::make_unique<InternalNode>();
    new_root->page_id = ++next_page_id_;
    new_root->keys.push_back(std::move(split->separator));
    new_root->children.push_back(std::move(root_));
    new_root->children.push_back(std::move(split->right));
    root_ = std::move(new_root);
    ++height_;
    ++node_count_;
  }
  ++size_;
  approx_bytes_ += key.size() + kEntryOverhead;
  return ok_status();
}

Status BPlusTree::insert_recursive(Node* node, std::string_view key,
                                   uint64_t value, int depth,
                                   std::optional<SplitResult>& split,
                                   TouchInfo* touch) {
  if (node->is_leaf) {
    auto* leaf = static_cast<LeafNode*>(node);
    const auto it =
        std::lower_bound(leaf->keys.begin(), leaf->keys.end(), key);
    const auto pos = static_cast<size_t>(it - leaf->keys.begin());
    if (it != leaf->keys.end() && *it == key) {
      return Status(ErrorCode::kAlreadyExists, "duplicate index key");
    }
    if (touch != nullptr) {
      touch->leaf_page_id = leaf->page_id;
      touch->nodes_visited = depth;
      touch->leaf_split = false;
    }
    leaf->keys.insert(it, std::string(key));
    leaf->values.insert(leaf->values.begin() + static_cast<ptrdiff_t>(pos),
                        value);
    if (leaf->keys.size() > static_cast<size_t>(fanout_)) {
      const size_t mid = leaf->keys.size() / 2;
      auto right = std::make_unique<LeafNode>();
      right->page_id = ++next_page_id_;
      right->keys.assign(std::make_move_iterator(leaf->keys.begin() +
                                                 static_cast<ptrdiff_t>(mid)),
                         std::make_move_iterator(leaf->keys.end()));
      right->values.assign(leaf->values.begin() + static_cast<ptrdiff_t>(mid),
                           leaf->values.end());
      leaf->keys.resize(mid);
      leaf->values.resize(mid);
      right->next = leaf->next;
      leaf->next = right.get();
      if (touch != nullptr) {
        touch->leaf_split = true;
        if (pos >= mid) touch->leaf_page_id = right->page_id;
      }
      split = SplitResult{right->keys.front(), std::move(right)};
      ++node_count_;
    }
    return ok_status();
  }

  auto* internal = static_cast<InternalNode*>(node);
  const auto it =
      std::upper_bound(internal->keys.begin(), internal->keys.end(), key);
  const auto child_idx = static_cast<size_t>(it - internal->keys.begin());
  std::optional<SplitResult> child_split;
  SKY_RETURN_IF_ERROR(insert_recursive(internal->children[child_idx].get(),
                                       key, value, depth + 1, child_split,
                                       touch));
  if (child_split.has_value()) {
    internal->keys.insert(internal->keys.begin() +
                              static_cast<ptrdiff_t>(child_idx),
                          std::move(child_split->separator));
    internal->children.insert(
        internal->children.begin() + static_cast<ptrdiff_t>(child_idx) + 1,
        std::move(child_split->right));
    if (internal->children.size() > static_cast<size_t>(fanout_)) {
      const size_t mid = internal->keys.size() / 2;
      auto right = std::make_unique<InternalNode>();
      right->page_id = ++next_page_id_;
      std::string up_key = std::move(internal->keys[mid]);
      right->keys.assign(
          std::make_move_iterator(internal->keys.begin() +
                                  static_cast<ptrdiff_t>(mid) + 1),
          std::make_move_iterator(internal->keys.end()));
      right->children.assign(
          std::make_move_iterator(internal->children.begin() +
                                  static_cast<ptrdiff_t>(mid) + 1),
          std::make_move_iterator(internal->children.end()));
      internal->keys.resize(mid);
      internal->children.resize(mid + 1);
      split = SplitResult{std::move(up_key), std::move(right)};
      ++node_count_;
    }
  }
  return ok_status();
}

const BPlusTree::LeafNode* BPlusTree::find_leaf(std::string_view key) const {
  const Node* node = root_.get();
  while (!node->is_leaf) {
    const auto* internal = static_cast<const InternalNode*>(node);
    const auto it =
        std::upper_bound(internal->keys.begin(), internal->keys.end(), key);
    const auto child_idx = static_cast<size_t>(it - internal->keys.begin());
    node = internal->children[child_idx].get();
  }
  return static_cast<const LeafNode*>(node);
}

bool BPlusTree::contains(std::string_view key) const {
  return lookup(key).has_value();
}

std::optional<uint64_t> BPlusTree::lookup(std::string_view key) const {
  return lookup_with_touch(key, nullptr);
}

std::optional<uint64_t> BPlusTree::lookup_with_touch(std::string_view key,
                                                     TouchInfo* touch) const {
  const LeafNode* leaf = find_leaf(key);
  if (touch != nullptr) {
    touch->leaf_page_id = leaf->page_id;
    touch->nodes_visited = height_;
    touch->leaf_split = false;
  }
  const auto it = std::lower_bound(leaf->keys.begin(), leaf->keys.end(), key);
  if (it != leaf->keys.end() && *it == key) {
    return leaf->values[static_cast<size_t>(it - leaf->keys.begin())];
  }
  return std::nullopt;
}

bool BPlusTree::erase(std::string_view key) {
  // find_leaf is const; we own the tree, so the cast below is safe.
  auto* leaf = const_cast<LeafNode*>(find_leaf(key));
  const auto it = std::lower_bound(leaf->keys.begin(), leaf->keys.end(), key);
  if (it == leaf->keys.end() || *it != key) return false;
  const auto pos = static_cast<size_t>(it - leaf->keys.begin());
  leaf->keys.erase(it);
  leaf->values.erase(leaf->values.begin() + static_cast<ptrdiff_t>(pos));
  --size_;
  approx_bytes_ -= std::min(approx_bytes_, key.size() + kEntryOverhead);
  return true;
}

bool BPlusTree::Iterator::valid() const { return leaf_ != nullptr; }

std::string_view BPlusTree::Iterator::key() const {
  return static_cast<const LeafNode*>(leaf_)->keys[pos_];
}

uint64_t BPlusTree::Iterator::value() const {
  return static_cast<const LeafNode*>(leaf_)->values[pos_];
}

void BPlusTree::Iterator::next() {
  const auto* leaf = static_cast<const LeafNode*>(leaf_);
  ++pos_;
  while (leaf != nullptr && pos_ >= leaf->keys.size()) {
    leaf = leaf->next;
    pos_ = 0;
  }
  leaf_ = leaf;
}

BPlusTree::Iterator BPlusTree::seek(std::string_view key) const {
  const LeafNode* leaf = find_leaf(key);
  const auto it = std::lower_bound(leaf->keys.begin(), leaf->keys.end(), key);
  Iterator iter;
  iter.leaf_ = leaf;
  iter.pos_ = static_cast<size_t>(it - leaf->keys.begin());
  // Skip trailing position / empty leaves (possible after erases).
  while (iter.leaf_ != nullptr &&
         iter.pos_ >= static_cast<const LeafNode*>(iter.leaf_)->keys.size()) {
    iter.leaf_ = static_cast<const LeafNode*>(iter.leaf_)->next;
    iter.pos_ = 0;
  }
  return iter;
}

BPlusTree::Iterator BPlusTree::begin() const {
  return seek(std::string_view("", 0));
}

std::vector<uint64_t> BPlusTree::prefix_lookup(std::string_view prefix) const {
  std::vector<uint64_t> out;
  for (Iterator it = seek(prefix);
       it.valid() && it.key().substr(0, prefix.size()) == prefix; it.next()) {
    out.push_back(it.value());
  }
  return out;
}

std::vector<uint64_t> BPlusTree::range_lookup(std::string_view first_key,
                                              std::string_view last_key) const {
  std::vector<uint64_t> out;
  for (Iterator it = seek(first_key); it.valid() && it.key() < last_key;
       it.next()) {
    out.push_back(it.value());
  }
  return out;
}

std::vector<uint64_t> BPlusTree::range_lookup_unbounded(
    std::string_view first_key) const {
  std::vector<uint64_t> out;
  for (Iterator it = seek(first_key); it.valid(); it.next()) {
    out.push_back(it.value());
  }
  return out;
}

Status BPlusTree::bulk_build(
    std::vector<std::pair<std::string, uint64_t>> sorted) {
  for (size_t i = 1; i < sorted.size(); ++i) {
    if (!(sorted[i - 1].first < sorted[i].first)) {
      return Status(ErrorCode::kInvalidArgument,
                    "bulk_build input not strictly sorted");
    }
  }
  const size_t leaf_fill = std::max<size_t>(
      2, static_cast<size_t>(fanout_) * 3 / 4);

  size_t nodes = 0;
  size_t bytes = 0;
  std::vector<std::pair<std::string, std::unique_ptr<Node>>> level;

  // Build the leaf level.
  LeafNode* prev = nullptr;
  size_t i = 0;
  while (i < sorted.size()) {
    auto leaf = std::make_unique<LeafNode>();
    leaf->page_id = ++next_page_id_;
    const size_t end = std::min(sorted.size(), i + leaf_fill);
    for (; i < end; ++i) {
      bytes += sorted[i].first.size() + kEntryOverhead;
      leaf->keys.push_back(std::move(sorted[i].first));
      leaf->values.push_back(sorted[i].second);
    }
    if (prev != nullptr) prev->next = leaf.get();
    prev = leaf.get();
    ++nodes;
    level.emplace_back(leaf->keys.front(), std::move(leaf));
  }
  if (level.empty()) {
    root_ = std::make_unique<LeafNode>();
    root_->page_id = ++next_page_id_;
    size_ = 0;
    height_ = 1;
    node_count_ = 1;
    approx_bytes_ = 0;
    return ok_status();
  }

  // Build internal levels until a single root remains.
  int levels = 1;
  while (level.size() > 1) {
    std::vector<std::pair<std::string, std::unique_ptr<Node>>> parent_level;
    size_t j = 0;
    while (j < level.size()) {
      auto internal = std::make_unique<InternalNode>();
      internal->page_id = ++next_page_id_;
      const size_t end = std::min(level.size(), j + leaf_fill);
      std::string first_key = level[j].first;
      for (; j < end; ++j) {
        if (!internal->children.empty()) {
          internal->keys.push_back(std::move(level[j].first));
        }
        internal->children.push_back(std::move(level[j].second));
      }
      ++nodes;
      parent_level.emplace_back(std::move(first_key), std::move(internal));
    }
    level = std::move(parent_level);
    ++levels;
  }

  root_ = std::move(level.front().second);
  // Count entries from the leaf chain (also cross-checks chain integrity).
  size_t counted = 0;
  const Node* node = root_.get();
  while (!node->is_leaf) {
    node = static_cast<const InternalNode*>(node)->children.front().get();
  }
  for (const LeafNode* leaf = static_cast<const LeafNode*>(node);
       leaf != nullptr; leaf = leaf->next) {
    counted += leaf->keys.size();
  }
  size_ = counted;
  height_ = levels;
  node_count_ = nodes;
  approx_bytes_ = bytes;
  return ok_status();
}

namespace {
// Balanced chunk sizes for multi-way splits: `total` entries into the fewest
// chunks of at most `max_per_chunk`, sizes differing by at most one.
std::vector<size_t> balanced_chunks(size_t total, size_t max_per_chunk) {
  const size_t chunks = (total + max_per_chunk - 1) / max_per_chunk;
  const size_t base = total / chunks;
  const size_t extra = total % chunks;
  std::vector<size_t> sizes(chunks, base);
  for (size_t i = 0; i < extra; ++i) ++sizes[i];
  return sizes;
}
}  // namespace

Status BPlusTree::insert_run_recursive(
    Node* node, std::vector<std::pair<std::string, uint64_t>>& run,
    size_t begin, size_t end, std::vector<SplitResult>& pieces,
    RunTouch* touch) {
  if (touch != nullptr) ++touch->nodes_visited;
  if (node->is_leaf) {
    auto* leaf = static_cast<LeafNode*>(node);
    // Compare-only duplicate pre-pass so the merge below (which moves keys
    // out of the leaf) never has to fail with the leaf half-emptied.
    {
      size_t li = 0;
      for (size_t ri = begin; ri < end; ++ri) {
        while (li < leaf->keys.size() && leaf->keys[li] < run[ri].first) ++li;
        if (li < leaf->keys.size() && leaf->keys[li] == run[ri].first) {
          return Status(ErrorCode::kAlreadyExists,
                        "sorted run collides with existing index key");
        }
      }
    }
    std::vector<std::string> merged_keys;
    std::vector<uint64_t> merged_values;
    const size_t total = leaf->keys.size() + (end - begin);
    merged_keys.reserve(total);
    merged_values.reserve(total);
    size_t li = 0;
    size_t ri = begin;
    while (li < leaf->keys.size() || ri < end) {
      const bool take_run =
          li >= leaf->keys.size() ||
          (ri < end && run[ri].first < leaf->keys[li]);
      if (take_run) {
        merged_keys.push_back(std::move(run[ri].first));
        merged_values.push_back(run[ri].second);
        ++ri;
      } else {
        merged_keys.push_back(std::move(leaf->keys[li]));
        merged_values.push_back(leaf->values[li]);
        ++li;
      }
    }
    if (total <= static_cast<size_t>(fanout_)) {
      leaf->keys = std::move(merged_keys);
      leaf->values = std::move(merged_values);
      if (touch != nullptr) touch->touched_leaf_ids.push_back(leaf->page_id);
      return ok_status();
    }
    // Multi-way split: the first chunk stays in place, the rest become new
    // right siblings spliced into the leaf chain in order.
    const std::vector<size_t> sizes =
        balanced_chunks(total, static_cast<size_t>(fanout_));
    size_t offset = sizes[0];
    leaf->keys.assign(std::make_move_iterator(merged_keys.begin()),
                      std::make_move_iterator(merged_keys.begin() +
                                              static_cast<ptrdiff_t>(offset)));
    leaf->values.assign(merged_values.begin(),
                        merged_values.begin() + static_cast<ptrdiff_t>(offset));
    if (touch != nullptr) touch->touched_leaf_ids.push_back(leaf->page_id);
    LeafNode* prev = leaf;
    LeafNode* const after = leaf->next;
    for (size_t c = 1; c < sizes.size(); ++c) {
      auto right = std::make_unique<LeafNode>();
      right->page_id = ++next_page_id_;
      right->keys.assign(
          std::make_move_iterator(merged_keys.begin() +
                                  static_cast<ptrdiff_t>(offset)),
          std::make_move_iterator(merged_keys.begin() +
                                  static_cast<ptrdiff_t>(offset + sizes[c])));
      right->values.assign(
          merged_values.begin() + static_cast<ptrdiff_t>(offset),
          merged_values.begin() + static_cast<ptrdiff_t>(offset + sizes[c]));
      offset += sizes[c];
      prev->next = right.get();
      prev = right.get();
      ++node_count_;
      if (touch != nullptr) {
        ++touch->leaf_splits;
        touch->touched_leaf_ids.push_back(right->page_id);
      }
      pieces.emplace_back(
          SplitResult{right->keys.front(), std::move(right)});
    }
    prev->next = after;
    return ok_status();
  }

  auto* internal = static_cast<InternalNode*>(node);
  // Partition the run slice across children by the separators (same
  // upper-bound rule the point descent uses: a key equal to a separator
  // belongs to the right child), splicing each child's new siblings in
  // behind it.
  std::vector<std::string> new_keys;
  std::vector<std::unique_ptr<Node>> new_children;
  new_keys.reserve(internal->keys.size());
  new_children.reserve(internal->children.size());
  size_t run_pos = begin;
  std::vector<SplitResult> child_pieces;
  for (size_t i = 0; i < internal->children.size(); ++i) {
    size_t hi = end;
    if (i < internal->keys.size()) {
      const auto it = std::lower_bound(
          run.begin() + static_cast<ptrdiff_t>(run_pos),
          run.begin() + static_cast<ptrdiff_t>(end), internal->keys[i],
          [](const std::pair<std::string, uint64_t>& entry,
             const std::string& sep) { return entry.first < sep; });
      hi = static_cast<size_t>(it - run.begin());
    }
    if (i > 0) new_keys.push_back(std::move(internal->keys[i - 1]));
    Node* const child = internal->children[i].get();
    new_children.push_back(std::move(internal->children[i]));
    if (run_pos < hi) {
      child_pieces.clear();
      SKY_RETURN_IF_ERROR(insert_run_recursive(child, run, run_pos, hi,
                                               child_pieces, touch));
      for (SplitResult& piece : child_pieces) {
        new_keys.push_back(std::move(piece.separator));
        new_children.push_back(std::move(piece.right));
      }
    }
    run_pos = hi;
  }
  internal->keys = std::move(new_keys);
  internal->children = std::move(new_children);
  if (internal->children.size() > static_cast<size_t>(fanout_)) {
    multi_split_internal(internal, pieces);
  }
  return ok_status();
}

void BPlusTree::multi_split_internal(InternalNode* node,
                                     std::vector<SplitResult>& pieces) {
  std::vector<std::string> keys = std::move(node->keys);
  std::vector<std::unique_ptr<Node>> children = std::move(node->children);
  const std::vector<size_t> sizes =
      balanced_chunks(children.size(), static_cast<size_t>(fanout_));
  // Chunk 0 stays in `node`; between consecutive chunks one key is promoted.
  size_t child_offset = sizes[0];
  node->keys.assign(std::make_move_iterator(keys.begin()),
                    std::make_move_iterator(keys.begin() +
                                            static_cast<ptrdiff_t>(sizes[0] -
                                                                   1)));
  node->children.assign(
      std::make_move_iterator(children.begin()),
      std::make_move_iterator(children.begin() +
                              static_cast<ptrdiff_t>(sizes[0])));
  for (size_t c = 1; c < sizes.size(); ++c) {
    auto right = std::make_unique<InternalNode>();
    right->page_id = ++next_page_id_;
    // keys[child_offset - 1] separates chunk c-1 from chunk c: promote it.
    std::string promoted = std::move(keys[child_offset - 1]);
    right->keys.assign(
        std::make_move_iterator(keys.begin() +
                                static_cast<ptrdiff_t>(child_offset)),
        std::make_move_iterator(
            keys.begin() +
            static_cast<ptrdiff_t>(child_offset + sizes[c] - 1)));
    right->children.assign(
        std::make_move_iterator(children.begin() +
                                static_cast<ptrdiff_t>(child_offset)),
        std::make_move_iterator(
            children.begin() +
            static_cast<ptrdiff_t>(child_offset + sizes[c])));
    child_offset += sizes[c];
    ++node_count_;
    pieces.emplace_back(SplitResult{std::move(promoted), std::move(right)});
  }
}

Status BPlusTree::insert_sorted_run(
    std::vector<std::pair<std::string, uint64_t>> run, RunTouch* touch) {
  if (run.empty()) return ok_status();
  size_t run_bytes = run.front().first.size() + kEntryOverhead;
  for (size_t i = 1; i < run.size(); ++i) {
    if (!(run[i - 1].first < run[i].first)) {
      return Status(ErrorCode::kInvalidArgument,
                    "insert_sorted_run input not strictly sorted");
    }
    run_bytes += run[i].first.size() + kEntryOverhead;
  }
  const size_t count = run.size();
  std::vector<SplitResult> pieces;
  SKY_RETURN_IF_ERROR(
      insert_run_recursive(root_.get(), run, 0, count, pieces, touch));
  // Grow upward while the root overflowed: wrap the root and its new right
  // siblings in a fresh root, re-splitting if even that is over-full.
  while (!pieces.empty()) {
    auto new_root = std::make_unique<InternalNode>();
    new_root->page_id = ++next_page_id_;
    new_root->children.push_back(std::move(root_));
    for (SplitResult& piece : pieces) {
      new_root->keys.push_back(std::move(piece.separator));
      new_root->children.push_back(std::move(piece.right));
    }
    pieces.clear();
    ++node_count_;
    ++height_;
    if (new_root->children.size() > static_cast<size_t>(fanout_)) {
      multi_split_internal(new_root.get(), pieces);
    }
    root_ = std::move(new_root);
  }
  size_ += count;
  approx_bytes_ += run_bytes;
  return ok_status();
}

Status BPlusTree::validate() const {
  // Recursive bound check + leaf depth, then independent chain walk.
  struct Checker {
    int fanout;
    size_t entries = 0;
    int leaf_depth = -1;
    std::vector<const LeafNode*> leaves_in_order;

    Status check(const Node* node, const std::string* lo,
                 const std::string* hi, int depth) {
      if (node->is_leaf) {
        const auto* leaf = static_cast<const LeafNode*>(node);
        if (leaf_depth == -1) leaf_depth = depth;
        if (leaf_depth != depth) {
          return Status(ErrorCode::kInternal, "leaves at unequal depth");
        }
        if (leaf->keys.size() != leaf->values.size()) {
          return Status(ErrorCode::kInternal, "leaf key/value count mismatch");
        }
        for (size_t i = 0; i < leaf->keys.size(); ++i) {
          if (i > 0 && !(leaf->keys[i - 1] < leaf->keys[i])) {
            return Status(ErrorCode::kInternal, "leaf keys out of order");
          }
          if (lo != nullptr && leaf->keys[i] < *lo) {
            return Status(ErrorCode::kInternal, "leaf key below lower bound");
          }
          if (hi != nullptr && !(leaf->keys[i] < *hi)) {
            return Status(ErrorCode::kInternal, "leaf key above upper bound");
          }
        }
        entries += leaf->keys.size();
        leaves_in_order.push_back(leaf);
        return ok_status();
      }
      const auto* internal = static_cast<const InternalNode*>(node);
      if (internal->children.size() != internal->keys.size() + 1) {
        return Status(ErrorCode::kInternal, "internal arity mismatch");
      }
      if (internal->children.size() > static_cast<size_t>(fanout) + 1) {
        return Status(ErrorCode::kInternal, "internal node over fanout");
      }
      for (size_t i = 0; i < internal->keys.size(); ++i) {
        if (i > 0 && !(internal->keys[i - 1] < internal->keys[i])) {
          return Status(ErrorCode::kInternal, "separators out of order");
        }
      }
      for (size_t i = 0; i < internal->children.size(); ++i) {
        const std::string* child_lo =
            (i == 0) ? lo : &internal->keys[i - 1];
        const std::string* child_hi =
            (i == internal->keys.size()) ? hi : &internal->keys[i];
        SKY_RETURN_IF_ERROR(check(internal->children[i].get(), child_lo,
                                  child_hi, depth + 1));
      }
      return ok_status();
    }
  };

  Checker checker{fanout_, 0, -1, {}};
  SKY_RETURN_IF_ERROR(checker.check(root_.get(), nullptr, nullptr, 1));
  if (checker.entries != size_) {
    return Status(ErrorCode::kInternal, "size counter disagrees with tree");
  }
  if (checker.leaf_depth != height_) {
    return Status(ErrorCode::kInternal, "height counter disagrees with tree");
  }
  // Leaf chain must visit exactly the in-order leaves.
  if (!checker.leaves_in_order.empty()) {
    const LeafNode* chain = checker.leaves_in_order.front();
    for (const LeafNode* expected : checker.leaves_in_order) {
      if (chain != expected) {
        return Status(ErrorCode::kInternal, "leaf chain out of order");
      }
      chain = chain->next;
    }
    if (chain != nullptr) {
      return Status(ErrorCode::kInternal, "leaf chain has extra nodes");
    }
  }
  return ok_status();
}

}  // namespace sky::index
