#include "index/key_codec.h"

#include <bit>
#include <cstring>

namespace sky::index {

namespace {

constexpr char kTagNull = '\x00';
constexpr char kTagValue = '\x01';

void append_big_endian(std::string& out, uint64_t value, int bytes) {
  for (int shift = (bytes - 1) * 8; shift >= 0; shift -= 8) {
    out.push_back(static_cast<char>((value >> shift) & 0xFF));
  }
}

uint64_t read_big_endian(std::string_view data, size_t pos, int bytes) {
  uint64_t value = 0;
  for (int i = 0; i < bytes; ++i) {
    value = (value << 8) | static_cast<unsigned char>(data[pos + static_cast<size_t>(i)]);
  }
  return value;
}

// Total-order transform for doubles: monotone map from double comparison to
// unsigned integer comparison. -0.0 and +0.0 encode differently (-0.0 first),
// which is fine for index ordering (lookups encode the probe the same way).
uint64_t double_to_ordered(double value) {
  uint64_t bits = std::bit_cast<uint64_t>(value);
  if (bits & 0x8000000000000000ULL) {
    return ~bits;  // negative: flip everything
  }
  return bits | 0x8000000000000000ULL;  // positive: flip sign bit
}

double ordered_to_double(uint64_t ordered) {
  uint64_t bits;
  if (ordered & 0x8000000000000000ULL) {
    bits = ordered & 0x7FFFFFFFFFFFFFFFULL;
  } else {
    bits = ~ordered;
  }
  return std::bit_cast<double>(bits);
}

}  // namespace

KeyEncoder& KeyEncoder::append_null() {
  buffer_.push_back(kTagNull);
  return *this;
}

KeyEncoder& KeyEncoder::append_int32(int32_t value) {
  buffer_.push_back(kTagValue);
  const uint32_t flipped = static_cast<uint32_t>(value) ^ 0x80000000U;
  append_big_endian(buffer_, flipped, 4);
  return *this;
}

KeyEncoder& KeyEncoder::append_int64(int64_t value) {
  buffer_.push_back(kTagValue);
  const uint64_t flipped =
      static_cast<uint64_t>(value) ^ 0x8000000000000000ULL;
  append_big_endian(buffer_, flipped, 8);
  return *this;
}

KeyEncoder& KeyEncoder::append_double(double value) {
  buffer_.push_back(kTagValue);
  append_big_endian(buffer_, double_to_ordered(value), 8);
  return *this;
}

KeyEncoder& KeyEncoder::append_string(std::string_view value) {
  buffer_.push_back(kTagValue);
  for (char c : value) {
    if (c == '\x00') {
      buffer_.push_back('\x00');
      buffer_.push_back('\xFF');
    } else {
      buffer_.push_back(c);
    }
  }
  buffer_.push_back('\x00');
  buffer_.push_back('\x01');
  return *this;
}

std::string encoded_key_successor(std::string key) {
  while (!key.empty()) {
    const auto last = static_cast<unsigned char>(key.back());
    if (last != 0xFF) {
      key.back() = static_cast<char>(last + 1);
      return key;
    }
    key.pop_back();  // carry
  }
  return key;  // "" = +infinity
}

Result<bool> KeyDecoder::read_tag() {
  if (pos_ >= data_.size()) {
    return Status(ErrorCode::kParseError, "key decoder: past end");
  }
  const char tag = data_[pos_++];
  if (tag == kTagNull) return false;
  if (tag == kTagValue) return true;
  return Status(ErrorCode::kParseError, "key decoder: bad field tag");
}

Result<std::optional<int32_t>> KeyDecoder::decode_int32() {
  SKY_ASSIGN_OR_RETURN(const bool present, read_tag());
  if (!present) return std::optional<int32_t>();
  if (pos_ + 4 > data_.size()) {
    return Status(ErrorCode::kParseError, "key decoder: truncated int32");
  }
  const uint32_t flipped =
      static_cast<uint32_t>(read_big_endian(data_, pos_, 4));
  pos_ += 4;
  return std::optional<int32_t>(
      static_cast<int32_t>(flipped ^ 0x80000000U));
}

Result<std::optional<int64_t>> KeyDecoder::decode_int64() {
  SKY_ASSIGN_OR_RETURN(const bool present, read_tag());
  if (!present) return std::optional<int64_t>();
  if (pos_ + 8 > data_.size()) {
    return Status(ErrorCode::kParseError, "key decoder: truncated int64");
  }
  const uint64_t flipped = read_big_endian(data_, pos_, 8);
  pos_ += 8;
  return std::optional<int64_t>(
      static_cast<int64_t>(flipped ^ 0x8000000000000000ULL));
}

Result<std::optional<double>> KeyDecoder::decode_double() {
  SKY_ASSIGN_OR_RETURN(const bool present, read_tag());
  if (!present) return std::optional<double>();
  if (pos_ + 8 > data_.size()) {
    return Status(ErrorCode::kParseError, "key decoder: truncated double");
  }
  const uint64_t ordered = read_big_endian(data_, pos_, 8);
  pos_ += 8;
  return std::optional<double>(ordered_to_double(ordered));
}

Result<std::optional<std::string>> KeyDecoder::decode_string() {
  SKY_ASSIGN_OR_RETURN(const bool present, read_tag());
  if (!present) return std::optional<std::string>();
  std::string out;
  while (true) {
    if (pos_ >= data_.size()) {
      return Status(ErrorCode::kParseError, "key decoder: unterminated string");
    }
    const char c = data_[pos_++];
    if (c != '\x00') {
      out.push_back(c);
      continue;
    }
    if (pos_ >= data_.size()) {
      return Status(ErrorCode::kParseError, "key decoder: truncated escape");
    }
    const char next = data_[pos_++];
    if (next == '\x01') break;      // terminator
    if (next == '\xFF') {
      out.push_back('\x00');        // escaped NUL
      continue;
    }
    return Status(ErrorCode::kParseError, "key decoder: bad escape");
  }
  return std::optional<std::string>(std::move(out));
}

}  // namespace sky::index
