// Hierarchical Triangular Mesh (HTM).
//
// The paper's loading pipeline computes an htmid and sky coordinates for
// every observed object before insert (section 3, citing O'Mullane et al.,
// "Splitting the Sky - HTM and HEALPix"). This is a from-scratch HTM:
// the unit sphere is split into 8 root spherical triangles (an octahedron),
// each recursively subdivided into 4 children by edge midpoints. A trixel at
// depth d has a 64-bit id in [8 * 4^d, 16 * 4^d); children share the parent
// id as a bit prefix (id_child = 4 * id_parent + k), which makes "all objects
// inside trixel T" a contiguous id range — the property the repository's
// htmid index exploits for cone searches.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace sky::htm {

struct Vec3 {
  double x = 0, y = 0, z = 0;

  Vec3 operator+(const Vec3& o) const { return {x + o.x, y + o.y, z + o.z}; }
  Vec3 operator-(const Vec3& o) const { return {x - o.x, y - o.y, z - o.z}; }
  Vec3 operator*(double s) const { return {x * s, y * s, z * s}; }
  double dot(const Vec3& o) const { return x * o.x + y * o.y + z * o.z; }
  Vec3 cross(const Vec3& o) const {
    return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
  }
  double norm() const;
  Vec3 normalized() const;
};

// Right ascension / declination (degrees) to a unit vector. ra is reduced
// mod 360; dec must be in [-90, 90].
Vec3 radec_to_vector(double ra_deg, double dec_deg);
// Inverse: unit vector to (ra, dec) in degrees, ra in [0, 360).
void vector_to_radec(const Vec3& v, double* ra_deg, double* dec_deg);

// Angular separation between two unit vectors, in degrees.
double angular_distance_deg(const Vec3& a, const Vec3& b);

// A spherical triangle (vertices are unit vectors, CCW seen from outside).
struct Trixel {
  uint64_t id = 0;
  std::array<Vec3, 3> v;
};

// Depth used by the Palomar-Quest repository for object htmids.
constexpr int kDefaultDepth = 14;
constexpr int kMaxDepth = 30;  // 2 + 2*30 + 1 bits < 64

// The 8 root trixels (ids 8..15: S0..S3 = 8..11, N0..N3 = 12..15).
const std::array<Trixel, 8>& root_trixels();

// Trixel id at `depth` containing the given unit direction.
uint64_t htm_id(const Vec3& direction, int depth = kDefaultDepth);
uint64_t htm_id_radec(double ra_deg, double dec_deg,
                      int depth = kDefaultDepth);

// Depth encoded in an id (ids are valid iff in [8*4^d, 16*4^d) for some d).
Result<int> depth_of_id(uint64_t id);

// Reconstruct the trixel (vertices) for an id.
Result<Trixel> trixel_from_id(uint64_t id);

// Symbolic name, e.g. "N012" (root letter+digit then child digits).
Result<std::string> id_to_name(uint64_t id);
Result<uint64_t> name_to_id(std::string_view name);

// Does the trixel with this id contain the direction?
Result<bool> id_contains(uint64_t id, const Vec3& direction);

// Solid angle of a spherical triangle in steradians (Girard's theorem:
// spherical excess of the interior angles). Used to measure cone-cover
// tightness.
double trixel_solid_angle_sr(const Trixel& trixel);

// Solid angle of a spherical cap of the given angular radius.
double cap_solid_angle_sr(double radius_deg);

// A half-open id range at a fixed depth.
struct IdRange {
  uint64_t first = 0;  // inclusive
  uint64_t last = 0;   // exclusive
};

// Conservative cover of the spherical cap (center, radius_deg) by trixel id
// ranges at `depth`: every point inside the cap lies in some returned range;
// ranges may include nearby outside points, so consumers post-filter by
// exact angular distance. Ranges are sorted, disjoint, and coalesced.
std::vector<IdRange> cone_cover(const Vec3& center, double radius_deg,
                                int depth = kDefaultDepth);

}  // namespace sky::htm
