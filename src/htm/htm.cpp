#include "htm/htm.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/strings.h"

namespace sky::htm {

namespace {

constexpr double kPi = 3.14159265358979323846;
constexpr double kDegToRad = kPi / 180.0;
constexpr double kRadToDeg = 180.0 / kPi;
// Tolerance for boundary membership tests.
constexpr double kEpsilon = 1e-12;

// "Insideness" of p w.r.t. the triangle: the minimum of the three edge-plane
// dot products. Positive means strictly inside; the most-inside child is the
// deterministic tie-break when floating point puts a point on an edge.
double insideness(const std::array<Vec3, 3>& v, const Vec3& p) {
  const double d0 = v[0].cross(v[1]).dot(p);
  const double d1 = v[1].cross(v[2]).dot(p);
  const double d2 = v[2].cross(v[0]).dot(p);
  return std::min({d0, d1, d2});
}

Vec3 midpoint(const Vec3& a, const Vec3& b) {
  return (a + b).normalized();
}

std::array<Trixel, 4> children_of(const Trixel& t) {
  const Vec3 w0 = midpoint(t.v[1], t.v[2]);
  const Vec3 w1 = midpoint(t.v[0], t.v[2]);
  const Vec3 w2 = midpoint(t.v[0], t.v[1]);
  return {
      Trixel{t.id * 4 + 0, {t.v[0], w2, w1}},
      Trixel{t.id * 4 + 1, {t.v[1], w0, w2}},
      Trixel{t.id * 4 + 2, {t.v[2], w1, w0}},
      Trixel{t.id * 4 + 3, {w0, w1, w2}},
  };
}

}  // namespace

double Vec3::norm() const { return std::sqrt(x * x + y * y + z * z); }

Vec3 Vec3::normalized() const {
  const double n = norm();
  assert(n > 0);
  return {x / n, y / n, z / n};
}

Vec3 radec_to_vector(double ra_deg, double dec_deg) {
  const double ra = std::fmod(ra_deg, 360.0) * kDegToRad;
  const double dec = dec_deg * kDegToRad;
  const double cd = std::cos(dec);
  return {cd * std::cos(ra), cd * std::sin(ra), std::sin(dec)};
}

void vector_to_radec(const Vec3& v, double* ra_deg, double* dec_deg) {
  const Vec3 u = v.normalized();
  double ra = std::atan2(u.y, u.x) * kRadToDeg;
  if (ra < 0) ra += 360.0;
  *ra_deg = ra;
  *dec_deg = std::asin(std::clamp(u.z, -1.0, 1.0)) * kRadToDeg;
}

double angular_distance_deg(const Vec3& a, const Vec3& b) {
  const Vec3 ua = a.normalized();
  const Vec3 ub = b.normalized();
  // atan2 form is accurate for both tiny and near-antipodal separations.
  const double cross_norm = ua.cross(ub).norm();
  const double dot = ua.dot(ub);
  return std::atan2(cross_norm, dot) * kRadToDeg;
}

const std::array<Trixel, 8>& root_trixels() {
  static const std::array<Trixel, 8> roots = [] {
    const Vec3 v0{0, 0, 1};
    const Vec3 v1{1, 0, 0};
    const Vec3 v2{0, 1, 0};
    const Vec3 v3{-1, 0, 0};
    const Vec3 v4{0, -1, 0};
    const Vec3 v5{0, 0, -1};
    return std::array<Trixel, 8>{
        Trixel{8, {v1, v5, v2}},   // S0
        Trixel{9, {v2, v5, v3}},   // S1
        Trixel{10, {v3, v5, v4}},  // S2
        Trixel{11, {v4, v5, v1}},  // S3
        Trixel{12, {v1, v0, v4}},  // N0
        Trixel{13, {v4, v0, v3}},  // N1
        Trixel{14, {v3, v0, v2}},  // N2
        Trixel{15, {v2, v0, v1}},  // N3
    };
  }();
  return roots;
}

uint64_t htm_id(const Vec3& direction, int depth) {
  assert(depth >= 0 && depth <= kMaxDepth);
  const Vec3 p = direction.normalized();
  // Pick the most-inside root.
  const Trixel* current = &root_trixels()[0];
  double best = -2.0;
  for (const Trixel& root : root_trixels()) {
    const double score = insideness(root.v, p);
    if (score > best) {
      best = score;
      current = &root;
    }
  }
  Trixel node = *current;
  for (int level = 0; level < depth; ++level) {
    const auto kids = children_of(node);
    int best_child = 0;
    double best_score = -2.0;
    for (int k = 0; k < 4; ++k) {
      const double score = insideness(kids[static_cast<size_t>(k)].v, p);
      if (score > best_score) {
        best_score = score;
        best_child = k;
      }
    }
    node = kids[static_cast<size_t>(best_child)];
  }
  return node.id;
}

uint64_t htm_id_radec(double ra_deg, double dec_deg, int depth) {
  return htm_id(radec_to_vector(ra_deg, dec_deg), depth);
}

Result<int> depth_of_id(uint64_t id) {
  uint64_t lo = 8, hi = 16;
  for (int depth = 0; depth <= kMaxDepth; ++depth) {
    if (id >= lo && id < hi) return depth;
    lo *= 4;
    hi *= 4;
  }
  return Status(ErrorCode::kInvalidArgument,
                "not a valid HTM id: " + std::to_string(id));
}

Result<Trixel> trixel_from_id(uint64_t id) {
  SKY_ASSIGN_OR_RETURN(const int depth, depth_of_id(id));
  const uint64_t root_id = id >> (2 * depth);
  Trixel node = root_trixels()[root_id - 8];
  for (int level = depth - 1; level >= 0; --level) {
    const auto child = (id >> (2 * level)) & 3;
    node = children_of(node)[child];
  }
  assert(node.id == id);
  return node;
}

Result<std::string> id_to_name(uint64_t id) {
  SKY_ASSIGN_OR_RETURN(const int depth, depth_of_id(id));
  const uint64_t root_id = id >> (2 * depth);
  std::string name = root_id < 12 ? "S" : "N";
  name.push_back(static_cast<char>('0' + (root_id & 3)));
  for (int level = depth - 1; level >= 0; --level) {
    name.push_back(static_cast<char>('0' + ((id >> (2 * level)) & 3)));
  }
  return name;
}

Result<uint64_t> name_to_id(std::string_view name) {
  if (name.size() < 2 || (name[0] != 'N' && name[0] != 'S')) {
    return Status(ErrorCode::kInvalidArgument,
                  "bad HTM name: " + std::string(name));
  }
  if (name.size() > static_cast<size_t>(kMaxDepth) + 2) {
    return Status(ErrorCode::kInvalidArgument, "HTM name too deep");
  }
  uint64_t id = name[0] == 'S' ? 8 : 12;
  if (name[1] < '0' || name[1] > '3') {
    return Status(ErrorCode::kInvalidArgument, "bad HTM root digit");
  }
  id += static_cast<uint64_t>(name[1] - '0');
  for (size_t i = 2; i < name.size(); ++i) {
    if (name[i] < '0' || name[i] > '3') {
      return Status(ErrorCode::kInvalidArgument, "bad HTM child digit");
    }
    id = id * 4 + static_cast<uint64_t>(name[i] - '0');
  }
  return id;
}

Result<bool> id_contains(uint64_t id, const Vec3& direction) {
  SKY_ASSIGN_OR_RETURN(const Trixel trixel, trixel_from_id(id));
  return insideness(trixel.v, direction.normalized()) >= -kEpsilon;
}

double trixel_solid_angle_sr(const Trixel& trixel) {
  // Interior angle at each vertex: the angle between the two great-circle
  // edges meeting there, computed from edge-plane normals.
  double angle_sum = 0;
  for (int v = 0; v < 3; ++v) {
    const Vec3& at = trixel.v[static_cast<size_t>(v)];
    const Vec3& prev = trixel.v[static_cast<size_t>((v + 2) % 3)];
    const Vec3& next = trixel.v[static_cast<size_t>((v + 1) % 3)];
    const Vec3 n1 = at.cross(prev);
    const Vec3 n2 = at.cross(next);
    const double denom = n1.norm() * n2.norm();
    if (denom < 1e-15) return 0.0;  // degenerate
    const double cos_angle = std::clamp(n1.dot(n2) / denom, -1.0, 1.0);
    angle_sum += std::acos(cos_angle);
  }
  return std::max(0.0, angle_sum - kPi);  // spherical excess
}

double cap_solid_angle_sr(double radius_deg) {
  return 2.0 * kPi * (1.0 - std::cos(radius_deg * kDegToRad));
}

namespace {

// Minimum angular distance (radians) from point c to the geodesic segment
// a->b, considering only the arc interior (endpoints are handled as
// vertices by the caller).
double arc_interior_distance_rad(const Vec3& a, const Vec3& b, const Vec3& c) {
  const Vec3 n_raw = a.cross(b);
  const double n_len = n_raw.norm();
  if (n_len < 1e-15) return kPi;  // degenerate edge
  const Vec3 n = {n_raw.x / n_len, n_raw.y / n_len, n_raw.z / n_len};
  // Closest point on the great circle.
  const Vec3 proj = c - n * c.dot(n);
  if (proj.norm() < 1e-15) return kPi / 2;  // c is the circle's pole
  const Vec3 p = proj.normalized();
  // Is p within the arc a->b? (both "a to p" and "p to b" turn the same way)
  if (a.cross(p).dot(n) >= 0 && p.cross(b).dot(n) >= 0) {
    return std::asin(std::clamp(std::abs(c.dot(n)), 0.0, 1.0));
  }
  return kPi;  // interior not closest; endpoints checked elsewhere
}

enum class CapRelation { kDisjoint, kPartial, kFull };

CapRelation classify(const Trixel& t, const Vec3& center, double radius_deg) {
  int inside = 0;
  for (const Vec3& v : t.v) {
    if (angular_distance_deg(center, v) <= radius_deg) ++inside;
  }
  if (inside == 3) return CapRelation::kFull;  // cap is convex (r <= 90)
  if (inside > 0) return CapRelation::kPartial;
  // No vertex inside. Cap center inside the trixel?
  if (insideness(t.v, center) >= -kEpsilon) return CapRelation::kPartial;
  // Cap boundary crossing an edge interior?
  const double radius_rad = radius_deg * kDegToRad;
  for (int e = 0; e < 3; ++e) {
    const Vec3& a = t.v[static_cast<size_t>(e)];
    const Vec3& b = t.v[static_cast<size_t>((e + 1) % 3)];
    if (arc_interior_distance_rad(a, b, center) <= radius_rad) {
      return CapRelation::kPartial;
    }
  }
  return CapRelation::kDisjoint;
}

// Wide caps (radius > 90) are not convex, but their complement is: a cap of
// radius 180 - r around the antipode. Classify against the complement and
// invert. A trixel fully inside the closed complement touches the original
// cap at most on the shared rim circle — kept as partial unless every
// vertex is strictly interior, so exact-rim points are never dropped.
CapRelation classify_wide(const Trixel& t, const Vec3& center,
                          double radius_deg) {
  const Vec3 anti = center * -1.0;
  const double complement = 180.0 - radius_deg;
  switch (classify(t, anti, complement)) {
    case CapRelation::kDisjoint:
      return CapRelation::kFull;
    case CapRelation::kFull: {
      int strictly_inside = 0;
      for (const Vec3& v : t.v) {
        if (angular_distance_deg(anti, v) < complement - 1e-12) {
          ++strictly_inside;
        }
      }
      return strictly_inside == 3 ? CapRelation::kDisjoint
                                  : CapRelation::kPartial;
    }
    case CapRelation::kPartial:
      break;
  }
  return CapRelation::kPartial;
}

void cover_recursive(const Trixel& t, int level, int depth, const Vec3& center,
                     double radius_deg, std::vector<IdRange>& out) {
  const CapRelation relation = radius_deg > 90.0
                                   ? classify_wide(t, center, radius_deg)
                                   : classify(t, center, radius_deg);
  if (relation == CapRelation::kDisjoint) return;
  const int remaining = depth - level;
  if (relation == CapRelation::kFull || remaining == 0) {
    const uint64_t width = 1ULL << (2 * remaining);
    out.push_back(IdRange{t.id * width, (t.id + 1) * width});
    return;
  }
  for (const Trixel& child : children_of(t)) {
    cover_recursive(child, level + 1, depth, center, radius_deg, out);
  }
}

}  // namespace

std::vector<IdRange> cone_cover(const Vec3& center, double radius_deg,
                                int depth) {
  assert(depth >= 0 && depth <= kMaxDepth);
  const double clamped_radius = std::clamp(radius_deg, 0.0, 180.0);
  const Vec3 c = center.normalized();
  std::vector<IdRange> ranges;
  for (const Trixel& root : root_trixels()) {
    cover_recursive(root, 0, depth, c, clamped_radius, ranges);
  }
  std::sort(ranges.begin(), ranges.end(),
            [](const IdRange& a, const IdRange& b) { return a.first < b.first; });
  // Coalesce adjacent / overlapping ranges.
  std::vector<IdRange> merged;
  for (const IdRange& range : ranges) {
    if (!merged.empty() && range.first <= merged.back().last) {
      merged.back().last = std::max(merged.back().last, range.last);
    } else {
      merged.push_back(range);
    }
  }
  return merged;
}

}  // namespace sky::htm
