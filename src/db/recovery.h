// Redo-log recovery.
//
// The paper's motivation for commit-frequency tuning (section 4.5.2) is the
// recovery trade-off: infrequent commits grow the redo/undo backlog and
// "lengthen the time needed to recover the database in the event of a
// hardware failure." This module implements that recovery path: replay a
// retained WAL record stream into a fresh engine, applying only the inserts
// of transactions that reached a commit record — uncommitted and
// rolled-back work is discarded, exactly the durability contract the
// loaders rely on.
#pragma once

#include <memory>
#include <vector>

#include "common/status.h"
#include "db/engine.h"
#include "storage/wal.h"

namespace sky::db {

struct RecoveryStats {
  int64_t records_scanned = 0;
  int64_t transactions_committed = 0;
  int64_t transactions_discarded = 0;  // uncommitted or rolled back
  int64_t rows_replayed = 0;
  int64_t rows_discarded = 0;
};

// Rebuild a repository from a WAL record stream (engine option
// retain_wal_records must have been on when the log was written). Returns
// the recovered engine; constraint checking runs again during replay, so a
// valid log replays cleanly.
Result<std::unique_ptr<Engine>> recover_from_wal(
    const Schema& schema, const std::vector<storage::WalRecord>& records,
    EngineOptions options = {}, RecoveryStats* stats = nullptr);

// Deep logical comparison of two repositories over the same schema: per
// table, equal row counts and identical row content keyed by primary key.
Status engines_equivalent(const Engine& a, const Engine& b);

}  // namespace sky::db
