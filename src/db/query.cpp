#include "db/query.h"

#include <algorithm>

#include "common/strings.h"
#include "db/table.h"
#include "index/key_codec.h"

namespace sky::db {

Result<bool> condition_matches(const TableDef& def, const Condition& cond,
                               const Row& row) {
  const int idx = def.column_index(cond.column);
  if (idx < 0) {
    return Status(ErrorCode::kInvalidArgument,
                  "no such column: " + cond.column);
  }
  const Value& value = row[static_cast<size_t>(idx)];
  if (value.is_null()) return false;  // SQL: NULL matches nothing
  const int cmp = value.compare(cond.value);
  switch (cond.op) {
    case Condition::Op::kEq: return cmp == 0;
    case Condition::Op::kLt: return cmp < 0;
    case Condition::Op::kLe: return cmp <= 0;
    case Condition::Op::kGt: return cmp > 0;
    case Condition::Op::kGe: return cmp >= 0;
  }
  return Status(ErrorCode::kInternal, "bad condition op");
}

namespace {

void append_condition_value(index::KeyEncoder& encoder, const TableDef& def,
                            const std::string& column, const Value& value) {
  const int idx = def.column_index(column);
  append_value_to_key(encoder, value,
                      def.columns[static_cast<size_t>(idx)].type);
}

}  // namespace

std::optional<QueryPlanner::AccessPath> QueryPlanner::build_range(
    const TableDef& def, const std::vector<std::string>& columns,
    const QuerySpec& spec) const {
  AccessPath path;
  index::KeyEncoder prefix;
  bool any_bound = false;

  for (const std::string& column : columns) {
    // Conditions on this column.
    std::optional<size_t> eq;
    std::vector<size_t> lowers, uppers;
    for (size_t c = 0; c < spec.conditions.size(); ++c) {
      const Condition& cond = spec.conditions[c];
      if (cond.column != column) continue;
      switch (cond.op) {
        case Condition::Op::kEq: eq = c; break;
        case Condition::Op::kGt:
        case Condition::Op::kGe: lowers.push_back(c); break;
        case Condition::Op::kLt:
        case Condition::Op::kLe: uppers.push_back(c); break;
      }
    }
    if (eq.has_value()) {
      append_condition_value(prefix, def, column,
                             spec.conditions[*eq].value);
      path.consumed.push_back(*eq);
      any_bound = true;
      continue;  // the next column can extend the prefix
    }
    if (lowers.empty() && uppers.empty()) break;  // prefix ends here

    // A range column terminates the prefix. Tightest bounds win; the rest
    // of the conditions post-filter (we still mark them consumed only if
    // they defined the bound actually used — simpler: consume one lower and
    // one upper, leave duplicates to the post-filter).
    const std::string prefix_key = prefix.buffer();
    if (!lowers.empty()) {
      // Pick the largest lower bound.
      size_t best = lowers[0];
      for (const size_t c : lowers) {
        if (spec.conditions[c].value.compare(spec.conditions[best].value) >
            0) {
          best = c;
        }
      }
      std::string lo = prefix_key;
      {
        index::KeyEncoder value_enc;
        append_condition_value(value_enc, def, column,
                               spec.conditions[best].value);
        lo += value_enc.buffer();
      }
      if (spec.conditions[best].op == Condition::Op::kGt) {
        lo = index::encoded_key_successor(std::move(lo));
      }
      path.lo = std::move(lo);
      path.consumed.push_back(best);
    } else {
      path.lo = prefix_key;
    }
    if (!uppers.empty()) {
      size_t best = uppers[0];
      for (const size_t c : uppers) {
        if (spec.conditions[c].value.compare(spec.conditions[best].value) <
            0) {
          best = c;
        }
      }
      std::string hi = prefix_key;
      {
        index::KeyEncoder value_enc;
        append_condition_value(value_enc, def, column,
                               spec.conditions[best].value);
        hi += value_enc.buffer();
      }
      if (spec.conditions[best].op == Condition::Op::kLe) {
        hi = index::encoded_key_successor(std::move(hi));
      }
      path.hi = std::move(hi);
      path.consumed.push_back(best);
    } else {
      path.hi = prefix_key.empty()
                    ? std::string()
                    : index::encoded_key_successor(prefix_key);
    }
    return path;
  }

  if (!any_bound) return std::nullopt;
  // Pure equality prefix: [prefix, successor(prefix)).
  path.lo = prefix.buffer();
  path.hi = index::encoded_key_successor(prefix.buffer());
  return path;
}

QueryPlanner::AccessPath QueryPlanner::choose_path(uint32_t table_id,
                                                   const TableDef& def,
                                                   const QuerySpec& spec) const {
  AccessPath best;  // default: full scan, consumes nothing
  // Primary key first.
  if (auto pk_path = build_range(def, def.primary_key, spec)) {
    pk_path->kind = AccessPath::Kind::kPkRange;
    if (pk_path->consumed.size() > best.consumed.size()) {
      best = std::move(*pk_path);
    }
  }
  // Then enabled secondary indexes.
  for (const IndexDef& index : def.indexes) {
    const auto enabled = engine_.index_enabled(table_id, index.name);
    if (!enabled.is_ok() || !*enabled) continue;
    if (auto index_path = build_range(def, index.columns, spec)) {
      index_path->kind = AccessPath::Kind::kIndexRange;
      index_path->index_name = index.name;
      if (index_path->consumed.size() > best.consumed.size()) {
        best = std::move(*index_path);
      }
    }
  }
  return best;
}

Result<QueryResult> QueryPlanner::execute(const QuerySpec& spec) const {
  SKY_ASSIGN_OR_RETURN(const uint32_t table_id,
                       engine_.table_id(spec.table));
  const TableDef& def = engine_.schema().table(table_id);

  // Validate conditions up front.
  for (const Condition& cond : spec.conditions) {
    const int idx = def.column_index(cond.column);
    if (idx < 0) {
      return Status(ErrorCode::kInvalidArgument,
                    "no such column: " + cond.column);
    }
    if (cond.value.is_null()) {
      return Status(ErrorCode::kInvalidArgument,
                    "NULL condition value on " + cond.column);
    }
    if (!cond.value.matches(def.columns[static_cast<size_t>(idx)].type)) {
      return Status(ErrorCode::kTypeMismatch,
                    "condition value type mismatch on " + cond.column);
    }
  }
  int order_column = -1;
  if (spec.order_by.has_value()) {
    order_column = def.column_index(*spec.order_by);
    if (order_column < 0) {
      return Status(ErrorCode::kInvalidArgument,
                    "no such order_by column: " + *spec.order_by);
    }
  }

  const AccessPath path = choose_path(table_id, def, spec);
  QueryResult result;
  std::vector<Row> fetched;
  switch (path.kind) {
    case AccessPath::Kind::kPkRange: {
      SKY_ASSIGN_OR_RETURN(
          fetched,
          engine_.live_view().pk_encoded_range(table_id, path.lo, path.hi));
      result.plan = "PK RANGE " + def.name;
      break;
    }
    case AccessPath::Kind::kIndexRange: {
      SKY_ASSIGN_OR_RETURN(fetched,
                           engine_.live_view().index_encoded_range(
                               table_id, path.index_name, path.lo, path.hi));
      result.plan = "INDEX RANGE " + path.index_name;
      break;
    }
    case AccessPath::Kind::kFullScan:
      fetched = engine_.live_view().scan_collect(
          table_id, [](const Row&) { return true; });
      result.plan = "FULL SCAN " + def.name;
      break;
  }
  result.rows_examined = static_cast<int64_t>(fetched.size());

  // Post-filter with every condition (range-consumed ones are already
  // satisfied; re-checking is cheap and keeps the filter obviously total).
  for (Row& row : fetched) {
    bool keep = true;
    for (const Condition& cond : spec.conditions) {
      SKY_ASSIGN_OR_RETURN(const bool ok, condition_matches(def, cond, row));
      if (!ok) {
        keep = false;
        break;
      }
    }
    if (keep) result.rows.push_back(std::move(row));
  }

  if (order_column >= 0) {
    const auto column = static_cast<size_t>(order_column);
    std::stable_sort(result.rows.begin(), result.rows.end(),
                     [&](const Row& a, const Row& b) {
                       const int cmp = a[column].compare(b[column]);
                       return spec.descending ? cmp > 0 : cmp < 0;
                     });
  }
  if (spec.limit >= 0 &&
      static_cast<int64_t>(result.rows.size()) > spec.limit) {
    result.rows.resize(static_cast<size_t>(spec.limit));
  }
  return result;
}

}  // namespace sky::db
