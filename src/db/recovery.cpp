#include "db/recovery.h"

#include <algorithm>
#include <set>

#include "common/strings.h"

namespace sky::db {

Result<std::unique_ptr<Engine>> recover_from_wal(
    const Schema& schema, const std::vector<storage::WalRecord>& records,
    EngineOptions options, RecoveryStats* stats) {
  RecoveryStats local;
  // Pass 1: which transactions committed? (A rollback record stream undoes
  // inserts; a transaction with rollback records and no commit is simply
  // not replayed.)
  std::set<uint64_t> committed;
  std::set<uint64_t> seen;
  uint32_t max_extent = 0;
  for (const storage::WalRecord& record : records) {
    ++local.records_scanned;
    seen.insert(record.txn_id);
    if (record.type == storage::WalRecordType::kCommit) {
      committed.insert(record.txn_id);
    }
    max_extent = std::max(max_extent, record.extent);
  }
  // The recovered engine must own every extent the log references so each
  // row can be replayed into its original extent (extent-faithful redo).
  options.heap_extents = std::max(options.heap_extents, max_extent + 1);
  local.transactions_committed = static_cast<int64_t>(committed.size());
  local.transactions_discarded =
      static_cast<int64_t>(seen.size() - committed.size());

  // Pass 2: replay committed inserts in log order (which preserves the
  // original parent-before-child order). Rollback records cancel the most
  // recent pending insert of their transaction, so replay tracks a pending
  // stack per transaction... — in this engine rollback always undoes the
  // *entire* transaction (Engine::rollback), and such a transaction has no
  // commit record, so it is already excluded by pass 1.
  auto engine = std::make_unique<Engine>(schema, options);
  const uint64_t txn = engine->begin_transaction();
  // Replay one encoded row into its original extent.
  const auto replay_row =
      [&](const storage::WalRecord& record, std::string_view bytes) -> Status {
    SKY_ASSIGN_OR_RETURN(const Row row, decode_row(bytes));
    if (record.table_id >= static_cast<uint32_t>(schema.table_count())) {
      return Status(ErrorCode::kInternal,
                    "WAL replay: record references unknown table");
    }
    OpCosts scratch;
    const Status status =
        engine->insert_row(txn, record.table_id, row, scratch, record.extent);
    if (!status.is_ok()) {
      return Status(ErrorCode::kInternal,
                    "WAL replay: committed insert failed to re-apply: " +
                        status.to_string());
    }
    ++local.rows_replayed;
    return ok_status();
  };
  for (const storage::WalRecord& record : records) {
    if (record.type == storage::WalRecordType::kInsert) {
      if (committed.count(record.txn_id) == 0) {
        ++local.rows_discarded;
        continue;
      }
      SKY_RETURN_IF_ERROR(replay_row(record, record.payload));
    } else if (record.type == storage::WalRecordType::kInsertBatch) {
      // One record covering a whole columnar run: a sequence of
      // [u32 big-endian length][encoded row] entries, all in record.extent.
      // Replaying them one by one into that extent reproduces the exact
      // page/slot layout the batch append produced (see wal.h).
      const std::string& payload = record.payload;
      size_t pos = 0;
      while (pos < payload.size()) {
        if (payload.size() - pos < 4) {
          return Status(ErrorCode::kInternal,
                        "WAL replay: truncated batch record header");
        }
        const uint32_t len =
            (static_cast<uint32_t>(static_cast<uint8_t>(payload[pos])) << 24) |
            (static_cast<uint32_t>(static_cast<uint8_t>(payload[pos + 1]))
             << 16) |
            (static_cast<uint32_t>(static_cast<uint8_t>(payload[pos + 2]))
             << 8) |
            static_cast<uint32_t>(static_cast<uint8_t>(payload[pos + 3]));
        pos += 4;
        if (payload.size() - pos < len) {
          return Status(ErrorCode::kInternal,
                        "WAL replay: truncated batch record row");
        }
        if (committed.count(record.txn_id) == 0) {
          ++local.rows_discarded;
        } else {
          SKY_RETURN_IF_ERROR(replay_row(
              record, std::string_view(payload.data() + pos, len)));
        }
        pos += len;
      }
    }
  }
  SKY_RETURN_IF_ERROR(engine->commit(txn).status());
  if (stats != nullptr) *stats = local;
  return engine;
}

Status engines_equivalent(const Engine& a, const Engine& b) {
  if (a.schema().table_count() != b.schema().table_count()) {
    return Status(ErrorCode::kFailedPrecondition, "schema table counts differ");
  }
  const ReadView view_a = a.live_view();
  const ReadView view_b = b.live_view();
  for (uint32_t tid = 0; tid < static_cast<uint32_t>(a.schema().table_count());
       ++tid) {
    const TableDef& def = a.schema().table(tid);
    if (view_a.row_count(tid) != view_b.row_count(tid)) {
      return Status(ErrorCode::kInternal,
                    str_format("%s: row counts differ (%lld vs %lld)",
                               def.name.c_str(),
                               static_cast<long long>(view_a.row_count(tid)),
                               static_cast<long long>(view_b.row_count(tid))));
    }
    // Every row of a must exist identically in b (counts equal => bijection
    // because primary keys are unique).
    std::vector<int> pk_columns;
    for (const std::string& pk : def.primary_key) {
      pk_columns.push_back(def.column_index(pk));
    }
    const std::vector<Row> rows_a =
        view_a.scan_collect(tid, [](const Row&) { return true; });
    for (const Row& row : rows_a) {
      Row pk_values;
      for (const int idx : pk_columns) {
        pk_values.push_back(row[static_cast<size_t>(idx)]);
      }
      const auto row_b = view_b.pk_lookup(tid, pk_values);
      if (!row_b.is_ok()) {
        return Status(ErrorCode::kInternal,
                      def.name + ": row missing in second engine: " +
                          row_to_display(row));
      }
      if (row_b->size() != row.size()) {
        return Status(ErrorCode::kInternal, def.name + ": row arity differs");
      }
      for (size_t c = 0; c < row.size(); ++c) {
        if (row[c].compare((*row_b)[c]) != 0) {
          return Status(ErrorCode::kInternal,
                        def.name + ": row content differs at column " +
                            def.columns[c].name);
        }
      }
    }
  }
  return ok_status();
}

}  // namespace sky::db
