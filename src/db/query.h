// A small typed query layer with index selection.
//
// The repository "must act as a query engine to support scientific
// research" while loading continues (paper section 4.5.1) — this is the
// query side of the index-maintenance trade-off the paper studies. There is
// no SQL parser (the workload is programmatic); queries are specs of
// conjunctive conditions with optional ordering and limit. The planner
// picks an access path:
//
//   1. a PK range when the conditions pin a prefix of the primary key,
//   2. an enabled secondary index range when they pin a prefix of one,
//   3. a full scan otherwise;
//
// index-prefix conditions are consumed by the range; the rest post-filter.
// The chosen plan is reported for inspection and testing.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "db/engine.h"
#include "db/row.h"

namespace sky::db {

struct Condition {
  enum class Op { kEq, kLt, kLe, kGt, kGe };
  std::string column;
  Op op = Op::kEq;
  Value value;
};

struct QuerySpec {
  std::string table;
  std::vector<Condition> conditions;  // conjunction
  std::optional<std::string> order_by;
  bool descending = false;
  int64_t limit = -1;  // -1 = unlimited
};

struct QueryResult {
  std::vector<Row> rows;
  std::string plan;          // e.g. "INDEX RANGE idx_htmid", "FULL SCAN"
  int64_t rows_examined = 0; // rows fetched before post-filtering
};

class QueryPlanner {
 public:
  explicit QueryPlanner(const Engine& engine) : engine_(engine) {}

  Result<QueryResult> execute(const QuerySpec& spec) const;

 private:
  struct AccessPath {
    enum class Kind { kFullScan, kPkRange, kIndexRange } kind =
        Kind::kFullScan;
    std::string index_name;          // for kIndexRange
    std::string lo, hi;              // encoded bounds; hi "" = unbounded
    std::vector<size_t> consumed;    // condition indices satisfied by range
  };

  AccessPath choose_path(uint32_t table_id, const TableDef& def,
                         const QuerySpec& spec) const;
  // Try to build a range over `columns`; nullopt if the conditions don't
  // pin a usable prefix.
  std::optional<AccessPath> build_range(
      const TableDef& def, const std::vector<std::string>& columns,
      const QuerySpec& spec) const;

  const Engine& engine_;
};

// Evaluate one condition against a row (shared with tests).
Result<bool> condition_matches(const TableDef& def, const Condition& cond,
                               const Row& row);

}  // namespace sky::db
