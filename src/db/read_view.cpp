// ReadView implementation: every read operation once, with a live branch
// (index latch shared, synchronizes with writers) and a snapshot branch
// (pinned chunk data, latch-free). See read_view.h for the contract and
// engine.h for the deprecated per-mode shims that delegate here.
#include "db/read_view.h"

#include <algorithm>
#include <mutex>
#include <shared_mutex>
#include <tuple>

#include "db/engine.h"
#include "db/snapshot.h"
#include "db/table.h"
#include "index/key_codec.h"

namespace sky::db {

namespace {

Status empty_view_error() {
  return Status(ErrorCode::kFailedPrecondition, "read on an empty ReadView");
}

// Probe key for an HTM-keyed index: the bound tuple is a single int64
// trixel id (IndexDef::htm), not values of the underlying ra/dec columns.
// An empty tuple encodes as the empty key (unbounded).
std::string encode_htm_probe_key(const Row& values) {
  index::KeyEncoder encoder;
  if (!values.empty() && !values[0].is_null()) {
    encoder.append_int64(values[0].as_i64());
  }
  return encoder.take();
}

}  // namespace

int64_t ReadView::row_count(uint32_t table_id) const {
  if (engine_ == nullptr) return 0;
  const Engine& e = *engine_;
  if (snap_ != nullptr) {
    if (table_id >= e.tables_.size()) return 0;
    return snap_->row_count(table_id);
  }
  const std::shared_lock<std::shared_mutex> engine_lock(e.engine_mu_);
  if (table_id >= e.tables_.size()) return 0;
  // Heap counters are latch-free atomics (storage/sharded_heap.h).
  return e.tables_[table_id].heap().row_count();
}

Result<Row> ReadView::pk_lookup(uint32_t table_id, const Row& pk_values) const {
  if (engine_ == nullptr) return empty_view_error();
  const Engine& e = *engine_;
  if (snap_ != nullptr) {
    if (table_id >= e.tables_.size()) {
      return Status(ErrorCode::kNotFound, "bad table id");
    }
    const Table& table = e.tables_[table_id];
    if (pk_values.size() != table.pk_column_indices().size()) {
      return Status(ErrorCode::kInvalidArgument, "pk tuple arity mismatch");
    }
    const std::string key =
        e.encode_tuple_key(table.def(), table.pk_column_indices(), pk_values);
    // Newest chunk first; PKs are unique, so the first hit is the row.
    for (const SnapshotNode* node = snap_->visible_head(table_id);
         node != nullptr; node = node->prev.get()) {
      const SnapshotChunk& chunk = node->chunk;
      const auto it = std::lower_bound(
          chunk.pk.begin(), chunk.pk.end(), key,
          [](const std::pair<std::string, uint32_t>& entry,
             const std::string& k) { return entry.first < k; });
      if (it != chunk.pk.end() && it->first == key) {
        return decode_row(chunk.rows[it->second].bytes);
      }
    }
    return Status(ErrorCode::kNotFound, "no row with given primary key");
  }
  const std::shared_lock<std::shared_mutex> engine_lock(e.engine_mu_);
  if (table_id >= e.tables_.size()) {
    return Status(ErrorCode::kNotFound, "bad table id");
  }
  const Table& table = e.tables_[table_id];
  if (pk_values.size() != table.pk_column_indices().size()) {
    return Status(ErrorCode::kInvalidArgument, "pk tuple arity mismatch");
  }
  const std::string key =
      e.encode_tuple_key(table.def(), table.pk_column_indices(), pk_values);
  // Tree reads synchronize with row publication on the index latch; the
  // heap read inside row_at() takes its extent latch underneath.
  const std::shared_lock<std::shared_mutex> latch(table.index_latch());
  const auto row_id = table.pk_tree().lookup(key);
  if (!row_id.has_value()) {
    return Status(ErrorCode::kNotFound, "no row with given primary key");
  }
  return e.row_at(table, *row_id);
}

Result<std::vector<Row>> ReadView::pk_range(uint32_t table_id, const Row& lo,
                                            const Row& hi) const {
  if (engine_ == nullptr) return empty_view_error();
  const Engine& e = *engine_;
  if (snap_ != nullptr) {
    if (table_id >= e.tables_.size()) {
      return Status(ErrorCode::kNotFound, "bad table id");
    }
    const Table& table = e.tables_[table_id];
    return e.snapshot_collect_range(
        *snap_, table_id, -1, {},
        e.encode_tuple_key(table.def(), table.pk_column_indices(), lo),
        e.encode_tuple_key(table.def(), table.pk_column_indices(), hi));
  }
  const std::shared_lock<std::shared_mutex> engine_lock(e.engine_mu_);
  if (table_id >= e.tables_.size()) {
    return Status(ErrorCode::kNotFound, "bad table id");
  }
  const Table& table = e.tables_[table_id];
  const std::string lo_key =
      e.encode_tuple_key(table.def(), table.pk_column_indices(), lo);
  const std::string hi_key =
      e.encode_tuple_key(table.def(), table.pk_column_indices(), hi);
  const std::shared_lock<std::shared_mutex> latch(table.index_latch());
  std::vector<Row> rows;
  for (const uint64_t row_id : table.pk_tree().range_lookup(lo_key, hi_key)) {
    SKY_ASSIGN_OR_RETURN(Row row, e.row_at(table, row_id));
    rows.push_back(std::move(row));
  }
  return rows;
}

Result<std::vector<Row>> ReadView::index_range(uint32_t table_id,
                                               std::string_view index_name,
                                               const Row& lo,
                                               const Row& hi) const {
  if (engine_ == nullptr) return empty_view_error();
  const Engine& e = *engine_;
  if (snap_ != nullptr) {
    if (table_id >= e.tables_.size()) {
      return Status(ErrorCode::kNotFound, "bad table id");
    }
    const Table& table = e.tables_[table_id];
    // def/column_indices are immutable after construction — safe latch-free.
    // `enabled` is deliberately NOT consulted: visibility is per chunk.
    for (size_t s = 0; s < table.secondaries().size(); ++s) {
      const SecondaryIndex& secondary = table.secondaries()[s];
      if (secondary.def.name != index_name) continue;
      const bool htm = secondary.def.htm.has_value();
      return e.snapshot_collect_range(
          *snap_, table_id, static_cast<int>(s), index_name,
          htm ? encode_htm_probe_key(lo)
              : e.encode_tuple_key(table.def(), secondary.column_indices, lo),
          htm ? encode_htm_probe_key(hi)
              : e.encode_tuple_key(table.def(), secondary.column_indices, hi));
    }
    return Status(ErrorCode::kNotFound,
                  "no such index: " + std::string(index_name));
  }
  const std::shared_lock<std::shared_mutex> engine_lock(e.engine_mu_);
  if (table_id >= e.tables_.size()) {
    return Status(ErrorCode::kNotFound, "bad table id");
  }
  const Table& table = e.tables_[table_id];
  for (const SecondaryIndex& secondary : table.secondaries()) {
    if (secondary.def.name != index_name) continue;
    if (!secondary.enabled) {
      return index_unavailable_error(index_name, "index is disabled");
    }
    const bool htm = secondary.def.htm.has_value();
    const std::string lo_key =
        htm ? encode_htm_probe_key(lo)
            : e.encode_tuple_key(table.def(), secondary.column_indices, lo);
    const std::string hi_key =
        htm ? encode_htm_probe_key(hi)
            : e.encode_tuple_key(table.def(), secondary.column_indices, hi);
    const std::shared_lock<std::shared_mutex> latch(table.index_latch());
    std::vector<Row> rows;
    for (const uint64_t row_id : secondary.tree.range_lookup(lo_key, hi_key)) {
      SKY_ASSIGN_OR_RETURN(Row row, e.row_at(table, row_id));
      rows.push_back(std::move(row));
    }
    return rows;
  }
  return Status(ErrorCode::kNotFound,
                "no such index: " + std::string(index_name));
}

Result<std::vector<Row>> ReadView::pk_encoded_range(uint32_t table_id,
                                                    const std::string& lo,
                                                    const std::string& hi)
    const {
  if (engine_ == nullptr) return empty_view_error();
  const Engine& e = *engine_;
  if (snap_ != nullptr) {
    return e.snapshot_collect_range(*snap_, table_id, -1, {}, lo, hi);
  }
  const std::shared_lock<std::shared_mutex> engine_lock(e.engine_mu_);
  if (table_id >= e.tables_.size()) {
    return Status(ErrorCode::kNotFound, "bad table id");
  }
  const Table& table = e.tables_[table_id];
  const std::shared_lock<std::shared_mutex> latch(table.index_latch());
  const std::vector<uint64_t> row_ids =
      hi.empty() ? table.pk_tree().range_lookup_unbounded(lo)
                 : table.pk_tree().range_lookup(lo, hi);
  std::vector<Row> rows;
  rows.reserve(row_ids.size());
  for (const uint64_t row_id : row_ids) {
    SKY_ASSIGN_OR_RETURN(Row row, e.row_at(table, row_id));
    rows.push_back(std::move(row));
  }
  return rows;
}

Result<std::vector<Row>> ReadView::index_encoded_range(
    uint32_t table_id, std::string_view index_name, const std::string& lo,
    const std::string& hi) const {
  if (engine_ == nullptr) return empty_view_error();
  const Engine& e = *engine_;
  if (snap_ != nullptr) {
    if (table_id >= e.tables_.size()) {
      return Status(ErrorCode::kNotFound, "bad table id");
    }
    const Table& table = e.tables_[table_id];
    for (size_t s = 0; s < table.secondaries().size(); ++s) {
      if (table.secondaries()[s].def.name != index_name) continue;
      return e.snapshot_collect_range(*snap_, table_id, static_cast<int>(s),
                                      index_name, lo, hi);
    }
    return Status(ErrorCode::kNotFound,
                  "no such index: " + std::string(index_name));
  }
  const std::shared_lock<std::shared_mutex> engine_lock(e.engine_mu_);
  if (table_id >= e.tables_.size()) {
    return Status(ErrorCode::kNotFound, "bad table id");
  }
  const Table& table = e.tables_[table_id];
  for (const SecondaryIndex& secondary : table.secondaries()) {
    if (secondary.def.name != index_name) continue;
    if (!secondary.enabled) {
      return index_unavailable_error(index_name, "index is disabled");
    }
    const std::shared_lock<std::shared_mutex> latch(table.index_latch());
    const std::vector<uint64_t> row_ids =
        hi.empty() ? secondary.tree.range_lookup_unbounded(lo)
                   : secondary.tree.range_lookup(lo, hi);
    std::vector<Row> rows;
    rows.reserve(row_ids.size());
    for (const uint64_t row_id : row_ids) {
      SKY_ASSIGN_OR_RETURN(Row row, e.row_at(table, row_id));
      rows.push_back(std::move(row));
    }
    return rows;
  }
  return Status(ErrorCode::kNotFound,
                "no such index: " + std::string(index_name));
}

std::vector<Row> ReadView::scan_collect(
    uint32_t table_id, const std::function<bool(const Row&)>& pred,
    OpCosts* costs) const {
  std::vector<Row> rows;
  if (engine_ == nullptr) return rows;
  const Engine& e = *engine_;
  if (snap_ != nullptr) {
    if (table_id >= e.tables_.size()) return rows;
    OpCosts scratch;
    OpCosts& tally = costs != nullptr ? *costs : scratch;
    // Gather the pinned refs, then visit in physical heap order so the
    // result matches a live scan on a quiesced heap. lock_wait_ns stays 0
    // by construction — the zero-latch regression test asserts it.
    std::vector<SnapshotChunk::RowRef> refs;
    refs.reserve(static_cast<size_t>(snap_->row_count(table_id)));
    snap_->visit_chunks(table_id, [&](const SnapshotChunk& chunk) {
      refs.insert(refs.end(), chunk.rows.begin(), chunk.rows.end());
    });
    std::sort(
        refs.begin(), refs.end(),
        [](const SnapshotChunk::RowRef& a, const SnapshotChunk::RowRef& b) {
          return std::tie(a.slot.extent, a.slot.page, a.slot.slot) <
                 std::tie(b.slot.extent, b.slot.page, b.slot.slot);
        });
    for (const SnapshotChunk::RowRef& ref : refs) {
      tally.heap_bytes += static_cast<int64_t>(ref.bytes.size());
      auto row = decode_row(ref.bytes);
      if (row.is_ok() && pred(*row)) rows.push_back(std::move(*row));
    }
    tally.rows_applied += static_cast<int64_t>(refs.size());
    return rows;
  }
  const std::shared_lock<std::shared_mutex> engine_lock(e.engine_mu_);
  if (table_id >= e.tables_.size()) return rows;
  const Table& table = e.tables_[table_id];
  // Heap-only read: the scan synchronizes on each extent latch inside the
  // heap and sees published rows exactly (pending rows are hidden).
  table.heap().scan([&](storage::SlotId, std::string_view bytes) {
    auto row = decode_row(bytes);
    if (row.is_ok() && pred(*row)) rows.push_back(std::move(*row));
  });
  return rows;
}

Status ReadView::scan_heap(
    uint32_t table_id,
    const std::function<void(storage::SlotId, std::string_view)>& fn) const {
  if (engine_ == nullptr) return empty_view_error();
  const Engine& e = *engine_;
  if (snap_ != nullptr) {
    if (table_id >= e.tables_.size()) {
      return Status(ErrorCode::kNotFound, "bad table id");
    }
    std::vector<SnapshotChunk::RowRef> refs;
    refs.reserve(static_cast<size_t>(snap_->row_count(table_id)));
    snap_->visit_chunks(table_id, [&](const SnapshotChunk& chunk) {
      refs.insert(refs.end(), chunk.rows.begin(), chunk.rows.end());
    });
    std::sort(
        refs.begin(), refs.end(),
        [](const SnapshotChunk::RowRef& a, const SnapshotChunk::RowRef& b) {
          return std::tie(a.slot.extent, a.slot.page, a.slot.slot) <
                 std::tie(b.slot.extent, b.slot.page, b.slot.slot);
        });
    for (const SnapshotChunk::RowRef& ref : refs) fn(ref.slot, ref.bytes);
    return ok_status();
  }
  const std::shared_lock<std::shared_mutex> engine_lock(e.engine_mu_);
  if (table_id >= e.tables_.size()) {
    return Status(ErrorCode::kNotFound, "bad table id");
  }
  e.tables_[table_id].heap().scan(fn);
  return ok_status();
}

}  // namespace sky::db
