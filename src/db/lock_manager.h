// Concurrency gates: the RDBMS limit on concurrent transactions.
//
// The paper's parallelism study (section 5.4 / Fig. 7) attributes the
// throughput collapse beyond 6-7 parallel loaders to "hitting the RDBMS
// limit on the number of concurrent transactions" — escalating lock waits
// and occasional long stalls. The engine models that limit as a gate on
// transaction slots (begin_transaction blocks on it) plus per-table
// interested-transaction-list (ITL) gates acquired at a transaction's first
// write to each table and held to commit/abort.
//
// Gate ordering (see DESIGN.md "Real-mode admission control"): transaction
// gate -> per-table ITL gates (in first-write order, holding no latches) ->
// engine rwlock -> table latches. A session blocked on any gate holds no
// lock at all, so gate waits never wedge DDL or rollback.
//
// Every implementation reports the same GateStats snapshot, which is also
// the shape the client layer derives from sim::Resource — one schema for
// txn-slot vs. ITL wait breakdowns in both execution modes.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/rng.h"
#include "common/units.h"

namespace sky::db {

// Timed latch acquisition: try the fast path first; only a contended
// acquisition pays for two clock reads. Returns nanoseconds spent blocked
// (0 on the uncontended path). Used by the engine to attribute parallel-load
// makespan to latch waits vs. useful work.
Nanos lock_exclusive_timed(std::shared_mutex& mu);
Nanos lock_shared_timed(std::shared_mutex& mu);

// Unified snapshot of one gate's history. The sim path reports the same
// shape (client::gate_stats_from converts sim::Resource accounting), so
// ParallelLoadReport has a single source for wait breakdowns.
struct GateStats {
  uint64_t acquires = 0;
  uint64_t waits = 0;     // acquisitions that blocked
  Nanos total_wait = 0;   // real or virtual, per implementation
  Nanos max_wait = 0;
  int64_t in_use = 0;     // slots currently held (0 once quiesced)
  uint64_t stalls = 0;    // bounded-stall penalties injected (FairSlotGate)
  Nanos stall_time = 0;

  GateStats& operator+=(const GateStats& other) {
    acquires += other.acquires;
    waits += other.waits;
    total_wait += other.total_wait;
    if (other.max_wait > max_wait) max_wait = other.max_wait;
    in_use += other.in_use;
    stalls += other.stalls;
    stall_time += other.stall_time;
    return *this;
  }
};

// What one acquire() paid — threaded into OpCosts so per-call telemetry
// matches the sim session's per-call accounting.
struct GateAcquire {
  Nanos wait_ns = 0;
  Nanos stall_ns = 0;
  int64_t queue_depth = 0;  // acquirers queued ahead when this one arrived
  bool contended = false;   // had to queue for a slot
  bool deadlock = false;    // admission refused: this wait would close a cycle
};

// Waits-for graph over admission gates, shared by every ITL gate of one
// engine. An edge owner -> gate means "owner is blocked waiting for a slot
// on gate"; holders(gate) is the set of owners currently occupying slots.
// A blocked acquisition closes a deadlock iff some current holder of the
// requested gate (transitively, through its own wait edge) waits on a gate
// the requester already holds slots on.
//
// Soundness: one mutex serializes add_wait, so the cycle check and the
// wait-edge registration are a single atomic step — two concurrent
// would-be-cyclic waits cannot both miss each other; the later one sees the
// earlier one's edge and is refused. The victim is always the requester
// that would close the cycle, which holds no gate mutex while being refused
// (the check runs before a FIFO ticket is taken), so refusal never wedges
// the gate's ticket protocol.
class WaitGraph {
 public:
  // Register that `owner` holds a slot on `gate` (uncontended admission).
  void add_hold(uint64_t owner, const void* gate);
  // Drop one hold of `owner` on `gate`.
  void remove_hold(uint64_t owner, const void* gate);
  // `owner` is about to block on `gate`. Returns true (and registers
  // nothing) if the wait would close a cycle; otherwise records the wait
  // edge and returns false.
  bool add_wait(uint64_t owner, const void* gate);
  // `owner`'s blocked wait on `gate` was admitted: wait edge -> hold.
  void grant(uint64_t owner, const void* gate);

  // Owners currently blocked (for tests / introspection).
  size_t waiting_count() const;

 private:
  bool reachable_locked(uint64_t from_owner, uint64_t target_owner) const;

  mutable std::mutex mu_;
  // gate -> owners holding at least one slot (multiset semantics via count).
  std::unordered_map<const void*, std::unordered_map<uint64_t, int>> holders_;
  // owner -> the single gate it is blocked on (an owner blocks on at most
  // one gate at a time: acquisitions are sequential within a transaction).
  std::unordered_map<uint64_t, const void*> waiting_;
};

class SlotGate {
 public:
  virtual ~SlotGate() = default;
  virtual GateAcquire acquire() = 0;
  virtual void release() = 0;
  virtual GateStats stats() const = 0;

  // Live policy surface (control plane). Default: fixed-capacity gate.
  virtual void set_slots(int64_t /*slots*/) {}
  virtual int64_t slots() const { return 0; }  // 0 = unbounded / not modeled

  // Owner-attributed acquisition for deadlock detection. Gates that do not
  // participate in a WaitGraph fall back to the anonymous protocol.
  virtual GateAcquire acquire_as(uint64_t /*owner*/) { return acquire(); }
  virtual void release_as(uint64_t /*owner*/) { release(); }
};

// Snapshot of every admission gate an engine (or sim server) runs:
// the instance-wide transaction gate plus the per-table ITL gates summed.
// Returned by Engine::concurrency_stats() and client::SimServer::
// concurrency_stats() in identical shape.
struct ConcurrencyStats {
  GateStats transaction_gate;
  GateStats itl;  // aggregated across all per-table gates
};

// Never blocks; used when concurrency is modeled elsewhere (simulation) or
// unlimited. Thread-safe counting.
class NullSlotGate final : public SlotGate {
 public:
  GateAcquire acquire() override;
  void release() override;
  GateStats stats() const override;

 private:
  mutable std::mutex mu_;
  GateStats stats_;
};

// Real counting gate for multi-threaded runs (unfair: cv wakeup order).
// Used for the instance-wide transaction gate.
class BlockingSlotGate final : public SlotGate {
 public:
  explicit BlockingSlotGate(int64_t slots);
  GateAcquire acquire() override;
  void release() override;
  GateStats stats() const override;
  void set_slots(int64_t slots) override;
  int64_t slots() const override;

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  int64_t slots_;
  int64_t available_;  // may go negative transiently after a shrink
  GateStats stats_;
};

// Fair (FIFO-ticket) counting gate with a bounded-stall penalty, used for
// per-table ITL admission. Fairness matters here: an unfair gate starves one
// loader indefinitely under saturation, which shows up as a spurious
// makespan tail instead of the paper's uniform slowdown.
//
// The stall model mirrors SimServer::draw_stall(): each *contended* admission
// draws bernoulli(probability) from a deterministic per-gate stream and, on a
// hit, sleeps `duration` before returning (the occasional long stall the
// paper observed when the ITL is saturated). The draw happens only for
// contended acquisitions, so uncontended workloads never pay it.
// Bounded-stall model for FairSlotGate (namespace scope so it can be a
// defaulted constructor argument).
struct GateStallModel {
  double probability = 0.0;
  Nanos duration = 0;
  uint64_t seed = 0;
};

class FairSlotGate final : public SlotGate {
 public:
  explicit FairSlotGate(int64_t slots, GateStallModel stall = {},
                        WaitGraph* wait_graph = nullptr);
  GateAcquire acquire() override;
  void release() override;
  GateStats stats() const override;
  void set_slots(int64_t slots) override;
  int64_t slots() const override;

  // Owner-attributed protocol: consults the WaitGraph *before* taking a
  // FIFO ticket, so a refused (deadlocked) acquisition never leaves a
  // ticket that would wedge serving_ order.
  GateAcquire acquire_as(uint64_t owner) override;
  void release_as(uint64_t owner) override;

 private:
  GateAcquire acquire_impl(uint64_t owner, bool track_owner);

  mutable std::mutex mu_;
  std::condition_variable cv_;
  int64_t slots_;  // live-adjustable via set_slots
  int64_t in_use_ = 0;
  uint64_t next_ticket_ = 0;  // handed to arriving acquirers
  uint64_t serving_ = 0;      // tickets admitted so far
  GateStats stats_;
  const GateStallModel stall_;
  Rng stall_rng_;
  WaitGraph* const wait_graph_;  // not owned; nullptr = detection off
};

}  // namespace sky::db
