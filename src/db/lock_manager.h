// Concurrency gates: the RDBMS limit on concurrent transactions.
//
// The paper's parallelism study (section 5.4 / Fig. 7) attributes the
// throughput collapse beyond 6-7 parallel loaders to "hitting the RDBMS
// limit on the number of concurrent transactions" — escalating lock waits
// and occasional long stalls. The engine models that limit as a gate on
// transaction slots plus per-table interested-transaction-list (ITL) slots.
//
// Two implementations share one interface: a real blocking gate (condition
// variable) for multi-threaded real-time runs, and a virtual-time gate
// backed by sim::Resource used in simulation mode (constructed by the
// client layer). The engine only sees the interface.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <shared_mutex>

#include "common/units.h"

namespace sky::db {

// Timed latch acquisition: try the fast path first; only a contended
// acquisition pays for two clock reads. Returns nanoseconds spent blocked
// (0 on the uncontended path). Used by the engine to attribute parallel-load
// makespan to latch waits vs. useful work.
Nanos lock_exclusive_timed(std::shared_mutex& mu);
Nanos lock_shared_timed(std::shared_mutex& mu);

class SlotGate {
 public:
  virtual ~SlotGate() = default;
  virtual void acquire() = 0;
  virtual void release() = 0;

  struct Stats {
    uint64_t acquires = 0;
    uint64_t waits = 0;       // acquisitions that blocked
    Nanos total_wait = 0;     // real or virtual, per implementation
  };
  virtual Stats stats() const = 0;
};

// Never blocks; used when concurrency is modeled elsewhere (simulation) or
// unlimited.
class NullSlotGate final : public SlotGate {
 public:
  void acquire() override { ++stats_.acquires; }
  void release() override {}
  Stats stats() const override { return stats_; }

 private:
  Stats stats_;
};

// Real counting gate for multi-threaded runs.
class BlockingSlotGate final : public SlotGate {
 public:
  explicit BlockingSlotGate(int64_t slots);
  void acquire() override;
  void release() override;
  Stats stats() const override;

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  int64_t available_;
  Stats stats_;
};

}  // namespace sky::db
