#include "db/control_plane.h"

#include <algorithm>

#include "common/strings.h"

namespace sky::db {

namespace {

GateStats gate_delta(const GateStats& now, const GateStats& prev) {
  GateStats d = now;  // gauges (in_use, max_wait) keep the newer value
  d.acquires = now.acquires - prev.acquires;
  d.waits = now.waits - prev.waits;
  d.total_wait = now.total_wait - prev.total_wait;
  d.stalls = now.stalls - prev.stalls;
  d.stall_time = now.stall_time - prev.stall_time;
  return d;
}

core::QueryLaneStats lane_delta(const core::QueryLaneStats& now,
                                const core::QueryLaneStats& prev) {
  core::QueryLaneStats d = now;  // queue_depth / percentiles stay gauges
  d.gate = gate_delta(now.gate, prev.gate);
  d.completed = now.completed - prev.completed;
  return d;
}

}  // namespace

std::string PolicyPatch::describe() const {
  std::string out;
  const auto append = [&out](std::string part) {
    if (!out.empty()) out += " ";
    out += std::move(part);
  };
  if (commit_window.has_value()) {
    append(str_format("commit_window=%.2fms",
                      static_cast<double>(*commit_window) / kMillisecond));
  }
  if (max_group_commits.has_value()) {
    append(str_format("max_group_commits=%lld",
                      static_cast<long long>(*max_group_commits)));
  }
  if (transaction_slots.has_value()) {
    append(str_format("txn_slots=%lld",
                      static_cast<long long>(*transaction_slots)));
  }
  if (itl_slots_per_table.has_value()) {
    append(str_format("itl_slots=%lld",
                      static_cast<long long>(*itl_slots_per_table)));
  }
  if (extent_assignment.has_value()) {
    append(std::string("extent_assignment=") +
           (*extent_assignment == ExtentAssignment::kLeastLoaded
                ? "least_loaded"
                : "round_robin"));
  }
  if (out.empty()) out = "(no change)";
  return out;
}

EngineStats EngineStats::delta_since(const EngineStats& prev) const {
  EngineStats d = *this;

  d.wal.records = wal.records - prev.wal.records;
  d.wal.bytes_appended = wal.bytes_appended - prev.wal.bytes_appended;
  d.wal.flushes = wal.flushes - prev.wal.flushes;
  d.wal.bytes_flushed = wal.bytes_flushed - prev.wal.bytes_flushed;
  d.wal.group_piggybacks = wal.group_piggybacks - prev.wal.group_piggybacks;
  d.wal.commit_requests = wal.commit_requests - prev.wal.commit_requests;
  d.wal.relaxed_acks = wal.relaxed_acks - prev.wal.relaxed_acks;
  d.wal.leader_wait_ns = wal.leader_wait_ns - prev.wal.leader_wait_ns;
  for (size_t i = 0; i < storage::WalStats::kGroupSizeBuckets; ++i) {
    d.wal.group_size_hist[i] =
        wal.group_size_hist[i] - prev.wal.group_size_hist[i];
  }
  // max_unflushed_bytes stays the run-wide high-water mark.

  d.concurrency.transaction_gate = gate_delta(concurrency.transaction_gate,
                                              prev.concurrency.transaction_gate);
  d.concurrency.itl = gate_delta(concurrency.itl, prev.concurrency.itl);

  d.query.interactive = lane_delta(query.interactive, prev.query.interactive);
  d.query.batch = lane_delta(query.batch, prev.query.batch);
  d.query.batch_yields = query.batch_yields - prev.query.batch_yields;
  // read_lsn / pins / pin age stay gauges.

  d.snapshots.chunks_published =
      snapshots.chunks_published - prev.snapshots.chunks_published;
  d.snapshots.rows_published =
      snapshots.rows_published - prev.snapshots.rows_published;
  d.snapshots.pins_taken = snapshots.pins_taken - prev.snapshots.pins_taken;
  // published_lsn / active_pins / oldest_pin_age stay gauges.

  for (TableExtentStats& table : d.extents) {
    const TableExtentStats* before = nullptr;
    for (const TableExtentStats& candidate : prev.extents) {
      if (candidate.table_id == table.table_id &&
          candidate.extents.size() == table.extents.size()) {
        before = &candidate;
        break;
      }
    }
    if (before == nullptr) continue;  // table shape changed: keep totals
    for (size_t e = 0; e < table.extents.size(); ++e) {
      table.extents[e].rows -= before->extents[e].rows;
      table.extents[e].pages -= before->extents[e].pages;
      table.extents[e].bytes -= before->extents[e].bytes;
    }
  }

  d.total_rows = total_rows - prev.total_rows;
  d.total_heap_bytes = total_heap_bytes - prev.total_heap_bytes;
  // policies stays this snapshot's live values.
  return d;
}

double EngineStats::extent_skew() const {
  double worst = 1.0;
  for (const TableExtentStats& table : extents) {
    if (table.extents.size() < 2) continue;
    int64_t total = 0;
    int64_t max_bytes = 0;
    for (const auto& extent : table.extents) {
      total += extent.bytes;
      max_bytes = std::max(max_bytes, extent.bytes);
    }
    if (total <= 0) continue;
    const double mean = static_cast<double>(total) /
                        static_cast<double>(table.extents.size());
    worst = std::max(worst, static_cast<double>(max_bytes) / mean);
  }
  return worst;
}

}  // namespace sky::db
