#include "db/value.h"

#include <cmath>

#include "common/strings.h"

namespace sky::db {

std::string_view column_type_name(ColumnType type) {
  switch (type) {
    case ColumnType::kInt32: return "INT32";
    case ColumnType::kInt64: return "INT64";
    case ColumnType::kDouble: return "DOUBLE";
    case ColumnType::kString: return "STRING";
    case ColumnType::kTimestamp: return "TIMESTAMP";
  }
  return "UNKNOWN";
}

Result<double> Value::numeric() const {
  if (is_i32()) return static_cast<double>(as_i32());
  if (is_i64()) return static_cast<double>(as_i64());
  if (is_f64()) return as_f64();
  return Status(ErrorCode::kTypeMismatch, "value is not numeric");
}

bool Value::matches(ColumnType type) const {
  if (is_null()) return true;
  switch (type) {
    case ColumnType::kInt32: return is_i32();
    case ColumnType::kInt64: return is_i64();
    case ColumnType::kTimestamp: return is_i64();
    case ColumnType::kDouble: return is_f64();
    case ColumnType::kString: return is_str();
  }
  return false;
}

int Value::compare(const Value& other) const {
  // NULL sorts first, mirroring the key codec.
  if (is_null() || other.is_null()) {
    if (is_null() && other.is_null()) return 0;
    return is_null() ? -1 : 1;
  }
  // Cross-kind numeric comparison goes through double; same-kind integers
  // compare exactly.
  auto kind_rank = [](const Value& v) {
    if (v.is_str()) return 1;
    return 0;
  };
  if (kind_rank(*this) != kind_rank(other)) {
    return kind_rank(*this) < kind_rank(other) ? -1 : 1;
  }
  if (is_str()) {
    const int c = as_str().compare(other.as_str());
    return c < 0 ? -1 : (c > 0 ? 1 : 0);
  }
  if (is_i64() && other.is_i64()) {
    return as_i64() < other.as_i64() ? -1 : (as_i64() > other.as_i64() ? 1 : 0);
  }
  if (is_i32() && other.is_i32()) {
    return as_i32() < other.as_i32() ? -1 : (as_i32() > other.as_i32() ? 1 : 0);
  }
  const double a = numeric().value();
  const double b = other.numeric().value();
  return a < b ? -1 : (a > b ? 1 : 0);
}

std::string Value::to_display() const {
  if (is_null()) return "NULL";
  if (is_i32()) return std::to_string(as_i32());
  if (is_i64()) return std::to_string(as_i64());
  if (is_f64()) return str_format("%.17g", as_f64());
  return as_str();
}

Result<Value> Value::parse_as(ColumnType type, std::string_view text) {
  const std::string_view trimmed = trim(text);
  // Empty field or explicit markers mean NULL — real catalog extraction
  // programs emit both.
  if (trimmed.empty() || trimmed == "NULL" || trimmed == "\\N") {
    return Value::null();
  }
  switch (type) {
    case ColumnType::kInt32: {
      SKY_ASSIGN_OR_RETURN(const int32_t v, parse_int32(trimmed));
      return Value::i32(v);
    }
    case ColumnType::kInt64:
    case ColumnType::kTimestamp: {
      SKY_ASSIGN_OR_RETURN(const int64_t v, parse_int64(trimmed));
      return Value::i64(v);
    }
    case ColumnType::kDouble: {
      SKY_ASSIGN_OR_RETURN(const double v, parse_double(trimmed));
      if (std::isnan(v)) {
        return Status(ErrorCode::kParseError, "NaN is not a valid value");
      }
      return Value::f64(v);
    }
    case ColumnType::kString:
      return Value::str(std::string(trimmed));
  }
  return Status(ErrorCode::kInternal, "unknown column type");
}

}  // namespace sky::db
