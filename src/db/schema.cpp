#include "db/schema.h"

#include <set>

#include "common/strings.h"
#include "htm/htm.h"

namespace sky::db {

namespace {

// An HTM index keys rows by trixel id computed from two position columns.
// Requirements: non-unique (trixels are shared), both columns declared
// kDouble NOT NULL (a row without a position cannot be placed on the mesh),
// depth within the id space htm/htm.h supports. On success the IndexDef's
// column list is auto-filled to {ra, dec} so the rest of the engine (column
// resolution, rebuilds, column-batch key builders) treats it like any other
// secondary index.
Status validate_htm_index(const TableDef& table, IndexDef& index) {
  const HtmIndexSpec& spec = *index.htm;
  if (index.unique) {
    return Status(ErrorCode::kInvalidArgument,
                  "HTM index " + index.name + " cannot be unique");
  }
  if (spec.depth < 0 || spec.depth > htm::kMaxDepth) {
    return Status(ErrorCode::kInvalidArgument,
                  str_format("HTM index %s depth %d out of range [0, %d]",
                             index.name.c_str(), spec.depth, htm::kMaxDepth));
  }
  for (const std::string* column : {&spec.ra_column, &spec.dec_column}) {
    const int idx = table.column_index(*column);
    if (idx < 0) {
      return Status(ErrorCode::kInvalidArgument,
                    "HTM index column " + *column + " missing in " +
                        table.name);
    }
    const ColumnDef& def = table.columns[static_cast<size_t>(idx)];
    if (def.type != ColumnType::kDouble) {
      return Status(ErrorCode::kInvalidArgument,
                    "HTM index column " + *column + " must be DOUBLE");
    }
    if (def.nullable) {
      return Status(ErrorCode::kInvalidArgument,
                    "HTM index column " + *column + " must be NOT NULL");
    }
  }
  if (index.columns.empty()) {
    index.columns = {spec.ra_column, spec.dec_column};
  } else if (index.columns !=
             std::vector<std::string>{spec.ra_column, spec.dec_column}) {
    return Status(ErrorCode::kInvalidArgument,
                  "HTM index " + index.name +
                      " columns must be empty or {ra, dec}");
  }
  return ok_status();
}

}  // namespace

int TableDef::column_index(std::string_view column_name) const {
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i].name == column_name) return static_cast<int>(i);
  }
  return -1;
}

Status Schema::add_table(TableDef def) {
  if (def.name.empty()) {
    return Status(ErrorCode::kInvalidArgument, "table name empty");
  }
  if (by_name_.count(def.name) > 0) {
    return Status(ErrorCode::kAlreadyExists,
                  "duplicate table name: " + def.name);
  }
  if (def.columns.empty()) {
    return Status(ErrorCode::kInvalidArgument,
                  "table has no columns: " + def.name);
  }
  std::set<std::string_view> column_names;
  for (const ColumnDef& column : def.columns) {
    if (!column_names.insert(column.name).second) {
      return Status(ErrorCode::kInvalidArgument,
                    "duplicate column " + column.name + " in " + def.name);
    }
  }
  if (def.primary_key.empty()) {
    return Status(ErrorCode::kInvalidArgument,
                  "table " + def.name + " has no primary key");
  }
  for (const std::string& pk_col : def.primary_key) {
    const int idx = def.column_index(pk_col);
    if (idx < 0) {
      return Status(ErrorCode::kInvalidArgument,
                    "PK column " + pk_col + " missing in " + def.name);
    }
    // PK columns are implicitly NOT NULL.
    def.columns[static_cast<size_t>(idx)].nullable = false;
  }
  for (const ForeignKey& fk : def.foreign_keys) {
    const auto parent_it = by_name_.find(fk.parent_table);
    if (parent_it == by_name_.end()) {
      return Status(
          ErrorCode::kInvalidArgument,
          str_format("FK in %s references %s, which is not declared yet "
                     "(declare parents first)",
                     def.name.c_str(), fk.parent_table.c_str()));
    }
    const TableDef& parent = tables_[parent_it->second];
    if (fk.columns.size() != parent.primary_key.size()) {
      return Status(ErrorCode::kInvalidArgument,
                    "FK column count mismatch in " + def.name);
    }
    for (size_t i = 0; i < fk.columns.size(); ++i) {
      const int child_idx = def.column_index(fk.columns[i]);
      if (child_idx < 0) {
        return Status(ErrorCode::kInvalidArgument,
                      "FK column " + fk.columns[i] + " missing in " + def.name);
      }
      const int parent_idx = parent.column_index(parent.primary_key[i]);
      const ColumnType child_type =
          def.columns[static_cast<size_t>(child_idx)].type;
      const ColumnType parent_type =
          parent.columns[static_cast<size_t>(parent_idx)].type;
      if (child_type != parent_type) {
        return Status(ErrorCode::kInvalidArgument,
                      "FK column type mismatch: " + def.name + "." +
                          fk.columns[i] + " vs " + parent.name + "." +
                          parent.primary_key[i]);
      }
    }
  }
  std::set<std::string_view> index_names;
  for (IndexDef& index : def.indexes) {
    if (index.name.empty() || !index_names.insert(index.name).second) {
      return Status(ErrorCode::kInvalidArgument,
                    "bad or duplicate index name in " + def.name);
    }
    if (index.htm.has_value()) {
      SKY_RETURN_IF_ERROR(validate_htm_index(def, index));
    }
    if (index.columns.empty()) {
      return Status(ErrorCode::kInvalidArgument,
                    "index " + index.name + " has no columns");
    }
    for (const std::string& col : index.columns) {
      if (def.column_index(col) < 0) {
        return Status(ErrorCode::kInvalidArgument,
                      "index column " + col + " missing in " + def.name);
      }
    }
  }
  for (const CheckConstraint& check : def.checks) {
    const int idx = def.column_index(check.column);
    if (idx < 0) {
      return Status(ErrorCode::kInvalidArgument,
                    "check column " + check.column + " missing in " + def.name);
    }
    const ColumnType type = def.columns[static_cast<size_t>(idx)].type;
    if (type == ColumnType::kString) {
      return Status(ErrorCode::kInvalidArgument,
                    "range check on string column " + check.column);
    }
  }
  const auto id = static_cast<uint32_t>(tables_.size());
  by_name_[def.name] = id;
  tables_.push_back(std::move(def));
  return ok_status();
}

bool Schema::has_table(std::string_view name) const {
  return by_name_.find(name) != by_name_.end();
}

Result<uint32_t> Schema::table_id(std::string_view name) const {
  const auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return Status(ErrorCode::kNotFound,
                  "no such table: " + std::string(name));
  }
  return it->second;
}

std::vector<uint32_t> Schema::topological_order() const {
  // add_table enforces parents-declared-first, so declaration order is
  // already topological.
  std::vector<uint32_t> order(tables_.size());
  for (uint32_t i = 0; i < tables_.size(); ++i) order[i] = i;
  return order;
}

std::vector<std::pair<uint32_t, uint32_t>> Schema::fk_edges() const {
  std::vector<std::pair<uint32_t, uint32_t>> edges;
  for (uint32_t child = 0; child < tables_.size(); ++child) {
    for (const ForeignKey& fk : tables_[child].foreign_keys) {
      edges.emplace_back(child, by_name_.at(fk.parent_table));
    }
  }
  return edges;
}

}  // namespace sky::db
