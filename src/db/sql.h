// A minimal textual query language over the QueryPlanner.
//
// The repository's end state (paper section 7) is scientists "submitting
// queries through web interfaces, as well as programmatically from
// scientific codes". This parser accepts the conjunctive SELECT subset that
// workload needs and lowers it to a QuerySpec:
//
//   SELECT * FROM <table>
//     [WHERE <col> <op> <literal> [AND <col> <op> <literal>]*]
//     [ORDER BY <col> [ASC|DESC]]
//     [LIMIT <n>]
//
// ops: = < <= > >= ; literals: integers, floats, 'single-quoted strings'.
// Keywords are case-insensitive; identifiers are case-sensitive. Integer
// literals are coerced to the referenced column's integer width; a float
// literal against an integer column (or vice versa) is a type error, caught
// here with a position-annotated message.
#pragma once

#include <string_view>

#include "common/status.h"
#include "db/query.h"
#include "db/schema.h"

namespace sky::db {

// Parse the query text against the schema (for table/column resolution and
// literal coercion). The result runs through QueryPlanner::execute.
Result<QuerySpec> parse_query(const Schema& schema, std::string_view text);

}  // namespace sky::db
