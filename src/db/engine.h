// The embedded relational engine ("stardb") standing in for Oracle 10g.
//
// Insert-oriented by design: the Palomar-Quest repository workload is
// append-only catalog loading plus read-only science queries. Enforces
// primary-key, foreign-key, NOT NULL, and range-check constraints on every
// insert; maintains a B+tree per primary key and per enabled secondary
// index; writes redo to a WAL; tracks page residency in a buffer-cache
// model; tallies physical I/O per device role.
//
// Batch semantics mirror the JDBC core API the paper used (section 4.3):
// executeBatch applies rows in order and stops at the first failure — rows
// before the failure remain applied, the failing index is reported, and the
// rest of the batch is discarded and cannot be re-applied. The bulk-loading
// algorithm's skip-and-repack recovery is built on exactly this contract.
//
// Thread safety: all public methods are safe to call from multiple threads.
// Concurrency is fine-grained (see DESIGN.md "Engine concurrency model"):
// normal operations take an engine-wide rwlock *shared*, the destination
// table's metadata latch *shared*, and then the table's index latch
// (exclusive while publishing a row into the trees, shared for queries and
// FK probes). Heap appends land in per-transaction extents guarded by the
// heap's own extent latches (storage/sharded_heap.h), so sessions loading
// the *same* table append in parallel and only serialize on the short
// index-latch window that checks constraints and updates the B+trees. The
// buffer cache, WAL, transaction map, and I/O tally are internally
// thread-safe. Only DDL-like operations (set_index_enabled, rebuild_index,
// bulk_load_sorted, verify_integrity, rollback, set_insert_observer) take
// the engine rwlock exclusive and stop the world. Parallel loaders
// therefore make genuinely parallel progress; the configured gates — not
// an implementation mutex — are the modeled RDBMS concurrency limit.
//
// Admission gates sit *outside* every lock (order: transaction gate ->
// per-table ITL gates -> engine rwlock -> table latches). A transaction's
// first write to a table acquires that table's ITL gate (when
// ConcurrencyPolicy::itl_slots_per_table > 0) before touching the engine
// rwlock, and every gate is held to commit/abort — so a session blocked on
// admission holds no latch, and DDL/rollback can always run. Transactions
// that write several tables must do so in a consistent order (the loaders
// write parent-before-child topological order); see DESIGN.md "Real-mode
// admission control" for the deadlock-freedom argument.
//
// A transaction id may be used by one thread at a time (the client layer
// guarantees this: one session per loader thread, one open transaction per
// session).
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/units.h"
#include "core/engine_policies.h"
#include "core/query_stats.h"
#include "db/column_batch.h"
#include "db/lock_manager.h"
#include "db/op_costs.h"
#include "db/read_view.h"
#include "db/row.h"
#include "db/schema.h"
#include "db/snapshot.h"
#include "db/table.h"
#include "storage/buffer_cache.h"
#include "storage/device.h"
#include "storage/wal.h"

namespace sky::db {

// Modeled device latencies for real-thread (non-simulation) runs. The
// engine is memory-resident, so with these at zero a "database call" costs
// only CPU; enabling them makes each call pay a real sleep for the device
// work it implies — redo written per batch, data/index pages written per
// batch, the redo flush forced by a commit. The sleeps are taken with no
// latches held (redo flush: under the WAL's group-commit protocol), so
// fine-grained locking lets parallel loaders overlap them, while a
// seed-style engine-wide mutex would serialize them. Simulation mode keeps
// them at zero and prices the same costs through the client CostModel.
struct ModeledDeviceLatency {
  Nanos batch_redo_write = 0;     // per insert_batch / insert_row call
  Nanos data_write_per_page = 0;  // per heap page opened or leaf split
  Nanos commit_log_flush = 0;     // per WAL group flush (leader pays it)
  // Synchronous write to a heap extent's storage unit, paid per appended row
  // *while the extent latch is held* (one storage unit = one write stream).
  // Unlike the latencies above it is wired into the heap, not paid at call
  // end — appends to distinct extents overlap, appends to the same extent
  // queue. This is what bench_engine_scaling's same-table scenario measures.
  Nanos extent_append_write = 0;

  // extent_append_write intentionally excluded: it is a property of the
  // heap (paid inside ShardedHeap), not of the end-of-call sleep this
  // predicate gates.
  bool enabled() const {
    return batch_redo_write > 0 || data_write_per_page > 0 ||
           commit_log_flush > 0;
  }
};

// How a transaction's heap extent is chosen for each table it writes.
enum class ExtentAssignment {
  // Extent picked round-robin at begin_transaction(); every table the
  // transaction writes uses that same extent index (the original policy).
  kRoundRobin,
  // Extent re-picked per (transaction, table) at first write: the extent of
  // that table's heap currently holding the fewest bytes. Balances extents
  // when file sizes are skewed or loaders come and go.
  kLeastLoaded,
};

struct EngineOptions {
  // Server data cache in 8 KiB pages (section 4.5.5 knob).
  int64_t cache_pages = 16384;
  // DBWR dirty-page trigger (fixed count, independent of cache size).
  int64_t dirty_trigger = 256;
  // Every shared policy in one aggregate (core/engine_policies.h): commit
  // cadence/durability, admission limits, query lanes, and the spatial
  // subsystem's knobs — the same aggregate client::ServerConfig embeds, so
  // tuning code can hand one object across both backends. Defaults keep the
  // real engine permissive: 64 transaction slots, ITL gates off —
  // simulation models the limits in the server cost model instead.
  core::EnginePolicies policies;
  // Source-compatible views of the folded policies: the former loose fields
  // live on as references into `policies`, so existing call sites
  // (`options.concurrency.itl_slots_per_table`, `options.commit_window`)
  // compile unchanged. The copy operations below deliberately omit the
  // references from their init lists, so each copy's default member
  // initializers rebind them to the copy's own `policies`.
  core::ConcurrencyPolicy& concurrency = policies.concurrency;
  core::SpatialPolicy& spatial = policies.spatial;
  // Commit-coalescing group commit (section 4.5.2): a commit-flush leader
  // holds the device write open up to this long (0 = flush immediately) so
  // other sessions' commits fold into one flush, closing early once
  // max_group_commits commits are queued. See storage::WalOptions.
  Nanos& commit_window = policies.commit.commit_window;
  int64_t& max_group_commits = policies.commit.max_group_commits;
  // kStrict acks a commit only after the covering flush; kRelaxed acks at
  // append and exposes the durable-LSN watermark (Engine::wal_durable_lsn).
  storage::DurabilityMode& durability = policies.commit.durability;
  // Independent append streams per table heap (1 = the pre-sharding layout;
  // clamped to [1, storage::kMaxHeapExtents]). Transactions are assigned an
  // extent round-robin at begin_transaction(), so N parallel loaders of one
  // table spread across min(N, heap_extents) append streams.
  uint32_t heap_extents = 1;
  ExtentAssignment extent_assignment = ExtentAssignment::kRoundRobin;
  storage::DeviceLayout device_layout = storage::DeviceLayout::separate_raids();
  // Keep full WAL records in memory for replay verification (tests only).
  bool retain_wal_records = false;
  // Probe foreign keys on insert (and audit FK closure in
  // verify_integrity). Shard engines inside a db::ShardedRepository turn
  // this off: a child row's parent may live on another shard, so per-engine
  // FK probes would spuriously reject valid rows — the repository defers FK
  // checking to its cross-shard reconciliation pass
  // (ShardedRepository::reconcile_foreign_keys). PK/NOT NULL/range/unique
  // constraints are unaffected.
  bool enforce_foreign_keys = true;
  // Publish copy-on-write snapshot chunks at commit (db/snapshot.h) so
  // snapshot ReadViews serve a consistent committed prefix without touching
  // any latch. Costs commit-time work proportional to the transaction's
  // rows plus a second copy of its index keys; turn off for ingest-only
  // instances that never serve snapshot reads.
  bool snapshot_reads = true;
  ModeledDeviceLatency latency;

  EngineOptions() = default;
  EngineOptions(const EngineOptions& other)
      : cache_pages(other.cache_pages),
        dirty_trigger(other.dirty_trigger),
        policies(other.policies),
        heap_extents(other.heap_extents),
        extent_assignment(other.extent_assignment),
        device_layout(other.device_layout),
        retain_wal_records(other.retain_wal_records),
        enforce_foreign_keys(other.enforce_foreign_keys),
        snapshot_reads(other.snapshot_reads),
        latency(other.latency) {}
  EngineOptions& operator=(const EngineOptions& other) {
    cache_pages = other.cache_pages;
    dirty_trigger = other.dirty_trigger;
    policies = other.policies;  // references already view this object's copy
    heap_extents = other.heap_extents;
    extent_assignment = other.extent_assignment;
    device_layout = other.device_layout;
    retain_wal_records = other.retain_wal_records;
    enforce_foreign_keys = other.enforce_foreign_keys;
    snapshot_reads = other.snapshot_reads;
    latency = other.latency;
    return *this;
  }
};

// Canonical fail-closed error for a read over an unavailable secondary
// index. Both read modes report the same code — kFailedPrecondition —
// whether the index is disabled right now (live) or a visible snapshot
// chunk was committed while it was disabled (the chunk carries no key run
// and the read cannot be served without silently missing rows).
Status index_unavailable_error(std::string_view index_name,
                               std::string_view detail);

// Unified stats snapshot / live-policy patch (db/control_plane.h). Declared
// here so Engine can return/accept them by value without the header cycle.
struct EngineStats;
struct PolicyPatch;

struct BatchError {
  size_t row_index = 0;  // index within the submitted batch
  Status status;
};

struct BatchResult {
  int64_t rows_applied = 0;
  std::optional<BatchError> error;
  OpCosts costs;
};

struct CommitResult {
  int64_t wal_bytes_flushed = 0;
  // How the commit became durable (group commit): led a flush, rode one, or
  // was acked at append (relaxed mode: neither flag set).
  bool led_flush = false;
  bool piggybacked = false;
  OpCosts costs;
};

class Engine {
 public:
  explicit Engine(Schema schema, EngineOptions options = {});

  const Schema& schema() const { return schema_; }
  const EngineOptions& options() const { return options_; }
  Result<uint32_t> table_id(std::string_view name) const {
    return schema_.table_id(name);
  }

  // ----------------------------------------------------------- transactions
  // Blocks on the instance-wide transaction gate. When `costs` is given the
  // gate wait is attributed to costs->txn_slot_wait_ns (and lock_wait_ns).
  uint64_t begin_transaction(OpCosts* costs = nullptr);
  Result<CommitResult> commit(uint64_t txn_id);
  // Undo every insert of the transaction (reverse order). Stops the world
  // (engine-exclusive): rollbacks are rare in the append-only workload.
  Status rollback(uint64_t txn_id);

  // ---------------------------------------------------------------- inserts
  // JDBC executeBatch semantics (see file header).
  BatchResult insert_batch(uint64_t txn_id, uint32_t table_id,
                           std::span<const Row> rows);
  // Columnar batch insert — the batch ingest hot path. Applies rows
  // [first, first + count) of `batch` with exactly insert_batch's JDBC
  // semantics and final state: when the rows' primary keys arrive strictly
  // increasing (presorted catalog blocks) and the table has no enabled
  // unique secondary index, constraints are settled for the whole run under
  // ONE exclusive index-latch window, the heap absorbs the run under one
  // extent-latch acquisition (ShardedHeap::append_batch), redo is one
  // kInsertBatch WAL record, and each B+tree takes one sorted-run merge
  // (insert_sorted_run) instead of count root-to-leaf descents. Otherwise
  // the rows fall back to the row-at-a-time path (identical semantics,
  // no speedup).
  BatchResult insert_column_batch(uint64_t txn_id, uint32_t table_id,
                                  const ColumnBatch& batch, size_t first = 0,
                                  size_t count = static_cast<size_t>(-1));
  // Single-row insert (the non-bulk baseline path). `extent_override` pins
  // the heap extent instead of using the transaction's assigned one —
  // recovery uses it to replay each row into its original extent.
  Status insert_row(uint64_t txn_id, uint32_t table_id, const Row& row,
                    OpCosts& costs,
                    std::optional<uint32_t> extent_override = std::nullopt);

  // ------------------------------------------------------------ maintenance
  // DDL-like operations: engine-exclusive (quiesce all sessions).
  // Disable (drop) or enable a secondary index. Disabling clears it;
  // enabling leaves it empty until rebuild_index().
  Status set_index_enabled(uint32_t table_id, std::string_view index_name,
                           bool enabled);
  // Rebuild a secondary index from the heap (sorted bulk build) — the
  // "recreate secondary indices after the catch-up load" path.
  Status rebuild_index(uint32_t table_id, std::string_view index_name);

  // Preload an empty table from PK-sorted rows, bypassing WAL/cache (fast
  // fixture path for database-size experiments, Fig. 9). Constraints are
  // still validated structurally (types, arity, strict PK order).
  Status bulk_load_sorted(uint32_t table_id, const std::vector<Row>& rows);

  // -------------------------------------------------------------- read views
  // The unified read API (db/read_view.h): one handle carrying every read
  // operation, constructed live or over a pinned snapshot. All query code —
  // the planner, the spatial operators, the scheduler's admitted queries —
  // reads through a ReadView; the per-mode method families below are shims.
  ReadView live_view() const { return ReadView(this, nullptr); }
  // View of the pinned committed prefix; reads take no engine lock, table
  // latch, extent latch, or gate. `snap` must outlive the returned view.
  ReadView view_at(const Snapshot& snap) const {
    return ReadView(this, &snap);
  }

  // Pin a consistent committed-prefix snapshot (db/snapshot.h). Requires
  // EngineOptions::snapshot_reads (the default); with it off, pins succeed
  // but see an empty repository. A Snapshot must not outlive its engine.
  Snapshot pin_snapshot() const { return snapshots_.pin(); }
  SnapshotStats snapshot_stats() const { return snapshots_.stats(); }
  // Newest publication LSN a fresh pin would read (the snapshot analogue of
  // wal_durable_lsn(): one tick per committed writing transaction).
  uint64_t snapshot_published_lsn() const {
    return snapshots_.published_lsn();
  }

  int64_t total_rows() const;
  int64_t total_heap_bytes() const;
  // Is the named secondary index currently enabled?
  Result<bool> index_enabled(uint32_t table_id,
                             std::string_view index_name) const;

  // The pre-ReadView per-mode read families (pk_lookup / snapshot_* /
  // scan_heap shims) were deprecated and have been removed — every read
  // goes through live_view() / view_at() (see DESIGN.md §10).

  // ----------------------------------------------------------- control plane
  // The unified telemetry snapshot: every per-subsystem surface below plus
  // the live policy values, in one EngineStats (db/control_plane.h). This
  // is the public stats entry point; the per-subsystem getters in the
  // telemetry block are its components, kept for callers that need just one
  // surface.
  EngineStats stats() const;
  // Apply a bounded set of live policy adjustments (commit window, gate
  // slot counts, extent assignment) atomically with respect to concurrent
  // appliers. Validates the whole patch first and applies nothing on
  // failure. Safe to call while loaders and queries run: each field lands
  // under its owning subsystem's lock (or an atomic), never by mutating
  // EngineOptions — options() stays the construction-time snapshot.
  Status update_policies(const PolicyPatch& patch);
  // Attach/detach (pass nullptr-equivalent empty function) the query-lane
  // stats source stats() folds in — the QueryScheduler registers itself.
  void set_query_stats_source(std::function<core::QueryStats()> source);

  // -------------------------------------------------------------- telemetry
  // All telemetry returns copied snapshots taken under the owning
  // component's lock — never references into concurrently mutated state.
  storage::WalStats wal_stats() const { return wal_.stats(); }
  std::vector<storage::WalRecord> wal_records() const {
    return wal_.records();
  }
  // Durable-LSN watermark (record sequence numbers, aligned with
  // wal_records()): records with sequence <= wal_durable_lsn() are covered
  // by a device write; above it they would be lost in a crash. Under the
  // default strict durability every acked commit is below the watermark;
  // under DurabilityMode::kRelaxed the watermark advances only at
  // sync_wal() checkpoints.
  uint64_t wal_durable_lsn() const { return wal_.durable_lsn(); }
  uint64_t wal_appended_lsn() const { return wal_.appended_lsn(); }
  // Force pending redo to the device regardless of durability mode (the
  // relaxed-mode checkpoint); returns bytes written by this call.
  int64_t sync_wal() { return wal_.sync(); }
  storage::CacheEvents cache_events() const { return cache_.events(); }
  storage::IoTally io_tally() const { return global_io_.snapshot(); }
  // Unified admission-gate snapshot: the transaction gate plus every
  // per-table ITL gate summed (lock_manager.h). The sim server exposes the
  // same shape, so reports read one schema in both execution modes.
  ConcurrencyStats concurrency_stats() const;
  // Per-extent heap occupancy for one table (rows / pages / bytes per
  // extent) — how evenly a parallel load spread across append streams.
  Result<std::vector<storage::ShardedHeap::ExtentStats>> heap_extent_stats(
      uint32_t table_id) const;
  // Observer invoked (under the destination table's latch) after each
  // successful insert; tests use it to audit parent-before-child ordering.
  // Setting it quiesces the engine (engine-exclusive).
  void set_insert_observer(std::function<void(uint32_t, uint64_t)> observer);

  // Deep integrity audit (tests): heap/PK agreement, FK closure, secondary
  // index completeness, row decodability. Engine-exclusive.
  Status verify_integrity() const;

 private:
  // ReadView (db/read_view.h) is the implementation of the read API: its
  // methods live in read_view.cpp and work directly against the engine's
  // internals (latches for live reads, pinned chunks for snapshot reads).
  friend class ReadView;

  struct UndoEntry {
    uint32_t table_id;
    storage::SlotId slot;
    std::string pk_key;
    std::vector<std::pair<size_t, std::string>> secondary_keys;
    // View of the stored heap row (stable per the storage contract). At
    // commit the undo log is recycled into the table's snapshot chunk:
    // slots + views become the chunk rows, pk/secondary keys its sorted
    // runs (db/snapshot.h).
    std::string_view bytes;
  };
  // Per-(transaction, table) admission record, created at the transaction's
  // first write to the table: the ITL gate held (if any), what acquiring it
  // cost, and the heap extent resolved for this table's appends.
  struct TableAdmission {
    uint32_t table_id = 0;
    uint32_t extent = 0;
    bool gated = false;      // holds one slot of the table's ITL gate
    bool contended = false;  // admission had to queue (escalation applies)
    int64_t queue_depth = 0;
  };
  struct Transaction {
    uint64_t id;
    // Heap extent this transaction's inserts land in (round-robin at
    // begin; under kRoundRobin every table uses this same extent index,
    // under kLeastLoaded it is only the fallback).
    uint32_t extent = 0;
    // Mutated only by the owning session's thread (map lookup is locked;
    // the entry itself needs no lock).
    std::vector<UndoEntry> undo;
    // Tables admitted so far, in first-write order (= release order at
    // commit/abort). Same single-owner contract as `undo`.
    std::vector<TableAdmission> admissions;
  };

  // Look up a live transaction under txn_mu_; nullptr when unknown. The
  // returned pointer stays valid until the owner commits or rolls back
  // (unordered_map never invalidates references on insert).
  Transaction* find_transaction(uint64_t txn_id);
  // Admit the transaction to a table on its first write (idempotent per
  // table): acquire the table's ITL gate when configured — called with NO
  // engine lock or latch held (gates precede the rwlock in the lock order)
  // — and resolve the heap extent per the extent-assignment policy. Gate
  // waits/stalls are attributed to `costs`. Returns the admission record
  // (copied: the vector may grow later) — or kDeadlockDetected when the
  // blocked acquisition would close a waits-for cycle (the requester is the
  // victim; its transaction stays live so the caller can roll back).
  Result<TableAdmission> admit_table(Transaction& txn, uint32_t table_id,
                                     OpCosts& costs);
  // One row, three phases: pre-check constraints (index latch shared),
  // append to the admitted heap extent as a hidden pending row (extent
  // latch only — parallel across extents), then re-check and publish (index
  // latch exclusive). See DESIGN.md "Heap extent sharding".
  Status insert_row_latched(Transaction& txn, uint32_t table_id,
                            const Row& row, OpCosts& costs, uint32_t extent);
  // Fast path of insert_column_batch (pre-checked eligible): settle
  // constraints for the whole run under one exclusive index-latch window,
  // append the surviving prefix to the heap in one latched batch, log one
  // kInsertBatch record, and merge each tree's sorted run. `pk_keys` holds
  // the encoded PK of every submitted row (strictly increasing). Fills
  // `result` (rows_applied / error / costs) in place.
  void insert_column_run_latched(Transaction& txn, uint32_t table_id,
                                 const ColumnBatch& batch, size_t first,
                                 size_t count,
                                 std::vector<std::string> pk_keys,
                                 uint32_t extent, BatchResult& result);
  // Constraint checks against the current trees (PK, FK, unique secondary).
  // Caller holds the table's index latch (shared or exclusive); parents'
  // index latches are taken shared inside. Returns the first violation.
  Status check_constraints(const Table& table, uint32_t tid, const Row& row,
                           const std::string& pk_key, OpCosts& costs);
  Status validate_row(const Table& table, const Row& row,
                      OpCosts& costs) const;
  // Modeled device sleep for a completed call (no locks held).
  // `escalation` inflates the sleep (factor >= 0) for transactions whose
  // ITL admission was contended — the sim server's lock-escalation model
  // applied to real time.
  void pay_batch_latency(const OpCosts& costs, double escalation = 0.0) const;
  // Recycle a committed transaction's undo log into per-table snapshot
  // chunks and publish them (commit path, snapshot_reads on). Called with
  // the engine rwlock held shared.
  void publish_snapshot_chunks(std::vector<UndoEntry> undo);
  // Shared core of the snapshot range reads: collect [lo, hi) (empty hi =
  // unbounded) from each visible chunk's PK run (secondary < 0) or the
  // given secondary run, merge by key order, decode. `index_name` labels
  // the fail-closed error when a chunk predates the secondary index.
  Result<std::vector<Row>> snapshot_collect_range(const Snapshot& snap,
                                                  uint32_t table_id,
                                                  int secondary,
                                                  std::string_view index_name,
                                                  const std::string& lo,
                                                  const std::string& hi) const;
  storage::IoRole role_of_file(uint32_t file_id) const;
  Result<Row> row_at(const Table& table, uint64_t row_id) const;
  std::string encode_tuple_key(const TableDef& def,
                               const std::vector<int>& column_indices,
                               const Row& values) const;

  // Engine-wide rwlock: shared for normal operations, exclusive for the
  // DDL-like stop-the-world paths. Outermost in the lock hierarchy.
  mutable std::shared_mutex engine_mu_;
  Schema schema_;
  EngineOptions options_;
  // Waits-for graph shared by every ITL gate (declared before tables_ so
  // the gates' back-pointers outlive them on destruction).
  WaitGraph itl_wait_graph_;
  std::vector<Table> tables_;
  storage::BufferCache cache_;
  storage::WriteAheadLog wal_;
  std::unique_ptr<SlotGate> txn_gate_;
  mutable std::mutex txn_mu_;  // guards transactions_ (the map, not entries)
  std::unordered_map<uint64_t, Transaction> transactions_;
  std::atomic<uint64_t> next_txn_id_{1};
  std::atomic<uint32_t> next_extent_{0};  // round-robin extent assignment
  // Live extent-assignment policy (update_policies); seeded from options_.
  // Atomic: admit_table reads it with no lock held.
  std::atomic<ExtentAssignment> extent_assignment_{
      ExtentAssignment::kRoundRobin};
  // Serializes update_policies() appliers (each field still lands under its
  // owning subsystem's lock; this only makes a whole patch atomic with
  // respect to other patches).
  std::mutex policy_mu_;
  // Query-lane stats source folded into stats() (set by QueryScheduler).
  mutable std::mutex query_stats_mu_;
  std::function<core::QueryStats()> query_stats_source_;
  std::vector<storage::IoRole> file_roles_;  // cache file id -> device role
  storage::SharedIoTally global_io_;
  // Mutable: pinning is logically const (a read) but registers the pin.
  mutable SnapshotManager snapshots_;
  std::function<void(uint32_t, uint64_t)> insert_observer_;
};

}  // namespace sky::db
