// The embedded relational engine ("stardb") standing in for Oracle 10g.
//
// Insert-oriented by design: the Palomar-Quest repository workload is
// append-only catalog loading plus read-only science queries. Enforces
// primary-key, foreign-key, NOT NULL, and range-check constraints on every
// insert; maintains a B+tree per primary key and per enabled secondary
// index; writes redo to a WAL; tracks page residency in a buffer-cache
// model; tallies physical I/O per device role.
//
// Batch semantics mirror the JDBC core API the paper used (section 4.3):
// executeBatch applies rows in order and stops at the first failure — rows
// before the failure remain applied, the failing index is reported, and the
// rest of the batch is discarded and cannot be re-applied. The bulk-loading
// algorithm's skip-and-repack recovery is built on exactly this contract.
//
// Thread safety: all public methods are safe to call from multiple threads;
// one engine-wide mutex serializes calls (the database server is the shared
// resource — contention among parallel loaders is the point of the study).
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "db/lock_manager.h"
#include "db/op_costs.h"
#include "db/row.h"
#include "db/schema.h"
#include "db/table.h"
#include "storage/buffer_cache.h"
#include "storage/device.h"
#include "storage/wal.h"

namespace sky::db {

struct EngineOptions {
  // Server data cache in 8 KiB pages (section 4.5.5 knob).
  int64_t cache_pages = 16384;
  // DBWR dirty-page trigger (fixed count, independent of cache size).
  int64_t dirty_trigger = 256;
  // Concurrent-transaction slots (real-mode gate; simulation mode models
  // the limit in the server model instead and passes a large value here).
  int64_t max_concurrent_transactions = 64;
  storage::DeviceLayout device_layout = storage::DeviceLayout::separate_raids();
  // Keep full WAL records in memory for replay verification (tests only).
  bool retain_wal_records = false;
};

struct BatchError {
  size_t row_index = 0;  // index within the submitted batch
  Status status;
};

struct BatchResult {
  int64_t rows_applied = 0;
  std::optional<BatchError> error;
  OpCosts costs;
};

struct CommitResult {
  int64_t wal_bytes_flushed = 0;
  OpCosts costs;
};

class Engine {
 public:
  explicit Engine(Schema schema, EngineOptions options = {});

  const Schema& schema() const { return schema_; }
  const EngineOptions& options() const { return options_; }
  Result<uint32_t> table_id(std::string_view name) const {
    return schema_.table_id(name);
  }

  // ----------------------------------------------------------- transactions
  uint64_t begin_transaction();
  Result<CommitResult> commit(uint64_t txn_id);
  // Undo every insert of the transaction (reverse order).
  Status rollback(uint64_t txn_id);

  // ---------------------------------------------------------------- inserts
  // JDBC executeBatch semantics (see file header).
  BatchResult insert_batch(uint64_t txn_id, uint32_t table_id,
                           std::span<const Row> rows);
  // Single-row insert (the non-bulk baseline path).
  Status insert_row(uint64_t txn_id, uint32_t table_id, const Row& row,
                    OpCosts& costs);

  // ------------------------------------------------------------ maintenance
  // Disable (drop) or enable a secondary index. Disabling clears it;
  // enabling leaves it empty until rebuild_index().
  Status set_index_enabled(uint32_t table_id, std::string_view index_name,
                           bool enabled);
  // Rebuild a secondary index from the heap (sorted bulk build) — the
  // "recreate secondary indices after the catch-up load" path.
  Status rebuild_index(uint32_t table_id, std::string_view index_name);

  // Preload an empty table from PK-sorted rows, bypassing WAL/cache (fast
  // fixture path for database-size experiments, Fig. 9). Constraints are
  // still validated structurally (types, arity, strict PK order).
  Status bulk_load_sorted(uint32_t table_id, const std::vector<Row>& rows);

  // ----------------------------------------------------------------- queries
  int64_t row_count(uint32_t table_id) const;
  int64_t total_rows() const;
  int64_t total_heap_bytes() const;
  // Look up one row by full primary key.
  Result<Row> pk_lookup(uint32_t table_id, const Row& pk_values) const;
  // All rows whose PK is in [lo, hi) — keys built from value tuples.
  Result<std::vector<Row>> pk_range(uint32_t table_id, const Row& lo,
                                    const Row& hi) const;
  // Range over a secondary index: [lo, hi) on the indexed columns.
  Result<std::vector<Row>> index_range(uint32_t table_id,
                                       std::string_view index_name,
                                       const Row& lo, const Row& hi) const;
  // Full scan with predicate.
  std::vector<Row> scan_collect(
      uint32_t table_id, const std::function<bool(const Row&)>& pred) const;

  // Encoded-key range access for the query planner: rows whose PK /
  // secondary-index key is in [lo, hi); empty `hi` means unbounded. Keys are
  // built with index::KeyEncoder / db::append_value_to_key in column order.
  Result<std::vector<Row>> pk_encoded_range(uint32_t table_id,
                                            const std::string& lo,
                                            const std::string& hi) const;
  Result<std::vector<Row>> index_encoded_range(uint32_t table_id,
                                               std::string_view index_name,
                                               const std::string& lo,
                                               const std::string& hi) const;
  // Is the named secondary index currently enabled?
  Result<bool> index_enabled(uint32_t table_id,
                             std::string_view index_name) const;

  // -------------------------------------------------------------- telemetry
  storage::WalStats wal_stats() const;
  const std::vector<storage::WalRecord>& wal_records() const {
    return wal_.records();
  }
  storage::CacheEvents cache_events() const;
  storage::IoTally io_tally() const;
  SlotGate::Stats txn_gate_stats() const;
  // Observer invoked (under the engine lock) after each successful insert;
  // tests use it to audit parent-before-child ordering.
  void set_insert_observer(std::function<void(uint32_t, uint64_t)> observer);

  // Deep integrity audit (tests): heap/PK agreement, FK closure, secondary
  // index completeness, row decodability.
  Status verify_integrity() const;

 private:
  struct UndoEntry {
    uint32_t table_id;
    storage::SlotId slot;
    std::string pk_key;
    std::vector<std::pair<size_t, std::string>> secondary_keys;
  };
  struct Transaction {
    uint64_t id;
    std::vector<UndoEntry> undo;
  };

  Status insert_row_locked(uint64_t txn_id, uint32_t table_id, const Row& row,
                           OpCosts& costs);
  Status validate_row_locked(const Table& table, const Row& row,
                             OpCosts& costs) const;
  storage::IoRole role_of_file(uint32_t file_id) const;
  Result<Row> row_at(const Table& table, uint64_t row_id) const;
  std::string encode_tuple_key(const TableDef& def,
                               const std::vector<int>& column_indices,
                               const Row& values) const;

  mutable std::mutex mu_;
  Schema schema_;
  EngineOptions options_;
  std::vector<Table> tables_;
  storage::BufferCache cache_;
  storage::WriteAheadLog wal_;
  std::unique_ptr<SlotGate> txn_gate_;
  std::unordered_map<uint64_t, Transaction> transactions_;
  uint64_t next_txn_id_ = 1;
  std::vector<storage::IoRole> file_roles_;  // cache file id -> device role
  OpCosts* active_costs_ = nullptr;          // routed to by the cache IO hook
  storage::IoTally global_io_;
  std::function<void(uint32_t, uint64_t)> insert_observer_;
};

}  // namespace sky::db
