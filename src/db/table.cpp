#include "db/table.h"

#include <cassert>

#include "htm/htm.h"
#include "index/key_codec.h"

namespace sky::db {

void append_value_to_key(index::KeyEncoder& encoder, const Value& value,
                         ColumnType type) {
  if (value.is_null()) {
    encoder.append_null();
    return;
  }
  switch (type) {
    case ColumnType::kInt32:
      encoder.append_int32(value.as_i32());
      return;
    case ColumnType::kInt64:
    case ColumnType::kTimestamp:
      encoder.append_int64(value.as_i64());
      return;
    case ColumnType::kDouble:
      encoder.append_double(value.as_f64());
      return;
    case ColumnType::kString:
      encoder.append_string(value.as_str());
      return;
  }
  assert(false && "unknown column type");
}

Table::Table(uint32_t table_id, TableDef table_def, uint32_t heap_extents,
             Nanos heap_append_latency)
    : id_(table_id),
      def_(std::move(table_def)),
      heap_(heap_extents, heap_append_latency) {
  pk_column_indices_.reserve(def_.primary_key.size());
  for (const std::string& pk_col : def_.primary_key) {
    pk_column_indices_.push_back(def_.column_index(pk_col));
  }
  secondaries_.reserve(def_.indexes.size());
  for (const IndexDef& index_def : def_.indexes) {
    SecondaryIndex secondary;
    secondary.def = index_def;
    for (const std::string& col : index_def.columns) {
      secondary.column_indices.push_back(def_.column_index(col));
    }
    secondaries_.push_back(std::move(secondary));
  }
}

std::string Table::encode_pk_key(const Row& row) const {
  index::KeyEncoder encoder;
  for (const int idx : pk_column_indices_) {
    append_value_to_key(encoder, row[static_cast<size_t>(idx)],
                        def_.columns[static_cast<size_t>(idx)].type);
  }
  return encoder.take();
}

std::string Table::encode_index_key(
    const SecondaryIndex& index, const Row& row,
    std::optional<uint64_t> row_id_suffix) const {
  index::KeyEncoder encoder;
  if (index.def.htm.has_value()) {
    // HTM index: the key is the trixel id containing (ra, dec), not the raw
    // column values. column_indices is {ra, dec} (schema.cpp auto-fill);
    // both are NOT NULL by validation.
    const double ra = row[static_cast<size_t>(index.column_indices[0])].as_f64();
    const double dec =
        row[static_cast<size_t>(index.column_indices[1])].as_f64();
    encoder.append_int64(
        static_cast<int64_t>(htm::htm_id_radec(ra, dec, index.def.htm->depth)));
  } else {
    for (const int idx : index.column_indices) {
      append_value_to_key(encoder, row[static_cast<size_t>(idx)],
                          def_.columns[static_cast<size_t>(idx)].type);
    }
  }
  if (!index.def.unique && row_id_suffix.has_value()) {
    encoder.append_int64(static_cast<int64_t>(*row_id_suffix));
  }
  return encoder.take();
}

std::optional<std::string> Table::encode_fk_probe(const TableDef& child_def,
                                                  const ForeignKey& fk,
                                                  const Row& child_row,
                                                  const TableDef& parent_def) {
  index::KeyEncoder encoder;
  for (size_t i = 0; i < fk.columns.size(); ++i) {
    const int child_idx = child_def.column_index(fk.columns[i]);
    assert(child_idx >= 0);
    const Value& value = child_row[static_cast<size_t>(child_idx)];
    if (value.is_null()) return std::nullopt;  // MATCH SIMPLE semantics
    const int parent_idx = parent_def.column_index(parent_def.primary_key[i]);
    append_value_to_key(encoder, value,
                        parent_def.columns[static_cast<size_t>(parent_idx)].type);
  }
  return encoder.take();
}

}  // namespace sky::db
