// Typed column values.
//
// The catalog carries telescope positions (doubles), ids and htmids
// (int64), CCD numbers (int32), tags/names (strings), and observation times
// (timestamps, stored as microseconds since epoch). NULL is a first-class
// value; NOT NULL is a column property enforced by the table layer.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>

#include "common/status.h"

namespace sky::db {

enum class ColumnType : uint8_t {
  kInt32 = 0,
  kInt64 = 1,
  kDouble = 2,
  kString = 3,
  kTimestamp = 4,  // int64 microseconds since epoch
};

std::string_view column_type_name(ColumnType type);

class Value {
 public:
  Value() : data_(std::monostate{}) {}  // NULL

  static Value null() { return Value(); }
  static Value i32(int32_t v) { return Value(v); }
  static Value i64(int64_t v) { return Value(v); }
  static Value f64(double v) { return Value(v); }
  static Value str(std::string v) { return Value(std::move(v)); }
  // Timestamps share int64 representation.
  static Value timestamp(int64_t micros) { return Value(micros); }

  bool is_null() const { return std::holds_alternative<std::monostate>(data_); }
  bool is_i32() const { return std::holds_alternative<int32_t>(data_); }
  bool is_i64() const { return std::holds_alternative<int64_t>(data_); }
  bool is_f64() const { return std::holds_alternative<double>(data_); }
  bool is_str() const { return std::holds_alternative<std::string>(data_); }

  int32_t as_i32() const { return std::get<int32_t>(data_); }
  int64_t as_i64() const { return std::get<int64_t>(data_); }
  double as_f64() const { return std::get<double>(data_); }
  const std::string& as_str() const { return std::get<std::string>(data_); }

  // Numeric view for check constraints (int32/int64/double); error for
  // strings and NULL.
  Result<double> numeric() const;

  // Does this value's runtime kind store into a column of `type`?
  // NULL matches any type (nullability is checked separately).
  bool matches(ColumnType type) const;

  // Total order within same-kind values; NULL < everything; used by tests
  // and the reference query paths (indexes order via the key codec).
  int compare(const Value& other) const;
  bool operator==(const Value& other) const { return compare(other) == 0; }
  bool operator<(const Value& other) const { return compare(other) < 0; }

  std::string to_display() const;

  // Parse from catalog text for the given column type.
  static Result<Value> parse_as(ColumnType type, std::string_view text);

 private:
  explicit Value(int32_t v) : data_(v) {}
  explicit Value(int64_t v) : data_(v) {}
  explicit Value(double v) : data_(v) {}
  explicit Value(std::string v) : data_(std::move(v)) {}

  std::variant<std::monostate, int32_t, int64_t, double, std::string> data_;
};

}  // namespace sky::db
