#include "db/sql.h"

#include <cctype>
#include <vector>

#include "common/strings.h"

namespace sky::db {

namespace {

enum class TokenKind {
  kIdent,     // bare word (keyword or identifier)
  kInt,
  kFloat,
  kString,    // 'quoted'
  kOperator,  // = < <= > >=
  kStar,
  kEnd,
};

struct Token {
  TokenKind kind;
  std::string text;
  size_t position = 0;
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  Result<std::vector<Token>> run() {
    std::vector<Token> tokens;
    while (true) {
      skip_space();
      if (pos_ >= text_.size()) break;
      const size_t start = pos_;
      const char c = text_[pos_];
      if (c == '*') {
        ++pos_;
        tokens.push_back({TokenKind::kStar, "*", start});
      } else if (c == '\'') {
        SKY_ASSIGN_OR_RETURN(std::string value, quoted_string());
        tokens.push_back({TokenKind::kString, std::move(value), start});
      } else if (std::isdigit(static_cast<unsigned char>(c)) || c == '-' ||
                 c == '+' || c == '.') {
        SKY_ASSIGN_OR_RETURN(Token number, number_token(start));
        tokens.push_back(std::move(number));
      } else if (c == '=' || c == '<' || c == '>') {
        std::string op(1, c);
        ++pos_;
        if ((c == '<' || c == '>') && pos_ < text_.size() &&
            text_[pos_] == '=') {
          op.push_back('=');
          ++pos_;
        }
        tokens.push_back({TokenKind::kOperator, std::move(op), start});
      } else if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        std::string ident;
        while (pos_ < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '_')) {
          ident.push_back(text_[pos_++]);
        }
        tokens.push_back({TokenKind::kIdent, std::move(ident), start});
      } else {
        return error(start, str_format("unexpected character '%c'", c));
      }
    }
    tokens.push_back({TokenKind::kEnd, "", text_.size()});
    return tokens;
  }

 private:
  void skip_space() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  Result<std::string> quoted_string() {
    ++pos_;  // opening quote
    std::string value;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '\'') {
        if (pos_ < text_.size() && text_[pos_] == '\'') {
          value.push_back('\'');  // '' escape
          ++pos_;
          continue;
        }
        return value;
      }
      value.push_back(c);
    }
    return Status(ErrorCode::kParseError, "unterminated string literal");
  }

  Result<Token> number_token(size_t start) {
    std::string number;
    bool is_float = false;
    if (text_[pos_] == '-' || text_[pos_] == '+') {
      number.push_back(text_[pos_++]);
    }
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        number.push_back(c);
      } else if (c == '.' || c == 'e' || c == 'E') {
        is_float = true;
        number.push_back(c);
        if ((c == 'e' || c == 'E') && pos_ + 1 < text_.size() &&
            (text_[pos_ + 1] == '-' || text_[pos_ + 1] == '+')) {
          number.push_back(text_[++pos_]);
        }
      } else {
        break;
      }
      ++pos_;
    }
    if (number.empty() || number == "-" || number == "+" || number == ".") {
      return error(start, "malformed number");
    }
    return Token{is_float ? TokenKind::kFloat : TokenKind::kInt, number,
                 start};
  }

  Status error(size_t position, const std::string& message) const {
    return Status(ErrorCode::kParseError,
                  str_format("query position %zu: %s", position,
                             message.c_str()));
  }

  std::string_view text_;
  size_t pos_ = 0;
};

class Parser {
 public:
  Parser(const Schema& schema, std::vector<Token> tokens)
      : schema_(schema), tokens_(std::move(tokens)) {}

  Result<QuerySpec> run() {
    QuerySpec spec;
    SKY_RETURN_IF_ERROR(expect_keyword("SELECT"));
    if (peek().kind != TokenKind::kStar) {
      return error("only SELECT * is supported");
    }
    advance();
    SKY_RETURN_IF_ERROR(expect_keyword("FROM"));
    SKY_ASSIGN_OR_RETURN(spec.table, identifier("table name"));
    SKY_ASSIGN_OR_RETURN(const uint32_t table_id,
                         schema_.table_id(spec.table));
    def_ = &schema_.table(table_id);

    if (at_keyword("WHERE")) {
      advance();
      while (true) {
        SKY_ASSIGN_OR_RETURN(Condition cond, condition());
        spec.conditions.push_back(std::move(cond));
        if (!at_keyword("AND")) break;
        advance();
      }
    }
    if (at_keyword("ORDER")) {
      advance();
      SKY_RETURN_IF_ERROR(expect_keyword("BY"));
      SKY_ASSIGN_OR_RETURN(const std::string column,
                           identifier("ORDER BY column"));
      if (def_->column_index(column) < 0) {
        return error("no such column: " + column);
      }
      spec.order_by = column;
      if (at_keyword("DESC")) {
        spec.descending = true;
        advance();
      } else if (at_keyword("ASC")) {
        advance();
      }
    }
    if (at_keyword("LIMIT")) {
      advance();
      if (peek().kind != TokenKind::kInt) {
        return error("LIMIT expects an integer");
      }
      SKY_ASSIGN_OR_RETURN(spec.limit, parse_int64(peek().text));
      if (spec.limit < 0) return error("LIMIT must be non-negative");
      advance();
    }
    if (peek().kind != TokenKind::kEnd) {
      return error("unexpected trailing input: '" + peek().text + "'");
    }
    return spec;
  }

 private:
  const Token& peek() const { return tokens_[cursor_]; }
  void advance() { ++cursor_; }

  bool at_keyword(std::string_view keyword) const {
    return peek().kind == TokenKind::kIdent &&
           to_lower(peek().text) == to_lower(keyword);
  }

  Status expect_keyword(std::string_view keyword) {
    if (!at_keyword(keyword)) {
      return error("expected " + std::string(keyword) + " before '" +
                   peek().text + "'");
    }
    advance();
    return ok_status();
  }

  Result<std::string> identifier(const std::string& what) {
    if (peek().kind != TokenKind::kIdent) {
      return error("expected " + what);
    }
    std::string name = peek().text;
    advance();
    return name;
  }

  Result<Condition> condition() {
    Condition cond;
    SKY_ASSIGN_OR_RETURN(cond.column, identifier("column name"));
    const int column_idx = def_->column_index(cond.column);
    if (column_idx < 0) {
      return error("no such column: " + cond.column);
    }
    if (peek().kind != TokenKind::kOperator) {
      return error("expected comparison operator after " + cond.column);
    }
    const std::string op = peek().text;
    advance();
    if (op == "=") {
      cond.op = Condition::Op::kEq;
    } else if (op == "<") {
      cond.op = Condition::Op::kLt;
    } else if (op == "<=") {
      cond.op = Condition::Op::kLe;
    } else if (op == ">") {
      cond.op = Condition::Op::kGt;
    } else if (op == ">=") {
      cond.op = Condition::Op::kGe;
    } else {
      return error("unsupported operator " + op);
    }
    SKY_ASSIGN_OR_RETURN(
        cond.value,
        literal(def_->columns[static_cast<size_t>(column_idx)].type,
                cond.column));
    return cond;
  }

  Result<Value> literal(ColumnType column_type, const std::string& column) {
    const Token& token = peek();
    switch (token.kind) {
      case TokenKind::kInt: {
        SKY_ASSIGN_OR_RETURN(const int64_t value, parse_int64(token.text));
        advance();
        switch (column_type) {
          case ColumnType::kInt32:
            if (value < INT32_MIN || value > INT32_MAX) {
              return error("integer literal out of range for " + column);
            }
            return Value::i32(static_cast<int32_t>(value));
          case ColumnType::kInt64:
          case ColumnType::kTimestamp:
            return Value::i64(value);
          case ColumnType::kDouble:
            // Integer literal against a double column is fine.
            return Value::f64(static_cast<double>(value));
          case ColumnType::kString:
            return error("string column " + column +
                         " compared to a number");
        }
        break;
      }
      case TokenKind::kFloat: {
        SKY_ASSIGN_OR_RETURN(const double value, parse_double(token.text));
        advance();
        if (column_type != ColumnType::kDouble) {
          return error("float literal against non-float column " + column);
        }
        return Value::f64(value);
      }
      case TokenKind::kString: {
        if (column_type != ColumnType::kString) {
          return error("string literal against non-string column " + column);
        }
        Value value = Value::str(token.text);
        advance();
        return value;
      }
      default:
        break;
    }
    return error("expected a literal after the operator");
  }

  Status error(const std::string& message) const {
    return Status(ErrorCode::kParseError,
                  str_format("query position %zu: %s", peek().position,
                             message.c_str()));
  }

  const Schema& schema_;
  const TableDef* def_ = nullptr;
  std::vector<Token> tokens_;
  size_t cursor_ = 0;
};

}  // namespace

Result<QuerySpec> parse_query(const Schema& schema, std::string_view text) {
  Lexer lexer(text);
  SKY_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.run());
  Parser parser(schema, std::move(tokens));
  return parser.run();
}

}  // namespace sky::db
