// Unified engine statistics and the live-policy API (the control plane).
//
// Before this header the engine's telemetry was five scattered surfaces —
// WalStats, ConcurrencyStats, QueryStats, SnapshotStats, per-table extent
// stats — each with its own getter, and every tunable was fixed at
// construction. EngineStats folds them into one snapshot behind a single
// Engine::stats() call, with delta_since() to turn two snapshots into
// per-interval rates; PolicyPatch is the one spelling for a bounded set of
// *live* adjustments (commit window, gate slot counts, extent assignment)
// applied race-free by Engine::update_policies(). ControlPlane abstracts
// the pair so core::Controller (core/controller.h) drives the real engine
// and the simulated SimServer through identical code.
//
// Thread safety: stats() returns a copied snapshot assembled from each
// subsystem's own locked accessor; update_policies() serializes appliers on
// an internal mutex and touches only live-adjustable state (the WAL's
// commit policy under the log mutex, gate slot counts under each gate's
// mutex, an atomic extent-assignment flag). EngineOptions itself is never
// mutated after construction — options() remains the construction-time
// snapshot; live values are read from the owning subsystems.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/units.h"
#include "core/query_stats.h"
#include "db/engine.h"
#include "db/lock_manager.h"
#include "db/snapshot.h"
#include "storage/sharded_heap.h"
#include "storage/wal.h"

namespace sky::db {

// A bounded set of live policy adjustments. Unset fields keep their current
// value; every value is validated (and clamped by the controller) before it
// reaches a subsystem. The same spelling doubles as the "current live
// values" block of EngineStats (where every field is set).
struct PolicyPatch {
  // WAL commit-coalescing window / early-close group size (storage/wal.h).
  std::optional<Nanos> commit_window;
  std::optional<int64_t> max_group_commits;
  // Instance-wide transaction gate slot count.
  std::optional<int64_t> transaction_slots;
  // Per-table ITL gate slot count. Rejected (kFailedPrecondition) on an
  // engine built without ITL gates: creating gates live would race the
  // lock-free gate-pointer reads on the insert path.
  std::optional<int64_t> itl_slots_per_table;
  // How transactions pick heap extents (engine.h ExtentAssignment).
  std::optional<ExtentAssignment> extent_assignment;

  bool empty() const {
    return !commit_window.has_value() && !max_group_commits.has_value() &&
           !transaction_slots.has_value() &&
           !itl_slots_per_table.has_value() && !extent_assignment.has_value();
  }
  // "commit_window=2ms itl_slots=6" style rendering for traces and reports.
  std::string describe() const;
};

// Per-extent occupancy of one table's heap.
struct TableExtentStats {
  uint32_t table_id = 0;
  std::vector<storage::ShardedHeap::ExtentStats> extents;
};

// The unified snapshot: every telemetry surface the engine owns, plus the
// live policy values in effect when it was taken. Copied by value; safe to
// hold across ticks.
struct EngineStats {
  storage::WalStats wal;
  ConcurrencyStats concurrency;
  core::QueryStats query;        // zero unless a QueryScheduler is attached
  SnapshotStats snapshots;
  std::vector<TableExtentStats> extents;
  int64_t total_rows = 0;
  int64_t total_heap_bytes = 0;
  // Live values at snapshot time — every optional set (itl_slots_per_table
  // is 0 on an engine running without ITL gates).
  PolicyPatch policies;

  // Monotone counters become per-interval deltas (this - prev); gauges
  // (in_use, queue depths, percentiles, pins, policies) keep this
  // snapshot's value. Per-extent stats subtract elementwise when the table
  // shapes match. The controller feeds on deltas so its decisions track
  // the current phase, not the whole run's history.
  EngineStats delta_since(const EngineStats& prev) const;

  // Appended-bytes imbalance across extents: max/mean of per-extent bytes
  // for the most skewed multi-extent table, 1.0 when balanced or when no
  // table has bytes. Computed on a delta to measure *recent* placement.
  double extent_skew() const;
};

// What Controller drives: a stats source plus a policy sink. Implemented by
// EngineControlPlane (below) for real engines and client::SimControlPlane
// for simulation — one controller, two execution modes.
class ControlPlane {
 public:
  virtual ~ControlPlane() = default;
  virtual EngineStats stats() const = 0;
  virtual Status apply(const PolicyPatch& patch) = 0;
};

class EngineControlPlane final : public ControlPlane {
 public:
  explicit EngineControlPlane(Engine& engine) : engine_(engine) {}
  EngineStats stats() const override { return engine_.stats(); }
  Status apply(const PolicyPatch& patch) override {
    return engine_.update_policies(patch);
  }

 private:
  Engine& engine_;
};

}  // namespace sky::db
