// Rows and the row codec.
//
// A Row is a positional tuple matching a table's column list. The codec
// serializes rows for heap storage and WAL records — real bytes, so page
// occupancy and redo volume come from actual data sizes.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "db/value.h"

namespace sky::db {

using Row = std::vector<Value>;

// Serialize: per value, a kind byte then a fixed or length-prefixed payload.
std::string encode_row(const Row& row);

Result<Row> decode_row(std::string_view bytes);

// Rough in-memory footprint of a buffered row (array-set accounting).
size_t row_memory_bytes(const Row& row);

std::string row_to_display(const Row& row);

}  // namespace sky::db
