#include "db/lock_manager.h"

#include <cassert>
#include <chrono>
#include <thread>

namespace sky::db {

namespace {
Nanos latch_now() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

Nanos lock_exclusive_timed(std::shared_mutex& mu) {
  if (mu.try_lock()) return 0;
  const Nanos start = latch_now();
  mu.lock();
  return latch_now() - start;
}

Nanos lock_shared_timed(std::shared_mutex& mu) {
  if (mu.try_lock_shared()) return 0;
  const Nanos start = latch_now();
  mu.lock_shared();
  return latch_now() - start;
}

GateAcquire NullSlotGate::acquire() {
  const std::scoped_lock lock(mu_);
  ++stats_.acquires;
  ++stats_.in_use;
  return {};
}

void NullSlotGate::release() {
  const std::scoped_lock lock(mu_);
  --stats_.in_use;
}

GateStats NullSlotGate::stats() const {
  const std::scoped_lock lock(mu_);
  return stats_;
}

BlockingSlotGate::BlockingSlotGate(int64_t slots) : available_(slots) {
  assert(slots > 0);
}

GateAcquire BlockingSlotGate::acquire() {
  std::unique_lock<std::mutex> lock(mu_);
  ++stats_.acquires;
  GateAcquire result;
  if (available_ > 0) {
    --available_;
    ++stats_.in_use;
    return result;
  }
  ++stats_.waits;
  result.contended = true;
  const auto start = std::chrono::steady_clock::now();
  cv_.wait(lock, [this] { return available_ > 0; });
  --available_;
  ++stats_.in_use;
  const auto end = std::chrono::steady_clock::now();
  result.wait_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
          .count();
  stats_.total_wait += result.wait_ns;
  if (result.wait_ns > stats_.max_wait) stats_.max_wait = result.wait_ns;
  return result;
}

void BlockingSlotGate::release() {
  {
    const std::scoped_lock lock(mu_);
    ++available_;
    --stats_.in_use;
  }
  cv_.notify_one();
}

GateStats BlockingSlotGate::stats() const {
  const std::scoped_lock lock(mu_);
  return stats_;
}

FairSlotGate::FairSlotGate(int64_t slots, GateStallModel stall)
    : slots_(slots), stall_(stall), stall_rng_(stall.seed) {
  assert(slots > 0);
}

GateAcquire FairSlotGate::acquire() {
  std::unique_lock<std::mutex> lock(mu_);
  ++stats_.acquires;
  GateAcquire result;
  const uint64_t ticket = next_ticket_++;
  // Tickets in [serving_, ticket) are still queued for admission.
  result.queue_depth = static_cast<int64_t>(ticket - serving_);
  if (ticket != serving_ || in_use_ >= slots_) {
    result.contended = true;
    ++stats_.waits;
    const auto start = std::chrono::steady_clock::now();
    cv_.wait(lock,
             [this, ticket] { return ticket == serving_ && in_use_ < slots_; });
    const auto end = std::chrono::steady_clock::now();
    result.wait_ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
            .count();
    stats_.total_wait += result.wait_ns;
    if (result.wait_ns > stats_.max_wait) stats_.max_wait = result.wait_ns;
  }
  ++serving_;
  ++in_use_;
  ++stats_.in_use;
  bool stall_hit = false;
  if (result.contended && stall_.probability > 0) {
    stall_hit = stall_rng_.bernoulli(stall_.probability);
    if (stall_hit) {
      ++stats_.stalls;
      stats_.stall_time += stall_.duration;
      result.stall_ns = stall_.duration;
    }
  }
  // Wake the next ticket holder: a slot may still be free, and admission is
  // strictly in ticket order.
  lock.unlock();
  cv_.notify_all();
  if (stall_hit && stall_.duration > 0) {
    // The long stall is served while *holding* the slot — exactly the
    // behaviour that makes a saturated ITL so expensive in the paper.
    std::this_thread::sleep_for(std::chrono::nanoseconds(stall_.duration));
  }
  return result;
}

void FairSlotGate::release() {
  {
    const std::scoped_lock lock(mu_);
    --in_use_;
    --stats_.in_use;
  }
  cv_.notify_all();
}

GateStats FairSlotGate::stats() const {
  const std::scoped_lock lock(mu_);
  return stats_;
}

}  // namespace sky::db
