#include "db/lock_manager.h"

#include <cassert>
#include <chrono>

namespace sky::db {

namespace {
Nanos latch_now() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

Nanos lock_exclusive_timed(std::shared_mutex& mu) {
  if (mu.try_lock()) return 0;
  const Nanos start = latch_now();
  mu.lock();
  return latch_now() - start;
}

Nanos lock_shared_timed(std::shared_mutex& mu) {
  if (mu.try_lock_shared()) return 0;
  const Nanos start = latch_now();
  mu.lock_shared();
  return latch_now() - start;
}

BlockingSlotGate::BlockingSlotGate(int64_t slots) : available_(slots) {
  assert(slots > 0);
}

void BlockingSlotGate::acquire() {
  std::unique_lock<std::mutex> lock(mu_);
  ++stats_.acquires;
  if (available_ > 0) {
    --available_;
    return;
  }
  ++stats_.waits;
  const auto start = std::chrono::steady_clock::now();
  cv_.wait(lock, [this] { return available_ > 0; });
  --available_;
  const auto end = std::chrono::steady_clock::now();
  stats_.total_wait +=
      std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
          .count();
}

void BlockingSlotGate::release() {
  {
    const std::scoped_lock lock(mu_);
    ++available_;
  }
  cv_.notify_one();
}

SlotGate::Stats BlockingSlotGate::stats() const {
  const std::scoped_lock lock(mu_);
  return stats_;
}

}  // namespace sky::db
