#include "db/lock_manager.h"

#include <cassert>
#include <chrono>
#include <thread>

namespace sky::db {

namespace {
Nanos latch_now() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

Nanos lock_exclusive_timed(std::shared_mutex& mu) {
  if (mu.try_lock()) return 0;
  const Nanos start = latch_now();
  mu.lock();
  return latch_now() - start;
}

Nanos lock_shared_timed(std::shared_mutex& mu) {
  if (mu.try_lock_shared()) return 0;
  const Nanos start = latch_now();
  mu.lock_shared();
  return latch_now() - start;
}

void WaitGraph::add_hold(uint64_t owner, const void* gate) {
  const std::scoped_lock lock(mu_);
  ++holders_[gate][owner];
}

void WaitGraph::remove_hold(uint64_t owner, const void* gate) {
  const std::scoped_lock lock(mu_);
  auto git = holders_.find(gate);
  if (git == holders_.end()) return;
  auto oit = git->second.find(owner);
  if (oit == git->second.end()) return;
  if (--oit->second <= 0) git->second.erase(oit);
  if (git->second.empty()) holders_.erase(git);
}

bool WaitGraph::add_wait(uint64_t owner, const void* gate) {
  const std::scoped_lock lock(mu_);
  // Would this wait close a cycle? owner -> gate -> holder -> ... -> owner.
  const auto git = holders_.find(gate);
  if (git != holders_.end()) {
    for (const auto& [holder, count] : git->second) {
      (void)count;
      if (holder == owner) continue;  // own slots on this gate are not a wait
      if (reachable_locked(holder, owner)) return true;
    }
  }
  waiting_[owner] = gate;
  return false;
}

void WaitGraph::grant(uint64_t owner, const void* gate) {
  const std::scoped_lock lock(mu_);
  waiting_.erase(owner);
  ++holders_[gate][owner];
}

size_t WaitGraph::waiting_count() const {
  const std::scoped_lock lock(mu_);
  return waiting_.size();
}

bool WaitGraph::reachable_locked(uint64_t from_owner,
                                 uint64_t target_owner) const {
  std::vector<uint64_t> frontier{from_owner};
  std::unordered_set<uint64_t> seen;
  while (!frontier.empty()) {
    const uint64_t current = frontier.back();
    frontier.pop_back();
    if (current == target_owner) return true;
    if (!seen.insert(current).second) continue;
    const auto wait_it = waiting_.find(current);
    if (wait_it == waiting_.end()) continue;
    const auto hold_it = holders_.find(wait_it->second);
    if (hold_it == holders_.end()) continue;
    for (const auto& [holder, count] : hold_it->second) {
      (void)count;
      frontier.push_back(holder);
    }
  }
  return false;
}

GateAcquire NullSlotGate::acquire() {
  const std::scoped_lock lock(mu_);
  ++stats_.acquires;
  ++stats_.in_use;
  return {};
}

void NullSlotGate::release() {
  const std::scoped_lock lock(mu_);
  --stats_.in_use;
}

GateStats NullSlotGate::stats() const {
  const std::scoped_lock lock(mu_);
  return stats_;
}

BlockingSlotGate::BlockingSlotGate(int64_t slots)
    : slots_(slots), available_(slots) {
  assert(slots > 0);
}

void BlockingSlotGate::set_slots(int64_t slots) {
  assert(slots > 0);
  {
    const std::scoped_lock lock(mu_);
    available_ += slots - slots_;  // shrink may drive available_ negative
    slots_ = slots;
  }
  cv_.notify_all();
}

int64_t BlockingSlotGate::slots() const {
  const std::scoped_lock lock(mu_);
  return slots_;
}

GateAcquire BlockingSlotGate::acquire() {
  std::unique_lock<std::mutex> lock(mu_);
  ++stats_.acquires;
  GateAcquire result;
  if (available_ > 0) {
    --available_;
    ++stats_.in_use;
    return result;
  }
  ++stats_.waits;
  result.contended = true;
  const auto start = std::chrono::steady_clock::now();
  cv_.wait(lock, [this] { return available_ > 0; });
  --available_;
  ++stats_.in_use;
  const auto end = std::chrono::steady_clock::now();
  result.wait_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
          .count();
  stats_.total_wait += result.wait_ns;
  if (result.wait_ns > stats_.max_wait) stats_.max_wait = result.wait_ns;
  return result;
}

void BlockingSlotGate::release() {
  {
    const std::scoped_lock lock(mu_);
    ++available_;
    --stats_.in_use;
  }
  cv_.notify_one();
}

GateStats BlockingSlotGate::stats() const {
  const std::scoped_lock lock(mu_);
  return stats_;
}

FairSlotGate::FairSlotGate(int64_t slots, GateStallModel stall,
                           WaitGraph* wait_graph)
    : slots_(slots),
      stall_(stall),
      stall_rng_(stall.seed),
      wait_graph_(wait_graph) {
  assert(slots > 0);
}

void FairSlotGate::set_slots(int64_t slots) {
  assert(slots > 0);
  {
    const std::scoped_lock lock(mu_);
    slots_ = slots;  // shrink bites as holders release; grow admits now
  }
  cv_.notify_all();
}

int64_t FairSlotGate::slots() const {
  const std::scoped_lock lock(mu_);
  return slots_;
}

GateAcquire FairSlotGate::acquire() { return acquire_impl(0, false); }

GateAcquire FairSlotGate::acquire_as(uint64_t owner) {
  return acquire_impl(owner, wait_graph_ != nullptr);
}

GateAcquire FairSlotGate::acquire_impl(uint64_t owner, bool track_owner) {
  std::unique_lock<std::mutex> lock(mu_);
  GateAcquire result;
  const bool would_wait = next_ticket_ != serving_ || in_use_ >= slots_;
  if (track_owner && would_wait) {
    // Check BEFORE taking a ticket: every issued ticket must be served in
    // order, so a refused admission must leave the FIFO protocol untouched.
    // add_wait atomically (under the graph mutex) either refuses the wait
    // or registers the edge other transactions' cycle checks will see.
    if (wait_graph_->add_wait(owner, this)) {
      result.deadlock = true;
      result.contended = true;
      result.queue_depth = static_cast<int64_t>(next_ticket_ - serving_);
      return result;
    }
  }
  ++stats_.acquires;
  const uint64_t ticket = next_ticket_++;
  // Tickets in [serving_, ticket) are still queued for admission.
  result.queue_depth = static_cast<int64_t>(ticket - serving_);
  if (ticket != serving_ || in_use_ >= slots_) {
    result.contended = true;
    ++stats_.waits;
    const auto start = std::chrono::steady_clock::now();
    cv_.wait(lock,
             [this, ticket] { return ticket == serving_ && in_use_ < slots_; });
    const auto end = std::chrono::steady_clock::now();
    result.wait_ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
            .count();
    stats_.total_wait += result.wait_ns;
    if (result.wait_ns > stats_.max_wait) stats_.max_wait = result.wait_ns;
  }
  ++serving_;
  ++in_use_;
  ++stats_.in_use;
  if (track_owner) {
    if (would_wait) {
      wait_graph_->grant(owner, this);
    } else {
      wait_graph_->add_hold(owner, this);
    }
  }
  bool stall_hit = false;
  if (result.contended && stall_.probability > 0) {
    stall_hit = stall_rng_.bernoulli(stall_.probability);
    if (stall_hit) {
      ++stats_.stalls;
      stats_.stall_time += stall_.duration;
      result.stall_ns = stall_.duration;
    }
  }
  // Wake the next ticket holder: a slot may still be free, and admission is
  // strictly in ticket order.
  lock.unlock();
  cv_.notify_all();
  if (stall_hit && stall_.duration > 0) {
    // The long stall is served while *holding* the slot — exactly the
    // behaviour that makes a saturated ITL so expensive in the paper.
    std::this_thread::sleep_for(std::chrono::nanoseconds(stall_.duration));
  }
  return result;
}

void FairSlotGate::release() {
  {
    const std::scoped_lock lock(mu_);
    --in_use_;
    --stats_.in_use;
  }
  cv_.notify_all();
}

void FairSlotGate::release_as(uint64_t owner) {
  if (wait_graph_ != nullptr) wait_graph_->remove_hold(owner, this);
  release();
}

GateStats FairSlotGate::stats() const {
  const std::scoped_lock lock(mu_);
  return stats_;
}

}  // namespace sky::db
