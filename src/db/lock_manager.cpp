#include "db/lock_manager.h"

#include <cassert>
#include <chrono>

namespace sky::db {

BlockingSlotGate::BlockingSlotGate(int64_t slots) : available_(slots) {
  assert(slots > 0);
}

void BlockingSlotGate::acquire() {
  std::unique_lock<std::mutex> lock(mu_);
  ++stats_.acquires;
  if (available_ > 0) {
    --available_;
    return;
  }
  ++stats_.waits;
  const auto start = std::chrono::steady_clock::now();
  cv_.wait(lock, [this] { return available_ > 0; });
  --available_;
  const auto end = std::chrono::steady_clock::now();
  stats_.total_wait +=
      std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
          .count();
}

void BlockingSlotGate::release() {
  {
    const std::scoped_lock lock(mu_);
    ++available_;
  }
  cv_.notify_one();
}

SlotGate::Stats BlockingSlotGate::stats() const {
  const std::scoped_lock lock(mu_);
  return stats_;
}

}  // namespace sky::db
