#include "db/engine.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>
#include <thread>
#include <tuple>
#include <unordered_set>

#include "common/strings.h"
#include "db/control_plane.h"
#include "htm/htm.h"
#include "index/key_codec.h"

namespace sky::db {

namespace {
// Tally the types of the columns behind one inserted index entry (cost-model
// input: float keys are priced higher than integer keys).
void count_index_columns(const TableDef& def,
                         const std::vector<int>& column_indices,
                         OpCosts& costs) {
  for (const int idx : column_indices) {
    switch (def.columns[static_cast<size_t>(idx)].type) {
      case ColumnType::kDouble:
        ++costs.index_float_columns;
        break;
      case ColumnType::kString:
        ++costs.index_string_columns;
        break;
      default:
        ++costs.index_int_columns;
    }
  }
}

// The buffer cache's I/O hook fires from whichever thread touched the page;
// per-call attribution goes through a thread-local so concurrent sessions
// never write into each other's OpCosts.
thread_local OpCosts* tl_active_costs = nullptr;

class CostScope {
 public:
  explicit CostScope(OpCosts* costs) : saved_(tl_active_costs) {
    tl_active_costs = costs;
  }
  ~CostScope() { tl_active_costs = saved_; }
  CostScope(const CostScope&) = delete;
  CostScope& operator=(const CostScope&) = delete;

 private:
  OpCosts* saved_;
};
}  // namespace

namespace {
EngineOptions normalize(EngineOptions options) {
  if (options.heap_extents < 1) options.heap_extents = 1;
  if (options.heap_extents > storage::kMaxHeapExtents) {
    options.heap_extents = storage::kMaxHeapExtents;
  }
  return options;
}
}  // namespace

Engine::Engine(Schema schema, EngineOptions options)
    : schema_(std::move(schema)),
      options_(normalize(options)),
      cache_(options.cache_pages, options.dirty_trigger),
      wal_(storage::WalOptions{options.retain_wal_records,
                               options.latency.commit_log_flush,
                               options.commit_window,
                               std::max<int64_t>(options.max_group_commits, 1),
                               options.durability}),
      txn_gate_(std::make_unique<BlockingSlotGate>(
          options.concurrency.max_concurrent_transactions)),
      snapshots_(static_cast<size_t>(schema_.table_count())) {
  tables_.reserve(static_cast<size_t>(schema_.table_count()));
  uint32_t next_file_id = 0;
  for (uint32_t id = 0; id < static_cast<uint32_t>(schema_.table_count());
       ++id) {
    Table table(id, schema_.table(id), options_.heap_extents,
                options_.latency.extent_append_write);
    table.heap_cache_file_id = next_file_id++;
    file_roles_.push_back(storage::IoRole::kData);
    table.pk_cache_file_id = next_file_id++;
    file_roles_.push_back(storage::IoRole::kIndex);
    for (SecondaryIndex& secondary : table.secondaries()) {
      secondary.cache_file_id = next_file_id++;
      file_roles_.push_back(storage::IoRole::kIndex);
    }
    table.fk_parent_ids.reserve(table.def().foreign_keys.size());
    for (const ForeignKey& fk : table.def().foreign_keys) {
      table.fk_parent_ids.push_back(schema_.table_id(fk.parent_table).value());
    }
    if (options_.concurrency.itl_gated()) {
      // Per-table ITL admission gate. Each gate gets an independent stall
      // stream (seed salted with the table id) so stall draws are
      // deterministic per table regardless of load interleaving.
      const core::ConcurrencyPolicy& policy = options_.concurrency;
      table.set_itl_gate(std::make_unique<FairSlotGate>(
          policy.itl_slots_per_table,
          GateStallModel{policy.stall_probability,
                                   policy.stall_duration,
                                   policy.stall_seed ^
                                       (0x9E3779B97F4A7C15ULL * (id + 1))},
          &itl_wait_graph_));
    }
    tables_.push_back(std::move(table));
  }
  extent_assignment_.store(options_.extent_assignment,
                           std::memory_order_relaxed);
  cache_.set_io_hook([this](storage::CachePageId page,
                            storage::BufferCache::IoKind kind) {
    const storage::IoRole role = role_of_file(page.file_id);
    if (kind == storage::BufferCache::IoKind::kRead) {
      if (tl_active_costs != nullptr) tl_active_costs->io.add_read(role);
      global_io_.add_read(role);
    } else {
      if (tl_active_costs != nullptr) tl_active_costs->io.add_write(role);
      global_io_.add_write(role);
    }
  });
}

storage::IoRole Engine::role_of_file(uint32_t file_id) const {
  if (file_id < file_roles_.size()) return file_roles_[file_id];
  return storage::IoRole::kData;
}

void Engine::pay_batch_latency(const OpCosts& costs, double escalation) const {
  const ModeledDeviceLatency& latency = options_.latency;
  if (!latency.enabled()) return;
  Nanos total =
      latency.batch_redo_write +
      (costs.heap_pages_opened + costs.index_leaf_splits) *
          latency.data_write_per_page;
  if (escalation > 0) {
    // Lock escalation: a transaction whose ITL admission was contended pays
    // inflated server time per call (same model the sim session applies).
    total += static_cast<Nanos>(static_cast<double>(total) * escalation);
  }
  if (total > 0) {
    std::this_thread::sleep_for(std::chrono::nanoseconds(total));
  }
}

// ------------------------------------------------------------ transactions

Engine::Transaction* Engine::find_transaction(uint64_t txn_id) {
  const std::scoped_lock lock(txn_mu_);
  const auto it = transactions_.find(txn_id);
  return it == transactions_.end() ? nullptr : &it->second;
}

uint64_t Engine::begin_transaction(OpCosts* costs) {
  // The gate is acquired before any engine lock so a session blocked on a
  // slot never holds latches other sessions need to finish and release.
  const GateAcquire acquired = txn_gate_->acquire();
  if (costs != nullptr) {
    costs->txn_slot_wait_ns += acquired.wait_ns;
    costs->lock_wait_ns += acquired.wait_ns;
  }
  const uint64_t id = next_txn_id_.fetch_add(1, std::memory_order_relaxed);
  // Round-robin extent assignment: concurrent sessions land on distinct
  // heap append streams (modulo heap_extents, so 1 extent means extent 0
  // for everyone — the pre-sharding behaviour).
  const uint32_t extent =
      next_extent_.fetch_add(1, std::memory_order_relaxed) %
      options_.heap_extents;
  const std::scoped_lock lock(txn_mu_);
  transactions_.emplace(id, Transaction{id, extent, {}, {}});
  return id;
}

Result<Engine::TableAdmission> Engine::admit_table(Transaction& txn,
                                                   uint32_t tid,
                                                   OpCosts& costs) {
  for (const TableAdmission& admission : txn.admissions) {
    if (admission.table_id == tid) return admission;
  }
  TableAdmission admission;
  admission.table_id = tid;
  Table& table = tables_[tid];
  // Gate first, extent second: blocked admissions hold nothing, and a
  // least-loaded pick made after the wait sees the post-wait occupancy.
  if (SlotGate* gate = table.itl_gate(); gate != nullptr) {
    // Owner-attributed acquire: before blocking, the gate consults the
    // shared waits-for graph; a wait that would close a cycle is refused
    // and the requester becomes the deadlock victim (its transaction stays
    // live — the caller rolls back, releasing every slot it holds).
    const GateAcquire acquired = gate->acquire_as(txn.id);
    if (acquired.deadlock) {
      return Status(ErrorCode::kDeadlockDetected,
                    "insert: waits-for cycle on ITL admission to table " +
                        table.def().name + " (transaction " +
                        std::to_string(txn.id) + " chosen as victim)");
    }
    admission.gated = true;
    admission.contended = acquired.contended;
    admission.queue_depth = acquired.queue_depth;
    costs.itl_wait_ns += acquired.wait_ns;
    costs.lock_wait_ns += acquired.wait_ns;
    costs.stall_ns += acquired.stall_ns;
  }
  admission.extent = extent_assignment_.load(std::memory_order_relaxed) ==
                             ExtentAssignment::kLeastLoaded
                         ? table.heap().least_loaded_extent()
                         : txn.extent;
  txn.admissions.push_back(admission);
  return admission;
}

Result<CommitResult> Engine::commit(uint64_t txn_id) {
  CommitResult result;
  result.costs.lock_wait_ns += lock_shared_timed(engine_mu_);
  std::shared_lock<std::shared_mutex> engine_lock(engine_mu_, std::adopt_lock);
  if (find_transaction(txn_id) == nullptr) {
    return Status(ErrorCode::kNotFound, "commit: unknown transaction");
  }
  // With other transactions live, a leader holds the coalescing window
  // open even when their appends have not landed yet; a lone committer
  // reports false and never waits (same rule the sim server applies to
  // its transaction slots).
  bool expect_group = false;
  {
    const std::scoped_lock txn_lock(txn_mu_);
    expect_group = transactions_.size() > 1;
  }
  {
    const CostScope scope(&result.costs);
    wal_.append(storage::WalRecordType::kCommit, txn_id, 0, "");
    // Group commit: may ride a flush already in flight, or lead one —
    // holding the coalescing window open first — and pay the modeled
    // log-device latency (with no engine latches held beyond the shared
    // engine lock). Relaxed durability acks here without flushing.
    const storage::WalFlushResult flush = wal_.flush(expect_group);
    result.wal_bytes_flushed = flush.bytes_flushed;
    result.led_flush = flush.led;
    result.piggybacked = flush.piggybacked;
    result.costs.wal_bytes += flush.bytes_flushed;
    result.costs.io.log_bytes_flushed += flush.bytes_flushed;
    result.costs.commit_flushes_led += flush.led ? 1 : 0;
    result.costs.commit_piggybacks += flush.piggybacked ? 1 : 0;
    result.costs.commit_leader_wait_ns += flush.leader_wait;
    global_io_.add_log_bytes(flush.bytes_flushed);
  }
  std::vector<TableAdmission> admissions;
  std::vector<UndoEntry> undo;
  {
    const std::scoped_lock lock(txn_mu_);
    const auto it = transactions_.find(txn_id);
    if (it != transactions_.end()) {
      admissions = std::move(it->second.admissions);
      undo = std::move(it->second.undo);
      transactions_.erase(it);
    }
  }
  // The commit is durable and the transaction gone from the live map —
  // recycle its undo log into snapshot chunks so pinned readers gain this
  // commit as one atomic publication. Still under the shared engine lock
  // (publication must not interleave with a DDL world-stop).
  if (options_.snapshot_reads && !undo.empty()) {
    publish_snapshot_chunks(std::move(undo));
  }
  engine_lock.unlock();
  // Gates released outside every lock, ITL first then the transaction slot
  // (reverse of the acquisition order).
  for (const TableAdmission& admission : admissions) {
    if (admission.gated) {
      tables_[admission.table_id].itl_gate()->release_as(txn_id);
    }
  }
  txn_gate_->release();
  return result;
}

Status Engine::rollback(uint64_t txn_id) {
  // Engine-exclusive: undo touches several tables' heaps and trees, and
  // taking their latches here (parent before child) would invert the
  // child->parent nested order inserts use. Rollbacks are rare in the
  // append-only workload, so stop-the-world is the simple safe choice.
  std::vector<TableAdmission> admissions;
  {
    const std::unique_lock<std::shared_mutex> engine_lock(engine_mu_);
    const std::unique_lock<std::mutex> txn_lock(txn_mu_);
    const auto it = transactions_.find(txn_id);
    if (it == transactions_.end()) {
      return Status(ErrorCode::kNotFound, "rollback: unknown transaction");
    }
    Transaction& txn = it->second;
    for (auto undo_it = txn.undo.rbegin(); undo_it != txn.undo.rend();
         ++undo_it) {
      Table& table = tables_[undo_it->table_id];
      const Status heap_status = table.heap().mark_deleted(undo_it->slot);
      assert(heap_status.is_ok());
      (void)heap_status;
      const bool pk_erased = table.pk_tree().erase(undo_it->pk_key);
      assert(pk_erased);
      (void)pk_erased;
      for (const auto& [secondary_idx, key] : undo_it->secondary_keys) {
        table.secondaries()[secondary_idx].tree.erase(key);
      }
      wal_.append(storage::WalRecordType::kRollbackInsert, txn_id,
                  undo_it->table_id, "");
    }
    admissions = std::move(txn.admissions);
    transactions_.erase(it);
  }
  // Abort path releases every admission gate too — outside the locks, same
  // order as commit — so an aborted transaction never leaks an ITL slot
  // (and a deadlock victim's rollback unwedges the cycle's survivors).
  for (const TableAdmission& admission : admissions) {
    if (admission.gated) {
      tables_[admission.table_id].itl_gate()->release_as(txn_id);
    }
  }
  txn_gate_->release();
  return ok_status();
}

// ----------------------------------------------------------------- inserts

BatchResult Engine::insert_batch(uint64_t txn_id, uint32_t tid,
                                 std::span<const Row> rows) {
  BatchResult result;
  Transaction* txn = find_transaction(txn_id);
  if (txn == nullptr) {
    result.error = BatchError{
        0, Status(ErrorCode::kFailedPrecondition,
                  "insert: unknown transaction")};
    ++result.costs.constraint_failures;
    return result;
  }
  if (tid >= tables_.size()) {
    result.error =
        BatchError{0, Status(ErrorCode::kNotFound, "insert: bad table id")};
    ++result.costs.constraint_failures;
    return result;
  }
  // ITL admission precedes the engine rwlock in the lock order: a session
  // blocked on a full gate holds no engine lock, so DDL and rollback (which
  // take the rwlock exclusive) can always drain ahead of it.
  const Result<TableAdmission> admitted = admit_table(*txn, tid, result.costs);
  if (!admitted.is_ok()) {
    result.error = BatchError{0, admitted.status()};
    ++result.costs.constraint_failures;
    return result;
  }
  const TableAdmission admission = *admitted;
  result.costs.lock_wait_ns += lock_shared_timed(engine_mu_);
  std::shared_lock<std::shared_mutex> engine_lock(engine_mu_, std::adopt_lock);
  {
    const CostScope scope(&result.costs);
    // Cache deltas are exact when calls don't overlap (single-threaded and
    // simulation runs); under real concurrency a batch may absorb events
    // from neighbours — fine for the aggregate telemetry they feed.
    const storage::CacheEvents cache_before = cache_.events();
    for (size_t i = 0; i < rows.size(); ++i) {
      const Status status = insert_row_latched(*txn, tid, rows[i],
                                               result.costs, admission.extent);
      if (!status.is_ok()) {
        // JDBC semantics: earlier rows stay, this row failed, the remainder
        // of the batch is discarded.
        result.error = BatchError{i, status};
        ++result.costs.constraint_failures;
        break;
      }
      ++result.rows_applied;
    }
    result.costs.rows_applied = result.rows_applied;
    result.costs.cache = cache_.events().since(cache_before);
  }
  engine_lock.unlock();
  const double escalation =
      admission.contended
          ? options_.concurrency.lock_escalation_factor *
                static_cast<double>(1 + admission.queue_depth)
          : 0.0;
  pay_batch_latency(result.costs, escalation);
  return result;
}

BatchResult Engine::insert_column_batch(uint64_t txn_id, uint32_t tid,
                                        const ColumnBatch& batch, size_t first,
                                        size_t count) {
  BatchResult result;
  Transaction* txn = find_transaction(txn_id);
  if (txn == nullptr) {
    result.error = BatchError{
        0, Status(ErrorCode::kFailedPrecondition,
                  "insert: unknown transaction")};
    ++result.costs.constraint_failures;
    return result;
  }
  if (tid >= tables_.size()) {
    result.error =
        BatchError{0, Status(ErrorCode::kNotFound, "insert: bad table id")};
    ++result.costs.constraint_failures;
    return result;
  }
  if (first > batch.size()) first = batch.size();
  count = std::min(count, batch.size() - first);
  // Same admission-before-rwlock envelope as insert_batch.
  const Result<TableAdmission> admitted = admit_table(*txn, tid, result.costs);
  if (!admitted.is_ok()) {
    result.error = BatchError{0, admitted.status()};
    ++result.costs.constraint_failures;
    return result;
  }
  const TableAdmission admission = *admitted;
  result.costs.lock_wait_ns += lock_shared_timed(engine_mu_);
  std::shared_lock<std::shared_mutex> engine_lock(engine_mu_, std::adopt_lock);
  {
    const CostScope scope(&result.costs);
    const storage::CacheEvents cache_before = cache_.events();
    Table& table = tables_[tid];

    // Fast-path eligibility. A batch whose column layout matches the table,
    // whose primary keys arrive strictly increasing, and whose table has no
    // enabled unique secondary index can settle every constraint up front
    // under one exclusive index-latch window; anything else goes through the
    // row-at-a-time path (identical semantics, no speedup). Self-referential
    // FKs also stay on the row path: a run row may parent a later run row,
    // which needs interleaved insert-then-check.
    bool fast = count > 0 && batch.num_columns() == table.def().columns.size();
    for (size_t c = 0; fast && c < batch.num_columns(); ++c) {
      fast = batch.column_type(c) == table.def().columns[c].type;
    }
    for (const SecondaryIndex& secondary : table.secondaries()) {
      if (secondary.enabled && secondary.def.unique) fast = false;
    }
    for (const uint32_t parent_id : table.fk_parent_ids) {
      if (parent_id == tid) fast = false;
    }
    std::vector<std::string> pk_keys;
    if (fast) {
      pk_keys.reserve(count);
      index::KeyEncoder encoder;
      for (size_t i = 0; i < count; ++i) {
        for (const int idx : table.pk_column_indices()) {
          batch.append_cell_to_key(encoder, first + i,
                                   static_cast<size_t>(idx));
        }
        pk_keys.push_back(encoder.take());
        encoder.clear();
        if (i > 0 && pk_keys[i - 1] >= pk_keys[i]) {
          fast = false;  // not presorted: fall back
          break;
        }
      }
    }
    if (fast) {
      insert_column_run_latched(*txn, tid, batch, first, count,
                                std::move(pk_keys), admission.extent, result);
    } else {
      for (size_t i = 0; i < count; ++i) {
        const Status status =
            insert_row_latched(*txn, tid, batch.row(first + i), result.costs,
                               admission.extent);
        if (!status.is_ok()) {
          result.error = BatchError{i, status};
          ++result.costs.constraint_failures;
          break;
        }
        ++result.rows_applied;
      }
    }
    result.costs.rows_applied = result.rows_applied;
    result.costs.cache = cache_.events().since(cache_before);
  }
  engine_lock.unlock();
  const double escalation =
      admission.contended
          ? options_.concurrency.lock_escalation_factor *
                static_cast<double>(1 + admission.queue_depth)
          : 0.0;
  pay_batch_latency(result.costs, escalation);
  return result;
}

void Engine::insert_column_run_latched(Transaction& txn, uint32_t tid,
                                       const ColumnBatch& batch, size_t first,
                                       size_t count,
                                       std::vector<std::string> pk_keys,
                                       uint32_t extent, BatchResult& result) {
  Table& table = tables_[tid];
  const TableDef& def = table.def();

  // Columnar validation screen (no latch — immutable schema only): find the
  // earliest row any validation rule rejects. The exact error status comes
  // from validate_row on that one materialized row, so messages and rule
  // ordering within the row match the row path bit for bit.
  size_t bad_row = count;
  for (size_t c = 0; c < def.columns.size(); ++c) {
    const ColumnDef& column = def.columns[c];
    if (!column.nullable) {
      for (size_t i = 0; i < bad_row; ++i) {
        if (batch.is_null(first + i, c)) {
          bad_row = i;
          break;
        }
      }
    }
    if (column.type == ColumnType::kDouble) {
      for (size_t i = 0; i < bad_row; ++i) {
        if (!batch.is_null(first + i, c) &&
            std::isnan(batch.f64_at(first + i, c))) {
          bad_row = i;
          break;
        }
      }
    }
  }
  for (const CheckConstraint& check : def.checks) {
    const size_t c = static_cast<size_t>(def.column_index(check.column));
    const ColumnType type = def.columns[c].type;
    for (size_t i = 0; i < bad_row; ++i) {
      const size_t r = first + i;
      if (batch.is_null(r, c)) continue;
      double v = 0.0;
      if (type == ColumnType::kDouble) {
        v = batch.f64_at(r, c);
      } else if (type == ColumnType::kString) {
        bad_row = i;  // non-numeric value in checked column
        break;
      } else {
        v = static_cast<double>(batch.i64_at(r, c));
      }
      if ((check.min.has_value() && v < *check.min) ||
          (check.max.has_value() && v > *check.max)) {
        bad_row = i;
        break;
      }
    }
  }
  size_t limit = count;
  std::optional<BatchError> failure;
  if (bad_row < count) {
    OpCosts scratch;
    const Status status = validate_row(table, batch.row(first + bad_row),
                                       scratch);
    failure = BatchError{
        bad_row, status.is_ok()
                     ? Status(ErrorCode::kInternal,
                              def.name + ": batch validation screen mismatch")
                     : status};
    limit = bad_row;
  }
  result.costs.check_evals +=
      static_cast<int64_t>((limit + (failure.has_value() ? 1 : 0)) *
                           (def.columns.size() + def.checks.size()));

  // Metadata latch shared for the run, index latch exclusive for the whole
  // constraint-settle + publish window — the one-latch analogue of the row
  // path's phase 1/3 pair (no pending/publish handshake needed: nothing can
  // race between check and publish while we hold it).
  result.costs.lock_wait_ns += lock_shared_timed(table.latch());
  const std::shared_lock<std::shared_mutex> table_latch(table.latch(),
                                                        std::adopt_lock);
  result.costs.lock_wait_ns += lock_exclusive_timed(table.index_latch());
  const std::unique_lock<std::shared_mutex> index_latch(table.index_latch(),
                                                        std::adopt_lock);

  // Primary-key uniqueness: one forward merge of the sorted run against the
  // tree's leaf chain instead of count point probes.
  if (limit > 0) {
    index::BPlusTree::Iterator it = table.pk_tree().seek(pk_keys[0]);
    for (size_t i = 0; i < limit; ++i) {
      while (it.valid() && it.key() < pk_keys[i]) it.next();
      if (it.valid() && it.key() == pk_keys[i]) {
        failure = BatchError{
            i, Status(ErrorCode::kConstraintPrimaryKey,
                      def.name + ": duplicate primary key " +
                          row_to_display(batch.row(first + i)))};
        limit = i;
        break;
      }
    }
  }

  // Foreign keys: parent index latch shared per probe, memoized on every
  // probe key already verified this call (catalog blocks repeat parents
  // heavily, but not always on adjacent rows). Skipped entirely when the
  // engine runs FK-deferred (shard instances: parents may be remote).
  const size_t fk_count =
      options_.enforce_foreign_keys ? def.foreign_keys.size() : 0;
  for (size_t f = 0; f < fk_count && limit > 0; ++f) {
    const ForeignKey& fk = def.foreign_keys[f];
    const Table& parent = tables_[table.fk_parent_ids[f]];
    const TableDef& parent_def = parent.def();
    struct FkColumn {
      size_t child_column;
      ColumnType parent_type;
    };
    std::vector<FkColumn> fk_columns;
    fk_columns.reserve(fk.columns.size());
    for (size_t i = 0; i < fk.columns.size(); ++i) {
      const size_t child_idx =
          static_cast<size_t>(def.column_index(fk.columns[i]));
      const size_t parent_idx = static_cast<size_t>(
          parent_def.column_index(parent_def.primary_key[i]));
      fk_columns.push_back(
          FkColumn{child_idx, parent_def.columns[parent_idx].type});
    }
    index::KeyEncoder encoder;
    std::unordered_set<std::string> verified;
    for (size_t i = 0; i < limit; ++i) {
      const size_t r = first + i;
      ++result.costs.fk_checks;
      bool has_null = false;
      for (const FkColumn& col : fk_columns) {
        if (batch.is_null(r, col.child_column)) {
          has_null = true;
          break;
        }
        switch (col.parent_type) {
          case ColumnType::kInt32:
            encoder.append_int32(
                static_cast<int32_t>(batch.i64_at(r, col.child_column)));
            break;
          case ColumnType::kInt64:
          case ColumnType::kTimestamp:
            encoder.append_int64(batch.i64_at(r, col.child_column));
            break;
          case ColumnType::kDouble:
            encoder.append_double(batch.f64_at(r, col.child_column));
            break;
          case ColumnType::kString:
            encoder.append_string(batch.str_at(r, col.child_column));
            break;
        }
      }
      if (has_null) {
        encoder.clear();
        continue;  // MATCH SIMPLE: NULL FK passes
      }
      std::string probe = encoder.take();
      encoder.clear();
      if (verified.count(probe) > 0) continue;  // memoized success
      index::BPlusTree::TouchInfo fk_touch;
      bool parent_has_row = false;
      {
        result.costs.lock_wait_ns += lock_shared_timed(parent.index_latch());
        const std::shared_lock<std::shared_mutex> parent_latch(
            parent.index_latch(), std::adopt_lock);
        parent_has_row =
            parent.pk_tree().lookup_with_touch(probe, &fk_touch).has_value();
      }
      result.costs.fk_node_visits += fk_touch.nodes_visited;
      if (!parent_has_row) {
        failure = BatchError{
            i, Status(ErrorCode::kConstraintForeignKey,
                      def.name + ": no parent row in " + fk.parent_table +
                          " for " + row_to_display(batch.row(r)))};
        limit = i;
        break;
      }
      cache_.touch_read({parent.pk_cache_file_id, fk_touch.leaf_page_id});
      verified.insert(std::move(probe));
    }
  }

  // Publish the surviving prefix: one latched heap batch, one WAL record,
  // one sorted-run merge per tree.
  if (limit > 0) {
    std::vector<std::string> row_bytes(limit);
    std::string wal_payload;
    size_t encoded_bytes = 0;
    for (size_t i = 0; i < limit; ++i) {
      batch.encode_row_to(first + i, row_bytes[i]);
      encoded_bytes += row_bytes[i].size();
      result.costs.heap_bytes += static_cast<int64_t>(row_bytes[i].size());
    }
    wal_payload.reserve(encoded_bytes + 4 * limit);
    for (const std::string& bytes : row_bytes) {
      const uint32_t len = static_cast<uint32_t>(bytes.size());
      const char header[4] = {
          static_cast<char>(len >> 24), static_cast<char>(len >> 16),
          static_cast<char>(len >> 8), static_cast<char>(len)};
      wal_payload.append(header, sizeof(header));
      wal_payload.append(bytes);
    }
    result.costs.wal_bytes += static_cast<int64_t>(wal_payload.size());
    wal_.append(storage::WalRecordType::kInsertBatch, txn.id, tid,
                std::move(wal_payload), extent);

    const storage::ShardedHeap::BatchAppendResult appended =
        table.heap().append_batch(extent, std::move(row_bytes));
    result.costs.lock_wait_ns += appended.latch_wait_ns;
    result.costs.heap_pages_opened += appended.pages_opened;
    std::vector<uint64_t> row_ids(limit);
    for (size_t i = 0; i < limit; ++i) {
      const storage::SlotId slot = appended.slots[i];
      row_ids[i] = make_row_id(tid, slot);
      // Slots come back page-ordered, so one touch per distinct heap page
      // covers the run without hitting the cache once per row.
      if (i == 0 || slot.page != appended.slots[i - 1].page ||
          slot.extent != appended.slots[i - 1].extent) {
        cache_.touch_write({table.heap_cache_file_id, slot.page, slot.extent});
      }
    }

    // Undo entries keep their own pk-key copies (the originals move into
    // the tree run next); secondary keys are filled in below.
    const size_t undo_base = txn.undo.size();
    txn.undo.reserve(txn.undo.size() + limit);
    for (size_t i = 0; i < limit; ++i) {
      txn.undo.push_back(
          UndoEntry{tid, appended.slots[i], pk_keys[i], {}, appended.views[i]});
    }

    std::vector<std::pair<std::string, uint64_t>> pk_run;
    pk_run.reserve(limit);
    for (size_t i = 0; i < limit; ++i) {
      result.costs.index_key_bytes += static_cast<int64_t>(pk_keys[i].size());
      count_index_columns(def, table.pk_column_indices(), result.costs);
      pk_run.emplace_back(std::move(pk_keys[i]), row_ids[i]);
    }
    index::BPlusTree::RunTouch pk_touch;
    const Status pk_status =
        table.pk_tree().insert_sorted_run(std::move(pk_run), &pk_touch);
    assert(pk_status.is_ok());  // dup-checked above, strictly sorted
    (void)pk_status;
    result.costs.index_updates += static_cast<int64_t>(limit);
    result.costs.index_node_visits += pk_touch.nodes_visited;
    result.costs.index_leaf_splits += pk_touch.leaf_splits;
    for (const uint32_t leaf : pk_touch.touched_leaf_ids) {
      cache_.touch_write({table.pk_cache_file_id, leaf});
    }

    for (size_t s = 0; s < table.secondaries().size(); ++s) {
      SecondaryIndex& secondary = table.secondaries()[s];
      if (!secondary.enabled) continue;
      // Eligibility excluded enabled unique secondaries, so every key here
      // carries the row-id suffix — unique and disjoint by construction.
      std::vector<std::pair<std::string, uint64_t>> run;
      run.reserve(limit);
      index::KeyEncoder encoder;
      for (size_t i = 0; i < limit; ++i) {
        if (secondary.def.htm.has_value()) {
          // HTM key: trixel id of (ra, dec), one int64. Both columns are
          // NOT NULL by schema validation, and rows past `limit` (which
          // failed constraints) never reach this loop.
          const size_t r = first + i;
          encoder.append_int64(static_cast<int64_t>(htm::htm_id_radec(
              batch.f64_at(r,
                           static_cast<size_t>(secondary.column_indices[0])),
              batch.f64_at(r,
                           static_cast<size_t>(secondary.column_indices[1])),
              secondary.def.htm->depth)));
          ++result.costs.index_int_columns;
        } else {
          for (const int idx : secondary.column_indices) {
            batch.append_cell_to_key(encoder, first + i,
                                     static_cast<size_t>(idx));
          }
          count_index_columns(def, secondary.column_indices, result.costs);
        }
        encoder.append_int64(static_cast<int64_t>(row_ids[i]));
        std::string key = encoder.take();
        encoder.clear();
        result.costs.index_key_bytes += static_cast<int64_t>(key.size());
        txn.undo[undo_base + i].secondary_keys.emplace_back(s, key);
        run.emplace_back(std::move(key), row_ids[i]);
      }
      std::sort(run.begin(), run.end());
      index::BPlusTree::RunTouch touch;
      const Status index_status =
          secondary.tree.insert_sorted_run(std::move(run), &touch);
      assert(index_status.is_ok());
      (void)index_status;
      result.costs.index_updates += static_cast<int64_t>(limit);
      result.costs.index_node_visits += touch.nodes_visited;
      result.costs.index_leaf_splits += touch.leaf_splits;
      for (const uint32_t leaf : touch.touched_leaf_ids) {
        cache_.touch_write({secondary.cache_file_id, leaf});
      }
    }

    if (insert_observer_) {
      for (size_t i = 0; i < limit; ++i) insert_observer_(tid, row_ids[i]);
    }
    result.rows_applied = static_cast<int64_t>(limit);
  }
  if (failure.has_value()) {
    result.error = std::move(failure);
    ++result.costs.constraint_failures;
  }
}

Status Engine::insert_row(uint64_t txn_id, uint32_t tid, const Row& row,
                          OpCosts& costs,
                          std::optional<uint32_t> extent_override) {
  Transaction* txn = find_transaction(txn_id);
  if (txn == nullptr) {
    ++costs.constraint_failures;
    return Status(ErrorCode::kFailedPrecondition,
                  "insert: unknown transaction");
  }
  if (tid >= tables_.size()) {
    ++costs.constraint_failures;
    return Status(ErrorCode::kNotFound, "insert: bad table id");
  }
  // Same admission-before-rwlock ordering as insert_batch.
  const Result<TableAdmission> admitted = admit_table(*txn, tid, costs);
  if (!admitted.is_ok()) {
    ++costs.constraint_failures;
    return admitted.status();
  }
  const TableAdmission admission = *admitted;
  costs.lock_wait_ns += lock_shared_timed(engine_mu_);
  std::shared_lock<std::shared_mutex> engine_lock(engine_mu_, std::adopt_lock);
  Status status = ok_status();
  {
    const CostScope scope(&costs);
    const storage::CacheEvents cache_before = cache_.events();
    status = insert_row_latched(*txn, tid, row, costs,
                                extent_override.value_or(admission.extent));
    if (status.is_ok()) {
      costs.rows_applied += 1;
    } else {
      ++costs.constraint_failures;
    }
    costs.cache += cache_.events().since(cache_before);
  }
  engine_lock.unlock();
  const double escalation =
      admission.contended
          ? options_.concurrency.lock_escalation_factor *
                static_cast<double>(1 + admission.queue_depth)
          : 0.0;
  pay_batch_latency(costs, escalation);
  return status;
}

Status Engine::validate_row(const Table& table, const Row& row,
                            OpCosts& costs) const {
  const TableDef& def = table.def();
  if (row.size() != def.columns.size()) {
    return Status(ErrorCode::kInvalidArgument,
                  str_format("%s: expected %zu columns, got %zu",
                             def.name.c_str(), def.columns.size(),
                             row.size()));
  }
  for (size_t i = 0; i < row.size(); ++i) {
    const ColumnDef& column = def.columns[i];
    ++costs.check_evals;
    if (row[i].is_null()) {
      if (!column.nullable) {
        return Status(ErrorCode::kConstraintNotNull,
                      def.name + "." + column.name + " is NOT NULL");
      }
      continue;
    }
    if (!row[i].matches(column.type)) {
      return Status(ErrorCode::kTypeMismatch,
                    def.name + "." + column.name + " expects " +
                        std::string(column_type_name(column.type)));
    }
    if (row[i].is_f64() && std::isnan(row[i].as_f64())) {
      return Status(ErrorCode::kConstraintCheck,
                    def.name + "." + column.name + " is NaN");
    }
  }
  for (const CheckConstraint& check : def.checks) {
    const int idx = def.column_index(check.column);
    const Value& value = row[static_cast<size_t>(idx)];
    ++costs.check_evals;
    if (value.is_null()) continue;
    const auto numeric = value.numeric();
    if (!numeric.is_ok()) {
      return Status(ErrorCode::kConstraintCheck,
                    "non-numeric value in checked column " + check.column);
    }
    if ((check.min.has_value() && *numeric < *check.min) ||
        (check.max.has_value() && *numeric > *check.max)) {
      return Status(ErrorCode::kConstraintCheck,
                    str_format("%s.%s value %g outside [%g, %g]",
                               def.name.c_str(), check.column.c_str(),
                               *numeric,
                               check.min.value_or(-HUGE_VAL),
                               check.max.value_or(HUGE_VAL)));
    }
  }
  return ok_status();
}

Status Engine::check_constraints(const Table& table, uint32_t tid,
                                 const Row& row, const std::string& pk_key,
                                 OpCosts& costs) {
  // Primary key uniqueness.
  index::BPlusTree::TouchInfo pk_probe;
  if (table.pk_tree().lookup_with_touch(pk_key, &pk_probe).has_value()) {
    costs.index_node_visits += pk_probe.nodes_visited;
    return Status(ErrorCode::kConstraintPrimaryKey,
                  table.def().name + ": duplicate primary key " +
                      row_to_display(row));
  }
  costs.index_node_visits += pk_probe.nodes_visited;

  // Foreign keys: shared index latch on each parent, held only for the
  // probe. Nested order is child index latch -> parent index latch, i.e.
  // descending table id (FKs only reference earlier tables), so the
  // hierarchy is acyclic. FK-deferred engines (shard instances) skip the
  // probes; the sharded repository reconciles edges across shards instead.
  const size_t row_fk_count =
      options_.enforce_foreign_keys ? table.def().foreign_keys.size() : 0;
  for (size_t f = 0; f < row_fk_count; ++f) {
    const ForeignKey& fk = table.def().foreign_keys[f];
    const uint32_t parent_id = table.fk_parent_ids[f];
    const Table& parent = tables_[parent_id];
    const auto probe =
        Table::encode_fk_probe(table.def(), fk, row, parent.def());
    ++costs.fk_checks;
    if (!probe.has_value()) continue;  // NULL FK passes
    index::BPlusTree::TouchInfo fk_touch;
    bool parent_has_row = false;
    if (parent_id == tid) {
      // Self-reference: the caller's latch on our index already covers it.
      parent_has_row =
          parent.pk_tree().lookup_with_touch(*probe, &fk_touch).has_value();
    } else {
      costs.lock_wait_ns += lock_shared_timed(parent.index_latch());
      const std::shared_lock<std::shared_mutex> parent_latch(
          parent.index_latch(), std::adopt_lock);
      parent_has_row =
          parent.pk_tree().lookup_with_touch(*probe, &fk_touch).has_value();
    }
    costs.fk_node_visits += fk_touch.nodes_visited;
    if (!parent_has_row) {
      return Status(ErrorCode::kConstraintForeignKey,
                    table.def().name + ": no parent row in " +
                        fk.parent_table + " for " + row_to_display(row));
    }
    cache_.touch_read({parent.pk_cache_file_id, fk_touch.leaf_page_id});
  }

  // Unique secondary indexes (enforced only while the index is enabled,
  // mirroring "constraint enforced via index").
  for (const SecondaryIndex& secondary : table.secondaries()) {
    if (!secondary.enabled || !secondary.def.unique) continue;
    const std::string key =
        table.encode_index_key(secondary, row, std::nullopt);
    if (secondary.tree.contains(key)) {
      return Status(ErrorCode::kConstraintUnique,
                    table.def().name + ": unique index " +
                        secondary.def.name + " violated");
    }
  }
  return ok_status();
}

Status Engine::insert_row_latched(Transaction& txn, uint32_t tid,
                                  const Row& row, OpCosts& costs,
                                  uint32_t extent) {
  Table& table = tables_[tid];

  // Validation and PK encoding read only immutable schema — no latch yet.
  SKY_RETURN_IF_ERROR(validate_row(table, row, costs));
  const std::string pk_key = table.encode_pk_key(row);

  // Metadata latch shared for the whole row: row traffic only excludes
  // structural maintenance, never other rows.
  costs.lock_wait_ns += lock_shared_timed(table.latch());
  const std::shared_lock<std::shared_mutex> table_latch(table.latch(),
                                                        std::adopt_lock);

  // Phase 1 — pre-check constraints under the index latch *shared*, so a
  // row that cannot possibly apply fails before touching the heap (same
  // page packing as the single-latch engine for failing rows).
  {
    costs.lock_wait_ns += lock_shared_timed(table.index_latch());
    const std::shared_lock<std::shared_mutex> index_latch(table.index_latch(),
                                                          std::adopt_lock);
    SKY_RETURN_IF_ERROR(check_constraints(table, tid, row, pk_key, costs));
  }

  // Phase 2 — append to the admitted extent as a hidden pending row.
  // Only the extent latch is held (inside the heap): sessions on distinct
  // extents run this — including the modeled device write — in parallel.
  std::string row_bytes = encode_row(row);
  costs.heap_bytes += static_cast<int64_t>(row_bytes.size());
  costs.wal_bytes += static_cast<int64_t>(row_bytes.size());
  const auto appended = table.heap().append_pending(extent, row_bytes);
  costs.lock_wait_ns += appended.latch_wait_ns;
  if (appended.opened_new_page) ++costs.heap_pages_opened;
  cache_.touch_write(
      {table.heap_cache_file_id, appended.slot.page, appended.slot.extent});

  // Phase 3 — re-check the race-sensitive constraints (PK, unique) under
  // the index latch *exclusive*, then log, publish, and index the row. The
  // re-check costs nothing in the common case and is charged to a scratch
  // tally: it is an artifact of the split latch, not modeled server work.
  costs.lock_wait_ns += lock_exclusive_timed(table.index_latch());
  const std::unique_lock<std::shared_mutex> index_latch(table.index_latch(),
                                                        std::adopt_lock);
  bool lost_race = table.pk_tree().lookup(pk_key).has_value();
  if (!lost_race) {
    for (const SecondaryIndex& secondary : table.secondaries()) {
      if (!secondary.enabled || !secondary.def.unique) continue;
      if (secondary.tree.contains(
              table.encode_index_key(secondary, row, std::nullopt))) {
        lost_race = true;
        break;
      }
    }
  }
  if (lost_race) {
    // Another session published a conflicting row between the phases. The
    // pending slot is abandoned (a hole in the page, as after a rollback);
    // re-run the full check to produce the seed's exact error status.
    const Status discarded = table.heap().discard(appended.slot);
    assert(discarded.is_ok());
    (void)discarded;
    OpCosts scratch;
    const Status failure = check_constraints(table, tid, row, pk_key, scratch);
    if (failure.is_ok()) {
      return Status(ErrorCode::kInternal,
                    table.def().name + ": insert race re-check mismatch");
    }
    return failure;
  }

  wal_.append(storage::WalRecordType::kInsert, txn.id, tid,
              std::move(row_bytes), extent);
  const Status published = table.heap().publish(appended.slot);
  assert(published.is_ok());
  (void)published;
  const uint64_t row_id = make_row_id(tid, appended.slot);

  index::BPlusTree::TouchInfo pk_touch;
  const Status pk_status = table.pk_tree().insert(pk_key, row_id, &pk_touch);
  assert(pk_status.is_ok());  // pre-checked above
  (void)pk_status;
  costs.index_updates += 1;
  costs.index_node_visits += pk_touch.nodes_visited;
  costs.index_key_bytes += static_cast<int64_t>(pk_key.size());
  count_index_columns(table.def(), table.pk_column_indices(), costs);
  if (pk_touch.leaf_split) ++costs.index_leaf_splits;
  cache_.touch_write({table.pk_cache_file_id, pk_touch.leaf_page_id});

  UndoEntry undo{tid, appended.slot, pk_key, {}, appended.bytes};
  for (size_t s = 0; s < table.secondaries().size(); ++s) {
    SecondaryIndex& secondary = table.secondaries()[s];
    if (!secondary.enabled) continue;
    const std::string key = table.encode_index_key(
        secondary, row, secondary.def.unique ? std::nullopt
                                             : std::optional<uint64_t>(row_id));
    index::BPlusTree::TouchInfo touch;
    const Status index_status = secondary.tree.insert(key, row_id, &touch);
    assert(index_status.is_ok());
    (void)index_status;
    costs.index_updates += 1;
    costs.index_node_visits += touch.nodes_visited;
    costs.index_key_bytes += static_cast<int64_t>(key.size());
    if (secondary.def.htm.has_value()) {
      ++costs.index_int_columns;  // key is one trixel id, not raw ra/dec
    } else {
      count_index_columns(table.def(), secondary.column_indices, costs);
    }
    if (touch.leaf_split) ++costs.index_leaf_splits;
    cache_.touch_write({secondary.cache_file_id, touch.leaf_page_id});
    undo.secondary_keys.emplace_back(s, key);
  }
  if (insert_observer_) insert_observer_(tid, row_id);
  // The undo log belongs to this session's transaction alone.
  txn.undo.push_back(std::move(undo));
  return ok_status();
}

// ------------------------------------------------------------- maintenance

Status Engine::set_index_enabled(uint32_t tid, std::string_view index_name,
                                 bool enabled) {
  const std::unique_lock<std::shared_mutex> engine_lock(engine_mu_);
  if (tid >= tables_.size()) {
    return Status(ErrorCode::kNotFound, "bad table id");
  }
  // Structural change: metadata latch exclusive (engine-exclusive already
  // quiesces row traffic; the latch keeps the table-level contract honest).
  const std::unique_lock<std::shared_mutex> table_latch(tables_[tid].latch());
  for (SecondaryIndex& secondary : tables_[tid].secondaries()) {
    if (secondary.def.name == index_name) {
      if (secondary.enabled && !enabled) {
        secondary.tree = index::BPlusTree(secondary.tree.fanout());
      }
      secondary.enabled = enabled;
      return ok_status();
    }
  }
  return Status(ErrorCode::kNotFound,
                "no such index: " + std::string(index_name));
}

Status Engine::rebuild_index(uint32_t tid, std::string_view index_name) {
  const std::unique_lock<std::shared_mutex> engine_lock(engine_mu_);
  if (tid >= tables_.size()) {
    return Status(ErrorCode::kNotFound, "bad table id");
  }
  Table& table = tables_[tid];
  const std::unique_lock<std::shared_mutex> table_latch(table.latch());
  for (SecondaryIndex& secondary : table.secondaries()) {
    if (secondary.def.name != index_name) continue;
    std::vector<std::pair<std::string, uint64_t>> entries;
    entries.reserve(static_cast<size_t>(table.heap().row_count()));
    Status decode_status = ok_status();
    table.heap().scan([&](storage::SlotId slot, std::string_view bytes) {
      if (!decode_status.is_ok()) return;
      const auto row = decode_row(bytes);
      if (!row.is_ok()) {
        decode_status = row.status();
        return;
      }
      const uint64_t row_id = make_row_id(tid, slot);
      entries.emplace_back(
          table.encode_index_key(secondary, *row,
                                 secondary.def.unique
                                     ? std::nullopt
                                     : std::optional<uint64_t>(row_id)),
          row_id);
    });
    SKY_RETURN_IF_ERROR(decode_status);
    std::sort(entries.begin(), entries.end());
    if (secondary.def.unique) {
      for (size_t i = 1; i < entries.size(); ++i) {
        if (entries[i - 1].first == entries[i].first) {
          return Status(ErrorCode::kConstraintUnique,
                        "rebuild found duplicate keys in unique index " +
                            std::string(index_name));
        }
      }
    }
    secondary.enabled = true;
    return secondary.tree.bulk_build(std::move(entries));
  }
  return Status(ErrorCode::kNotFound,
                "no such index: " + std::string(index_name));
}

Status Engine::bulk_load_sorted(uint32_t tid, const std::vector<Row>& rows) {
  const std::unique_lock<std::shared_mutex> engine_lock(engine_mu_);
  if (tid >= tables_.size()) {
    return Status(ErrorCode::kNotFound, "bad table id");
  }
  Table& table = tables_[tid];
  const std::unique_lock<std::shared_mutex> table_latch(table.latch());
  if (table.heap().row_count() != 0) {
    return Status(ErrorCode::kFailedPrecondition,
                  "bulk_load_sorted requires an empty table");
  }
  OpCosts scratch;
  std::vector<std::pair<std::string, uint64_t>> pk_entries;
  pk_entries.reserve(rows.size());
  // One extent per preload: round-robin (the same assignment a transaction
  // gets in begin_transaction(), so the preload stays one dense append
  // stream and is extent 0 whenever heap_extents is 1) or, under
  // kLeastLoaded, whichever extent of this heap currently holds the fewest
  // bytes — successive preloads balance instead of merely alternating.
  const uint32_t extent =
      extent_assignment_.load(std::memory_order_relaxed) ==
              ExtentAssignment::kLeastLoaded
          ? table.heap().least_loaded_extent()
          : next_extent_.fetch_add(1, std::memory_order_relaxed) %
                options_.heap_extents;
  // A preload is one logical commit: published to snapshot readers as a
  // single chunk (slots and byte views collected as the rows land).
  SnapshotChunk chunk;
  const bool build_chunk = options_.snapshot_reads && !rows.empty();
  for (const Row& row : rows) {
    SKY_RETURN_IF_ERROR(validate_row(table, row, scratch));
    const auto appended = table.heap().append(extent, encode_row(row));
    pk_entries.emplace_back(table.encode_pk_key(row),
                            make_row_id(tid, appended.slot));
    if (build_chunk) {
      chunk.pk.emplace_back(pk_entries.back().first,
                            static_cast<uint32_t>(chunk.rows.size()));
      chunk.rows.push_back({appended.slot, appended.bytes});
    }
  }
  if (build_chunk) {
    chunk.secondaries.resize(table.secondaries().size());
  }
  // Requires strict PK order; bulk_build rejects violations.
  SKY_RETURN_IF_ERROR(table.pk_tree().bulk_build(std::move(pk_entries)));
  for (size_t s = 0; s < table.secondaries().size(); ++s) {
    SecondaryIndex& secondary = table.secondaries()[s];
    if (!secondary.enabled) continue;  // chunk run stays nullopt (disabled)
    // Rebuild from heap so preloaded data is indexed too.
    std::vector<std::pair<std::string, uint64_t>> entries;
    entries.reserve(rows.size());
    if (build_chunk) {
      chunk.secondaries[s].emplace();
      chunk.secondaries[s]->reserve(rows.size());
    }
    // The table was empty, so the scan visits exactly the rows just
    // appended, in append order — scan position = chunk row index.
    uint32_t scan_idx = 0;
    table.heap().scan([&](storage::SlotId slot, std::string_view bytes) {
      const auto row = decode_row(bytes);
      const uint64_t row_id = make_row_id(tid, slot);
      entries.emplace_back(
          table.encode_index_key(secondary, *row,
                                 secondary.def.unique
                                     ? std::nullopt
                                     : std::optional<uint64_t>(row_id)),
          row_id);
      if (build_chunk) {
        chunk.secondaries[s]->emplace_back(entries.back().first, scan_idx);
      }
      ++scan_idx;
    });
    std::sort(entries.begin(), entries.end());
    if (build_chunk) {
      std::sort(chunk.secondaries[s]->begin(), chunk.secondaries[s]->end());
    }
    SKY_RETURN_IF_ERROR(secondary.tree.bulk_build(std::move(entries)));
  }
  if (build_chunk) {
    std::vector<std::pair<uint32_t, SnapshotChunk>> chunks;
    chunks.emplace_back(tid, std::move(chunk));
    snapshots_.publish(std::move(chunks));
  }
  return ok_status();
}

// ----------------------------------------------------------------- queries

int64_t Engine::total_rows() const {
  const std::shared_lock<std::shared_mutex> engine_lock(engine_mu_);
  int64_t total = 0;
  for (const Table& table : tables_) total += table.heap().row_count();
  return total;
}

int64_t Engine::total_heap_bytes() const {
  const std::shared_lock<std::shared_mutex> engine_lock(engine_mu_);
  int64_t total = 0;
  for (const Table& table : tables_) total += table.heap().total_bytes();
  return total;
}

std::string Engine::encode_tuple_key(const TableDef& def,
                                     const std::vector<int>& column_indices,
                                     const Row& values) const {
  index::KeyEncoder encoder;
  for (size_t i = 0; i < values.size() && i < column_indices.size(); ++i) {
    const int idx = column_indices[i];
    append_value_to_key(encoder, values[i],
                        def.columns[static_cast<size_t>(idx)].type);
  }
  return encoder.take();
}

Result<Row> Engine::row_at(const Table& table, uint64_t row_id) const {
  SKY_ASSIGN_OR_RETURN(const std::string_view bytes,
                       table.heap().read(row_id_slot(row_id)));
  return decode_row(bytes);
}

Result<bool> Engine::index_enabled(uint32_t tid,
                                   std::string_view index_name) const {
  const std::shared_lock<std::shared_mutex> engine_lock(engine_mu_);
  if (tid >= tables_.size()) {
    return Status(ErrorCode::kNotFound, "bad table id");
  }
  const Table& table = tables_[tid];
  const std::shared_lock<std::shared_mutex> latch(table.index_latch());
  for (const SecondaryIndex& secondary : table.secondaries()) {
    if (secondary.def.name == index_name) return secondary.enabled;
  }
  return Status(ErrorCode::kNotFound,
                "no such index: " + std::string(index_name));
}

void Engine::publish_snapshot_chunks(std::vector<UndoEntry> undo) {
  // Group the undo log into one chunk per table, preserving insert order
  // within each table (chunk row index = per-table insert sequence).
  std::vector<int> chunk_of(tables_.size(), -1);
  std::vector<std::pair<uint32_t, SnapshotChunk>> chunks;
  for (UndoEntry& entry : undo) {
    if (entry.table_id >= tables_.size()) continue;
    int& slot = chunk_of[entry.table_id];
    if (slot < 0) {
      slot = static_cast<int>(chunks.size());
      chunks.emplace_back(entry.table_id, SnapshotChunk{});
      // Start every secondary run engaged; runs a row is missing from are
      // reset below (the index was disabled for part of the transaction).
      chunks.back().second.secondaries.resize(
          tables_[entry.table_id].secondaries().size());
      for (auto& run : chunks.back().second.secondaries) run.emplace();
    }
    SnapshotChunk& chunk = chunks[static_cast<size_t>(slot)].second;
    const auto row_idx = static_cast<uint32_t>(chunk.rows.size());
    chunk.rows.push_back({entry.slot, entry.bytes});
    chunk.pk.emplace_back(std::move(entry.pk_key), row_idx);
    for (auto& [s, key] : entry.secondary_keys) {
      if (s < chunk.secondaries.size() && chunk.secondaries[s].has_value()) {
        chunk.secondaries[s]->emplace_back(std::move(key), row_idx);
      }
    }
  }
  for (auto& [tid, chunk] : chunks) {
    std::sort(chunk.pk.begin(), chunk.pk.end());
    for (auto& run : chunk.secondaries) {
      if (!run.has_value()) continue;
      if (run->size() != chunk.rows.size()) {
        // Some rows committed while the index was disabled: the run is
        // incomplete, so the chunk cannot serve reads over that index.
        run.reset();
        continue;
      }
      std::sort(run->begin(), run->end());
    }
  }
  snapshots_.publish(std::move(chunks));
}

Status index_unavailable_error(std::string_view index_name,
                               std::string_view detail) {
  std::string message = "index unavailable: " + std::string(index_name);
  if (!detail.empty()) {
    message += " (";
    message += detail;
    message += ")";
  }
  return Status(ErrorCode::kFailedPrecondition, std::move(message));
}

Result<std::vector<Row>> Engine::snapshot_collect_range(
    const Snapshot& snap, uint32_t table_id, int secondary,
    std::string_view index_name, const std::string& lo,
    const std::string& hi) const {
  if (table_id >= tables_.size()) {
    return Status(ErrorCode::kNotFound, "bad table id");
  }
  // (encoded key, row bytes) hits across all visible chunks. Keys are
  // globally unique — PKs by constraint, non-unique secondary keys by their
  // row-id suffix — so a plain sort yields live-index order.
  std::vector<std::pair<std::string_view, std::string_view>> hits;
  Status failure = ok_status();
  snap.visit_chunks(table_id, [&](const SnapshotChunk& chunk) {
    if (!failure.is_ok()) return;
    const std::vector<std::pair<std::string, uint32_t>>* run = &chunk.pk;
    if (secondary >= 0) {
      const auto s = static_cast<size_t>(secondary);
      if (s >= chunk.secondaries.size() || !chunk.secondaries[s].has_value()) {
        failure = index_unavailable_error(
            index_name,
            "snapshot chunk predates index: committed while it was disabled");
        return;
      }
      run = &*chunk.secondaries[s];
    }
    auto it = std::lower_bound(
        run->begin(), run->end(), lo,
        [](const std::pair<std::string, uint32_t>& entry,
           const std::string& k) { return entry.first < k; });
    for (; it != run->end(); ++it) {
      if (!hi.empty() && it->first >= hi) break;
      hits.emplace_back(it->first, chunk.rows[it->second].bytes);
    }
  });
  SKY_RETURN_IF_ERROR(failure);
  std::sort(hits.begin(), hits.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<Row> rows;
  rows.reserve(hits.size());
  for (const auto& [key, bytes] : hits) {
    SKY_ASSIGN_OR_RETURN(Row row, decode_row(bytes));
    rows.push_back(std::move(row));
  }
  return rows;
}

// --------------------------------------------------------------- telemetry

EngineStats Engine::stats() const {
  EngineStats stats;
  stats.wal = wal_.stats();
  stats.concurrency = concurrency_stats();
  stats.snapshots = snapshots_.stats();
  {
    const std::shared_lock<std::shared_mutex> engine_lock(engine_mu_);
    stats.extents.reserve(tables_.size());
    for (const Table& table : tables_) {
      stats.extents.push_back(
          TableExtentStats{table.id(), table.heap().extent_stats()});
      stats.total_rows += table.heap().row_count();
      stats.total_heap_bytes += table.heap().total_bytes();
    }
  }
  {
    // Held across the call so a concurrent detach cannot destroy the source
    // mid-invocation. The source (QueryScheduler::stats) takes only gate
    // and snapshot-manager internal locks — leaves in the lock order.
    const std::scoped_lock hook_lock(query_stats_mu_);
    if (query_stats_source_) stats.query = query_stats_source_();
  }
  // Live policy values, read from the owning subsystems (EngineOptions is
  // never mutated after construction).
  const storage::WalOptions wal_options = wal_.wal_options();
  stats.policies.commit_window = wal_options.commit_window;
  stats.policies.max_group_commits = wal_options.max_group_commits;
  stats.policies.transaction_slots = txn_gate_->slots();
  int64_t itl_slots = 0;  // 0 = ITL gates disabled on this engine
  for (const Table& table : tables_) {
    if (const SlotGate* gate = table.itl_gate(); gate != nullptr) {
      itl_slots = gate->slots();
      break;
    }
  }
  stats.policies.itl_slots_per_table = itl_slots;
  stats.policies.extent_assignment =
      extent_assignment_.load(std::memory_order_relaxed);
  return stats;
}

Status Engine::update_policies(const PolicyPatch& patch) {
  // Validate the whole patch first; apply nothing on failure.
  if (patch.commit_window.has_value() && *patch.commit_window < 0) {
    return Status(ErrorCode::kInvalidArgument,
                  "update_policies: commit_window must be >= 0");
  }
  if (patch.max_group_commits.has_value() && *patch.max_group_commits < 1) {
    return Status(ErrorCode::kInvalidArgument,
                  "update_policies: max_group_commits must be >= 1");
  }
  if (patch.transaction_slots.has_value() && *patch.transaction_slots < 1) {
    return Status(ErrorCode::kInvalidArgument,
                  "update_policies: transaction_slots must be >= 1");
  }
  if (patch.itl_slots_per_table.has_value()) {
    if (*patch.itl_slots_per_table < 1) {
      return Status(ErrorCode::kInvalidArgument,
                    "update_policies: itl_slots_per_table must be >= 1");
    }
    if (!options_.concurrency.itl_gated()) {
      // Creating gates live would race the lock-free gate-pointer reads on
      // the insert path; only existing gates can be resized.
      return Status(ErrorCode::kFailedPrecondition,
                    "update_policies: engine runs without ITL gates");
    }
  }
  const std::scoped_lock lock(policy_mu_);
  if (patch.commit_window.has_value() || patch.max_group_commits.has_value()) {
    wal_.set_commit_policy(patch.commit_window, patch.max_group_commits);
  }
  if (patch.transaction_slots.has_value()) {
    txn_gate_->set_slots(*patch.transaction_slots);
  }
  if (patch.itl_slots_per_table.has_value()) {
    for (Table& table : tables_) {
      if (SlotGate* gate = table.itl_gate(); gate != nullptr) {
        gate->set_slots(*patch.itl_slots_per_table);
      }
    }
  }
  if (patch.extent_assignment.has_value()) {
    extent_assignment_.store(*patch.extent_assignment,
                             std::memory_order_relaxed);
  }
  return ok_status();
}

void Engine::set_query_stats_source(
    std::function<core::QueryStats()> source) {
  const std::scoped_lock lock(query_stats_mu_);
  query_stats_source_ = std::move(source);
}

ConcurrencyStats Engine::concurrency_stats() const {
  ConcurrencyStats stats;
  stats.transaction_gate = txn_gate_->stats();
  // Table vector and gate pointers are fixed after construction; each
  // gate's stats() takes its own internal lock, so no engine lock needed.
  for (const Table& table : tables_) {
    if (const SlotGate* gate = table.itl_gate(); gate != nullptr) {
      stats.itl += gate->stats();
    }
  }
  return stats;
}

Result<std::vector<storage::ShardedHeap::ExtentStats>>
Engine::heap_extent_stats(uint32_t tid) const {
  const std::shared_lock<std::shared_mutex> engine_lock(engine_mu_);
  if (tid >= tables_.size()) {
    return Status(ErrorCode::kNotFound, "bad table id");
  }
  return tables_[tid].heap().extent_stats();
}

void Engine::set_insert_observer(
    std::function<void(uint32_t, uint64_t)> observer) {
  const std::unique_lock<std::shared_mutex> engine_lock(engine_mu_);
  insert_observer_ = std::move(observer);
}

Status Engine::verify_integrity() const {
  const std::unique_lock<std::shared_mutex> engine_lock(engine_mu_);
  for (const Table& table : tables_) {
    // Heap rows decode, agree with the PK tree, and satisfy FKs.
    Status failure = ok_status();
    int64_t live = 0;
    table.heap().scan([&](storage::SlotId slot, std::string_view bytes) {
      if (!failure.is_ok()) return;
      ++live;
      const auto row = decode_row(bytes);
      if (!row.is_ok()) {
        failure = row.status();
        return;
      }
      const std::string pk_key = table.encode_pk_key(*row);
      const auto row_id = table.pk_tree().lookup(pk_key);
      if (!row_id.has_value() ||
          *row_id != make_row_id(table.id(), slot)) {
        failure = Status(ErrorCode::kInternal,
                         table.def().name + ": PK tree disagrees with heap");
        return;
      }
      // FK closure holds per engine only when FKs are enforced here; an
      // FK-deferred shard's parents may live on sibling shards, audited by
      // ShardedRepository::reconcile_foreign_keys instead.
      if (options_.enforce_foreign_keys) {
        for (const ForeignKey& fk : table.def().foreign_keys) {
          const uint32_t parent_id =
              schema_.table_id(fk.parent_table).value();
          const auto probe = Table::encode_fk_probe(table.def(), fk, *row,
                                                    tables_[parent_id].def());
          if (probe.has_value() &&
              !tables_[parent_id].pk_tree().contains(*probe)) {
            failure = Status(ErrorCode::kInternal,
                             table.def().name + ": dangling FK to " +
                                 fk.parent_table);
            return;
          }
        }
      }
    });
    SKY_RETURN_IF_ERROR(failure);
    if (static_cast<size_t>(live) != table.pk_tree().size()) {
      return Status(ErrorCode::kInternal,
                    table.def().name + ": PK tree size mismatch");
    }
    SKY_RETURN_IF_ERROR(table.pk_tree().validate());
    for (const SecondaryIndex& secondary : table.secondaries()) {
      if (!secondary.enabled) continue;
      if (secondary.tree.size() != static_cast<size_t>(live)) {
        return Status(ErrorCode::kInternal,
                      table.def().name + ": secondary index " +
                          secondary.def.name + " size mismatch");
      }
      SKY_RETURN_IF_ERROR(secondary.tree.validate());
    }
  }
  return ok_status();
}

}  // namespace sky::db
