// Per-call cost accounting.
//
// Every engine call tallies the mechanical work it performed — index descents,
// pages dirtied, redo bytes, cache misses, device I/O by role. Real-time mode
// treats these as diagnostics; simulation mode prices them through the client
// CostModel to produce virtual server time. This is how the paper's
// figure-level effects (index maintenance cost, commit cost, cache-size
// effects, device contention) emerge from mechanism rather than curve fit.
#pragma once

#include <cstdint>

#include "storage/buffer_cache.h"
#include "storage/device.h"

namespace sky::db {

struct OpCosts {
  int64_t rows_applied = 0;
  int64_t index_updates = 0;       // entries inserted across all B+trees
  int64_t index_node_visits = 0;   // descent steps (CPU)
  int64_t index_leaf_splits = 0;
  int64_t index_key_bytes = 0;
  // Indexed-column counts by type across inserted entries (float keys are
  // costlier to bind and compare — the paper's Fig. 8 contrast).
  int64_t index_int_columns = 0;
  int64_t index_float_columns = 0;
  int64_t index_string_columns = 0;
  int64_t heap_pages_opened = 0;
  int64_t heap_bytes = 0;
  int64_t fk_checks = 0;
  int64_t fk_node_visits = 0;
  int64_t check_evals = 0;         // type / null / range predicate evaluations
  int64_t constraint_failures = 0;
  int64_t wal_bytes = 0;
  // Real time this call spent blocked on engine latches (table latches and
  // the engine's DDL lock). Zero on uncontended runs; the parallel-load
  // report uses it to attribute makespan to contention vs. work.
  int64_t lock_wait_ns = 0;
  // Admission-gate breakdown (subsets of the wait story, same field names
  // the sim session reports): time blocked on the instance-wide
  // transaction-slot gate, time blocked on a per-table ITL gate, and
  // injected long-stall time (lock_manager.h FairSlotGate stall model).
  int64_t txn_slot_wait_ns = 0;
  int64_t itl_wait_ns = 0;
  int64_t stall_ns = 0;
  // Query-lane admission wait (db/query_scheduler.h): time a query spent
  // queued on its lane's gate (interactive or batch) plus, for batch
  // queries, time spent yielding to in-flight interactive work. Not part of
  // lock_wait_ns — lane queueing is scheduling policy, not latch contention.
  int64_t query_lane_wait_ns = 0;
  // Group-commit accounting (commit calls only): whether this commit led
  // the covering device write or rode another session's, and the
  // commit-coalescing window time it paid as leader.
  int64_t commit_flushes_led = 0;
  int64_t commit_piggybacks = 0;
  int64_t commit_leader_wait_ns = 0;
  // Spatial-operator accounting (db/spatial.h). zone_scan_rows counts rows
  // pulled through declination-zone windows (cone probes and per-zone ra
  // scans); xmatch_candidates counts pairs that reached the exact
  // angular-distance test; xmatch_pairs counts pairs that passed.
  int64_t zone_scan_rows = 0;
  int64_t xmatch_candidates = 0;
  int64_t xmatch_pairs = 0;
  storage::CacheEvents cache;      // delta attributable to this call
  storage::IoTally io;             // physical I/O by device role

  OpCosts& operator+=(const OpCosts& other) {
    rows_applied += other.rows_applied;
    index_updates += other.index_updates;
    index_node_visits += other.index_node_visits;
    index_leaf_splits += other.index_leaf_splits;
    index_key_bytes += other.index_key_bytes;
    index_int_columns += other.index_int_columns;
    index_float_columns += other.index_float_columns;
    index_string_columns += other.index_string_columns;
    heap_pages_opened += other.heap_pages_opened;
    heap_bytes += other.heap_bytes;
    fk_checks += other.fk_checks;
    fk_node_visits += other.fk_node_visits;
    check_evals += other.check_evals;
    constraint_failures += other.constraint_failures;
    wal_bytes += other.wal_bytes;
    lock_wait_ns += other.lock_wait_ns;
    txn_slot_wait_ns += other.txn_slot_wait_ns;
    itl_wait_ns += other.itl_wait_ns;
    stall_ns += other.stall_ns;
    query_lane_wait_ns += other.query_lane_wait_ns;
    commit_flushes_led += other.commit_flushes_led;
    commit_piggybacks += other.commit_piggybacks;
    commit_leader_wait_ns += other.commit_leader_wait_ns;
    zone_scan_rows += other.zone_scan_rows;
    xmatch_candidates += other.xmatch_candidates;
    xmatch_pairs += other.xmatch_pairs;
    cache += other.cache;
    io += other.io;
    return *this;
  }
};

}  // namespace sky::db
