// Copy-on-write table snapshots: latch-free reads while loaders append.
//
// The load path publishes rows into the heap and B+trees *before* commit
// (two-phase insert, engine.cpp), so the live read path is read-uncommitted
// and — worse for the mixed workload the repository exists to serve — shares
// the table/index/extent latches with ingest: a long scan stalls every
// loader's publish window and vice versa. This module adds the read path
// that never blocks ingest.
//
// Mechanism: per-table chains of immutable chunks. At commit the engine
// turns the transaction's undo log into one SnapshotChunk per written table:
// the committed rows' slots and byte views (valid forever by the heap's
// storage-stability contract — row bytes never move), plus sorted key runs
// for the PK and every enabled secondary index, built from the very keys
// the insert path already encoded. Chunks are linked newest-first into
// per-table chains whose heads are std::atomic<std::shared_ptr<const
// SnapshotNode>>; publication is serialized by one mutex and stamped with a
// monotone commit LSN, and the manager's published_lsn_ advances only after
// every head includes the commit (release/acquire pairing) — so any reader
// that loads published_lsn_ and then the heads sees a transactionally
// consistent committed prefix.
//
// A Snapshot is a pin: it captures read_lsn = published_lsn() plus every
// chain head, and visits only chunks with commit_lsn <= read_lsn. Reads
// against a pinned snapshot touch nothing but immutable chunk data — no
// engine rwlock, no table latch, no extent latch, no gate — which is what
// the zero-latch regression test asserts. Pins are registered (with their
// pin time) so telemetry can report live-pin count and oldest-pin age, and
// so a leaked pin is observable; dropping the Snapshot unpins.
//
// Costs and limits (see DESIGN.md "Snapshot reads and the query scheduler"):
// chains are never compacted (depth = number of commits since startup) and
// chunks duplicate the index keys' bytes, roughly doubling index-key memory
// for snapshot-visible data. A chunk whose table had a secondary index
// disabled at commit carries no key run for it; snapshot index reads over a
// chain containing such a chunk fail with kFailedPrecondition rather than
// silently missing rows. Snapshots must not outlive their engine.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/units.h"
#include "storage/heap_file.h"

namespace sky::db {

// One committed transaction's rows for one table. Immutable once published.
struct SnapshotChunk {
  // Monotone publication sequence (1-based; assigned under the publish
  // mutex, analogous to the WAL's durable-LSN watermark).
  uint64_t commit_lsn = 0;
  struct RowRef {
    storage::SlotId slot;
    std::string_view bytes;  // into the heap; stable for the heap's lifetime
  };
  std::vector<RowRef> rows;  // insertion order within the transaction
  // Sorted (encoded PK key, index into rows) run for point/range lookups.
  std::vector<std::pair<std::string, uint32_t>> pk;
  // One entry per secondary-index slot of the table, aligned with
  // Table::secondaries(). Keys carry the same row-id suffix the live trees
  // use for non-unique indexes, so byte-order equals live index order.
  // nullopt = the index was disabled when this chunk committed (reads over
  // the chain must fail rather than miss rows).
  std::vector<std::optional<std::vector<std::pair<std::string, uint32_t>>>>
      secondaries;
};

// Immutable chain node, newest-first; prev is the table's previous
// committed state.
struct SnapshotNode {
  std::shared_ptr<const SnapshotNode> prev;
  SnapshotChunk chunk;
  // Rows in this chunk plus every older chunk: a pinned row_count() is one
  // pointer chase once the first visible node is found.
  int64_t rows_cumulative = 0;
};

struct SnapshotStats {
  uint64_t published_lsn = 0;   // newest publication visible to new pins
  int64_t chunks_published = 0;
  int64_t rows_published = 0;
  int64_t pins_taken = 0;       // lifetime pin count
  int64_t active_pins = 0;      // currently live Snapshot handles
  Nanos oldest_pin_age = 0;     // age of the oldest live pin at stats() time
};

class SnapshotManager;

// A pinned, transactionally consistent read view over every table.
// Move-only RAII: destruction unpins. Reads through a Snapshot take no lock
// of any kind. One Snapshot may be shared by multiple reader threads only
// as const (all accessors are const and touch immutable data).
class Snapshot {
 public:
  Snapshot() = default;
  Snapshot(Snapshot&& other) noexcept;
  Snapshot& operator=(Snapshot&& other) noexcept;
  Snapshot(const Snapshot&) = delete;
  Snapshot& operator=(const Snapshot&) = delete;
  ~Snapshot();

  bool valid() const { return manager_ != nullptr; }
  uint64_t read_lsn() const { return read_lsn_; }

  // First chain node visible at read_lsn() for a table (nullptr when the
  // table has no committed rows in view). The captured head may lead with
  // nodes published after the pin; they are skipped here.
  const SnapshotNode* visible_head(uint32_t table_id) const;

  // Committed rows visible for one table. Latch-free.
  int64_t row_count(uint32_t table_id) const {
    const SnapshotNode* node = visible_head(table_id);
    return node == nullptr ? 0 : node->rows_cumulative;
  }

  // Visit every visible chunk of a table, oldest first.
  template <typename Fn>  // Fn(const SnapshotChunk&)
  void visit_chunks(uint32_t table_id, Fn&& fn) const {
    std::vector<const SnapshotNode*> nodes;
    for (const SnapshotNode* node = visible_head(table_id); node != nullptr;
         node = node->prev.get()) {
      nodes.push_back(node);
    }
    for (auto it = nodes.rbegin(); it != nodes.rend(); ++it) {
      fn((*it)->chunk);
    }
  }

 private:
  friend class SnapshotManager;
  SnapshotManager* manager_ = nullptr;
  uint64_t pin_id_ = 0;
  uint64_t read_lsn_ = 0;
  // Chain head per table, captured at pin time (acquire loads).
  std::vector<std::shared_ptr<const SnapshotNode>> heads_;
};

// Owns the per-table chunk chains and the pin registry. One per engine.
class SnapshotManager {
 public:
  explicit SnapshotManager(size_t table_count);

  // Publish one commit's chunks atomically: assigns the commit LSN, links
  // each chunk onto its table's chain, then advances published_lsn_.
  // Serialized under the publish mutex; callers hold whatever lock keeps
  // the chunks' source data (e.g. secondary enabled flags) stable.
  // Returns the assigned commit LSN.
  uint64_t publish(std::vector<std::pair<uint32_t, SnapshotChunk>> chunks);

  // Pin the newest consistent view. Lock order: only the pin-registry
  // mutex, briefly; never blocks on publication.
  Snapshot pin();

  uint64_t published_lsn() const {
    return published_lsn_.load(std::memory_order_acquire);
  }
  SnapshotStats stats() const;

 private:
  friend class Snapshot;
  void unpin(uint64_t pin_id);

  // Heads are lock-free published (release) and pinned (acquire).
  std::vector<std::atomic<std::shared_ptr<const SnapshotNode>>> heads_;
  std::atomic<uint64_t> published_lsn_{0};
  std::mutex publish_mu_;

  mutable std::mutex pin_mu_;  // guards pins_ / next_pin_id_
  uint64_t next_pin_id_ = 1;
  std::unordered_map<uint64_t, std::chrono::steady_clock::time_point> pins_;
  std::atomic<int64_t> pins_taken_{0};
  std::atomic<int64_t> chunks_published_{0};
  std::atomic<int64_t> rows_published_{0};
};

}  // namespace sky::db
