// Runtime state of one table: heap storage, primary-key B+tree, secondary
// indexes. Engine-internal — the public surface is db::Engine.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <string>
#include <vector>

#include "db/lock_manager.h"
#include "db/row.h"
#include "db/schema.h"
#include "index/bptree.h"
#include "index/key_codec.h"
#include "storage/sharded_heap.h"

namespace sky::db {

// Row ids pack (table, extent, page, slot): 12 | 8 | 24 | 20 bits. 24 page
// bits give each extent 128 GiB of 8 KiB pages — the 32-bit page field the
// pre-sharding layout had was headroom nothing could fill, so sharding
// borrows 8 of those bits for the extent without shrinking any real limit.
constexpr uint64_t make_row_id(uint32_t table, storage::SlotId slot) {
  return (static_cast<uint64_t>(table) << 52) |
         (static_cast<uint64_t>(slot.extent) << 44) |
         (static_cast<uint64_t>(slot.page) << 20) |
         static_cast<uint64_t>(slot.slot);
}
constexpr uint32_t row_id_table(uint64_t row_id) {
  return static_cast<uint32_t>(row_id >> 52);
}
constexpr storage::SlotId row_id_slot(uint64_t row_id) {
  return storage::SlotId{static_cast<uint32_t>((row_id >> 44) & 0xFFu),
                         static_cast<uint32_t>((row_id >> 20) & 0xFFFFFFu),
                         static_cast<uint32_t>(row_id & 0xFFFFFu)};
}

// Encode one value into a key (shared by PK, FK probes, and secondary keys).
void append_value_to_key(index::KeyEncoder& encoder, const Value& value,
                         ColumnType type);

struct SecondaryIndex {
  IndexDef def;
  std::vector<int> column_indices;
  index::BPlusTree tree;
  bool enabled = true;
  uint32_t cache_file_id = 0;
};

class Table {
 public:
  // `heap_extents`: number of independent append streams in the heap (1 =
  // the pre-sharding single-heap layout). `heap_append_latency`: modeled
  // per-append device write, slept while the extent latch is held (see
  // storage/sharded_heap.h).
  Table(uint32_t id, TableDef def, uint32_t heap_extents = 1,
        Nanos heap_append_latency = 0);

  uint32_t id() const { return id_; }
  const TableDef& def() const { return def_; }

  std::string encode_pk_key(const Row& row) const;
  // Key for a secondary index; non-unique indexes get the row id appended to
  // disambiguate. Returns nullopt when any indexed column is NULL on a
  // unique index probe? — NULLs participate normally (they encode as NULL).
  std::string encode_index_key(const SecondaryIndex& index, const Row& row,
                               std::optional<uint64_t> row_id_suffix) const;
  // Key a FK child row uses to probe this (parent) table's PK; nullopt if
  // any referencing value is NULL (SQL MATCH SIMPLE: NULL FK passes).
  static std::optional<std::string> encode_fk_probe(
      const TableDef& child_def, const ForeignKey& fk, const Row& child_row,
      const TableDef& parent_def);

  storage::ShardedHeap& heap() { return heap_; }
  const storage::ShardedHeap& heap() const { return heap_; }
  index::BPlusTree& pk_tree() { return pk_tree_; }
  const index::BPlusTree& pk_tree() const { return pk_tree_; }
  std::vector<SecondaryIndex>& secondaries() { return secondaries_; }
  const std::vector<SecondaryIndex>& secondaries() const {
    return secondaries_;
  }
  const std::vector<int>& pk_column_indices() const {
    return pk_column_indices_;
  }

  // Per-table metadata latch. Guards table-level structure changes (index
  // enable/disable, rebuilds, bulk loads) against concurrent row traffic:
  // row-at-a-time writers and readers hold it *shared*; only structural
  // operations take it exclusive. Row-level coordination lives one level
  // down in index_latch() and the heap's internal extent latches.
  std::shared_mutex& latch() const { return *latch_; }

  // Per-table index latch: guards the PK tree, every secondary tree, and
  // constraint visibility (a row is constraint-checked and published while
  // this is held exclusive). FK probes from child tables take the parent's
  // index latch shared. Lock hierarchy (see DESIGN.md "Engine concurrency
  // model"): table latch -> index latch -> heap extent latch, and across
  // tables always child -> parent (descending table id), which is acyclic
  // because foreign keys only reference earlier tables.
  std::shared_mutex& index_latch() const { return *index_latch_; }

  // Per-table interested-transaction-list (ITL) admission gate, installed by
  // the engine constructor when ConcurrencyPolicy::itl_slots_per_table > 0
  // (nullptr = unlimited). Acquired at a transaction's *first* write to this
  // table and held to commit/abort; sits between the instance-wide
  // transaction gate and the engine rwlock in the lock order (lock_manager.h)
  // — a session blocked here holds no latch.
  SlotGate* itl_gate() const { return itl_gate_.get(); }
  void set_itl_gate(std::unique_ptr<SlotGate> gate) {
    itl_gate_ = std::move(gate);
  }

  uint32_t heap_cache_file_id = 0;
  uint32_t pk_cache_file_id = 0;
  // Engine table ids of this table's FK parents, aligned with
  // def().foreign_keys (resolved once by the engine constructor so the
  // per-row FK probe does no name lookups).
  std::vector<uint32_t> fk_parent_ids;

 private:
  uint32_t id_;
  TableDef def_;
  std::vector<int> pk_column_indices_;
  storage::ShardedHeap heap_;
  index::BPlusTree pk_tree_;
  std::vector<SecondaryIndex> secondaries_;
  // unique_ptrs keep Table movable during engine construction.
  std::unique_ptr<std::shared_mutex> latch_ =
      std::make_unique<std::shared_mutex>();
  std::unique_ptr<std::shared_mutex> index_latch_ =
      std::make_unique<std::shared_mutex>();
  std::unique_ptr<SlotGate> itl_gate_;
};

}  // namespace sky::db
