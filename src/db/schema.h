// Schema: table definitions, constraints, indexes, and the FK dependency
// order that drives the bulk loader's parent-before-child insert sequence.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "db/value.h"

namespace sky::db {

struct ColumnDef {
  std::string name;
  ColumnType type;
  bool nullable = true;
};

// Numeric range check ("stringent data checking ... by the database";
// section 4.3). NaN always violates.
struct CheckConstraint {
  std::string column;
  std::optional<double> min;
  std::optional<double> max;
};

// References the parent table's primary key (column-count and types must
// match).
struct ForeignKey {
  std::vector<std::string> columns;
  std::string parent_table;
};

// Declares a secondary index keyed by HTM trixel id: each row's (ra, dec)
// position — degrees, J2000 — is mapped to the id of the depth-`depth`
// Hierarchical Triangular Mesh trixel containing it (htm/htm.h), and the
// index stores that single int64 id. Because every trixel's descendants
// occupy one contiguous id range, a cone search becomes a handful of index
// range probes (htm::cone_cover). The spec's columns must be NOT NULL
// doubles; the index cannot be unique (many rows share a trixel).
struct HtmIndexSpec {
  std::string ra_column;
  std::string dec_column;
  int depth = 14;  // ~20 arcsec trixels; validated against htm::kMaxDepth
};

struct IndexDef {
  std::string name;
  std::vector<std::string> columns;
  bool unique = false;
  // When set, this is an HTM spatial index: `columns` is auto-filled to
  // {ra_column, dec_column} by Schema::add_table and keys are trixel ids
  // computed from those columns, not their raw values.
  std::optional<HtmIndexSpec> htm;
};

struct TableDef {
  std::string name;
  std::vector<ColumnDef> columns;
  std::vector<std::string> primary_key;
  std::vector<ForeignKey> foreign_keys;
  std::vector<IndexDef> indexes;  // secondary indexes
  std::vector<CheckConstraint> checks;

  // Index of a column by name, -1 if absent.
  int column_index(std::string_view column_name) const;

  // Average encoded row size estimate is derived at runtime; here we only
  // offer a convenience for declaring columns fluently.
  TableDef& col(std::string name_, ColumnType type_, bool nullable_ = true) {
    columns.push_back(ColumnDef{std::move(name_), type_, nullable_});
    return *this;
  }
};

// A validated collection of tables with a parent-first topological order.
class Schema {
 public:
  // Validates the definition against the tables already added: unique table
  // name, unique column names, PK columns exist and are NOT NULL-able
  // implicitly, FK parents already added (so declaration order is a valid
  // topological order), FK column types match the parent PK, index and check
  // columns exist.
  Status add_table(TableDef def);

  int table_count() const { return static_cast<int>(tables_.size()); }
  bool has_table(std::string_view name) const;
  // Id is the position in declaration (= topological) order.
  Result<uint32_t> table_id(std::string_view name) const;
  const TableDef& table(uint32_t id) const { return tables_[id]; }
  const std::vector<TableDef>& tables() const { return tables_; }

  // Table ids in parent-before-child order (declaration order, validated).
  std::vector<uint32_t> topological_order() const;

  // All (child, parent) id pairs.
  std::vector<std::pair<uint32_t, uint32_t>> fk_edges() const;

 private:
  std::vector<TableDef> tables_;
  std::map<std::string, uint32_t, std::less<>> by_name_;
};

}  // namespace sky::db
