#include "db/column_batch.h"

#include <cassert>
#include <cstring>

namespace sky::db {

namespace {
// Byte-level mirror of the row codec in row.cpp (kept in sync by the
// encode-parity tests in db_engine_test / bulk_loader_test).
enum class Kind : uint8_t {
  kNull = 0,
  kInt32 = 1,
  kInt64 = 2,
  kDouble = 3,
  kString = 4,
};

// Same big-endian layout as row.cpp's helpers, but written through a stack
// buffer in one append — encode_row_to is the single hottest function of
// the batch publish path and byte-at-a-time push_back dominates it.
void put_u32(std::string& out, uint32_t v) {
  const char bytes[4] = {
      static_cast<char>(v >> 24), static_cast<char>(v >> 16),
      static_cast<char>(v >> 8), static_cast<char>(v)};
  out.append(bytes, sizeof(bytes));
}

void put_u64(std::string& out, uint64_t v) {
  const char bytes[8] = {
      static_cast<char>(v >> 56), static_cast<char>(v >> 48),
      static_cast<char>(v >> 40), static_cast<char>(v >> 32),
      static_cast<char>(v >> 24), static_cast<char>(v >> 16),
      static_cast<char>(v >> 8),  static_cast<char>(v)};
  out.append(bytes, sizeof(bytes));
}
}  // namespace

ColumnBatch::ColumnBatch(std::vector<ColumnType> types) {
  columns_.resize(types.size());
  for (size_t c = 0; c < types.size(); ++c) columns_[c].type = types[c];
}

ColumnBatch::ColumnBatch(const TableDef& def) {
  columns_.resize(def.columns.size());
  for (size_t c = 0; c < def.columns.size(); ++c) {
    columns_[c].type = def.columns[c].type;
  }
}

bool ColumnBatch::aligned() const {
  for (const Column& col : columns_) {
    if (col.length != columns_[0].length) return false;
  }
  return true;
}

void ColumnBatch::push_null(size_t col) {
  Column& c = columns_[col];
  c.nulls.push_back(1);
  switch (c.type) {
    case ColumnType::kDouble:
      c.doubles.push_back(0.0);
      break;
    case ColumnType::kString:
      c.str_ends.push_back(static_cast<uint32_t>(c.arena.size()));
      break;
    default:
      c.ints.push_back(0);
  }
  ++c.length;
}

void ColumnBatch::push_i64(size_t col, int64_t v) {
  assert(integer_family(col));
  Column& c = columns_[col];
  c.nulls.push_back(0);
  c.ints.push_back(v);
  ++c.length;
}

void ColumnBatch::push_f64(size_t col, double v) {
  assert(columns_[col].type == ColumnType::kDouble);
  Column& c = columns_[col];
  c.nulls.push_back(0);
  c.doubles.push_back(v);
  ++c.length;
}

void ColumnBatch::push_str(size_t col, std::string_view v) {
  assert(columns_[col].type == ColumnType::kString);
  Column& c = columns_[col];
  c.nulls.push_back(0);
  c.arena.append(v);
  c.str_ends.push_back(static_cast<uint32_t>(c.arena.size()));
  ++c.length;
}

void ColumnBatch::set_i64(size_t col, size_t row, int64_t v) {
  assert(integer_family(col));
  Column& c = columns_[col];
  c.nulls[row] = 0;
  c.ints[row] = v;
}

void ColumnBatch::set_f64(size_t col, size_t row, double v) {
  assert(columns_[col].type == ColumnType::kDouble);
  Column& c = columns_[col];
  c.nulls[row] = 0;
  c.doubles[row] = v;
}

std::string_view ColumnBatch::str_at(size_t row, size_t col) const {
  const Column& c = columns_[col];
  const uint32_t start = row == 0 ? 0 : c.str_ends[row - 1];
  return std::string_view(c.arena).substr(start, c.str_ends[row] - start);
}

void ColumnBatch::remove_rows(const std::vector<uint32_t>& rows) {
  if (rows.empty()) return;
  assert(aligned());
  for (Column& c : columns_) {
    size_t write = 0;      // next surviving row's destination
    size_t next_drop = 0;  // cursor into `rows`
    size_t arena_write = 0;
    for (size_t r = 0; r < c.length; ++r) {
      const bool drop = next_drop < rows.size() && rows[next_drop] == r;
      if (drop) {
        ++next_drop;
        continue;
      }
      c.nulls[write] = c.nulls[r];
      switch (c.type) {
        case ColumnType::kDouble:
          c.doubles[write] = c.doubles[r];
          break;
        case ColumnType::kString: {
          const size_t start = r == 0 ? 0 : c.str_ends[r - 1];
          const size_t len = c.str_ends[r] - start;
          // Survivors only shift left, so the in-place move is safe.
          std::memmove(c.arena.data() + arena_write, c.arena.data() + start,
                       len);
          arena_write += len;
          c.str_ends[write] = static_cast<uint32_t>(arena_write);
          break;
        }
        default:
          c.ints[write] = c.ints[r];
      }
      ++write;
    }
    c.length = write;
    c.nulls.resize(write);
    switch (c.type) {
      case ColumnType::kDouble:
        c.doubles.resize(write);
        break;
      case ColumnType::kString:
        c.str_ends.resize(write);
        c.arena.resize(arena_write);
        break;
      default:
        c.ints.resize(write);
    }
  }
}

void ColumnBatch::append_from(const ColumnBatch& other) {
  assert(num_columns() == other.num_columns());
  assert(other.aligned());
  for (size_t i = 0; i < columns_.size(); ++i) {
    Column& dst = columns_[i];
    const Column& src = other.columns_[i];
    assert(dst.type == src.type);
    dst.nulls.insert(dst.nulls.end(), src.nulls.begin(), src.nulls.end());
    switch (dst.type) {
      case ColumnType::kDouble:
        dst.doubles.insert(dst.doubles.end(), src.doubles.begin(),
                           src.doubles.end());
        break;
      case ColumnType::kString: {
        const uint32_t base = static_cast<uint32_t>(dst.arena.size());
        dst.arena.append(src.arena);
        dst.str_ends.reserve(dst.str_ends.size() + src.str_ends.size());
        for (const uint32_t end : src.str_ends) {
          dst.str_ends.push_back(base + end);
        }
        break;
      }
      default:
        dst.ints.insert(dst.ints.end(), src.ints.begin(), src.ints.end());
    }
    dst.length += src.length;
  }
}

void ColumnBatch::clear() {
  for (Column& c : columns_) {
    c.length = 0;
    c.nulls.clear();
    c.ints.clear();
    c.doubles.clear();
    c.str_ends.clear();
    c.arena.clear();
  }
}

void ColumnBatch::reserve(size_t rows, size_t string_bytes_hint) {
  for (Column& c : columns_) {
    c.nulls.reserve(rows);
    switch (c.type) {
      case ColumnType::kDouble:
        c.doubles.reserve(rows);
        break;
      case ColumnType::kString:
        c.str_ends.reserve(rows);
        c.arena.reserve(string_bytes_hint);
        break;
      default:
        c.ints.reserve(rows);
    }
  }
}

Value ColumnBatch::value(size_t row, size_t col) const {
  const Column& c = columns_[col];
  if (c.nulls[row] != 0) return Value::null();
  switch (c.type) {
    case ColumnType::kInt32:
      return Value::i32(static_cast<int32_t>(c.ints[row]));
    case ColumnType::kInt64:
    case ColumnType::kTimestamp:
      return Value::i64(c.ints[row]);
    case ColumnType::kDouble:
      return Value::f64(c.doubles[row]);
    case ColumnType::kString:
      return Value::str(std::string(str_at(row, col)));
  }
  return Value::null();
}

Row ColumnBatch::row(size_t r) const {
  Row out;
  out.reserve(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) out.push_back(value(r, c));
  return out;
}

void ColumnBatch::encode_row_to(size_t r, std::string& out) const {
  // One reservation up front: header + worst-case 9 fixed bytes per column
  // + this row's string payload.
  size_t bytes = 4 + columns_.size() * 9;
  for (const Column& c : columns_) {
    if (c.type == ColumnType::kString && c.nulls[r] == 0) {
      bytes += c.str_ends[r] - (r == 0 ? 0 : c.str_ends[r - 1]);
    }
  }
  out.reserve(out.size() + bytes);
  put_u32(out, static_cast<uint32_t>(columns_.size()));
  for (size_t ci = 0; ci < columns_.size(); ++ci) {
    const Column& c = columns_[ci];
    if (c.nulls[r] != 0) {
      out.push_back(static_cast<char>(Kind::kNull));
      continue;
    }
    switch (c.type) {
      case ColumnType::kInt32:
        out.push_back(static_cast<char>(Kind::kInt32));
        put_u32(out, static_cast<uint32_t>(
                         static_cast<int32_t>(c.ints[r])));
        break;
      case ColumnType::kInt64:
      case ColumnType::kTimestamp:
        out.push_back(static_cast<char>(Kind::kInt64));
        put_u64(out, static_cast<uint64_t>(c.ints[r]));
        break;
      case ColumnType::kDouble: {
        out.push_back(static_cast<char>(Kind::kDouble));
        uint64_t bits;
        static_assert(sizeof(bits) == sizeof(double));
        std::memcpy(&bits, &c.doubles[r], sizeof(bits));
        put_u64(out, bits);
        break;
      }
      case ColumnType::kString: {
        const std::string_view s = str_at(r, ci);
        out.push_back(static_cast<char>(Kind::kString));
        put_u32(out, static_cast<uint32_t>(s.size()));
        out.append(s);
        break;
      }
    }
  }
}

void ColumnBatch::append_cell_to_key(index::KeyEncoder& encoder, size_t r,
                                     size_t col) const {
  const Column& c = columns_[col];
  if (c.nulls[r] != 0) {
    encoder.append_null();
    return;
  }
  switch (c.type) {
    case ColumnType::kInt32:
      encoder.append_int32(static_cast<int32_t>(c.ints[r]));
      return;
    case ColumnType::kInt64:
    case ColumnType::kTimestamp:
      encoder.append_int64(c.ints[r]);
      return;
    case ColumnType::kDouble:
      encoder.append_double(c.doubles[r]);
      return;
    case ColumnType::kString:
      encoder.append_string(str_at(r, col));
      return;
  }
}

size_t ColumnBatch::data_bytes() const {
  size_t bytes = 0;
  for (const Column& c : columns_) {
    bytes += c.nulls.size() + c.ints.size() * sizeof(int64_t) +
             c.doubles.size() * sizeof(double) +
             c.str_ends.size() * sizeof(uint32_t) + c.arena.size();
  }
  return bytes;
}

size_t ColumnBatch::memory_bytes() const {
  size_t bytes = sizeof(ColumnBatch);
  for (const Column& c : columns_) {
    bytes += sizeof(Column) + c.nulls.capacity() +
             c.ints.capacity() * sizeof(int64_t) +
             c.doubles.capacity() * sizeof(double) +
             c.str_ends.capacity() * sizeof(uint32_t) + c.arena.capacity();
  }
  return bytes;
}

}  // namespace sky::db
