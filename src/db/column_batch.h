// Arena-backed columnar row buffer: the unit of work of the batch ingest
// hot path (DESIGN.md "Columnar ingest hot path").
//
// A ColumnBatch holds one table's parsed rows column-major: per column a
// null byte-vector plus typed storage — one int64 vector for the integer
// family (kInt32/kInt64/kTimestamp), a double vector for kDouble, and a
// shared character arena with offsets for kString. The batch parser
// (catalog::CatalogParser::parse_block) appends cells column-at-a-time with
// no per-row Row/Value materialization; the engine's batch insert
// (Engine::insert_column_batch) reads cells straight out of the vectors,
// encodes heap bytes and index keys without intermediate Values, and only
// falls back to row() materialization on the slow path.
//
// Encoding parity contract: encode_row_to(i, out) must produce exactly the
// bytes encode_row(row(i)) would — the differential tests and WAL recovery
// depend on the two paths being byte-identical. This holds because every
// stored cell's runtime kind is determined by its declared column type
// (the same invariant Engine::validate_row enforces on the row path).
//
// Not thread-safe; a batch belongs to one loader thread at a time.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "db/row.h"
#include "db/schema.h"
#include "db/value.h"
#include "index/key_codec.h"

namespace sky::db {

class ColumnBatch {
 public:
  ColumnBatch() = default;
  explicit ColumnBatch(std::vector<ColumnType> types);
  // Column types taken from the table definition, in column order.
  explicit ColumnBatch(const TableDef& def);

  size_t num_columns() const { return columns_.size(); }
  ColumnType column_type(size_t col) const { return columns_[col].type; }
  // Row count = length of the first column. The writer appends
  // column-at-a-time, so columns disagree transiently mid-block; every
  // public reader requires the aligned state (aligned() in debug builds).
  size_t size() const { return columns_.empty() ? 0 : columns_[0].length; }
  bool empty() const { return size() == 0; }
  // Do all columns currently hold the same number of cells?
  bool aligned() const;

  // ------------------------------------------------------------- writers
  // Append one cell to a column. The integer family (kInt32 / kInt64 /
  // kTimestamp) shares push_i64; int32 range is the caller's contract
  // (catalog parsing rejects out-of-range before storing).
  void push_null(size_t col);
  void push_i64(size_t col, int64_t v);
  void push_f64(size_t col, double v);
  void push_str(size_t col, std::string_view v);
  // In-place update of an existing numeric cell (htmid fill-in, magnitude
  // rounding); clears the null flag.
  void set_i64(size_t col, size_t row, int64_t v);
  void set_f64(size_t col, size_t row, double v);

  // Drop the given rows (ascending, unique indices) with a stable compaction
  // — the parser strips rows that failed conversion after the columnar pass.
  void remove_rows(const std::vector<uint32_t>& rows);

  // Append every row of `other` (same column types) — the array-set merges
  // parser blocks into its per-table buffer with this.
  void append_from(const ColumnBatch& other);

  // Drop all rows, keep column layout and buffer capacity (arena reuse
  // across parser blocks).
  void clear();
  void reserve(size_t rows, size_t string_bytes_hint = 0);

  // ------------------------------------------------------------- readers
  bool is_null(size_t row, size_t col) const {
    return columns_[col].nulls[row] != 0;
  }
  int64_t i64_at(size_t row, size_t col) const {
    return columns_[col].ints[row];
  }
  double f64_at(size_t row, size_t col) const {
    return columns_[col].doubles[row];
  }
  std::string_view str_at(size_t row, size_t col) const;

  // Cell as a Value (allocates only for strings).
  Value value(size_t row, size_t col) const;
  // Materialize one row (the differential oracle / slow-path bridge).
  Row row(size_t r) const;
  // Serialize row r exactly as encode_row(row(r)) would (parity contract
  // above); appends to `out`.
  void encode_row_to(size_t r, std::string& out) const;
  // Append cell (r, col) to an index key exactly as
  // db::append_value_to_key(encoder, value(r, col), column_type(col)) —
  // but with no Value materialization (strings go straight from the arena).
  void append_cell_to_key(index::KeyEncoder& encoder, size_t r,
                          size_t col) const;

  // Buffer footprint (capacities, not logical sizes) for the array-set
  // memory high-water accounting.
  size_t memory_bytes() const;
  // Bytes of buffered data actually written (logical sizes, not
  // capacities) — what the client paging model should see: reserved but
  // untouched capacity does not page.
  size_t data_bytes() const;

 private:
  struct Column {
    ColumnType type = ColumnType::kInt64;
    size_t length = 0;
    std::vector<uint8_t> nulls;  // 1 = NULL
    std::vector<int64_t> ints;     // kInt32 / kInt64 / kTimestamp
    std::vector<double> doubles;   // kDouble
    std::vector<uint32_t> str_ends;  // kString: end offset of row i in arena
    std::string arena;               // kString payload bytes, concatenated
  };

  bool integer_family(size_t col) const {
    const ColumnType t = columns_[col].type;
    return t == ColumnType::kInt32 || t == ColumnType::kInt64 ||
           t == ColumnType::kTimestamp;
  }

  std::vector<Column> columns_;
};

}  // namespace sky::db
