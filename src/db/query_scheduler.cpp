#include "db/query_scheduler.h"

#include <bit>
#include <cmath>
#include <utility>

namespace sky::db {

// ------------------------------------------------------- LatencyHistogram

void LatencyHistogram::record(Nanos latency_ns) {
  const auto magnitude =
      latency_ns <= 0 ? 0ULL : static_cast<uint64_t>(latency_ns);
  const auto idx = static_cast<size_t>(std::bit_width(magnitude));
  buckets_[idx < buckets_.size() ? idx : buckets_.size() - 1].fetch_add(
      1, std::memory_order_relaxed);
  total_.fetch_add(1, std::memory_order_relaxed);
}

Nanos LatencyHistogram::percentile(double p) const {
  const int64_t total = total_.load(std::memory_order_relaxed);
  if (total <= 0) return 0;
  auto target = static_cast<int64_t>(std::ceil(p * static_cast<double>(total)));
  if (target < 1) target = 1;
  int64_t cumulative = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    cumulative += buckets_[i].load(std::memory_order_relaxed);
    if (cumulative >= target) {
      // Upper bound of bucket i: samples with bit_width == i are < 2^i.
      return Nanos{1} << (i < 62 ? i : 62);
    }
  }
  return Nanos{1} << 62;
}

// -------------------------------------------------------------- Admission

Admission::Admission(Admission&& other) noexcept
    : scheduler_(other.scheduler_),
      lane_(other.lane_),
      start_(other.start_),
      queue_wait_(other.queue_wait_),
      snapshot_(std::move(other.snapshot_)) {
  other.scheduler_ = nullptr;
}

Admission& Admission::operator=(Admission&& other) noexcept {
  if (this != &other) {
    if (scheduler_ != nullptr) scheduler_->release(*this);
    scheduler_ = other.scheduler_;
    lane_ = other.lane_;
    start_ = other.start_;
    queue_wait_ = other.queue_wait_;
    snapshot_ = std::move(other.snapshot_);
    other.scheduler_ = nullptr;
  }
  return *this;
}

Admission::~Admission() {
  if (scheduler_ != nullptr) scheduler_->release(*this);
}

ReadView Admission::view() const {
  if (scheduler_ == nullptr) return ReadView();
  if (snapshot_.valid()) return scheduler_->engine_.view_at(snapshot_);
  return scheduler_->engine_.live_view();
}

// --------------------------------------------------------- QueryScheduler

QueryScheduler::QueryScheduler(Engine& engine, core::QueryPolicy policy)
    : engine_(engine),
      policy_(policy.normalized()),
      interactive_gate_(policy_.interactive_slots),
      batch_gate_(policy_.batch_slots) {
  // Fold this scheduler's lane telemetry into Engine::stats() — the unified
  // snapshot the control plane reads.
  engine_.set_query_stats_source([this] { return stats(); });
}

QueryScheduler::~QueryScheduler() {
  // Detach before the gates are destroyed; the engine holds its hook mutex
  // across invocation, so after this returns no stats() call is in flight.
  engine_.set_query_stats_source({});
}

Admission QueryScheduler::admit(QueryLane lane, OpCosts* costs) {
  const auto arrival = std::chrono::steady_clock::now();
  if (lane == QueryLane::kInteractive) {
    {
      // Count in before the gate: a queued interactive query already holds
      // back batch admissions (the yield covers queued work, not just
      // in-flight work).
      const std::scoped_lock lock(yield_mu_);
      ++interactive_in_flight_;
    }
    interactive_waiting_.fetch_add(1, std::memory_order_relaxed);
    interactive_gate_.acquire();
    interactive_waiting_.fetch_sub(1, std::memory_order_relaxed);
  } else {
    batch_waiting_.fetch_add(1, std::memory_order_relaxed);
    if (policy_.batch_yields_to_interactive) {
      std::unique_lock<std::mutex> lock(yield_mu_);
      if (interactive_in_flight_ > 0) {
        batch_yields_.fetch_add(1, std::memory_order_relaxed);
        yield_cv_.wait(lock, [&] { return interactive_in_flight_ == 0; });
      }
    }
    batch_gate_.acquire();
    batch_waiting_.fetch_sub(1, std::memory_order_relaxed);
  }
  const auto admitted = std::chrono::steady_clock::now();

  Admission admission;
  admission.scheduler_ = this;
  admission.lane_ = lane;
  admission.start_ = admitted;
  admission.queue_wait_ =
      std::chrono::duration_cast<std::chrono::nanoseconds>(admitted - arrival)
          .count();
  if (policy_.use_snapshots) admission.snapshot_ = engine_.pin_snapshot();
  if (costs != nullptr) costs->query_lane_wait_ns += admission.queue_wait_;
  return admission;
}

void QueryScheduler::release(Admission& admission) {
  const Nanos latency = std::chrono::duration_cast<std::chrono::nanoseconds>(
                            std::chrono::steady_clock::now() - admission.start_)
                            .count();
  admission.snapshot_ = Snapshot();  // unpin before freeing the slot
  if (admission.lane_ == QueryLane::kInteractive) {
    interactive_gate_.release();
    {
      const std::scoped_lock lock(yield_mu_);
      if (--interactive_in_flight_ == 0) yield_cv_.notify_all();
    }
    interactive_completed_.fetch_add(1, std::memory_order_relaxed);
    interactive_latency_.record(latency);
  } else {
    batch_gate_.release();
    batch_completed_.fetch_add(1, std::memory_order_relaxed);
    batch_latency_.record(latency);
  }
  admission.scheduler_ = nullptr;
}

QueryStats QueryScheduler::stats() const {
  QueryStats stats;
  stats.interactive.gate = interactive_gate_.stats();
  stats.interactive.completed =
      interactive_completed_.load(std::memory_order_relaxed);
  stats.interactive.queue_depth =
      interactive_waiting_.load(std::memory_order_relaxed);
  stats.interactive.p50_latency = interactive_latency_.percentile(0.50);
  stats.interactive.p99_latency = interactive_latency_.percentile(0.99);
  stats.batch.gate = batch_gate_.stats();
  stats.batch.completed = batch_completed_.load(std::memory_order_relaxed);
  stats.batch.queue_depth = batch_waiting_.load(std::memory_order_relaxed);
  stats.batch.p50_latency = batch_latency_.percentile(0.50);
  stats.batch.p99_latency = batch_latency_.percentile(0.99);
  stats.batch_yields = batch_yields_.load(std::memory_order_relaxed);
  stats.read_lsn = engine_.snapshot_published_lsn();
  const SnapshotStats snap = engine_.snapshot_stats();
  stats.snapshot_pins = snap.active_pins;
  stats.snapshot_pin_age = snap.oldest_pin_age;
  return stats;
}

}  // namespace sky::db
