#include "db/row.h"

#include <cstring>

namespace sky::db {

namespace {

enum class Kind : uint8_t {
  kNull = 0,
  kInt32 = 1,
  kInt64 = 2,
  kDouble = 3,
  kString = 4,
};

void put_u32(std::string& out, uint32_t v) {
  for (int shift = 24; shift >= 0; shift -= 8) {
    out.push_back(static_cast<char>((v >> shift) & 0xFF));
  }
}

void put_u64(std::string& out, uint64_t v) {
  for (int shift = 56; shift >= 0; shift -= 8) {
    out.push_back(static_cast<char>((v >> shift) & 0xFF));
  }
}

Result<uint64_t> get_fixed(std::string_view data, size_t& pos, int bytes) {
  if (pos + static_cast<size_t>(bytes) > data.size()) {
    return Status(ErrorCode::kParseError, "row decode: truncated");
  }
  uint64_t v = 0;
  for (int i = 0; i < bytes; ++i) {
    v = (v << 8) | static_cast<unsigned char>(data[pos++]);
  }
  return v;
}

}  // namespace

std::string encode_row(const Row& row) {
  std::string out;
  out.reserve(row.size() * 9 + 4);
  put_u32(out, static_cast<uint32_t>(row.size()));
  for (const Value& value : row) {
    if (value.is_null()) {
      out.push_back(static_cast<char>(Kind::kNull));
    } else if (value.is_i32()) {
      out.push_back(static_cast<char>(Kind::kInt32));
      put_u32(out, static_cast<uint32_t>(value.as_i32()));
    } else if (value.is_i64()) {
      out.push_back(static_cast<char>(Kind::kInt64));
      put_u64(out, static_cast<uint64_t>(value.as_i64()));
    } else if (value.is_f64()) {
      out.push_back(static_cast<char>(Kind::kDouble));
      uint64_t bits;
      static_assert(sizeof(bits) == sizeof(double));
      const double d = value.as_f64();
      std::memcpy(&bits, &d, sizeof(bits));
      put_u64(out, bits);
    } else {
      const std::string& s = value.as_str();
      out.push_back(static_cast<char>(Kind::kString));
      put_u32(out, static_cast<uint32_t>(s.size()));
      out.append(s);
    }
  }
  return out;
}

Result<Row> decode_row(std::string_view bytes) {
  size_t pos = 0;
  SKY_ASSIGN_OR_RETURN(const uint64_t count, get_fixed(bytes, pos, 4));
  Row row;
  row.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    if (pos >= bytes.size()) {
      return Status(ErrorCode::kParseError, "row decode: truncated kind");
    }
    const auto kind = static_cast<Kind>(bytes[pos++]);
    switch (kind) {
      case Kind::kNull:
        row.push_back(Value::null());
        break;
      case Kind::kInt32: {
        SKY_ASSIGN_OR_RETURN(const uint64_t v, get_fixed(bytes, pos, 4));
        row.push_back(Value::i32(static_cast<int32_t>(
            static_cast<uint32_t>(v))));
        break;
      }
      case Kind::kInt64: {
        SKY_ASSIGN_OR_RETURN(const uint64_t v, get_fixed(bytes, pos, 8));
        row.push_back(Value::i64(static_cast<int64_t>(v)));
        break;
      }
      case Kind::kDouble: {
        SKY_ASSIGN_OR_RETURN(const uint64_t bits, get_fixed(bytes, pos, 8));
        double d;
        std::memcpy(&d, &bits, sizeof(d));
        row.push_back(Value::f64(d));
        break;
      }
      case Kind::kString: {
        SKY_ASSIGN_OR_RETURN(const uint64_t len, get_fixed(bytes, pos, 4));
        if (pos + len > bytes.size()) {
          return Status(ErrorCode::kParseError, "row decode: truncated string");
        }
        row.push_back(Value::str(std::string(bytes.substr(pos, len))));
        pos += len;
        break;
      }
      default:
        return Status(ErrorCode::kParseError, "row decode: bad kind byte");
    }
  }
  if (pos != bytes.size()) {
    return Status(ErrorCode::kParseError, "row decode: trailing bytes");
  }
  return row;
}

size_t row_memory_bytes(const Row& row) {
  size_t bytes = sizeof(Row) + row.size() * sizeof(Value);
  for (const Value& value : row) {
    if (value.is_str()) bytes += value.as_str().capacity();
  }
  return bytes;
}

std::string row_to_display(const Row& row) {
  std::string out = "(";
  for (size_t i = 0; i < row.size(); ++i) {
    if (i > 0) out += ", ";
    out += row[i].to_display();
  }
  out += ")";
  return out;
}

}  // namespace sky::db
