// Two-lane query admission over snapshot reads (the CasJobs split).
//
// The survey repository's query mix is bimodal: short interactive lookups
// (cone searches, PK probes from the web front end) and long batch scans
// (full-table sweeps, cross-matches). The paper's production setting routes
// them through separate queues so batch work cannot bury interactive
// latency while multi-terabyte loads run. This module is that split for the
// embedded engine: a QueryScheduler with an interactive lane and a batch
// lane, each a FairSlotGate (lock_manager.h) sized by core::QueryPolicy,
// with the batch lane *yielding* to interactive arrivals — a batch query
// admits only when no interactive query is queued or in flight (when
// QueryPolicy::batch_yields_to_interactive is set).
//
// Admission returns a move-only RAII grant that (by default) carries a
// pinned Snapshot (db/snapshot.h), so an admitted query reads a consistent
// committed prefix latch-free; dropping the grant releases the lane slot,
// unpins, and records the query's latency into a lock-free log2 histogram
// (p50/p99 per lane in QueryStats). Lane queue wait is attributed to
// OpCosts::query_lane_wait_ns — deliberately not lock_wait_ns, because lane
// queueing is scheduling policy, not latch contention.
//
// Lock order: lane gates sit with the other admission gates, *before* the
// engine rwlock — an admitted query holds no engine lock while queued, and
// snapshot reads take no engine lock at all.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "common/units.h"
#include "core/query_policy.h"
#include "core/query_stats.h"
#include "db/engine.h"
#include "db/lock_manager.h"
#include "db/snapshot.h"

namespace sky::db {

enum class QueryLane { kInteractive, kBatch };

// Lock-free latency sketch: 64 power-of-two buckets (bucket i holds samples
// with bit_width(ns) == i). percentile() returns the upper bound of the
// bucket containing the requested rank — within 2x of the true value, which
// is plenty for the p50/p99 contrast the scheduler reports.
class LatencyHistogram {
 public:
  void record(Nanos latency_ns);
  // p in (0, 1]; returns 0 when no samples were recorded.
  Nanos percentile(double p) const;
  int64_t count() const { return total_.load(std::memory_order_relaxed); }

 private:
  std::array<std::atomic<int64_t>, 64> buckets_{};
  std::atomic<int64_t> total_{0};
};

// The stats schema is shared with the sim lanes (core/query_stats.h); db
// keeps its historical spellings as aliases.
using QueryLaneStats = core::QueryLaneStats;
using QueryStats = core::QueryStats;

class QueryScheduler;

// One admitted query: lane slot + (optionally) pinned snapshot. Move-only
// RAII; destruction releases the slot, unpins, and records latency.
class Admission {
 public:
  Admission() = default;
  Admission(Admission&& other) noexcept;
  Admission& operator=(Admission&& other) noexcept;
  Admission(const Admission&) = delete;
  Admission& operator=(const Admission&) = delete;
  ~Admission();

  bool valid() const { return scheduler_ != nullptr; }
  QueryLane lane() const { return lane_; }
  // Pinned snapshot; valid() && snapshot().valid() iff the policy has
  // use_snapshots on. Most callers want view() instead.
  const Snapshot& snapshot() const { return snapshot_; }
  // The read view this admission should query through: the pinned snapshot
  // when the policy pinned one, the live engine state otherwise — so query
  // code is written once against ReadView and the snapshot/live split stays
  // a QueryPolicy decision. Empty ReadView on an invalid admission.
  ReadView view() const;
  Nanos queue_wait() const { return queue_wait_; }

 private:
  friend class QueryScheduler;
  QueryScheduler* scheduler_ = nullptr;
  QueryLane lane_ = QueryLane::kInteractive;
  std::chrono::steady_clock::time_point start_{};
  Nanos queue_wait_ = 0;
  Snapshot snapshot_;
};

// Two FairSlotGate lanes over one engine. Thread-safe; one scheduler is
// shared by every query client of an engine. Must not outlive the engine.
class QueryScheduler {
 public:
  // Registers itself as the engine's query-stats source (Engine::stats());
  // the destructor detaches. One scheduler per engine at a time.
  explicit QueryScheduler(Engine& engine, core::QueryPolicy policy = {});
  ~QueryScheduler();

  // Block until the lane admits, then pin a snapshot (policy permitting).
  // Batch admissions yield: they wait until no interactive query is queued
  // or in flight before taking a batch slot. Queue wait (yield + gate) is
  // added to costs->query_lane_wait_ns when costs is non-null.
  Admission admit(QueryLane lane, OpCosts* costs = nullptr);

  const core::QueryPolicy& policy() const { return policy_; }
  QueryStats stats() const;

 private:
  friend class Admission;
  void release(Admission& admission);

  Engine& engine_;
  const core::QueryPolicy policy_;
  FairSlotGate interactive_gate_;
  FairSlotGate batch_gate_;

  // Batch-yield handshake: interactive admissions count themselves in
  // *before* taking their gate, so batch arrivals also yield to interactive
  // work that is still queued.
  std::mutex yield_mu_;
  std::condition_variable yield_cv_;
  int64_t interactive_in_flight_ = 0;

  std::atomic<int64_t> interactive_waiting_{0};
  std::atomic<int64_t> batch_waiting_{0};
  std::atomic<int64_t> interactive_completed_{0};
  std::atomic<int64_t> batch_completed_{0};
  std::atomic<int64_t> batch_yields_{0};
  LatencyHistogram interactive_latency_;
  LatencyHistogram batch_latency_;
};

}  // namespace sky::db
