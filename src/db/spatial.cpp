#include "db/spatial.h"

#include <algorithm>
#include <cmath>

#include "db/engine.h"
#include "htm/htm.h"
#include "index/key_codec.h"

namespace sky::db::spatial {

namespace {

constexpr double kDegToRad = 3.14159265358979323846 / 180.0;
constexpr double kRadToDeg = 180.0 / 3.14159265358979323846;

double normalize_ra(double ra_deg) {
  double ra = std::fmod(ra_deg, 360.0);
  if (ra < 0) ra += 360.0;
  return ra;
}

// One catalog-B entry inside a zone bucket, ra-sorted.
struct BucketEntry {
  double ra = 0;
  uint32_t index = 0;
};

// The ra half-width that is guaranteed to contain every match for a probe
// against B rows whose declination lies in [zone_lo, zone_hi] (Gray et al.'s
// alpha function): asin(sin r / cos dec) at the zone edge nearest a pole.
// Returns >= 180 (scan the whole zone) near the poles, where the window
// degenerates; the exact-distance post-filter keeps over-wide windows
// correct, just slower.
double zone_ra_half_width_deg(double radius_deg, double zone_lo_deg,
                              double zone_hi_deg) {
  const double max_abs_dec =
      std::max(std::fabs(zone_lo_deg), std::fabs(zone_hi_deg));
  if (max_abs_dec >= 89.9) return 360.0;
  const double cos_dec = std::cos(max_abs_dec * kDegToRad);
  const double sin_r = std::sin(radius_deg * kDegToRad);
  if (sin_r >= cos_dec) return 360.0;
  // Tiny relative pad absorbs the rounding between this bound and the
  // exact distance test.
  return std::asin(sin_r / cos_dec) * kRadToDeg * (1.0 + 1e-9) + 1e-12;
}

// Visit the bucket entries with ra in [lo, hi] (degrees, possibly out of
// [0, 360) — wrapped segments are visited too). Entries are ra-sorted.
template <typename Fn>
void visit_ra_window(const std::vector<BucketEntry>& bucket, double lo,
                     double hi, Fn&& fn) {
  const auto visit_segment = [&](double seg_lo, double seg_hi) {
    const auto first = std::lower_bound(
        bucket.begin(), bucket.end(), seg_lo,
        [](const BucketEntry& e, double v) { return e.ra < v; });
    for (auto it = first; it != bucket.end() && it->ra <= seg_hi; ++it) {
      fn(*it);
    }
  };
  if (hi - lo >= 360.0) {
    visit_segment(0.0, 360.0);
  } else if (lo < 0.0) {
    visit_segment(lo + 360.0, 360.0);
    visit_segment(0.0, hi);
  } else if (hi > 360.0) {
    visit_segment(lo, 360.0);
    visit_segment(0.0, hi - 360.0);
  } else {
    visit_segment(lo, hi);
  }
}

}  // namespace

Result<SpatialTableSpec> resolve_spatial(const Engine& engine,
                                         uint32_t table_id) {
  if (table_id >= static_cast<uint32_t>(engine.schema().table_count())) {
    return Status(ErrorCode::kNotFound, "bad table id");
  }
  const TableDef& def = engine.schema().table(table_id);
  for (const IndexDef& index : def.indexes) {
    if (!index.htm.has_value()) continue;
    SpatialTableSpec spec;
    spec.table_id = table_id;
    spec.htm_index = index.name;
    spec.ra_column = def.column_index(index.htm->ra_column);
    spec.dec_column = def.column_index(index.htm->dec_column);
    spec.htm_depth = index.htm->depth;
    return spec;
  }
  return Status(ErrorCode::kFailedPrecondition,
                "table " + def.name + " has no HTM index");
}

Result<std::vector<Row>> cone_search(const ReadView& view,
                                     const SpatialTableSpec& spec,
                                     double ra_deg, double dec_deg,
                                     double radius_deg, OpCosts* costs) {
  const htm::Vec3 center = htm::radec_to_vector(ra_deg, dec_deg);
  const std::vector<htm::IdRange> cover =
      htm::cone_cover(center, radius_deg, spec.htm_depth);
  std::vector<Row> out;
  for (const htm::IdRange& range : cover) {
    index::KeyEncoder lo;
    index::KeyEncoder hi;
    lo.append_int64(static_cast<int64_t>(range.first));
    hi.append_int64(static_cast<int64_t>(range.last));
    SKY_ASSIGN_OR_RETURN(
        std::vector<Row> rows,
        view.index_encoded_range(spec.table_id, spec.htm_index, lo.take(),
                                 hi.take()));
    for (Row& row : rows) {
      const double row_ra =
          row[static_cast<size_t>(spec.ra_column)].as_f64();
      const double row_dec =
          row[static_cast<size_t>(spec.dec_column)].as_f64();
      if (costs != nullptr) {
        ++costs->zone_scan_rows;
        ++costs->xmatch_candidates;
      }
      // The cover is conservative: a returned trixel may poke outside the
      // cap, so every row is confirmed by exact distance.
      if (htm::angular_distance_deg(center,
                                    htm::radec_to_vector(row_ra, row_dec)) <=
          radius_deg) {
        if (costs != nullptr) ++costs->xmatch_pairs;
        out.push_back(std::move(row));
      }
    }
  }
  return out;
}

XmatchResult xmatch_arrays(const std::vector<double>& a_ra,
                           const std::vector<double>& a_dec,
                           const std::vector<double>& b_ra,
                           const std::vector<double>& b_dec,
                           const XmatchOptions& options) {
  XmatchResult result;
  XmatchReport& report = result.report;
  const core::SpatialPolicy policy = options.policy.normalized();
  const double radius = options.radius_deg;
  const double height = policy.zone_height_deg;
  const size_t zones_total =
      static_cast<size_t>(std::max(1.0, std::ceil(180.0 / height)));
  report.radius_deg = radius;
  report.zone_height_deg = height;
  report.workers = policy.xmatch_workers;
  report.zones_total = zones_total;

  const auto zone_of = [&](double dec) {
    const double z = std::floor((dec + 90.0) / height);
    if (z < 0) return static_cast<size_t>(0);
    if (z >= static_cast<double>(zones_total)) return zones_total - 1;
    return static_cast<size_t>(z);
  };

  // Bucket catalog B by zone and ra-sort each bucket; precompute every B
  // unit vector once (each may be distance-tested by many probes).
  std::vector<std::vector<BucketEntry>> b_zones(zones_total);
  std::vector<htm::Vec3> b_vec(b_ra.size());
  for (uint32_t i = 0; i < b_ra.size(); ++i) {
    const double ra = normalize_ra(b_ra[i]);
    b_zones[zone_of(b_dec[i])].push_back(BucketEntry{ra, i});
    b_vec[i] = htm::radec_to_vector(ra, b_dec[i]);
  }
  for (std::vector<BucketEntry>& bucket : b_zones) {
    std::sort(bucket.begin(), bucket.end(),
              [](const BucketEntry& x, const BucketEntry& y) {
                return x.ra < y.ra || (x.ra == y.ra && x.index < y.index);
              });
  }

  // Bucket catalog A by zone (input order kept within each zone). Each
  // occupied A zone is one independent task.
  std::vector<std::vector<uint32_t>> a_zones(zones_total);
  for (uint32_t i = 0; i < a_ra.size(); ++i) {
    a_zones[zone_of(a_dec[i])].push_back(i);
  }
  std::vector<size_t> occupied;
  for (size_t z = 0; z < zones_total; ++z) {
    if (!a_zones[z].empty()) occupied.push_back(z);
  }
  report.zones_occupied = occupied.size();

  // Every task writes only its own slots; the fan-out needs no locking.
  std::vector<std::vector<MatchPair>> task_pairs(occupied.size());
  std::vector<ZoneCost> task_costs(occupied.size());
  const std::function<void(int, size_t)> body = [&](int, size_t task) {
    const size_t z = occupied[task];
    ZoneCost& cost = task_costs[task];
    cost.zone = static_cast<int>(z);
    cost.a_rows = static_cast<int64_t>(a_zones[z].size());
    std::vector<MatchPair>& out = task_pairs[task];
    for (const uint32_t ai : a_zones[z]) {
      const double ra = normalize_ra(a_ra[ai]);
      const double dec = a_dec[ai];
      const htm::Vec3 probe = htm::radec_to_vector(ra, dec);
      const size_t z_lo = zone_of(dec - radius);
      const size_t z_hi = zone_of(dec + radius);
      for (size_t z2 = z_lo; z2 <= z_hi; ++z2) {
        const std::vector<BucketEntry>& bucket = b_zones[z2];
        if (bucket.empty()) continue;
        const double zone_lo_deg = -90.0 + static_cast<double>(z2) * height;
        const double half_width =
            zone_ra_half_width_deg(radius, zone_lo_deg, zone_lo_deg + height);
        visit_ra_window(
            bucket, ra - half_width, ra + half_width,
            [&](const BucketEntry& entry) {
              ++cost.scanned;
              if (std::fabs(b_dec[entry.index] - dec) > radius) return;
              ++cost.candidates;
              const double sep =
                  htm::angular_distance_deg(probe, b_vec[entry.index]);
              if (sep <= radius) {
                ++cost.pairs;
                out.push_back(MatchPair{ai, entry.index, sep});
              }
            });
      }
    }
  };
  if (options.fan_out) {
    options.fan_out(policy.xmatch_workers, occupied.size(), body);
  } else {
    for (size_t task = 0; task < occupied.size(); ++task) body(0, task);
  }

  // Concatenate in zone order — the output is identical for any worker
  // count or schedule.
  size_t total = 0;
  for (const std::vector<MatchPair>& pairs : task_pairs) {
    total += pairs.size();
  }
  result.pairs.reserve(total);
  for (std::vector<MatchPair>& pairs : task_pairs) {
    result.pairs.insert(result.pairs.end(), pairs.begin(), pairs.end());
  }
  report.per_zone = std::move(task_costs);
  for (const ZoneCost& cost : report.per_zone) {
    report.costs.zone_scan_rows += cost.scanned;
    report.costs.xmatch_candidates += cost.candidates;
    report.costs.xmatch_pairs += cost.pairs;
  }
  report.pairs = static_cast<int64_t>(result.pairs.size());
  return result;
}

Result<XmatchResult> xmatch(const ReadView& view_a,
                            const SpatialTableSpec& spec_a,
                            const ReadView& view_b,
                            const SpatialTableSpec& spec_b,
                            const XmatchOptions& options,
                            std::vector<Row>* a_rows_out,
                            std::vector<Row>* b_rows_out) {
  if (!view_a.valid() || !view_b.valid()) {
    return Status(ErrorCode::kFailedPrecondition,
                  "xmatch on an empty ReadView");
  }
  const auto collect = [](const ReadView& view, const SpatialTableSpec& spec,
                          std::vector<double>& ra, std::vector<double>& dec,
                          std::vector<Row>* rows_out) {
    std::vector<Row> rows =
        view.scan_collect(spec.table_id, [](const Row&) { return true; });
    ra.reserve(rows.size());
    dec.reserve(rows.size());
    for (const Row& row : rows) {
      ra.push_back(row[static_cast<size_t>(spec.ra_column)].as_f64());
      dec.push_back(row[static_cast<size_t>(spec.dec_column)].as_f64());
    }
    if (rows_out != nullptr) *rows_out = std::move(rows);
  };
  std::vector<double> a_ra;
  std::vector<double> a_dec;
  std::vector<double> b_ra;
  std::vector<double> b_dec;
  collect(view_a, spec_a, a_ra, a_dec, a_rows_out);
  collect(view_b, spec_b, b_ra, b_dec, b_rows_out);
  return xmatch_arrays(a_ra, a_dec, b_ra, b_dec, options);
}

}  // namespace sky::db::spatial
