#include "db/snapshot.h"

#include <utility>

namespace sky::db {

// --------------------------------------------------------------- Snapshot

Snapshot::Snapshot(Snapshot&& other) noexcept
    : manager_(other.manager_),
      pin_id_(other.pin_id_),
      read_lsn_(other.read_lsn_),
      heads_(std::move(other.heads_)) {
  other.manager_ = nullptr;
  other.pin_id_ = 0;
}

Snapshot& Snapshot::operator=(Snapshot&& other) noexcept {
  if (this != &other) {
    if (manager_ != nullptr) manager_->unpin(pin_id_);
    manager_ = other.manager_;
    pin_id_ = other.pin_id_;
    read_lsn_ = other.read_lsn_;
    heads_ = std::move(other.heads_);
    other.manager_ = nullptr;
    other.pin_id_ = 0;
  }
  return *this;
}

Snapshot::~Snapshot() {
  if (manager_ != nullptr) manager_->unpin(pin_id_);
}

const SnapshotNode* Snapshot::visible_head(uint32_t table_id) const {
  if (table_id >= heads_.size()) return nullptr;
  const SnapshotNode* node = heads_[table_id].get();
  // Skip chunks published after the pin. commit_lsn decreases along the
  // chain, so the first node at or below read_lsn_ starts the visible view.
  while (node != nullptr && node->chunk.commit_lsn > read_lsn_) {
    node = node->prev.get();
  }
  return node;
}

// -------------------------------------------------------- SnapshotManager

SnapshotManager::SnapshotManager(size_t table_count) : heads_(table_count) {}

uint64_t SnapshotManager::publish(
    std::vector<std::pair<uint32_t, SnapshotChunk>> chunks) {
  const std::scoped_lock lock(publish_mu_);
  const uint64_t lsn = published_lsn_.load(std::memory_order_relaxed) + 1;
  for (auto& [table_id, chunk] : chunks) {
    if (table_id >= heads_.size() || chunk.rows.empty()) continue;
    chunk.commit_lsn = lsn;
    chunks_published_.fetch_add(1, std::memory_order_relaxed);
    rows_published_.fetch_add(static_cast<int64_t>(chunk.rows.size()),
                              std::memory_order_relaxed);
    auto node = std::make_shared<SnapshotNode>();
    node->prev = heads_[table_id].load(std::memory_order_relaxed);
    node->rows_cumulative =
        (node->prev ? node->prev->rows_cumulative : 0) +
        static_cast<int64_t>(chunk.rows.size());
    node->chunk = std::move(chunk);
    // Release: a reader that acquires this head sees the fully built node
    // and — transitively — the heap row bytes written before the commit.
    heads_[table_id].store(std::move(node), std::memory_order_release);
  }
  // Advance the watermark only after every head carries the commit: a pin
  // that reads lsn here is guaranteed to find all its chunks in the heads.
  published_lsn_.store(lsn, std::memory_order_release);
  return lsn;
}

Snapshot SnapshotManager::pin() {
  Snapshot snap;
  snap.manager_ = this;
  // Order matters: the LSN first (acquire), then the heads (acquire). Every
  // chunk with commit_lsn <= read_lsn was in its head before published_lsn_
  // advanced, so the heads loaded after cannot miss it; newer chunks the
  // heads may already carry are filtered by visible_head().
  snap.read_lsn_ = published_lsn_.load(std::memory_order_acquire);
  snap.heads_.reserve(heads_.size());
  for (const auto& head : heads_) {
    snap.heads_.push_back(head.load(std::memory_order_acquire));
  }
  pins_taken_.fetch_add(1, std::memory_order_relaxed);
  {
    const std::scoped_lock lock(pin_mu_);
    snap.pin_id_ = next_pin_id_++;
    pins_.emplace(snap.pin_id_, std::chrono::steady_clock::now());
  }
  return snap;
}

void SnapshotManager::unpin(uint64_t pin_id) {
  const std::scoped_lock lock(pin_mu_);
  pins_.erase(pin_id);
}

SnapshotStats SnapshotManager::stats() const {
  SnapshotStats stats;
  stats.published_lsn = published_lsn_.load(std::memory_order_acquire);
  stats.chunks_published = chunks_published_.load(std::memory_order_relaxed);
  stats.rows_published = rows_published_.load(std::memory_order_relaxed);
  stats.pins_taken = pins_taken_.load(std::memory_order_relaxed);
  const std::scoped_lock lock(pin_mu_);
  stats.active_pins = static_cast<int64_t>(pins_.size());
  if (!pins_.empty()) {
    const auto now = std::chrono::steady_clock::now();
    for (const auto& [id, taken] : pins_) {
      const Nanos age =
          std::chrono::duration_cast<std::chrono::nanoseconds>(now - taken)
              .count();
      if (age > stats.oldest_pin_age) stats.oldest_pin_age = age;
    }
  }
  return stats;
}

}  // namespace sky::db
