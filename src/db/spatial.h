// Spatial operators over ReadViews: HTM cone search and the zone cross-match.
//
// Both operators are written once against db::ReadView (read_view.h), so
// they run identically on the live engine state and on a pinned snapshot —
// the paper's repository answers cone searches *while* the nightly load is
// appending, which on a snapshot view touches no latch the loaders need.
//
// Cone search uses the table's HTM-keyed secondary index (IndexDef::htm):
// htm::cone_cover turns the cap into a handful of contiguous trixel-id
// ranges, each becoming one index range probe, and survivors are
// post-filtered by exact angular distance (the cover is conservative).
//
// Cross-match is the classic zone algorithm (Gray et al., "There Goes the
// Neighborhood: Relational Algebra for Spatial Data Search"): rows bucket
// into declination zones of height SpatialPolicy::zone_height_deg; a row in
// catalog A only needs candidates from the B zones intersecting
// [dec - r, dec + r], scanned through a per-zone ra-sorted window of
// half-width r / cos(dec) (two segments when the window wraps 0/360).
// Zones are independent, so they fan out across workers — through the
// pluggable FanOut hook, wired to core::LoadCoordinator::task_runner() by
// callers that link the core library (db/ itself cannot). Per-zone outputs
// are concatenated in zone order, making the result deterministic for any
// worker count or schedule.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/spatial_policy.h"
#include "db/op_costs.h"
#include "db/read_view.h"
#include "db/row.h"

namespace sky::db::spatial {

// Resolved spatial metadata of one table: its HTM-keyed secondary index and
// the position columns behind it.
struct SpatialTableSpec {
  uint32_t table_id = 0;
  std::string htm_index;  // name of the HTM index on the table
  int ra_column = -1;     // column indices in the table's row layout
  int dec_column = -1;
  int htm_depth = core::SpatialPolicy{}.htm_depth;
};

// Find the (first) HTM index declared on the table; kFailedPrecondition if
// the table has none.
Result<SpatialTableSpec> resolve_spatial(const Engine& engine,
                                         uint32_t table_id);

// All rows within radius_deg of (ra_deg, dec_deg), via the HTM index:
// cone_cover id ranges -> index range probes -> exact-distance post-filter.
// `costs` (optional) tallies zone_scan_rows (rows pulled from the index),
// xmatch_candidates (exact tests), xmatch_pairs (rows returned). Fails
// closed (kFailedPrecondition) when the index is unavailable in this view,
// like any ReadView index read.
Result<std::vector<Row>> cone_search(const ReadView& view,
                                     const SpatialTableSpec& spec,
                                     double ra_deg, double dec_deg,
                                     double radius_deg,
                                     OpCosts* costs = nullptr);

// Parallel executor hook: run `tasks` task bodies on up to `workers`
// workers. body(worker, task) must be invoked exactly once per task index in
// [0, tasks); invocations for different tasks may be concurrent, and each
// task writes only its own output slot, so implementations need no locking
// beyond joining the workers before returning. A default-constructed
// (empty) FanOut runs tasks serially in index order.
using FanOut = std::function<void(
    int workers, size_t tasks,
    const std::function<void(int worker, size_t task)>& body)>;

struct XmatchOptions {
  double radius_deg = 1.0 / 3600.0;  // 1 arcsec, a typical match tolerance
  // zone_height_deg and xmatch_workers drive the zone bucketing and fan-out
  // (htm_depth is not used by the zone matcher).
  core::SpatialPolicy policy;
  FanOut fan_out;  // empty = serial
};

// One matched pair: indices into the two input catalogs (for the engine
// overload, positions in the table's scan_collect order) and the exact
// separation.
struct MatchPair {
  uint32_t a = 0;
  uint32_t b = 0;
  double sep_deg = 0;
};

// Per-zone work accounting, for telemetry and for the bench's worker
// makespan model.
struct ZoneCost {
  int zone = 0;           // declination zone index (0 = south pole edge)
  int64_t a_rows = 0;     // catalog-A rows driving this zone's probes
  int64_t scanned = 0;    // B rows pulled through ra windows
  int64_t candidates = 0; // pairs reaching the exact-distance test
  int64_t pairs = 0;      // pairs within radius
};

struct XmatchReport {
  double radius_deg = 0;
  double zone_height_deg = 0;
  int workers = 1;
  size_t zones_total = 0;     // ceil(180 / zone_height)
  size_t zones_occupied = 0;  // zones with at least one A row (= tasks run)
  int64_t pairs = 0;
  OpCosts costs;              // zone_scan_rows / xmatch_candidates / _pairs
  std::vector<ZoneCost> per_zone;  // occupied zones, ascending zone index
};

struct XmatchResult {
  std::vector<MatchPair> pairs;  // zone order, then A input order within zone
  XmatchReport report;
};

// Cross-match two position arrays (degrees; a_ra/a_dec and b_ra/b_dec must
// be pairwise equal length). This is the allocation-lean entry the bench
// drives at catalog scale; the engine overload below collects positions
// from two ReadViews and delegates here.
XmatchResult xmatch_arrays(const std::vector<double>& a_ra,
                           const std::vector<double>& a_dec,
                           const std::vector<double>& b_ra,
                           const std::vector<double>& b_dec,
                           const XmatchOptions& options);

// Cross-match two tables as seen by two ReadViews (typically both from the
// same pinned snapshot, so the match is transactionally consistent while
// loaders run). MatchPair indices refer to each table's scan_collect order;
// pass a_rows_out / b_rows_out to receive the collected rows in exactly
// that order for index-to-row resolution.
Result<XmatchResult> xmatch(const ReadView& view_a,
                            const SpatialTableSpec& spec_a,
                            const ReadView& view_b,
                            const SpatialTableSpec& spec_b,
                            const XmatchOptions& options,
                            std::vector<Row>* a_rows_out = nullptr,
                            std::vector<Row>* b_rows_out = nullptr);

}  // namespace sky::db::spatial
