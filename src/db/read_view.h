// ReadView: the one read handle over the engine.
//
// The read API used to be forked into two parallel method families — the
// live queries (Engine::pk_lookup / index_range / scan_collect / ...) that
// synchronize with writers on the index latch, and their eight snapshot_*
// twins that read a pinned copy-on-write prefix latch-free (db/snapshot.h).
// Every new read operator had to be written twice. A ReadView carries each
// operation once and is constructed in either mode:
//
//   db::ReadView live = engine.live_view();        // latch-shared, freshest
//   db::Snapshot snap = engine.pin_snapshot();
//   db::ReadView pinned = engine.view_at(snap);    // latch-free, committed
//                                                  // prefix at pin time
//
// Operators written against ReadView (spatial::cone_search,
// spatial::xmatch, the query planner) serve both modes for free, and
// QueryScheduler::Admission::view() hands an admitted query the right mode
// per QueryPolicy::use_snapshots without branching at the call site.
//
// A ReadView is a non-owning handle: it must not outlive the engine, and a
// snapshot view must not outlive the Snapshot it was constructed from (the
// typical shape — pin, build the view, query, drop both — makes this
// natural). Copying a view is free; it carries no state beyond the two
// pointers.
//
// Error contract: reads over an unavailable secondary index fail closed
// with the same canonical code in both modes — kFailedPrecondition, whether
// the index is disabled right now (live) or a visible chunk was committed
// while it was disabled (snapshot). See index_unavailable_error in
// engine.h.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "db/op_costs.h"
#include "db/row.h"
#include "storage/sharded_heap.h"

namespace sky::db {

class Engine;
class Snapshot;

class ReadView {
 public:
  // An empty view; every query on it fails with kFailedPrecondition.
  ReadView() = default;

  bool valid() const { return engine_ != nullptr; }
  // Reading a pinned snapshot (latch-free committed prefix) vs. live state?
  bool is_snapshot() const { return snap_ != nullptr; }
  // The engine under this view (valid views only — callers resolve schema
  // metadata, e.g. table ids and index definitions, through this).
  const Engine& engine() const { return *engine_; }
  // The pinned snapshot under a snapshot view (nullptr on live views).
  const Snapshot* snapshot() const { return snap_; }

  // Rows of the table visible to this view.
  int64_t row_count(uint32_t table_id) const;
  // Look up one row by full primary key.
  Result<Row> pk_lookup(uint32_t table_id, const Row& pk_values) const;
  // All rows whose PK is in [lo, hi) — keys built from value tuples.
  Result<std::vector<Row>> pk_range(uint32_t table_id, const Row& lo,
                                    const Row& hi) const;
  // Range over a secondary index: [lo, hi) on the indexed columns. On an
  // HTM-keyed index (IndexDef::htm) the tuples are single int64 trixel ids,
  // not (ra, dec) pairs.
  Result<std::vector<Row>> index_range(uint32_t table_id,
                                       std::string_view index_name,
                                       const Row& lo, const Row& hi) const;
  // Encoded-key ranges for the query planner: [lo, hi) over pre-encoded
  // keys (index::KeyEncoder order); empty `hi` means unbounded.
  Result<std::vector<Row>> pk_encoded_range(uint32_t table_id,
                                            const std::string& lo,
                                            const std::string& hi) const;
  Result<std::vector<Row>> index_encoded_range(uint32_t table_id,
                                               std::string_view index_name,
                                               const std::string& lo,
                                               const std::string& hi) const;
  // Full scan with predicate. `costs` (optional) tallies rows visited and
  // heap bytes decoded on the snapshot path; the live path's costs are
  // attributed by the engine's own instrumentation.
  std::vector<Row> scan_collect(uint32_t table_id,
                                const std::function<bool(const Row&)>& pred,
                                OpCosts* costs = nullptr) const;
  // Physical visit in heap order (extent, page, slot ascending).
  Status scan_heap(
      uint32_t table_id,
      const std::function<void(storage::SlotId, std::string_view)>& fn) const;

 private:
  friend class Engine;
  ReadView(const Engine* engine, const Snapshot* snap)
      : engine_(engine), snap_(snap) {}

  const Engine* engine_ = nullptr;
  const Snapshot* snap_ = nullptr;
};

}  // namespace sky::db
