#include "common/status.h"

namespace sky {

std::string_view error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk: return "OK";
    case ErrorCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case ErrorCode::kNotFound: return "NOT_FOUND";
    case ErrorCode::kAlreadyExists: return "ALREADY_EXISTS";
    case ErrorCode::kConstraintPrimaryKey: return "PRIMARY_KEY_VIOLATION";
    case ErrorCode::kConstraintForeignKey: return "FOREIGN_KEY_VIOLATION";
    case ErrorCode::kConstraintUnique: return "UNIQUE_VIOLATION";
    case ErrorCode::kConstraintCheck: return "CHECK_VIOLATION";
    case ErrorCode::kConstraintNotNull: return "NOT_NULL_VIOLATION";
    case ErrorCode::kTypeMismatch: return "TYPE_MISMATCH";
    case ErrorCode::kParseError: return "PARSE_ERROR";
    case ErrorCode::kIoError: return "IO_ERROR";
    case ErrorCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case ErrorCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case ErrorCode::kAborted: return "ABORTED";
    case ErrorCode::kDeadlockDetected: return "DEADLOCK_DETECTED";
    case ErrorCode::kUnimplemented: return "UNIMPLEMENTED";
    case ErrorCode::kInternal: return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string Status::to_string() const {
  if (is_ok()) return "OK";
  std::string out(error_code_name(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace sky
