#include "common/config.h"

#include <fstream>
#include <sstream>
#include <vector>

#include "common/strings.h"

namespace sky {

Result<Config> Config::parse(std::string_view text) {
  Config config;
  std::string section;
  int line_number = 0;
  for (std::string_view line : split_view(text, '\n')) {
    ++line_number;
    const std::string_view stripped = trim(line);
    if (stripped.empty() || stripped[0] == '#' || stripped[0] == ';') {
      continue;
    }
    if (stripped.front() == '[') {
      if (stripped.back() != ']') {
        return Status(ErrorCode::kParseError,
                      str_format("config line %d: unterminated section header",
                                 line_number));
      }
      section = std::string(trim(stripped.substr(1, stripped.size() - 2)));
      continue;
    }
    const size_t eq = stripped.find('=');
    if (eq == std::string_view::npos) {
      return Status(ErrorCode::kParseError,
                    str_format("config line %d: expected key = value",
                               line_number));
    }
    const std::string key(trim(stripped.substr(0, eq)));
    const std::string value(trim(stripped.substr(eq + 1)));
    if (key.empty()) {
      return Status(ErrorCode::kParseError,
                    str_format("config line %d: empty key", line_number));
    }
    config.set(section, key, value);
  }
  return config;
}

Result<Config> Config::load_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status(ErrorCode::kIoError, "cannot open config file: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse(buffer.str());
}

void Config::set(const std::string& section, const std::string& key,
                 const std::string& value) {
  values_[{section, key}] = value;
}

bool Config::has(const std::string& section, const std::string& key) const {
  return values_.count({section, key}) > 0;
}

std::string Config::get_string(const std::string& section,
                               const std::string& key,
                               const std::string& fallback) const {
  const auto it = values_.find({section, key});
  return it == values_.end() ? fallback : it->second;
}

int64_t Config::get_int(const std::string& section, const std::string& key,
                        int64_t fallback) const {
  const auto it = values_.find({section, key});
  if (it == values_.end()) return fallback;
  const auto parsed = parse_int64(it->second);
  return parsed.is_ok() ? parsed.value() : fallback;
}

double Config::get_double(const std::string& section, const std::string& key,
                          double fallback) const {
  const auto it = values_.find({section, key});
  if (it == values_.end()) return fallback;
  const auto parsed = parse_double(it->second);
  return parsed.is_ok() ? parsed.value() : fallback;
}

bool Config::get_bool(const std::string& section, const std::string& key,
                      bool fallback) const {
  const auto it = values_.find({section, key});
  if (it == values_.end()) return fallback;
  const std::string lowered = to_lower(it->second);
  if (lowered == "true" || lowered == "1" || lowered == "yes" ||
      lowered == "on") {
    return true;
  }
  if (lowered == "false" || lowered == "0" || lowered == "no" ||
      lowered == "off") {
    return false;
  }
  return fallback;
}

std::vector<std::string> Config::keys(const std::string& section) const {
  std::vector<std::string> out;
  for (const auto& [section_key, value] : values_) {
    if (section_key.first == section) out.push_back(section_key.second);
  }
  return out;
}

std::string Config::to_string() const {
  std::string out;
  std::string current_section = "\x01";  // sentinel: differs from any real one
  for (const auto& [section_key, value] : values_) {
    if (section_key.first != current_section) {
      current_section = section_key.first;
      if (!current_section.empty()) {
        out += "[" + current_section + "]\n";
      }
    }
    out += section_key.second + " = " + value + "\n";
  }
  return out;
}

}  // namespace sky
