// Deterministic random number generation.
//
// All synthetic-data generation and simulation randomness flows through
// SplitMix64-seeded xoshiro256** streams so every test, example, and benchmark
// is reproducible bit-for-bit from a single seed.
#pragma once

#include <cstdint>
#include <cmath>
#include <string>
#include <vector>

namespace sky {

// SplitMix64: used to expand a single seed into stream state.
constexpr uint64_t splitmix64(uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

// xoshiro256**: fast, high-quality, 256-bit state.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5EEDull) { reseed(seed); }

  void reseed(uint64_t seed) {
    uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  uint64_t next_u64() {
    const uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t uniform_int(int64_t lo, int64_t hi) {
    const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    if (span == 0) return static_cast<int64_t>(next_u64());  // full range
    return lo + static_cast<int64_t>(next_u64() % span);
  }

  // Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  double uniform_range(double lo, double hi) {
    return lo + (hi - lo) * uniform();
  }

  // True with probability p.
  bool bernoulli(double p) { return uniform() < p; }

  // Standard normal via Box-Muller (one value per call; simple and adequate).
  double normal(double mean = 0.0, double stddev = 1.0) {
    double u1 = uniform();
    double u2 = uniform();
    if (u1 < 1e-300) u1 = 1e-300;
    const double mag = std::sqrt(-2.0 * std::log(u1));
    return mean + stddev * mag * std::cos(6.283185307179586 * u2);
  }

  // Exponential with given mean.
  double exponential(double mean) {
    double u = uniform();
    if (u < 1e-300) u = 1e-300;
    return -mean * std::log(u);
  }

  // Derive an independent child stream; used to give each catalog file /
  // worker its own reproducible randomness regardless of interleaving.
  Rng fork(uint64_t salt) {
    uint64_t sm = next_u64() ^ (salt * 0x9E3779B97F4A7C15ULL);
    Rng child(0);
    for (auto& word : child.state_) word = splitmix64(sm);
    return child;
  }

  // Pick an index in [0, weights.size()) proportionally to weights.
  size_t pick_weighted(const std::vector<double>& weights) {
    double total = 0;
    for (double w : weights) total += w;
    double r = uniform() * total;
    for (size_t i = 0; i < weights.size(); ++i) {
      r -= weights[i];
      if (r <= 0) return i;
    }
    return weights.empty() ? 0 : weights.size() - 1;
  }

  // Random lowercase identifier of given length (e.g. synthetic names).
  std::string ident(size_t length) {
    std::string out;
    out.reserve(length);
    for (size_t i = 0; i < length; ++i) {
      out.push_back(static_cast<char>('a' + (next_u64() % 26)));
    }
    return out;
  }

 private:
  static constexpr uint64_t rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4] = {};
};

}  // namespace sky
