// Small string utilities used by the catalog parser, CSV codec, and config
// reader. All parsing returns Result so malformed input is a data error, not
// an exception.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace sky {

// Split on a single-character delimiter. Keeps empty fields ("a||b" -> 3).
std::vector<std::string_view> split(std::string_view text, char delim);

std::string_view trim(std::string_view text);

bool starts_with(std::string_view text, std::string_view prefix);

std::string to_lower(std::string_view text);

Result<int64_t> parse_int64(std::string_view text);
Result<int32_t> parse_int32(std::string_view text);
Result<double> parse_double(std::string_view text);

// Join pieces with a delimiter.
std::string join(const std::vector<std::string>& pieces,
                 std::string_view delim);

// printf-style formatting into std::string.
std::string str_format(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace sky
