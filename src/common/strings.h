// Small string utilities used by the catalog parser, CSV codec, and config
// reader. All parsing returns Result so malformed input is a data error, not
// an exception.
#pragma once

#include <cctype>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace sky {

// Split on a single-character delimiter. Keeps empty fields ("a||b" -> 3).
std::vector<std::string_view> split(std::string_view text, char delim);

// Zero-allocation splitter: iterates the same pieces split() would return
// (empty fields kept, "" yields one empty piece) without materializing a
// vector. The hot loops — catalog field scan, per-line loader loops — use
// this so splitting costs no heap traffic.
//
//   for (std::string_view piece : split_view(text, '|')) { ... }
class SplitView {
 public:
  SplitView(std::string_view text, char delim) : text_(text), delim_(delim) {}

  class iterator {
   public:
    using value_type = std::string_view;
    using difference_type = std::ptrdiff_t;

    iterator() = default;  // end
    iterator(std::string_view text, char delim)
        : text_(text), delim_(delim), done_(false) {
      advance(0);
    }

    std::string_view operator*() const { return piece_; }

    iterator& operator++() {
      if (next_ == std::string_view::npos) {
        done_ = true;
      } else {
        advance(next_ + 1);
      }
      return *this;
    }

    bool operator==(const iterator& other) const {
      return done_ == other.done_;
    }
    bool operator!=(const iterator& other) const { return !(*this == other); }

   private:
    void advance(size_t start) {
      next_ = text_.find(delim_, start);
      const size_t stop =
          next_ == std::string_view::npos ? text_.size() : next_;
      piece_ = text_.substr(start, stop - start);
    }

    std::string_view text_;
    char delim_ = '\0';
    std::string_view piece_;
    size_t next_ = std::string_view::npos;
    bool done_ = true;
  };

  iterator begin() const { return iterator(text_, delim_); }
  iterator end() const { return iterator(); }

 private:
  std::string_view text_;
  char delim_;
};

inline SplitView split_view(std::string_view text, char delim) {
  return SplitView(text, delim);
}

// Header-inline: called once per field in the catalog parse hot loop, where
// an out-of-line call shows up in profiles.
inline std::string_view trim(std::string_view text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool starts_with(std::string_view text, std::string_view prefix);

std::string to_lower(std::string_view text);

Result<int64_t> parse_int64(std::string_view text);
Result<int32_t> parse_int32(std::string_view text);
Result<double> parse_double(std::string_view text);

// Join pieces with a delimiter.
std::string join(const std::vector<std::string>& pieces,
                 std::string_view delim);

// printf-style formatting into std::string.
std::string str_format(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace sky
