// Minimal thread-safe leveled logger.
//
// Loading a night of data is a long-running process; the paper's framework
// logs per-file progress and per-error diagnostics. Default level is WARN so
// tests and benches stay quiet; examples raise it to INFO.
#pragma once

#include <string>

namespace sky {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

void set_log_level(LogLevel level);
LogLevel log_level();

// Emit a message (already formatted) at the given level.
void log_message(LogLevel level, const std::string& message);

}  // namespace sky

#define SKY_LOG(level, ...)                                          \
  do {                                                               \
    if (static_cast<int>(level) >=                                   \
        static_cast<int>(::sky::log_level())) {                      \
      ::sky::log_message(level, ::sky::str_format(__VA_ARGS__));     \
    }                                                                \
  } while (false)

#define SKY_DEBUG(...) SKY_LOG(::sky::LogLevel::kDebug, __VA_ARGS__)
#define SKY_INFO(...) SKY_LOG(::sky::LogLevel::kInfo, __VA_ARGS__)
#define SKY_WARN(...) SKY_LOG(::sky::LogLevel::kWarn, __VA_ARGS__)
#define SKY_ERROR(...) SKY_LOG(::sky::LogLevel::kError, __VA_ARGS__)
