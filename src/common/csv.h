// Minimal CSV codec.
//
// Used by the SDSS-style two-phase baseline loader (paper section 6), which
// splits catalog data into per-table comma-separated-value files before
// loading, and by benchmark output.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace sky {

// Quote a field if it contains comma, quote, or newline (RFC4180-ish).
std::string csv_escape(std::string_view field);

// Encode one record; no trailing newline.
std::string csv_encode_row(const std::vector<std::string>& fields);

// Decode one record (a single line without the newline).
Result<std::vector<std::string>> csv_decode_row(std::string_view line);

}  // namespace sky
