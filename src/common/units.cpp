#include "common/units.h"

#include <cstdio>

namespace sky {

std::string format_duration(Nanos t) {
  char buf[64];
  const bool negative = t < 0;
  if (negative) t = -t;
  if (t < kMicrosecond) {
    std::snprintf(buf, sizeof(buf), "%s%lldns", negative ? "-" : "",
                  static_cast<long long>(t));
  } else if (t < kMillisecond) {
    std::snprintf(buf, sizeof(buf), "%s%.1fus", negative ? "-" : "",
                  static_cast<double>(t) / kMicrosecond);
  } else if (t < kSecond) {
    std::snprintf(buf, sizeof(buf), "%s%.1fms", negative ? "-" : "",
                  static_cast<double>(t) / kMillisecond);
  } else if (t < 60 * kSecond) {
    std::snprintf(buf, sizeof(buf), "%s%.1fs", negative ? "-" : "",
                  static_cast<double>(t) / kSecond);
  } else {
    const long long minutes = t / (60 * kSecond);
    const double seconds =
        static_cast<double>(t - minutes * 60 * kSecond) / kSecond;
    std::snprintf(buf, sizeof(buf), "%s%lldm%04.1fs", negative ? "-" : "",
                  minutes, seconds);
  }
  return buf;
}

std::string format_bytes(int64_t bytes) {
  char buf[64];
  const bool negative = bytes < 0;
  if (negative) bytes = -bytes;
  if (bytes < kKiB) {
    std::snprintf(buf, sizeof(buf), "%s%lld B", negative ? "-" : "",
                  static_cast<long long>(bytes));
  } else if (bytes < kMiB) {
    std::snprintf(buf, sizeof(buf), "%s%.1f KiB", negative ? "-" : "",
                  static_cast<double>(bytes) / kKiB);
  } else if (bytes < kGiB) {
    std::snprintf(buf, sizeof(buf), "%s%.1f MiB", negative ? "-" : "",
                  static_cast<double>(bytes) / kMiB);
  } else {
    std::snprintf(buf, sizeof(buf), "%s%.2f GiB", negative ? "-" : "",
                  static_cast<double>(bytes) / kGiB);
  }
  return buf;
}

}  // namespace sky
