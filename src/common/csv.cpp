#include "common/csv.h"

namespace sky {

std::string csv_escape(std::string_view field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quotes) return std::string(field);
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back('"');
  for (char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

std::string csv_encode_row(const std::vector<std::string>& fields) {
  std::string out;
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += csv_escape(fields[i]);
  }
  return out;
}

Result<std::vector<std::string>> csv_decode_row(std::string_view line) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  size_t i = 0;
  while (i < line.size()) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.push_back('"');
          i += 2;
          continue;
        }
        in_quotes = false;
        ++i;
        continue;
      }
      current.push_back(c);
      ++i;
      continue;
    }
    if (c == '"') {
      if (!current.empty()) {
        return Status(ErrorCode::kParseError,
                      "quote in the middle of an unquoted CSV field");
      }
      in_quotes = true;
      ++i;
      continue;
    }
    if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
      ++i;
      continue;
    }
    current.push_back(c);
    ++i;
  }
  if (in_quotes) {
    return Status(ErrorCode::kParseError, "unterminated quoted CSV field");
  }
  fields.push_back(std::move(current));
  return fields;
}

}  // namespace sky
