// INI-style configuration files.
//
// The paper's future-work section (4.3) proposes a configuration file to
// control per-table array sizes in the array-set structure; we implement that
// extension. Format:
//
//   # comment
//   [section]
//   key = value
//
// Keys outside any section live in the "" section. Lookups are typed and
// return defaults when absent.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace sky {

class Config {
 public:
  Config() = default;

  static Result<Config> parse(std::string_view text);
  static Result<Config> load_file(const std::string& path);

  void set(const std::string& section, const std::string& key,
           const std::string& value);

  bool has(const std::string& section, const std::string& key) const;

  std::string get_string(const std::string& section, const std::string& key,
                         const std::string& fallback = "") const;
  int64_t get_int(const std::string& section, const std::string& key,
                  int64_t fallback) const;
  double get_double(const std::string& section, const std::string& key,
                    double fallback) const;
  bool get_bool(const std::string& section, const std::string& key,
                bool fallback) const;

  // All keys present in a section, in insertion-independent (sorted) order.
  std::vector<std::string> keys(const std::string& section) const;

  // Serialize back to INI text (sorted; round-trips through parse()).
  std::string to_string() const;

 private:
  // (section, key) -> value
  std::map<std::pair<std::string, std::string>, std::string> values_;
};

}  // namespace sky
