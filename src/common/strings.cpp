#include "common/strings.h"

#include <cctype>
#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <limits>

namespace sky {

std::vector<std::string_view> split(std::string_view text, char delim) {
  std::vector<std::string_view> out;
  size_t start = 0;
  while (true) {
    const size_t pos = text.find(delim, start);
    if (pos == std::string_view::npos) {
      out.push_back(text.substr(start));
      break;
    }
    out.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

Result<int64_t> parse_int64(std::string_view text) {
  const std::string_view trimmed = trim(text);
  if (trimmed.empty()) {
    return Status(ErrorCode::kParseError, "empty integer field");
  }
  // strtoll needs NUL-termination; copy to a small buffer.
  std::string buf(trimmed);
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(buf.c_str(), &end, 10);
  if (errno == ERANGE) {
    return Status(ErrorCode::kParseError, "integer out of range: " + buf);
  }
  if (end != buf.c_str() + buf.size()) {
    return Status(ErrorCode::kParseError, "malformed integer: " + buf);
  }
  return static_cast<int64_t>(value);
}

Result<int32_t> parse_int32(std::string_view text) {
  SKY_ASSIGN_OR_RETURN(const int64_t wide, parse_int64(text));
  if (wide < std::numeric_limits<int32_t>::min() ||
      wide > std::numeric_limits<int32_t>::max()) {
    return Status(ErrorCode::kParseError,
                  "integer out of int32 range: " + std::string(trim(text)));
  }
  return static_cast<int32_t>(wide);
}

Result<double> parse_double(std::string_view text) {
  const std::string_view trimmed = trim(text);
  if (trimmed.empty()) {
    return Status(ErrorCode::kParseError, "empty float field");
  }
  std::string buf(trimmed);
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(buf.c_str(), &end);
  if (errno == ERANGE) {
    return Status(ErrorCode::kParseError, "float out of range: " + buf);
  }
  if (end != buf.c_str() + buf.size()) {
    return Status(ErrorCode::kParseError, "malformed float: " + buf);
  }
  return value;
}

std::string join(const std::vector<std::string>& pieces,
                 std::string_view delim) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out.append(delim);
    out.append(pieces[i]);
  }
  return out;
}

std::string str_format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace sky
