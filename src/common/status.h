// Status / Result: lightweight error propagation used throughout SkyLoader.
//
// The engine and loader never throw for expected data errors (bad row, key
// violation, ...); those travel as Status values so the bulk-loading
// algorithm's skip-and-resume recovery (paper section 4.2) can act on them.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace sky {

// Error taxonomy. The Constraint* codes mirror what an RDBMS reports on a
// failed batched insert; the loader's error handling branches on them.
enum class ErrorCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,          // duplicate primary key / unique violation
  kConstraintPrimaryKey,   // explicit PK violation
  kConstraintForeignKey,   // referenced parent row missing
  kConstraintUnique,
  kConstraintCheck,        // value out of declared range
  kConstraintNotNull,
  kTypeMismatch,
  kParseError,             // malformed catalog row
  kIoError,
  kResourceExhausted,      // e.g. transaction slots
  kFailedPrecondition,
  kAborted,
  // Waits-for cycle on admission gates: this transaction was chosen as the
  // deadlock victim and must roll back (db/lock_manager.h WaitGraph).
  // Deliberately NOT in the constraint family — the loader must not skip
  // the row and move on; it aborts and retries the unit.
  kDeadlockDetected,
  kUnimplemented,
  kInternal,
};

std::string_view error_code_name(ErrorCode code);

// Is this code one of the constraint-violation family? (These are the errors
// the bulk loader expects to skip row-by-row.)
constexpr bool is_constraint_error(ErrorCode code) {
  switch (code) {
    case ErrorCode::kAlreadyExists:
    case ErrorCode::kConstraintPrimaryKey:
    case ErrorCode::kConstraintForeignKey:
    case ErrorCode::kConstraintUnique:
    case ErrorCode::kConstraintCheck:
    case ErrorCode::kConstraintNotNull:
    case ErrorCode::kTypeMismatch:
      return true;
    default:
      return false;
  }
}

class [[nodiscard]] Status {
 public:
  Status() : code_(ErrorCode::kOk) {}
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok() { return Status(); }

  bool is_ok() const { return code_ == ErrorCode::kOk; }
  explicit operator bool() const { return is_ok(); }

  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "CODE: message" rendering for logs and error reports.
  std::string to_string() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  ErrorCode code_;
  std::string message_;
};

inline Status ok_status() { return Status::ok(); }

// Result<T>: either a value or an error Status. Modeled on absl::StatusOr.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : data_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : data_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(data_).is_ok() &&
           "Result must not be constructed from an OK status");
  }

  bool is_ok() const { return std::holds_alternative<T>(data_); }
  explicit operator bool() const { return is_ok(); }

  const T& value() const& {
    assert(is_ok());
    return std::get<T>(data_);
  }
  T& value() & {
    assert(is_ok());
    return std::get<T>(data_);
  }
  T&& value() && {
    assert(is_ok());
    return std::get<T>(std::move(data_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  Status status() const {
    if (is_ok()) return Status::ok();
    return std::get<Status>(data_);
  }

  T value_or(T fallback) const {
    if (is_ok()) return std::get<T>(data_);
    return fallback;
  }

 private:
  std::variant<T, Status> data_;
};

#define SKY_RETURN_IF_ERROR(expr)                  \
  do {                                             \
    ::sky::Status sky_status_tmp_ = (expr);        \
    if (!sky_status_tmp_.is_ok()) return sky_status_tmp_; \
  } while (false)

#define SKY_CONCAT_INNER_(a, b) a##b
#define SKY_CONCAT_(a, b) SKY_CONCAT_INNER_(a, b)

#define SKY_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                               \
  if (!tmp.is_ok()) return tmp.status();           \
  lhs = std::move(tmp).value()

#define SKY_ASSIGN_OR_RETURN(lhs, expr) \
  SKY_ASSIGN_OR_RETURN_IMPL_(SKY_CONCAT_(sky_result_tmp_, __LINE__), lhs, expr)

}  // namespace sky
