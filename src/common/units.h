// Time and size units shared by the cost model, simulator, and reports.
#pragma once

#include <cstdint>
#include <string>

namespace sky {

// Virtual (and real) durations are signed nanosecond counts. Signed per the
// C++ Core Guidelines arithmetic rules; 292 years of range is ample.
using Nanos = int64_t;

constexpr Nanos kNanosecond = 1;
constexpr Nanos kMicrosecond = 1000 * kNanosecond;
constexpr Nanos kMillisecond = 1000 * kMicrosecond;
constexpr Nanos kSecond = 1000 * kMillisecond;

constexpr double to_seconds(Nanos t) { return static_cast<double>(t) / 1e9; }
constexpr Nanos from_seconds(double seconds) {
  return static_cast<Nanos>(seconds * 1e9);
}

constexpr int64_t kKiB = 1024;
constexpr int64_t kMiB = 1024 * kKiB;
constexpr int64_t kGiB = 1024 * kMiB;

// Human-readable rendering, e.g. "2m14.5s", "183ms".
std::string format_duration(Nanos t);
// e.g. "1.5 GiB", "200.0 MiB".
std::string format_bytes(int64_t bytes);

}  // namespace sky
