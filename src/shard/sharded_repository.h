// ShardedRepository: M independent engines behind one repository facade.
//
// The paper's production deployment scales the loader across database
// instances; this layer reproduces that shape in-process. A
// core::ShardPolicy (folded into EnginePolicies like its siblings) slices
// the HTM trixel-id space into contiguous ranges, one db::Engine per slice,
// and everything above the engines speaks the same surfaces as before:
//
//   * make_session() returns a client::Session whose execute_batch splits
//     each batch into contiguous same-shard runs applied in the original
//     row order — the JDBC prefix contract (earlier rows stay applied, the
//     first failure's index is reported, the tail is discarded) holds
//     exactly as on one engine. Columnar batches split into sub-ranges of
//     the same ColumnBatch, so the one-latch columnar fast path is kept.
//   * read_view() / view_at() return a ShardedReadView implementing the
//     ReadView method set by scatter-gather: point lookups short-circuit to
//     the owning shard when the router can derive it, range reads merge
//     per-shard results by primary-key order so the bytes match a
//     single-shard oracle.
//   * shard::cone_search probes only the shards whose trixel slices
//     intersect the cone cover; shard::xmatch collects positions shard by
//     shard and fans the zone matcher out across workers.
//
// Foreign keys: a child row and its parent may land on different shards
// (children route block-cyclically by PK when they carry no position), so
// shard engines run with EngineOptions::enforce_foreign_keys = false and
// FK checking is deferred to reconcile_foreign_keys() — a post-load pass
// that probes every child edge against all shards and reports orphans.
//
// Recovery: each shard retains / dumps its own WAL (dir/shard-NNN/wal.skywal)
// and replays shard-identically — the router is deterministic, so replayed
// rows land where they were, and extents match byte for byte.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "client/session.h"
#include "common/status.h"
#include "core/load_report.h"
#include "db/engine.h"
#include "db/recovery.h"
#include "db/snapshot.h"
#include "db/spatial.h"
#include "shard/shard_router.h"

namespace sky::db {

class ShardedRepository;

// The ReadView method set, scatter-gathered over every shard.
//
// Byte-identity contract vs. a single-shard oracle: row_count, pk_lookup,
// pk_range, pk_encoded_range and scan_heap are exact (primary keys are
// unique per table, so merging per-shard runs by encoded PK key reproduces
// the oracle's order and content). index_range / index_encoded_range merge
// by the indexed-value key; rows with *equal* index values surface in
// shard-major order rather than global insertion order (the engine's
// non-unique index keys carry a per-shard row-id suffix that is not
// comparable across shards). scan_collect concatenates shards in shard
// order — a deterministic but shard-relative order, same caveat as any
// heap-order scan.
class ShardedReadView {
 public:
  ShardedReadView() = default;

  bool valid() const { return repo_ != nullptr && !views_.empty(); }
  int shard_count() const { return static_cast<int>(views_.size()); }
  const ReadView& shard_view(int shard) const {
    return views_[static_cast<size_t>(shard)];
  }
  const ShardedRepository& repository() const { return *repo_; }

  int64_t row_count(uint32_t table_id) const;
  Result<Row> pk_lookup(uint32_t table_id, const Row& pk_values) const;
  Result<std::vector<Row>> pk_range(uint32_t table_id, const Row& lo,
                                    const Row& hi) const;
  Result<std::vector<Row>> index_range(uint32_t table_id,
                                       std::string_view index_name,
                                       const Row& lo, const Row& hi) const;
  Result<std::vector<Row>> pk_encoded_range(uint32_t table_id,
                                            const std::string& lo,
                                            const std::string& hi) const;
  Result<std::vector<Row>> index_encoded_range(uint32_t table_id,
                                               std::string_view index_name,
                                               const std::string& lo,
                                               const std::string& hi) const;
  std::vector<Row> scan_collect(uint32_t table_id,
                                const std::function<bool(const Row&)>& pred,
                                OpCosts* costs = nullptr) const;
  Status scan_heap(
      uint32_t table_id,
      const std::function<void(storage::SlotId, std::string_view)>& fn) const;

 private:
  friend class ShardedRepository;
  ShardedReadView(const ShardedRepository* repo, std::vector<ReadView> views)
      : repo_(repo), views_(std::move(views)) {}

  // Merge per-shard result runs (each already key-ascending) into one
  // key-ascending sequence; `key(row)` re-derives the comparison key.
  static std::vector<Row> merge_by_key(
      std::vector<std::vector<Row>> per_shard,
      const std::function<std::string(const Row&)>& key);

  const ShardedRepository* repo_ = nullptr;
  std::vector<ReadView> views_;  // one per shard, shard order
};

// client::Session over a sharded repository: one lazy DirectSession per
// shard, batches split into contiguous same-shard runs applied in original
// row order. commit() commits every shard with an open transaction in shard
// order; there is no cross-shard atomic commit (see DESIGN.md §12) — a
// commit failure on one shard leaves earlier shards committed, and the
// first error is reported.
class ShardedSession final : public client::Session {
 public:
  explicit ShardedSession(ShardedRepository& repo);

  Result<uint32_t> prepare_insert(std::string_view table_name) override;
  client::BatchOutcome execute_batch(uint32_t table,
                                     std::span<const Row> rows) override;
  client::BatchOutcome execute_column_batch(uint32_t table,
                                            const ColumnBatch& batch,
                                            size_t first,
                                            size_t count) override;
  Status execute_single(uint32_t table, const Row& row) override;
  Status commit() override;
  void client_compute(Nanos duration) override;
  void note_buffered_rows(int64_t rows, int64_t footprint_bytes,
                          bool columnar) override;
  Nanos now() const override;
  // Aggregate of every shard session's stats (summed field by field).
  const client::SessionStats& stats() const override;

  // Per-shard session stats (empty stats for shards never written).
  const client::SessionStats& shard_stats(int shard) const;

 private:
  client::Session& session_for(int shard);

  ShardedRepository& repo_;
  std::vector<std::unique_ptr<client::DirectSession>> sessions_;  // lazy
  Nanos start_real_ = 0;
  mutable client::SessionStats agg_;
  static const client::SessionStats kEmptyStats;
};

// Post-load cross-shard foreign-key reconciliation result.
struct FkReconcileReport {
  int64_t edges_checked = 0;   // (child table, FK) edges walked
  int64_t rows_checked = 0;    // child rows probed
  int64_t local_hits = 0;      // parent found on the child's own shard
  int64_t remote_hits = 0;     // parent found on another shard
  int64_t null_skipped = 0;    // NULL FK values (vacuously satisfied)
  int64_t orphans = 0;         // no parent anywhere
  std::vector<std::string> orphan_samples;  // first few, for diagnostics

  bool converged() const { return orphans == 0; }
};

class ShardedRepository {
 public:
  // Shard layout comes from options.policies.shard (normalized). With more
  // than one shard, each shard engine runs with enforce_foreign_keys off;
  // call reconcile_foreign_keys() after a load to audit the closure.
  ShardedRepository(Schema schema, EngineOptions options = {});

  int shard_count() const { return static_cast<int>(engines_.size()); }
  Engine& shard(int i) { return *engines_[static_cast<size_t>(i)]; }
  const Engine& shard(int i) const { return *engines_[static_cast<size_t>(i)]; }
  const ShardRouter& router() const { return router_; }
  const Schema& schema() const { return engines_.front()->schema(); }

  std::unique_ptr<client::Session> make_session() {
    return std::make_unique<ShardedSession>(*this);
  }

  // Scatter-gather read handles. A snapshot view reads each shard's pinned
  // snapshot; the Snapshot vector must outlive the view.
  ShardedReadView read_view() const;
  std::vector<Snapshot> pin_snapshots() const;
  ShardedReadView view_at(const std::vector<Snapshot>& snaps) const;

  // Telemetry: committed rows per shard and the skew ratio
  // max(shard rows) / mean(shard rows) — 1.0 is perfectly balanced.
  int64_t total_rows() const;
  std::vector<int64_t> shard_rows() const;
  double shard_skew() const;
  void fill_shard_telemetry(core::ParallelLoadReport& report) const;

  // Post-load FK pass: for every child row on every shard, probe the parent
  // PK on the child's own shard first, then the rest. Fails only on
  // engine-level errors; orphans are reported, not failed, so callers can
  // decide (a mid-recovery reconcile may legitimately find orphans).
  Result<FkReconcileReport> reconcile_foreign_keys() const;

  // Integrity audit of every shard (FK closure stays off on shard engines;
  // pair with reconcile_foreign_keys for the cross-shard closure).
  Status verify_integrity() const;

  // Per-shard WAL access (requires EngineOptions::retain_wal_records).
  std::vector<storage::WalRecord> shard_wal_records(int i) const {
    return shard(i).wal_records();
  }
  // Write dir/shard-NNN/wal.skywal for every shard (dirs created).
  Status dump_wal(const std::string& dir) const;

  // Replay per-shard WAL streams (records[i] -> shard i) into a fresh
  // repository; each shard replays independently through
  // db::recover_from_wal, and the deterministic router guarantees replayed
  // rows land on the shard that logged them. `stats` (optional) aggregates
  // across shards.
  static Result<std::unique_ptr<ShardedRepository>> recover_from_wal(
      const Schema& schema,
      const std::vector<std::vector<storage::WalRecord>>& records,
      EngineOptions options = {}, RecoveryStats* stats = nullptr);
  // Read dir/shard-NNN/wal.skywal (shard count from options.policies.shard)
  // and replay.
  static Result<std::unique_ptr<ShardedRepository>> recover_from_dir(
      const Schema& schema, const std::string& dir, EngineOptions options = {},
      RecoveryStats* stats = nullptr);

 private:
  ShardedRepository(Schema schema, EngineOptions options,
                    std::vector<std::unique_ptr<Engine>> engines);

  static EngineOptions shard_options(const EngineOptions& options,
                                     int shard_count);

  Schema schema_;  // the authoritative copy the router points into
  EngineOptions options_;
  ShardRouter router_;
  std::vector<std::unique_ptr<Engine>> engines_;
};

namespace shard {

// Cone search over a sharded view: the cone cover's trixel-id ranges are
// split at shard boundaries (ShardRouter::segments_for_range), so only
// shards whose slice intersects the cover are probed. With the index depth
// >= the policy depth (the default layout) the per-segment probes are exact
// and the concatenation is byte-identical to the single-shard oracle; a
// coarser index falls back to broadcasting each range and merging by
// trixel key. `shards_probed` (optional) reports how many shards were
// touched — the pruning the bench and tests assert on.
Result<std::vector<Row>> cone_search(const ShardedReadView& view,
                                     const spatial::SpatialTableSpec& spec,
                                     double ra_deg, double dec_deg,
                                     double radius_deg,
                                     OpCosts* costs = nullptr,
                                     int* shards_probed = nullptr);

// Cross-match two tables over sharded views: positions are collected shard
// by shard (shard-major concatenation, so MatchPair indices are
// deterministic for any worker count) and the zone matcher fans out across
// options.fan_out workers exactly as the single-engine overload does.
Result<spatial::XmatchResult> xmatch(const ShardedReadView& view_a,
                                     const spatial::SpatialTableSpec& spec_a,
                                     const ShardedReadView& view_b,
                                     const spatial::SpatialTableSpec& spec_b,
                                     const spatial::XmatchOptions& options,
                                     std::vector<Row>* a_rows_out = nullptr,
                                     std::vector<Row>* b_rows_out = nullptr);

}  // namespace shard

}  // namespace sky::db
