#include "shard/shard_router.h"

#include <algorithm>

#include "db/table.h"
#include "index/key_codec.h"

namespace sky::db {

namespace {

// Rows of one contiguous integer-PK block stay on one shard; sequential-id
// catalogs then split batches into same-shard runs this long.
constexpr int64_t kPkBlockRows = 256;

// Depth encoded in a trixel id without the Result plumbing: ids at depth d
// occupy [2^(3+2d), 2^(4+2d)), so the depth falls out of the bit width.
// Invalid ids (< 8) clamp to depth 0.
int fast_depth_of_id(uint64_t id) {
  if (id < 8) return 0;
  int width = 0;
  while ((id >> width) != 0) ++width;
  return (width - 4) / 2;
}

// splitmix64 finalizer: full avalanche, so every input bit reaches the low
// bits. Plain FNV-1a (or a raw block index) is unusable modulo a small
// shard count — an input byte whose low bits are zero leaves hash % M
// untouched, and survey id spaces are exactly that shape (unit prefixes at
// power-of-two strides).
uint64_t mix64(uint64_t bits) {
  bits = (bits ^ (bits >> 30)) * 0xbf58476d1ce4e5b9ull;
  bits = (bits ^ (bits >> 27)) * 0x94d049bb133111ebull;
  return bits ^ (bits >> 31);
}

// FNV-1a (finalized) over an encoded key — a deterministic spread for
// tables whose PK has no integer column.
uint64_t fnv1a(const std::string& bytes) {
  uint64_t hash = 0xcbf29ce484222325ull;
  for (const char c : bytes) {
    hash ^= static_cast<uint8_t>(c);
    hash *= 0x100000001b3ull;
  }
  return mix64(hash);
}

bool integer_type(ColumnType type) {
  return type == ColumnType::kInt32 || type == ColumnType::kInt64 ||
         type == ColumnType::kTimestamp;
}

int64_t integer_of(const Value& value) {
  return value.is_i32() ? value.as_i32() : value.as_i64();
}

}  // namespace

ShardRouter::ShardRouter(const Schema& schema,
                         const core::ShardPolicy& policy)
    : policy_(policy.normalized()), schema_(&schema) {
  const int shards = policy_.shard_count;
  if (!policy_.boundaries.empty()) {
    boundaries_ = policy_.boundaries;
    std::sort(boundaries_.begin(), boundaries_.end());
  } else if (shards > 1) {
    // Equal slices of the trixel id space [8*4^d, 16*4^d).
    const uint64_t lo = 8ull << (2 * policy_.htm_depth);
    const uint64_t span = lo;  // 16*4^d - 8*4^d == 8*4^d
    boundaries_.reserve(static_cast<size_t>(shards) - 1);
    for (int s = 1; s < shards; ++s) {
      boundaries_.push_back(
          lo + span * static_cast<uint64_t>(s) /
                   static_cast<uint64_t>(shards));
    }
  }

  routes_.resize(static_cast<size_t>(schema.table_count()));
  for (uint32_t tid = 0; tid < routes_.size(); ++tid) {
    const TableDef& def = schema.table(tid);
    TableRoute route;
    // Rules 1-3 (spatial), unless the policy forces block-cyclic.
    if (policy_.routing == core::ShardRouting::kHtmRange) {
      for (const IndexDef& index : def.indexes) {
        if (!index.htm.has_value()) continue;
        route.kind = Kind::kPosition;
        route.ra_column = def.column_index(index.htm->ra_column);
        route.dec_column = def.column_index(index.htm->dec_column);
        break;
      }
      if (route.kind != Kind::kPosition) {
        const int ra = def.column_index("ra");
        const int dec = def.column_index("dec");
        const auto usable = [&def](int col) {
          return col >= 0 &&
                 def.columns[static_cast<size_t>(col)].type ==
                     ColumnType::kDouble &&
                 !def.columns[static_cast<size_t>(col)].nullable;
        };
        if (usable(ra) && usable(dec)) {
          route.kind = Kind::kPosition;
          route.ra_column = ra;
          route.dec_column = dec;
        }
      }
      if (route.kind != Kind::kPosition) {
        const int htmid = def.column_index("htmid");
        if (htmid >= 0 &&
            def.columns[static_cast<size_t>(htmid)].type ==
                ColumnType::kInt64 &&
            !def.columns[static_cast<size_t>(htmid)].nullable) {
          route.kind = Kind::kHtmColumn;
          route.htm_column = htmid;
        }
      }
    }
    // Rule 4: block-cyclic on the first integer PK column; FNV of the
    // first PK column otherwise.
    if (route.kind != Kind::kPosition && route.kind != Kind::kHtmColumn &&
        !def.primary_key.empty()) {
      for (const std::string& pk_name : def.primary_key) {
        const int col = def.column_index(pk_name);
        if (col >= 0 &&
            integer_type(def.columns[static_cast<size_t>(col)].type)) {
          route.kind = Kind::kPkCyclic;
          route.pk_column = col;
          route.pk_type = def.columns[static_cast<size_t>(col)].type;
          break;
        }
      }
      if (route.kind != Kind::kPkCyclic) {
        route.kind = Kind::kPkHash;
        route.pk_column = def.column_index(def.primary_key.front());
        route.pk_type =
            def.columns[static_cast<size_t>(route.pk_column)].type;
      }
    }
    routes_[tid] = route;
  }
}

htm::IdRange ShardRouter::shard_range(int shard) const {
  const uint64_t lo = 8ull << (2 * policy_.htm_depth);
  const uint64_t hi = 16ull << (2 * policy_.htm_depth);
  htm::IdRange range{lo, hi};
  if (shard > 0) range.first = boundaries_[static_cast<size_t>(shard) - 1];
  if (static_cast<size_t>(shard) < boundaries_.size()) {
    range.last = boundaries_[static_cast<size_t>(shard)];
  }
  return range;
}

int ShardRouter::shard_of_policy_trixel(uint64_t trixel) const {
  const auto it =
      std::upper_bound(boundaries_.begin(), boundaries_.end(), trixel);
  return static_cast<int>(it - boundaries_.begin());
}

int ShardRouter::shard_of_trixel(uint64_t trixel_id) const {
  if (policy_.shard_count <= 1) return 0;
  const int depth = fast_depth_of_id(trixel_id);
  uint64_t at_policy = trixel_id;
  if (depth > policy_.htm_depth) {
    at_policy = trixel_id >> (2 * (depth - policy_.htm_depth));
  } else if (depth < policy_.htm_depth) {
    at_policy = trixel_id << (2 * (policy_.htm_depth - depth));
  }
  return shard_of_policy_trixel(at_policy);
}

int ShardRouter::shard_of_position(double ra_deg, double dec_deg) const {
  if (policy_.shard_count <= 1) return 0;
  return shard_of_policy_trixel(
      htm::htm_id_radec(ra_deg, dec_deg, policy_.htm_depth));
}

int ShardRouter::route_by_pk_value(const TableRoute& route,
                                   const Value& value) const {
  const int shards = policy_.shard_count;
  if (shards <= 1 || value.is_null()) return 0;
  if (route.kind == Kind::kPkCyclic && !value.is_str()) {
    const int64_t v = integer_of(value);
    // Floor division so negative ids stay block-contiguous too.
    int64_t block = v / kPkBlockRows;
    if (v < 0 && v % kPkBlockRows != 0) --block;
    // Hash the block index rather than taking it modulo the shard count:
    // survey id spaces are often unit-prefixed (each observation unit's ids
    // start at a huge power-of-two stride), so raw block % M would park
    // every unit's sub-256-row block on the same shard. Hashing spreads any
    // id-space structure while keeping 256-row runs contiguous for the
    // batch run-splitter.
    return static_cast<int>(mix64(static_cast<uint64_t>(block)) %
                            static_cast<uint64_t>(shards));
  }
  index::KeyEncoder encoder;
  append_value_to_key(encoder, value, route.pk_type);
  return static_cast<int>(fnv1a(encoder.take()) %
                          static_cast<uint64_t>(shards));
}

int ShardRouter::shard_of_row(uint32_t table_id, const Row& row) const {
  if (policy_.shard_count <= 1) return 0;
  const TableRoute& route = routes_[table_id];
  switch (route.kind) {
    case Kind::kPosition: {
      const size_t ra_col = static_cast<size_t>(route.ra_column);
      const size_t dec_col = static_cast<size_t>(route.dec_column);
      if (ra_col < row.size() && dec_col < row.size() &&
          row[ra_col].is_f64() && row[dec_col].is_f64()) {
        return shard_of_position(row[ra_col].as_f64(), row[dec_col].as_f64());
      }
      break;  // malformed row: route by PK so the owner reports the error
    }
    case Kind::kHtmColumn: {
      const size_t col = static_cast<size_t>(route.htm_column);
      if (col < row.size() && row[col].is_i64()) {
        return shard_of_trixel(static_cast<uint64_t>(row[col].as_i64()));
      }
      break;
    }
    case Kind::kPkCyclic:
    case Kind::kPkHash:
      break;
  }
  if (route.pk_column >= 0 &&
      static_cast<size_t>(route.pk_column) < row.size()) {
    return route_by_pk_value(route,
                             row[static_cast<size_t>(route.pk_column)]);
  }
  return 0;
}

int ShardRouter::shard_of_batch_row(uint32_t table_id,
                                    const ColumnBatch& batch,
                                    size_t row) const {
  if (policy_.shard_count <= 1) return 0;
  const TableRoute& route = routes_[table_id];
  switch (route.kind) {
    case Kind::kPosition: {
      const size_t ra = static_cast<size_t>(route.ra_column);
      const size_t dec = static_cast<size_t>(route.dec_column);
      if (ra < batch.num_columns() && dec < batch.num_columns() &&
          !batch.is_null(row, ra) && !batch.is_null(row, dec)) {
        return shard_of_position(batch.f64_at(row, ra),
                                 batch.f64_at(row, dec));
      }
      break;
    }
    case Kind::kHtmColumn: {
      const size_t col = static_cast<size_t>(route.htm_column);
      if (col < batch.num_columns() && !batch.is_null(row, col)) {
        return shard_of_trixel(static_cast<uint64_t>(batch.i64_at(row, col)));
      }
      break;
    }
    case Kind::kPkCyclic:
    case Kind::kPkHash:
      break;
  }
  if (route.pk_column >= 0 &&
      static_cast<size_t>(route.pk_column) < batch.num_columns()) {
    return route_by_pk_value(
        route, batch.value(row, static_cast<size_t>(route.pk_column)));
  }
  return 0;
}

bool ShardRouter::spatial(uint32_t table_id) const {
  const Kind kind = routes_[table_id].kind;
  return kind == Kind::kPosition || kind == Kind::kHtmColumn;
}

bool ShardRouter::pk_routable(uint32_t table_id) const {
  const Kind kind = routes_[table_id].kind;
  return kind == Kind::kPkCyclic || kind == Kind::kPkHash;
}

int ShardRouter::shard_of_pk(uint32_t table_id, const Row& pk_values) const {
  if (policy_.shard_count <= 1 || pk_values.empty()) return 0;
  const TableRoute& route = routes_[table_id];
  // The routed PK column is the first integer PK column; locate its
  // position within the PK value tuple (PK order, not column order).
  const TableDef& def = schema_->table(table_id);
  for (size_t i = 0; i < def.primary_key.size() && i < pk_values.size();
       ++i) {
    if (def.column_index(def.primary_key[i]) == route.pk_column) {
      return route_by_pk_value(route, pk_values[i]);
    }
  }
  return route_by_pk_value(route, pk_values.front());
}

std::vector<ShardRouter::Segment> ShardRouter::segments_for_range(
    uint64_t first, uint64_t last, int depth) const {
  std::vector<Segment> segments;
  if (first >= last) return segments;
  if (policy_.shard_count <= 1) {
    segments.push_back(Segment{0, first, last});
    return segments;
  }
  if (depth < policy_.htm_depth) {
    // Coarse ids may straddle shard boundaries: conservatively repeat the
    // whole range on every shard the end ids could reach.
    const int down = 2 * (policy_.htm_depth - depth);
    const uint64_t lo_desc = first << down;
    const uint64_t hi_desc =
        ((last - 1) << down) | ((1ull << down) - 1ull);
    const int s_first = shard_of_policy_trixel(lo_desc);
    const int s_last = shard_of_policy_trixel(hi_desc);
    for (int s = s_first; s <= s_last; ++s) {
      segments.push_back(Segment{s, first, last});
    }
    return segments;
  }
  const int up = 2 * (depth - policy_.htm_depth);
  uint64_t cursor = first;
  while (cursor < last) {
    const int shard = shard_of_policy_trixel(cursor >> up);
    uint64_t end = last;
    if (static_cast<size_t>(shard) < boundaries_.size()) {
      const uint64_t next = boundaries_[static_cast<size_t>(shard)] << up;
      end = std::min(end, next);
    }
    segments.push_back(Segment{shard, cursor, end});
    cursor = end;
  }
  return segments;
}

std::vector<uint64_t> ShardRouter::plan_boundaries(
    std::vector<uint64_t> sample, int shards) {
  std::vector<uint64_t> boundaries;
  if (shards <= 1 || sample.empty()) return boundaries;
  std::sort(sample.begin(), sample.end());
  boundaries.reserve(static_cast<size_t>(shards) - 1);
  for (int s = 1; s < shards; ++s) {
    const size_t at = sample.size() * static_cast<size_t>(s) /
                      static_cast<size_t>(shards);
    boundaries.push_back(sample[at]);
  }
  return boundaries;
}

}  // namespace sky::db
