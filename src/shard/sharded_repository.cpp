#include "shard/sharded_repository.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <utility>

#include "db/table.h"
#include "index/key_codec.h"
#include "storage/wal_file.h"

namespace sky::db {

namespace {

std::string shard_wal_path(const std::string& dir, int shard) {
  char name[32];
  std::snprintf(name, sizeof(name), "shard-%03d", shard);
  return (std::filesystem::path(dir) / name / "wal.skywal").string();
}

}  // namespace

EngineOptions ShardedRepository::shard_options(const EngineOptions& options,
                                               int shard_count) {
  EngineOptions per_shard = options;
  // Cross-shard children defer FK checking to reconcile_foreign_keys();
  // a single-shard layout keeps the engine's inline checks.
  if (shard_count > 1) per_shard.enforce_foreign_keys = false;
  return per_shard;
}

ShardedRepository::ShardedRepository(Schema schema, EngineOptions options)
    : schema_(std::move(schema)),
      options_(options),
      router_(schema_, options.policies.shard.normalized()) {
  options_.policies.shard = router_.policy();
  const int shards = router_.shard_count();
  const EngineOptions per_shard = shard_options(options_, shards);
  engines_.reserve(static_cast<size_t>(shards));
  for (int s = 0; s < shards; ++s) {
    engines_.push_back(std::make_unique<Engine>(schema_, per_shard));
  }
}

ShardedRepository::ShardedRepository(Schema schema, EngineOptions options,
                                     std::vector<std::unique_ptr<Engine>> engines)
    : schema_(std::move(schema)),
      options_(options),
      router_(schema_, options.policies.shard.normalized()),
      engines_(std::move(engines)) {
  options_.policies.shard = router_.policy();
}

ShardedReadView ShardedRepository::read_view() const {
  std::vector<ReadView> views;
  views.reserve(engines_.size());
  for (const auto& engine : engines_) views.push_back(engine->live_view());
  return ShardedReadView(this, std::move(views));
}

std::vector<Snapshot> ShardedRepository::pin_snapshots() const {
  std::vector<Snapshot> snaps;
  snaps.reserve(engines_.size());
  for (const auto& engine : engines_) snaps.push_back(engine->pin_snapshot());
  return snaps;
}

ShardedReadView ShardedRepository::view_at(
    const std::vector<Snapshot>& snaps) const {
  std::vector<ReadView> views;
  const size_t n = std::min(engines_.size(), snaps.size());
  views.reserve(n);
  for (size_t s = 0; s < n; ++s) {
    views.push_back(engines_[s]->view_at(snaps[s]));
  }
  return ShardedReadView(this, std::move(views));
}

int64_t ShardedRepository::total_rows() const {
  int64_t total = 0;
  for (const auto& engine : engines_) total += engine->total_rows();
  return total;
}

std::vector<int64_t> ShardedRepository::shard_rows() const {
  std::vector<int64_t> rows;
  rows.reserve(engines_.size());
  for (const auto& engine : engines_) rows.push_back(engine->total_rows());
  return rows;
}

double ShardedRepository::shard_skew() const {
  const std::vector<int64_t> rows = shard_rows();
  int64_t total = 0;
  int64_t max_rows = 0;
  for (const int64_t r : rows) {
    total += r;
    max_rows = std::max(max_rows, r);
  }
  if (total <= 0) return 1.0;  // empty repository is vacuously balanced
  const double mean =
      static_cast<double>(total) / static_cast<double>(rows.size());
  return static_cast<double>(max_rows) / mean;
}

void ShardedRepository::fill_shard_telemetry(
    core::ParallelLoadReport& report) const {
  report.shard_rows = shard_rows();
  report.shard_skew = shard_skew();
}

Result<FkReconcileReport> ShardedRepository::reconcile_foreign_keys() const {
  constexpr size_t kOrphanSamples = 8;
  FkReconcileReport report;
  const ShardedReadView view = read_view();
  const auto& tables = schema_.tables();
  for (uint32_t child_id = 0; child_id < tables.size(); ++child_id) {
    const TableDef& child_def = tables[static_cast<size_t>(child_id)];
    for (const ForeignKey& fk : child_def.foreign_keys) {
      auto parent_id = schema_.table_id(fk.parent_table);
      if (!parent_id.is_ok()) return parent_id.status();
      const TableDef& parent_def =
          schema_.table(parent_id.value());
      ++report.edges_checked;
      for (int home = 0; home < shard_count(); ++home) {
        const std::vector<Row> children = view.shard_view(home).scan_collect(
            child_id, [](const Row&) { return true; });
        for (const Row& child : children) {
          ++report.rows_checked;
          const std::optional<std::string> probe =
              Table::encode_fk_probe(child_def, fk, child, parent_def);
          if (!probe.has_value()) {
            ++report.null_skipped;
            continue;
          }
          const std::string hi = index::encoded_key_successor(*probe);
          bool found = false;
          // Probe the child's own shard first: co-located parents (the
          // common case under position routing) never leave the shard.
          for (int step = 0; step < shard_count() && !found; ++step) {
            const int s = (home + step) % shard_count();
            auto hit = view.shard_view(s).pk_encoded_range(parent_id.value(),
                                                           *probe, hi);
            if (!hit.is_ok()) return hit.status();
            if (!hit.value().empty()) {
              found = true;
              if (step == 0) {
                ++report.local_hits;
              } else {
                ++report.remote_hits;
              }
            }
          }
          if (!found) {
            ++report.orphans;
            if (report.orphan_samples.size() < kOrphanSamples) {
              std::string values;
              for (const std::string& column : fk.columns) {
                const int c = child_def.column_index(column);
                if (!values.empty()) values += ", ";
                values += c >= 0 ? child[static_cast<size_t>(c)].to_display()
                                 : "?";
              }
              report.orphan_samples.push_back(
                  child_def.name + " -> " + fk.parent_table + " (shard " +
                  std::to_string(home) + "): (" + values + ")");
            }
          }
        }
      }
    }
  }
  return report;
}

Status ShardedRepository::verify_integrity() const {
  for (int s = 0; s < shard_count(); ++s) {
    Status status = shard(s).verify_integrity();
    if (!status.is_ok()) {
      return Status(status.code(), "shard " + std::to_string(s) + ": " +
                                       std::string(status.message()));
    }
  }
  return Status::ok();
}

Status ShardedRepository::dump_wal(const std::string& dir) const {
  for (int s = 0; s < shard_count(); ++s) {
    const std::string path = shard_wal_path(dir, s);
    std::error_code ec;
    std::filesystem::create_directories(
        std::filesystem::path(path).parent_path(), ec);
    if (ec) {
      return Status(ErrorCode::kIoError,
                    "create shard WAL dir: " + ec.message());
    }
    Status status = storage::write_wal_file(path, shard(s).wal_records());
    if (!status.is_ok()) return status;
  }
  return Status::ok();
}

Result<std::unique_ptr<ShardedRepository>> ShardedRepository::recover_from_wal(
    const Schema& schema,
    const std::vector<std::vector<storage::WalRecord>>& records,
    EngineOptions options, RecoveryStats* stats) {
  core::ShardPolicy policy = options.policies.shard.normalized();
  if (static_cast<size_t>(policy.shard_count) != records.size()) {
    return Status(ErrorCode::kInvalidArgument,
                  "recover_from_wal: " + std::to_string(records.size()) +
                      " WAL streams for " +
                      std::to_string(policy.shard_count) + " shards");
  }
  options.policies.shard = policy;
  const EngineOptions per_shard = shard_options(options, policy.shard_count);
  std::vector<std::unique_ptr<Engine>> engines;
  engines.reserve(records.size());
  for (size_t s = 0; s < records.size(); ++s) {
    RecoveryStats shard_stats;
    auto engine = db::recover_from_wal(schema, records[s], per_shard,
                                       stats != nullptr ? &shard_stats : nullptr);
    if (!engine.is_ok()) {
      return Status(engine.status().code(),
                    "shard " + std::to_string(s) + ": " +
                        std::string(engine.status().message()));
    }
    if (stats != nullptr) {
      stats->records_scanned += shard_stats.records_scanned;
      stats->transactions_committed += shard_stats.transactions_committed;
      stats->transactions_discarded += shard_stats.transactions_discarded;
      stats->rows_replayed += shard_stats.rows_replayed;
      stats->rows_discarded += shard_stats.rows_discarded;
    }
    engines.push_back(std::move(*engine));
  }
  return std::unique_ptr<ShardedRepository>(
      new ShardedRepository(schema, options, std::move(engines)));
}

Result<std::unique_ptr<ShardedRepository>> ShardedRepository::recover_from_dir(
    const Schema& schema, const std::string& dir, EngineOptions options,
    RecoveryStats* stats) {
  const core::ShardPolicy policy = options.policies.shard.normalized();
  std::vector<std::vector<storage::WalRecord>> records;
  records.reserve(static_cast<size_t>(policy.shard_count));
  for (int s = 0; s < policy.shard_count; ++s) {
    auto read = storage::read_wal_file(shard_wal_path(dir, s));
    if (!read.is_ok()) {
      return Status(read.status().code(),
                    "shard " + std::to_string(s) + ": " +
                        std::string(read.status().message()));
    }
    records.push_back(std::move(read.value().records));
  }
  return recover_from_wal(schema, records, options, stats);
}

}  // namespace sky::db
