#include <algorithm>
#include <chrono>
#include <utility>

#include "shard/sharded_repository.h"

namespace sky::db {

namespace {

Nanos real_now() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Field-by-field sum of one shard session's stats into the aggregate.
void add_stats(client::SessionStats& agg, const client::SessionStats& s) {
  agg.db_calls += s.db_calls;
  agg.batch_calls += s.batch_calls;
  agg.single_calls += s.single_calls;
  agg.commits += s.commits;
  agg.rows_sent += s.rows_sent;
  agg.rows_applied += s.rows_applied;
  agg.failed_calls += s.failed_calls;
  agg.client_time += s.client_time;
  agg.network_time += s.network_time;
  agg.server_time += s.server_time;
  agg.lock_wait_time += s.lock_wait_time;
  agg.io_time += s.io_time;
  agg.stall_time += s.stall_time;
  agg.txn_slot_wait_time += s.txn_slot_wait_time;
  agg.itl_wait_time += s.itl_wait_time;
  agg.query_lane_wait_time += s.query_lane_wait_time;
  agg.commit_flushes_led += s.commit_flushes_led;
  agg.commit_piggybacks += s.commit_piggybacks;
  agg.commit_leader_wait += s.commit_leader_wait;
  agg.zone_scan_rows += s.zone_scan_rows;
  agg.xmatch_candidates += s.xmatch_candidates;
  agg.xmatch_pairs += s.xmatch_pairs;
}

}  // namespace

const client::SessionStats ShardedSession::kEmptyStats{};

ShardedSession::ShardedSession(ShardedRepository& repo)
    : repo_(repo), start_real_(real_now()) {
  sessions_.resize(static_cast<size_t>(repo.shard_count()));
}

client::Session& ShardedSession::session_for(int shard) {
  auto& slot = sessions_[static_cast<size_t>(shard)];
  if (slot == nullptr) {
    slot = std::make_unique<client::DirectSession>(repo_.shard(shard));
  }
  return *slot;
}

Result<uint32_t> ShardedSession::prepare_insert(std::string_view table_name) {
  // Validation only needs the schema; shard sessions open lazily on first
  // write so an M-shard session costs nothing on shards it never touches.
  return repo_.schema().table_id(table_name);
}

client::BatchOutcome ShardedSession::execute_batch(uint32_t table,
                                                   std::span<const Row> rows) {
  client::BatchOutcome outcome;
  const ShardRouter& router = repo_.router();
  size_t run_start = 0;
  while (run_start < rows.size()) {
    // Longest contiguous run of rows owned by one shard, applied in the
    // original order — the JDBC prefix contract survives the split because
    // a failure inside a run stops before any later run is sent.
    const int shard = router.shard_of_row(table, rows[run_start]);
    size_t run_end = run_start + 1;
    while (run_end < rows.size() &&
           router.shard_of_row(table, rows[run_end]) == shard) {
      ++run_end;
    }
    client::BatchOutcome run = session_for(shard).execute_batch(
        table, rows.subspan(run_start, run_end - run_start));
    outcome.applied += run.applied;
    if (run.error.has_value()) {
      outcome.error = run.error;
      outcome.error->row_index += run_start;
      return outcome;
    }
    run_start = run_end;
  }
  return outcome;
}

client::BatchOutcome ShardedSession::execute_column_batch(
    uint32_t table, const ColumnBatch& batch, size_t first, size_t count) {
  if (first > batch.size()) first = batch.size();
  count = std::min(count, batch.size() - first);
  client::BatchOutcome outcome;
  const ShardRouter& router = repo_.router();
  size_t run_start = first;
  const size_t end = first + count;
  while (run_start < end) {
    const int shard = router.shard_of_batch_row(table, batch, run_start);
    size_t run_end = run_start + 1;
    while (run_end < end &&
           router.shard_of_batch_row(table, batch, run_end) == shard) {
      ++run_end;
    }
    // Sub-range of the same ColumnBatch: the owning shard takes the
    // one-latch columnar fast path, nothing is materialized here.
    client::BatchOutcome run = session_for(shard).execute_column_batch(
        table, batch, run_start, run_end - run_start);
    outcome.applied += run.applied;
    if (run.error.has_value()) {
      outcome.error = run.error;
      outcome.error->row_index += run_start - first;
      return outcome;
    }
    run_start = run_end;
  }
  return outcome;
}

Status ShardedSession::execute_single(uint32_t table, const Row& row) {
  return session_for(repo_.router().shard_of_row(table, row))
      .execute_single(table, row);
}

Status ShardedSession::commit() {
  // Commit every shard with an open transaction, shard order. There is no
  // cross-shard atomic commit: a failure is reported after the remaining
  // shards still commit (leaving no stragglers), first error wins.
  Status first_error = Status::ok();
  for (auto& session : sessions_) {
    if (session == nullptr) continue;
    Status status = session->commit();
    if (!status.ok() && first_error.ok()) first_error = status;
  }
  return first_error;
}

void ShardedSession::client_compute(Nanos duration) {
  // Real sessions ignore modeled compute; mirror DirectSession.
  (void)duration;
}

void ShardedSession::note_buffered_rows(int64_t rows, int64_t footprint_bytes,
                                        bool columnar) {
  (void)rows;
  (void)footprint_bytes;
  (void)columnar;
}

Nanos ShardedSession::now() const { return real_now() - start_real_; }

const client::SessionStats& ShardedSession::stats() const {
  agg_ = client::SessionStats{};
  for (const auto& session : sessions_) {
    if (session != nullptr) add_stats(agg_, session->stats());
  }
  return agg_;
}

const client::SessionStats& ShardedSession::shard_stats(int shard) const {
  const auto& session = sessions_[static_cast<size_t>(shard)];
  return session != nullptr ? session->stats() : kEmptyStats;
}

}  // namespace sky::db
