#include <algorithm>
#include <utility>

#include "db/table.h"
#include "htm/htm.h"
#include "index/key_codec.h"
#include "shard/sharded_repository.h"

namespace sky::db {

namespace {

Status empty_view_error() {
  return Status(ErrorCode::kFailedPrecondition,
                "query on an empty ShardedReadView");
}

// Re-encode a row's primary key from the table definition (the comparison
// key the engine's PK tree ordered each shard's run by).
std::string encode_pk_of(const TableDef& def, const Row& row) {
  index::KeyEncoder encoder;
  for (const std::string& column : def.primary_key) {
    const int c = def.column_index(column);
    append_value_to_key(encoder, row[static_cast<size_t>(c)],
                        def.columns[static_cast<size_t>(c)].type);
  }
  return encoder.take();
}

// Re-encode a row's indexed-value key (no row-id suffix — per-shard row ids
// are not comparable across shards, so merges order by value only).
std::string encode_index_value_of(const TableDef& def, const IndexDef& index,
                                  const Row& row) {
  index::KeyEncoder encoder;
  if (index.htm.has_value()) {
    const int ra = def.column_index(index.htm->ra_column);
    const int dec = def.column_index(index.htm->dec_column);
    encoder.append_int64(static_cast<int64_t>(
        htm::htm_id_radec(row[static_cast<size_t>(ra)].as_f64(),
                          row[static_cast<size_t>(dec)].as_f64(),
                          index.htm->depth)));
  } else {
    for (const std::string& column : index.columns) {
      const int c = def.column_index(column);
      append_value_to_key(encoder, row[static_cast<size_t>(c)],
                          def.columns[static_cast<size_t>(c)].type);
    }
  }
  return encoder.take();
}

const IndexDef* find_index(const TableDef& def, std::string_view name) {
  for (const IndexDef& index : def.indexes) {
    if (index.name == name) return &index;
  }
  return nullptr;
}

}  // namespace

std::vector<Row> ShardedReadView::merge_by_key(
    std::vector<std::vector<Row>> per_shard,
    const std::function<std::string(const Row&)>& key) {
  size_t total = 0;
  std::vector<std::vector<std::string>> keys(per_shard.size());
  for (size_t s = 0; s < per_shard.size(); ++s) {
    keys[s].reserve(per_shard[s].size());
    for (const Row& row : per_shard[s]) keys[s].push_back(key(row));
    total += per_shard[s].size();
  }
  std::vector<Row> out;
  out.reserve(total);
  std::vector<size_t> pos(per_shard.size(), 0);
  while (out.size() < total) {
    // Smallest current key wins; ties go to the lowest shard (shard-major).
    int best = -1;
    for (size_t s = 0; s < per_shard.size(); ++s) {
      if (pos[s] >= per_shard[s].size()) continue;
      if (best < 0 ||
          keys[s][pos[s]] < keys[static_cast<size_t>(best)]
                                [pos[static_cast<size_t>(best)]]) {
        best = static_cast<int>(s);
      }
    }
    const size_t b = static_cast<size_t>(best);
    out.push_back(std::move(per_shard[b][pos[b]]));
    ++pos[b];
  }
  return out;
}

int64_t ShardedReadView::row_count(uint32_t table_id) const {
  int64_t total = 0;
  for (const ReadView& view : views_) total += view.row_count(table_id);
  return total;
}

Result<Row> ShardedReadView::pk_lookup(uint32_t table_id,
                                       const Row& pk_values) const {
  if (!valid()) return empty_view_error();
  const ShardRouter& router = repo_->router();
  if (router.pk_routable(table_id)) {
    // The PK determines the owner: one probe, no scatter.
    const int shard = router.shard_of_pk(table_id, pk_values);
    return views_[static_cast<size_t>(shard)].pk_lookup(table_id, pk_values);
  }
  // Position-routed table: the PK alone does not name the shard. Probe in
  // shard order, short-circuiting on the first hit (PKs are unique, so at
  // most one shard answers).
  Status miss = Status::ok();
  for (const ReadView& view : views_) {
    auto row = view.pk_lookup(table_id, pk_values);
    if (row.is_ok()) return row;
    if (row.status().code() != ErrorCode::kNotFound) return row.status();
    miss = row.status();
  }
  return miss;
}

Result<std::vector<Row>> ShardedReadView::pk_range(uint32_t table_id,
                                                   const Row& lo,
                                                   const Row& hi) const {
  if (!valid()) return empty_view_error();
  std::vector<std::vector<Row>> per_shard;
  per_shard.reserve(views_.size());
  for (const ReadView& view : views_) {
    SKY_ASSIGN_OR_RETURN(std::vector<Row> rows,
                         view.pk_range(table_id, lo, hi));
    per_shard.push_back(std::move(rows));
  }
  const TableDef& def = repo_->schema().table(table_id);
  return merge_by_key(std::move(per_shard), [&def](const Row& row) {
    return encode_pk_of(def, row);
  });
}

Result<std::vector<Row>> ShardedReadView::index_range(
    uint32_t table_id, std::string_view index_name, const Row& lo,
    const Row& hi) const {
  if (!valid()) return empty_view_error();
  std::vector<std::vector<Row>> per_shard;
  per_shard.reserve(views_.size());
  for (const ReadView& view : views_) {
    SKY_ASSIGN_OR_RETURN(std::vector<Row> rows,
                         view.index_range(table_id, index_name, lo, hi));
    per_shard.push_back(std::move(rows));
  }
  const TableDef& def = repo_->schema().table(table_id);
  const IndexDef* index = find_index(def, index_name);
  if (index == nullptr) {
    return Status(ErrorCode::kNotFound, "no index named " +
                                            std::string(index_name));
  }
  return merge_by_key(std::move(per_shard), [&def, index](const Row& row) {
    return encode_index_value_of(def, *index, row);
  });
}

Result<std::vector<Row>> ShardedReadView::pk_encoded_range(
    uint32_t table_id, const std::string& lo, const std::string& hi) const {
  if (!valid()) return empty_view_error();
  std::vector<std::vector<Row>> per_shard;
  per_shard.reserve(views_.size());
  for (const ReadView& view : views_) {
    SKY_ASSIGN_OR_RETURN(std::vector<Row> rows,
                         view.pk_encoded_range(table_id, lo, hi));
    per_shard.push_back(std::move(rows));
  }
  const TableDef& def = repo_->schema().table(table_id);
  return merge_by_key(std::move(per_shard), [&def](const Row& row) {
    return encode_pk_of(def, row);
  });
}

Result<std::vector<Row>> ShardedReadView::index_encoded_range(
    uint32_t table_id, std::string_view index_name, const std::string& lo,
    const std::string& hi) const {
  if (!valid()) return empty_view_error();
  std::vector<std::vector<Row>> per_shard;
  per_shard.reserve(views_.size());
  for (const ReadView& view : views_) {
    SKY_ASSIGN_OR_RETURN(
        std::vector<Row> rows,
        view.index_encoded_range(table_id, index_name, lo, hi));
    per_shard.push_back(std::move(rows));
  }
  const TableDef& def = repo_->schema().table(table_id);
  const IndexDef* index = find_index(def, index_name);
  if (index == nullptr) {
    return Status(ErrorCode::kNotFound, "no index named " +
                                            std::string(index_name));
  }
  return merge_by_key(std::move(per_shard), [&def, index](const Row& row) {
    return encode_index_value_of(def, *index, row);
  });
}

std::vector<Row> ShardedReadView::scan_collect(
    uint32_t table_id, const std::function<bool(const Row&)>& pred,
    OpCosts* costs) const {
  std::vector<Row> out;
  for (const ReadView& view : views_) {
    std::vector<Row> rows = view.scan_collect(table_id, pred, costs);
    out.insert(out.end(), std::make_move_iterator(rows.begin()),
               std::make_move_iterator(rows.end()));
  }
  return out;
}

Status ShardedReadView::scan_heap(
    uint32_t table_id,
    const std::function<void(storage::SlotId, std::string_view)>& fn) const {
  if (!valid()) return empty_view_error();
  for (const ReadView& view : views_) {
    SKY_RETURN_IF_ERROR(view.scan_heap(table_id, fn));
  }
  return Status::ok();
}

namespace shard {

Result<std::vector<Row>> cone_search(const ShardedReadView& view,
                                     const spatial::SpatialTableSpec& spec,
                                     double ra_deg, double dec_deg,
                                     double radius_deg, OpCosts* costs,
                                     int* shards_probed) {
  if (!view.valid()) return empty_view_error();
  const ShardRouter& router = view.repository().router();
  const htm::Vec3 center = htm::radec_to_vector(ra_deg, dec_deg);
  const std::vector<htm::IdRange> cover =
      htm::cone_cover(center, radius_deg, spec.htm_depth);
  // At index depth >= policy depth every trixel's rows live on exactly one
  // shard, so the segment walk is exact and already key-ascending.
  const bool exact = spec.htm_depth >= router.policy().htm_depth;
  std::vector<char> touched(static_cast<size_t>(view.shard_count()), 0);
  std::vector<Row> out;
  const auto filter_append = [&](std::vector<Row> rows) {
    for (Row& row : rows) {
      const double row_ra = row[static_cast<size_t>(spec.ra_column)].as_f64();
      const double row_dec =
          row[static_cast<size_t>(spec.dec_column)].as_f64();
      if (costs != nullptr) {
        ++costs->zone_scan_rows;
        ++costs->xmatch_candidates;
      }
      if (htm::angular_distance_deg(center,
                                    htm::radec_to_vector(row_ra, row_dec)) <=
          radius_deg) {
        if (costs != nullptr) ++costs->xmatch_pairs;
        out.push_back(std::move(row));
      }
    }
  };
  for (const htm::IdRange& range : cover) {
    const std::vector<ShardRouter::Segment> segments =
        router.segments_for_range(range.first, range.last, spec.htm_depth);
    if (exact) {
      for (const ShardRouter::Segment& seg : segments) {
        touched[static_cast<size_t>(seg.shard)] = 1;
        index::KeyEncoder lo;
        index::KeyEncoder hi;
        lo.append_int64(static_cast<int64_t>(seg.first));
        hi.append_int64(static_cast<int64_t>(seg.last));
        SKY_ASSIGN_OR_RETURN(
            std::vector<Row> rows,
            view.shard_view(seg.shard).index_encoded_range(
                spec.table_id, spec.htm_index, lo.take(), hi.take()));
        filter_append(std::move(rows));
      }
    } else {
      // Index coarser than the shard layout: a trixel can straddle shards,
      // so broadcast the range to every candidate shard and merge by
      // trixel key before filtering (keeps the cover-range-major,
      // key-ascending order of the single-shard path).
      std::vector<std::pair<std::string, Row>> keyed;
      for (const ShardRouter::Segment& seg : segments) {
        touched[static_cast<size_t>(seg.shard)] = 1;
        index::KeyEncoder lo;
        index::KeyEncoder hi;
        lo.append_int64(static_cast<int64_t>(seg.first));
        hi.append_int64(static_cast<int64_t>(seg.last));
        SKY_ASSIGN_OR_RETURN(
            std::vector<Row> rows,
            view.shard_view(seg.shard).index_encoded_range(
                spec.table_id, spec.htm_index, lo.take(), hi.take()));
        for (Row& row : rows) {
          index::KeyEncoder key;
          key.append_int64(static_cast<int64_t>(htm::htm_id_radec(
              row[static_cast<size_t>(spec.ra_column)].as_f64(),
              row[static_cast<size_t>(spec.dec_column)].as_f64(),
              spec.htm_depth)));
          keyed.emplace_back(key.take(), std::move(row));
        }
      }
      std::stable_sort(keyed.begin(), keyed.end(),
                       [](const auto& a, const auto& b) {
                         return a.first < b.first;
                       });
      std::vector<Row> merged;
      merged.reserve(keyed.size());
      for (auto& [key, row] : keyed) merged.push_back(std::move(row));
      filter_append(std::move(merged));
    }
  }
  if (shards_probed != nullptr) {
    *shards_probed = static_cast<int>(
        std::count(touched.begin(), touched.end(), static_cast<char>(1)));
  }
  return out;
}

Result<spatial::XmatchResult> xmatch(const ShardedReadView& view_a,
                                     const spatial::SpatialTableSpec& spec_a,
                                     const ShardedReadView& view_b,
                                     const spatial::SpatialTableSpec& spec_b,
                                     const spatial::XmatchOptions& options,
                                     std::vector<Row>* a_rows_out,
                                     std::vector<Row>* b_rows_out) {
  if (!view_a.valid() || !view_b.valid()) return empty_view_error();
  const auto collect = [](const ShardedReadView& view,
                          const spatial::SpatialTableSpec& spec,
                          std::vector<double>& ra, std::vector<double>& dec,
                          std::vector<Row>* rows_out) {
    // Shard-major concatenation: deterministic for any worker count, and
    // MatchPair indices resolve against exactly this order.
    std::vector<Row> rows =
        view.scan_collect(spec.table_id, [](const Row&) { return true; });
    ra.reserve(rows.size());
    dec.reserve(rows.size());
    for (const Row& row : rows) {
      ra.push_back(row[static_cast<size_t>(spec.ra_column)].as_f64());
      dec.push_back(row[static_cast<size_t>(spec.dec_column)].as_f64());
    }
    if (rows_out != nullptr) *rows_out = std::move(rows);
  };
  std::vector<double> a_ra;
  std::vector<double> a_dec;
  std::vector<double> b_ra;
  std::vector<double> b_dec;
  collect(view_a, spec_a, a_ra, a_dec, a_rows_out);
  collect(view_b, spec_b, b_ra, b_dec, b_rows_out);
  return spatial::xmatch_arrays(a_ra, a_dec, b_ra, b_dec, options);
}

}  // namespace shard

}  // namespace sky::db
