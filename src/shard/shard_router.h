// ShardRouter: which shard owns a row.
//
// The repository is partitioned across M independent engines by HTM trixel
// range (core::ShardPolicy): trixel ids at the policy depth form one
// contiguous integer space, each shard owns one contiguous slice of it, and
// a row routes by the slice containing its position's trixel. Because a
// trixel's descendants share its id as a bit prefix (htm/htm.h), any index
// or column keyed at a depth >= the policy depth maps to exactly one shard
// by ancestor — which is what lets scatter-gather cone searches split an
// index probe range into per-shard segments instead of broadcasting.
//
// Per-table routing resolution (ShardRouting::kHtmRange):
//   1. a declared HTM index (IndexDef::htm)      -> by (ra, dec) position
//   2. NOT NULL double columns named "ra"/"dec"  -> by (ra, dec) position
//   3. a NOT NULL int64 column named "htmid"     -> by trixel ancestor
//   4. anything else -> block-cyclic on the first integer primary-key
//      column: 256-row id blocks route by a hash of the block index, so
//      contiguous ids stay on one shard (sequential-id catalogs split
//      batches into long same-shard runs) while unit-prefixed id spaces
//      still spread evenly. PKs with no integer column take an FNV hash of
//      the encoded first PK column.
// ShardRouting::kPkCyclic forces rule 4 for every table (the balance-only
// baseline: spatial queries must broadcast).
//
// Boundaries default to equal slices of the trixel id space;
// plan_boundaries() derives equal-frequency boundaries from a position
// sample instead — the JHU parallel-zone layout, where partitions follow
// the observed data distribution, not the raw id space.
#pragma once

#include <cstdint>
#include <vector>

#include "core/shard_policy.h"
#include "db/column_batch.h"
#include "db/row.h"
#include "db/schema.h"
#include "htm/htm.h"

namespace sky::db {

class ShardRouter {
 public:
  ShardRouter(const Schema& schema, const core::ShardPolicy& policy);

  int shard_count() const { return policy_.shard_count; }
  const core::ShardPolicy& policy() const { return policy_; }

  // The contiguous trixel slice (policy depth) owned by `shard`.
  htm::IdRange shard_range(int shard) const;

  // Shard owning a trixel id at any depth >= the policy depth (mapped by
  // ancestor; ids at a shallower depth route by their first descendant).
  int shard_of_trixel(uint64_t trixel_id) const;
  int shard_of_position(double ra_deg, double dec_deg) const;

  // Route one row of `table_id` (full row / columnar row).
  int shard_of_row(uint32_t table_id, const Row& row) const;
  int shard_of_batch_row(uint32_t table_id, const ColumnBatch& batch,
                         size_t row) const;

  // Is the table routed by sky position (rules 1-3)? Spatially routed
  // tables keep each index-depth trixel's rows on one shard.
  bool spatial(uint32_t table_id) const;
  // Can the owner be derived from the primary key alone? True for
  // block-cyclic tables — point lookups go straight to one shard instead of
  // probing all of them.
  bool pk_routable(uint32_t table_id) const;
  int shard_of_pk(uint32_t table_id, const Row& pk_values) const;

  // Split [first, last) — trixel ids at `depth` — into per-shard segments
  // in ascending id order. With depth >= the policy depth the segments are
  // exact (each id belongs to one shard); a shallower depth falls back to
  // repeating the whole range on every possibly-owning shard (the caller
  // must merge by key).
  struct Segment {
    int shard = 0;
    uint64_t first = 0;  // inclusive
    uint64_t last = 0;   // exclusive
  };
  std::vector<Segment> segments_for_range(uint64_t first, uint64_t last,
                                          int depth) const;

  // Equal-frequency partition boundaries (size `shards` - 1, for
  // ShardPolicy::boundaries) from a sample of trixel ids at the policy
  // depth: each slice receives ~the same number of sampled trixels.
  static std::vector<uint64_t> plan_boundaries(std::vector<uint64_t> sample,
                                               int shards);

 private:
  enum class Kind { kPosition, kHtmColumn, kPkCyclic, kPkHash };
  struct TableRoute {
    Kind kind = Kind::kPkHash;
    int ra_column = -1;   // kPosition
    int dec_column = -1;  // kPosition
    int htm_column = -1;  // kHtmColumn
    int pk_column = -1;   // kPkCyclic: the first integer PK column
    ColumnType pk_type = ColumnType::kInt64;
  };

  int shard_of_policy_trixel(uint64_t trixel_at_policy_depth) const;
  int route_by_pk_value(const TableRoute& route, const Value& value) const;

  core::ShardPolicy policy_;
  const Schema* schema_;
  // Range starts of shards 1..M-1 (trixel ids at the policy depth).
  std::vector<uint64_t> boundaries_;
  std::vector<TableRoute> routes_;  // by table id
};

}  // namespace sky::db
