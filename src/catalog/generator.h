// Synthetic Palomar-Quest catalog data.
//
// Stands in for the real survey's derived catalog files (the paper's data
// source we cannot have). Reproduces what the loader actually sees:
//   * tagged ASCII rows, multiple tables interleaved in one file, with the
//     paper's pattern (frame -> 4 apertures, object -> 4 fingers, ...),
//   * 28 self-contained files per observation whose sizes vary (the load
//     balancing motivation in section 4.4),
//   * primary keys emitted in ascending order ("presorted as a byproduct of
//     extraction", section 4.5.4) with an option to scramble them,
//   * injectable data errors — malformed numerics, missing fields,
//     duplicate primary keys, dangling foreign keys, out-of-range values —
//     at a controlled rate ("missing and/or invalid values ... errors are
//     detected during bulk loads fairly often", section 4.3).
// Everything is deterministic from the seed.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"

namespace sky::catalog {

// Relative frequency of each injected error kind (normalized internally).
struct ErrorMix {
  double bad_numeric = 0.35;   // "###" in a numeric field -> parse error
  double missing_field = 0.15; // truncated row -> parse error
  double duplicate_pk = 0.25;  // repeated key -> PK violation at the server
  double dangling_fk = 0.10;   // nonexistent parent -> FK violation
  double out_of_range = 0.15;  // dec=123 etc. -> check violation
};

struct FileSpec {
  std::string name;
  uint64_t seed = 1;
  // Distinct per file; every id in the file derives from it, so files are
  // self-contained and can load in parallel in any order.
  int64_t unit_id = 0;
  int64_t target_bytes = 256 * 1024;
  int ccds = 4;
  double error_rate = 0.0;
  ErrorMix error_mix{};
  // By default errors are injected only into high-volume detail rows (OBJ,
  // FNG, MOM, FLG, DET, MAT): corrupting a structural header (OBS, CCD,
  // FRM) cascades to everything beneath it — realistic, but it turns the
  // error-rate dial into a cliff. Set false to corrupt any row.
  bool restrict_errors_to_detail_rows = true;
  // Scramble object primary keys (breaks the presort; ablation 4.5.4).
  bool shuffle_object_ids = false;
};

struct GeneratedFile {
  std::string text;
  int64_t data_lines = 0;
  int64_t injected_errors = 0;
  // Clean (uncorrupted) rows emitted per table name.
  std::map<std::string, int64_t> clean_rows_per_table;
};

class CatalogGenerator {
 public:
  // The reference-table seed file (surveys, observers, filters, pipelines,
  // pipeline params, sky regions) every repository load starts from.
  static GeneratedFile reference_file();

  // One nightly catalog file.
  static GeneratedFile generate(const FileSpec& spec);

  // The 28 file specs of one observation, sizes varying deterministically
  // around total_bytes / 28 (between roughly 0.4x and 1.9x the mean).
  static std::vector<FileSpec> observation_specs(uint64_t seed,
                                                 int64_t night_id,
                                                 int64_t total_bytes,
                                                 double error_rate = 0.0);

  // Reference-table id domains (generator and tests share them).
  static constexpr int64_t kSurveyCount = 2;
  static constexpr int64_t kObserverCount = 5;
  static constexpr int kFilterCount = 4;
  static constexpr int64_t kPipelineCount = 2;
  static constexpr int64_t kRegionCount = 8;
};

}  // namespace sky::catalog
