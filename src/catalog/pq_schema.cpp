#include "catalog/pq_schema.h"

#include <cassert>

namespace sky::catalog {

using db::ColumnType;
using db::ForeignKey;
using db::IndexDef;
using db::CheckConstraint;
using db::TableDef;

namespace {

TableDef table(std::string name) {
  TableDef def;
  def.name = std::move(name);
  return def;
}

}  // namespace

db::Schema make_pq_schema() {
  db::Schema schema;
  auto add = [&schema](TableDef def) {
    const Status status = schema.add_table(std::move(def));
    assert(status.is_ok());
    (void)status;
  };

  // ------------------------------------------------------- reference data
  {
    TableDef t = table("surveys");
    t.col("survey_id", ColumnType::kInt64, false)
        .col("name", ColumnType::kString, false)
        .col("start_time", ColumnType::kTimestamp);
    t.primary_key = {"survey_id"};
    add(std::move(t));
  }
  {
    TableDef t = table("observers");
    t.col("observer_id", ColumnType::kInt64, false)
        .col("name", ColumnType::kString, false)
        .col("institution", ColumnType::kString);
    t.primary_key = {"observer_id"};
    add(std::move(t));
  }
  {
    TableDef t = table("filters");
    t.col("filter_id", ColumnType::kInt32, false)
        .col("name", ColumnType::kString, false)
        .col("wavelength_nm", ColumnType::kDouble);
    t.primary_key = {"filter_id"};
    t.checks.push_back(CheckConstraint{"wavelength_nm", 100.0, 3000.0});
    add(std::move(t));
  }
  {
    TableDef t = table("pipelines");
    t.col("pipeline_id", ColumnType::kInt64, false)
        .col("name", ColumnType::kString, false)
        .col("version", ColumnType::kString);
    t.primary_key = {"pipeline_id"};
    add(std::move(t));
  }
  {
    TableDef t = table("pipeline_params");
    t.col("param_id", ColumnType::kInt64, false)
        .col("pipeline_id", ColumnType::kInt64, false)
        .col("name", ColumnType::kString, false)
        .col("value", ColumnType::kDouble);
    t.primary_key = {"param_id"};
    t.foreign_keys.push_back(ForeignKey{{"pipeline_id"}, "pipelines"});
    add(std::move(t));
  }
  {
    TableDef t = table("sky_regions");
    t.col("region_id", ColumnType::kInt64, false)
        .col("ra_min", ColumnType::kDouble)
        .col("ra_max", ColumnType::kDouble)
        .col("dec_min", ColumnType::kDouble)
        .col("dec_max", ColumnType::kDouble);
    t.primary_key = {"region_id"};
    t.checks.push_back(CheckConstraint{"ra_min", 0.0, 360.0});
    t.checks.push_back(CheckConstraint{"ra_max", 0.0, 360.0});
    t.checks.push_back(CheckConstraint{"dec_min", -90.0, 90.0});
    t.checks.push_back(CheckConstraint{"dec_max", -90.0, 90.0});
    add(std::move(t));
  }

  // ------------------------------------------------------ per observation
  {
    TableDef t = table("telescope_states");
    t.col("state_id", ColumnType::kInt64, false)
        .col("temperature_c", ColumnType::kDouble)
        .col("focus_um", ColumnType::kDouble)
        .col("humidity_pct", ColumnType::kDouble);
    t.primary_key = {"state_id"};
    t.checks.push_back(CheckConstraint{"temperature_c", -50.0, 60.0});
    t.checks.push_back(CheckConstraint{"humidity_pct", 0.0, 100.0});
    add(std::move(t));
  }
  {
    TableDef t = table("observations");
    t.col("obs_id", ColumnType::kInt64, false)
        .col("survey_id", ColumnType::kInt64, false)
        .col("region_id", ColumnType::kInt64, false)
        .col("observer_id", ColumnType::kInt64)
        .col("state_id", ColumnType::kInt64, false)
        .col("start_time", ColumnType::kTimestamp, false)
        .col("airmass", ColumnType::kDouble)
        .col("moon_phase", ColumnType::kDouble);
    t.primary_key = {"obs_id"};
    t.foreign_keys.push_back(ForeignKey{{"survey_id"}, "surveys"});
    t.foreign_keys.push_back(ForeignKey{{"region_id"}, "sky_regions"});
    t.foreign_keys.push_back(ForeignKey{{"observer_id"}, "observers"});
    t.foreign_keys.push_back(ForeignKey{{"state_id"}, "telescope_states"});
    t.checks.push_back(CheckConstraint{"airmass", 1.0, 40.0});
    t.checks.push_back(CheckConstraint{"moon_phase", 0.0, 1.0});
    add(std::move(t));
  }
  {
    TableDef t = table("observation_logs");
    t.col("log_id", ColumnType::kInt64, false)
        .col("obs_id", ColumnType::kInt64, false)
        .col("log_time", ColumnType::kTimestamp)
        .col("severity", ColumnType::kInt32)
        .col("message", ColumnType::kString);
    t.primary_key = {"log_id"};
    t.foreign_keys.push_back(ForeignKey{{"obs_id"}, "observations"});
    t.checks.push_back(CheckConstraint{"severity", 0.0, 5.0});
    add(std::move(t));
  }
  {
    TableDef t = table("ccd_columns");
    t.col("ccd_col_id", ColumnType::kInt64, false)
        .col("obs_id", ColumnType::kInt64, false)
        .col("ccd_number", ColumnType::kInt32, false)
        .col("ra_start", ColumnType::kDouble)
        .col("dec_center", ColumnType::kDouble)
        .col("pixel_scale", ColumnType::kDouble);
    t.primary_key = {"ccd_col_id"};
    t.foreign_keys.push_back(ForeignKey{{"obs_id"}, "observations"});
    t.checks.push_back(CheckConstraint{"ccd_number", 0.0, 111.0});
    t.checks.push_back(CheckConstraint{"ra_start", 0.0, 360.0});
    t.checks.push_back(CheckConstraint{"dec_center", -90.0, 90.0});
    add(std::move(t));
  }
  {
    TableDef t = table("ccd_defects");
    t.col("defect_id", ColumnType::kInt64, false)
        .col("ccd_col_id", ColumnType::kInt64, false)
        .col("x_pix", ColumnType::kInt32)
        .col("y_pix", ColumnType::kInt32)
        .col("kind", ColumnType::kString);
    t.primary_key = {"defect_id"};
    t.foreign_keys.push_back(ForeignKey{{"ccd_col_id"}, "ccd_columns"});
    add(std::move(t));
  }
  {
    TableDef t = table("ccd_frames");
    t.col("frame_id", ColumnType::kInt64, false)
        .col("ccd_col_id", ColumnType::kInt64, false)
        .col("filter_id", ColumnType::kInt32, false)
        .col("seq_number", ColumnType::kInt32)
        .col("start_time", ColumnType::kTimestamp)
        .col("exposure_s", ColumnType::kDouble)
        .col("seeing_arcsec", ColumnType::kDouble)
        .col("sky_background", ColumnType::kDouble);
    t.primary_key = {"frame_id"};
    t.foreign_keys.push_back(ForeignKey{{"ccd_col_id"}, "ccd_columns"});
    t.foreign_keys.push_back(ForeignKey{{"filter_id"}, "filters"});
    t.checks.push_back(CheckConstraint{"exposure_s", 0.0, 3600.0});
    t.checks.push_back(CheckConstraint{"seeing_arcsec", 0.0, 20.0});
    add(std::move(t));
  }
  {
    TableDef t = table("ccd_frame_apertures");
    t.col("aperture_id", ColumnType::kInt64, false)
        .col("frame_id", ColumnType::kInt64, false)
        .col("aperture_number", ColumnType::kInt32, false)
        .col("radius_px", ColumnType::kDouble)
        .col("gain", ColumnType::kDouble)
        .col("zero_point", ColumnType::kDouble);
    t.primary_key = {"aperture_id"};
    t.foreign_keys.push_back(ForeignKey{{"frame_id"}, "ccd_frames"});
    t.checks.push_back(CheckConstraint{"aperture_number", 0.0, 3.0});
    t.checks.push_back(CheckConstraint{"radius_px", 0.0, 1000.0});
    add(std::move(t));
  }
  {
    TableDef t = table("frame_astrometry");
    t.col("astro_id", ColumnType::kInt64, false)
        .col("frame_id", ColumnType::kInt64, false)
        .col("crval1", ColumnType::kDouble)
        .col("crval2", ColumnType::kDouble)
        .col("cd1_1", ColumnType::kDouble)
        .col("cd1_2", ColumnType::kDouble)
        .col("cd2_1", ColumnType::kDouble)
        .col("cd2_2", ColumnType::kDouble)
        .col("rms_arcsec", ColumnType::kDouble);
    t.primary_key = {"astro_id"};
    t.foreign_keys.push_back(ForeignKey{{"frame_id"}, "ccd_frames"});
    add(std::move(t));
  }
  {
    TableDef t = table("frame_photometry");
    t.col("phot_id", ColumnType::kInt64, false)
        .col("frame_id", ColumnType::kInt64, false)
        .col("zero_point", ColumnType::kDouble)
        .col("zp_error", ColumnType::kDouble)
        .col("extinction", ColumnType::kDouble)
        .col("color_term", ColumnType::kDouble);
    t.primary_key = {"phot_id"};
    t.foreign_keys.push_back(ForeignKey{{"frame_id"}, "ccd_frames"});
    add(std::move(t));
  }
  {
    TableDef t = table("frame_calibrations");
    t.col("calib_id", ColumnType::kInt64, false)
        .col("frame_id", ColumnType::kInt64, false)
        .col("pipeline_id", ColumnType::kInt64, false)
        .col("applied_at", ColumnType::kTimestamp)
        .col("quality", ColumnType::kDouble);
    t.primary_key = {"calib_id"};
    t.foreign_keys.push_back(ForeignKey{{"frame_id"}, "ccd_frames"});
    t.foreign_keys.push_back(ForeignKey{{"pipeline_id"}, "pipelines"});
    t.checks.push_back(CheckConstraint{"quality", 0.0, 1.0});
    add(std::move(t));
  }

  // ----------------------------------------------------------- per object
  {
    TableDef t = table("objects");
    t.col("object_id", ColumnType::kInt64, false)
        .col("frame_id", ColumnType::kInt64, false)
        .col("ra", ColumnType::kDouble, false)
        .col("dec", ColumnType::kDouble, false)
        .col("mag", ColumnType::kDouble)
        .col("mag_err", ColumnType::kDouble)
        .col("flux", ColumnType::kDouble)
        .col("fwhm", ColumnType::kDouble)
        .col("ellipticity", ColumnType::kDouble)
        .col("x_pix", ColumnType::kDouble)
        .col("y_pix", ColumnType::kDouble)
        .col("htmid", ColumnType::kInt64, false);  // computed at load time
    t.primary_key = {"object_id"};
    t.foreign_keys.push_back(ForeignKey{{"frame_id"}, "ccd_frames"});
    t.indexes.push_back(
        IndexDef{std::string(kIndexHtmid), {"htmid"}, false});
    t.indexes.push_back(
        IndexDef{std::string(kIndexRaDecMag), {"ra", "dec", "mag"}, false});
    t.checks.push_back(CheckConstraint{"ra", 0.0, 360.0});
    t.checks.push_back(CheckConstraint{"dec", -90.0, 90.0});
    t.checks.push_back(CheckConstraint{"mag", -5.0, 40.0});
    t.checks.push_back(CheckConstraint{"mag_err", 0.0, 10.0});
    t.checks.push_back(CheckConstraint{"ellipticity", 0.0, 1.0});
    add(std::move(t));
  }
  {
    TableDef t = table("fingers");
    t.col("finger_id", ColumnType::kInt64, false)
        .col("object_id", ColumnType::kInt64, false)
        .col("finger_number", ColumnType::kInt32, false)
        .col("flux", ColumnType::kDouble)
        .col("area_px", ColumnType::kInt32)
        .col("snr", ColumnType::kDouble);
    t.primary_key = {"finger_id"};
    t.foreign_keys.push_back(ForeignKey{{"object_id"}, "objects"});
    t.checks.push_back(CheckConstraint{"finger_number", 0.0, 3.0});
    add(std::move(t));
  }
  {
    TableDef t = table("object_moments");
    t.col("moment_id", ColumnType::kInt64, false)
        .col("object_id", ColumnType::kInt64, false)
        .col("mxx", ColumnType::kDouble)
        .col("myy", ColumnType::kDouble)
        .col("mxy", ColumnType::kDouble)
        .col("theta", ColumnType::kDouble);
    t.primary_key = {"moment_id"};
    t.foreign_keys.push_back(ForeignKey{{"object_id"}, "objects"});
    add(std::move(t));
  }
  {
    TableDef t = table("object_flags");
    t.col("flag_id", ColumnType::kInt64, false)
        .col("object_id", ColumnType::kInt64, false)
        .col("saturated", ColumnType::kInt32)
        .col("blended", ColumnType::kInt32)
        .col("edge", ColumnType::kInt32);
    t.primary_key = {"flag_id"};
    t.foreign_keys.push_back(ForeignKey{{"object_id"}, "objects"});
    t.checks.push_back(CheckConstraint{"saturated", 0.0, 1.0});
    t.checks.push_back(CheckConstraint{"blended", 0.0, 1.0});
    t.checks.push_back(CheckConstraint{"edge", 0.0, 1.0});
    add(std::move(t));
  }
  {
    TableDef t = table("detections");
    t.col("detection_id", ColumnType::kInt64, false)
        .col("object_id", ColumnType::kInt64, false)
        .col("filter_id", ColumnType::kInt32, false)
        .col("mag", ColumnType::kDouble)
        .col("mag_err", ColumnType::kDouble)
        .col("det_time", ColumnType::kTimestamp);
    t.primary_key = {"detection_id"};
    t.foreign_keys.push_back(ForeignKey{{"object_id"}, "objects"});
    t.foreign_keys.push_back(ForeignKey{{"filter_id"}, "filters"});
    t.checks.push_back(CheckConstraint{"mag", -5.0, 40.0});
    add(std::move(t));
  }
  {
    TableDef t = table("match_pairs");
    t.col("match_id", ColumnType::kInt64, false)
        .col("object_id", ColumnType::kInt64, false)
        .col("prior_object_id", ColumnType::kInt64, false)
        .col("separation_arcsec", ColumnType::kDouble)
        .col("confidence", ColumnType::kDouble);
    t.primary_key = {"match_id"};
    t.foreign_keys.push_back(ForeignKey{{"object_id"}, "objects"});
    t.foreign_keys.push_back(ForeignKey{{"prior_object_id"}, "objects"});
    t.checks.push_back(CheckConstraint{"separation_arcsec", 0.0, 60.0});
    t.checks.push_back(CheckConstraint{"confidence", 0.0, 1.0});
    add(std::move(t));
  }

  // ------------------------------------------------------------ bookkeeping
  {
    TableDef t = table("load_audit");
    t.col("audit_id", ColumnType::kInt64, false)
        .col("file_name", ColumnType::kString, false)
        .col("rows_loaded", ColumnType::kInt64)
        .col("rows_skipped", ColumnType::kInt64)
        .col("load_time", ColumnType::kTimestamp);
    t.primary_key = {"audit_id"};
    add(std::move(t));
  }

  assert(schema.table_count() == 23);
  return schema;
}

const std::array<TagMapping, 22>& tag_mappings() {
  static const std::array<TagMapping, 22> mappings = {{
      {"SUR", "surveys"},
      {"OBR", "observers"},
      {"FIL", "filters"},
      {"PIP", "pipelines"},
      {"PAR", "pipeline_params"},
      {"REG", "sky_regions"},
      {"TST", "telescope_states"},
      {"OBS", "observations"},
      {"LOG", "observation_logs"},
      {"CCD", "ccd_columns"},
      {"DEF", "ccd_defects"},
      {"FRM", "ccd_frames"},
      {"APR", "ccd_frame_apertures"},
      {"AST", "frame_astrometry"},
      {"PHO", "frame_photometry"},
      {"CAL", "frame_calibrations"},
      {"OBJ", "objects"},
      {"FNG", "fingers"},
      {"MOM", "object_moments"},
      {"FLG", "object_flags"},
      {"DET", "detections"},
      {"MAT", "match_pairs"},
  }};
  return mappings;
}

std::string_view table_for_tag(std::string_view tag) {
  for (const TagMapping& mapping : tag_mappings()) {
    if (mapping.tag == tag) return mapping.table;
  }
  return {};
}

}  // namespace sky::catalog
