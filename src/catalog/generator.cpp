#include "catalog/generator.h"

#include <algorithm>
#include <cmath>

#include "catalog/pq_schema.h"
#include "common/strings.h"

namespace sky::catalog {

namespace {

// A tiny Feistel network over 24 bits: a deterministic permutation used to
// scramble object-id assignment order (the "unsorted input" ablation) while
// keeping ids unique. 24 bits = up to ~16.7M objects per file.
constexpr uint32_t kObjectOrdinalBits = 24;
constexpr int64_t kObjectIdStride = 1LL << (kObjectOrdinalBits + 1);

uint32_t feistel24(uint32_t value, uint64_t key) {
  uint32_t left = (value >> 12) & 0xFFF;
  uint32_t right = value & 0xFFF;
  for (int round = 0; round < 3; ++round) {
    const uint32_t f = static_cast<uint32_t>(
        (right * 0x9E3Bu + (key >> (round * 12)) + 0x7F4Au) & 0xFFFu);
    const uint32_t new_right = left ^ f;
    left = right;
    right = new_right;
  }
  return (left << 12) | right;
}

bool is_detail_tag(std::string_view tag) {
  return tag == "OBJ" || tag == "FNG" || tag == "MOM" || tag == "FLG" ||
         tag == "DET" || tag == "MAT";
}

class LineWriter {
 public:
  explicit LineWriter(GeneratedFile& out, double error_rate,
                      const ErrorMix& mix, Rng& rng,
                      bool detail_rows_only = true)
      : out_(out), error_rate_(error_rate), rng_(rng),
        detail_rows_only_(detail_rows_only) {
    const double total = mix.bad_numeric + mix.missing_field +
                         mix.duplicate_pk + mix.dangling_fk +
                         mix.out_of_range;
    weights_ = {mix.bad_numeric / total, mix.missing_field / total,
                mix.duplicate_pk / total, mix.dangling_fk / total,
                mix.out_of_range / total};
  }

  // Emit one row. `fields` excludes the tag. The first field is the primary
  // key; `fk_field` (index into fields) points at a parent id eligible for
  // dangling-FK corruption (-1 if none); `range_field` points at a value
  // with a range check eligible for out-of-range corruption (-1 if none).
  void emit(std::string_view tag, std::vector<std::string> fields,
            int fk_field = -1, int range_field = -1) {
    bool corrupted = false;
    if (error_rate_ > 0 && (!detail_rows_only_ || is_detail_tag(tag)) &&
        rng_.bernoulli(error_rate_)) {
      corrupted = corrupt(tag, fields, fk_field, range_field);
    }
    std::string line(tag);
    for (const std::string& field : fields) {
      line.push_back('|');
      line.append(field);
    }
    line.push_back('\n');
    out_.text.append(line);
    ++out_.data_lines;
    if (corrupted) {
      ++out_.injected_errors;
    } else {
      ++out_.clean_rows_per_table[std::string(table_for_tag(tag))];
      last_pk_[std::string(tag)] = fields[0];
    }
  }

 private:
  bool corrupt(std::string_view tag, std::vector<std::string>& fields,
               int fk_field, int range_field) {
    switch (rng_.pick_weighted(weights_)) {
      case 0: {  // bad numeric: clobber a non-PK field
        const size_t target = fields.size() > 1
                                  ? 1 + static_cast<size_t>(rng_.uniform_int(
                                            0, static_cast<int64_t>(
                                                   fields.size()) - 2))
                                  : 0;
        fields[target] = "###";
        return true;
      }
      case 1:  // missing field
        fields.pop_back();
        return true;
      case 2: {  // duplicate PK: reuse the previous key for this tag
        const auto it = last_pk_.find(std::string(tag));
        if (it == last_pk_.end()) {
          fields[0] = "###";  // no prior row yet; degrade to parse error
          return true;
        }
        fields[0] = it->second;
        return true;
      }
      case 3:  // dangling FK
        if (fk_field >= 0) {
          fields[static_cast<size_t>(fk_field)] = "999999999999999";
          return true;
        }
        fields[0] = "###";
        return true;
      default:  // out of range
        if (range_field >= 0) {
          fields[static_cast<size_t>(range_field)] = "12345.678";
          return true;
        }
        fields[0] = "###";
        return true;
    }
  }

  GeneratedFile& out_;
  double error_rate_;
  Rng& rng_;
  bool detail_rows_only_;
  std::vector<double> weights_;
  std::map<std::string, std::string> last_pk_;
};

std::string fmt_f(double v) { return str_format("%.6f", v); }
std::string fmt_i(int64_t v) { return std::to_string(v); }

}  // namespace

GeneratedFile CatalogGenerator::reference_file() {
  GeneratedFile out;
  out.text = "# Palomar-Quest reference tables (synthetic)\n";
  Rng rng(0xBEEF);
  ErrorMix mix;
  LineWriter writer(out, 0.0, mix, rng);
  for (int64_t s = 1; s <= kSurveyCount; ++s) {
    writer.emit("SUR", {fmt_i(s), "palomar-quest-" + fmt_i(s),
                        fmt_i(1059696000000000 + s)});
  }
  for (int64_t o = 1; o <= kObserverCount; ++o) {
    writer.emit("OBR", {fmt_i(o), "observer-" + fmt_i(o), "caltech/yale"});
  }
  const double wavelengths[] = {354.3, 477.0, 623.1, 762.5};
  for (int f = 1; f <= kFilterCount; ++f) {
    writer.emit("FIL", {fmt_i(f), "filter-" + fmt_i(f),
                        fmt_f(wavelengths[f - 1])});
  }
  for (int64_t p = 1; p <= kPipelineCount; ++p) {
    writer.emit("PIP", {fmt_i(p), "extract-" + fmt_i(p), "v2." + fmt_i(p)});
    for (int64_t k = 0; k < 3; ++k) {
      writer.emit("PAR", {fmt_i(p * 100 + k), fmt_i(p),
                          "threshold-" + fmt_i(k),
                          fmt_f(1.5 + static_cast<double>(k))});
    }
  }
  for (int64_t r = 1; r <= kRegionCount; ++r) {
    const double ra0 = static_cast<double>(r - 1) * 45.0;
    writer.emit("REG", {fmt_i(r), fmt_f(ra0), fmt_f(ra0 + 45.0),
                        fmt_f(-25.0), fmt_f(25.0)});
  }
  return out;
}

GeneratedFile CatalogGenerator::generate(const FileSpec& spec) {
  GeneratedFile out;
  out.text = "# Palomar-Quest catalog file " + spec.name + "\n";
  out.text.reserve(static_cast<size_t>(spec.target_bytes) + 4096);
  Rng rng(spec.seed);
  LineWriter writer(out, spec.error_rate, spec.error_mix, rng,
                    spec.restrict_errors_to_detail_rows);

  const int64_t unit = spec.unit_id;
  const int64_t base_time = 1104537600000000 + unit * 60'000'000;

  // Telescope state + observation header.
  writer.emit("TST", {fmt_i(unit), fmt_f(rng.uniform_range(-5, 25)),
                      fmt_f(rng.uniform_range(-200, 200)),
                      fmt_f(rng.uniform_range(5, 95))});
  writer.emit("OBS",
              {fmt_i(unit), fmt_i(rng.uniform_int(1, kSurveyCount)),
               fmt_i(rng.uniform_int(1, kRegionCount)),
               fmt_i(rng.uniform_int(1, kObserverCount)), fmt_i(unit),
               fmt_i(base_time), fmt_f(rng.uniform_range(1.0, 2.5)),
               fmt_f(rng.uniform())});
  const int64_t n_logs = rng.uniform_int(1, 3);
  for (int64_t l = 0; l < n_logs; ++l) {
    writer.emit("LOG", {fmt_i(unit * 10 + l), fmt_i(unit),
                        fmt_i(base_time + l * 1000), fmt_i(l % 5),
                        "start sequence " + fmt_i(l)});
  }

  const double ra_base = rng.uniform_range(0.0, 315.0);
  const double dec_base = rng.uniform_range(-20.0, 20.0);

  // CCD columns round-robin; frames keep coming until the byte target.
  std::vector<int64_t> ccd_ids;
  for (int c = 0; c < spec.ccds; ++c) {
    const int64_t ccd_id = unit * 10 + c;
    ccd_ids.push_back(ccd_id);
    writer.emit("CCD",
                {fmt_i(ccd_id), fmt_i(unit),
                 fmt_i((unit * spec.ccds + c) % 112),
                 fmt_f(ra_base + c * 0.25), fmt_f(dec_base), fmt_f(0.873)},
                /*fk_field=*/1);
    const int64_t n_defects = rng.uniform_int(0, 2);
    for (int64_t d = 0; d < n_defects; ++d) {
      writer.emit("DEF", {fmt_i(ccd_id * 10 + d), fmt_i(ccd_id),
                          fmt_i(rng.uniform_int(0, 2047)),
                          fmt_i(rng.uniform_int(0, 4095)), "hot-pixel"},
                  /*fk_field=*/1);
    }
  }

  uint32_t object_counter = 0;
  int64_t frame_seq = 0;
  while (static_cast<int64_t>(out.text.size()) < spec.target_bytes) {
    const int64_t ccd_id =
        ccd_ids[static_cast<size_t>(frame_seq) % ccd_ids.size()];
    const int64_t frame_id = ccd_id * 100000 + frame_seq;
    ++frame_seq;
    // Palomar-Quest is a drift-scan survey: the sky sweeps across the CCDs
    // at the sidereal rate, so consecutive frames advance smoothly in RA
    // (spatially clustered objects — and clustered htmids).
    const double frame_ra =
        std::fmod(ra_base + static_cast<double>(frame_seq) * 0.035, 358.0);
    const double frame_dec =
        dec_base +
        0.25 * static_cast<double>(static_cast<int64_t>(frame_seq) %
                                   static_cast<int64_t>(ccd_ids.size()));
    writer.emit("FRM",
                {fmt_i(frame_id), fmt_i(ccd_id),
                 fmt_i(rng.uniform_int(1, kFilterCount)), fmt_i(frame_seq),
                 fmt_i(base_time + frame_seq * 140'000'000),
                 fmt_f(rng.uniform_range(30, 180)),
                 fmt_f(rng.uniform_range(0.6, 3.0)),
                 fmt_f(rng.uniform_range(19, 22))},
                /*fk_field=*/1, /*range_field=*/5);
    // "A row of frame information is followed by four rows of frame
    // aperture information."
    for (int a = 0; a < 4; ++a) {
      writer.emit("APR",
                  {fmt_i(frame_id * 10 + a), fmt_i(frame_id), fmt_i(a),
                   fmt_f(2.0 + a * 1.5), fmt_f(rng.uniform_range(1.4, 2.2)),
                   fmt_f(rng.uniform_range(24.5, 26.5))},
                  /*fk_field=*/1, /*range_field=*/3);
    }
    writer.emit("AST",
                {fmt_i(frame_id), fmt_i(frame_id), fmt_f(frame_ra),
                 fmt_f(frame_dec), fmt_f(-2.4e-4), fmt_f(1.1e-6),
                 fmt_f(-1.2e-6), fmt_f(2.4e-4),
                 fmt_f(rng.uniform_range(0.05, 0.4))},
                /*fk_field=*/1);
    writer.emit("PHO",
                {fmt_i(frame_id), fmt_i(frame_id),
                 fmt_f(rng.uniform_range(24.0, 27.0)),
                 fmt_f(rng.uniform_range(0.005, 0.05)),
                 fmt_f(rng.uniform_range(0.05, 0.3)),
                 fmt_f(rng.uniform_range(-0.1, 0.1))},
                /*fk_field=*/1);
    writer.emit("CAL",
                {fmt_i(frame_id), fmt_i(frame_id),
                 fmt_i(rng.uniform_int(1, kPipelineCount)),
                 fmt_i(base_time + frame_seq * 150'000'000),
                 fmt_f(rng.uniform())},
                /*fk_field=*/1, /*range_field=*/4);

    // Objects: each followed by four finger rows, then detail rows.
    const int64_t n_objects = rng.uniform_int(20, 60);
    std::vector<int64_t> frame_object_ids;
    for (int64_t i = 0; i < n_objects; ++i) {
      const uint32_t ordinal = object_counter++;
      const uint32_t scrambled = spec.shuffle_object_ids
                                     ? feistel24(ordinal, spec.seed)
                                     : ordinal;
      const int64_t object_id =
          unit * kObjectIdStride + static_cast<int64_t>(scrambled);
      frame_object_ids.push_back(object_id);
      // Objects lie within the frame's ~0.25-degree field of view.
      const double ra = std::clamp(frame_ra + rng.uniform_range(-0.12, 0.12),
                                   0.0, 360.0);
      const double dec =
          std::clamp(frame_dec + rng.uniform_range(-0.12, 0.12), -90.0, 90.0);
      const double mag = std::clamp(rng.normal(20.0, 2.0), -4.9, 39.9);
      writer.emit("OBJ",
                  {fmt_i(object_id), fmt_i(frame_id), fmt_f(ra), fmt_f(dec),
                   fmt_f(mag), fmt_f(rng.uniform_range(0.001, 0.5)),
                   fmt_f(std::pow(10.0, (25.0 - mag) / 2.5)),
                   fmt_f(rng.uniform_range(1.0, 6.0)), fmt_f(rng.uniform()),
                   fmt_f(rng.uniform_range(0, 2048)),
                   fmt_f(rng.uniform_range(0, 4096))},
                  /*fk_field=*/1, /*range_field=*/3);
      // "A row of object information is followed by four rows of finger
      // information."
      for (int f = 0; f < 4; ++f) {
        writer.emit("FNG",
                    {fmt_i(object_id * 10 + f), fmt_i(object_id), fmt_i(f),
                     fmt_f(rng.uniform_range(10, 1e5)),
                     fmt_i(rng.uniform_int(1, 400)),
                     fmt_f(rng.uniform_range(2, 100))},
                    /*fk_field=*/1, /*range_field=*/2);
      }
      writer.emit("MOM",
                  {fmt_i(object_id), fmt_i(object_id),
                   fmt_f(rng.uniform_range(0.5, 8)),
                   fmt_f(rng.uniform_range(0.5, 8)),
                   fmt_f(rng.uniform_range(-2, 2)),
                   fmt_f(rng.uniform_range(-90, 90))},
                  /*fk_field=*/1);
      writer.emit("FLG",
                  {fmt_i(object_id), fmt_i(object_id),
                   fmt_i(rng.bernoulli(0.02) ? 1 : 0),
                   fmt_i(rng.bernoulli(0.08) ? 1 : 0),
                   fmt_i(rng.bernoulli(0.05) ? 1 : 0)},
                  /*fk_field=*/1, /*range_field=*/2);
      const int64_t n_detections = rng.uniform_int(1, 2);
      for (int64_t d = 0; d < n_detections; ++d) {
        writer.emit("DET",
                    {fmt_i(object_id * 4 + d), fmt_i(object_id),
                     fmt_i(rng.uniform_int(1, kFilterCount)),
                     fmt_f(mag + rng.uniform_range(-0.05, 0.05)),
                     fmt_f(rng.uniform_range(0.001, 0.5)),
                     fmt_i(base_time + frame_seq * 160'000'000 + d)},
                    /*fk_field=*/1, /*range_field=*/3);
      }
      // Occasional cross-match against an earlier object in this file.
      if (frame_object_ids.size() > 1 && rng.bernoulli(0.05)) {
        const int64_t prior = frame_object_ids[static_cast<size_t>(
            rng.uniform_int(0,
                            static_cast<int64_t>(frame_object_ids.size()) -
                                2))];
        writer.emit("MAT",
                    {fmt_i(object_id), fmt_i(object_id), fmt_i(prior),
                     fmt_f(rng.uniform_range(0.1, 5.0)),
                     fmt_f(rng.uniform())},
                    /*fk_field=*/1, /*range_field=*/3);
      }
    }
  }
  return out;
}

std::vector<FileSpec> CatalogGenerator::observation_specs(uint64_t seed,
                                                          int64_t night_id,
                                                          int64_t total_bytes,
                                                          double error_rate) {
  Rng rng(seed ^ 0x0B5E55ED);
  // Deterministic size skew: weights in [0.4, 1.9] normalized to the total.
  std::vector<double> weights;
  weights.reserve(kFilesPerObservation);
  double weight_sum = 0;
  for (int f = 0; f < kFilesPerObservation; ++f) {
    const double w = 0.4 + 1.5 * rng.uniform();
    weights.push_back(w);
    weight_sum += w;
  }
  std::vector<FileSpec> specs;
  specs.reserve(kFilesPerObservation);
  for (int f = 0; f < kFilesPerObservation; ++f) {
    FileSpec spec;
    spec.name = str_format("night%lld_file%02d.cat",
                           static_cast<long long>(night_id), f);
    spec.seed = seed + static_cast<uint64_t>(f) * 0x9E37u + 1;
    spec.unit_id = night_id * 100 + f;
    spec.target_bytes = static_cast<int64_t>(
        static_cast<double>(total_bytes) * weights[static_cast<size_t>(f)] /
        weight_sum);
    spec.error_rate = error_rate;
    specs.push_back(std::move(spec));
  }
  return specs;
}

}  // namespace sky::catalog
