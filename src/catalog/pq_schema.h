// The Palomar-Quest repository data model.
//
// The paper shows (Fig. 1) a 23-table model and names a handful of tables:
// observations, ccd_columns, ccd_frames, ccd_frame_apertures, objects, plus
// "finger" detail rows; it describes the interleave pattern ("a row of frame
// information is followed by four rows of frame aperture information, and a
// row of object information is followed by four rows of finger information")
// and the size skew (static metadata tables under 100 rows; objects beyond a
// billion). We reconstruct a plausible 23-table model around those anchors;
// table count, FK chains, row-size ratios, and the interleave pattern are
// preserved. See DESIGN.md for the substitution note.
//
// Layout (parent -> child):
//   reference data : surveys, observers, filters, pipelines,
//                    pipeline_params, sky_regions
//   per observation: telescope_states, observations, observation_logs,
//                    ccd_columns, ccd_defects, ccd_frames,
//                    ccd_frame_apertures, frame_astrometry,
//                    frame_photometry, frame_calibrations
//   per object     : objects, fingers, object_moments, object_flags,
//                    detections, match_pairs
//   bookkeeping    : load_audit (written by the loader itself)
//
// The objects table carries the two study indexes from the paper's Fig. 8:
//   idx_htmid    — single large-integer attribute (kept during loading)
//   idx_radecmag — composite over three float attributes (delayed by
//                  default; rebuilt after the catch-up phase)
#pragma once

#include <array>
#include <string_view>

#include "db/schema.h"

namespace sky::catalog {

constexpr std::string_view kIndexHtmid = "idx_htmid";
constexpr std::string_view kIndexRaDecMag = "idx_radecmag";

// Number of catalog files per observation (28 image data sets per
// observation, 4 CCDs each; 112 CCDs total).
constexpr int kFilesPerObservation = 28;
constexpr int kCcdsPerFile = 4;

// Build the full 23-table schema. `composite_index_enabled` controls whether
// idx_radecmag starts enabled (paper default: disabled during loading).
db::Schema make_pq_schema();

// Row tags as they appear in catalog files, one per loadable table.
struct TagMapping {
  std::string_view tag;
  std::string_view table;
};

// Tag -> table mapping in schema (parent-first) order.
const std::array<TagMapping, 22>& tag_mappings();  // load_audit has no tag

// Convenience: table name for a tag (empty if unknown).
std::string_view table_for_tag(std::string_view tag);

}  // namespace sky::catalog
