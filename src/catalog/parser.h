// Catalog row parsing: the "parse, validate, transform, compute" step of
// the loading pipeline (paper section 4.1, step 2).
//
// Catalog files are ASCII, one row per line: TAG|field|field|...  The tag
// selects the destination table; fields appear in the table's column order.
// The parser:
//   * parses fields by declared column type (type conversion),
//   * normalizes precision on magnitude-like columns (transformation),
//   * computes derived values the repository needs — the object htmid from
//     (ra, dec) via the HTM library (computation).
// Structural problems (unknown tag, wrong arity, malformed numbers) are
// client-side parse errors; domain violations (range checks, duplicate or
// dangling keys) are intentionally left for the database constraints, which
// is where the paper's error-recovery machinery engages.
#pragma once

#include <string_view>
#include <vector>

#include "common/status.h"
#include "db/row.h"
#include "db/schema.h"

namespace sky::catalog {

struct ParsedRow {
  uint32_t table_id = 0;
  db::Row row;
};

struct ParserStats {
  int64_t lines = 0;
  int64_t data_rows = 0;
  int64_t comment_lines = 0;
  int64_t parse_errors = 0;
  int64_t htmids_computed = 0;
};

class CatalogParser {
 public:
  // The schema must be the PQ schema (or any schema whose tables match the
  // tag mapping); tag tables are resolved once at construction.
  explicit CatalogParser(const db::Schema& schema);

  // Parse one line. Returns a row ready for insertion, or:
  //   * kNotFound status with empty message "comment" semantics — instead we
  //     expose is_data_line() so callers can skip blanks/comments cheaply.
  //   * kParseError for malformed data rows (counted; callers typically
  //     record and skip, mirroring client-side validation).
  Result<ParsedRow> parse_line(std::string_view line);

  // Cheap pre-check: should parse_line be called for this line at all?
  static bool is_data_line(std::string_view line);

  const ParserStats& stats() const { return stats_; }

  // HTM depth used for computed object htmids.
  static constexpr int kHtmDepth = 14;

 private:
  struct TableInfo {
    uint32_t table_id = 0;
    const db::TableDef* def = nullptr;
    int computed_htmid_column = -1;  // objects.htmid
    int ra_column = -1;
    int dec_column = -1;
    std::vector<int> mag_precision_columns;  // rounded to 4 decimals
  };

  const TableInfo* info_for_tag(std::string_view tag) const;

  std::vector<std::pair<std::string, TableInfo>> by_tag_;  // sorted by tag
  ParserStats stats_;
};

}  // namespace sky::catalog
