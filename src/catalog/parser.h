// Catalog row parsing: the "parse, validate, transform, compute" step of
// the loading pipeline (paper section 4.1, step 2).
//
// Catalog files are ASCII, one row per line: TAG|field|field|...  The tag
// selects the destination table; fields appear in the table's column order.
// The parser:
//   * parses fields by declared column type (type conversion),
//   * normalizes precision on magnitude-like columns (transformation),
//   * computes derived values the repository needs — the object htmid from
//     (ra, dec) via the HTM library (computation).
// Structural problems (unknown tag, wrong arity, malformed numbers) are
// client-side parse errors; domain violations (range checks, duplicate or
// dangling keys) are intentionally left for the database constraints, which
// is where the paper's error-recovery machinery engages.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "db/column_batch.h"
#include "db/row.h"
#include "db/schema.h"

namespace sky::catalog {

struct ParsedRow {
  uint32_t table_id = 0;
  db::Row row;
};

// One structurally bad line found while parsing a block. `line` views into
// the block's input text; `line_offset` is 0-based within the block (the
// caller adds its running line count for absolute numbering).
struct BlockError {
  int64_t line_offset = 0;
  std::string_view line;
  Status status;
};

// Result of one parse_block() call: per-table columnar batches plus the
// errors and line accounting the loaders fold into their reports. The
// object is reused across blocks (clear + refill) so column arenas keep
// their capacity.
struct ParsedBlock {
  // Parallel vectors: batches[i] holds rows destined for table_ids[i]. One
  // slot per tag the parser knows; untouched slots hold empty batches.
  std::vector<uint32_t> table_ids;
  std::vector<db::ColumnBatch> batches;
  // Per slot, the 0-based block line offset of each surviving batch row
  // (row_lines[i][r] is the input line batch i's row r came from) — lets
  // loaders report absolute line numbers for server-side rejections.
  std::vector<std::vector<int64_t>> row_lines;
  // Structural errors in line order (unknown tag, arity, bad numerics) —
  // exactly the rows parse_line would have rejected.
  std::vector<BlockError> errors;
  int64_t lines_consumed = 0;  // every line, blanks and comments included
  int64_t data_lines = 0;      // lines that reached field conversion
};

struct ParserStats {
  int64_t lines = 0;
  int64_t data_rows = 0;
  int64_t comment_lines = 0;
  int64_t parse_errors = 0;
  int64_t htmids_computed = 0;
};

class CatalogParser {
 public:
  // The schema must be the PQ schema (or any schema whose tables match the
  // tag mapping); tag tables are resolved once at construction.
  explicit CatalogParser(const db::Schema& schema);

  // Parse one line. Returns a row ready for insertion, or:
  //   * kNotFound status with empty message "comment" semantics — instead we
  //     expose is_data_line() so callers can skip blanks/comments cheaply.
  //   * kParseError for malformed data rows (counted; callers typically
  //     record and skip, mirroring client-side validation).
  Result<ParsedRow> parse_line(std::string_view line);

  // Vectorized batch parse — the columnar ingest hot path. Consumes up to
  // `max_data_rows` data lines from `text` starting at byte `pos` (advanced
  // past every consumed line) and fills `block` with arena-backed column
  // vectors: a memchr-driven delimiter scan collects field spans, numerics
  // convert column-at-a-time (std::from_chars fast path, Value::parse_as
  // fallback for exact error/edge-case parity), magnitudes are rounded and
  // htmids computed in tight loops — no per-row Row/Value materialization.
  //
  // Line accounting matches split(text, '\n') exactly, including the final
  // empty piece after a trailing newline; the input is exhausted once
  // pos > text.size(). Stats advance as if each data line had gone through
  // parse_line gated by is_data_line (the loaders' usage): `lines` counts
  // data lines, comment_lines stays untouched, parse_errors / data_rows /
  // htmids_computed are per-row identical to the row path.
  void parse_block(std::string_view text, size_t& pos, size_t max_data_rows,
                   ParsedBlock& block);

  // Cheap pre-check: should parse_line be called for this line at all?
  static bool is_data_line(std::string_view line);

  const ParserStats& stats() const { return stats_; }

  // HTM depth used for computed object htmids.
  static constexpr int kHtmDepth = 14;

 private:
  struct TableInfo {
    uint32_t table_id = 0;
    const db::TableDef* def = nullptr;
    int computed_htmid_column = -1;  // objects.htmid
    int ra_column = -1;
    int dec_column = -1;
    std::vector<int> mag_precision_columns;  // rounded to 4 decimals
    // File-field index per column (-1 for the computed column): column c of
    // a data row reads fields[field_of_column[c]] after the tag.
    std::vector<int> field_of_column;
  };

  // Per-table scratch for parse_block: row-major field spans plus per-row
  // error bookkeeping, reused across blocks.
  struct SlotScratch {
    std::vector<std::string_view> fields;  // stride = expected field count
    std::vector<int64_t> line_offsets;     // per accepted row
    std::vector<std::string_view> lines;   // per accepted row (error detail)
    std::vector<uint8_t> bad;              // set during conversion
  };

  const TableInfo* info_for_tag(std::string_view tag) const;

  std::vector<std::pair<std::string, TableInfo>> by_tag_;  // sorted by tag
  std::vector<SlotScratch> scratch_;
  ParserStats stats_;
};

}  // namespace sky::catalog
