#include "catalog/parser.h"

#include <algorithm>
#include <cmath>

#include "catalog/pq_schema.h"
#include "common/strings.h"
#include "htm/htm.h"

namespace sky::catalog {

CatalogParser::CatalogParser(const db::Schema& schema) {
  for (const TagMapping& mapping : tag_mappings()) {
    const auto table_id = schema.table_id(mapping.table);
    if (!table_id.is_ok()) continue;  // schema without this table
    TableInfo info;
    info.table_id = table_id.value();
    info.def = &schema.table(info.table_id);
    info.computed_htmid_column = info.def->column_index("htmid");
    info.ra_column = info.def->column_index("ra");
    info.dec_column = info.def->column_index("dec");
    for (size_t c = 0; c < info.def->columns.size(); ++c) {
      const std::string& name = info.def->columns[c].name;
      if (name == "mag" || name == "mag_err") {
        info.mag_precision_columns.push_back(static_cast<int>(c));
      }
    }
    by_tag_.emplace_back(std::string(mapping.tag), std::move(info));
  }
  std::sort(by_tag_.begin(), by_tag_.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
}

const CatalogParser::TableInfo* CatalogParser::info_for_tag(
    std::string_view tag) const {
  const auto it = std::lower_bound(
      by_tag_.begin(), by_tag_.end(), tag,
      [](const auto& entry, std::string_view key) { return entry.first < key; });
  if (it == by_tag_.end() || it->first != tag) return nullptr;
  return &it->second;
}

bool CatalogParser::is_data_line(std::string_view line) {
  const std::string_view stripped = trim(line);
  return !stripped.empty() && stripped[0] != '#';
}

Result<ParsedRow> CatalogParser::parse_line(std::string_view line) {
  ++stats_.lines;
  const std::string_view stripped = trim(line);
  if (stripped.empty() || stripped[0] == '#') {
    ++stats_.comment_lines;
    return Status(ErrorCode::kInvalidArgument, "not a data line");
  }
  const std::vector<std::string_view> fields = split(stripped, '|');
  const TableInfo* info = info_for_tag(fields[0]);
  if (info == nullptr) {
    ++stats_.parse_errors;
    return Status(ErrorCode::kParseError,
                  "unknown row tag: " + std::string(fields[0]));
  }
  // Every column appears in the file except computed ones.
  const size_t expected_fields =
      info->def->columns.size() - (info->computed_htmid_column >= 0 ? 1 : 0);
  if (fields.size() - 1 != expected_fields) {
    ++stats_.parse_errors;
    return Status(ErrorCode::kParseError,
                  str_format("%s row has %zu fields, expected %zu",
                             std::string(fields[0]).c_str(),
                             fields.size() - 1, expected_fields));
  }

  ParsedRow parsed;
  parsed.table_id = info->table_id;
  parsed.row.reserve(info->def->columns.size());
  size_t next_field = 1;
  for (size_t c = 0; c < info->def->columns.size(); ++c) {
    if (static_cast<int>(c) == info->computed_htmid_column) {
      parsed.row.push_back(db::Value::null());  // filled below
      continue;
    }
    const auto value = db::Value::parse_as(info->def->columns[c].type,
                                           fields[next_field]);
    if (!value.is_ok()) {
      ++stats_.parse_errors;
      return Status(ErrorCode::kParseError,
                    info->def->name + "." + info->def->columns[c].name + ": " +
                        value.status().message());
    }
    parsed.row.push_back(*value);
    ++next_field;
  }

  // Transformation: normalize magnitude precision to 4 decimals.
  for (const int c : info->mag_precision_columns) {
    db::Value& value = parsed.row[static_cast<size_t>(c)];
    if (!value.is_null() && value.is_f64()) {
      value = db::Value::f64(std::round(value.as_f64() * 1e4) / 1e4);
    }
  }

  // Computation: htmid from (ra, dec).
  if (info->computed_htmid_column >= 0) {
    const db::Value& ra = parsed.row[static_cast<size_t>(info->ra_column)];
    const db::Value& dec = parsed.row[static_cast<size_t>(info->dec_column)];
    if (ra.is_null() || dec.is_null() || !ra.is_f64() || !dec.is_f64() ||
        !(ra.as_f64() >= 0.0 && ra.as_f64() <= 360.0) ||
        !(dec.as_f64() >= -90.0 && dec.as_f64() <= 90.0)) {
      // Leave htmid NULL: the NOT NULL constraint rejects the row server-side,
      // exactly the kind of data error the bulk loader must skip over.
    } else {
      parsed.row[static_cast<size_t>(info->computed_htmid_column)] =
          db::Value::i64(static_cast<int64_t>(
              htm::htm_id_radec(ra.as_f64(), dec.as_f64(), kHtmDepth)));
      ++stats_.htmids_computed;
    }
  }
  ++stats_.data_rows;
  return parsed;
}

}  // namespace sky::catalog
