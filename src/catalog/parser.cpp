#include "catalog/parser.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <limits>

#include "catalog/pq_schema.h"
#include "common/strings.h"
#include "htm/htm.h"

namespace sky::catalog {

CatalogParser::CatalogParser(const db::Schema& schema) {
  for (const TagMapping& mapping : tag_mappings()) {
    const auto table_id = schema.table_id(mapping.table);
    if (!table_id.is_ok()) continue;  // schema without this table
    TableInfo info;
    info.table_id = table_id.value();
    info.def = &schema.table(info.table_id);
    info.computed_htmid_column = info.def->column_index("htmid");
    info.ra_column = info.def->column_index("ra");
    info.dec_column = info.def->column_index("dec");
    int next_field = 0;
    for (size_t c = 0; c < info.def->columns.size(); ++c) {
      const std::string& name = info.def->columns[c].name;
      if (name == "mag" || name == "mag_err") {
        info.mag_precision_columns.push_back(static_cast<int>(c));
      }
      info.field_of_column.push_back(
          static_cast<int>(c) == info.computed_htmid_column ? -1
                                                            : next_field++);
    }
    by_tag_.emplace_back(std::string(mapping.tag), std::move(info));
  }
  std::sort(by_tag_.begin(), by_tag_.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
}

const CatalogParser::TableInfo* CatalogParser::info_for_tag(
    std::string_view tag) const {
  const auto it = std::lower_bound(
      by_tag_.begin(), by_tag_.end(), tag,
      [](const auto& entry, std::string_view key) { return entry.first < key; });
  if (it == by_tag_.end() || it->first != tag) return nullptr;
  return &it->second;
}

bool CatalogParser::is_data_line(std::string_view line) {
  const std::string_view stripped = trim(line);
  return !stripped.empty() && stripped[0] != '#';
}

Result<ParsedRow> CatalogParser::parse_line(std::string_view line) {
  ++stats_.lines;
  const std::string_view stripped = trim(line);
  if (stripped.empty() || stripped[0] == '#') {
    ++stats_.comment_lines;
    return Status(ErrorCode::kInvalidArgument, "not a data line");
  }
  const std::vector<std::string_view> fields = split(stripped, '|');
  const TableInfo* info = info_for_tag(fields[0]);
  if (info == nullptr) {
    ++stats_.parse_errors;
    return Status(ErrorCode::kParseError,
                  "unknown row tag: " + std::string(fields[0]));
  }
  // Every column appears in the file except computed ones.
  const size_t expected_fields =
      info->def->columns.size() - (info->computed_htmid_column >= 0 ? 1 : 0);
  if (fields.size() - 1 != expected_fields) {
    ++stats_.parse_errors;
    return Status(ErrorCode::kParseError,
                  str_format("%s row has %zu fields, expected %zu",
                             std::string(fields[0]).c_str(),
                             fields.size() - 1, expected_fields));
  }

  ParsedRow parsed;
  parsed.table_id = info->table_id;
  parsed.row.reserve(info->def->columns.size());
  size_t next_field = 1;
  for (size_t c = 0; c < info->def->columns.size(); ++c) {
    if (static_cast<int>(c) == info->computed_htmid_column) {
      parsed.row.push_back(db::Value::null());  // filled below
      continue;
    }
    const auto value = db::Value::parse_as(info->def->columns[c].type,
                                           fields[next_field]);
    if (!value.is_ok()) {
      ++stats_.parse_errors;
      return Status(ErrorCode::kParseError,
                    info->def->name + "." + info->def->columns[c].name + ": " +
                        value.status().message());
    }
    parsed.row.push_back(*value);
    ++next_field;
  }

  // Transformation: normalize magnitude precision to 4 decimals.
  for (const int c : info->mag_precision_columns) {
    db::Value& value = parsed.row[static_cast<size_t>(c)];
    if (!value.is_null() && value.is_f64()) {
      value = db::Value::f64(std::round(value.as_f64() * 1e4) / 1e4);
    }
  }

  // Computation: htmid from (ra, dec).
  if (info->computed_htmid_column >= 0) {
    const db::Value& ra = parsed.row[static_cast<size_t>(info->ra_column)];
    const db::Value& dec = parsed.row[static_cast<size_t>(info->dec_column)];
    if (ra.is_null() || dec.is_null() || !ra.is_f64() || !dec.is_f64() ||
        !(ra.as_f64() >= 0.0 && ra.as_f64() <= 360.0) ||
        !(dec.as_f64() >= -90.0 && dec.as_f64() <= 90.0)) {
      // Leave htmid NULL: the NOT NULL constraint rejects the row server-side,
      // exactly the kind of data error the bulk loader must skip over.
    } else {
      parsed.row[static_cast<size_t>(info->computed_htmid_column)] =
          db::Value::i64(static_cast<int64_t>(
              htm::htm_id_radec(ra.as_f64(), dec.as_f64(), kHtmDepth)));
      ++stats_.htmids_computed;
    }
  }
  ++stats_.data_rows;
  return parsed;
}

namespace {
// NULL markers Value::parse_as recognizes, applied to a pre-trimmed field.
bool is_null_field(std::string_view trimmed) {
  return trimmed.empty() || trimmed == "NULL" || trimmed == "\\N";
}
}  // namespace

void CatalogParser::parse_block(std::string_view text, size_t& pos,
                                size_t max_data_rows, ParsedBlock& block) {
  // (Re)initialize the output and per-slot scratch, keeping buffer capacity.
  if (block.batches.size() != by_tag_.size()) {
    block.table_ids.clear();
    block.batches.clear();
    for (const auto& [tag, info] : by_tag_) {
      block.table_ids.push_back(info.table_id);
      block.batches.emplace_back(*info.def);
    }
  }
  block.errors.clear();
  block.lines_consumed = 0;
  block.data_lines = 0;
  block.row_lines.resize(by_tag_.size());
  for (std::vector<int64_t>& lines : block.row_lines) lines.clear();
  for (db::ColumnBatch& batch : block.batches) batch.clear();
  scratch_.resize(by_tag_.size());
  for (SlotScratch& scratch : scratch_) {
    scratch.fields.clear();
    scratch.line_offsets.clear();
    scratch.lines.clear();
    scratch.bad.clear();
  }

  // ---- Phase A: delimiter scan. Lines and fields are located with
  // memchr-backed find() calls; field spans go into per-table row-major
  // scratch, nothing is converted yet. Line accounting mirrors
  // split(text, '\n'): a trailing newline yields one final empty line, and
  // pos > text.size() marks exhaustion.
  size_t budget = max_data_rows;
  while (pos <= text.size() && budget > 0) {
    const size_t line_end = std::min(text.find('\n', pos), text.size());
    const std::string_view line = text.substr(pos, line_end - pos);
    pos = line_end + 1;
    const int64_t line_offset = block.lines_consumed++;
    const std::string_view stripped = trim(line);
    if (stripped.empty() || stripped[0] == '#') continue;
    ++block.data_lines;
    --budget;
    ++stats_.lines;

    // Tag = the raw span up to the first '|' (not re-trimmed — parity with
    // split()'s first piece in parse_line).
    const size_t first_pipe = stripped.find('|');
    const std::string_view tag = first_pipe == std::string_view::npos
                                     ? stripped
                                     : stripped.substr(0, first_pipe);
    const auto it = std::lower_bound(
        by_tag_.begin(), by_tag_.end(), tag,
        [](const auto& entry, std::string_view key) {
          return entry.first < key;
        });
    if (it == by_tag_.end() || it->first != tag) {
      ++stats_.parse_errors;
      block.errors.push_back(
          BlockError{line_offset, line,
                     Status(ErrorCode::kParseError,
                            "unknown row tag: " + std::string(tag))});
      continue;
    }
    const size_t slot = static_cast<size_t>(it - by_tag_.begin());
    const TableInfo& info = it->second;
    SlotScratch& scratch = scratch_[slot];
    const size_t expected_fields =
        info.def->columns.size() - (info.computed_htmid_column >= 0 ? 1 : 0);

    const size_t mark = scratch.fields.size();
    size_t field_count = 0;
    if (first_pipe != std::string_view::npos) {
      size_t field_start = first_pipe + 1;
      while (true) {
        const size_t next_pipe = stripped.find('|', field_start);
        if (next_pipe == std::string_view::npos) {
          scratch.fields.push_back(stripped.substr(field_start));
          ++field_count;
          break;
        }
        scratch.fields.push_back(
            stripped.substr(field_start, next_pipe - field_start));
        ++field_count;
        field_start = next_pipe + 1;
      }
    }
    if (field_count != expected_fields) {
      ++stats_.parse_errors;
      scratch.fields.resize(mark);
      block.errors.push_back(BlockError{
          line_offset, line,
          Status(ErrorCode::kParseError,
                 str_format("%s row has %zu fields, expected %zu",
                            std::string(tag).c_str(), field_count,
                            expected_fields))});
      continue;
    }
    scratch.line_offsets.push_back(line_offset);
    scratch.lines.push_back(line);
  }

  // ---- Phase B: column-at-a-time conversion into the column vectors.
  for (size_t slot = 0; slot < by_tag_.size(); ++slot) {
    SlotScratch& scratch = scratch_[slot];
    const size_t rows = scratch.line_offsets.size();
    if (rows == 0) continue;
    const TableInfo& info = by_tag_[slot].second;
    db::ColumnBatch& batch = block.batches[slot];
    const size_t stride =
        info.def->columns.size() - (info.computed_htmid_column >= 0 ? 1 : 0);
    scratch.bad.assign(rows, 0);

    // First structural error per row wins (the row path stops at the first
    // bad column); later columns of a bad row are skipped entirely.
    const auto record_row_error = [&](size_t r, size_t c,
                                      const Status& status) {
      scratch.bad[r] = 1;
      ++stats_.parse_errors;
      block.errors.push_back(BlockError{
          scratch.line_offsets[r], scratch.lines[r],
          Status(ErrorCode::kParseError,
                 info.def->name + "." + info.def->columns[c].name + ": " +
                     status.message())});
    };

    for (size_t c = 0; c < info.def->columns.size(); ++c) {
      if (static_cast<int>(c) == info.computed_htmid_column) {
        for (size_t r = 0; r < rows; ++r) batch.push_null(c);  // filled below
        continue;
      }
      const size_t f =
          static_cast<size_t>(info.field_of_column[c]);
      const db::ColumnType type = info.def->columns[c].type;
      switch (type) {
        case db::ColumnType::kInt32:
        case db::ColumnType::kInt64:
        case db::ColumnType::kTimestamp:
          for (size_t r = 0; r < rows; ++r) {
            if (scratch.bad[r]) {
              batch.push_null(c);
              continue;
            }
            const std::string_view field =
                trim(scratch.fields[r * stride + f]);
            if (is_null_field(field)) {
              batch.push_null(c);
              continue;
            }
            int64_t v = 0;
            const auto [end, ec] =
                std::from_chars(field.data(), field.data() + field.size(), v);
            bool fast_ok =
                ec == std::errc() && end == field.data() + field.size();
            if (fast_ok && type == db::ColumnType::kInt32 &&
                (v < std::numeric_limits<int32_t>::min() ||
                 v > std::numeric_limits<int32_t>::max())) {
              fast_ok = false;
            }
            if (!fast_ok) {
              // Fallback keeps exact row-path semantics for the edge cases
              // from_chars treats differently (leading '+', range errors —
              // and their exact error messages).
              const auto parsed = db::Value::parse_as(type, field);
              if (!parsed.is_ok()) {
                record_row_error(r, c, parsed.status());
                batch.push_null(c);
                continue;
              }
              v = type == db::ColumnType::kInt32
                      ? static_cast<int64_t>(parsed->as_i32())
                      : parsed->as_i64();
            }
            batch.push_i64(c, v);
          }
          break;
        case db::ColumnType::kDouble:
          for (size_t r = 0; r < rows; ++r) {
            if (scratch.bad[r]) {
              batch.push_null(c);
              continue;
            }
            const std::string_view field =
                trim(scratch.fields[r * stride + f]);
            if (is_null_field(field)) {
              batch.push_null(c);
              continue;
            }
            double v = 0.0;
            const auto [end, ec] =
                std::from_chars(field.data(), field.data() + field.size(), v);
            // Fast path only for fully-consumed, in-range, normal-or-zero
            // results; everything else (hex floats, inf/NaN, subnormals —
            // where strtod's ERANGE behaviour differs) re-parses through
            // Value::parse_as so values and error messages stay identical
            // to the row path.
            const bool fast_ok =
                ec == std::errc() && end == field.data() + field.size() &&
                (std::fpclassify(v) == FP_NORMAL || v == 0.0);
            if (!fast_ok) {
              const auto parsed = db::Value::parse_as(type, field);
              if (!parsed.is_ok()) {
                record_row_error(r, c, parsed.status());
                batch.push_null(c);
                continue;
              }
              v = parsed->as_f64();
            }
            batch.push_f64(c, v);
          }
          break;
        case db::ColumnType::kString:
          for (size_t r = 0; r < rows; ++r) {
            if (scratch.bad[r]) {
              batch.push_null(c);
              continue;
            }
            const std::string_view field =
                trim(scratch.fields[r * stride + f]);
            if (is_null_field(field)) {
              batch.push_null(c);
            } else {
              batch.push_str(c, field);
            }
          }
          break;
      }
    }

    // Transformation: magnitude precision, same rounding as the row path.
    for (const int mc : info.mag_precision_columns) {
      const size_t col = static_cast<size_t>(mc);
      for (size_t r = 0; r < rows; ++r) {
        if (scratch.bad[r] || batch.is_null(r, col)) continue;
        batch.set_f64(col, r,
                      std::round(batch.f64_at(r, col) * 1e4) / 1e4);
      }
    }

    // Computation: htmid from (ra, dec) in a tight loop.
    if (info.computed_htmid_column >= 0) {
      const size_t hc = static_cast<size_t>(info.computed_htmid_column);
      const size_t rc = static_cast<size_t>(info.ra_column);
      const size_t dc = static_cast<size_t>(info.dec_column);
      for (size_t r = 0; r < rows; ++r) {
        if (scratch.bad[r] || batch.is_null(r, rc) || batch.is_null(r, dc)) {
          continue;  // htmid stays NULL; the server's NOT NULL rejects it
        }
        const double ra = batch.f64_at(r, rc);
        const double dec = batch.f64_at(r, dc);
        if (!(ra >= 0.0 && ra <= 360.0) || !(dec >= -90.0 && dec <= 90.0)) {
          continue;
        }
        batch.set_i64(hc, r,
                      static_cast<int64_t>(
                          htm::htm_id_radec(ra, dec, kHtmDepth)));
        ++stats_.htmids_computed;
      }
    }

    // ---- Phase C: stable compaction of rows that failed conversion, with
    // surviving rows' line offsets recorded for the loaders.
    int64_t bad_count = 0;
    for (size_t r = 0; r < rows; ++r) bad_count += scratch.bad[r];
    if (bad_count > 0) {
      std::vector<uint32_t> bad_rows;
      bad_rows.reserve(static_cast<size_t>(bad_count));
      for (size_t r = 0; r < rows; ++r) {
        if (scratch.bad[r]) bad_rows.push_back(static_cast<uint32_t>(r));
      }
      batch.remove_rows(bad_rows);
    }
    std::vector<int64_t>& row_lines = block.row_lines[slot];
    for (size_t r = 0; r < rows; ++r) {
      if (!scratch.bad[r]) row_lines.push_back(scratch.line_offsets[r]);
    }
    stats_.data_rows += static_cast<int64_t>(rows) - bad_count;
  }

  // Errors surfaced per slot/column above; report them in line order like
  // the row path would.
  std::stable_sort(block.errors.begin(), block.errors.end(),
                   [](const BlockError& a, const BlockError& b) {
                     return a.line_offset < b.line_offset;
                   });
}

}  // namespace sky::catalog
