#include "storage/wal.h"

#include <algorithm>
#include <chrono>
#include <thread>

namespace sky::storage {

namespace {
// Fixed per-record header: type + txn id + table id + extent + length.
constexpr int64_t kRecordHeaderBytes = 1 + 8 + 4 + 4 + 4;
}  // namespace

void WriteAheadLog::append(WalRecordType type, uint64_t txn_id,
                           uint32_t table_id, std::string payload,
                           uint32_t extent) {
  const std::scoped_lock lock(mu_);
  const int64_t record_bytes =
      kRecordHeaderBytes + static_cast<int64_t>(payload.size());
  ++append_seq_;
  ++stats_.records;
  stats_.bytes_appended += record_bytes;
  unflushed_bytes_ += record_bytes;
  stats_.max_unflushed_bytes =
      std::max(stats_.max_unflushed_bytes, unflushed_bytes_);
  if (retain_records_) {
    records_.push_back(
        WalRecord{type, txn_id, table_id, std::move(payload), extent});
  }
}

int64_t WriteAheadLog::flush() {
  std::unique_lock<std::mutex> lock(mu_);
  // Everything appended before this call must be durable when we return.
  const uint64_t want = append_seq_;
  bool waited = false;
  while (true) {
    if (durable_seq_ >= want) {
      // Covered — either nothing was pending, or a concurrent leader's
      // flush included our records (group commit).
      if (waited) ++stats_.group_piggybacks;
      return 0;
    }
    if (!flush_in_progress_) break;
    waited = true;
    flush_cv_.wait(lock);
  }
  // Become the flush leader for everything appended so far (possibly more
  // than `want` — later appends ride along for free).
  flush_in_progress_ = true;
  const uint64_t target = append_seq_;
  const int64_t flushed = unflushed_bytes_;
  unflushed_bytes_ = 0;
  if (flushed > 0) {
    ++stats_.flushes;
    stats_.bytes_flushed += flushed;
  }
  if (flush_latency_ > 0) {
    // The modeled device write happens outside the append mutex so other
    // sessions keep appending (and queueing behind this flush) meanwhile.
    lock.unlock();
    std::this_thread::sleep_for(std::chrono::nanoseconds(flush_latency_));
    lock.lock();
  }
  durable_seq_ = std::max(durable_seq_, target);
  flush_in_progress_ = false;
  lock.unlock();
  flush_cv_.notify_all();
  return flushed;
}

int64_t WriteAheadLog::unflushed_bytes() const {
  const std::scoped_lock lock(mu_);
  return unflushed_bytes_;
}

WalStats WriteAheadLog::stats() const {
  const std::scoped_lock lock(mu_);
  return stats_;
}

std::vector<WalRecord> WriteAheadLog::records() const {
  const std::scoped_lock lock(mu_);
  return records_;
}

}  // namespace sky::storage
