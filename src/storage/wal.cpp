#include "storage/wal.h"

#include <algorithm>
#include <chrono>
#include <thread>

namespace sky::storage {

namespace {
// Fixed per-record header: type + txn id + table id + extent + length.
constexpr int64_t kRecordHeaderBytes = 1 + 8 + 4 + 4 + 4;

Nanos steady_now() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

void WriteAheadLog::set_commit_policy(
    std::optional<Nanos> commit_window,
    std::optional<int64_t> max_group_commits) {
  {
    const std::scoped_lock lock(mu_);
    if (commit_window.has_value()) {
      options_.commit_window = std::max<Nanos>(*commit_window, 0);
    }
    if (max_group_commits.has_value()) {
      options_.max_group_commits = std::max<int64_t>(*max_group_commits, 1);
    }
  }
  // A leader holding the window open re-reads max_group_commits on wakeup;
  // poke it so a lowered cap closes the window without waiting it out.
  window_cv_.notify_all();
}

void WriteAheadLog::append(WalRecordType type, uint64_t txn_id,
                           uint32_t table_id, std::string payload,
                           uint32_t extent) {
  const std::scoped_lock lock(mu_);
  const int64_t record_bytes =
      kRecordHeaderBytes + static_cast<int64_t>(payload.size());
  ++append_seq_;
  ++stats_.records;
  stats_.bytes_appended += record_bytes;
  unflushed_bytes_ += record_bytes;
  stats_.max_unflushed_bytes =
      std::max(stats_.max_unflushed_bytes, unflushed_bytes_);
  // Coalescing-window fast path: a window is only worth holding open when
  // the pending region already mixes transactions — a lone loader's leader
  // has nobody to wait for.
  if (pending_region_empty_) {
    pending_region_empty_ = false;
    pending_txn_ = txn_id;
  } else if (txn_id != pending_txn_) {
    pending_multi_txn_ = true;
  }
  if (options_.retain_records) {
    records_.push_back(
        WalRecord{type, txn_id, table_id, std::move(payload), extent});
  }
}

int64_t WriteAheadLog::write_out_locked(std::unique_lock<std::mutex>& lock) {
  const uint64_t target = append_seq_;
  const int64_t flushed = unflushed_bytes_;
  unflushed_bytes_ = 0;
  // Appends arriving during the device write start a fresh pending region.
  pending_region_empty_ = true;
  pending_multi_txn_ = false;
  if (flushed > 0) {
    ++stats_.flushes;
    stats_.bytes_flushed += flushed;
  }
  if (options_.flush_latency > 0) {
    // The modeled device write happens outside the append mutex so other
    // sessions keep appending (and queueing behind this flush) meanwhile.
    lock.unlock();
    std::this_thread::sleep_for(
        std::chrono::nanoseconds(options_.flush_latency));
    lock.lock();
  }
  durable_seq_ = std::max(durable_seq_, target);
  return flushed;
}

WalFlushResult WriteAheadLog::flush(bool expect_group) {
  WalFlushResult result;
  std::unique_lock<std::mutex> lock(mu_);
  if (options_.durability == DurabilityMode::kRelaxed) {
    // Ack at append: the commit record is in the log buffer; durability
    // advances when a sync() checkpoint covers it (see durable_lsn()).
    ++stats_.relaxed_acks;
    return result;
  }
  // Everything appended before this call must be durable when we return.
  const uint64_t want = append_seq_;
  if (durable_seq_ >= want) return result;  // nothing pending
  ++stats_.commit_requests;
  ++committers_waiting_;
  // A newly queued committer may complete a leader's group.
  if (leader_in_window_ &&
      committers_waiting_ >= options_.max_group_commits) {
    window_cv_.notify_all();
  }
  bool waited = false;
  while (true) {
    if (durable_seq_ >= want) {
      // Covered — a concurrent leader's flush included our records
      // (group commit).
      --committers_waiting_;
      if (waited) {
        ++stats_.group_piggybacks;
        result.piggybacked = true;
      }
      return result;
    }
    if (!flush_in_progress_) break;
    waited = true;
    flush_cv_.wait(lock);
  }
  // Become the flush leader for everything appended so far (possibly more
  // than `want` — later appends ride along for free).
  flush_in_progress_ = true;
  if (options_.commit_window > 0 && (pending_multi_txn_ || expect_group) &&
      committers_waiting_ < options_.max_group_commits) {
    // Hold the device write open so commits closing in behind us fold into
    // this flush. The wait is on a condition variable, so the log mutex is
    // free and loaders keep appending meanwhile.
    leader_in_window_ = true;
    const Nanos wait_start = steady_now();
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::nanoseconds(options_.commit_window);
    while (committers_waiting_ < options_.max_group_commits &&
           !window_close_requested_) {
      if (window_cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
        break;
      }
    }
    leader_in_window_ = false;
    window_close_requested_ = false;
    result.leader_wait = steady_now() - wait_start;
    stats_.leader_wait_ns += result.leader_wait;
  }
  // Commits covered by this flush: everyone queued right now, us included.
  // (A committer whose records are appended but who calls flush() after
  // this snapshot still piggybacks; the histogram counts the queue at
  // write-out time.)
  result.group_size = committers_waiting_;
  const size_t bucket = static_cast<size_t>(
      std::min<int64_t>(std::max<int64_t>(result.group_size, 1),
                        static_cast<int64_t>(WalStats::kGroupSizeBuckets)) -
      1);
  ++stats_.group_size_hist[bucket];
  result.led = true;
  result.bytes_flushed = write_out_locked(lock);
  --committers_waiting_;
  flush_in_progress_ = false;
  lock.unlock();
  flush_cv_.notify_all();
  return result;
}

int64_t WriteAheadLog::sync() {
  std::unique_lock<std::mutex> lock(mu_);
  const uint64_t want = append_seq_;
  while (durable_seq_ < want && flush_in_progress_) {
    // Close an open coalescing window: a checkpoint must not wait for it.
    if (leader_in_window_) {
      window_close_requested_ = true;
      window_cv_.notify_all();
    }
    flush_cv_.wait(lock);
  }
  if (durable_seq_ >= want) return 0;
  flush_in_progress_ = true;
  const int64_t flushed = write_out_locked(lock);
  flush_in_progress_ = false;
  lock.unlock();
  flush_cv_.notify_all();
  return flushed;
}

int64_t WriteAheadLog::unflushed_bytes() const {
  const std::scoped_lock lock(mu_);
  return unflushed_bytes_;
}

uint64_t WriteAheadLog::appended_lsn() const {
  const std::scoped_lock lock(mu_);
  return append_seq_;
}

uint64_t WriteAheadLog::durable_lsn() const {
  const std::scoped_lock lock(mu_);
  return durable_seq_;
}

WalStats WriteAheadLog::stats() const {
  const std::scoped_lock lock(mu_);
  return stats_;
}

std::vector<WalRecord> WriteAheadLog::records() const {
  const std::scoped_lock lock(mu_);
  return records_;
}

}  // namespace sky::storage
