#include "storage/wal.h"

#include <algorithm>

namespace sky::storage {

namespace {
// Fixed per-record header: type + txn id + table id + length.
constexpr int64_t kRecordHeaderBytes = 1 + 8 + 4 + 4;
}  // namespace

void WriteAheadLog::append(WalRecordType type, uint64_t txn_id,
                           uint32_t table_id, std::string payload) {
  const int64_t record_bytes =
      kRecordHeaderBytes + static_cast<int64_t>(payload.size());
  ++stats_.records;
  stats_.bytes_appended += record_bytes;
  unflushed_bytes_ += record_bytes;
  stats_.max_unflushed_bytes =
      std::max(stats_.max_unflushed_bytes, unflushed_bytes_);
  if (retain_records_) {
    records_.push_back(WalRecord{type, txn_id, table_id, std::move(payload)});
  }
}

int64_t WriteAheadLog::flush() {
  const int64_t flushed = unflushed_bytes_;
  if (flushed > 0) {
    ++stats_.flushes;
    stats_.bytes_flushed += flushed;
    unflushed_bytes_ = 0;
  }
  return flushed;
}

}  // namespace sky::storage
