// Sharded table heap: N independent extents for same-table parallel loads.
//
// A single HeapFile serializes every append on whatever latch its owner
// wraps around it, so parallel loaders targeting the same hot table (the
// interleaved-catalog pattern SkyLoader was built for) queue on one append
// stream even when everything else is fine-grained. Related work on survey
// ingestion (Nieto-Santisteban et al., "Entering the Parallel Zone";
// Sutorius et al.'s pseudo-parallel curation environment) partitions
// same-table writers onto independent storage units for exactly this reason.
//
// A ShardedHeap owns a fixed set of extents (each a HeapFile — the existing
// page/slot structure) with one latch per extent. Concurrent sessions append
// to distinct extents and only serialize when they collide on one; the
// owning table's latch is left for metadata (DDL, row-count snapshots).
// Slot addresses are extent-qualified ({extent, page, slot}); scan() visits
// extents in ascending order, pages and slots within, so iteration over a
// quiesced heap is deterministic.
//
// Thread safety: fully internally synchronized. append/publish/discard/
// mark_deleted take the extent's latch exclusive; read() and scan() take it
// shared. Aggregate counters are relaxed atomics, so row_count()/
// total_bytes() snapshots never touch a latch. Returned string_views obey
// the HeapFile stability contract (row bytes never move), so a view read
// under the latch stays valid after release even while other threads append.
//
// `append_write_latency` models the synchronous write to the extent's
// storage unit: it is slept *while holding the extent latch*, so appends to
// one extent queue behind each other (one storage unit = one write stream)
// while appends to other extents proceed — the contrast measured by
// bench_engine_scaling's same-table scenario.
#pragma once

#include <atomic>
#include <memory>
#include <shared_mutex>
#include <vector>

#include "common/status.h"
#include "common/units.h"
#include "storage/heap_file.h"

namespace sky::storage {

// Extent count ceiling fixed by row-id packing (db/table.h: 8 extent bits).
constexpr uint32_t kMaxHeapExtents = 256;

class ShardedHeap {
 public:
  explicit ShardedHeap(uint32_t extent_count = 1,
                       Nanos append_write_latency = 0);
  // Move-constructible (atomics copied relaxed) so db::Table stays movable
  // during engine construction; never moved once shared across threads.
  ShardedHeap(ShardedHeap&& other) noexcept;
  ShardedHeap& operator=(ShardedHeap&&) = delete;

  uint32_t extent_count() const {
    return static_cast<uint32_t>(extents_.size());
  }

  struct AppendResult {
    SlotId slot;
    bool opened_new_page = false;
    Nanos latch_wait_ns = 0;  // time blocked on a contended extent latch
    // View of the stored row bytes (stable for the heap's lifetime).
    std::string_view bytes;
  };
  // Append a live row to the given extent (clamped into range).
  AppendResult append(uint32_t extent, std::string row_bytes);
  // Two-phase insert support (see heap_file.h): append hidden, then
  // publish() once constraints are settled, or discard() on failure.
  AppendResult append_pending(uint32_t extent, std::string row_bytes);
  Status publish(SlotId slot);
  Status discard(SlotId slot);

  // Batch append: every row lands live in the given extent under ONE latch
  // acquisition (the columnar ingest hot path — constraints are settled
  // under the exclusive index latch before this is called, so the rows skip
  // the pending/publish handshake). Slot layout is identical to the same
  // rows appended one by one; the modeled per-append device write is slept
  // once for the whole batch (rows.size() x append_write_latency) under the
  // latch, preserving the one-write-stream-per-extent contention model.
  struct BatchAppendResult {
    std::vector<SlotId> slots;   // one per row, in submission order
    // Views of the stored rows, aligned with `slots` (stable views).
    std::vector<std::string_view> views;
    int64_t pages_opened = 0;
    Nanos latch_wait_ns = 0;
  };
  BatchAppendResult append_batch(uint32_t extent,
                                 std::vector<std::string> rows);

  Result<std::string_view> read(SlotId slot) const;
  Status mark_deleted(SlotId slot);

  // Latch-free aggregate snapshots (relaxed atomics; exact once writers are
  // quiesced, monotone-approximate while they run).
  int64_t row_count() const {
    return live_rows_.load(std::memory_order_relaxed);
  }
  int64_t total_bytes() const {
    return total_bytes_.load(std::memory_order_relaxed);
  }
  int64_t page_count() const {
    return pages_.load(std::memory_order_relaxed);
  }

  // Per-extent telemetry, read under each extent's latch in turn.
  struct ExtentStats {
    int64_t rows = 0;
    int64_t pages = 0;
    int64_t bytes = 0;
  };
  std::vector<ExtentStats> extent_stats() const;

  // The extent that has absorbed the fewest appended bytes so far (pending
  // rows included, tombstones not subtracted — heap files never reclaim, so
  // bytes-ever-appended is the true occupancy). Latch-free: reads one
  // relaxed atomic per extent, so assignment policies (db::ExtentAssignment
  // ::kLeastLoaded) can call it on every admission. Ties break to the
  // lowest extent index.
  uint32_t least_loaded_extent() const;

  // Visit every live row, extent by extent in ascending order (deterministic
  // for a quiesced heap). Holds one extent latch (shared) at a time.
  template <typename Fn>  // Fn(SlotId, std::string_view)
  void scan(Fn&& fn) const {
    for (const auto& extent : extents_) {
      const std::shared_lock<std::shared_mutex> latch(extent->latch);
      extent->file.scan(fn);
    }
  }

 private:
  struct Extent {
    explicit Extent(uint32_t id) : file(id) {}
    mutable std::shared_mutex latch;
    HeapFile file;
    // Bytes ever appended to this extent (pending included) — the
    // least-loaded assignment signal, readable without the latch.
    std::atomic<int64_t> appended_bytes{0};
  };

  AppendResult append_with(uint32_t extent, std::string row_bytes,
                           bool pending);
  Extent& extent_for(SlotId slot) const;

  // unique_ptr elements: the extent array never moves and Extent itself
  // (holding a mutex) stays non-movable.
  std::vector<std::unique_ptr<Extent>> extents_;
  const Nanos append_write_latency_;
  std::atomic<int64_t> live_rows_{0};
  std::atomic<int64_t> total_bytes_{0};
  std::atomic<int64_t> pages_{0};
};

}  // namespace sky::storage
