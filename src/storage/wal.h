// Write-ahead (redo) log model.
//
// Commit processing is one of the paper's tuning levers (section 4.5.2:
// "reduce frequency of transaction commits"): each commit forces a redo
// flush, so committing rarely amortizes that cost, at the price of larger
// redo/undo volumes. The log tracks appended bytes, flush boundaries, and
// (optionally, for tests) the full record stream for replay verification.
//
// Thread safety: all methods are safe to call concurrently. append() runs
// under a short internal mutex. flush() has group-commit semantics: one
// caller becomes the flush leader and writes out everything appended so far;
// callers arriving while a flush is in flight wait for it and, if it already
// covers their records, return without issuing a second device write (the
// WalStats::group_piggybacks counter). With a modeled flush latency the
// leader sleeps *outside* the append mutex, so concurrent appenders keep
// running while redo is "on its way to disk" — this is what lets N parallel
// loaders pay ~1 log-device write per commit burst instead of N.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/units.h"

namespace sky::storage {

enum class WalRecordType : uint8_t {
  kInsert = 1,
  kRollbackInsert = 2,
  kCommit = 3,
};

struct WalRecord {
  WalRecordType type;
  uint64_t txn_id;
  uint32_t table_id;
  std::string payload;  // serialized row for inserts; empty otherwise
  // Heap extent the row landed in (sharded heaps, storage/sharded_heap.h).
  // Redo must replay each insert into the *same* extent so a recovered
  // repository is extent-identical to a clean reload of the log.
  uint32_t extent = 0;
};

struct WalStats {
  int64_t records = 0;
  int64_t bytes_appended = 0;
  int64_t flushes = 0;
  int64_t bytes_flushed = 0;
  int64_t max_unflushed_bytes = 0;  // redo backlog high-water mark
  // Flush calls satisfied by another session's in-flight flush (group
  // commit): the caller's redo was already covered, no extra device write.
  int64_t group_piggybacks = 0;
};

class WriteAheadLog {
 public:
  // `retain_records`: keep every record in memory so tests can replay and
  // verify; benches leave it off. `flush_latency`: modeled redo-device write
  // time paid by each flush leader (real sleep; 0 in simulation mode, where
  // the client cost model prices log I/O instead).
  explicit WriteAheadLog(bool retain_records = false, Nanos flush_latency = 0)
      : retain_records_(retain_records), flush_latency_(flush_latency) {}

  void append(WalRecordType type, uint64_t txn_id, uint32_t table_id,
              std::string payload, uint32_t extent = 0);

  // Flush pending redo to the log device; returns bytes flushed by *this*
  // call (0 when piggybacking on a concurrent flush that covered us).
  int64_t flush();

  int64_t unflushed_bytes() const;
  // Consistent snapshots taken under the log mutex (never references into
  // concurrently mutated state).
  WalStats stats() const;
  std::vector<WalRecord> records() const;

 private:
  const bool retain_records_;
  const Nanos flush_latency_;
  mutable std::mutex mu_;
  std::condition_variable flush_cv_;
  bool flush_in_progress_ = false;
  uint64_t append_seq_ = 0;   // records appended so far
  uint64_t durable_seq_ = 0;  // highest append_seq_ covered by a flush
  int64_t unflushed_bytes_ = 0;
  WalStats stats_;
  std::vector<WalRecord> records_;
};

}  // namespace sky::storage
