// Write-ahead (redo) log model.
//
// Commit processing is one of the paper's tuning levers (section 4.5.2:
// "reduce frequency of transaction commits"): each commit forces a redo
// flush, so committing rarely amortizes that cost, at the price of larger
// redo/undo volumes. The log tracks appended bytes, flush boundaries, and
// (optionally, for tests) the full record stream for replay verification.
//
// Thread safety: all methods are safe to call concurrently. append() runs
// under a short internal mutex. flush() has group-commit semantics: one
// caller becomes the flush leader and writes out everything appended so far;
// callers arriving while a flush is in flight wait for it and, if it already
// covers their records, return without issuing a second device write (the
// WalStats::group_piggybacks counter).
//
// Commit-coalescing window (WalOptions::commit_window): before issuing the
// device write, the leader holds the write open for up to commit_window —
// closing early once max_group_commits committers have queued — so commits
// arriving close together fold into one flush instead of one flush each.
// The wait happens on a condition variable with the log mutex released, so
// loaders keep appending (and queueing their own commits) while the window
// is open. A leader whose pending redo all belongs to a single transaction
// skips the window entirely — there is nobody to coalesce with, so a lone
// loader never pays the wait — unless the caller passes expect_group=true
// (the engine does when other transactions are live), which keeps the
// window open for commits whose appends have not landed yet. Commit acks
// remain strictly ordered after the covering flush.
//
// Durability (WalOptions::durability):
//   * kStrict (default) — flush() returns only once a device write covers
//     the caller's records. What the engine acks is durable.
//   * kRelaxed (opt-in) — flush() acks immediately at append; redo reaches
//     the device only when sync() is called (a checkpoint). durable_lsn()
//     is the honest watermark: records with sequence <= durable_lsn()
//     survived, records above it may be lost in a crash.
//
// With a modeled flush latency the leader sleeps *outside* the append mutex,
// so concurrent appenders keep running while redo is "on its way to disk" —
// this is what lets N parallel loaders pay ~1 log-device write per commit
// burst instead of N.
#pragma once

#include <array>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/units.h"

namespace sky::storage {

enum class WalRecordType : uint8_t {
  kInsert = 1,
  kRollbackInsert = 2,
  kCommit = 3,
  // One redo record covering a whole columnar batch append (the batch
  // ingest hot path): the payload is a sequence of
  // [u32 big-endian row length][encoded row bytes] entries, all appended to
  // the same heap extent in payload order. Recovery replays the rows one by
  // one into that extent, so a recovered repository is extent-identical to
  // the original whether the load used per-row or batch redo.
  kInsertBatch = 4,
};

struct WalRecord {
  WalRecordType type;
  uint64_t txn_id;
  uint32_t table_id;
  std::string payload;  // serialized row for inserts; empty otherwise
  // Heap extent the row landed in (sharded heaps, storage/sharded_heap.h).
  // Redo must replay each insert into the *same* extent so a recovered
  // repository is extent-identical to a clean reload of the log.
  uint32_t extent = 0;
};

// How a commit acknowledgement relates to the covering device write.
enum class DurabilityMode {
  kStrict,   // ack only after the flush that covers the commit record
  kRelaxed,  // ack at append; durability advances via sync() (watermark)
};

struct WalOptions {
  // Keep every record in memory so tests can replay and verify; benches
  // leave it off.
  bool retain_records = false;
  // Modeled redo-device write time paid by each flush leader (real sleep;
  // 0 in simulation mode, where the client cost model prices log I/O).
  Nanos flush_latency = 0;
  // Commit-coalescing window: how long a flush leader holds the device
  // write open for other committers to fold in. 0 = flush immediately
  // (the pre-window behaviour).
  Nanos commit_window = 0;
  // Close the window early once this many committers (leader included)
  // are queued on the flush.
  int64_t max_group_commits = 8;
  DurabilityMode durability = DurabilityMode::kStrict;
};

struct WalStats {
  // Commits covered per flush: bucket i counts flushes that covered i+1
  // queued committers (last bucket = that many or more).
  static constexpr size_t kGroupSizeBuckets = 8;

  int64_t records = 0;
  int64_t bytes_appended = 0;
  int64_t flushes = 0;
  int64_t bytes_flushed = 0;
  int64_t max_unflushed_bytes = 0;  // redo backlog high-water mark
  // Flush calls satisfied by another session's in-flight flush (group
  // commit): the caller's redo was already covered, no extra device write.
  int64_t group_piggybacks = 0;
  // flush() calls that found redo pending (strict mode) — the denominator
  // of flushes-per-commit.
  int64_t commit_requests = 0;
  // Commits acked at append under DurabilityMode::kRelaxed.
  int64_t relaxed_acks = 0;
  // Total coalescing-window time flush leaders spent holding the write open.
  Nanos leader_wait_ns = 0;
  std::array<int64_t, kGroupSizeBuckets> group_size_hist{};
};

// What one flush() call did (commit-path telemetry).
struct WalFlushResult {
  int64_t bytes_flushed = 0;  // written by *this* call (0 unless it led)
  bool led = false;           // this caller issued the device write
  bool piggybacked = false;   // covered by another caller's flush
  int64_t group_size = 0;     // committers the flush covered, when led
  Nanos leader_wait = 0;      // coalescing-window wait paid, when led
};

class WriteAheadLog {
 public:
  explicit WriteAheadLog(WalOptions options = {}) : options_(options) {}

  // Copy under the log mutex: commit policy is live-adjustable, so a
  // reference into options_ would race set_commit_policy.
  WalOptions wal_options() const {
    const std::scoped_lock lock(mu_);
    return options_;
  }

  // Live commit-policy update (control plane). Takes effect on the next
  // flush: a leader already holding the window open keeps its original
  // deadline (bounded staleness of one window), but max_group_commits is
  // re-read at every wakeup and applies immediately. Unset fields keep
  // their current value.
  void set_commit_policy(std::optional<Nanos> commit_window,
                         std::optional<int64_t> max_group_commits);

  void append(WalRecordType type, uint64_t txn_id, uint32_t table_id,
              std::string payload, uint32_t extent = 0);

  // Commit path: make everything appended so far durable (strict mode) or
  // ack immediately (relaxed mode). Group commit: the caller may lead a
  // flush — holding the coalescing window open first — or ride one already
  // in flight. expect_group tells a leader whose pending redo is
  // single-transaction to hold the window anyway because concurrent
  // committers exist whose appends have not landed yet (the engine passes
  // its live-transaction count); a truly lone caller leaves it false and
  // never waits.
  WalFlushResult flush(bool expect_group = false);

  // Force pending redo to the device regardless of durability mode (the
  // relaxed-mode checkpoint). Never waits a coalescing window. Returns the
  // bytes written by this call.
  int64_t sync();

  int64_t unflushed_bytes() const;
  // LSNs are record sequence numbers: the Nth appended record has sequence
  // N (1-based), matching its position in records(). appended_lsn() is the
  // last sequence handed out; durable_lsn() is the watermark — every record
  // with sequence <= durable_lsn() has been covered by a device write,
  // records above it would be lost in a crash.
  uint64_t appended_lsn() const;
  uint64_t durable_lsn() const;
  // Consistent snapshots taken under the log mutex (never references into
  // concurrently mutated state).
  WalStats stats() const;
  std::vector<WalRecord> records() const;

 private:
  // Pre: lock held, flush_in_progress_ set by the caller. Snapshot the
  // pending region and write it out (modeled latency paid with the lock
  // dropped); advances durable_seq_. Returns bytes written.
  int64_t write_out_locked(std::unique_lock<std::mutex>& lock);

  WalOptions options_;  // commit_window / max_group_commits mutate under mu_
  mutable std::mutex mu_;
  std::condition_variable flush_cv_;   // flush completion (followers wait)
  std::condition_variable window_cv_;  // wakes a leader holding the window
  bool flush_in_progress_ = false;
  bool leader_in_window_ = false;
  bool window_close_requested_ = false;  // sync() asked the leader to write
  int64_t committers_waiting_ = 0;  // flush() callers not yet covered
  uint64_t append_seq_ = 0;   // records appended so far
  uint64_t durable_seq_ = 0;  // highest append_seq_ covered by a flush
  int64_t unflushed_bytes_ = 0;
  // Single-transaction fast path for the window: track whether the pending
  // (unflushed) region holds records from more than one transaction.
  bool pending_region_empty_ = true;
  bool pending_multi_txn_ = false;
  uint64_t pending_txn_ = 0;
  WalStats stats_;
  std::vector<WalRecord> records_;
};

}  // namespace sky::storage
