// Write-ahead (redo) log model.
//
// Commit processing is one of the paper's tuning levers (section 4.5.2:
// "reduce frequency of transaction commits"): each commit forces a redo
// flush, so committing rarely amortizes that cost, at the price of larger
// redo/undo volumes. The log tracks appended bytes, flush boundaries, and
// (optionally, for tests) the full record stream for replay verification.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace sky::storage {

enum class WalRecordType : uint8_t {
  kInsert = 1,
  kRollbackInsert = 2,
  kCommit = 3,
};

struct WalRecord {
  WalRecordType type;
  uint64_t txn_id;
  uint32_t table_id;
  std::string payload;  // serialized row for inserts; empty otherwise
};

struct WalStats {
  int64_t records = 0;
  int64_t bytes_appended = 0;
  int64_t flushes = 0;
  int64_t bytes_flushed = 0;
  int64_t max_unflushed_bytes = 0;  // redo backlog high-water mark
};

class WriteAheadLog {
 public:
  // `retain_records`: keep every record in memory so tests can replay and
  // verify; benches leave it off.
  explicit WriteAheadLog(bool retain_records = false)
      : retain_records_(retain_records) {}

  void append(WalRecordType type, uint64_t txn_id, uint32_t table_id,
              std::string payload);

  // Flush pending redo to the log device; returns bytes flushed.
  int64_t flush();

  int64_t unflushed_bytes() const { return unflushed_bytes_; }
  const WalStats& stats() const { return stats_; }
  const std::vector<WalRecord>& records() const { return records_; }

 private:
  bool retain_records_;
  int64_t unflushed_bytes_ = 0;
  WalStats stats_;
  std::vector<WalRecord> records_;
};

}  // namespace sky::storage
