#include "storage/heap_file.h"

namespace sky::storage {

HeapFile::AppendResult HeapFile::append_with_state(std::string row_bytes,
                                                   RowState state) {
  const int64_t row_size = static_cast<int64_t>(row_bytes.size());
  bool opened_new_page = false;
  if (pages_.empty() ||
      pages_.back().bytes_used + row_size > kPageSize) {
    pages_.emplace_back();
    opened_new_page = true;
  }
  Page& page = pages_.back();
  page.bytes_used += row_size;
  page.rows.push_back(std::move(row_bytes));
  page.states.push_back(state);
  if (state == RowState::kLive) {
    ++live_rows_;
    total_bytes_ += row_size;
  }
  const SlotId slot{extent_id_,
                    static_cast<uint32_t>(pages_.size() - 1),
                    static_cast<uint32_t>(page.rows.size() - 1)};
  return AppendResult{slot, opened_new_page,
                      std::string_view(page.rows.back())};
}

HeapFile::AppendResult HeapFile::append(std::string row_bytes) {
  return append_with_state(std::move(row_bytes), RowState::kLive);
}

HeapFile::AppendResult HeapFile::append_pending(std::string row_bytes) {
  return append_with_state(std::move(row_bytes), RowState::kPending);
}

Result<HeapFile::Page*> HeapFile::page_for(SlotId slot) {
  if (slot.extent != extent_id_) {
    return Status(ErrorCode::kNotFound, "heap extent mismatch");
  }
  if (slot.page >= pages_.size()) {
    return Status(ErrorCode::kNotFound, "heap page out of range");
  }
  Page& page = pages_[slot.page];
  if (slot.slot >= page.rows.size()) {
    return Status(ErrorCode::kNotFound, "heap slot out of range");
  }
  return &page;
}

Result<const HeapFile::Page*> HeapFile::page_for(SlotId slot) const {
  SKY_ASSIGN_OR_RETURN(Page * page,
                       const_cast<HeapFile*>(this)->page_for(slot));
  return static_cast<const Page*>(page);
}

Result<std::string_view> HeapFile::read(SlotId slot) const {
  SKY_ASSIGN_OR_RETURN(const Page* page, page_for(slot));
  if (page->states[slot.slot] == RowState::kPending) {
    return Status(ErrorCode::kNotFound, "heap slot not yet published");
  }
  if (page->states[slot.slot] == RowState::kDead) {
    return Status(ErrorCode::kNotFound, "heap slot tombstoned");
  }
  return std::string_view(page->rows[slot.slot]);
}

Status HeapFile::publish(SlotId slot) {
  SKY_ASSIGN_OR_RETURN(Page * page, page_for(slot));
  if (page->states[slot.slot] != RowState::kPending) {
    return Status(ErrorCode::kFailedPrecondition, "heap slot not pending");
  }
  page->states[slot.slot] = RowState::kLive;
  ++live_rows_;
  total_bytes_ += static_cast<int64_t>(page->rows[slot.slot].size());
  return ok_status();
}

Status HeapFile::discard(SlotId slot) {
  SKY_ASSIGN_OR_RETURN(Page * page, page_for(slot));
  if (page->states[slot.slot] != RowState::kPending) {
    return Status(ErrorCode::kFailedPrecondition, "heap slot not pending");
  }
  page->states[slot.slot] = RowState::kDead;
  return ok_status();
}

Status HeapFile::mark_deleted(SlotId slot) {
  SKY_ASSIGN_OR_RETURN(Page * page, page_for(slot));
  if (page->states[slot.slot] != RowState::kLive) {
    return Status(ErrorCode::kNotFound, "heap slot already tombstoned");
  }
  page->states[slot.slot] = RowState::kDead;
  --live_rows_;
  total_bytes_ -= static_cast<int64_t>(page->rows[slot.slot].size());
  return ok_status();
}

}  // namespace sky::storage
