#include "storage/heap_file.h"

namespace sky::storage {

HeapFile::AppendResult HeapFile::append(std::string row_bytes) {
  const int64_t row_size = static_cast<int64_t>(row_bytes.size());
  bool opened_new_page = false;
  if (pages_.empty() ||
      pages_.back().bytes_used + row_size > kPageSize) {
    pages_.emplace_back();
    opened_new_page = true;
  }
  Page& page = pages_.back();
  page.bytes_used += row_size;
  page.rows.push_back(std::move(row_bytes));
  page.deleted.push_back(false);
  ++live_rows_;
  total_bytes_ += row_size;
  const SlotId slot{static_cast<uint32_t>(pages_.size() - 1),
                    static_cast<uint32_t>(page.rows.size() - 1)};
  return AppendResult{slot, opened_new_page};
}

Result<std::string_view> HeapFile::read(SlotId slot) const {
  if (slot.page >= pages_.size()) {
    return Status(ErrorCode::kNotFound, "heap page out of range");
  }
  const Page& page = pages_[slot.page];
  if (slot.slot >= page.rows.size()) {
    return Status(ErrorCode::kNotFound, "heap slot out of range");
  }
  if (page.deleted[slot.slot]) {
    return Status(ErrorCode::kNotFound, "heap slot tombstoned");
  }
  return std::string_view(page.rows[slot.slot]);
}

Status HeapFile::mark_deleted(SlotId slot) {
  if (slot.page >= pages_.size() ||
      slot.slot >= pages_[slot.page].rows.size()) {
    return Status(ErrorCode::kNotFound, "heap slot out of range");
  }
  Page& page = pages_[slot.page];
  if (page.deleted[slot.slot]) {
    return Status(ErrorCode::kNotFound, "heap slot already tombstoned");
  }
  page.deleted[slot.slot] = true;
  --live_rows_;
  total_bytes_ -= static_cast<int64_t>(page.rows[slot.slot].size());
  return ok_status();
}

}  // namespace sky::storage
