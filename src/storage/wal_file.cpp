#include "storage/wal_file.h"

#include <cstdint>
#include <fstream>

namespace sky::storage {

namespace {

constexpr char kMagic[] = "SKYWAL2\n";
constexpr size_t kMagicLen = 8;

uint64_t fnv1a(const std::string& bytes) {
  uint64_t hash = 0xCBF29CE484222325ULL;
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001B3ULL;
  }
  return hash;
}

void put_u32(std::string& out, uint32_t v) {
  for (int shift = 24; shift >= 0; shift -= 8) {
    out.push_back(static_cast<char>((v >> shift) & 0xFF));
  }
}

void put_u64(std::string& out, uint64_t v) {
  for (int shift = 56; shift >= 0; shift -= 8) {
    out.push_back(static_cast<char>((v >> shift) & 0xFF));
  }
}

bool get_bytes(std::istream& in, size_t n, std::string& out) {
  out.resize(n);
  in.read(out.data(), static_cast<std::streamsize>(n));
  return static_cast<size_t>(in.gcount()) == n;
}

uint64_t decode_u64(const std::string& bytes, size_t at) {
  uint64_t v = 0;
  for (size_t i = 0; i < 8; ++i) {
    v = (v << 8) | static_cast<unsigned char>(bytes[at + i]);
  }
  return v;
}

uint32_t decode_u32(const std::string& bytes, size_t at) {
  uint32_t v = 0;
  for (size_t i = 0; i < 4; ++i) {
    v = (v << 8) | static_cast<unsigned char>(bytes[at + i]);
  }
  return v;
}

std::string encode_record(const WalRecord& record) {
  std::string bytes;
  bytes.push_back(static_cast<char>(record.type));
  put_u64(bytes, record.txn_id);
  put_u32(bytes, record.table_id);
  put_u32(bytes, record.extent);
  put_u32(bytes, static_cast<uint32_t>(record.payload.size()));
  bytes += record.payload;
  return bytes;
}

}  // namespace

Status write_wal_file(const std::string& path,
                      const std::vector<WalRecord>& records) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status(ErrorCode::kIoError, "cannot open WAL file: " + path);
  }
  std::string header(kMagic, kMagicLen);
  put_u64(header, records.size());
  out.write(header.data(), static_cast<std::streamsize>(header.size()));
  for (const WalRecord& record : records) {
    const std::string bytes = encode_record(record);
    std::string framed = bytes;
    put_u64(framed, fnv1a(bytes));
    out.write(framed.data(), static_cast<std::streamsize>(framed.size()));
  }
  out.flush();
  if (!out.good()) {
    return Status(ErrorCode::kIoError, "short write to WAL file: " + path);
  }
  return ok_status();
}

Result<WalReadResult> read_wal_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status(ErrorCode::kIoError, "cannot open WAL file: " + path);
  }
  std::string header;
  if (!get_bytes(in, kMagicLen + 8, header) ||
      header.compare(0, kMagicLen, kMagic, kMagicLen) != 0) {
    return Status(ErrorCode::kParseError, "not a SkyLoader WAL file: " + path);
  }
  const uint64_t declared = decode_u64(header, kMagicLen);

  WalReadResult result;
  result.records.reserve(declared);
  for (uint64_t i = 0; i < declared; ++i) {
    // Fixed prefix: type(1) txn(8) table(4) extent(4) len(4).
    std::string prefix;
    if (!get_bytes(in, 21, prefix)) {
      result.truncated = true;
      return result;
    }
    const uint32_t payload_len = decode_u32(prefix, 17);
    std::string payload;
    if (!get_bytes(in, payload_len, payload)) {
      result.truncated = true;
      return result;
    }
    std::string checksum_bytes;
    if (!get_bytes(in, 8, checksum_bytes)) {
      result.truncated = true;
      return result;
    }
    const uint64_t stored = decode_u64(checksum_bytes, 0);
    if (fnv1a(prefix + payload) != stored) {
      result.truncated = true;  // corruption: stop at the intact prefix
      return result;
    }
    WalRecord record;
    record.type = static_cast<WalRecordType>(prefix[0]);
    record.txn_id = decode_u64(prefix, 1);
    record.table_id = decode_u32(prefix, 9);
    record.extent = decode_u32(prefix, 13);
    record.payload = std::move(payload);
    result.records.push_back(std::move(record));
  }
  return result;
}

}  // namespace sky::storage
