#include "storage/sharded_heap.h"

#include <chrono>
#include <mutex>
#include <thread>

namespace sky::storage {

ShardedHeap::ShardedHeap(ShardedHeap&& other) noexcept
    : extents_(std::move(other.extents_)),
      append_write_latency_(other.append_write_latency_),
      live_rows_(other.live_rows_.load(std::memory_order_relaxed)),
      total_bytes_(other.total_bytes_.load(std::memory_order_relaxed)),
      pages_(other.pages_.load(std::memory_order_relaxed)) {}

namespace {
// Timed exclusive acquisition: fast path free, contended path pays two clock
// reads. (Mirrors db::lock_exclusive_timed; storage cannot depend on db.)
Nanos lock_extent_timed(std::shared_mutex& mu) {
  if (mu.try_lock()) return 0;
  const auto start = std::chrono::steady_clock::now();
  mu.lock();
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
      .count();
}
}  // namespace

ShardedHeap::ShardedHeap(uint32_t extent_count, Nanos append_write_latency)
    : append_write_latency_(append_write_latency) {
  if (extent_count < 1) extent_count = 1;
  if (extent_count > kMaxHeapExtents) extent_count = kMaxHeapExtents;
  extents_.reserve(extent_count);
  for (uint32_t e = 0; e < extent_count; ++e) {
    extents_.push_back(std::make_unique<Extent>(e));
  }
}

ShardedHeap::AppendResult ShardedHeap::append_with(uint32_t extent,
                                                   std::string row_bytes,
                                                   bool pending) {
  const uint32_t e = extent % extent_count();
  Extent& target = *extents_[e];
  const int64_t row_size = static_cast<int64_t>(row_bytes.size());
  AppendResult result;
  result.latch_wait_ns = lock_extent_timed(target.latch);
  const std::unique_lock<std::shared_mutex> latch(target.latch,
                                                  std::adopt_lock);
  const HeapFile::AppendResult appended =
      pending ? target.file.append_pending(std::move(row_bytes))
              : target.file.append(std::move(row_bytes));
  result.slot = appended.slot;
  result.opened_new_page = appended.opened_new_page;
  result.bytes = appended.bytes;
  if (appended.opened_new_page) {
    pages_.fetch_add(1, std::memory_order_relaxed);
  }
  target.appended_bytes.fetch_add(row_size, std::memory_order_relaxed);
  if (!pending) {
    live_rows_.fetch_add(1, std::memory_order_relaxed);
    total_bytes_.fetch_add(row_size, std::memory_order_relaxed);
  }
  if (append_write_latency_ > 0) {
    // Modeled synchronous write to this extent's storage unit: slept under
    // the extent latch so same-extent appends queue, distinct ones overlap.
    std::this_thread::sleep_for(
        std::chrono::nanoseconds(append_write_latency_));
  }
  return result;
}

ShardedHeap::AppendResult ShardedHeap::append(uint32_t extent,
                                              std::string row_bytes) {
  return append_with(extent, std::move(row_bytes), /*pending=*/false);
}

ShardedHeap::AppendResult ShardedHeap::append_pending(uint32_t extent,
                                                      std::string row_bytes) {
  return append_with(extent, std::move(row_bytes), /*pending=*/true);
}

ShardedHeap::BatchAppendResult ShardedHeap::append_batch(
    uint32_t extent, std::vector<std::string> rows) {
  BatchAppendResult result;
  if (rows.empty()) return result;
  const uint32_t e = extent % extent_count();
  Extent& target = *extents_[e];
  int64_t batch_bytes = 0;
  result.slots.reserve(rows.size());
  result.views.reserve(rows.size());
  result.latch_wait_ns = lock_extent_timed(target.latch);
  const std::unique_lock<std::shared_mutex> latch(target.latch,
                                                  std::adopt_lock);
  for (std::string& row_bytes : rows) {
    batch_bytes += static_cast<int64_t>(row_bytes.size());
    const HeapFile::AppendResult appended =
        target.file.append(std::move(row_bytes));
    result.slots.push_back(appended.slot);
    result.views.push_back(appended.bytes);
    if (appended.opened_new_page) ++result.pages_opened;
  }
  pages_.fetch_add(result.pages_opened, std::memory_order_relaxed);
  target.appended_bytes.fetch_add(batch_bytes, std::memory_order_relaxed);
  live_rows_.fetch_add(static_cast<int64_t>(rows.size()),
                       std::memory_order_relaxed);
  total_bytes_.fetch_add(batch_bytes, std::memory_order_relaxed);
  if (append_write_latency_ > 0) {
    // One modeled device write per row, paid as a single sleep under the
    // extent latch (same total as the row path, one syscall).
    std::this_thread::sleep_for(std::chrono::nanoseconds(
        append_write_latency_ * static_cast<Nanos>(rows.size())));
  }
  return result;
}

Status ShardedHeap::publish(SlotId slot) {
  if (slot.extent >= extent_count()) {
    return Status(ErrorCode::kNotFound, "heap extent out of range");
  }
  Extent& extent = *extents_[slot.extent];
  const std::unique_lock<std::shared_mutex> latch(extent.latch);
  SKY_RETURN_IF_ERROR(extent.file.publish(slot));
  live_rows_.fetch_add(1, std::memory_order_relaxed);
  const auto bytes = extent.file.read(slot);
  total_bytes_.fetch_add(
      bytes.is_ok() ? static_cast<int64_t>(bytes->size()) : 0,
      std::memory_order_relaxed);
  return ok_status();
}

Status ShardedHeap::discard(SlotId slot) {
  if (slot.extent >= extent_count()) {
    return Status(ErrorCode::kNotFound, "heap extent out of range");
  }
  Extent& extent = *extents_[slot.extent];
  const std::unique_lock<std::shared_mutex> latch(extent.latch);
  return extent.file.discard(slot);
}

Result<std::string_view> ShardedHeap::read(SlotId slot) const {
  if (slot.extent >= extent_count()) {
    return Status(ErrorCode::kNotFound, "heap extent out of range");
  }
  const Extent& extent = *extents_[slot.extent];
  const std::shared_lock<std::shared_mutex> latch(extent.latch);
  // The view stays valid after release: row bytes never move (HeapFile
  // stability contract) and published rows are immutable.
  return extent.file.read(slot);
}

Status ShardedHeap::mark_deleted(SlotId slot) {
  if (slot.extent >= extent_count()) {
    return Status(ErrorCode::kNotFound, "heap extent out of range");
  }
  Extent& extent = *extents_[slot.extent];
  const std::unique_lock<std::shared_mutex> latch(extent.latch);
  const auto bytes = extent.file.read(slot);
  SKY_RETURN_IF_ERROR(extent.file.mark_deleted(slot));
  live_rows_.fetch_sub(1, std::memory_order_relaxed);
  total_bytes_.fetch_sub(
      bytes.is_ok() ? static_cast<int64_t>(bytes->size()) : 0,
      std::memory_order_relaxed);
  return ok_status();
}

uint32_t ShardedHeap::least_loaded_extent() const {
  uint32_t best = 0;
  int64_t best_bytes =
      extents_[0]->appended_bytes.load(std::memory_order_relaxed);
  for (uint32_t e = 1; e < extent_count(); ++e) {
    const int64_t bytes =
        extents_[e]->appended_bytes.load(std::memory_order_relaxed);
    if (bytes < best_bytes) {
      best = e;
      best_bytes = bytes;
    }
  }
  return best;
}

std::vector<ShardedHeap::ExtentStats> ShardedHeap::extent_stats() const {
  std::vector<ExtentStats> stats;
  stats.reserve(extents_.size());
  for (const auto& extent : extents_) {
    const std::shared_lock<std::shared_mutex> latch(extent->latch);
    stats.push_back(ExtentStats{extent->file.row_count(),
                                extent->file.page_count(),
                                extent->file.total_bytes()});
  }
  return stats;
}

}  // namespace sky::storage
