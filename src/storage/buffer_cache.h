// Server data-cache model (Oracle's buffer cache / DBWR behaviour).
//
// The paper's tuning study (section 4.5.5) found that a *smaller* data cache
// speeds up loading: the database writer scans the whole cache each time it
// wakes to flush dirty buffers, so a larger cache means more scan work per
// wake while the wake rate is set by the dirty-page production rate. This
// model reproduces that mechanism: pages touched by inserts become dirty; the
// writer fires whenever the dirty count reaches a fixed trigger, scans
// `capacity` frames, and flushes everything dirty.
//
// The cache is an accounting model over real page identities — rows live in
// HeapFile; the cache tracks residency and dirtiness to produce miss /
// eviction / writer-scan counts that the cost model turns into time.
//
// Thread safety: the cache is lock-striped. Page state (residency, LRU
// position, dirtiness) is partitioned into hash shards of CachePageId, each
// with its own mutex, frame list, and LRU; the global dirty count is an
// atomic so the DBWR trigger needs no shared lock. The writer itself runs
// under a separate writer mutex and sweeps the shards one at a time, so a
// DBWR pass never stops the world — concurrent touches to other shards keep
// going, exactly as concurrent foreground sessions overlap with DBWR in a
// real server. Small caches (below one page per would-be shard group) use a
// single shard, preserving the seed's exact global-LRU accounting for the
// unit tests and the cache-size ablation. set_io_hook() must be called
// before the cache is shared across threads (the engine does so in its
// constructor).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <list>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace sky::storage {

// Identifies a page across all table heaps and index segments. Heap pages
// are additionally qualified by their extent (sharded heaps keep one append
// stream per extent; see storage/sharded_heap.h) — index segments and
// single-extent heaps leave it 0, preserving the pre-sharding identity.
struct CachePageId {
  uint32_t file_id = 0;   // table or index segment id
  uint32_t page = 0;
  uint32_t extent = 0;    // heap extent; 0 for index segments
  bool operator==(const CachePageId&) const = default;
};

struct CachePageIdHash {
  size_t operator()(const CachePageId& id) const {
    // extent term vanishes at 0 so unsharded identities hash as before.
    return (static_cast<size_t>(id.file_id) << 32) ^
           (static_cast<size_t>(id.extent) * 0x9E3779B97F4A7C15ull) ^ id.page;
  }
};

struct CacheEvents {
  int64_t hits = 0;
  int64_t misses = 0;            // page faulted in (read I/O)
  int64_t clean_evictions = 0;
  int64_t dirty_evictions = 0;   // eviction forced a page write
  int64_t writer_wakes = 0;
  int64_t writer_scanned_frames = 0;  // frames examined by DBWR
  int64_t writer_flushed_pages = 0;   // dirty pages written by DBWR

  CacheEvents& operator+=(const CacheEvents& other);
  // Difference since an earlier snapshot.
  CacheEvents since(const CacheEvents& baseline) const;
};

class BufferCache {
 public:
  // `capacity_pages`: cache size in 8 KiB frames. `dirty_trigger`: DBWR
  // wakes when this many dirty pages accumulate (fixed, independent of
  // capacity — that is what makes big caches slow for pure loading).
  explicit BufferCache(int64_t capacity_pages, int64_t dirty_trigger = 256);

  // A write touch: page becomes resident and dirty (insert into heap/index).
  void touch_write(CachePageId page);
  // A read touch: page becomes resident (e.g. parent FK lookup I/O).
  void touch_read(CachePageId page);

  // Force-flush all dirty pages (commit / checkpoint path).
  void flush_all();

  enum class IoKind { kRead, kWrite };
  // Invoked on every physical I/O the cache implies: a miss (read), a dirty
  // eviction (write), and each page the writer flushes (write). Called with
  // a shard (or the writer) mutex held; the hook must not call back into the
  // cache. Set before sharing the cache across threads.
  void set_io_hook(std::function<void(CachePageId, IoKind)> hook) {
    io_hook_ = std::move(hook);
  }

  int64_t capacity() const { return capacity_pages_; }
  int64_t resident() const;
  int64_t dirty() const { return dirty_count_.load(std::memory_order_relaxed); }
  // Aggregated snapshot across shards plus the writer's counters.
  CacheEvents events() const;

 private:
  struct Frame {
    CachePageId id;
    bool dirty = false;
  };
  using FrameList = std::list<Frame>;

  struct Shard {
    mutable std::mutex mu;
    int64_t capacity = 0;
    FrameList frames;  // front = most recently used
    std::unordered_map<CachePageId, FrameList::iterator, CachePageIdHash> map;
    CacheEvents events;  // hits / misses / evictions charged to this shard
  };

  Shard& shard_for(CachePageId page) const;
  // Touch within the page's shard, faulting in / evicting as needed.
  void touch(CachePageId page, bool is_write);
  void maybe_run_writer();
  // Pre: shard.mu held, shard full. Evict the shard's LRU frame.
  void evict_one(Shard& shard);
  // Pre: writer_mu_ held. Flush every dirty frame, shard by shard; returns
  // the number of resident frames seen.
  int64_t sweep_dirty();

  const int64_t capacity_pages_;
  const int64_t dirty_trigger_;
  mutable std::vector<Shard> shards_;
  std::atomic<int64_t> dirty_count_{0};
  // Serializes DBWR sweeps and guards writer_events_. touch paths never hold
  // a shard mutex while taking it (writer acquires shard mutexes inside).
  mutable std::mutex writer_mu_;
  CacheEvents writer_events_;  // wakes / scanned / flushed
  std::function<void(CachePageId, IoKind)> io_hook_;
};

}  // namespace sky::storage
