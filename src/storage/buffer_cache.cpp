#include "storage/buffer_cache.h"

#include <cassert>

namespace sky::storage {

namespace {
// Lock striping kicks in only when each shard still holds a meaningful LRU
// (>= 256 pages); tiny caches keep the seed's exact single-LRU behaviour.
constexpr int64_t kMaxShards = 16;
constexpr int64_t kMinPagesPerShard = 256;

int64_t shard_count_for(int64_t capacity_pages) {
  const int64_t by_size = capacity_pages / kMinPagesPerShard;
  if (by_size <= 1) return 1;
  return by_size < kMaxShards ? by_size : kMaxShards;
}
}  // namespace

CacheEvents& CacheEvents::operator+=(const CacheEvents& other) {
  hits += other.hits;
  misses += other.misses;
  clean_evictions += other.clean_evictions;
  dirty_evictions += other.dirty_evictions;
  writer_wakes += other.writer_wakes;
  writer_scanned_frames += other.writer_scanned_frames;
  writer_flushed_pages += other.writer_flushed_pages;
  return *this;
}

CacheEvents CacheEvents::since(const CacheEvents& baseline) const {
  CacheEvents delta;
  delta.hits = hits - baseline.hits;
  delta.misses = misses - baseline.misses;
  delta.clean_evictions = clean_evictions - baseline.clean_evictions;
  delta.dirty_evictions = dirty_evictions - baseline.dirty_evictions;
  delta.writer_wakes = writer_wakes - baseline.writer_wakes;
  delta.writer_scanned_frames =
      writer_scanned_frames - baseline.writer_scanned_frames;
  delta.writer_flushed_pages =
      writer_flushed_pages - baseline.writer_flushed_pages;
  return delta;
}

BufferCache::BufferCache(int64_t capacity_pages, int64_t dirty_trigger)
    : capacity_pages_(capacity_pages),
      dirty_trigger_(dirty_trigger),
      shards_(static_cast<size_t>(shard_count_for(capacity_pages))) {
  assert(capacity_pages_ > 0);
  assert(dirty_trigger_ > 0);
  // Distribute capacity across shards (remainder to the first shards).
  const auto n = static_cast<int64_t>(shards_.size());
  for (int64_t i = 0; i < n; ++i) {
    shards_[static_cast<size_t>(i)].capacity =
        capacity_pages_ / n + (i < capacity_pages_ % n ? 1 : 0);
  }
}

BufferCache::Shard& BufferCache::shard_for(CachePageId page) const {
  // Mix file id, extent, and page so one file's sequential pages spread
  // evenly and different files' low page numbers don't pile into one shard.
  const uint64_t mixed =
      (static_cast<uint64_t>(page.file_id) * 0x9E3779B97F4A7C15ull) ^
      (static_cast<uint64_t>(page.extent) * 0x94D049BB133111EBull) ^
      (static_cast<uint64_t>(page.page) * 0xBF58476D1CE4E5B9ull);
  return shards_[static_cast<size_t>(mixed % shards_.size())];
}

void BufferCache::touch_write(CachePageId page) {
  touch(page, /*is_write=*/true);
  maybe_run_writer();
}

void BufferCache::touch_read(CachePageId page) {
  touch(page, /*is_write=*/false);
}

void BufferCache::touch(CachePageId page, bool is_write) {
  Shard& shard = shard_for(page);
  const std::scoped_lock lock(shard.mu);
  const auto found = shard.map.find(page);
  FrameList::iterator frame;
  if (found != shard.map.end()) {
    ++shard.events.hits;
    // Move to MRU position.
    shard.frames.splice(shard.frames.begin(), shard.frames, found->second);
    frame = shard.frames.begin();
  } else {
    ++shard.events.misses;
    if (io_hook_) io_hook_(page, IoKind::kRead);
    if (static_cast<int64_t>(shard.frames.size()) >= shard.capacity) {
      evict_one(shard);
    }
    shard.frames.push_front(Frame{page, false});
    shard.map[page] = shard.frames.begin();
    frame = shard.frames.begin();
  }
  if (is_write && !frame->dirty) {
    frame->dirty = true;
    dirty_count_.fetch_add(1, std::memory_order_relaxed);
  }
}

void BufferCache::evict_one(Shard& shard) {
  assert(!shard.frames.empty());
  const Frame& victim = shard.frames.back();
  if (victim.dirty) {
    ++shard.events.dirty_evictions;
    dirty_count_.fetch_sub(1, std::memory_order_relaxed);
    if (io_hook_) io_hook_(victim.id, IoKind::kWrite);
  } else {
    ++shard.events.clean_evictions;
  }
  shard.map.erase(victim.id);
  shard.frames.pop_back();
}

int64_t BufferCache::sweep_dirty() {
  int64_t seen = 0;
  for (Shard& shard : shards_) {
    const std::scoped_lock lock(shard.mu);
    seen += static_cast<int64_t>(shard.frames.size());
    for (Frame& frame : shard.frames) {
      if (frame.dirty) {
        frame.dirty = false;
        dirty_count_.fetch_sub(1, std::memory_order_relaxed);
        ++writer_events_.writer_flushed_pages;
        if (io_hook_) io_hook_(frame.id, IoKind::kWrite);
      }
    }
  }
  return seen;
}

void BufferCache::maybe_run_writer() {
  if (dirty_count_.load(std::memory_order_relaxed) < dirty_trigger_) return;
  // One DBWR pass at a time; a touch arriving while a sweep is in flight
  // leaves the cleaning to it instead of queueing a redundant pass.
  const std::unique_lock lock(writer_mu_, std::try_to_lock);
  if (!lock.owns_lock()) return;
  if (dirty_count_.load(std::memory_order_relaxed) < dirty_trigger_) return;
  ++writer_events_.writer_wakes;
  // DBWR walks the pre-allocated buffer pool looking for dirty buffers —
  // the scan cost that grows with the configured cache size (the
  // section 4.5.5 mechanism) — then writes out what it found.
  writer_events_.writer_scanned_frames += capacity_pages_;
  sweep_dirty();
}

void BufferCache::flush_all() {
  if (dirty_count_.load(std::memory_order_relaxed) == 0) return;
  const std::scoped_lock lock(writer_mu_);
  if (dirty_count_.load(std::memory_order_relaxed) == 0) return;
  ++writer_events_.writer_wakes;
  writer_events_.writer_scanned_frames += sweep_dirty();
}

int64_t BufferCache::resident() const {
  int64_t total = 0;
  for (const Shard& shard : shards_) {
    const std::scoped_lock lock(shard.mu);
    total += static_cast<int64_t>(shard.frames.size());
  }
  return total;
}

CacheEvents BufferCache::events() const {
  CacheEvents total;
  {
    const std::scoped_lock lock(writer_mu_);
    total += writer_events_;
  }
  for (const Shard& shard : shards_) {
    const std::scoped_lock lock(shard.mu);
    total += shard.events;
  }
  return total;
}

}  // namespace sky::storage
