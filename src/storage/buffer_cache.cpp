#include "storage/buffer_cache.h"

#include <cassert>

namespace sky::storage {

CacheEvents& CacheEvents::operator+=(const CacheEvents& other) {
  hits += other.hits;
  misses += other.misses;
  clean_evictions += other.clean_evictions;
  dirty_evictions += other.dirty_evictions;
  writer_wakes += other.writer_wakes;
  writer_scanned_frames += other.writer_scanned_frames;
  writer_flushed_pages += other.writer_flushed_pages;
  return *this;
}

CacheEvents CacheEvents::since(const CacheEvents& baseline) const {
  CacheEvents delta;
  delta.hits = hits - baseline.hits;
  delta.misses = misses - baseline.misses;
  delta.clean_evictions = clean_evictions - baseline.clean_evictions;
  delta.dirty_evictions = dirty_evictions - baseline.dirty_evictions;
  delta.writer_wakes = writer_wakes - baseline.writer_wakes;
  delta.writer_scanned_frames =
      writer_scanned_frames - baseline.writer_scanned_frames;
  delta.writer_flushed_pages =
      writer_flushed_pages - baseline.writer_flushed_pages;
  return delta;
}

BufferCache::BufferCache(int64_t capacity_pages, int64_t dirty_trigger)
    : capacity_pages_(capacity_pages), dirty_trigger_(dirty_trigger) {
  assert(capacity_pages_ > 0);
  assert(dirty_trigger_ > 0);
}

void BufferCache::touch_write(CachePageId page) {
  auto it = touch(page, /*is_write=*/true);
  if (!it->dirty) {
    it->dirty = true;
    ++dirty_count_;
  }
  maybe_run_writer();
}

void BufferCache::touch_read(CachePageId page) {
  touch(page, /*is_write=*/false);
}

BufferCache::FrameList::iterator BufferCache::touch(CachePageId page,
                                                    bool is_write) {
  (void)is_write;
  const auto found = map_.find(page);
  if (found != map_.end()) {
    ++events_.hits;
    // Move to MRU position.
    frames_.splice(frames_.begin(), frames_, found->second);
    return frames_.begin();
  }
  ++events_.misses;
  if (io_hook_) io_hook_(page, IoKind::kRead);
  if (static_cast<int64_t>(frames_.size()) >= capacity_pages_) {
    evict_one();
  }
  frames_.push_front(Frame{page, false});
  map_[page] = frames_.begin();
  return frames_.begin();
}

void BufferCache::evict_one() {
  assert(!frames_.empty());
  const Frame& victim = frames_.back();
  if (victim.dirty) {
    ++events_.dirty_evictions;
    --dirty_count_;
    if (io_hook_) io_hook_(victim.id, IoKind::kWrite);
  } else {
    ++events_.clean_evictions;
  }
  map_.erase(victim.id);
  frames_.pop_back();
}

void BufferCache::maybe_run_writer() {
  if (dirty_count_ < dirty_trigger_) return;
  ++events_.writer_wakes;
  // DBWR walks the pre-allocated buffer pool looking for dirty buffers —
  // the scan cost that grows with the configured cache size (the
  // section 4.5.5 mechanism) — then writes out what it found.
  events_.writer_scanned_frames += capacity_pages_;
  for (Frame& frame : frames_) {
    if (frame.dirty) {
      frame.dirty = false;
      ++events_.writer_flushed_pages;
      if (io_hook_) io_hook_(frame.id, IoKind::kWrite);
    }
  }
  dirty_count_ = 0;
}

void BufferCache::flush_all() {
  if (dirty_count_ == 0) return;
  ++events_.writer_wakes;
  events_.writer_scanned_frames += static_cast<int64_t>(frames_.size());
  for (Frame& frame : frames_) {
    if (frame.dirty) {
      frame.dirty = false;
      ++events_.writer_flushed_pages;
      if (io_hook_) io_hook_(frame.id, IoKind::kWrite);
    }
  }
  dirty_count_ = 0;
}

}  // namespace sky::storage
