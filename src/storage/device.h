// Storage device layout.
//
// The paper reduces I/O contention by placing (1) data and temporary files,
// (2) indices, and (3) logs on three separate RAID devices (section 4.5.3).
// The engine tags every page I/O with a role; the layout maps roles onto
// physical devices, and simulation mode gives each physical device its own
// queueing resource so co-located roles genuinely contend.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

namespace sky::storage {

enum class IoRole : int { kData = 0, kIndex = 1, kLog = 2 };

constexpr int kIoRoleCount = 3;

struct DeviceLayout {
  // Physical device index serving each role (index by IoRole).
  std::array<int, kIoRoleCount> role_device{0, 0, 0};
  int physical_devices = 1;

  // The paper's production layout: three separate RAID devices.
  static DeviceLayout separate_raids() {
    return DeviceLayout{{0, 1, 2}, 3};
  }
  // Everything on one device (the untuned baseline in the I/O ablation).
  static DeviceLayout single_raid() { return DeviceLayout{{0, 0, 0}, 1}; }

  int device_for(IoRole role) const {
    return role_device[static_cast<size_t>(role)];
  }

  std::string describe() const {
    return physical_devices == 1
               ? "single shared RAID"
               : (physical_devices == 3 ? "separate data/index/log RAIDs"
                                        : "custom layout");
  }
};

// Per-call I/O tally, per role (filled in by the engine, priced by the
// client cost model, queued on per-device resources in simulation).
struct IoTally {
  std::array<int64_t, kIoRoleCount> pages_written{0, 0, 0};
  std::array<int64_t, kIoRoleCount> pages_read{0, 0, 0};
  int64_t log_bytes_flushed = 0;

  void add_write(IoRole role, int64_t pages = 1) {
    pages_written[static_cast<size_t>(role)] += pages;
  }
  void add_read(IoRole role, int64_t pages = 1) {
    pages_read[static_cast<size_t>(role)] += pages;
  }
  IoTally& operator+=(const IoTally& other) {
    for (size_t i = 0; i < kIoRoleCount; ++i) {
      pages_written[i] += other.pages_written[i];
      pages_read[i] += other.pages_read[i];
    }
    log_bytes_flushed += other.log_bytes_flushed;
    return *this;
  }
};

// Engine-wide I/O tally fed from concurrent sessions (the buffer-cache I/O
// hook fires from whichever thread caused the physical I/O). Relaxed atomics:
// the counters are independent monotone sums; snapshot() is a telemetry
// read, not a synchronization point.
struct SharedIoTally {
  std::array<std::atomic<int64_t>, kIoRoleCount> pages_written{};
  std::array<std::atomic<int64_t>, kIoRoleCount> pages_read{};
  std::atomic<int64_t> log_bytes_flushed{0};

  void add_write(IoRole role, int64_t pages = 1) {
    pages_written[static_cast<size_t>(role)].fetch_add(
        pages, std::memory_order_relaxed);
  }
  void add_read(IoRole role, int64_t pages = 1) {
    pages_read[static_cast<size_t>(role)].fetch_add(
        pages, std::memory_order_relaxed);
  }
  void add_log_bytes(int64_t bytes) {
    log_bytes_flushed.fetch_add(bytes, std::memory_order_relaxed);
  }
  IoTally snapshot() const {
    IoTally tally;
    for (size_t i = 0; i < kIoRoleCount; ++i) {
      tally.pages_written[i] = pages_written[i].load(std::memory_order_relaxed);
      tally.pages_read[i] = pages_read[i].load(std::memory_order_relaxed);
    }
    tally.log_bytes_flushed = log_bytes_flushed.load(std::memory_order_relaxed);
    return tally;
  }
};

}  // namespace sky::storage
