// Heap storage for table rows: serialized rows packed into fixed-size pages.
//
// The engine is memory-resident (the paper's server kept the working set of
// a load in its 12 GB of RAM and the buffer cache), but rows live in real
// pages so that page-level costs — dirtied pages, cache pressure, device
// writes — are derived from actual layout rather than invented.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace sky::storage {

constexpr int64_t kPageSize = 8192;  // bytes, Oracle's common block size

// Slot address within a heap file.
struct SlotId {
  uint32_t page = 0;
  uint32_t slot = 0;
  bool operator==(const SlotId&) const = default;
};

class HeapFile {
 public:
  HeapFile() = default;

  // Append a serialized row. Returns its slot and whether a fresh page was
  // opened to hold it (cost-model signal: one more dirty page).
  struct AppendResult {
    SlotId slot;
    bool opened_new_page;
  };
  AppendResult append(std::string row_bytes);

  // Read back a row. Tombstoned or out-of-range slots yield an error.
  Result<std::string_view> read(SlotId slot) const;

  // Tombstone a row (transaction rollback). Space is not reclaimed; loads
  // are append-only and rollbacks rare.
  Status mark_deleted(SlotId slot);

  int64_t page_count() const { return static_cast<int64_t>(pages_.size()); }
  int64_t row_count() const { return live_rows_; }
  int64_t total_bytes() const { return total_bytes_; }

  // Visit every live row in slot order.
  template <typename Fn>  // Fn(SlotId, std::string_view)
  void scan(Fn&& fn) const {
    for (uint32_t p = 0; p < pages_.size(); ++p) {
      const Page& page = pages_[p];
      for (uint32_t s = 0; s < page.rows.size(); ++s) {
        if (!page.deleted[s]) {
          fn(SlotId{p, s}, std::string_view(page.rows[s]));
        }
      }
    }
  }

 private:
  struct Page {
    std::vector<std::string> rows;
    std::vector<bool> deleted;
    int64_t bytes_used = 0;
  };

  std::vector<Page> pages_;
  int64_t live_rows_ = 0;
  int64_t total_bytes_ = 0;
};

}  // namespace sky::storage
