// Heap storage for table rows: serialized rows packed into fixed-size pages.
//
// The engine is memory-resident (the paper's server kept the working set of
// a load in its 12 GB of RAM and the buffer cache), but rows live in real
// pages so that page-level costs — dirtied pages, cache pressure, device
// writes — are derived from actual layout rather than invented.
//
// A HeapFile is one *extent*: a single append stream of pages. Tables use a
// ShardedHeap (sharded_heap.h), which owns several extents so concurrent
// loaders of the same table can append to independent extents; a bare
// HeapFile is extent 0 of a one-extent heap. Slot addresses are therefore
// three-dimensional: {extent, page, slot}.
//
// Storage stability contract: row bytes never move once appended. Pages and
// rows live in deques (chunk-stable, no reallocation of existing elements),
// so a string_view returned by read() remains valid for the heap's lifetime
// even while later appends grow the file. (The seed kept pages in a
// std::vector, so a concurrent append could reallocate the page array and
// dangle outstanding views; sharded_heap_test has the regression test.)
//
// Rows support two-phase insertion: append() makes a row live immediately,
// while append_pending() hides it from read()/scan()/counters until
// publish() — the engine appends pending, re-validates constraints under the
// index latch, then publishes, so scans never observe a row that may still
// fail its constraint checks. A pending row that loses a constraint race is
// discard()ed and its slot stays dead forever.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace sky::storage {

constexpr int64_t kPageSize = 8192;  // bytes, Oracle's common block size

// Slot address within a table heap: extent (which parallel append stream),
// page within the extent, slot within the page.
struct SlotId {
  uint32_t extent = 0;
  uint32_t page = 0;
  uint32_t slot = 0;
  bool operator==(const SlotId&) const = default;
};

class HeapFile {
 public:
  explicit HeapFile(uint32_t extent_id = 0) : extent_id_(extent_id) {}

  uint32_t extent_id() const { return extent_id_; }

  // Append a serialized row. Returns its slot, whether a fresh page was
  // opened to hold it (cost-model signal: one more dirty page), and a view
  // of the stored bytes — valid for the heap's lifetime per the stability
  // contract, so callers (snapshot chunks) can reference the row without a
  // later latched read.
  struct AppendResult {
    SlotId slot;
    bool opened_new_page;
    std::string_view bytes;
  };
  AppendResult append(std::string row_bytes);
  // Append a hidden row: invisible to read()/scan() and excluded from
  // row_count()/total_bytes() until publish(). It still occupies page space.
  AppendResult append_pending(std::string row_bytes);
  // Make a pending row live. Errors if the slot is not pending.
  Status publish(SlotId slot);
  // Drop a pending row that failed its constraint checks; the slot stays
  // dead. Errors if the slot is not pending.
  Status discard(SlotId slot);

  // Read back a live row. Pending, tombstoned, or out-of-range slots yield
  // an error. The returned view stays valid for the heap's lifetime (rows
  // never move; see the stability contract above).
  Result<std::string_view> read(SlotId slot) const;

  // Tombstone a live row (transaction rollback). Space is not reclaimed;
  // loads are append-only and rollbacks rare.
  Status mark_deleted(SlotId slot);

  int64_t page_count() const { return static_cast<int64_t>(pages_.size()); }
  int64_t row_count() const { return live_rows_; }
  int64_t total_bytes() const { return total_bytes_; }

  // Visit every live row in slot order.
  template <typename Fn>  // Fn(SlotId, std::string_view)
  void scan(Fn&& fn) const {
    for (uint32_t p = 0; p < pages_.size(); ++p) {
      const Page& page = pages_[p];
      for (uint32_t s = 0; s < page.rows.size(); ++s) {
        if (page.states[s] == RowState::kLive) {
          fn(SlotId{extent_id_, p, s}, std::string_view(page.rows[s]));
        }
      }
    }
  }

 private:
  enum class RowState : uint8_t { kPending, kLive, kDead };

  struct Page {
    // Deque: row bytes never move as the page fills (stability contract).
    std::deque<std::string> rows;
    std::vector<RowState> states;
    int64_t bytes_used = 0;
  };

  AppendResult append_with_state(std::string row_bytes, RowState state);
  // Locate a slot's page, validating extent/page/slot bounds.
  Result<Page*> page_for(SlotId slot);
  Result<const Page*> page_for(SlotId slot) const;

  uint32_t extent_id_;
  // Deque: pages never move as the file grows (stability contract).
  std::deque<Page> pages_;
  int64_t live_rows_ = 0;
  int64_t total_bytes_ = 0;
};

}  // namespace sky::storage
