// On-disk write-ahead-log format.
//
// Serializes a WAL record stream so recovery works across process restarts
// (the in-memory engine retains records; this persists them). Binary
// layout, little-endian-free (explicit big-endian fields):
//
//   header : magic "SKYWAL2\n" | u64 record count
//   record : u8 type | u64 txn | u32 table | u32 extent | u32 payload_len
//            | payload | u64 FNV-1a checksum of the preceding record bytes
//
// Version history: SKYWAL1 lacked the u32 extent field (added when heaps
// became extent-sharded; recovery replays each insert into its original
// extent). V1 files are not readable — the format predates any release.
//
// Every record is individually checksummed; a torn or corrupted tail is
// reported with the count of records recovered before it.
#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "storage/wal.h"

namespace sky::storage {

Status write_wal_file(const std::string& path,
                      const std::vector<WalRecord>& records);

struct WalReadResult {
  std::vector<WalRecord> records;
  // True if the file ended early or a record failed its checksum; `records`
  // holds everything intact before the damage (crash-consistent prefix).
  bool truncated = false;
};

Result<WalReadResult> read_wal_file(const std::string& path);

}  // namespace sky::storage
