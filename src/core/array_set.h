// array-set: the buffering data structure at the heart of SkyLoader
// (paper section 4.3).
//
// A dynamically maintained set of two-dimensional arrays — one per
// destination table, rows by attributes — created on demand as interleaved
// catalog rows are parsed, and destroyed (memory released) at the end of
// each bulk-loading cycle. Buffering rows per table is what lets the loader
// issue bulk inserts in parent-before-child order despite the interleaved
// input, and random access into the source array is what makes skip-one-row
// error recovery possible.
//
// Extensions the paper lists as future work, implemented here:
//   * per-table row capacities from a configuration file ([array_set]
//     section: default_rows plus <table> = <rows> overrides),
//   * an aggregate "memory high water mark" that triggers bulk loading when
//     the cached arrays' total footprint reaches a byte budget.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/config.h"
#include "common/status.h"
#include "db/column_batch.h"
#include "db/row.h"
#include "db/schema.h"

namespace sky::core {

class ArraySet {
 public:
  struct Config {
    int64_t default_rows = 1000;  // the paper's array-size constant
    std::map<std::string, int64_t> per_table_rows;
    // If set, a flush also triggers when the aggregate buffered footprint
    // reaches this many bytes.
    std::optional<int64_t> memory_high_water_bytes;

    // Overlay settings from a config file's [array_set] section:
    //   default_rows = 1000
    //   memory_high_water_bytes = 2000000
    //   objects = 4000            # per-table override
    static Result<Config> from_config(const sky::Config& file,
                                      const db::Schema& schema);
  };

  ArraySet(const db::Schema& schema, Config config);

  // Buffer one row for `table_id`. Creates the table's array if this is the
  // first row seen for it this cycle. Returns true if the append filled any
  // array to capacity (or hit the high-water mark): time to bulk load.
  bool append(uint32_t table_id, db::Row row);

  // Columnar sibling of append(): merge a parser block's batch for
  // `table_id` into this table's column buffer (same capacity / high-water
  // flush triggers, counted per row). The row arrays and column buffers are
  // independent surfaces — a load cycle uses one or the other; the topo
  // iteration and clear() cover both.
  bool append_batch(uint32_t table_id, const db::ColumnBatch& batch);

  bool should_flush() const { return flush_needed_; }

  // Arrays in parent-before-child order; fn(table_id, rows).
  template <typename Fn>
  void for_each_in_topo_order(Fn&& fn) const {
    for (uint32_t table_id = 0;
         table_id < static_cast<uint32_t>(arrays_.size()); ++table_id) {
      const auto& array = arrays_[table_id];
      if (array.has_value() && !array->empty()) fn(table_id, *array);
    }
  }

  // Column buffers in parent-before-child order; fn(table_id, batch).
  template <typename Fn>
  void for_each_batch_in_topo_order(Fn&& fn) const {
    for (uint32_t table_id = 0;
         table_id < static_cast<uint32_t>(batches_.size()); ++table_id) {
      const auto& batch = batches_[table_id];
      if (batch.has_value() && !batch->empty()) fn(table_id, *batch);
    }
  }

  // Destroy all arrays and release their memory (end of a bulk-load cycle).
  void clear();

  // End-of-cycle reset for the columnar path: drop every buffered row but
  // keep each column buffer's layout and capacity (arena reuse across
  // cycles). The buffers are bounded by the flush high-water budget, so
  // retaining them does not grow the client footprint — and it removes the
  // per-cycle construct/teardown cost the row arrays pay.
  void clear_keep_buffers();

  int64_t buffered_rows() const { return buffered_rows_; }
  int64_t footprint_bytes() const { return footprint_bytes_; }
  // Arrays currently materialized (depends on how interleaved the input is).
  int active_arrays() const;
  int64_t capacity_for(uint32_t table_id) const {
    return capacities_[table_id];
  }

 private:
  std::vector<std::optional<std::vector<db::Row>>> arrays_;  // by table id
  // Columnar buffers, by table id (the batch ingest path's counterpart of
  // arrays_). Footprint is tracked by buffer capacity delta: the arena grows
  // in chunks, so per-row accounting would undercount.
  std::vector<std::optional<db::ColumnBatch>> batches_;
  std::vector<const db::TableDef*> table_defs_;  // batch construction
  std::vector<int64_t> capacities_;                          // by table id
  std::optional<int64_t> high_water_bytes_;
  int64_t buffered_rows_ = 0;
  int64_t footprint_bytes_ = 0;
  bool flush_needed_ = false;
};

}  // namespace sky::core
