#include "core/coordinator.h"

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>

#include "common/log.h"

namespace sky::core {

namespace {

// Shared work queue. Dynamic mode: any worker pops the next unassigned file.
// Static mode: files are pre-partitioned round-robin by index and each
// worker only sees its own share.
class WorkQueue {
 public:
  WorkQueue(size_t file_count, int workers, bool dynamic)
      : dynamic_(dynamic), workers_(workers) {
    if (!dynamic_) {
      partitions_.resize(static_cast<size_t>(workers));
      for (size_t f = 0; f < file_count; ++f) {
        partitions_[f % static_cast<size_t>(workers)].push_back(f);
      }
    } else {
      (void)workers_;
      total_ = file_count;
    }
  }

  // Next file index for this worker, or nullopt when done.
  std::optional<size_t> next(int worker) {
    const std::scoped_lock lock(mu_);
    if (dynamic_) {
      if (next_ >= total_) return std::nullopt;
      return next_++;
    }
    auto& mine = partitions_[static_cast<size_t>(worker)];
    if (cursor_.size() <= static_cast<size_t>(worker)) {
      cursor_.resize(static_cast<size_t>(worker) + 1, 0);
    }
    size_t& at = cursor_[static_cast<size_t>(worker)];
    if (at >= mine.size()) return std::nullopt;
    return mine[at++];
  }

 private:
  std::mutex mu_;
  bool dynamic_;
  int workers_;
  size_t total_ = 0;
  size_t next_ = 0;
  std::vector<std::vector<size_t>> partitions_;
  std::vector<size_t> cursor_;
};

struct WorkerResult {
  std::vector<FileLoadReport> reports;
  Nanos busy = 0;
  Nanos lock_wait = 0;
  int64_t commit_flushes = 0;
  int64_t commit_piggybacks = 0;
  Nanos commit_leader_wait = 0;
  Nanos txn_slot_wait = 0;
  Nanos itl_wait = 0;
  Nanos stall_time = 0;
  Nanos query_lane_wait = 0;
  int64_t zone_scan_rows = 0;
  int64_t xmatch_candidates = 0;
  int64_t xmatch_pairs = 0;
  catalog::ParserStats parser;
  int files = 0;
  int files_skipped = 0;
  Status failure = ok_status();
};

// The per-worker loop, identical in both backends.
void worker_loop(int worker, WorkQueue& queue,
                 const std::vector<CatalogFile>& files,
                 const db::Schema& schema, const CoordinatorOptions& options,
                 client::Session& session, WorkerResult& result) {
  BulkLoader loader(session, schema, options.loader);
  while (true) {
    const auto file_index = queue.next(worker);
    if (!file_index.has_value()) break;
    const CatalogFile& file = files[*file_index];
    if (options.already_loaded && options.already_loaded(file.name)) {
      ++result.files_skipped;
      continue;
    }
    const Nanos start = session.now();
    auto report = loader.load_text(file.name, file.text);
    if (!report.is_ok()) {
      result.failure = report.status();
      return;
    }
    result.busy += session.now() - start;
    ++result.files;
    result.reports.push_back(std::move(*report));
  }
  result.parser = loader.parser_stats();
  result.lock_wait = session.stats().lock_wait_time;
  result.commit_flushes = session.stats().commit_flushes_led;
  result.commit_piggybacks = session.stats().commit_piggybacks;
  result.commit_leader_wait = session.stats().commit_leader_wait;
  result.txn_slot_wait = session.stats().txn_slot_wait_time;
  result.itl_wait = session.stats().itl_wait_time;
  result.stall_time = session.stats().stall_time;
  result.query_lane_wait = session.stats().query_lane_wait_time;
  result.zone_scan_rows = session.stats().zone_scan_rows;
  result.xmatch_candidates = session.stats().xmatch_candidates;
  result.xmatch_pairs = session.stats().xmatch_pairs;
}

ParallelLoadReport assemble(std::vector<WorkerResult> worker_results,
                            int workers, Nanos makespan) {
  ParallelLoadReport report;
  report.workers = workers;
  report.makespan = makespan;
  for (WorkerResult& worker : worker_results) {
    report.worker_busy.push_back(worker.busy);
    report.worker_lock_wait.push_back(worker.lock_wait);
    report.files_per_worker.push_back(worker.files);
    report.files_skipped += worker.files_skipped;
    report.commit_flushes += worker.commit_flushes;
    report.commit_piggybacks += worker.commit_piggybacks;
    report.commit_leader_wait += worker.commit_leader_wait;
    report.txn_slot_wait += worker.txn_slot_wait;
    report.itl_wait += worker.itl_wait;
    report.stall_time += worker.stall_time;
    report.query_lane_wait += worker.query_lane_wait;
    report.zone_scan_rows += worker.zone_scan_rows;
    report.xmatch_candidates += worker.xmatch_candidates;
    report.xmatch_pairs += worker.xmatch_pairs;
    report.parser_lines += worker.parser.lines;
    report.parser_data_rows += worker.parser.data_rows;
    report.parser_errors += worker.parser.parse_errors;
    report.htmids_computed += worker.parser.htmids_computed;
    for (FileLoadReport& file : worker.reports) {
      report.total_bytes += file.bytes;
      report.total_rows_loaded += file.rows_loaded;
      report.files.push_back(std::move(file));
    }
  }
  return report;
}

Nanos real_now() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

std::function<bool(const std::string&)> make_audit_checker(
    const db::Engine& engine) {
  const auto audit_table = engine.table_id("load_audit");
  if (!audit_table.is_ok()) {
    return [](const std::string&) { return false; };
  }
  const uint32_t table_id = *audit_table;
  return [&engine, table_id](const std::string& file_name) {
    return engine.live_view()
        .pk_lookup(table_id,
                   {db::Value::i64(audit_id_for_file(file_name))})
        .is_ok();
  };
}

void LoadCoordinator::run_tasks(int workers, size_t tasks, bool dynamic,
                                const std::function<void(int, size_t)>& body) {
  if (tasks == 0) return;
  if (workers < 1) workers = 1;
  if (static_cast<size_t>(workers) > tasks) {
    workers = static_cast<int>(tasks);
  }
  WorkQueue queue(tasks, workers, dynamic);
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    threads.emplace_back([&queue, &body, w] {
      while (const auto task = queue.next(w)) body(w, *task);
    });
  }
  for (std::thread& thread : threads) thread.join();
}

db::spatial::FanOut LoadCoordinator::task_runner(bool dynamic) {
  return [dynamic](int workers, size_t tasks,
                   const std::function<void(int, size_t)>& body) {
    run_tasks(workers, tasks, dynamic, body);
  };
}

Result<ParallelLoadReport> LoadCoordinator::run_threads(
    const std::vector<CatalogFile>& files, const db::Schema& schema,
    const SessionFactory& factory, const CoordinatorOptions& options) {
  if (options.parallel_degree < 1) {
    return Status(ErrorCode::kInvalidArgument, "parallel_degree must be >= 1");
  }
  const int workers = options.parallel_degree;
  WorkQueue queue(files.size(), workers, options.dynamic_assignment);
  std::vector<WorkerResult> results(static_cast<size_t>(workers));
  std::vector<std::thread> threads;
  const Nanos start = real_now();
  for (int w = 0; w < workers; ++w) {
    threads.emplace_back([&, w] {
      const std::unique_ptr<client::Session> session = factory(w);
      worker_loop(w, queue, files, schema, options,
                  *session, results[static_cast<size_t>(w)]);
    });
  }
  for (std::thread& thread : threads) thread.join();
  const Nanos makespan = real_now() - start;
  for (const WorkerResult& result : results) {
    if (!result.failure.is_ok()) return result.failure;
  }
  return assemble(std::move(results), workers, makespan);
}

Result<ParallelLoadReport> LoadCoordinator::run_sim(
    sim::Environment& env, client::SimServer& server,
    const std::vector<CatalogFile>& files, const db::Schema& schema,
    const CoordinatorOptions& options) {
  if (options.parallel_degree < 1) {
    return Status(ErrorCode::kInvalidArgument, "parallel_degree must be >= 1");
  }
  const int workers = options.parallel_degree;
  WorkQueue queue(files.size(), workers, options.dynamic_assignment);
  std::vector<WorkerResult> results(static_cast<size_t>(workers));
  const Nanos start = env.now();
  for (int w = 0; w < workers; ++w) {
    env.spawn("loader-" + std::to_string(w), [&, w] {
      client::SimSession session(server);
      worker_loop(w, queue, files, schema, options, session,
                  results[static_cast<size_t>(w)]);
    });
  }
  env.run();
  const Nanos makespan = env.now() - start;
  for (const WorkerResult& result : results) {
    if (!result.failure.is_ok()) return result.failure;
  }
  return assemble(std::move(results), workers, makespan);
}

}  // namespace sky::core
