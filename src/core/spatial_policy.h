// SpatialPolicy: knobs for the zone/HTM spatial query subsystem (db/spatial.h)
// — the same one-policy-two-backends pattern as core::QueryPolicy: the real
// engine's cross-match operator and the sim cost model read the same struct.
//
// The shape follows "Large-Scale Query and XMatch, Entering the Parallel
// Zone" (PAPERS.md): catalogs are bucketed into fixed-height declination
// zones, each zone is cross-matched independently against the zones of the
// other catalog that its search radius can reach, and zones fan out across
// worker threads. htm_depth sizes the HTM-keyed secondary index trixels that
// cone searches cover.
//
// Header-only so db/ and client/ headers can embed it without a link
// dependency on the core library.
#pragma once

#include <string>

namespace sky::core {

struct SpatialPolicy {
  // Trixel subdivision depth of HTM-keyed secondary indexes (htm/htm.h;
  // 14 is the depth the Palomar-Quest repository used for object htmids —
  // ~7 arcsec trixels). Schema-declared indexes may override per index.
  int htm_depth = 14;
  // Declination zone height for xmatch bucketing, degrees. Smaller zones
  // mean more parallel tasks and tighter candidate windows but more
  // cross-zone margin work; 0.25 deg suits arcsecond-scale match radii.
  double zone_height_deg = 0.25;
  // Worker threads a cross-match fans zones across (1 = sequential).
  int xmatch_workers = 6;

  // Clamp to runnable values (at least one worker, a positive zone height,
  // a representable depth).
  SpatialPolicy normalized() const {
    SpatialPolicy p = *this;
    if (p.htm_depth < 0) p.htm_depth = 0;
    if (p.htm_depth > 30) p.htm_depth = 30;  // htm::kMaxDepth
    if (p.zone_height_deg <= 0.0) p.zone_height_deg = 0.25;
    if (p.xmatch_workers < 1) p.xmatch_workers = 1;
    return p;
  }

  // e.g. "htm-depth=14, zone=0.25deg, workers=6".
  std::string describe() const {
    std::string out = "htm-depth=" + std::to_string(htm_depth);
    out += ", zone=" + std::to_string(zone_height_deg) + "deg";
    out += ", workers=" + std::to_string(xmatch_workers);
    return out;
  }
};

}  // namespace sky::core
