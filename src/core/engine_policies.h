// EnginePolicies: the one aggregate holding every shared policy struct —
// commit cadence/durability (CommitPolicy), admission limits
// (ConcurrencyPolicy), query-lane scheduling (QueryPolicy), the spatial
// subsystem's knobs (SpatialPolicy), and the multi-engine scale-out layout
// (ShardPolicy).
//
// Both execution backends embed one EnginePolicies: db::EngineOptions (real
// threads) and client::ServerConfig (simulation). The policies used to be
// four loose members spread across those structs with duplicated field
// spellings; folding them here gives tuning code one object to hand around
// (`options.policies = config.policies`) while the embedding structs keep
// the old spellings alive as reference members, so existing call sites
// (`options.concurrency.itl_slots_per_table = 7`,
// `config.commit_window = 2ms`) compile unchanged.
//
// Header-only; deliberately no describe() here — CommitPolicy::describe()
// is defined in the core library, and db/ headers embed this aggregate
// without linking core.
#pragma once

#include "core/commit_policy.h"
#include "core/concurrency_policy.h"
#include "core/query_policy.h"
#include "core/shard_policy.h"
#include "core/spatial_policy.h"

namespace sky::core {

struct EnginePolicies {
  CommitPolicy commit;
  ConcurrencyPolicy concurrency;
  QueryPolicy query;
  SpatialPolicy spatial;
  ShardPolicy shard;
};

}  // namespace sky::core
