#include "core/load_report.h"

#include "common/strings.h"

namespace sky::core {

void FileLoadReport::merge_counts(const FileLoadReport& other) {
  bytes += other.bytes;
  lines_read += other.lines_read;
  rows_parsed += other.rows_parsed;
  parse_errors += other.parse_errors;
  rows_loaded += other.rows_loaded;
  rows_skipped_server += other.rows_skipped_server;
  db_calls += other.db_calls;
  flush_cycles += other.flush_cycles;
  commits += other.commits;
  for (const auto& [table, count] : other.loaded_per_table) {
    loaded_per_table[table] += count;
  }
}

std::string FileLoadReport::summary() const {
  return str_format(
      "%s: %lld rows loaded, %lld skipped (%lld parse, %lld constraint), "
      "%lld db calls, %lld cycles, %lld commits, %s",
      file_name.c_str(), static_cast<long long>(rows_loaded),
      static_cast<long long>(total_skipped()),
      static_cast<long long>(parse_errors),
      static_cast<long long>(rows_skipped_server),
      static_cast<long long>(db_calls), static_cast<long long>(flush_cycles),
      static_cast<long long>(commits), format_duration(elapsed).c_str());
}

std::string ParallelLoadReport::summary() const {
  std::string out = str_format(
      "%d workers, %zu files, %lld rows, %s makespan, %.2f MB/s",
      workers, files.size(), static_cast<long long>(total_rows_loaded),
      format_duration(makespan).c_str(), throughput_mb_per_s());
  const int64_t commits = commit_flushes + commit_piggybacks;
  if (commits > 0) {
    out += str_format(
        ", %lld log flushes / %lld commits (%.2f flushes per commit)",
        static_cast<long long>(commit_flushes),
        static_cast<long long>(commits),
        static_cast<double>(commit_flushes) / static_cast<double>(commits));
  }
  if (txn_slot_wait > 0 || itl_wait > 0) {
    out += str_format(", gate waits: txn-slot %s, itl %s",
                      format_duration(txn_slot_wait).c_str(),
                      format_duration(itl_wait).c_str());
  }
  if (stall_time > 0) {
    out += ", stalls " + format_duration(stall_time);
  }
  if (query_lane_wait > 0) {
    out += ", query-lane wait " + format_duration(query_lane_wait);
  }
  if (xmatch_candidates > 0 || zone_scan_rows > 0) {
    out += str_format(", spatial %lld scanned / %lld tested / %lld matched",
                      static_cast<long long>(zone_scan_rows),
                      static_cast<long long>(xmatch_candidates),
                      static_cast<long long>(xmatch_pairs));
  }
  if (control_ticks > 0) {
    out += str_format(", control %llu ticks / %llu patches",
                      static_cast<unsigned long long>(control_ticks),
                      static_cast<unsigned long long>(control_patches));
  }
  return out;
}

std::string render_markdown_report(const ParallelLoadReport& report,
                                   size_t max_errors) {
  std::string out;
  out += "# Load report\n\n";
  out += "- files: " + std::to_string(report.files.size()) + "\n";
  out += "- workers: " + std::to_string(report.workers) + "\n";
  out += "- bytes: " + format_bytes(report.total_bytes) + "\n";
  out += "- rows loaded: " + std::to_string(report.total_rows_loaded) + "\n";
  out += "- makespan: " + format_duration(report.makespan) + "\n";
  out += str_format("- throughput: %.2f MB/s\n", report.throughput_mb_per_s());

  FileLoadReport totals;
  for (const FileLoadReport& file : report.files) totals.merge_counts(file);
  out += str_format("- skipped: %lld parse, %lld constraint\n",
                    static_cast<long long>(totals.parse_errors),
                    static_cast<long long>(totals.rows_skipped_server));
  if (report.parser_lines > 0) {
    out += str_format(
        "- parser: %lld data lines, %lld rows, %lld errors, "
        "%lld htmids computed\n",
        static_cast<long long>(report.parser_lines),
        static_cast<long long>(report.parser_data_rows),
        static_cast<long long>(report.parser_errors),
        static_cast<long long>(report.htmids_computed));
  }

  out += "\n## Rows per table\n\n| table | rows |\n|---|---|\n";
  for (const auto& [table, rows] : totals.loaded_per_table) {
    out += "| " + table + " | " + std::to_string(rows) + " |\n";
  }

  out += "\n## Worker balance\n\n"
         "| worker | files | busy | lock wait |\n|---|---|---|---|\n";
  for (size_t w = 0; w < report.worker_busy.size(); ++w) {
    const int files_done = w < report.files_per_worker.size()
                               ? report.files_per_worker[w]
                               : 0;
    const Nanos lock_wait =
        w < report.worker_lock_wait.size() ? report.worker_lock_wait[w] : 0;
    out += str_format("| %zu | %d | %s | %s |\n", w, files_done,
                      format_duration(report.worker_busy[w]).c_str(),
                      format_duration(lock_wait).c_str());
  }

  if (report.txn_slot_wait > 0 || report.itl_wait > 0 ||
      report.stall_time > 0) {
    out += "\n## Admission gates\n\n";
    out += "- txn-slot wait: " + format_duration(report.txn_slot_wait) + "\n";
    out += "- itl wait: " + format_duration(report.itl_wait) + "\n";
    out += "- stall time: " + format_duration(report.stall_time) + "\n";
  }
  if (report.query_lane_wait > 0) {
    out += "\n## Query lanes\n\n";
    out += "- lane wait: " + format_duration(report.query_lane_wait) + "\n";
  }
  if (report.control_ticks > 0) {
    out += "\n## Adaptive control\n\n";
    out += "- ticks: " + std::to_string(report.control_ticks) + "\n";
    out += "- patches applied: " + std::to_string(report.control_patches) +
           "\n";
    for (const std::string& decision : report.control_decisions) {
      out += "- " + decision + "\n";
    }
  }
  if (report.zone_scan_rows > 0 || report.xmatch_candidates > 0) {
    out += "\n## Spatial operators\n\n";
    out += "- zone-scan rows: " + std::to_string(report.zone_scan_rows) + "\n";
    out += "- exact-distance tests: " +
           std::to_string(report.xmatch_candidates) + "\n";
    out += "- matched pairs: " + std::to_string(report.xmatch_pairs) + "\n";
  }

  size_t shown = 0;
  for (const FileLoadReport& file : report.files) {
    for (const LoadError& error : file.errors) {
      if (shown == 0) out += "\n## First errors\n\n";
      if (shown++ >= max_errors) break;
      out += str_format(
          "- `%s` %s: %s (%s)\n", file.file_name.c_str(),
          error.table.empty() ? "(parse)" : error.table.c_str(),
          error.status.to_string().substr(0, 100).c_str(),
          error.detail.substr(0, 60).c_str());
    }
    if (shown > max_errors) break;
  }
  return out;
}

}  // namespace sky::core
