#include "core/non_bulk_loader.h"

#include "catalog/parser.h"
#include "common/strings.h"

namespace sky::core {

NonBulkLoader::NonBulkLoader(client::Session& session,
                             const db::Schema& schema,
                             NonBulkLoaderOptions options)
    : session_(session),
      schema_(schema),
      options_(options),
      parser_(std::make_unique<catalog::CatalogParser>(schema)) {}

NonBulkLoader::~NonBulkLoader() = default;

Result<FileLoadReport> NonBulkLoader::load_text(std::string_view file_name,
                                                std::string_view text) {
  FileLoadReport report;
  report.file_name = std::string(file_name);
  report.bytes = static_cast<int64_t>(text.size());
  const Nanos start = session_.now();

  for (std::string_view line : split(text, '\n')) {
    ++report.lines_read;
    if (!catalog::CatalogParser::is_data_line(line)) continue;
    session_.client_compute(options_.client_parse_cost_per_row);
    auto parsed = parser_->parse_line(line);
    if (!parsed.is_ok()) {
      ++report.parse_errors;
      if (report.errors.size() < options_.max_error_details) {
        report.errors.push_back(LoadError{LoadError::Stage::kParse, "",
                                          report.lines_read,
                                          std::string(line.substr(0, 80)),
                                          parsed.status()});
      }
      continue;
    }
    ++report.rows_parsed;
    const std::string& table_name = schema_.table(parsed->table_id).name;
    const Status status =
        session_.execute_single(parsed->table_id, parsed->row);
    ++report.db_calls;
    if (!status.is_ok() && !is_constraint_error(status.code())) {
      return status;  // infrastructure failure: abort, don't skip data
    }
    if (status.is_ok()) {
      ++report.rows_loaded;
      ++report.loaded_per_table[table_name];
    } else {
      ++report.rows_skipped_server;
      if (report.errors.size() < options_.max_error_details) {
        report.errors.push_back(LoadError{LoadError::Stage::kServer,
                                          table_name, report.lines_read,
                                          db::row_to_display(parsed->row),
                                          status});
      }
    }
    if (options_.commit.every_rows > 0 &&
        report.rows_loaded > 0 &&
        report.rows_loaded % options_.commit.every_rows == 0) {
      const Status commit_status = session_.commit();
      if (commit_status.is_ok()) ++report.commits;
    }
  }
  const Status commit_status = session_.commit();
  if (!commit_status.is_ok()) return commit_status;
  ++report.commits;
  report.elapsed = session_.now() - start;
  return report;
}

}  // namespace sky::core
