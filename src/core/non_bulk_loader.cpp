#include "core/non_bulk_loader.h"

#include "catalog/parser.h"
#include "common/strings.h"

namespace sky::core {

NonBulkLoader::NonBulkLoader(client::Session& session,
                             const db::Schema& schema,
                             NonBulkLoaderOptions options)
    : session_(session),
      schema_(schema),
      options_(options),
      parser_(std::make_unique<catalog::CatalogParser>(schema)) {}

NonBulkLoader::~NonBulkLoader() = default;

Result<bool> NonBulkLoader::send_row(uint32_t table_id, const db::Row& row,
                                     int64_t line_number,
                                     FileLoadReport& report) {
  const std::string& table_name = schema_.table(table_id).name;
  const Status status = session_.execute_single(table_id, row);
  ++report.db_calls;
  if (!status.is_ok() && !is_constraint_error(status.code())) {
    return status;  // infrastructure failure: abort, don't skip data
  }
  if (status.is_ok()) {
    ++report.rows_loaded;
    ++report.loaded_per_table[table_name];
  } else {
    ++report.rows_skipped_server;
    if (report.errors.size() < options_.max_error_details) {
      report.errors.push_back(LoadError{LoadError::Stage::kServer, table_name,
                                        line_number,
                                        db::row_to_display(row), status});
    }
  }
  if (options_.commit.every_rows > 0 &&
      report.rows_loaded > 0 &&
      report.rows_loaded % options_.commit.every_rows == 0) {
    const Status commit_status = session_.commit();
    if (commit_status.is_ok()) ++report.commits;
  }
  return status.is_ok();
}

Result<FileLoadReport> NonBulkLoader::load_text(std::string_view file_name,
                                                std::string_view text) {
  FileLoadReport report;
  report.file_name = std::string(file_name);
  report.bytes = static_cast<int64_t>(text.size());
  const Nanos start = session_.now();

  if (options_.columnar_parse) {
    // Vectorized front end, single-row sends: blocks parse columnar, then
    // each surviving row goes out as its own database call, tables in
    // parent-before-child order within the block.
    catalog::ParsedBlock block;
    size_t pos = 0;
    while (pos <= text.size()) {
      const int64_t base_line = report.lines_read;
      parser_->parse_block(text, pos,
                           static_cast<size_t>(options_.parse_block_rows),
                           block);
      report.lines_read += block.lines_consumed;
      session_.client_compute(block.data_lines *
                              options_.client_parse_cost_per_row_columnar);
      for (const catalog::BlockError& error : block.errors) {
        ++report.parse_errors;
        if (report.errors.size() < options_.max_error_details) {
          report.errors.push_back(
              LoadError{LoadError::Stage::kParse, "",
                        base_line + error.line_offset + 1,
                        std::string(error.line.substr(0, 80)), error.status});
        }
      }
      for (size_t slot = 0; slot < block.batches.size(); ++slot) {
        const db::ColumnBatch& batch = block.batches[slot];
        report.rows_parsed += static_cast<int64_t>(batch.size());
        for (size_t r = 0; r < batch.size(); ++r) {
          SKY_RETURN_IF_ERROR(
              send_row(block.table_ids[slot], batch.row(r),
                       base_line + block.row_lines[slot][r] + 1, report)
                  .status());
        }
      }
    }
  } else {
    for (std::string_view line : split_view(text, '\n')) {
      ++report.lines_read;
      if (!catalog::CatalogParser::is_data_line(line)) continue;
      session_.client_compute(options_.client_parse_cost_per_row);
      auto parsed = parser_->parse_line(line);
      if (!parsed.is_ok()) {
        ++report.parse_errors;
        if (report.errors.size() < options_.max_error_details) {
          report.errors.push_back(LoadError{LoadError::Stage::kParse, "",
                                            report.lines_read,
                                            std::string(line.substr(0, 80)),
                                            parsed.status()});
        }
        continue;
      }
      ++report.rows_parsed;
      SKY_RETURN_IF_ERROR(
          send_row(parsed->table_id, parsed->row, report.lines_read, report)
              .status());
    }
  }
  const Status commit_status = session_.commit();
  if (!commit_status.is_ok()) return commit_status;
  ++report.commits;
  report.elapsed = session_.now() - start;
  return report;
}

}  // namespace sky::core
