// NonBulkLoader: the baseline the paper measures bulk loading against
// (section 5.1) — "a series of individual SQL insert statements", one
// database call per row, issued in file order. File order is parent-before-
// child by construction of the catalog extraction, so no buffering is
// needed; errors are skipped row by row.
#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "catalog/parser.h"
#include "client/session.h"
#include "core/commit_policy.h"
#include "core/load_report.h"
#include "db/schema.h"

namespace sky::core {

struct NonBulkLoaderOptions {
  // When to commit (every_rows; 0 = only at end of file).
  CommitPolicy commit;
  size_t max_error_details = 1000;
  Nanos client_parse_cost_per_row = 15 * kMicrosecond;
  // Parse input through the vectorized block parser (the columnar ingest
  // front end) but still send rows one database call each — isolates the
  // parse speedup from the batch-insert speedup. Rows are sent per block in
  // table order (parent-before-child), not raw file order.
  bool columnar_parse = false;
  // Data lines consumed per parse_block call when columnar_parse is on.
  int64_t parse_block_rows = 512;
  // Simulated per-row parse cost when columnar_parse is on (vectorized
  // block parse; mirrors client::CostModel::client_row_parse_columnar).
  Nanos client_parse_cost_per_row_columnar = 5500;
};

class NonBulkLoader {
 public:
  NonBulkLoader(client::Session& session, const db::Schema& schema,
                NonBulkLoaderOptions options = {});
  ~NonBulkLoader();

  Result<FileLoadReport> load_text(std::string_view file_name,
                                   std::string_view text);

  // Client-side parser counters (aggregated by the coordinator).
  const catalog::ParserStats& parser_stats() const { return parser_->stats(); }

 private:
  // Send one parsed row (one database call) and fold the outcome into the
  // report; `line_number` is the 1-based input line for error details.
  Result<bool> send_row(uint32_t table_id, const db::Row& row,
                        int64_t line_number, FileLoadReport& report);

  client::Session& session_;
  const db::Schema& schema_;
  NonBulkLoaderOptions options_;
  std::unique_ptr<catalog::CatalogParser> parser_;
};

}  // namespace sky::core
