// NonBulkLoader: the baseline the paper measures bulk loading against
// (section 5.1) — "a series of individual SQL insert statements", one
// database call per row, issued in file order. File order is parent-before-
// child by construction of the catalog extraction, so no buffering is
// needed; errors are skipped row by row.
#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "client/session.h"
#include "core/commit_policy.h"
#include "core/load_report.h"
#include "db/schema.h"

namespace sky::catalog {
class CatalogParser;
}

namespace sky::core {

struct NonBulkLoaderOptions {
  // When to commit (every_rows; 0 = only at end of file).
  CommitPolicy commit;
  size_t max_error_details = 1000;
  Nanos client_parse_cost_per_row = 15 * kMicrosecond;
};

class NonBulkLoader {
 public:
  NonBulkLoader(client::Session& session, const db::Schema& schema,
                NonBulkLoaderOptions options = {});
  ~NonBulkLoader();

  Result<FileLoadReport> load_text(std::string_view file_name,
                                   std::string_view text);

 private:
  client::Session& session_;
  const db::Schema& schema_;
  NonBulkLoaderOptions options_;
  std::unique_ptr<catalog::CatalogParser> parser_;
};

}  // namespace sky::core
