// Closed-loop adaptive tuning (the control plane's brain).
//
// The paper's central lesson is that every tuning knob — commit frequency,
// concurrency, placement — has a workload-dependent sweet spot (Figs. 5-7
// each show a knee that moves with the workload), and production survey
// traffic is phase-changing: nightly bulk ingest alternating with bursty
// interactive query load (the CasJobs/SkyServer shape). A statically tuned
// preset is therefore wrong part of the time by construction. Controller
// closes the loop: each tick it reads one unified EngineStats snapshot
// through a ControlPlane, turns it into per-interval deltas, and publishes
// bounded, hysteresis-damped PolicyPatch adjustments:
//
//   * commit_window   <- observed commit arrival rate and concurrency: with
//     enough committers in flight to fill a group, steer toward the window
//     that coalesces ~target_group_commits commits per flush; with few open
//     transactions the window is pure leader latency, so steer to min.
//     Moves at most window_step per tick inside [min, max], held inside a
//     deadband.
//   * transaction / ITL slot counts <- observed gate wait share (grow) and
//     stall share (shrink — the Fig. 7 knee: past it, more concurrency only
//     adds escalation and stalls). A slot patch needs confirm_ticks
//     consecutive agreeing votes, so one noisy interval never moves slots.
//   * extent assignment <- appended-bytes skew across heap extents, with a
//     [skew_low, skew_high] hysteresis band so balanced workloads do not
//     flap between round-robin and least-loaded.
//
// The same Controller drives a real Engine (EngineControlPlane) and the
// simulated SimServer (client::SimControlPlane): tick() is pure feedback —
// it never sleeps — so a sim process can call it on virtual time while
// start()/stop() run it on a real thread against live engines.
//
// Every decision (and its reason) lands in a ControlTrace ring buffer,
// surfaced through ParallelLoadReport and `tuning_advisor --live`.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/units.h"
#include "db/control_plane.h"

namespace sky::core {

struct ControllerPolicy {
  // Cadence of the feedback loop (start()'s thread; sim callers tick on
  // virtual time at whatever cadence they choose).
  Nanos tick_interval = 100 * kMillisecond;
  // Consecutive agreeing votes required before a slot-count patch is
  // published (oscillation damping).
  int confirm_ticks = 2;
  // Relative commit-window change below which the controller holds steady.
  double deadband = 0.15;

  // Commit-window bounds and per-tick movement limit.
  Nanos min_commit_window = 0;
  Nanos max_commit_window = 8 * kMillisecond;
  Nanos window_step = kMillisecond;
  // Commits the window should coalesce per flush at the observed rate.
  int64_t target_group_commits = 4;
  // Committers in flight (transaction-gate in_use) below which the window
  // drives to min instead: a window can only coalesce commits from sessions
  // that are actually committing concurrently, so with few open
  // transactions it is pure leader latency. This is the signal that
  // disambiguates "rate is low because load is light" (shrink) from "rate
  // is low because ungrouped flushes saturate the log device" (grow —
  // many committers, each stuck behind a serial flush).
  int64_t window_commit_concurrency = 3;

  // Slot-count bounds; each confirmed patch moves by slot_step.
  int64_t min_transaction_slots = 2;
  int64_t max_transaction_slots = 64;
  int64_t min_itl_slots = 2;
  int64_t max_itl_slots = 64;
  int64_t slot_step = 1;
  // Blocked share of gate acquires above which a lane votes "grow".
  double wait_share_high = 0.25;
  // Stall share of ITL acquires above which the ITL votes "shrink" (the
  // paper's past-the-knee signal).
  double stall_share_high = 0.02;

  // Extent-assignment hysteresis band on appended-bytes skew (max/mean).
  double skew_high = 1.5;
  double skew_low = 1.1;

  std::string describe() const;
};

// One controller decision: what was patched, why, and whether the plane
// accepted it.
struct ControlDecision {
  uint64_t tick = 0;
  Nanos at = 0;  // controller clock (virtual in sim, steady in real mode)
  std::string reason;
  db::PolicyPatch patch;
  bool applied = false;

  std::string render() const;
};

// Fixed-capacity ring of recent decisions + a total counter. Thread-safe:
// the controller thread records while report code snapshots.
class ControlTrace {
 public:
  explicit ControlTrace(size_t capacity = 256) : capacity_(capacity) {}

  void record(ControlDecision decision);
  std::vector<ControlDecision> snapshot() const;
  uint64_t total() const;

 private:
  mutable std::mutex mu_;
  const size_t capacity_;
  std::deque<ControlDecision> ring_;
  uint64_t total_ = 0;
};

class Controller {
 public:
  explicit Controller(db::ControlPlane& plane, ControllerPolicy policy = {});
  ~Controller();  // stops the background thread if running

  // One feedback step at time `now` (monotone; virtual or real). The first
  // call only establishes the delta baseline. Returns the patch applied
  // this tick — empty when the controller held steady. Serialized
  // internally; never sleeps.
  db::PolicyPatch tick(Nanos now);

  // Run tick() on a real thread every policy().tick_interval until stop().
  void start();
  void stop();

  const ControllerPolicy& policy() const { return policy_; }
  const ControlTrace& trace() const { return trace_; }
  uint64_t ticks() const { return tick_count_.load(std::memory_order_relaxed); }

 private:
  // Signed consecutive-vote accumulator: +n after n agreeing "grow" votes,
  // -n after n agreeing "shrink" votes; any disagreement resets toward the
  // new direction.
  static int accumulate_vote(int streak, int vote);

  db::ControlPlane& plane_;
  const ControllerPolicy policy_;
  ControlTrace trace_;

  std::mutex tick_mu_;  // serializes tick() (manual + thread callers)
  bool has_baseline_ = false;
  db::EngineStats baseline_;
  Nanos baseline_at_ = 0;
  int txn_slot_streak_ = 0;
  int itl_slot_streak_ = 0;
  std::atomic<uint64_t> tick_count_{0};

  std::mutex thread_mu_;  // guards thread_ / stop_ and the stop cv
  std::condition_variable stop_cv_;
  std::thread thread_;
  bool stop_requested_ = false;
};

}  // namespace sky::core
