// ShardPolicy: knobs for the multi-engine scale-out layer (shard/
// sharded_repository.h) — the same one-policy-two-backends pattern as its
// siblings in core::EnginePolicies: db::ShardedRepository partitions the
// repository across M independent engines from this struct, and tuning code
// hands the whole EnginePolicies aggregate around.
//
// The partitioning follows the JHU parallel-zone report ("Large-Scale Query
// and XMatch, Entering the Parallel Zone", PAPERS.md): the sky is split by
// HTM trixel range across independent database instances. Trixel ids at a
// fixed depth form one contiguous integer space ([8*4^d, 16*4^d), htm/htm.h),
// and each shard owns one contiguous slice of it, so "which shard holds this
// position" is one ancestor computation plus a boundary search, and a cone
// cover prunes to the shards whose slices it intersects.
//
// Header-only so db/ and client/ headers can embed it without a link
// dependency on the core library.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sky::core {

// How rows are routed to shards.
enum class ShardRouting {
  // Spatial tables (an HTM index, or ra/dec/htmid columns) partition by HTM
  // trixel range at `htm_depth`; non-spatial tables go block-cyclic on their
  // first integer primary-key column. The production layout: cone searches
  // and cross-matches prune to the owning shards.
  kHtmRange,
  // Baseline for ablation: every table goes block-cyclic on its primary
  // key, ignoring sky position. Balances perfectly but spatial queries must
  // scatter to every shard.
  kPkCyclic,
};

struct ShardPolicy {
  // Number of independent engine instances (1 = the unsharded repository;
  // ShardedRepository degenerates to a pass-through).
  int shard_count = 1;
  // Trixel depth of the partition boundaries. Coarser than the per-table
  // index depths (routing compares trixel *ancestors*, so any index depth
  // >= this maps each index key to exactly one shard). Depth 6 trixels are
  // ~1.4 degrees — a few thousand atoms to lay out across shards.
  int htm_depth = 6;
  ShardRouting routing = ShardRouting::kHtmRange;
  // Optional explicit partition boundaries: ascending trixel ids at
  // `htm_depth`, size shard_count - 1; shard s owns [boundaries[s-1],
  // boundaries[s]) with the first/last shard unbounded below/above. Empty =
  // equal slices of the id space. ShardRouter::plan_boundaries() derives
  // equal-frequency boundaries from a sampled position histogram — how the
  // JHU cluster laid its partitions out from the observed data distribution.
  std::vector<uint64_t> boundaries;

  // Clamp to runnable values (at least one shard, a representable depth,
  // boundaries only meaningful when they match shard_count).
  ShardPolicy normalized() const {
    ShardPolicy p = *this;
    if (p.shard_count < 1) p.shard_count = 1;
    if (p.htm_depth < 0) p.htm_depth = 0;
    if (p.htm_depth > 30) p.htm_depth = 30;  // htm::kMaxDepth
    if (!p.boundaries.empty() &&
        p.boundaries.size() != static_cast<size_t>(p.shard_count) - 1) {
      p.boundaries.clear();
    }
    return p;
  }

  // e.g. "shards=4, htm-depth=6, routing=htm-range".
  std::string describe() const {
    std::string out = "shards=" + std::to_string(shard_count);
    out += ", htm-depth=" + std::to_string(htm_depth);
    out += ", routing=";
    out += routing == ShardRouting::kHtmRange ? "htm-range" : "pk-cyclic";
    if (!boundaries.empty()) {
      out += ", boundaries=" + std::to_string(boundaries.size());
    }
    return out;
  }
};

}  // namespace sky::core
