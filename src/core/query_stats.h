// Shared query-lane statistics spelling for both execution modes.
//
// The real engine's QueryScheduler (db/query_scheduler.h) and the simulated
// SimServer lanes (client/sim_server.h) used to carry two structurally
// different QueryLaneStats structs with a conversion shim between them.
// This header is the single spelling both report, so tuning and benchmark
// code reads one schema regardless of execution mode — the same unification
// GateStats already provides for admission gates. Consumed by the unified
// db::EngineStats snapshot (db/control_plane.h).
#pragma once

#include <cstdint>

#include "common/units.h"
#include "db/lock_manager.h"

namespace sky::core {

// One admission lane (interactive or batch).
struct QueryLaneStats {
  db::GateStats gate;       // slot accounting for the lane's gate/resource
  int64_t completed = 0;    // admissions fully released
  int64_t queue_depth = 0;  // admitters currently waiting (gate or yield)
  Nanos p50_latency = 0;    // admission-to-release, histogram upper bound
  Nanos p99_latency = 0;
};

struct QueryStats {
  QueryLaneStats interactive;
  QueryLaneStats batch;
  int64_t batch_yields = 0;    // batch admissions that waited for quiet
  uint64_t read_lsn = 0;       // engine's snapshot_published_lsn()
  int64_t snapshot_pins = 0;   // live pins (engine snapshot_stats())
  Nanos snapshot_pin_age = 0;  // oldest live pin's age
};

}  // namespace sky::core
