#include "core/controller.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "common/strings.h"

namespace sky::core {

namespace {
Nanos steady_now() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double ms(Nanos t) { return static_cast<double>(t) / kMillisecond; }
}  // namespace

std::string ControllerPolicy::describe() const {
  return str_format(
      "tick=%.0fms confirm=%d deadband=%.2f window=[%.1fms..%.1fms] "
      "step=%.1fms target_group=%lld group_conc=%lld txn=[%lld..%lld] "
      "itl=[%lld..%lld] wait_high=%.2f stall_high=%.3f skew=[%.2f..%.2f]",
      ms(tick_interval), confirm_ticks, deadband, ms(min_commit_window),
      ms(max_commit_window), ms(window_step),
      static_cast<long long>(target_group_commits),
      static_cast<long long>(window_commit_concurrency),
      static_cast<long long>(min_transaction_slots),
      static_cast<long long>(max_transaction_slots),
      static_cast<long long>(min_itl_slots),
      static_cast<long long>(max_itl_slots), wait_share_high,
      stall_share_high, skew_low, skew_high);
}

std::string ControlDecision::render() const {
  return str_format("tick %llu @%.2fs: %s — %s%s",
                    static_cast<unsigned long long>(tick), to_seconds(at),
                    patch.describe().c_str(), reason.c_str(),
                    applied ? "" : " [REJECTED]");
}

void ControlTrace::record(ControlDecision decision) {
  const std::scoped_lock lock(mu_);
  ++total_;
  ring_.push_back(std::move(decision));
  while (ring_.size() > capacity_) ring_.pop_front();
}

std::vector<ControlDecision> ControlTrace::snapshot() const {
  const std::scoped_lock lock(mu_);
  return {ring_.begin(), ring_.end()};
}

uint64_t ControlTrace::total() const {
  const std::scoped_lock lock(mu_);
  return total_;
}

Controller::Controller(db::ControlPlane& plane, ControllerPolicy policy)
    : plane_(plane), policy_(policy) {}

Controller::~Controller() { stop(); }

int Controller::accumulate_vote(int streak, int vote) {
  if (vote == 0) return 0;  // a neutral interval breaks any streak
  if (streak == 0 || (vote > 0) == (streak > 0)) return streak + vote;
  return vote;  // direction change: restart the streak the new way
}

db::PolicyPatch Controller::tick(Nanos now) {
  const std::scoped_lock lock(tick_mu_);
  const uint64_t tick_no = tick_count_.fetch_add(1, std::memory_order_relaxed) + 1;
  const db::EngineStats stats = plane_.stats();
  if (!has_baseline_) {
    has_baseline_ = true;
    baseline_ = stats;
    baseline_at_ = now;
    return {};
  }
  const db::EngineStats delta = stats.delta_since(baseline_);
  Nanos dt = now - baseline_at_;
  if (dt <= 0) dt = policy_.tick_interval;
  baseline_ = stats;
  baseline_at_ = now;

  db::PolicyPatch patch;
  std::string reason;
  const auto add_reason = [&reason](std::string part) {
    if (!reason.empty()) reason += "; ";
    reason += std::move(part);
  };

  // --- commit window from the observed commit arrival rate and commit
  // concurrency. With >= window_commit_concurrency committers in flight the
  // window can actually fill a group: steer toward target_group_commits /
  // rate (the window that coalesces ~target commits per flush — note a
  // rate depressed by serialized ungrouped flushes yields a *wide* target,
  // which is exactly the bootstrap out of log-device saturation). With few
  // open transactions nobody can ride the flush, so the window is pure
  // leader latency: steer to min. Either way move at most window_step per
  // tick and hold inside the deadband so noise never jiggles the WAL.
  const int64_t commits = delta.wal.commit_requests + delta.wal.relaxed_acks;
  const Nanos current_window = stats.policies.commit_window.value_or(0);
  if (commits > 0) {
    const double rate =
        static_cast<double>(commits) / std::max(to_seconds(dt), 1e-9);
    double target;
    if (stats.concurrency.transaction_gate.in_use >=
        policy_.window_commit_concurrency) {
      target = static_cast<double>(policy_.target_group_commits) / rate *
               static_cast<double>(kSecond);
      target = std::clamp(target,
                          static_cast<double>(policy_.min_commit_window),
                          static_cast<double>(policy_.max_commit_window));
    } else {
      target = static_cast<double>(policy_.min_commit_window);
    }
    const double diff = target - static_cast<double>(current_window);
    const double band =
        policy_.deadband * std::max<double>(static_cast<double>(current_window),
                                            static_cast<double>(policy_.window_step));
    if (std::abs(diff) > band) {
      const double step = static_cast<double>(policy_.window_step);
      Nanos next = current_window +
                   static_cast<Nanos>(std::clamp(diff, -step, step));
      next = std::clamp(next, policy_.min_commit_window,
                        policy_.max_commit_window);
      if (next != current_window) {
        patch.commit_window = next;
        add_reason(str_format("commit rate %.0f/s wants %.2fms window",
                              rate, target / kMillisecond));
      }
    }
  }

  // --- transaction slots from gate pressure: grow when a high share of
  // acquires block; shrink when the gate is quiet and mostly idle (frees
  // headroom the query lanes can use). confirm_ticks agreeing votes gate
  // every move.
  const db::GateStats& txn_gate = delta.concurrency.transaction_gate;
  const int64_t txn_slots = stats.policies.transaction_slots.value_or(0);
  int txn_vote = 0;
  if (txn_gate.acquires > 0 && txn_slots > 0) {
    const double wait_share = static_cast<double>(txn_gate.waits) /
                              static_cast<double>(txn_gate.acquires);
    if (wait_share > policy_.wait_share_high) {
      txn_vote = 1;
    } else if (txn_gate.waits == 0 && txn_gate.in_use * 2 < txn_slots) {
      txn_vote = -1;
    }
  }
  txn_slot_streak_ = accumulate_vote(txn_slot_streak_, txn_vote);
  if (txn_slots > 0 && std::abs(txn_slot_streak_) >= policy_.confirm_ticks) {
    const int64_t next =
        std::clamp(txn_slots + (txn_slot_streak_ > 0 ? policy_.slot_step
                                                     : -policy_.slot_step),
                   policy_.min_transaction_slots,
                   policy_.max_transaction_slots);
    if (next != txn_slots) {
      patch.transaction_slots = next;
      add_reason(str_format("txn gate %s (waits %llu / acquires %llu)",
                            txn_slot_streak_ > 0 ? "queued" : "idle",
                            static_cast<unsigned long long>(txn_gate.waits),
                            static_cast<unsigned long long>(txn_gate.acquires)));
    }
    txn_slot_streak_ = 0;
  }

  // --- ITL slots: stall share is the past-the-knee signal (Fig. 7) and
  // votes shrink; a high blocked share with no stalls votes grow. Only on
  // engines running ITL gates (live value 0 means disabled).
  const db::GateStats& itl_gate = delta.concurrency.itl;
  const int64_t itl_slots = stats.policies.itl_slots_per_table.value_or(0);
  if (itl_slots > 0) {
    int itl_vote = 0;
    if (itl_gate.acquires > 0) {
      const double stall_share = static_cast<double>(itl_gate.stalls) /
                                 static_cast<double>(itl_gate.acquires);
      const double wait_share = static_cast<double>(itl_gate.waits) /
                                static_cast<double>(itl_gate.acquires);
      if (stall_share > policy_.stall_share_high) {
        itl_vote = -1;
      } else if (wait_share > policy_.wait_share_high) {
        itl_vote = 1;
      }
    }
    itl_slot_streak_ = accumulate_vote(itl_slot_streak_, itl_vote);
    if (std::abs(itl_slot_streak_) >= policy_.confirm_ticks) {
      const int64_t next =
          std::clamp(itl_slots + (itl_slot_streak_ > 0 ? policy_.slot_step
                                                       : -policy_.slot_step),
                     policy_.min_itl_slots, policy_.max_itl_slots);
      if (next != itl_slots) {
        patch.itl_slots_per_table = next;
        add_reason(str_format(
            "itl %s (stalls %llu, waits %llu / acquires %llu)",
            itl_slot_streak_ > 0 ? "queued" : "past the knee",
            static_cast<unsigned long long>(itl_gate.stalls),
            static_cast<unsigned long long>(itl_gate.waits),
            static_cast<unsigned long long>(itl_gate.acquires)));
      }
      itl_slot_streak_ = 0;
    }
  }

  // --- extent assignment from cumulative appended-bytes skew, inside a
  // hysteresis band: above skew_high switch to least-loaded (which then
  // erodes the imbalance), back to round-robin only once the *cumulative*
  // occupancy rebalanced below skew_low — so the flip cannot flap on one
  // interval's noise.
  const double skew = stats.extent_skew();
  const db::ExtentAssignment assignment =
      stats.policies.extent_assignment.value_or(
          db::ExtentAssignment::kRoundRobin);
  if (skew > policy_.skew_high &&
      assignment == db::ExtentAssignment::kRoundRobin) {
    patch.extent_assignment = db::ExtentAssignment::kLeastLoaded;
    add_reason(str_format("extent skew %.2f > %.2f", skew, policy_.skew_high));
  } else if (skew < policy_.skew_low &&
             assignment == db::ExtentAssignment::kLeastLoaded) {
    patch.extent_assignment = db::ExtentAssignment::kRoundRobin;
    add_reason(str_format("extent skew %.2f < %.2f", skew, policy_.skew_low));
  }

  if (patch.empty()) return patch;
  const Status status = plane_.apply(patch);
  ControlDecision decision;
  decision.tick = tick_no;
  decision.at = now;
  decision.patch = patch;
  decision.applied = status.is_ok();
  decision.reason = std::move(reason);
  if (!status.is_ok()) {
    decision.reason += " [" + status.to_string() + "]";
  }
  trace_.record(std::move(decision));
  return status.is_ok() ? patch : db::PolicyPatch{};
}

void Controller::start() {
  const std::scoped_lock lock(thread_mu_);
  if (thread_.joinable()) return;
  stop_requested_ = false;
  thread_ = std::thread([this] {
    std::unique_lock<std::mutex> wait_lock(thread_mu_);
    while (true) {
      if (stop_cv_.wait_for(
              wait_lock, std::chrono::nanoseconds(policy_.tick_interval),
              [this] { return stop_requested_; })) {
        return;
      }
      wait_lock.unlock();
      tick(steady_now());
      wait_lock.lock();
    }
  });
}

void Controller::stop() {
  std::thread worker;
  {
    const std::scoped_lock lock(thread_mu_);
    if (!thread_.joinable()) return;
    stop_requested_ = true;
    stop_cv_.notify_all();
    worker = std::move(thread_);
  }
  worker.join();
}

}  // namespace sky::core
