#include "core/commit_policy.h"

#include "common/strings.h"

namespace sky::core {

std::string CommitPolicy::describe() const {
  std::string out = frequent_commits() ? "frequent" : "infrequent";
  if (commit_window > 0) {
    out += str_format(", window=%s x%lld", format_duration(commit_window).c_str(),
                      static_cast<long long>(max_group_commits));
  }
  if (durability == storage::DurabilityMode::kRelaxed) out += ", relaxed";
  return out;
}

}  // namespace sky::core
