#include "core/tuning.h"

#include "catalog/pq_schema.h"
#include "common/strings.h"

namespace sky::core {

TuningProfile TuningProfile::production() {
  TuningProfile profile;
  profile.name = "skyloader-production";
  return profile;  // the defaults are the production settings
}

TuningProfile TuningProfile::untuned_2004() {
  TuningProfile profile;
  profile.name = "untuned-2004";
  profile.bulk = false;
  profile.batch_size = 1;
  profile.array_size = 250;
  profile.parallel_degree = 2;
  profile.dynamic_assignment = false;
  profile.commit.every_cycles = 1;
  profile.commit.every_rows = 100;
  profile.maintain_htmid_index = true;
  profile.maintain_composite_index = true;
  profile.device_layout = storage::DeviceLayout::single_raid();
  profile.server_cache_pages = 65536;  // large cache, slow DBWR scans
  profile.presorted_input = false;
  return profile;
}

Status TuningProfile::apply_index_policy(db::Engine& engine) const {
  const auto objects = engine.table_id("objects");
  if (!objects.is_ok()) return ok_status();  // non-PQ schema: nothing to do
  SKY_RETURN_IF_ERROR(engine.set_index_enabled(
      *objects, catalog::kIndexHtmid, maintain_htmid_index));
  SKY_RETURN_IF_ERROR(engine.set_index_enabled(
      *objects, catalog::kIndexRaDecMag, maintain_composite_index));
  return ok_status();
}

db::EngineOptions TuningProfile::engine_options() const {
  db::EngineOptions options;
  options.cache_pages = server_cache_pages;
  options.device_layout = device_layout;
  // Simulation models the transaction and ITL limits in the server config;
  // keep the real gates permissive (64 slots, ITL off) so they never
  // double-count — and so no real gate can block inside a sim process,
  // which would wedge the cooperative scheduler. Real-thread harnesses
  // that want the admission gates set EngineOptions::concurrency directly.
  options.concurrency.max_concurrent_transactions = 64;
  options.concurrency.itl_slots_per_table = 0;
  // Likewise the commit-coalescing window: the sim prices it at the modeled
  // log device (server_config() below), so the engine-side window stays 0 —
  // a real timed wait would stall the cooperative sim scheduler. Real-thread
  // harnesses opt in via EngineOptions::commit_window directly.
  options.max_group_commits = commit.max_group_commits;
  options.durability = commit.durability;
  return options;
}

client::ServerConfig TuningProfile::server_config() const {
  client::ServerConfig config;
  config.device_layout = device_layout;
  config.commit_window = commit.commit_window;
  config.max_group_commits = commit.max_group_commits;
  return config;
}

BulkLoaderOptions TuningProfile::bulk_options() const {
  BulkLoaderOptions options;
  options.batch_size = bulk ? (columnar_ingest ? columnar_batch_size
                                               : batch_size)
                            : 1;
  options.array_config.default_rows =
      columnar_ingest ? columnar_array_rows : array_size;
  if (columnar_ingest) {
    options.array_config.memory_high_water_bytes =
        columnar_flush_high_water_bytes;
  }
  options.commit = commit;
  options.columnar_ingest = columnar_ingest;
  return options;
}

std::string TuningProfile::describe() const {
  return str_format(
      "%s: %s%s, batch=%lld, array=%lld, parallel=%d (%s), commits=%s, "
      "indexes[htmid=%s composite=%s], %s, cache=%lld pages, %s input",
      name.c_str(), bulk ? "bulk" : "non-bulk",
      columnar_ingest ? " (columnar)" : "",
      static_cast<long long>(batch_size), static_cast<long long>(array_size),
      parallel_degree, dynamic_assignment ? "dynamic" : "static",
      commit.describe().c_str(),
      maintain_htmid_index ? "on" : "off",
      maintain_composite_index ? "on" : "off",
      device_layout.describe().c_str(),
      static_cast<long long>(server_cache_pages),
      presorted_input ? "presorted" : "unsorted");
}

}  // namespace sky::core
