// ConcurrencyPolicy: one struct for the RDBMS concurrency limits on the
// load path.
//
// The paper's section 5.4 scaling limit ("hitting the RDBMS limit on the
// number of concurrent transactions", Fig. 7) used to be configured twice
// with divergent knob sets — EngineOptions::max_concurrent_transactions for
// real-thread runs and ServerConfig::{transaction_slots, itl_slots_per_table,
// lock_escalation_factor, stall_*} for simulation. They are now all views of
// this one policy: the instance-wide transaction-slot count, the per-table
// interested-transaction-list (ITL) slot count, and the contention cost model
// (lock-wait escalation plus the rare long stall the paper observed).
//
// Header-only so db/ and client/ headers can embed it without a link
// dependency on the core library.
#pragma once

#include <cstdint>
#include <string>

#include "common/units.h"

namespace sky::core {

struct ConcurrencyPolicy {
  // ---- admission limits -------------------------------------------------
  // Instance-wide concurrent-transaction slots (the gate begin_transaction
  // blocks on). The engine default (64) is permissive — simulation presets
  // model the paper's 8-CPU server with 8.
  int64_t max_concurrent_transactions = 64;
  // Per-table interested-transaction-list slots: how many transactions may
  // have a write open against one table at once. 0 = gate disabled (the
  // pre-ITL real-engine behaviour, and the safe default: a blocking gate
  // would deadlock the cooperative simulation scheduler, so sim runs keep
  // the real gate off and model ITL waits in the client cost model).
  int64_t itl_slots_per_table = 0;

  // ---- contention cost model --------------------------------------------
  // Server-time inflation per queued transaction once an ITL admission was
  // contended (escalating lock maintenance, the paper's "increased
  // contention" past 6-7 loaders).
  double lock_escalation_factor = 0.35;
  // Rare long stall while queued on a full ITL (the paper's "occasional
  // long stalls"): drawn per contended admission with this probability,
  // costing stall_duration. Deterministic from stall_seed.
  double stall_probability = 0.00003;
  Nanos stall_duration = 12 * kSecond;
  uint64_t stall_seed = 0xA17;

  bool itl_gated() const { return itl_slots_per_table > 0; }

  // e.g. "txn-slots=8, itl=7/table, escalation=0.35" (itl omitted when off).
  std::string describe() const {
    std::string out =
        "txn-slots=" + std::to_string(max_concurrent_transactions);
    if (itl_gated()) {
      out += ", itl=" + std::to_string(itl_slots_per_table) + "/table";
      out += ", escalation=" + std::to_string(lock_escalation_factor);
    }
    return out;
  }
};

}  // namespace sky::core
