// QueryPolicy: the two-lane query scheduler's knobs, shared by the real
// engine path (db::QueryScheduler) and the sim server (client::SimServer's
// query-lane resources) — the same one-policy-two-backends pattern as
// core::ConcurrencyPolicy and core::CommitPolicy.
//
// The lanes reproduce the CasJobs shape ("Batch is back", MSR-TR-2005-19):
// short interactive lookups must stay fast while long batch scans run
// against the same hot, continuously loaded database. Interactive and batch
// admissions go through separate FairSlotGates so a batch backlog can never
// consume interactive slots, and — when batch_yields_to_interactive is on —
// a batch query defers admission entirely while any interactive query is
// admitted or in flight (strict priority at admission granularity; batch
// starvation under a saturated interactive lane is the accepted trade, as
// in CasJobs' queue weights).
//
// Header-only so db/ and client/ headers can embed it without a link
// dependency on the core library.
#pragma once

#include <cstdint>
#include <string>

namespace sky::core {

struct QueryPolicy {
  // Concurrent admissions per lane. Interactive is sized for short
  // point/range lookups; batch for long scans (kept small so scans cannot
  // monopolize CPU the loaders need).
  int64_t interactive_slots = 8;
  int64_t batch_slots = 2;
  // Batch admission waits until no interactive query is admitted or running
  // (strict priority; each deferral is counted as a batch "yield").
  bool batch_yields_to_interactive = true;
  // Serve queries from pinned copy-on-write snapshots (db/snapshot.h):
  // latch-free reads of the committed prefix. Off = the latch-shared live
  // read path (reads see published-but-uncommitted rows and contend with
  // loaders on the index/extent latches) — the pre-snapshot baseline the
  // mixed-workload bench contrasts against.
  bool use_snapshots = true;

  // Clamp slot counts to at least one admission per lane (a zero-slot lane
  // would deadlock every admitter).
  QueryPolicy normalized() const {
    QueryPolicy p = *this;
    if (p.interactive_slots < 1) p.interactive_slots = 1;
    if (p.batch_slots < 1) p.batch_slots = 1;
    return p;
  }

  // e.g. "interactive=8, batch=2 (yields), snapshots=on".
  std::string describe() const {
    std::string out = "interactive=" + std::to_string(interactive_slots) +
                      ", batch=" + std::to_string(batch_slots);
    if (batch_yields_to_interactive) out += " (yields)";
    out += ", snapshots=";
    out += use_snapshots ? "on" : "off";
    return out;
  }
};

}  // namespace sky::core
