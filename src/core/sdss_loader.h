// SdssStyleLoader: the Sloan Digital Sky Survey loading pipeline the paper
// contrasts SkyLoader with (section 6), implemented as a comparable baseline.
//
// The SDSS framework converts catalog data into per-table CSV files, bulk
// loads them into an intermediate *task* database, fully validates the task
// database, and only then publishes the data into its final destination.
// Table relationships are maintained by carefully ordering the per-table
// file loads. SkyLoader instead does everything in a single pass; the paper
// hypothesizes (but could not measure) that the single-pass approach is more
// efficient. Our bench_sdss_comparison measures exactly that hypothesis on
// equal substrates.
//
// Mapping here:
//   phase 1 (convert) : parse catalog text -> per-table CSV buffers
//                       (client-side work),
//   phase 2 (task load): bulk load CSVs, parent-first, into a private task
//                       engine living on the loader's node (client-side
//                       work, priced per row),
//   phase 3 (validate): integrity audit of the task database,
//   phase 4 (publish) : scan task tables parent-first and batch-insert into
//                       the destination through the Session (server work,
//                       same as SkyLoader's inserts).
#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "client/session.h"
#include "core/load_report.h"
#include "db/schema.h"

namespace sky::core {

struct SdssLoaderOptions {
  int64_t batch_size = 40;  // used for the publish phase
  // Catalog text of the reference tables, loaded into every task database
  // before validation (SDSS task databases carry the reference data the
  // nightly rows' foreign keys point at).
  std::string reference_seed_text;
  // Client-side per-row costs of the extra phases (simulation pricing).
  Nanos csv_convert_cost_per_row = 5 * kMicrosecond;
  Nanos task_load_cost_per_row = 25 * kMicrosecond;
  Nanos validate_cost_per_row = 6 * kMicrosecond;
  Nanos client_parse_cost_per_row = 15 * kMicrosecond;
  size_t max_error_details = 1000;
};

struct SdssPhaseBreakdown {
  Nanos convert = 0;
  Nanos task_load = 0;
  Nanos validate = 0;
  Nanos publish = 0;
};

class SdssStyleLoader {
 public:
  SdssStyleLoader(client::Session& session, const db::Schema& schema,
                  SdssLoaderOptions options = {});
  ~SdssStyleLoader();

  Result<FileLoadReport> load_text(std::string_view file_name,
                                   std::string_view text);

  const SdssPhaseBreakdown& phases() const { return phases_; }

 private:
  client::Session& session_;
  const db::Schema& schema_;
  SdssLoaderOptions options_;
  SdssPhaseBreakdown phases_;
};

}  // namespace sky::core
