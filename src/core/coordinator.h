// LoadCoordinator: optimized parallelism (paper section 4.4).
//
// An observation's 28 catalog files are independent; N loader processes
// consume them from a shared queue. Assignment is dynamic ("on the fly"):
// as soon as a worker finishes one file it takes the next, which balances
// the skewed file sizes and absorbs slow error-heavy files. A static
// round-robin pre-partitioning mode exists for the load-balancing ablation.
//
// Two execution backends run the same per-worker code:
//   * run_threads — real std::thread workers, one Session each (from a
//     factory), wall-clock makespan; proves the stack under real
//     concurrency.
//   * run_sim     — one simulated process per worker over a shared
//     SimServer; virtual-time makespan; regenerates Fig. 7.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "client/session.h"
#include "client/sim_session.h"
#include "core/bulk_loader.h"
#include "core/load_report.h"
#include "db/spatial.h"
#include "sim/environment.h"

namespace sky::core {

struct CatalogFile {
  std::string name;
  std::string text;
};

struct CoordinatorOptions {
  int parallel_degree = 5;  // the paper's production choice
  bool dynamic_assignment = true;
  BulkLoaderOptions loader;
  // Idempotent re-runs: files reported as already loaded are skipped
  // without reading them. Wire to the repository's load_audit table via
  // make_audit_checker(); the lengthy multi-night loading the paper
  // describes must survive loader restarts without duplicating work.
  std::function<bool(const std::string& file_name)> already_loaded;
};

// A checker backed by the repository's load_audit table (the loader writes
// one audit row per completed file; its primary key derives from the file
// name, so presence == previously loaded).
std::function<bool(const std::string&)> make_audit_checker(
    const db::Engine& engine);

using SessionFactory = std::function<std::unique_ptr<client::Session>(int)>;

class LoadCoordinator {
 public:
  // Real-thread backend. `factory(worker_index)` builds each worker's
  // session (typically DirectSession over a shared engine).
  static Result<ParallelLoadReport> run_threads(
      const std::vector<CatalogFile>& files, const db::Schema& schema,
      const SessionFactory& factory, const CoordinatorOptions& options);

  // Simulation backend: workers are sim processes sharing `server`.
  // Drives env.run() internally; returns after all workers finish.
  static Result<ParallelLoadReport> run_sim(
      sim::Environment& env, client::SimServer& server,
      const std::vector<CatalogFile>& files, const db::Schema& schema,
      const CoordinatorOptions& options);

  // Generic real-thread fan-out over `tasks` independent task bodies,
  // through the same shared work queue the file loaders use (dynamic = any
  // worker pops the next task; static = round-robin pre-partitioning).
  // body(worker, task) is invoked exactly once per task in [0, tasks);
  // invocations for different tasks may be concurrent. Joins all workers
  // before returning. This is what runs the zone cross-match's declination
  // zones in parallel (db/spatial.h).
  static void run_tasks(int workers, size_t tasks, bool dynamic,
                        const std::function<void(int, size_t)>& body);

  // run_tasks packaged as the spatial operators' executor hook:
  // `opts.fan_out = LoadCoordinator::task_runner();`.
  static db::spatial::FanOut task_runner(bool dynamic = true);
};

}  // namespace sky::core
