// TuningProfile: the database and system tuning knobs of section 4.5, as a
// single reproducible configuration object.
//
// Two presets bracket the paper's headline claim ("from more than 20 hours
// to less than 3 hours on the same hardware"):
//   * untuned_2004()  — the before-state: row-at-a-time inserts, low
//     parallelism, frequent commits, every index maintained, everything on
//     one RAID device, a large data cache, unsorted input.
//   * production()    — the after-state: bulk loading (batch 40, array
//     1000), 5 parallel loaders with dynamic assignment, infrequent
//     commits, only the htmid index maintained, data/index/log on separate
//     devices, a reduced data cache, presorted input.
#pragma once

#include <string>

#include "client/sim_server.h"
#include "core/bulk_loader.h"
#include "core/commit_policy.h"
#include "db/engine.h"

namespace sky::core {

struct TuningProfile {
  std::string name;

  // Loading strategy.
  bool bulk = true;
  int64_t batch_size = 40;
  int64_t array_size = 1000;
  int parallel_degree = 5;
  bool dynamic_assignment = true;
  // Columnar ingest hot path: vectorized block parse into arena-backed
  // column batches, one-latch extent appends, sorted-run index builds.
  // Off by default so the row path remains the differential-testing oracle
  // and existing figures are unchanged; benches and tests opt in.
  bool columnar_ingest = false;
  // Batch size when columnar_ingest is on. Column batches marshal linearly
  // (one array bind per column), so the quadratic-marshalling term that
  // pins the row path's optimum near 40 (Fig. 5) is absent: there is no
  // interior optimum, and sending each flushed array as a single call
  // amortizes the per-call overhead furthest. Kept equal to
  // columnar_array_rows for exactly that reason.
  int64_t columnar_batch_size = 4000;
  // Array capacity when columnar_ingest is on. Arena-backed column buffers
  // hold ~4x the rows of the row arrays in the same client memory (no
  // per-Value boxing: ~110 data bytes/row vs ~450), so the Fig. 6 memory
  // budget admits proportionally larger arrays before paging.
  int64_t columnar_array_rows = 4000;
  // Aggregate buffered-byte budget for the columnar array set (the
  // high-water flush trigger the paper lists as future work). Sized just
  // under the client array memory (Fig. 6) so the combined footprint of all
  // per-table column buffers — not just the largest one — stays resident:
  // the flush fires before the client starts paging, which per-array row
  // caps alone cannot guarantee on interleaved input.
  int64_t columnar_flush_high_water_bytes = 600 * 1024;
  // Commit cadence and durability shape (section 4.5.2), shared by the
  // loaders (cadence), the engine (group-commit window, durability mode)
  // and the sim server (log-device grouping model).
  CommitPolicy commit;

  // Index policy during the catch-up load (section 4.5.1).
  bool maintain_htmid_index = true;
  bool maintain_composite_index = false;

  // System layout and memory (sections 4.5.3, 4.5.5).
  storage::DeviceLayout device_layout =
      storage::DeviceLayout::separate_raids();
  int64_t server_cache_pages = 4096;

  // Input presort (section 4.5.4); consumed by the data generator.
  bool presorted_input = true;

  static TuningProfile production();
  static TuningProfile untuned_2004();

  // Apply the index policy to the repository's objects table.
  Status apply_index_policy(db::Engine& engine) const;

  // Engine construction options consistent with this profile.
  db::EngineOptions engine_options() const;
  // Sim server config consistent with this profile.
  client::ServerConfig server_config() const;
  // Loader options consistent with this profile.
  BulkLoaderOptions bulk_options() const;

  std::string describe() const;
};

}  // namespace sky::core
