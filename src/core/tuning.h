// TuningProfile: the database and system tuning knobs of section 4.5, as a
// single reproducible configuration object.
//
// Two presets bracket the paper's headline claim ("from more than 20 hours
// to less than 3 hours on the same hardware"):
//   * untuned_2004()  — the before-state: row-at-a-time inserts, low
//     parallelism, frequent commits, every index maintained, everything on
//     one RAID device, a large data cache, unsorted input.
//   * production()    — the after-state: bulk loading (batch 40, array
//     1000), 5 parallel loaders with dynamic assignment, infrequent
//     commits, only the htmid index maintained, data/index/log on separate
//     devices, a reduced data cache, presorted input.
#pragma once

#include <string>

#include "client/sim_server.h"
#include "core/bulk_loader.h"
#include "core/commit_policy.h"
#include "db/engine.h"

namespace sky::core {

struct TuningProfile {
  std::string name;

  // Loading strategy.
  bool bulk = true;
  int64_t batch_size = 40;
  int64_t array_size = 1000;
  int parallel_degree = 5;
  bool dynamic_assignment = true;
  // Commit cadence and durability shape (section 4.5.2), shared by the
  // loaders (cadence), the engine (group-commit window, durability mode)
  // and the sim server (log-device grouping model).
  CommitPolicy commit;

  // Index policy during the catch-up load (section 4.5.1).
  bool maintain_htmid_index = true;
  bool maintain_composite_index = false;

  // System layout and memory (sections 4.5.3, 4.5.5).
  storage::DeviceLayout device_layout =
      storage::DeviceLayout::separate_raids();
  int64_t server_cache_pages = 4096;

  // Input presort (section 4.5.4); consumed by the data generator.
  bool presorted_input = true;

  static TuningProfile production();
  static TuningProfile untuned_2004();

  // Apply the index policy to the repository's objects table.
  Status apply_index_policy(db::Engine& engine) const;

  // Engine construction options consistent with this profile.
  db::EngineOptions engine_options() const;
  // Sim server config consistent with this profile.
  client::ServerConfig server_config() const;
  // Loader options consistent with this profile.
  BulkLoaderOptions bulk_options() const;

  std::string describe() const;
};

}  // namespace sky::core
