#include "core/bulk_loader.h"

#include <fstream>
#include <functional>
#include <sstream>

#include "catalog/parser.h"
#include "common/log.h"
#include "common/strings.h"

namespace sky::core {

int64_t audit_id_for_file(std::string_view file_name) {
  return static_cast<int64_t>(std::hash<std::string_view>{}(file_name) &
                              0x7FFFFFFFFFFFFFFFULL);
}

BulkLoader::BulkLoader(client::Session& session, const db::Schema& schema,
                       BulkLoaderOptions options)
    : session_(session),
      schema_(schema),
      options_(std::move(options)),
      array_set_(schema, options_.array_config),
      parser_(std::make_unique<catalog::CatalogParser>(schema)) {
  const auto audit = schema.table_id("load_audit");
  if (audit.is_ok()) {
    audit_table_id_ = *audit;
    has_audit_table_ = true;
  }
}

BulkLoader::~BulkLoader() = default;

void BulkLoader::record_error(FileLoadReport& report, LoadError error) {
  if (report.errors.size() < options_.max_error_details) {
    report.errors.push_back(std::move(error));
  }
}

Result<size_t> BulkLoader::batch_row(uint32_t table_id,
                                     const std::vector<db::Row>& rows,
                                     size_t first, FileLoadReport& report) {
  const std::string& table_name = schema_.table(table_id).name;
  const auto batch = static_cast<size_t>(options_.batch_size);
  while (first < rows.size()) {
    const size_t n = std::min(batch, rows.size() - first);
    const client::BatchOutcome outcome = session_.execute_batch(
        table_id, std::span<const db::Row>(&rows[first], n));
    ++report.db_calls;
    report.rows_loaded += outcome.applied;
    report.loaded_per_table[table_name] += outcome.applied;
    if (options_.commit.every_batches > 0 &&
        report.db_calls % options_.commit.every_batches == 0) {
      const Status commit_status = session_.commit();
      if (commit_status.is_ok()) ++report.commits;
    }
    if (outcome.error.has_value()) {
      if (!is_constraint_error(outcome.error->status.code())) {
        // Infrastructure failure (I/O, connection): do not skip data.
        return outcome.error->status;
      }
      // The batch stopped at `applied`: that row is the bad one. Skip it and
      // hand the resume index back so the caller repacks from there.
      const size_t bad = first + static_cast<size_t>(outcome.applied);
      ++report.rows_skipped_server;
      record_error(report,
                   LoadError{LoadError::Stage::kServer, table_name,
                             /*line_number=*/0,
                             db::row_to_display(rows[bad]),
                             outcome.error->status});
      return bad + 1;
    }
    first += n;
  }
  return first;
}

Status BulkLoader::flush_arrays(FileLoadReport& report) {
  if (array_set_.buffered_rows() == 0) return ok_status();
  ++report.flush_cycles;
  // Array construction/teardown and statement re-preparation overhead,
  // proportional to how many arrays this cycle materialized.
  session_.client_compute(array_set_.active_arrays() *
                          options_.flush_cycle_cost_per_array);
  // Bulk loading follows the parent-child relationship order regardless of
  // which array filled first (paper Fig. 2).
  Status failure = ok_status();
  array_set_.for_each_in_topo_order(
      [&](uint32_t table_id, const std::vector<db::Row>& rows) {
        if (!failure.is_ok()) return;
        size_t first = 0;
        while (first < rows.size()) {
          auto next = batch_row(table_id, rows, first, report);
          if (!next.is_ok()) {
            failure = next.status();
            return;
          }
          first = *next;
        }
      });
  SKY_RETURN_IF_ERROR(failure);
  // Arrays are destroyed and their memory released at the end of the cycle.
  array_set_.clear();
  if (options_.commit.every_cycles > 0 &&
      report.flush_cycles % options_.commit.every_cycles == 0) {
    const Status commit_status = session_.commit();
    if (commit_status.is_ok()) ++report.commits;
  }
  return ok_status();
}

Result<FileLoadReport> BulkLoader::load_text(std::string_view file_name,
                                             std::string_view text) {
  FileLoadReport report;
  report.file_name = std::string(file_name);
  report.bytes = static_cast<int64_t>(text.size());
  const Nanos start = session_.now();

  for (std::string_view line : split(text, '\n')) {
    ++report.lines_read;
    if (!catalog::CatalogParser::is_data_line(line)) continue;
    // Parse, validate, transform, compute — client-side work.
    session_.client_compute(options_.client_parse_cost_per_row);
    auto parsed = parser_->parse_line(line);
    if (!parsed.is_ok()) {
      ++report.parse_errors;
      record_error(report, LoadError{LoadError::Stage::kParse, "",
                                     report.lines_read,
                                     std::string(line.substr(0, 80)),
                                     parsed.status()});
      continue;
    }
    ++report.rows_parsed;
    const bool full =
        array_set_.append(parsed->table_id, std::move(parsed->row));
    session_.note_buffered_rows(1, array_set_.footprint_bytes());
    if (full) SKY_RETURN_IF_ERROR(flush_arrays(report));
  }
  // Load whatever remains buffered.
  SKY_RETURN_IF_ERROR(flush_arrays(report));

  if (has_audit_table_ && options_.write_audit_row) {
    // The loader's own bookkeeping row. The id derives from the file name;
    // a duplicate (re-load of the same file) is recorded as a skip.
    const int64_t audit_id = audit_id_for_file(file_name);
    const db::Row audit_row = {
        db::Value::i64(audit_id), db::Value::str(std::string(file_name)),
        db::Value::i64(report.rows_loaded),
        db::Value::i64(report.total_skipped()),
        db::Value::timestamp(session_.now())};
    const client::BatchOutcome outcome = session_.execute_batch(
        audit_table_id_, std::span<const db::Row>(&audit_row, 1));
    ++report.db_calls;
    if (outcome.error.has_value()) {
      record_error(report, LoadError{LoadError::Stage::kServer, "load_audit",
                                     0, std::string(file_name),
                                     outcome.error->status});
    }
  }

  const Status commit_status = session_.commit();
  if (!commit_status.is_ok()) return commit_status;
  ++report.commits;
  report.elapsed = session_.now() - start;
  SKY_INFO("loaded %s", report.summary().c_str());
  return report;
}

Result<FileLoadReport> BulkLoader::load_path(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status(ErrorCode::kIoError, "cannot open catalog file: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return load_text(path, buffer.str());
}

}  // namespace sky::core
