#include "core/bulk_loader.h"

#include <fstream>
#include <functional>
#include <sstream>

#include "catalog/parser.h"
#include "common/log.h"
#include "common/strings.h"

namespace sky::core {

int64_t audit_id_for_file(std::string_view file_name) {
  return static_cast<int64_t>(std::hash<std::string_view>{}(file_name) &
                              0x7FFFFFFFFFFFFFFFULL);
}

BulkLoader::BulkLoader(client::Session& session, const db::Schema& schema,
                       BulkLoaderOptions options)
    : session_(session),
      schema_(schema),
      options_(std::move(options)),
      array_set_(schema, options_.array_config),
      parser_(std::make_unique<catalog::CatalogParser>(schema)) {
  const auto audit = schema.table_id("load_audit");
  if (audit.is_ok()) {
    audit_table_id_ = *audit;
    has_audit_table_ = true;
  }
}

BulkLoader::~BulkLoader() = default;

void BulkLoader::record_error(FileLoadReport& report, LoadError error) {
  if (report.errors.size() < options_.max_error_details) {
    report.errors.push_back(std::move(error));
  }
}

Result<size_t> BulkLoader::batch_row(uint32_t table_id,
                                     const std::vector<db::Row>& rows,
                                     size_t first, FileLoadReport& report) {
  const std::string& table_name = schema_.table(table_id).name;
  const auto batch = static_cast<size_t>(options_.batch_size);
  while (first < rows.size()) {
    const size_t n = std::min(batch, rows.size() - first);
    const client::BatchOutcome outcome = session_.execute_batch(
        table_id, std::span<const db::Row>(&rows[first], n));
    ++report.db_calls;
    report.rows_loaded += outcome.applied;
    report.loaded_per_table[table_name] += outcome.applied;
    if (options_.commit.every_batches > 0 &&
        report.db_calls % options_.commit.every_batches == 0) {
      const Status commit_status = session_.commit();
      if (commit_status.is_ok()) ++report.commits;
    }
    if (outcome.error.has_value()) {
      if (!is_constraint_error(outcome.error->status.code())) {
        // Infrastructure failure (I/O, connection): do not skip data.
        return outcome.error->status;
      }
      // The batch stopped at `applied`: that row is the bad one. Skip it and
      // hand the resume index back so the caller repacks from there.
      const size_t bad = first + static_cast<size_t>(outcome.applied);
      ++report.rows_skipped_server;
      record_error(report,
                   LoadError{LoadError::Stage::kServer, table_name,
                             /*line_number=*/0,
                             db::row_to_display(rows[bad]),
                             outcome.error->status});
      return bad + 1;
    }
    first += n;
  }
  return first;
}

Result<size_t> BulkLoader::batch_columns(uint32_t table_id,
                                         const db::ColumnBatch& rows,
                                         size_t first,
                                         FileLoadReport& report) {
  const std::string& table_name = schema_.table(table_id).name;
  const auto batch = static_cast<size_t>(options_.batch_size);
  while (first < rows.size()) {
    const size_t n = std::min(batch, rows.size() - first);
    const client::BatchOutcome outcome =
        session_.execute_column_batch(table_id, rows, first, n);
    ++report.db_calls;
    report.rows_loaded += outcome.applied;
    report.loaded_per_table[table_name] += outcome.applied;
    if (options_.commit.every_batches > 0 &&
        report.db_calls % options_.commit.every_batches == 0) {
      const Status commit_status = session_.commit();
      if (commit_status.is_ok()) ++report.commits;
    }
    if (outcome.error.has_value()) {
      if (!is_constraint_error(outcome.error->status.code())) {
        return outcome.error->status;
      }
      // Same skip-and-repack recovery as the row path: the batch stopped at
      // `applied`, so that row is the bad one (materialized only here, for
      // the error detail).
      const size_t bad = first + static_cast<size_t>(outcome.applied);
      ++report.rows_skipped_server;
      record_error(report,
                   LoadError{LoadError::Stage::kServer, table_name,
                             /*line_number=*/0,
                             db::row_to_display(rows.row(bad)),
                             outcome.error->status});
      return bad + 1;
    }
    first += n;
  }
  return first;
}

Status BulkLoader::flush_batches(FileLoadReport& report) {
  if (array_set_.buffered_rows() == 0) return ok_status();
  ++report.flush_cycles;
  session_.client_compute(array_set_.active_arrays() *
                          options_.flush_cycle_cost_per_array_columnar);
  // Parent-before-child order, same as the row cycle.
  Status failure = ok_status();
  array_set_.for_each_batch_in_topo_order(
      [&](uint32_t table_id, const db::ColumnBatch& batch) {
        if (!failure.is_ok()) return;
        size_t first = 0;
        while (first < batch.size()) {
          auto next = batch_columns(table_id, batch, first, report);
          if (!next.is_ok()) {
            failure = next.status();
            return;
          }
          first = *next;
        }
      });
  SKY_RETURN_IF_ERROR(failure);
  // Keep the column buffers' capacity for the next cycle (arena reuse);
  // only the row arrays pay the build/teardown cost each cycle.
  array_set_.clear_keep_buffers();
  if (options_.commit.every_cycles > 0 &&
      report.flush_cycles % options_.commit.every_cycles == 0) {
    const Status commit_status = session_.commit();
    if (commit_status.is_ok()) ++report.commits;
  }
  return ok_status();
}

Status BulkLoader::flush_arrays(FileLoadReport& report) {
  if (array_set_.buffered_rows() == 0) return ok_status();
  ++report.flush_cycles;
  // Array construction/teardown and statement re-preparation overhead,
  // proportional to how many arrays this cycle materialized.
  session_.client_compute(array_set_.active_arrays() *
                          options_.flush_cycle_cost_per_array);
  // Bulk loading follows the parent-child relationship order regardless of
  // which array filled first (paper Fig. 2).
  Status failure = ok_status();
  array_set_.for_each_in_topo_order(
      [&](uint32_t table_id, const std::vector<db::Row>& rows) {
        if (!failure.is_ok()) return;
        size_t first = 0;
        while (first < rows.size()) {
          auto next = batch_row(table_id, rows, first, report);
          if (!next.is_ok()) {
            failure = next.status();
            return;
          }
          first = *next;
        }
      });
  SKY_RETURN_IF_ERROR(failure);
  // Arrays are destroyed and their memory released at the end of the cycle.
  array_set_.clear();
  if (options_.commit.every_cycles > 0 &&
      report.flush_cycles % options_.commit.every_cycles == 0) {
    const Status commit_status = session_.commit();
    if (commit_status.is_ok()) ++report.commits;
  }
  return ok_status();
}

Status BulkLoader::ingest_rows(std::string_view text, FileLoadReport& report) {
  for (std::string_view line : split_view(text, '\n')) {
    ++report.lines_read;
    if (!catalog::CatalogParser::is_data_line(line)) continue;
    // Parse, validate, transform, compute — client-side work.
    session_.client_compute(options_.client_parse_cost_per_row);
    auto parsed = parser_->parse_line(line);
    if (!parsed.is_ok()) {
      ++report.parse_errors;
      record_error(report, LoadError{LoadError::Stage::kParse, "",
                                     report.lines_read,
                                     std::string(line.substr(0, 80)),
                                     parsed.status()});
      continue;
    }
    ++report.rows_parsed;
    const bool full =
        array_set_.append(parsed->table_id, std::move(parsed->row));
    session_.note_buffered_rows(1, array_set_.footprint_bytes());
    if (full) SKY_RETURN_IF_ERROR(flush_arrays(report));
  }
  // Load whatever remains buffered.
  return flush_arrays(report);
}

Status BulkLoader::ingest_columnar(std::string_view text,
                                   FileLoadReport& report) {
  catalog::ParsedBlock block;
  size_t pos = 0;
  while (pos <= text.size()) {
    const int64_t base_line = report.lines_read;
    parser_->parse_block(text, pos,
                         static_cast<size_t>(options_.parse_block_rows),
                         block);
    report.lines_read += block.lines_consumed;
    // Client-side parse/validate/transform/compute cost: charged per data
    // line, failing lines included, at the vectorized-parse rate.
    session_.client_compute(block.data_lines *
                            options_.client_parse_cost_per_row_columnar);
    for (const catalog::BlockError& error : block.errors) {
      ++report.parse_errors;
      record_error(report,
                   LoadError{LoadError::Stage::kParse, "",
                             base_line + error.line_offset + 1,
                             std::string(error.line.substr(0, 80)),
                             error.status});
    }
    int64_t block_rows = 0;
    for (size_t slot = 0; slot < block.batches.size(); ++slot) {
      const db::ColumnBatch& batch = block.batches[slot];
      if (batch.empty()) continue;
      block_rows += static_cast<int64_t>(batch.size());
      array_set_.append_batch(block.table_ids[slot], batch);
    }
    report.rows_parsed += block_rows;
    if (block_rows > 0) {
      session_.note_buffered_rows(block_rows, array_set_.footprint_bytes(),
                                  /*columnar=*/true);
    }
    if (array_set_.should_flush()) SKY_RETURN_IF_ERROR(flush_batches(report));
  }
  return flush_batches(report);
}

Result<FileLoadReport> BulkLoader::load_text(std::string_view file_name,
                                             std::string_view text) {
  FileLoadReport report;
  report.file_name = std::string(file_name);
  report.bytes = static_cast<int64_t>(text.size());
  const Nanos start = session_.now();

  if (options_.columnar_ingest) {
    SKY_RETURN_IF_ERROR(ingest_columnar(text, report));
  } else {
    SKY_RETURN_IF_ERROR(ingest_rows(text, report));
  }

  if (has_audit_table_ && options_.write_audit_row) {
    // The loader's own bookkeeping row. The id derives from the file name;
    // a duplicate (re-load of the same file) is recorded as a skip.
    const int64_t audit_id = audit_id_for_file(file_name);
    const db::Row audit_row = {
        db::Value::i64(audit_id), db::Value::str(std::string(file_name)),
        db::Value::i64(report.rows_loaded),
        db::Value::i64(report.total_skipped()),
        db::Value::timestamp(session_.now())};
    const client::BatchOutcome outcome = session_.execute_batch(
        audit_table_id_, std::span<const db::Row>(&audit_row, 1));
    ++report.db_calls;
    if (outcome.error.has_value()) {
      record_error(report, LoadError{LoadError::Stage::kServer, "load_audit",
                                     0, std::string(file_name),
                                     outcome.error->status});
    }
  }

  const Status commit_status = session_.commit();
  if (!commit_status.is_ok()) return commit_status;
  ++report.commits;
  report.elapsed = session_.now() - start;
  SKY_INFO("loaded %s", report.summary().c_str());
  return report;
}

Result<FileLoadReport> BulkLoader::load_path(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status(ErrorCode::kIoError, "cannot open catalog file: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return load_text(path, buffer.str());
}

}  // namespace sky::core
